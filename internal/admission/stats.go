package admission

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// admStats counts control-plane decisions. Atomic because AdmitBatch's
// bookkeeping and a live HTTP scrape of Stats may overlap; the decision
// paths themselves stay single-threaded.
type admStats struct {
	admits        atomic.Int64
	rejects       atomic.Int64
	teardowns     atomic.Int64
	restores      atomic.Int64
	reroutes      atomic.Int64
	batchRequests atomic.Int64
	batchChunks   atomic.Int64
	batchReplans  atomic.Int64
}

// Stats returns the controller's decision counters in export form; pass
// it to metrics.Registry.SetAdmissionSource.
func (c *Controller) Stats() *metrics.AdmissionStats {
	return &metrics.AdmissionStats{
		Admits:        c.stats.admits.Load(),
		Rejects:       c.stats.rejects.Load(),
		Teardowns:     c.stats.teardowns.Load(),
		Restores:      c.stats.restores.Load(),
		Reroutes:      c.stats.reroutes.Load(),
		BatchRequests: c.stats.batchRequests.Load(),
		BatchChunks:   c.stats.batchChunks.Load(),
		BatchReplans:  c.stats.batchReplans.Load(),
	}
}
