package rtc

import (
	"testing"
	"testing/quick"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/timing"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Imin: 8, Smax: 18, Bmax: 2, D: 40}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Imin: 0, Smax: 18, D: 40},
		{Imin: 8, Smax: 0, D: 40},
		{Imin: 8, Smax: 18, Bmax: -1, D: 40},
		{Imin: 8, Smax: 18, D: 0},
		{Imin: 2, Smax: 60, D: 40}, // 4 packets per message > Imin of 2
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestPacketsPerMessage(t *testing.T) {
	cases := []struct {
		smax, want int
	}{{1, 1}, {18, 1}, {19, 2}, {36, 2}, {37, 3}, {100, 6}}
	for _, c := range cases {
		s := Spec{Imin: 100, Smax: c.smax, D: 100}
		if got := s.PacketsPerMessage(); got != c.want {
			t.Errorf("Smax %d: packets = %d, want %d", c.smax, got, c.want)
		}
		if s.MessageSlots() != int64(c.want) {
			t.Errorf("Smax %d: slots = %d, want %d", c.smax, s.MessageSlots(), c.want)
		}
	}
}

// TestSourceLogicalArrival reproduces the ℓ0 recurrence of Section 2.
func TestSourceLogicalArrival(t *testing.T) {
	s := NewSource(Spec{Imin: 10, Smax: 18, D: 40})
	// First message at t=5: ℓ0 = 5.
	if l := s.Next(5); l != 5 {
		t.Errorf("first ℓ0 = %d, want 5", l)
	}
	// Burst at t=6: ℓ0 = 15 (periodic restriction dominates).
	if l := s.Next(6); l != 15 {
		t.Errorf("burst ℓ0 = %d, want 15", l)
	}
	// Late message at t=100: ℓ0 resets to generation time.
	if l := s.Next(100); l != 100 {
		t.Errorf("late ℓ0 = %d, want 100", l)
	}
	if s.Messages() != 3 {
		t.Errorf("Messages = %d, want 3", s.Messages())
	}
}

func TestSourceBacklog(t *testing.T) {
	s := NewSource(Spec{Imin: 10, Smax: 18, D: 40})
	if s.Backlog(0) != 0 {
		t.Error("backlog before first message")
	}
	s.Next(0)
	s.Next(0)
	s.Next(0) // ℓ0 = 20 while t = 0
	if got := s.Backlog(0); got != 20 {
		t.Errorf("backlog = %d, want 20", got)
	}
	if got := s.Backlog(25); got != 0 {
		t.Errorf("backlog after catch-up = %d, want 0", got)
	}
}

// Property: ℓ0 is non-decreasing and consecutive values are at least
// Imin apart whenever the source is backlogged.
func TestSourceMonotoneQuick(t *testing.T) {
	prop := func(times []uint16) bool {
		s := NewSource(Spec{Imin: 7, Smax: 18, D: 40})
		var prev timing.Slot = -1 << 30
		var tprev timing.Slot
		for _, raw := range times {
			ti := tprev + timing.Slot(raw%50) // non-decreasing generation times
			tprev = ti
			l := s.Next(ti)
			if l < prev {
				return false
			}
			if prev > ti && l-prev < 7 {
				return false // was backlogged: spacing must be ≥ Imin
			}
			if l < ti {
				return false // never before generation
			}
			prev = l
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecompose(t *testing.T) {
	w := timing.MustWheel(8)
	spec := Spec{Imin: 10, Smax: 18, D: 17}
	ds, err := Decompose(spec, 4, w)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, d := range ds {
		sum += d
		if d < 1 {
			t.Errorf("hop bound %d below message time", d)
		}
	}
	if sum != 17 {
		t.Errorf("decomposed bounds sum to %d, want 17 (full budget used)", sum)
	}
	// Remainder goes to the earliest hops.
	if ds[0] < ds[len(ds)-1] {
		t.Errorf("remainder not front-loaded: %v", ds)
	}
}

func TestDecomposeErrors(t *testing.T) {
	w := timing.MustWheel(8)
	if _, err := Decompose(Spec{Imin: 10, Smax: 18, D: 3}, 4, w); err == nil {
		t.Error("over-tight bound accepted")
	}
	if _, err := Decompose(Spec{Imin: 10, Smax: 18, D: 10}, 0, w); err == nil {
		t.Error("zero segments accepted")
	}
	// Bound so loose a per-hop share exceeds the rollover window.
	if _, err := Decompose(Spec{Imin: 200, Smax: 18, D: 300}, 2, w); err == nil {
		t.Error("per-hop bound beyond half clock range accepted")
	}
}

// TestDecomposeUniformMatchesDecompose pins DecomposeUniform to its
// contract: for every (spec, segments, wheel) it must reproduce
// Decompose's verdict and error bytes exactly, and on success return
// the last (most conservative) element of Decompose's split. The
// generator sweeps the edges that distinguish the two code paths:
// zero/negative segments, base below message time, remainders present
// and absent, and per-hop bounds straddling the wheel's half-range
// (where the remainder makes base+1 invalid while base is still
// valid — the one case where reporting order matters).
func TestDecomposeUniformMatchesDecompose(t *testing.T) {
	wheels := []timing.Wheel{timing.MustWheel(4), timing.MustWheel(8)}
	for _, w := range wheels {
		half := int64(w.HalfRange())
		for segments := -1; segments <= 6; segments++ {
			for _, smax := range []int{18, 36} {
				// D sweeps divisible and remainder cases, and crosses
				// half-range multiples so some splits straddle validity.
				for d := int64(0); d <= 3*half+3; d++ {
					spec := Spec{Imin: 10, Smax: smax, D: d}
					ds, derr := Decompose(spec, segments, w)
					u, uerr := DecomposeUniform(spec, segments, w)
					if (derr == nil) != (uerr == nil) {
						t.Fatalf("verdicts diverge for D=%d segs=%d smax=%d half=%d: Decompose err=%v, Uniform err=%v",
							d, segments, smax, half, derr, uerr)
					}
					if derr != nil {
						if derr.Error() != uerr.Error() {
							t.Fatalf("error bytes diverge for D=%d segs=%d smax=%d half=%d:\n Decompose: %q\n   Uniform: %q",
								d, segments, smax, half, derr, uerr)
						}
						continue
					}
					if last := ds[len(ds)-1]; u != last {
						t.Fatalf("DecomposeUniform = %d, want Decompose's last element %d (split %v, D=%d segs=%d)",
							u, last, ds, d, segments)
					}
				}
			}
		}
	}
}

func TestBufferBound(t *testing.T) {
	spec := Spec{Imin: 8, Smax: 18, D: 40}
	// prev window 10, local d 10: ceil(20/8) = 3 messages of 1 packet.
	if got := BufferBound(10, 10, spec); got != 3 {
		t.Errorf("BufferBound = %d, want 3", got)
	}
	// Zero window, tiny delay: still at least one packet.
	if got := BufferBound(0, 1, spec); got != 1 {
		t.Errorf("BufferBound = %d, want 1", got)
	}
	// Multi-packet messages scale the bound.
	spec.Smax = 36
	if got := BufferBound(10, 10, spec); got != 6 {
		t.Errorf("BufferBound (2-packet msgs) = %d, want 6", got)
	}
}

// TestPacerReleasesWithinWindow checks the regulator holds messages
// until ℓ0 − now ≤ window.
func TestPacerReleasesWithinWindow(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 2)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(p)
	k.Register(r)
	if err := r.SetConnection(1, 9, 10, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, Spec{Imin: 10, Smax: 18, D: 40}, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Three messages submitted at slot 0: ℓ0 = 0, 10, 20.
	for i := 0; i < 3; i++ {
		if err := ch.Submit(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// At slot 0 only ℓ0=0 is within window 2.
	k.Run(packet.TCBytes) // one slot
	if ch.Sent != 1 {
		t.Errorf("after slot 0: sent %d, want 1", ch.Sent)
	}
	// By slot 8 (=10−2) the second releases.
	k.Run(8 * packet.TCBytes)
	if ch.Sent != 2 {
		t.Errorf("after slot 8: sent %d, want 2", ch.Sent)
	}
	k.Run(10 * packet.TCBytes)
	if ch.Sent != 3 {
		t.Errorf("after slot 18: sent %d, want 3", ch.Sent)
	}
	if ch.Pending() != 0 {
		t.Errorf("pending = %d, want 0", ch.Pending())
	}
}

// TestPacerEndToEnd drives a paced channel through a router to local
// delivery and checks stamps carry ℓ0.
func TestPacerEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 0)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(p)
	k.Register(r)
	if err := r.SetConnection(1, 9, 5, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, Spec{Imin: 4, Smax: 36, D: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Submit(0, []byte("two-packet message body.............")); err != nil {
		t.Fatal(err)
	}
	ok := k.RunUntil(func() bool { return r.Stats.TCDelivered >= 2 }, 5000)
	if !ok {
		t.Fatalf("message packets not delivered: %+v", r.Stats)
	}
	got := r.DrainTC()
	if len(got) != 2 {
		t.Fatalf("got %d packets, want 2", len(got))
	}
	for _, d := range got {
		if d.Conn != 9 {
			t.Errorf("conn = %d, want 9", d.Conn)
		}
		if d.Stamp != 5 {
			t.Errorf("stamp = %d, want 5 (ℓ0=0 + d=5)", d.Stamp)
		}
	}
}

func TestPacerSubmitErrors(t *testing.T) {
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, Spec{Imin: 4, Smax: 18, D: 20}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Submit(0, make([]byte, 19)); err == nil {
		t.Error("oversize message accepted")
	}
	if _, err := p.Channel(2, Spec{}, 5); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := NewPacer("bad", r, -1); err == nil {
		t.Error("negative window accepted")
	}
	if _, err := NewPacer("bad", r, 400); err == nil {
		t.Error("window beyond half clock range accepted")
	}
}

func TestPacerContractViolations(t *testing.T) {
	r := router.MustNew("A", router.DefaultConfig())
	p, _ := NewPacer("pacer", r, 0)
	ch, _ := p.Channel(1, Spec{Imin: 10, Smax: 18, Bmax: 1, D: 40}, 10)
	for i := 0; i < 5; i++ {
		if err := ch.Submit(0, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	// ℓ0 runs ahead 0,10,20,30,40; backlog > Imin×Bmax=10 from the third
	// message on.
	if ch.ContractViolations != 3 {
		t.Errorf("ContractViolations = %d, want 3", ch.ContractViolations)
	}
}
