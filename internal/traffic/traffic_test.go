package traffic

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/timing"
)

func TestProbeRoundTrip(t *testing.T) {
	buf := make([]byte, ProbeBytes)
	EncodeProbe(buf, 123456789, 42)
	c, s := DecodeProbe(buf)
	if c != 123456789 || s != 42 {
		t.Errorf("decode = %d,%d", c, s)
	}
	if c, s := DecodeProbe(buf[:4]); c != 0 || s != 0 {
		t.Error("short probe should decode to zeros")
	}
}

func TestProbePanicsShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short encode did not panic")
		}
	}()
	EncodeProbe(make([]byte, 4), 1, 1)
}

// pacedRig builds a single router with a pacer, channel, app and sink.
type pacedRig struct {
	k    *sim.Kernel
	r    *router.Router
	app  *TCApp
	sink *Sink
}

func newPacedRig(t *testing.T, spec rtc.Spec, pattern TCPattern, window int64) *pacedRig {
	t.Helper()
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	if err := r.SetConnection(1, 9, uint8(spec.D), 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	p, err := rtc.NewPacer("pacer", r, window)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, spec, spec.D)
	if err != nil {
		t.Fatal(err)
	}
	app, err := NewTCApp("app", ch, spec, pattern, 18)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink("sink", r)
	k.Register(app)
	k.Register(p)
	k.Register(r)
	k.Register(sink)
	return &pacedRig{k: k, r: r, app: app, sink: sink}
}

func TestPeriodicTCApp(t *testing.T) {
	spec := rtc.Spec{Imin: 10, Smax: 18, D: 4}
	rig := newPacedRig(t, spec, Periodic, 2)
	rig.k.Run(100 * packet.TCBytes) // 100 slots
	// One message per 10 slots: about 10 submissions.
	if rig.app.Submitted < 9 || rig.app.Submitted > 11 {
		t.Errorf("Submitted = %d, want ~10", rig.app.Submitted)
	}
	if rig.sink.TCCount < 8 {
		t.Errorf("delivered %d, want most of them", rig.sink.TCCount)
	}
	// Each delivery within its deadline window: latency ≤ (D+1 slot)·20
	// plus pipeline; with d=4 that is well under 200 cycles.
	if max := rig.sink.TCLatency.Max(); max > 200 {
		t.Errorf("max latency %v cycles exceeds deadline regime", max)
	}
}

func TestBackloggedTCAppThroughput(t *testing.T) {
	spec := rtc.Spec{Imin: 5, Smax: 18, D: 5}
	rig := newPacedRig(t, spec, Backlogged, 2)
	rig.k.Run(200 * packet.TCBytes)
	// Backlogged: exactly one message per Imin leaves — reservation-
	// limited throughput, 200/5 = 40 messages (±1 boundary effects).
	if rig.sink.TCCount < 38 || rig.sink.TCCount > 41 {
		t.Errorf("delivered %d messages, want ≈40 (Imin-limited)", rig.sink.TCCount)
	}
}

func TestBurstyTCApp(t *testing.T) {
	spec := rtc.Spec{Imin: 10, Smax: 18, Bmax: 2, D: 6}
	rig := newPacedRig(t, spec, Bursty, 4)
	rig.k.Run(60 * packet.TCBytes)
	// Bursts of 3 every 30 slots: 60 slots → two bursts (6 messages).
	if rig.app.Submitted != 6 {
		t.Errorf("Submitted = %d, want 6", rig.app.Submitted)
	}
	// The regulator smooths them to one per Imin: no deadline misses.
	if rig.r.Stats.TCDeadlineMisses != 0 {
		t.Errorf("misses = %d", rig.r.Stats.TCDeadlineMisses)
	}
}

func TestNewTCAppRejectsOversize(t *testing.T) {
	spec := rtc.Spec{Imin: 10, Smax: 18, D: 4}
	if _, err := NewTCApp("x", nil, spec, Periodic, 50); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestDstPickers(t *testing.T) {
	net := mesh.MustNew(3, 3, router.DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	src := mesh.Coord{X: 1, Y: 1}
	uni := UniformDst(net, src)
	seen := map[mesh.Coord]bool{}
	for i := 0; i < 200; i++ {
		d := uni(rng)
		if d == src {
			t.Fatal("uniform picker returned source")
		}
		if !net.Contains(d) {
			t.Fatal("picker left the mesh")
		}
		seen[d] = true
	}
	if len(seen) != 8 {
		t.Errorf("uniform covered %d nodes, want 8", len(seen))
	}
	if d := FixedDst(mesh.Coord{X: 2, Y: 0})(rng); d != (mesh.Coord{X: 2, Y: 0}) {
		t.Error("fixed picker wrong")
	}
	hot := HotspotDst(net, src, mesh.Coord{X: 0, Y: 0}, 0.9)
	hits := 0
	for i := 0; i < 1000; i++ {
		if hot(rng) == (mesh.Coord{X: 0, Y: 0}) {
			hits++
		}
	}
	if hits < 850 || hits > 980 {
		t.Errorf("hotspot rate %d/1000, want ≈900", hits)
	}
}

func TestSizePickers(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if FixedSize(64)(rng) != 64 {
		t.Error("fixed size wrong")
	}
	u := UniformSize(10, 20)
	for i := 0; i < 100; i++ {
		if s := u(rng); s < 10 || s > 20 {
			t.Fatalf("uniform size %d out of range", s)
		}
	}
}

func TestBEAppRate(t *testing.T) {
	net := mesh.MustNew(2, 1, router.DefaultConfig())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	app, err := NewBEApp("be", net, src, FixedDst(dst), FixedSize(60), 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink("sink", net.Router(dst))
	net.Kernel.Register(app)
	net.Kernel.Register(sink)
	net.Run(20000)
	// Rate 0.5 bytes/cycle → ≈10000 bytes in 20000 cycles.
	if app.InjectedBytes < 9000 || app.InjectedBytes > 10100 {
		t.Errorf("injected %d bytes at rate 0.5 over 20000 cycles", app.InjectedBytes)
	}
	if sink.BECount == 0 {
		t.Fatal("nothing delivered")
	}
	if sink.BELatency.N() == 0 {
		t.Fatal("no latency samples decoded")
	}
}

func TestBEAppErrors(t *testing.T) {
	net := mesh.MustNew(2, 1, router.DefaultConfig())
	if _, err := NewBEApp("x", net, mesh.Coord{X: 9, Y: 9}, nil, nil, 1, 1); err == nil {
		t.Error("source outside mesh accepted")
	}
	if _, err := NewBEApp("x", net, mesh.Coord{X: 0, Y: 0}, FixedDst(mesh.Coord{X: 1, Y: 0}), FixedSize(10), 0, 1); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestSinkObservers(t *testing.T) {
	net := mesh.MustNew(1, 1, router.DefaultConfig())
	r := net.Router(mesh.Coord{X: 0, Y: 0})
	var tcSeen, beSeen int
	sink := NewSink("s", r)
	sink.OnTC = func(router.DeliveredTC) { tcSeen++ }
	sink.OnBE = func(router.DeliveredBE) { beSeen++ }
	net.Kernel.Register(sink)
	if err := r.SetConnection(1, 2, 5, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	r.InjectTC(packet.TCPacket{Conn: 1, Stamp: 0})
	frame, _ := packet.NewBE(0, 0, make([]byte, ProbeBytes))
	r.InjectBE(frame)
	net.Run(500)
	if tcSeen != 1 || beSeen != 1 {
		t.Errorf("observers saw tc=%d be=%d, want 1,1", tcSeen, beSeen)
	}
}

func TestTCAppProbeLatencyIsPositive(t *testing.T) {
	spec := rtc.Spec{Imin: 6, Smax: 18, D: 6}
	rig := newPacedRig(t, spec, Periodic, 0)
	rig.k.Run(50 * packet.TCBytes)
	if rig.sink.TCLatency.N() == 0 {
		t.Fatal("no latency samples")
	}
	if rig.sink.TCLatency.Min() <= 0 {
		t.Errorf("nonpositive latency sample: %v", rig.sink.TCLatency.Min())
	}
	// Slot arithmetic sanity: all below D+2 slots of cycles plus hop
	// pipeline.
	limit := float64((spec.D + 2) * timing.SlotsPerPacket * 2)
	if rig.sink.TCLatency.Max() > limit {
		t.Errorf("latency %v beyond deadline regime %v", rig.sink.TCLatency.Max(), limit)
	}
}
