package experiments

import (
	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

// AdmitResult is the X5 study of Section 3.4's buffer-accounting
// trade-off: the physically shared packet memory can be logically
// partitioned per outgoing link (protecting each link's admissibility) or
// treated as one pool (maximizing admissibility under asymmetric load).
// The study counts admitted channels under both policies for a
// symmetric workload (sources spread over the mesh) and an asymmetric
// one (every channel leaving one corner).
type AdmitResult struct {
	Policies   []string
	Symmetric  []int
	Asymmetric []int
}

// RunAdmit counts admissible channels under both policies and loads.
func RunAdmit() (*AdmitResult, error) {
	res := &AdmitResult{}
	for _, pol := range []admission.BufferPolicy{admission.Partitioned, admission.SharedPool} {
		cfgA := admission.Config{Policy: pol, SourceWindow: 60}
		// Asymmetric: all channels from (0,0), alternating destinations
		// along +x so the corner router's +x partition is the pressured
		// resource.
		asym, err := countAdmitted(cfgA, func(i int) (mesh.Coord, mesh.Coord) {
			return mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1 + i%3, Y: 0}
		})
		if err != nil {
			return nil, err
		}
		// Symmetric: sources and destinations spread around the mesh.
		sym, err := countAdmitted(cfgA, func(i int) (mesh.Coord, mesh.Coord) {
			src := mesh.Coord{X: i % 4, Y: (i / 4) % 4}
			dst := mesh.Coord{X: (i + 2) % 4, Y: (i/4 + 2) % 4}
			return src, dst
		})
		if err != nil {
			return nil, err
		}
		res.Policies = append(res.Policies, pol.String())
		res.Symmetric = append(res.Symmetric, sym)
		res.Asymmetric = append(res.Asymmetric, asym)
	}
	return res, nil
}

func countAdmitted(cfg admission.Config, pick func(i int) (mesh.Coord, mesh.Coord)) (int, error) {
	net, err := mesh.New(4, 4, router.DefaultConfig())
	if err != nil {
		return 0, err
	}
	ctl, err := admission.New(net, cfg)
	if err != nil {
		return 0, err
	}
	spec := rtc.Spec{Imin: 24, Smax: 18, D: 96}
	admitted := 0
	rejected := 0
	for i := 0; i < 2000 && rejected < 64; i++ {
		src, dst := pick(i)
		if src == dst {
			continue
		}
		if _, err := ctl.Admit(src, []mesh.Coord{dst}, spec); err != nil {
			rejected++
			continue
		}
		admitted++
	}
	return admitted, nil
}

// Table renders the study.
func (r *AdmitResult) Table() *Table {
	t := &Table{
		Title:  "X5 — channel admissibility: partitioned vs. shared packet memory (4x4 mesh)",
		Header: []string{"buffer policy", "symmetric load", "asymmetric load (one corner)"},
	}
	for i, p := range r.Policies {
		t.AddRow(p, di(r.Symmetric[i]), di(r.Asymmetric[i]))
	}
	t.AddNote("shared accounting admits more channels when load concentrates on few links;")
	t.AddNote("partitioning preserves admissibility headroom on every link (paper §3.4)")
	return t
}
