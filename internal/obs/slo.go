package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/router"
	"repro/internal/sched"
)

// Endpoint names one (router, connection id) pair. Admission assigns a
// router's incoming hop ids and local delivery ids from one shared id
// space, so an Endpoint is unambiguous: it is either a hop traversal or
// a delivery point of exactly one live channel.
type Endpoint struct {
	Router string
	Conn   uint8
}

// Hop is one router traversal of a channel as seen by the SLO layer:
// the router's name and the connection id packets carry arriving there.
type Hop struct {
	Router string
	In     uint8
	Out    uint8
}

// ChannelInfo is the static identity of one monitored channel.
type ChannelInfo struct {
	ID   int
	Name string
	Src  string
	Dst  string
	// BoundSlots is the reserved end-to-end delay bound in slots
	// (admission.Channel.Bound): LocalD per traversed router.
	BoundSlots int64
	// Hops lists every router traversal, source first; Deliver lists the
	// delivery endpoints (destination router, delivery conn id).
	Hops    []Hop
	Deliver []Endpoint
}

// ChannelStats accumulates one channel's SLO observations. All updates
// are atomic and commutative, so parallel and sequential runs of the
// same workload produce identical snapshots.
type ChannelStats struct {
	info      ChannelInfo
	delivered atomic.Int64
	misses    atomic.Int64 // deliveries with negative end-to-end slack
	hopMisses atomic.Int64 // transmissions started past the local d_j
	early     atomic.Int64 // horizon-early transmissions
	latency   LogHist      // end-to-end delivery latency, byte cycles
	slack     LogHist      // end-to-end slack at delivery, slots
	hopSlack  LogHist      // per-hop slack at transmit, slots
}

// Info returns the channel's registered identity.
func (c *ChannelStats) Info() ChannelInfo { return c.info }

// Delivered returns the packets delivered so far.
func (c *ChannelStats) Delivered() int64 { return c.delivered.Load() }

// Misses returns deliveries that arrived past the end-to-end deadline.
func (c *ChannelStats) Misses() int64 { return c.misses.Load() }

// HopMisses returns per-hop transmissions that started past d_j; it
// mirrors the hardware DeadlineMisses counter restricted to this
// channel's hops.
func (c *ChannelStats) HopMisses() int64 { return c.hopMisses.Load() }

// EarlyTx returns horizon-early transmissions on this channel's hops.
func (c *ChannelStats) EarlyTx() int64 { return c.early.Load() }

// Latency exposes the end-to-end latency histogram (byte cycles).
func (c *ChannelStats) Latency() *LogHist { return &c.latency }

// Slack exposes the end-to-end delivery-slack histogram (slots).
func (c *ChannelStats) Slack() *LogHist { return &c.slack }

// HopSlack exposes the per-hop transmit-slack histogram (slots).
func (c *ChannelStats) HopSlack() *LogHist { return &c.hopSlack }

// Snapshot copies the channel's accounting into export form.
func (c *ChannelStats) Snapshot() metrics.ChannelSnapshot {
	return metrics.ChannelSnapshot{
		ID:         c.info.ID,
		Name:       c.info.Name,
		Src:        c.info.Src,
		Dst:        c.info.Dst,
		BoundSlots: c.info.BoundSlots,
		Delivered:  c.delivered.Load(),
		Misses:     c.misses.Load(),
		HopMisses:  c.hopMisses.Load(),
		EarlyTx:    c.early.Load(),
		Latency:    c.latency.Snapshot(),
		Slack:      c.slack.Snapshot(),
		HopSlack:   c.hopSlack.Snapshot(),
	}
}

func (c *ChannelStats) reset() {
	c.delivered.Store(0)
	c.misses.Store(0)
	c.hopMisses.Store(0)
	c.early.Store(0)
	c.latency.Reset()
	c.slack.Reset()
	c.hopSlack.Reset()
}

// SLO routes lifecycle observations and sink latencies to per-channel
// accountants. Lookups on the packet path take a read lock only (the
// endpoint table mutates solely on channel open/reroute/close, which
// happen between kernel phases); the accounting itself is atomic, so
// routers on different nodes may observe into one SLO concurrently.
type SLO struct {
	mu     sync.RWMutex
	chans  []*ChannelStats
	byConn map[Endpoint]*ChannelStats
}

// NewSLO returns an empty SLO tracker.
func NewSLO() *SLO {
	return &SLO{byConn: make(map[Endpoint]*ChannelStats)}
}

// Register adds a channel and indexes its hop and delivery endpoints.
func (s *SLO) Register(info ChannelInfo) *ChannelStats {
	cs := &ChannelStats{info: info}
	cs.latency.Init()
	cs.slack.Init()
	cs.hopSlack.Init()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chans = append(s.chans, cs)
	s.bindLocked(cs)
	return cs
}

func (s *SLO) bindLocked(cs *ChannelStats) {
	for _, h := range cs.info.Hops {
		s.byConn[Endpoint{Router: h.Router, Conn: h.In}] = cs
	}
	for _, d := range cs.info.Deliver {
		s.byConn[d] = cs
	}
}

func (s *SLO) unbindLocked(cs *ChannelStats) {
	for _, h := range cs.info.Hops {
		delete(s.byConn, Endpoint{Router: h.Router, Conn: h.In})
	}
	for _, d := range cs.info.Deliver {
		delete(s.byConn, d)
	}
}

// Rebind swaps a channel's endpoints after a reroute: accumulated
// statistics stay, the endpoint index follows the new route.
func (s *SLO) Rebind(cs *ChannelStats, hops []Hop, deliver []Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unbindLocked(cs)
	cs.info.Hops = hops
	cs.info.Deliver = deliver
	s.bindLocked(cs)
}

// Detach removes a closed channel's endpoints; its accumulated
// statistics remain visible in Channels and Export.
func (s *SLO) Detach(cs *ChannelStats) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.unbindLocked(cs)
}

// Channels returns the registered channels in registration order.
func (s *SLO) Channels() []*ChannelStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*ChannelStats(nil), s.chans...)
}

// Reset zeroes every channel's accounting, keeping registrations — the
// warmup-reset idiom.
func (s *SLO) Reset() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, cs := range s.chans {
		cs.reset()
	}
}

// lookup resolves an endpoint to its channel, or nil.
func (s *SLO) lookup(rtr string, conn uint8) *ChannelStats {
	s.mu.RLock()
	cs := s.byConn[Endpoint{Router: rtr, Conn: conn}]
	s.mu.RUnlock()
	return cs
}

// ChannelName resolves an endpoint to its channel's display name; ok is
// false when no live channel owns the (router, conn) pair. The blame
// matrix uses it to turn per-router connection ids into channel labels.
func (s *SLO) ChannelName(rtr string, conn uint8) (string, bool) {
	if cs := s.lookup(rtr, conn); cs != nil {
		return cs.info.Name, true
	}
	return "", false
}

// Observe feeds one lifecycle event into the accounting. Transmit
// events record per-hop slack, hop misses (the Missed flag, which
// mirrors the hardware DeadlineMisses counter), and horizon-early
// sends; deliver events record end-to-end slack and misses. Other kinds
// are ignored here — the Sharded collector keeps the full stream.
func (s *SLO) Observe(ev router.LifecycleEvent) {
	if ev.BE {
		return
	}
	switch ev.Kind {
	case router.EvTransmit:
		cs := s.lookup(ev.Router, ev.InConn)
		if cs == nil {
			return
		}
		cs.hopSlack.Record(ev.Slack)
		if ev.Missed {
			cs.hopMisses.Add(1)
		}
		if ev.Class == sched.ClassEarly {
			cs.early.Add(1)
		}
	case router.EvDeliver:
		cs := s.lookup(ev.Router, ev.InConn)
		if cs == nil {
			return
		}
		cs.delivered.Add(1)
		cs.slack.Record(ev.Slack)
		if ev.Slack < 0 {
			cs.misses.Add(1)
		}
	}
}

// RecordLatency notes one probe-measured end-to-end delivery latency in
// byte cycles, keyed by the delivery endpoint (traffic.Sink.OnTCLatency
// supplies these).
func (s *SLO) RecordLatency(rtr string, conn uint8, cycles int64) {
	if cs := s.lookup(rtr, conn); cs != nil {
		cs.latency.Record(cycles)
	}
}

// Attach chains the SLO observer into a router's lifecycle hook,
// preserving any hook already installed.
func (s *SLO) Attach(r *router.Router) {
	prev := r.OnLifecycle
	r.OnLifecycle = func(ev router.LifecycleEvent) {
		s.Observe(ev)
		if prev != nil {
			prev(ev)
		}
	}
}

// Export snapshots every registered channel in registration order, in
// the shape metrics.Registry expects from SetChannelSource.
func (s *SLO) Export() []metrics.ChannelSnapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]metrics.ChannelSnapshot, len(s.chans))
	for i, cs := range s.chans {
		out[i] = cs.Snapshot()
	}
	return out
}

// Report writes the per-channel SLO table: delivery counts, latency
// p50/p99/worst (byte cycles), end-to-end slack p50/min (slots, against
// the reserved bound), and the miss/early counters. Latency rows show
// "-" when no probe-carrying traffic was delivered (latency needs the
// 12-byte probe payload; slack is measured for every delivery).
func (s *SLO) Report(w io.Writer) {
	chans := s.Channels()
	fmt.Fprintf(w, "%-22s %9s %7s %7s %7s %7s %7s %7s %6s %6s %6s\n",
		"channel", "delivered",
		"lat p50", "lat p99", "lat max",
		"slk p50", "slk min", "bound",
		"miss", "hopmis", "early")
	for _, cs := range chans {
		snap := cs.Snapshot()
		lat50, lat99, latMax := "-", "-", "-"
		if snap.Latency.Count > 0 {
			lat50 = fmt.Sprint(snap.Latency.P50)
			lat99 = fmt.Sprint(snap.Latency.P99)
			latMax = fmt.Sprint(snap.Latency.Max)
		}
		slk50, slkMin := "-", "-"
		if snap.Slack.Count > 0 {
			slk50 = fmt.Sprint(snap.Slack.P50)
			slkMin = fmt.Sprint(snap.Slack.Min)
		}
		fmt.Fprintf(w, "%-22s %9d %7s %7s %7s %7s %7s %7d %6d %6d %6d\n",
			snap.Name, snap.Delivered,
			lat50, lat99, latMax,
			slk50, slkMin, snap.BoundSlots,
			snap.Misses, snap.HopMisses, snap.EarlyTx)
	}
}
