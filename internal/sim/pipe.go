package sim

// Pipe is a fixed-latency delay line: a value written at cycle t is
// readable exactly at cycle t+latency, for that one cycle, and then
// expires — the same single-edge wire semantics as a chain of `latency`
// Regs, but with no per-cycle commit work at all.
//
// The implementation is a power-of-two ring of (stamp, value) slots
// indexed by arrival cycle. Writing stores the value under its arrival
// stamp; reading checks that the slot's stamp matches the current
// cycle, so stale values need no draining. Because the ring holds at
// least 2×latency slots, a reader probing cycles [t, t+k) and a writer
// storing cycles [t+latency, t+k+latency) touch disjoint slots whenever
// k ≤ latency — the property that makes epoch-synchronized execution
// race-free (see Kernel.SetEpoch).
//
// A Pipe carries values from exactly one writing component to exactly
// one reading component, at most one value per cycle. It is not a
// Latchable: pipes register with the kernel through AttachPipe, which
// records the wire's latency for the epoch legality check and its
// occupancy probes for quiescence skipping.
type Pipe[T any] struct {
	lat   Cycle
	mask  int64
	slots []pipeSlot[T]
}

type pipeSlot[T any] struct {
	stamp Cycle // arrival cycle of val, or -1 when never written
	val   T
}

// NewPipe returns a delay line of the given latency (cycles from write
// to read, at least 1). Latency 1 is bit-identical to a plain Reg wire.
func NewPipe[T any](latency int64) *Pipe[T] {
	if latency < 1 {
		panic("sim: pipe latency must be >= 1")
	}
	size := int64(1)
	for size < 2*latency {
		size <<= 1
	}
	p := &Pipe[T]{lat: Cycle(latency), mask: size - 1, slots: make([]pipeSlot[T], size)}
	for i := range p.slots {
		p.slots[i].stamp = -1
	}
	return p
}

// Latency returns the write-to-read delay in cycles.
func (p *Pipe[T]) Latency() int64 { return int64(p.lat) }

// Write drives v onto the wire at cycle now; it arrives at now+latency.
func (p *Pipe[T]) Write(now Cycle, v T) {
	at := now + p.lat
	s := &p.slots[int64(at)&p.mask]
	s.stamp, s.val = at, v
}

// Read returns the value arriving exactly at cycle now, or the zero
// value if the wire is idle this cycle. Reading does not consume: the
// slot expires on its own when the clock moves past it.
func (p *Pipe[T]) Read(now Cycle) T {
	s := &p.slots[int64(now)&p.mask]
	if s.stamp == now {
		return s.val
	}
	var zero T
	return zero
}

// NextStamp returns the earliest in-flight arrival at or after now, or
// Never when nothing is due. It scans the whole ring and is only safe
// at a synchronization point (the kernel's between-cycle skip probe).
func (p *Pipe[T]) NextStamp(now Cycle) Cycle {
	best := Never
	for i := range p.slots {
		if s := p.slots[i].stamp; s >= now && s < best {
			best = s
		}
	}
	return best
}

// HasStampIn reports whether any value arrives in [now, end). It probes
// only the slots those cycles map to — indices no concurrent writer can
// touch while end-now stays within the epoch legality bound — so the
// per-tile skip may call it while other tiles are still ticking.
func (p *Pipe[T]) HasStampIn(now, end Cycle) bool {
	for c := now; c < end; c++ {
		if p.slots[int64(c)&p.mask].stamp == c {
			return true
		}
	}
	return false
}

// PipeState is the kernel's view of an attached delay line.
type PipeState interface {
	Latency() int64
	NextStamp(now Cycle) Cycle
	HasStampIn(now, end Cycle) bool
}

// pipeEntry records one attached pipe with the shards of its single
// writer and single reader (-1 when unknown).
type pipeEntry struct {
	p      PipeState
	writer int
	reader int
}

// AttachPipe registers a delay line with the kernel. writerShard and
// readerShard name the shards of the pipe's driving and receiving
// components (pass -1 when unknown — the kernel then treats the wire as
// cross-shard for the epoch legality check and never tile-skips past
// it). The latency of the slowest-safe epoch derives from the minimum
// latency over all cross-shard pipes.
func (k *Kernel) AttachPipe(p PipeState, writerShard, readerShard int) {
	if p == nil {
		panic("sim: AttachPipe(nil)")
	}
	k.pipes = append(k.pipes, pipeEntry{p: p, writer: writerShard, reader: readerShard})
	k.planDirty = true
	k.syncDirty = true
}
