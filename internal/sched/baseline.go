package sched

import (
	"fmt"

	"repro/internal/timing"
)

// FIFO is an ablation scheduler: time-constrained packets leave each port
// in arrival order, with no deadline awareness. It models a conventional
// output-queued packet switch and is the "what if we drop the comparator
// tree" baseline for the miss-rate comparisons in EXPERIMENTS.md.
//
// Packets are always reported on-time (the hardware has no notion of
// logical arrival time), so the horizon argument is ignored and early
// traffic is never held back — one of the two behaviours the real-time
// design exists to fix (the other being deadline order).
type FIFO struct {
	leaves []Leaf
	queues [NumPorts][]int
	inUse  int
}

// NewFIFO returns a FIFO scheduler with the given number of leaf slots.
func NewFIFO(slots int) *FIFO {
	if slots <= 0 {
		panic("sched: slots must be positive")
	}
	return &FIFO{leaves: make([]Leaf, slots)}
}

// Install implements Scheduler.
func (f *FIFO) Install(slot int, leaf Leaf) error {
	if slot < 0 || slot >= len(f.leaves) {
		return fmt.Errorf("sched: slot %d out of range [0,%d)", slot, len(f.leaves))
	}
	if f.leaves[slot].InUse {
		return fmt.Errorf("sched: slot %d already in use", slot)
	}
	if leaf.Mask == 0 {
		return fmt.Errorf("sched: installing leaf with empty port mask")
	}
	leaf.InUse = true
	f.leaves[slot] = leaf
	f.inUse++
	for p := 0; p < NumPorts; p++ {
		if leaf.Mask.Has(p) {
			f.queues[p] = append(f.queues[p], slot)
		}
	}
	return nil
}

// Select implements Scheduler: head of the port's FIFO, always on-time.
func (f *FIFO) Select(port int, _ timing.Stamp, _ uint32) Selection {
	q := f.queues[port]
	if len(q) == 0 {
		return Selection{Slot: -1, Class: ClassNone}
	}
	return Selection{Slot: q[0], Class: ClassOnTime}
}

// ClearPort implements Scheduler.
func (f *FIFO) ClearPort(slot, port int) (bool, error) {
	if slot < 0 || slot >= len(f.leaves) {
		return false, fmt.Errorf("sched: slot %d out of range", slot)
	}
	lf := &f.leaves[slot]
	if !lf.InUse || !lf.Mask.Has(port) {
		return false, fmt.Errorf("sched: invalid clear of slot %d port %d", slot, port)
	}
	q := f.queues[port]
	if len(q) == 0 || q[0] != slot {
		return false, fmt.Errorf("sched: FIFO clear of slot %d which is not at head of port %d", slot, port)
	}
	f.queues[port] = q[1:]
	lf.Mask = lf.Mask.Clear(port)
	if lf.Mask == 0 {
		*lf = Leaf{}
		f.inUse--
		return true, nil
	}
	return false, nil
}

// Leaf implements Scheduler.
func (f *FIFO) Leaf(slot int) Leaf { return f.leaves[slot] }

// Occupancy implements Scheduler.
func (f *FIFO) Occupancy() int { return f.inUse }

// Slots implements Scheduler.
func (f *FIFO) Slots() int { return len(f.leaves) }

// SkipIdleSelects implements IdleSkipper: FIFO Select is pure.
func (f *FIFO) SkipIdleSelects(int64) {}

// StaticPriority is an ablation scheduler that serves time-constrained
// packets by a fixed per-connection priority rather than per-packet
// deadlines — the priority-resolution approach of priority-forwarding
// routers and priority virtual channels discussed in the paper's Related
// Work. The connection table's delay field is reused as the priority
// (smaller = more urgent); packets are always eligible (no logical
// arrival gating), and FIFO order breaks priority ties.
type StaticPriority struct {
	leaves []Leaf
	prio   []uint8
	seq    []int64
	next   int64
	inUse  int
}

// NewStaticPriority returns a static-priority scheduler with the given
// number of leaf slots.
func NewStaticPriority(slots int) *StaticPriority {
	if slots <= 0 {
		panic("sched: slots must be positive")
	}
	return &StaticPriority{
		leaves: make([]Leaf, slots),
		prio:   make([]uint8, slots),
		seq:    make([]int64, slots),
	}
}

// Install implements Scheduler. The leaf's deadline field carries the
// static priority: priority = ℓ+d − ℓ = the connection's delay parameter.
func (s *StaticPriority) Install(slot int, leaf Leaf) error {
	if slot < 0 || slot >= len(s.leaves) {
		return fmt.Errorf("sched: slot %d out of range [0,%d)", slot, len(s.leaves))
	}
	if s.leaves[slot].InUse {
		return fmt.Errorf("sched: slot %d already in use", slot)
	}
	if leaf.Mask == 0 {
		return fmt.Errorf("sched: installing leaf with empty port mask")
	}
	leaf.InUse = true
	s.leaves[slot] = leaf
	s.prio[slot] = uint8(leaf.Dl - leaf.L)
	s.seq[slot] = s.next
	s.next++
	s.inUse++
	return nil
}

// Select implements Scheduler: lowest priority value wins, FIFO within a
// priority level.
func (s *StaticPriority) Select(port int, _ timing.Stamp, _ uint32) Selection {
	best := -1
	for i := range s.leaves {
		if !s.leaves[i].InUse || !s.leaves[i].Mask.Has(port) {
			continue
		}
		if best < 0 || s.prio[i] < s.prio[best] ||
			(s.prio[i] == s.prio[best] && s.seq[i] < s.seq[best]) {
			best = i
		}
	}
	if best < 0 {
		return Selection{Slot: -1, Class: ClassNone}
	}
	return Selection{Slot: best, Class: ClassOnTime, Key: timing.Key(s.prio[best])}
}

// ClearPort implements Scheduler.
func (s *StaticPriority) ClearPort(slot, port int) (bool, error) {
	if slot < 0 || slot >= len(s.leaves) {
		return false, fmt.Errorf("sched: slot %d out of range", slot)
	}
	lf := &s.leaves[slot]
	if !lf.InUse || !lf.Mask.Has(port) {
		return false, fmt.Errorf("sched: invalid clear of slot %d port %d", slot, port)
	}
	lf.Mask = lf.Mask.Clear(port)
	if lf.Mask == 0 {
		*lf = Leaf{}
		s.inUse--
		return true, nil
	}
	return false, nil
}

// Leaf implements Scheduler.
func (s *StaticPriority) Leaf(slot int) Leaf { return s.leaves[slot] }

// Occupancy implements Scheduler.
func (s *StaticPriority) Occupancy() int { return s.inUse }

// Slots implements Scheduler.
func (s *StaticPriority) Slots() int { return len(s.leaves) }

// SkipIdleSelects implements IdleSkipper: an empty scan is pure.
func (s *StaticPriority) SkipIdleSelects(int64) {}

// Compile-time interface checks.
var (
	_ Scheduler = (*EDFTree)(nil)
	_ Scheduler = (*FIFO)(nil)
	_ Scheduler = (*StaticPriority)(nil)
	_ Scheduler = (*Tournament)(nil)

	_ IdleSkipper = (*EDFTree)(nil)
	_ IdleSkipper = (*FIFO)(nil)
	_ IdleSkipper = (*StaticPriority)(nil)
	_ IdleSkipper = (*Tournament)(nil)
	_ IdleSkipper = (*ApproxEDF)(nil)
)
