package experiments

import "testing"

// TestRunApprox checks the graceful-degradation shape of the Section 7
// extension: exact EDF (shift 0) misses nothing; quantization is
// monotone-ish in the tight stream's p99 and must not break the loose
// class, whose slack dwarfs every bucket size tested.
func TestRunApprox(t *testing.T) {
	res, err := RunApprox([]uint{0, 2, 4}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if res.TightMiss[0] != 0 {
		t.Errorf("exact EDF (shift 0) tight miss rate %.3f, want 0", res.TightMiss[0])
	}
	if res.KeyBits[0] != 9 || res.KeyBits[2] != 5 {
		t.Errorf("key widths %v, want 9..5", res.KeyBits)
	}
	for i := range res.Shifts {
		if res.LooseMiss[i] != 0 {
			t.Errorf("shift %d: loose class misses %.3f; buckets cannot threaten 16-slot slack",
				res.Shifts[i], res.LooseMiss[i])
		}
	}
	// The tight stream's tail latency must not improve as precision
	// drops.
	if res.TightP99[2] < res.TightP99[0] {
		t.Errorf("p99 improved with coarser keys: %v", res.TightP99)
	}
	if _, err := RunApprox(nil, 40000); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunApprox([]uint{9}, 40000); err == nil {
		t.Error("shift consuming the whole key accepted")
	}
}

// TestRunLoadSweep checks the class-separation shape: best-effort
// latency grows with offered load while the reserved class never
// misses.
func TestRunLoadSweep(t *testing.T) {
	res, err := RunLoadSweep([]float64{0.05, 0.5}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range res.TCMisses {
		if m != 0 {
			t.Errorf("rate %.2f: %d time-constrained misses", res.Rates[i], m)
		}
	}
	if res.BEMean[1] <= res.BEMean[0] {
		t.Errorf("best-effort latency did not grow with load: %v", res.BEMean)
	}
	if res.BEDeliv[0] == 0 || res.BEDeliv[1] == 0 {
		t.Error("best-effort starved")
	}
	if res.Channels == 0 {
		t.Error("no reserved channels opened")
	}
	if _, err := RunLoadSweep(nil, 30000); err == nil {
		t.Error("empty sweep accepted")
	}
}
