package router

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Channel is one unidirectional physical link: a phit wire forward and
// an acknowledgement wire back, each a fixed-latency delay line. A mesh
// wires two Channels (one per direction) between each pair of
// neighbours. The default latency of one cycle is the paper's wire; a
// longer latency models a pipelined board-level link, and — because the
// kernel learns each wire's latency — is also what licenses epoch
// synchronization in the parallel engine.
type Channel struct {
	data *sim.Pipe[packet.Phit]
	ack  *sim.Pipe[packet.Ack]
}

// NewChannel creates a one-cycle channel with unknown endpoint shards
// and registers its wires with the kernel. Meshes use NewChannelShards
// so the kernel can derive epoch legality from the wire.
func NewChannel(k *sim.Kernel) *Channel {
	return NewChannelShards(k, 1, -1, -1)
}

// NewChannelShards creates a channel of the given latency between a
// driving component in srcShard and a receiving component in dstShard
// (-1 when unknown), and registers both wires with the kernel: the phit
// wire carries src→dst, the ack wire dst→src.
func NewChannelShards(k *sim.Kernel, latency int64, srcShard, dstShard int) *Channel {
	c := &Channel{
		data: sim.NewPipe[packet.Phit](latency),
		ack:  sim.NewPipe[packet.Ack](latency),
	}
	k.AttachPipe(c.data, srcShard, dstShard)
	k.AttachPipe(c.ack, dstShard, srcShard)
	return c
}

// Latency returns the channel's one-way wire latency in cycles.
func (c *Channel) Latency() int64 { return c.data.Latency() }

// Out returns the sending end of the channel.
func (c *Channel) Out() *OutLink { return &OutLink{c} }

// In returns the receiving end of the channel.
func (c *Channel) In() *InLink { return &InLink{c} }

// OutLink is the transmit side of a channel: drive phits, read acks.
type OutLink struct{ ch *Channel }

// Drive places a phit on the wire at cycle now; it arrives at the far
// end after the channel latency.
func (o *OutLink) Drive(now int64, p packet.Phit) { o.ch.data.Write(sim.Cycle(now), p) }

// Ack returns the acknowledgement arriving from the receiver at now.
func (o *OutLink) Ack(now int64) packet.Ack { return o.ch.ack.Read(sim.Cycle(now)) }

// Latency returns the channel's one-way wire latency in cycles.
func (o *OutLink) Latency() int64 { return o.ch.Latency() }

// InLink is the receive side of a channel: read phits, drive acks.
type InLink struct{ ch *Channel }

// Phit returns the phit arriving on the wire at cycle now.
func (i *InLink) Phit(now int64) packet.Phit { return i.ch.data.Read(sim.Cycle(now)) }

// DriveAck returns a flit credit to the sender at cycle now.
func (i *InLink) DriveAck(now int64, a packet.Ack) { i.ch.ack.Write(sim.Cycle(now), a) }

// Latency returns the channel's one-way wire latency in cycles.
func (i *InLink) Latency() int64 { return i.ch.Latency() }

// Loopback wires an output port of a router directly to one of its own
// input ports through a normal one-cycle channel, reproducing the
// single-chip multi-hop configuration of the paper's first experiment.
func Loopback(k *sim.Kernel, r *Router, outPort, inPort int) {
	ch := NewChannel(k)
	r.ConnectOut(outPort, ch.Out())
	r.ConnectIn(inPort, ch.In())
}
