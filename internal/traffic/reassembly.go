package traffic

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
)

// Message is one reassembled application message.
type Message struct {
	Conn    uint8  // delivery identifier
	Stamp   uint8  // the message's final deadline stamp
	Payload []byte // Smax bytes (per-spec padding included)
	Cycle   int64  // completion cycle (last packet's delivery)
}

// Reassembler groups delivered time-constrained packets back into the
// multi-packet messages the source regulator split (rtc.Spec messages
// larger than one 18-byte payload). The network carries and schedules
// messages as trains of packets sharing a connection id and deadline
// stamp; reassembly is the application-side inverse, which the paper
// leaves to the node processor.
//
// Grouping is by (conn, stamp): every packet of one message carries the
// same logical arrival time, and the regulator's Imin spacing keeps
// consecutive messages' stamps distinct within the clock's half range.
// Packets of one message can in principle reorder relative to each
// other (the comparator tree breaks deadline ties by memory slot, not
// arrival order), so payload positions within a message are the
// application's contract — the probe convention puts sequencing in the
// payload when it matters.
type Reassembler struct {
	expect  map[uint8]int // packets per message, by delivery conn id
	partial map[reKey]*partialMsg

	// Complete is invoked for every finished message.
	Complete func(Message)
	// Messages counts completed reassemblies.
	Messages int64
	// Dropped counts partial messages abandoned by Flush.
	Dropped int64
}

type reKey struct {
	conn  uint8
	stamp uint8
}

type partialMsg struct {
	chunks [][]byte
	got    int
	cycle  int64
}

// NewReassembler creates a reassembler. Register each delivery id with
// Expect before packets arrive.
func NewReassembler() *Reassembler {
	return &Reassembler{
		expect:  make(map[uint8]int),
		partial: make(map[reKey]*partialMsg),
	}
}

// Expect declares the message geometry of one delivery identifier.
func (ra *Reassembler) Expect(conn uint8, spec rtc.Spec) error {
	n := spec.PacketsPerMessage()
	if n < 1 {
		return fmt.Errorf("traffic: spec with %d packets per message", n)
	}
	ra.expect[conn] = n
	return nil
}

// Push feeds one delivered packet; it returns the completed message
// when this packet was the last of its group.
func (ra *Reassembler) Push(d router.DeliveredTC) (Message, bool) {
	n, ok := ra.expect[d.Conn]
	if !ok {
		return Message{}, false
	}
	if n == 1 {
		m := Message{Conn: d.Conn, Stamp: d.Stamp, Payload: append([]byte(nil), d.Payload[:]...), Cycle: d.Cycle}
		ra.finish(m)
		return m, true
	}
	key := reKey{d.Conn, d.Stamp}
	p, ok := ra.partial[key]
	if !ok {
		p = &partialMsg{chunks: make([][]byte, 0, n)}
		ra.partial[key] = p
	}
	p.chunks = append(p.chunks, append([]byte(nil), d.Payload[:]...))
	p.got++
	if d.Cycle > p.cycle {
		p.cycle = d.Cycle
	}
	if p.got < n {
		return Message{}, false
	}
	delete(ra.partial, key)
	payload := make([]byte, 0, n*packet.TCPayloadBytes)
	for _, c := range p.chunks {
		payload = append(payload, c...)
	}
	m := Message{Conn: d.Conn, Stamp: d.Stamp, Payload: payload, Cycle: p.cycle}
	ra.finish(m)
	return m, true
}

func (ra *Reassembler) finish(m Message) {
	ra.Messages++
	if ra.Complete != nil {
		ra.Complete(m)
	}
}

// Pending returns the number of incomplete messages in flight.
func (ra *Reassembler) Pending() int { return len(ra.partial) }

// Flush abandons all partial messages (e.g. at teardown) and returns
// how many were dropped.
func (ra *Reassembler) Flush() int {
	n := len(ra.partial)
	ra.partial = make(map[reKey]*partialMsg)
	ra.Dropped += int64(n)
	return n
}

// AttachReassembler chains a reassembler onto a sink's delivery
// observer, preserving any existing observer.
func AttachReassembler(s *Sink, ra *Reassembler) {
	prev := s.OnTC
	s.OnTC = func(d router.DeliveredTC) {
		ra.Push(d)
		if prev != nil {
			prev(d)
		}
	}
}
