package rtc

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/timing"
)

// Pacer is the source-side rate regulator: the piece of protocol
// software that holds locally generated messages until they come within
// a bounded window of their logical arrival times, then hands them to
// the router's time-constrained injection port.
//
// The window plays the role of h(j−1)+d(j−1) for the first hop: it
// bounds how far ahead of ℓ0 a packet can reach the source router, and
// therefore both the router buffers the connection must reserve there
// and the rollover-safety of its header stamps. A window of zero injects
// only on-time traffic.
//
// The injection port is itself a serial resource — one byte per cycle,
// shared by every channel sourced at the node — so the pacer doubles as
// its link scheduler: among eligible messages it releases the one with
// the earliest local deadline ℓ0+d, and only when the port has drained
// its previous release. The admission controller runs the same
// schedulability test on the injection port as on any mesh link, with
// this EDF order making the test sound.
//
// Pacer implements sim.Component and must be registered with the kernel
// before the routers it feeds (see sim package docs on node ordering).
type Pacer struct {
	name   string
	r      *router.Router
	wheel  timing.Wheel
	window int64
	chans  []*PacedChannel
}

// NewPacer creates a regulator feeding the given router's injection
// port.
func NewPacer(name string, r *router.Router, window int64) (*Pacer, error) {
	if window < 0 {
		return nil, fmt.Errorf("rtc: negative pacer window %d", window)
	}
	if !r.Wheel().ValidDelay(window) {
		return nil, fmt.Errorf("rtc: pacer window %d exceeds half the clock range", window)
	}
	return &Pacer{name: name, r: r, wheel: r.Wheel(), window: window}, nil
}

// Window returns the regulator window in slots.
func (p *Pacer) Window() int64 { return p.window }

// queuedMsg is one message awaiting injection.
type queuedMsg struct {
	l       timing.Slot
	packets [][packet.TCPayloadBytes]byte
}

// PacedChannel is the source-side handle of one real-time channel.
type PacedChannel struct {
	conn   uint8
	spec   Spec
	localD int64
	src    *Source

	// queue is head-indexed: releases advance qHead instead of
	// reslicing, so the backing array is reused rather than regrown in
	// steady state; pool recycles the packet slices of fully injected
	// messages (InjectTC copies the payloads), so a periodic source
	// stops allocating once the pool warms up.
	queue []queuedMsg
	qHead int
	pool  [][][packet.TCPayloadBytes]byte

	closed bool

	// Sent counts messages injected into the network.
	Sent int64
	// ContractViolations counts messages submitted beyond the Imin/Bmax
	// envelope. They are still carried — logical arrival times confine
	// the damage to this connection — but flagged for the application.
	ContractViolations int64
}

// Channel registers a connection on this pacer. The conn identifier
// must match the entry programmed into the source router's table, and
// localD its local delay bound d — the pacer orders releases by the
// resulting deadlines ℓ0+d.
func (p *Pacer) Channel(conn uint8, spec Spec, localD int64) (*PacedChannel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if localD < 1 {
		return nil, fmt.Errorf("rtc: local delay bound %d must be positive", localD)
	}
	c := &PacedChannel{conn: conn, spec: spec, localD: localD, src: NewSource(spec)}
	p.chans = append(p.chans, c)
	return c, nil
}

// Submit queues one message for transmission at slot now. Messages
// longer than Smax are rejected; shorter ones are padded to whole
// packets. Each packet carries the message's logical arrival stamp.
func (c *PacedChannel) Submit(now timing.Slot, payload []byte) error {
	if c.closed {
		return fmt.Errorf("rtc: channel closed")
	}
	if len(payload) > c.spec.Smax {
		return fmt.Errorf("rtc: message of %d bytes exceeds Smax %d", len(payload), c.spec.Smax)
	}
	l := c.src.Next(now)
	if c.src.Backlog(now) > c.spec.Imin*int64(c.spec.Bmax) {
		c.ContractViolations++
	}
	n := c.spec.PacketsPerMessage()
	var pks [][packet.TCPayloadBytes]byte
	if l := len(c.pool); l > 0 && cap(c.pool[l-1]) >= n {
		pks = c.pool[l-1][:n]
		c.pool[l-1] = nil
		c.pool = c.pool[:l-1]
	} else {
		pks = make([][packet.TCPayloadBytes]byte, n)
	}
	for i := 0; i < n; i++ {
		var m int
		if lo := i * packet.TCPayloadBytes; lo < len(payload) {
			m = copy(pks[i][:], payload[lo:])
		}
		clear(pks[i][m:]) // recycled buffers must read as zero padding
	}
	if c.qHead > 0 && len(c.queue) == cap(c.queue) {
		k := copy(c.queue, c.queue[c.qHead:])
		for i := k; i < len(c.queue); i++ {
			c.queue[i] = queuedMsg{}
		}
		c.queue = c.queue[:k]
		c.qHead = 0
	}
	c.queue = append(c.queue, queuedMsg{l: l, packets: pks})
	return nil
}

// Pending returns the number of queued (not yet injected) messages.
func (c *PacedChannel) Pending() int { return len(c.queue) - c.qHead }

// Remove unbinds a channel from the regulator; queued messages are
// dropped. Used at teardown and re-establishment.
func (p *Pacer) Remove(ch *PacedChannel) {
	ch.closed = true
	for i, c := range p.chans {
		if c == ch {
			p.chans = append(p.chans[:i], p.chans[i+1:]...)
			return
		}
	}
}

// Name implements sim.Component.
func (p *Pacer) Name() string { return p.name }

// Tick implements sim.Component: when the injection port has drained
// its previous release, hand it the eligible message (ℓ0 within the
// window) with the earliest local deadline ℓ0+d.
func (p *Pacer) Tick(now sim.Cycle) {
	// Most nodes of a large mesh source no real-time channels at all;
	// their pacers are pure overhead, so get out before touching the
	// router.
	if len(p.chans) == 0 {
		return
	}
	// Keeping at most one packet queued behind the one crossing the port
	// leaves no idle cycles while preserving the release order.
	nowSlot := timing.CyclesToSlot(int64(now), packet.TCBytes)
	if p.r.TCInjectBacklog() > 1 {
		if p.r.BlameEnabled() {
			// Eligible heads held behind the injection backlog: slack
			// burns at the source before the network ever sees it.
			for _, c := range p.chans {
				if c.Pending() > 0 && int64(c.queue[c.qHead].l)-int64(nowSlot) <= p.window {
					p.r.BlamePacerHold(c.conn, 0)
				}
			}
		}
		return
	}
	var best *PacedChannel
	var bestDl timing.Slot
	for _, c := range p.chans {
		if c.Pending() == 0 {
			continue
		}
		m := c.queue[c.qHead]
		if int64(m.l)-int64(nowSlot) > p.window {
			continue
		}
		dl := m.l + timing.Slot(c.localD)
		if best == nil || dl < bestDl {
			best, bestDl = c, dl
		}
	}
	if best == nil {
		return
	}
	if p.r.BlameEnabled() {
		// The EDF losers among eligible heads spend this cycle held; the
		// released channel takes the blame (pacer ticks in the same node
		// shard as the router, so the bank write is race-free).
		for _, c := range p.chans {
			if c != best && c.Pending() > 0 && int64(c.queue[c.qHead].l)-int64(nowSlot) <= p.window {
				p.r.BlamePacerHold(c.conn, best.conn)
			}
		}
	}
	m := best.queue[best.qHead]
	stamp := packet.StampOf(p.wheel.Wrap(m.l))
	for _, body := range m.packets {
		p.r.InjectTC(packet.TCPacket{Conn: best.conn, Stamp: stamp, Payload: body})
	}
	best.queue[best.qHead] = queuedMsg{}
	best.qHead++
	if best.qHead == len(best.queue) {
		best.queue = best.queue[:0]
		best.qHead = 0
	}
	best.pool = append(best.pool, m.packets)
	best.Sent++
}

// NextWork implements sim.Skipper: with every channel queue empty a
// tick is pure (the eligibility scan finds nothing and writes nothing),
// and nothing can enqueue during a skipped span — Submit happens from
// generators, which the kernel also holds idle. Any queued message
// makes the pacer immediate work: eligibility depends on the moving
// slot clock, so it is re-examined every cycle.
func (p *Pacer) NextWork(now sim.Cycle) sim.Cycle {
	for _, c := range p.chans {
		if c.Pending() > 0 {
			return now
		}
	}
	return sim.Never
}

// Skip implements sim.Skipper; idle pacer cycles have no effects.
func (p *Pacer) Skip(now, target sim.Cycle) {}

var _ sim.Skipper = (*Pacer)(nil)
