package admission

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
)

// fillLink admits spec channels over the (0,0)→(1,0) link until one is
// refused and returns the admitted channels plus the rejection.
func fillLink(t *testing.T, c *Controller, spec rtc.Spec) ([]*Channel, error) {
	t.Helper()
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	var chans []*Channel
	for i := 0; i < 300; i++ {
		ch, err := c.Admit(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return chans, err
		}
		chans = append(chans, ch)
	}
	t.Fatal("link never saturated")
	return nil, nil
}

// TestRejectionUtilizationMargin: with Imin=4 and d=4, the fifth
// channel pushes utilization to 5/4; the utilization test fires first
// and the margin is 1 − 5/4 = −0.25 on the injection link (checked
// before the mesh link).
func TestRejectionUtilizationMargin(t *testing.T) {
	c, _ := New(newNet(t, 2, 1), DefaultConfig())
	chans, err := fillLink(t, c, rtc.Spec{Imin: 4, Smax: 18, D: 8})
	if len(chans) != 4 {
		t.Fatalf("admitted %d, want 4", len(chans))
	}
	rej, ok := Explain(err)
	if !ok {
		t.Fatalf("rejection %v carries no typed explanation", err)
	}
	if rej.FailingTest() != "utilization" {
		t.Errorf("FailingTest = %q, want utilization", rej.FailingTest())
	}
	if rej.BindingResource() != "(0,0)→inject" {
		t.Errorf("BindingResource = %q, want (0,0)→inject", rej.BindingResource())
	}
	if m := rej.FailMargin(); m < -0.2500001 || m > -0.2499999 {
		t.Errorf("FailMargin = %g, want -0.25", m)
	}
	var lo *ErrLinkOverload
	if !errors.As(err, &lo) {
		t.Fatalf("error %T is not *ErrLinkOverload", err)
	}
	if lo.Util < 1.2499999 || lo.Util > 1.2500001 {
		t.Errorf("Util = %g, want 1.25", lo.Util)
	}
}

// TestRejectionBusyPeriodMargin: Imin=8, D=8 gives d=4 per hop, so the
// task is (C=1, T=8, D=4). Four fit (dbf(4)=4); the fifth fails the
// busy-period point t=4 with demand 5, margin −1, at utilization only
// 5/8 — a genuine deadline-constrained refusal.
func TestRejectionBusyPeriodMargin(t *testing.T) {
	c, _ := New(newNet(t, 2, 1), DefaultConfig())
	chans, err := fillLink(t, c, rtc.Spec{Imin: 8, Smax: 18, D: 8})
	if len(chans) != 4 {
		t.Fatalf("admitted %d, want 4", len(chans))
	}
	var lo *ErrLinkOverload
	if !errors.As(err, &lo) {
		t.Fatalf("error %T is not *ErrLinkOverload: %v", err, err)
	}
	if lo.Test != "busy_period" {
		t.Errorf("Test = %q, want busy_period (%v)", lo.Test, err)
	}
	if lo.At != 4 || lo.Demand != 5 {
		t.Errorf("At=%d Demand=%d, want t=4 demand=5", lo.At, lo.Demand)
	}
	if lo.Margin != -1 {
		t.Errorf("Margin = %g, want -1", lo.Margin)
	}
	if !strings.Contains(err.Error(), "busy_period at t=4: demand 5 > 4") {
		t.Errorf("message does not name the failing point: %v", err)
	}
}

// TestFigure7AdmissionMargins pins the admitted-channel margin on the
// Figure 7 connection set: after all three backlogged connections are
// up, the binding step point is t=4 (demand 1, slack 3) on both links,
// so every admission reports margin 3.
func TestFigure7AdmissionMargins(t *testing.T) {
	c, _ := New(newNet(t, 2, 1), DefaultConfig())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	specs := []rtc.Spec{
		{Imin: 4, Smax: 18, D: 8},
		{Imin: 8, Smax: 18, D: 16},
		{Imin: 16, Smax: 18, D: 32},
	}
	for i, spec := range specs {
		ch, err := c.Admit(src, []mesh.Coord{dst}, spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		if ch.Margin != 3 {
			t.Errorf("channel %d margin = %d, want 3 (slack at t=4)", i, ch.Margin)
		}
	}
}

// TestRejectionBufferMargin: with a 100-slot source window and d=20,
// each channel pins 15 buffers at the source; the +x partition holds 51
// slots, so the fourth request lands 45+15−51 = 9 slots short.
func TestRejectionBufferMargin(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Partitioned
	cfg.SourceWindow = 100
	c, err := New(newNet(t, 2, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	chans, rerr := fillLink(t, c, rtc.Spec{Imin: 8, Smax: 18, D: 40})
	if len(chans) != 3 {
		t.Fatalf("admitted %d, want 3", len(chans))
	}
	var be *ErrBufferExhausted
	if !errors.As(rerr, &be) {
		t.Fatalf("error %T is not *ErrBufferExhausted: %v", rerr, rerr)
	}
	if be.FailingTest() != "buffers" {
		t.Errorf("FailingTest = %q", be.FailingTest())
	}
	if m := be.FailMargin(); m != -9 {
		t.Errorf("FailMargin = %g, want -9 (51 limit − 45 used − 15 need)", m)
	}
	if !strings.Contains(be.BindingResource(), "(0,0)") {
		t.Errorf("BindingResource = %q, want the source node", be.BindingResource())
	}
}

// TestRejectionIDExhausted: a 3-entry connection table fits one channel
// (incoming + delivery id); the second refusal is typed conn_ids.
func TestRejectionIDExhausted(t *testing.T) {
	n := mesh.MustNew(2, 1, func() router.Config {
		c := router.DefaultConfig()
		c.Conns = 3
		return c
	}())
	c, _ := New(n, Config{Policy: SharedPool, SourceWindow: 0})
	chans, err := fillLink(t, c, rtc.Spec{Imin: 100, Smax: 18, D: 200})
	if len(chans) != 1 {
		t.Fatalf("admitted %d, want 1", len(chans))
	}
	var ie *ErrIDExhausted
	if !errors.As(err, &ie) {
		t.Fatalf("error %T is not *ErrIDExhausted: %v", err, err)
	}
	if ie.FailingTest() != "conn_ids" || ie.FailMargin() != -1 {
		t.Errorf("test %q margin %g", ie.FailingTest(), ie.FailMargin())
	}
}

// TestExplainNonRejection: structural errors (bad endpoints, invalid
// specs) are not resource rejections and carry no explanation.
func TestExplainNonRejection(t *testing.T) {
	c, _ := New(newNet(t, 2, 2), DefaultConfig())
	_, err := c.Admit(mesh.Coord{X: 5, Y: 5}, []mesh.Coord{{X: 0, Y: 0}},
		rtc.Spec{Imin: 8, Smax: 18, D: 40})
	if err == nil {
		t.Fatal("out-of-mesh source accepted")
	}
	if _, ok := Explain(err); ok {
		t.Errorf("structural error explained as a resource rejection: %v", err)
	}
}

// sealJSON renders the sealed ledger deterministically for comparison.
func sealJSON(t *testing.T, c *Controller) []byte {
	t.Helper()
	b, err := json.MarshalIndent(c.Seal(), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRefusedRerouteLedgerInert: on a severed straight line the reroute
// must be refused and the restore must leave the ledger byte-identical
// — reservations, margins, and buffer accounting all back verbatim.
func TestRefusedRerouteLedgerInert(t *testing.T) {
	c, _ := New(newNet(t, 3, 1), DefaultConfig())
	ch, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 2, Y: 0}},
		rtc.Spec{Imin: 8, Smax: 18, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkFailed(mesh.Coord{X: 0, Y: 0}, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	before := sealJSON(t, c)
	if _, err := c.Reroute(ch); err == nil {
		t.Fatal("reroute across a severed row accepted")
	}
	after := sealJSON(t, c)
	if !bytes.Equal(before, after) {
		t.Errorf("refused reroute mutated the ledger:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if c.Active() != 1 {
		t.Errorf("Active = %d after refused reroute, want 1", c.Active())
	}
	if err := c.VerifyLedger(); err != nil {
		t.Errorf("ledger conservation after refused reroute: %v", err)
	}
}

// TestVerifyLedgerDetectsTamper: conservation checking must actually
// catch a divergence between the ledger and the channel set.
func TestVerifyLedgerDetectsTamper(t *testing.T) {
	c, _ := New(newNet(t, 2, 1), DefaultConfig())
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}},
		rtc.Spec{Imin: 8, Smax: 18, D: 40}); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifyLedger(); err != nil {
		t.Fatalf("clean ledger flagged: %v", err)
	}
	k := linkKey{mesh.Coord{X: 0, Y: 0}, portInject}
	ls := c.linkAt(k)
	if ls == nil || len(ls.tasks) == 0 {
		t.Fatal("injection ledger empty after admission")
	}
	ls.tasks[0].C++
	if err := c.VerifyLedger(); err == nil {
		t.Error("tampered reservation not detected")
	}
	ls.tasks[0].C--
	if err := c.VerifyLedger(); err != nil {
		t.Errorf("restored ledger still flagged: %v", err)
	}
}

// TestAuditTrail exercises the attached log across an admit, a
// rejection, and a teardown, checking sequencing, sharding, and that
// the rejection record names its binding resource and failing test.
func TestAuditTrail(t *testing.T) {
	c, _ := New(newNet(t, 2, 1), DefaultConfig())
	log := obs.NewAuditLog()
	c.AttachAudit(log)
	chans, _ := fillLink(t, c, rtc.Spec{Imin: 4, Smax: 18, D: 8})
	if err := c.Teardown(chans[0]); err != nil {
		t.Fatal(err)
	}
	recs := log.Merged()
	if len(recs) != 6 { // 4 admitted + 1 rejected + 1 released
		t.Fatalf("%d records, want 6", len(recs))
	}
	for i, r := range recs {
		if int(r.Seq) != i {
			t.Errorf("record %d has Seq %d", i, r.Seq)
		}
		if r.Node != 0 {
			t.Errorf("record %d sharded to node %d, want 0 (source (0,0))", i, r.Node)
		}
	}
	first := recs[0]
	if first.Op != "admit" || first.Outcome != "admitted" || first.Channel != chans[0].ID {
		t.Errorf("first record %+v", first)
	}
	if first.Margin != float64(chans[0].Margin) {
		t.Errorf("audited margin %g, channel margin %d", first.Margin, chans[0].Margin)
	}
	if !strings.Contains(first.Route, "(0,0)[+x]") {
		t.Errorf("route %q missing first hop", first.Route)
	}
	rej := recs[4]
	if rej.Op != "admit" || rej.Outcome != "rejected" || rej.Channel != -1 {
		t.Errorf("rejection record %+v", rej)
	}
	if rej.Binding != "(0,0)→inject" || rej.Test != "utilization" {
		t.Errorf("rejection binding=%q test=%q", rej.Binding, rej.Test)
	}
	if rej.Err == "" {
		t.Error("rejection record carries no message")
	}
	last := recs[5]
	if last.Op != "teardown" || last.Outcome != "released" || last.Channel != chans[0].ID {
		t.Errorf("teardown record %+v", last)
	}
	var buf bytes.Buffer
	if err := log.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#0 n0.0 admit") {
		t.Errorf("dump missing header line:\n%s", buf.String())
	}
}

// TestAuditTrailReroute: a successful reroute logs its teardown, the
// re-admission, and the summary record, in that order.
func TestAuditTrailReroute(t *testing.T) {
	c, _ := New(newNet(t, 3, 3), DefaultConfig())
	log := obs.NewAuditLog()
	c.AttachAudit(log)
	ch, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 2, Y: 1}},
		rtc.Spec{Imin: 8, Smax: 18, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkFailed(mesh.Coord{X: 0, Y: 0}, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reroute(ch); err != nil {
		t.Fatal(err)
	}
	var ops []string
	for _, r := range log.Merged() {
		ops = append(ops, r.Op+"/"+r.Outcome)
	}
	want := []string{"admit/admitted", "teardown/released", "admit/admitted", "reroute/rerouted"}
	if len(ops) != len(want) {
		t.Fatalf("ops %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops %v, want %v", ops, want)
		}
	}
}
