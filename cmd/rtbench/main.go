// Command rtbench regenerates every table and figure of the paper's
// evaluation, plus the extension studies catalogued in DESIGN.md §4.
//
// Usage:
//
//	rtbench                   # run everything
//	rtbench -exp fig7         # one experiment
//	rtbench -exp fig7 -chart  # include ASCII charts where available
//
// Experiments: e1, fig6, fig7, chip, horizon, compare, vct, multicast,
// admit, all; plus cyclerate and sweep, which benchmark the simulator
// itself (sequential vs parallel kernel; -workers, -mesh, -benchjson,
// -min-speedup, and -baseline/-max-regress for regression diffing
// against an archived sweep), forensics, which gates the slack
// attribution engine on a scenario (-scenario), capacity, which
// probes each scenario family's max admissible channel count and gates
// the reservation ledger's conservation and audit byte-identity
// (-baseline/-max-regress against an archived BENCH_capacity.json),
// admission, the mass-admission campaign (-requests, -workers,
// -min-admit-speedup, -min-admit-rate, -benchjson, and
// -baseline/-max-regress against an archived BENCH_admission.json),
// and layout, the channel-layout synthesis campaign (-requests,
// -strict-layout, -benchjson, -baseline/-max-regress against an
// archived BENCH_layout.json) pitting the slack-aware route-and-split
// search against the greedy planner on identical request sequences.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/sim"
)

// The flag set is registered at package level so the consumption
// tables below (globalFlags/expFlags) can be checked against it in
// tests: every registered flag must be consumed somewhere, and every
// table entry must name a real flag.
var (
	exp             = flag.String("exp", "all", "experiment to run (e1|fig6|fig7|chip|horizon|compare|approx|vct|multicast|admit|load|skew|failover|faults|ring|sharing|cyclerate|sweep|forensics|capacity|admission|layout|all)")
	seed            = flag.Int64("seed", 1, "seed for the faults campaign's fault placement")
	cycles          = flag.Int64("cycles", 0, "override simulated cycles where applicable (0 = experiment default)")
	chart           = flag.Bool("chart", false, "render ASCII charts where available")
	workers         = flag.Int("workers", 0, "parallel kernel workers for cyclerate, or the single worker count for sweep (0 = GOMAXPROCS for cyclerate, default worker set for sweep)")
	benchJSON       = flag.String("benchjson", "", "write the cyclerate/sweep result as JSON to this file (e.g. BENCH_router.json)")
	meshList        = flag.String("mesh", "", "comma-separated square mesh edges for the sweep (default 8,16,32); the first entry sizes the -exp capacity/layout mesh (default 8)")
	minSpeedup      = flag.Float64("min-speedup", 0, "fail the sweep if any parallel row is slower than this fraction of sequential (0 = don't enforce)")
	baseline        = flag.String("baseline", "", "archived benchmark JSON (BENCH_router/admission/capacity/layout.json) to diff the fresh run against")
	maxRegress      = flag.Float64("max-regress", 0, "with -baseline: fail if any row's speedup drops (or allocs/cycle grows, or an admitted-count ratio shrinks) more than this fraction vs the baseline (0 = report only)")
	scenarioPath    = flag.String("scenario", "scenarios/faulty.json", "scenario file for -exp forensics and the audit-identity leg of -exp capacity")
	requests        = flag.Int("requests", 100000, "request count per family for -exp admission (and -exp layout, default 3·nodes there when unset)")
	strictLayout    = flag.String("strict-layout", "", "comma-separated families whose synthesized run must admit strictly more than greedy in -exp layout (e.g. hotspot,transpose)")
	minAdmitSpeedup = flag.Float64("min-admit-speedup", 0, "fail -exp admission if any family's incremental-vs-reference sequential speedup (timed in-run, serial vs serial) is below this (0 = don't enforce)")
	minAdmitRate    = flag.Float64("min-admit-rate", 0, "fail -exp admission if the best AdmitBatch decisions/sec is below this floor; loudly skipped on a single-CPU runner (0 = don't enforce)")
	epoch           = flag.Int("epoch", 1, "synchronization epoch for cyclerate/sweep/forensics: amortize the parallel kernel's barrier over this many cycles (links deepen to match; 1 = per-cycle barriers)")
	cpuProfile      = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile      = flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsOut      = flag.String("metrics", "", "write aggregate telemetry across all runs to this file (.prom/.txt = Prometheus text, otherwise JSON; - = stdout)")
	listen          = flag.String("listen", "", "serve live telemetry over HTTP at this address while experiments run (e.g. :8080)")
	traceOut        = flag.String("trace-out", "", "write the merged event timeline across all runs to this file (.json = Chrome trace-event JSON for Perfetto, .jsonl = JSON lines, otherwise the human-readable dump)")
	traceBuf        = flag.Int("trace-buf", obs.DefaultShardCap, "per-node event buffer capacity for -trace-out (oldest events evict first)")
)

func main() {
	flag.Parse()

	// Every explicitly set flag must be consumed by the selected
	// experiment (or apply globally): a flag the experiment silently
	// ignores — say -baseline on an experiment with no baseline diff —
	// reads as a gate that ran when it never did.
	setFlags := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
	if unknown := unconsumedFlags(*exp, setFlags); len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "rtbench: -exp %s does not consume -%s (see -h for which experiments honor which flags)\n",
			*exp, strings.Join(unknown, ", -"))
		os.Exit(2)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("cpuprofile", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile", err)
		}
		profStop = append(profStop, func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Printf("cpu profile written to %s\n", f.Name())
		})
	}
	if *memProfile != "" {
		path := *memProfile
		profStop = append(profStop, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtbench: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "rtbench: memprofile:", err)
				return
			}
			fmt.Printf("heap profile written to %s\n", path)
		})
	}

	// Experiments build their Systems internally, so telemetry hooks in
	// through the package-level default registry; tracing and SLO
	// accounting hook in the same way. The sharded collector is
	// parallel-safe, so -workers stays honored with tracing on.
	var reg *metrics.Registry
	if *metricsOut != "" || *listen != "" {
		reg = metrics.NewRegistry()
		core.DefaultMetrics = reg
		if *listen != "" {
			go func() {
				if err := http.ListenAndServe(*listen, reg); err != nil {
					fmt.Fprintln(os.Stderr, "rtbench: telemetry listener:", err)
				}
			}()
			fmt.Printf("telemetry: live at http://%s/\n", *listen)
		}
	}
	var col *obs.Sharded
	var slo *obs.SLO
	if *traceOut != "" {
		col = obs.NewSharded(*traceBuf)
		slo = obs.NewSLO()
		core.DefaultCollector = col
		core.DefaultChannelSLO = slo
		fmt.Printf("tracing: on (per-node buffer %d events; cyclerate runs on %d kernel worker(s))\n", *traceBuf, sim.ResolveWorkers(*workers))
	}

	runners := map[string]func() error{
		"e1":        func() error { return runE1() },
		"fig6":      func() error { return runFig6() },
		"fig7":      func() error { return runFig7(*cycles, *chart) },
		"chip":      func() error { return runChip() },
		"horizon":   func() error { return runHorizon(*cycles) },
		"compare":   func() error { return runCompare(*cycles) },
		"vct":       func() error { return runVCT(*cycles) },
		"multicast": func() error { return runMulticast() },
		"admit":     func() error { return runAdmit() },
		"approx":    func() error { return runApprox(*cycles) },
		"load":      func() error { return runLoad(*cycles) },
		"skew":      func() error { return runSkew(*cycles) },
		"failover":  func() error { return runFailover() },
		"faults":    func() error { return runFaults(*seed) },
		"ring":      func() error { return runRing(*cycles) },
		"sharing":   func() error { return runSharing(*cycles) },
		"cyclerate": func() error { return runCycleRate(*cycles, *workers, *epoch, *benchJSON) },
		"sweep": func() error {
			return runSweep(*cycles, *workers, *epoch, *meshList, *benchJSON, *minSpeedup, *baseline, *maxRegress)
		},
		"forensics": func() error { return runForensics(*scenarioPath, *cycles, *epoch) },
		"capacity": func() error {
			return runCapacity(*meshList, *scenarioPath, *cycles, *benchJSON, *baseline, *maxRegress)
		},
		"admission": func() error {
			return runAdmissionCampaign(*meshList, *requests, *benchJSON,
				*minAdmitSpeedup, *minAdmitRate, *baseline, *maxRegress)
		},
		"layout": func() error {
			// The admission campaign's 100k default would swamp the layout
			// search; unset, the campaign sizes itself to the mesh.
			reqs := *requests
			if !setFlags["requests"] {
				reqs = 0
			}
			return runLayout(*meshList, reqs, *benchJSON, *baseline, *maxRegress, *strictLayout)
		},
	}
	// cyclerate, sweep, forensics, capacity and admission probe the
	// simulator rather than the paper and are run on request only, not as
	// part of "all".
	order := []string{"e1", "fig7", "fig6", "chip", "horizon", "compare", "approx", "vct", "multicast", "admit", "load", "skew", "failover", "faults", "ring", "sharing"}

	if *exp == "all" {
		for _, name := range order {
			if err := runners[name](); err != nil {
				fatal(name, err)
			}
		}
		dumpTelemetry(reg, *metricsOut)
		dumpTrace(col, slo, *traceOut)
		finishProfiles()
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "rtbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		fatal(*exp, err)
	}
	dumpTelemetry(reg, *metricsOut)
	dumpTrace(col, slo, *traceOut)
	finishProfiles()
}

// expFlags names, per experiment, the flags that experiment actually
// consumes; globalFlags apply regardless of the experiment. Anything
// else explicitly set on the command line is a mistake and rtbench says
// so instead of silently ignoring it.
var (
	globalFlags = []string{"exp", "cpuprofile", "memprofile", "metrics", "listen", "trace-out", "trace-buf"}
	expFlags    = map[string][]string{
		"e1":        {},
		"fig6":      {},
		"fig7":      {"cycles", "chart"},
		"chip":      {},
		"horizon":   {"cycles"},
		"compare":   {"cycles"},
		"approx":    {"cycles"},
		"vct":       {"cycles"},
		"multicast": {},
		"admit":     {},
		"load":      {"cycles"},
		"skew":      {"cycles"},
		"failover":  {},
		"faults":    {"seed"},
		"ring":      {"cycles"},
		"sharing":   {"cycles"},
		"cyclerate": {"cycles", "workers", "epoch", "benchjson"},
		"sweep":     {"cycles", "workers", "epoch", "mesh", "benchjson", "min-speedup", "baseline", "max-regress"},
		"forensics": {"scenario", "cycles", "epoch"},
		"capacity":  {"mesh", "scenario", "cycles", "benchjson", "baseline", "max-regress"},
		"admission": {"mesh", "requests", "benchjson", "min-admit-speedup", "min-admit-rate", "baseline", "max-regress"},
		"layout":    {"mesh", "requests", "benchjson", "baseline", "max-regress", "strict-layout"},
		"all":       {"seed", "cycles", "chart"},
	}
)

// unconsumedFlags returns the explicitly set flags the selected
// experiment does not consume, sorted. An unknown experiment name
// returns nothing — the runner lookup reports that with its own error.
func unconsumedFlags(exp string, set map[string]bool) []string {
	consumed, ok := expFlags[exp]
	if !ok {
		return nil
	}
	allowed := make(map[string]bool, len(globalFlags)+len(consumed))
	for _, f := range globalFlags {
		allowed[f] = true
	}
	for _, f := range consumed {
		allowed[f] = true
	}
	var out []string
	for f := range set {
		if !allowed[f] {
			out = append(out, f)
		}
	}
	sort.Strings(out)
	return out
}

// profStop holds the -cpuprofile/-memprofile finalizers;
// finishProfiles runs them exactly once on every exit path, fatal
// included, so a failed run still leaves usable profiles behind.
var (
	profStop []func()
	profDone bool
)

func finishProfiles() {
	if profDone {
		return
	}
	profDone = true
	for _, f := range profStop {
		f()
	}
}

// dumpTrace exports the merged timeline accumulated across every system
// the experiments built; the extension picks the format.
func dumpTrace(col *obs.Sharded, slo *obs.SLO, path string) {
	if col == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("trace", err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json"):
		err = obs.WriteChromeTrace(f, col, slo)
	case strings.HasSuffix(path, ".jsonl"):
		err = obs.WriteJSONL(f, col)
	default:
		col.Dump(f)
	}
	if err != nil {
		fatal("trace", err)
	}
	fmt.Printf("trace written to %s (%d events recorded, %d evicted)\n", path, col.Total(), col.Dropped())
}

// dumpTelemetry writes the aggregate registry (counters accumulated
// across every system the experiments built) after the runs finish.
func dumpTelemetry(reg *metrics.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			fatal("metrics", err)
		}
		defer f.Close()
		w = f
	}
	var err error
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		err = reg.WritePrometheus(w)
	} else {
		err = reg.WriteJSON(w)
	}
	if err != nil {
		fatal("metrics", err)
	}
	if path != "-" {
		fmt.Printf("telemetry report written to %s\n", path)
	}
}

func fatal(name string, err error) {
	finishProfiles()
	fmt.Fprintf(os.Stderr, "rtbench: %s: %v\n", name, err)
	os.Exit(1)
}

func runE1() error {
	res, err := experiments.RunE1(router.DefaultConfig(), []int{16, 32, 64, 128, 256, 512, 1024})
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runFig7(cycles int64, chart bool) error {
	cfg := experiments.DefaultFig7()
	if cycles > 0 {
		cfg.Cycles = cycles
	}
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if chart {
		fmt.Println(res.Chart())
	}
	return nil
}

func runFig6() error {
	res, err := experiments.RunFig6(4)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runChip() error {
	res := experiments.RunChip()
	res.Table().Fprint(os.Stdout)
	res.SharedTable().Fprint(os.Stdout)
	res.ClockTable().Fprint(os.Stdout)
	return nil
}

func runHorizon(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunHorizon([]uint32{0, 2, 4, 8, 16, 32, 48}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runCompare(cycles int64) error {
	if cycles <= 0 {
		cycles = 200000
	}
	res, err := experiments.RunCompare(cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runVCT(cycles int64) error {
	if cycles <= 0 {
		cycles = 100000
	}
	res, err := experiments.RunVCT(3, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	load, err := experiments.RunVCTLoad([]int{0, 1, 2, 4, 6}, cycles)
	if err != nil {
		return err
	}
	load.Table().Fprint(os.Stdout)
	return nil
}

func runMulticast() error {
	res, err := experiments.RunMulticast([]int{1, 2, 4, 8}, 10)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runApprox(cycles int64) error {
	if cycles <= 0 {
		cycles = 120000
	}
	res, err := experiments.RunApprox([]uint{0, 1, 2, 3, 4, 5}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runLoad(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunLoadSweep([]float64{0.05, 0.1, 0.2, 0.4, 0.6, 0.8}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runSkew(cycles int64) error {
	if cycles <= 0 {
		cycles = 60000
	}
	res, err := experiments.RunSkew([]int64{-400, -160, -40, 0, 40, 100, 160, 240, 400}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runFailover() error {
	res, err := experiments.RunFailover(8)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runFaults(seed int64) error {
	res, err := experiments.RunFaults(40, seed)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runRing(cycles int64) error {
	if cycles <= 0 {
		cycles = 100000
	}
	res, err := experiments.RunRing(8, 8, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runSharing(cycles int64) error {
	if cycles <= 0 {
		cycles = 120000
	}
	res, err := experiments.RunSharing([]int{1, 2, 4, 8, 16, 32}, cycles)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

func runCycleRate(cycles int64, workers, epoch int, benchJSON string) error {
	res, err := experiments.RunCycleRate(8, 8, cycles, workers, epoch)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if !res.StatsMatch {
		return fmt.Errorf("parallel run diverged from sequential run")
	}
	if benchJSON == "" {
		return nil
	}
	f, err := os.Create(benchJSON)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"benchmark":            "router_cycle_rate",
		"mesh":                 fmt.Sprintf("%dx%d", res.W, res.H),
		"cycles":               res.Cycles,
		"workers":              res.Workers,
		"epoch":                res.Epoch,
		"num_cpu":              runtime.NumCPU(),
		"seq_cycles_per_sec":   res.SeqRate,
		"par_cycles_per_sec":   res.ParRate,
		"speedup":              res.Speedup,
		"seq_allocs_per_cycle": res.SeqAllocsPerCycle,
		"par_allocs_per_cycle": res.ParAllocsPerCycle,
		"stats_match":          res.StatsMatch,
	}); err != nil {
		return err
	}
	fmt.Printf("benchmark result written to %s\n", benchJSON)
	return nil
}

// runForensics runs the slack-attribution gate on a scenario: the
// forensics report must be byte-identical at every worker count, every
// non-advancing time-constrained cycle must carry exactly one blame
// cause (no unattributed cycles), and the blame totals must reconcile
// with the independent hardware counters.
func runForensics(scenarioPath string, cycles int64, epoch int) error {
	res, err := experiments.RunForensics(scenarioPath, cycles, nil, epoch)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if !res.OK() {
		return fmt.Errorf("forensics gate failed on %s", scenarioPath)
	}
	return nil
}

// meshEdge parses the first entry of -mesh as the square mesh edge,
// falling back to def when the flag is empty.
func meshEdge(meshList string, def int) (int, error) {
	if meshList == "" {
		return def, nil
	}
	first := strings.TrimSpace(strings.Split(meshList, ",")[0])
	e, err := strconv.Atoi(first)
	if err != nil || e < 2 {
		return 0, fmt.Errorf("bad -mesh entry %q", first)
	}
	return e, nil
}

// runCapacity runs the capacity-probe campaign: per scenario family it
// binary-searches the max admissible channel count on a square mesh,
// prints the saturation table, utilization heatmaps, and per-link
// headroom tables, then runs the audit byte-identity gate on the
// scenario. Any conservation violation or unexplained rejection fails
// the run — the CI capacity gate. A baseline file adds a per-family
// diff against an archived campaign with the same delta-table and
// nonzero-exit contract as sweep and admission.
func runCapacity(meshList, scenarioPath string, cycles int64, benchJSON, baseline string, maxRegress float64) error {
	edge, err := meshEdge(meshList, 8)
	if err != nil {
		return err
	}
	res, err := experiments.RunCapacity(edge, edge, nil)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	for i := range res.Families {
		f := &res.Families[i]
		fmt.Printf("\n%s utilization heatmap (%dx%d, digit = floor(10*max link util at node), . = idle):\n%s",
			f.Name, res.W, res.H, f.Heatmap)
		f.HeadroomTable(8).Fprint(os.Stdout)
	}
	if !res.OK() {
		return fmt.Errorf("capacity gate failed on the %dx%d mesh", edge, edge)
	}
	aud, err := experiments.RunAuditIdentity(scenarioPath, cycles, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\naudit identity: %s, %d decisions, workers %v, byte-identical: %v\n",
		aud.Scenario, aud.Decisions, aud.Workers, aud.Identical)
	if !aud.Identical {
		return fmt.Errorf("audit log diverged across worker counts on %s", scenarioPath)
	}
	var regress error
	if baseline != "" {
		base, err := experiments.LoadCapacityBaseline(baseline)
		if err != nil {
			return err
		}
		deltas := res.Diff(base)
		if len(deltas) == 0 {
			return fmt.Errorf("baseline %s shares no families with this campaign", baseline)
		}
		experiments.CapacityDeltaTable(deltas, baseline).Fprint(os.Stdout)
		regress = experiments.CheckCapacityRegression(deltas, maxRegress)
	}
	if benchJSON == "" {
		return regress
	}
	f, err := os.Create(benchJSON)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"benchmark": "capacity_probe",
		"mesh":      fmt.Sprintf("%dx%d", res.W, res.H),
		"rows":      res.BaselineRows(),
	}); err != nil {
		return err
	}
	fmt.Printf("benchmark result written to %s\n", benchJSON)
	return regress
}

// runLayout runs the channel-layout synthesis campaign: per request
// family, the greedy baseline (default Admit) versus the synthesizer's
// route-and-split search over the identical request sequence, with
// binding-resource tables, rejection/utilization heatmaps, Reference-
// mode shadow re-validation of every synthesized layout, and the usual
// baseline-diff contract. strict names families (comma-separated) whose
// synthesized run must admit strictly more than greedy — the CI
// acceptance gate.
func runLayout(meshList string, requests int, benchJSON, baseline string, maxRegress float64, strict string) error {
	edge, err := meshEdge(meshList, 8)
	if err != nil {
		return err
	}
	res, err := experiments.RunLayout(edge, edge, requests, nil)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	for i := range res.Families {
		f := &res.Families[i]
		fmt.Printf("\n%s greedy rejection heatmap (%dx%d, digit = rejections bound at router, . = none):\n%s",
			f.Name, res.W, res.H, f.GreedyRejectHeat)
		fmt.Printf("%s synthesized utilization heatmap (digit = floor(10*max link util at node), . = idle):\n%s",
			f.Name, f.SynthHeat)
		f.BindingTable().Fprint(os.Stdout)
	}
	if !res.OK() {
		for _, c := range res.Checks {
			if !c.OK {
				fmt.Fprintf(os.Stderr, "rtbench: layout check %s failed: %s\n", c.Name, c.Detail)
			}
		}
		return fmt.Errorf("layout gate failed on the %dx%d mesh", edge, edge)
	}
	var strictErr error
	for _, fam := range strings.Split(strict, ",") {
		fam = strings.TrimSpace(fam)
		if fam == "" {
			continue
		}
		if !res.StrictlyBeatsGreedy(fam) {
			strictErr = fmt.Errorf("layout synthesis did not strictly beat greedy on the %s family (%dx%d)", fam, edge, edge)
			fmt.Fprintln(os.Stderr, "rtbench:", strictErr)
		}
	}
	var regress error
	if baseline != "" {
		base, err := experiments.LoadLayoutBaseline(baseline)
		if err != nil {
			return err
		}
		deltas := res.Diff(base)
		if len(deltas) == 0 {
			return fmt.Errorf("baseline %s shares no families with this campaign", baseline)
		}
		experiments.LayoutDeltaTable(deltas, baseline).Fprint(os.Stdout)
		regress = experiments.CheckLayoutRegression(deltas, maxRegress)
	}
	if benchJSON != "" {
		f, err := os.Create(benchJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{
			"benchmark": "layout_synthesis",
			"mesh":      fmt.Sprintf("%dx%d", res.W, res.H),
			"requests":  res.Requests,
			"rows":      res.BaselineRows(),
		}); err != nil {
			return err
		}
		fmt.Printf("benchmark result written to %s\n", benchJSON)
	}
	if strictErr != nil {
		return strictErr
	}
	return regress
}

// runSweep runs the full scaling matrix (meshes × worker counts). A
// non-zero workers narrows the sweep to that single worker count, a
// non-zero cycles overrides every mesh's budget, and minSpeedup turns
// the sweep into a regression tripwire for CI. A baseline file adds a
// per-row diff against the archived sweep, failing past maxRegress.
func runSweep(cycles int64, workers, epoch int, meshList, benchJSON string, minSpeedup float64, baseline string, maxRegress float64) error {
	var meshes []int
	if meshList != "" {
		for _, s := range strings.Split(meshList, ",") {
			edge, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || edge < 2 {
				return fmt.Errorf("bad -mesh entry %q", s)
			}
			meshes = append(meshes, edge)
		}
	}
	var workerSet []int
	if workers != 0 {
		workerSet = []int{sim.ResolveWorkers(workers)}
	}
	var budget func(edge int) int64
	if cycles > 0 {
		budget = func(int) int64 { return cycles }
	}
	// Always say what parallelism the gate actually ran with — a CI log
	// that never states the effective GOMAXPROCS can hide a single-CPU
	// runner silently passing (or skipping) a scaling floor.
	fmt.Printf("sweep parallelism: GOMAXPROCS=%d, NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintf(os.Stderr, "rtbench: WARNING: GOMAXPROCS=1 (NumCPU=%d) — every parallel row runs its workers on a single OS thread, so speedups here measure overhead, not scaling\n", runtime.NumCPU())
	}
	res, err := experiments.RunScalingSweep(meshes, workerSet, budget, epoch)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)

	type jsonRow struct {
		Mesh              string  `json:"mesh"`
		Cycles            int64   `json:"cycles"`
		Workers           int     `json:"workers"`
		Epoch             int     `json:"epoch"`
		SeqCyclesPerSec   float64 `json:"seq_cycles_per_sec"`
		ParCyclesPerSec   float64 `json:"par_cycles_per_sec"`
		Speedup           float64 `json:"speedup"`
		SeqAllocsPerCycle float64 `json:"seq_allocs_per_cycle"`
		ParAllocsPerCycle float64 `json:"par_allocs_per_cycle"`
		StatsMatch        bool    `json:"stats_match"`
	}
	rows := make([]jsonRow, 0, len(res.Rows))
	for _, r := range res.Rows {
		if !r.StatsMatch {
			return fmt.Errorf("%dx%d x%d: parallel run diverged from sequential run", r.W, r.H, r.Workers)
		}
		rows = append(rows, jsonRow{
			Mesh:            fmt.Sprintf("%dx%d", r.W, r.H),
			Cycles:          r.Cycles,
			Workers:         r.Workers,
			Epoch:           r.Epoch,
			SeqCyclesPerSec: r.SeqRate, ParCyclesPerSec: r.ParRate,
			Speedup:           r.Speedup,
			SeqAllocsPerCycle: r.SeqAllocsPerCycle, ParAllocsPerCycle: r.ParAllocsPerCycle,
			StatsMatch: r.StatsMatch,
		})
	}
	if minSpeedup > 0 {
		if res.GOMAXPROCS == 1 || res.NumCPU == 1 {
			// A single-CPU runner cannot demonstrate scaling; skipping the
			// floor silently would let a real regression hide behind the
			// hardware, so say exactly what was not enforced.
			fmt.Fprintf(os.Stderr, "rtbench: SKIPPED -min-speedup %.2f gate: single-CPU runner (GOMAXPROCS=%d, NumCPU=%d) cannot measure parallel speedup\n",
				minSpeedup, res.GOMAXPROCS, res.NumCPU)
		} else {
			for _, r := range res.Rows {
				if r.Workers > 1 && r.Speedup < minSpeedup {
					return fmt.Errorf("%dx%d x%d: speedup %.2fx below the %.2fx floor",
						r.W, r.H, r.Workers, r.Speedup, minSpeedup)
				}
			}
		}
	}
	var regress error
	if baseline != "" {
		base, err := experiments.LoadSweepBaseline(baseline)
		if err != nil {
			return err
		}
		deltas := res.Diff(base)
		if len(deltas) == 0 {
			return fmt.Errorf("baseline %s shares no (mesh, workers) rows with this sweep", baseline)
		}
		experiments.DeltaTable(deltas, baseline).Fprint(os.Stdout)
		// Write the fresh sweep (the next baseline / CI artifact) before
		// failing, so a regression still leaves the evidence behind.
		regress = experiments.CheckRegression(deltas, maxRegress)
	}
	if benchJSON == "" {
		return regress
	}
	out := map[string]any{
		"benchmark":  "router_scaling_sweep",
		"gomaxprocs": res.GOMAXPROCS,
		"num_cpu":    res.NumCPU,
		"epoch":      epoch,
		"rows":       rows,
	}
	// Headline: the 8×8 mesh at 4 workers, the configuration the older
	// single-point cyclerate benchmark archived.
	if h := res.Row(8, 4); h != nil {
		out["mesh"] = "8x8"
		out["cycles"] = h.Cycles
		out["workers"] = h.Workers
		out["seq_cycles_per_sec"] = h.SeqRate
		out["par_cycles_per_sec"] = h.ParRate
		out["speedup"] = h.Speedup
		out["seq_allocs_per_cycle"] = h.SeqAllocsPerCycle
		out["par_allocs_per_cycle"] = h.ParAllocsPerCycle
		out["stats_match"] = h.StatsMatch
	}
	f, err := os.Create(benchJSON)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	fmt.Printf("benchmark result written to %s\n", benchJSON)
	return regress
}

func runAdmit() error {
	res, err := experiments.RunAdmit()
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	return nil
}

// runAdmissionCampaign runs the mass-admission campaign: per request
// family it times the reference (pre-incremental) sequential admission
// path against the incremental one over the same request sequence —
// both serial, so the speedup gate holds on any runner — then measures
// AdmitBatch at workers {1,2,4} with byte-identity checks and a churn
// phase. The -mesh flag's first entry sizes the square mesh (default
// 16, the acceptance configuration).
func runAdmissionCampaign(meshList string, requests int, benchJSON string, minSpeedup, minRate float64, baseline string, maxRegress float64) error {
	edge := 16
	if meshList != "" {
		first := strings.TrimSpace(strings.Split(meshList, ",")[0])
		e, err := strconv.Atoi(first)
		if err != nil || e < 2 {
			return fmt.Errorf("bad -mesh entry %q", first)
		}
		edge = e
	}
	// Same contract as the sweep gate: the effective parallelism is
	// printed unconditionally so a CI log always shows what the batch
	// rows could possibly demonstrate.
	fmt.Printf("admission parallelism: GOMAXPROCS=%d, NumCPU=%d\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	res, err := experiments.RunAdmission(edge, edge, requests, nil)
	if err != nil {
		return err
	}
	res.Table().Fprint(os.Stdout)
	if !res.OK() {
		for _, c := range res.Checks {
			if !c.OK {
				fmt.Fprintf(os.Stderr, "rtbench: admission check %s failed: %s\n", c.Name, c.Detail)
			}
		}
		return fmt.Errorf("admission identity/ledger checks failed on the %dx%d mesh", edge, edge)
	}
	if minSpeedup > 0 {
		// Serial vs serial, both timed in this very run — enforceable on
		// any hardware, single-CPU runners included.
		if got := res.MinSpeedup(); got < minSpeedup {
			return fmt.Errorf("incremental speedup %.2fx below the %.2fx floor (reference vs incremental, both sequential)",
				got, minSpeedup)
		}
	}
	if minRate > 0 {
		if res.GOMAXPROCS == 1 || res.NumCPU == 1 {
			fmt.Fprintf(os.Stderr, "rtbench: SKIPPED -min-admit-rate %.0f gate: single-CPU runner (GOMAXPROCS=%d, NumCPU=%d) cannot demonstrate parallel batch throughput\n",
				minRate, res.GOMAXPROCS, res.NumCPU)
		} else if got := res.BestBatchRate(); got < minRate {
			return fmt.Errorf("best AdmitBatch rate %.0f decisions/sec below the %.0f floor", got, minRate)
		}
	}
	var regress error
	if baseline != "" {
		base, err := experiments.LoadAdmissionBaseline(baseline)
		if err != nil {
			return err
		}
		deltas := res.Diff(base)
		if len(deltas) == 0 {
			return fmt.Errorf("baseline %s shares no families with this campaign", baseline)
		}
		experiments.AdmissionDeltaTable(deltas, baseline).Fprint(os.Stdout)
		// Write the fresh campaign (the next baseline / CI artifact)
		// before failing, so a regression still leaves evidence behind.
		regress = experiments.CheckAdmissionRegression(deltas, maxRegress)
	}
	if benchJSON == "" {
		return regress
	}
	f, err := os.Create(benchJSON)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{
		"benchmark":  "mass_admission",
		"mesh":       fmt.Sprintf("%dx%d", res.W, res.H),
		"requests":   res.Requests,
		"gomaxprocs": res.GOMAXPROCS,
		"num_cpu":    res.NumCPU,
		"workers":    res.WorkerSet,
		"rows":       res.BaselineRows(),
	}); err != nil {
		return err
	}
	fmt.Printf("benchmark result written to %s\n", benchJSON)
	return regress
}
