package experiments

import (
	"bytes"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/scenario"
)

// ForensicsCheck is one pass/fail invariant of the forensics run.
type ForensicsCheck struct {
	Name   string
	OK     bool
	Detail string
}

// ForensicsResult is the outcome of RunForensics: the attribution
// report of the reference run, the determinism verdict across worker
// counts, and the conservation / reconciliation checks the CI gate
// enforces.
type ForensicsResult struct {
	Scenario string
	Cycles   int64
	Workers  []int
	// Epoch is the synchronization epoch every run used (1 = per-cycle
	// barriers; above 1 the mesh links deepen to match).
	Epoch int
	// Identical reports whether every worker count produced a
	// byte-identical forensics report (attribution + recorder summary).
	Identical bool
	// Report is the reference (first worker count) report text.
	Report string
	// Stats are the reference run's attribution totals.
	Stats metrics.ForensicsSnapshot
	// Triggers is the reference run's flight-recorder trigger count.
	Triggers int64
	Checks   []ForensicsCheck
}

// OK reports whether every check passed and the reports matched.
func (r *ForensicsResult) OK() bool {
	if !r.Identical {
		return false
	}
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// DefaultForensicsWorkers is the worker set the determinism check
// covers.
var DefaultForensicsWorkers = []int{1, 2, 4}

// forensicsRun is one scenario execution with the full forensics stack
// attached.
type forensicsRun struct {
	report  []byte
	stats   metrics.ForensicsSnapshot
	reg     *metrics.Registry
	rec     *obs.Recorder
	summary scenario.Result
}

func runForensicsOnce(path string, cycles int64, workers, epoch, shardCap int) (*forensicsRun, error) {
	sc, err := scenario.Load(path)
	if err != nil {
		return nil, err
	}
	clipScenario(sc, cycles)
	reg := metrics.NewRegistry()
	col := obs.NewSharded(shardCap)
	slo := obs.NewSLO()
	fns := obs.NewForensics()
	rec := obs.NewRecorder(0, 0)
	res, sys, err := sc.RunWith(scenario.RunOpts{
		Metrics: reg, Collector: col, ChannelSLO: slo,
		Forensics: fns, Recorder: rec, Workers: workers, Epoch: epoch,
	})
	if err != nil {
		return nil, err
	}
	defer sys.Close()
	fns.Flush()
	reg.Cycles.Store(sys.Now())
	var buf bytes.Buffer
	fns.Report(&buf, col.Merged())
	buf.WriteString("\n")
	rec.Summary(&buf)
	return &forensicsRun{
		report: buf.Bytes(), stats: fns.Stats(), reg: reg, rec: rec,
		summary: *res,
	}, nil
}

// RunForensics runs the scenario once per worker count with the slack
// attribution engine and flight recorder attached, verifies the
// forensics report is byte-identical across worker counts, and checks
// the attribution invariants:
//
//   - conservation: every attributed time-constrained stall cycle
//     carries exactly one cause, and none is unattributed;
//   - credit_starved cycles reconcile exactly with the hardware
//     rt_be_stall_cycles counters;
//   - hop_miss triggers reconcile exactly with the hardware
//     DeadlineMisses counter;
//   - fault_retransmit attribution appears only when the fault
//     machinery actually retransmitted or aborted.
//
// cycles > 0 caps the scenario's run length (the -short test mode).
// epoch > 1 runs every worker count epoch-synchronized over deepened
// links, so the byte-identical gate covers the epoch path too.
func RunForensics(path string, cycles int64, workers []int, epoch int) (*ForensicsResult, error) {
	if len(workers) == 0 {
		workers = DefaultForensicsWorkers
	}
	if epoch < 1 {
		epoch = 1
	}
	const shardCap = 1 << 15
	res := &ForensicsResult{Scenario: path, Workers: workers, Epoch: epoch, Identical: true}
	var ref *forensicsRun
	for i, wk := range workers {
		run, err := runForensicsOnce(path, cycles, wk, epoch, shardCap)
		if err != nil {
			return nil, fmt.Errorf("forensics %s x%d: %w", path, wk, err)
		}
		if i == 0 {
			ref = run
			continue
		}
		if !bytes.Equal(ref.report, run.report) {
			res.Identical = false
		}
	}
	res.Report = string(ref.report)
	res.Stats = ref.stats
	res.Triggers = ref.rec.Count()
	res.Cycles = ref.reg.Cycles.Load()

	check := func(name string, ok bool, format string, args ...any) {
		res.Checks = append(res.Checks, ForensicsCheck{
			Name: name, OK: ok, Detail: fmt.Sprintf(format, args...),
		})
	}

	st := ref.stats
	check("unattributed_zero", st.Unattributed == 0,
		"unattributed stall cycles: %d", st.Unattributed)

	var tcSum int64
	for c := router.StallCause(1); c < router.NumStallCauses; c++ {
		if c == router.CauseCreditStarved {
			continue
		}
		tcSum += st.ByCause[c.String()]
	}
	check("cause_conservation", tcSum == st.TCStallCycles,
		"sum of tc causes %d vs tc stall cycles %d", tcSum, st.TCStallCycles)

	snap := ref.reg.Snapshot()
	var beStalls, misses, retx, aborts int64
	for _, rs := range snap.Routers {
		for _, v := range rs.BEStallCycles {
			beStalls += v
		}
		misses += rs.DeadlineMisses
		retx += rs.BERetransmits
		aborts += rs.BEFrameAborts
	}
	starved := st.ByCause[router.CauseCreditStarved.String()]
	check("credit_starved_matches_be_stalls", starved == beStalls,
		"credit_starved %d vs rt_be_stall_cycles %d", starved, beStalls)

	hopMiss := ref.rec.CountKind("hop_miss")
	check("hop_miss_triggers_match_deadline_misses", hopMiss == misses,
		"hop_miss triggers %d vs deadline misses %d", hopMiss, misses)

	faultBlame := st.ByCause[router.CauseFaultRetransmit.String()]
	check("fault_blame_implies_fault_activity",
		faultBlame == 0 || retx+aborts > 0,
		"fault_retransmit cycles %d with %d retransmits, %d aborts",
		faultBlame, retx, aborts)

	return res, nil
}

// Table renders the check list.
func (r *ForensicsResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Forensics gate: %s (%d cycles, epoch %d)", r.Scenario, r.Cycles, r.Epoch),
		Header: []string{"check", "ok", "detail"},
	}
	t.AddRow("byte_identical_reports", fmt.Sprintf("%v", r.Identical),
		fmt.Sprintf("workers %v", r.Workers))
	for _, c := range r.Checks {
		t.AddRow(c.Name, fmt.Sprintf("%v", c.OK), c.Detail)
	}
	t.AddNote("tc stall cycles %d, flight-recorder triggers %d",
		r.Stats.TCStallCycles, r.Triggers)
	return t
}
