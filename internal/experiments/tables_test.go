package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// TestAllTablesRender drives every experiment's table renderer from
// synthetic results, so formatting regressions show up without paying
// for full simulation runs.
func TestAllTablesRender(t *testing.T) {
	renders := map[string]interface{ Table() *Table }{
		"fig6": &Fig6Result{
			Stamps: []uint8{210, 80}, Classes: []string{"on-time", "early"},
			Gaps: []uint32{30, 96}, Wraps: 2, Delivered: 60, Misses: 0, MaxLatency: 300,
		},
		"fig7": &Fig7Result{
			Cfg:     Fig7Config{Imins: []int64{4, 8}, Cycles: 1000, Sample: 100},
			TCTotal: []float64{100, 50}, Expected: []float64{100, 50}, BETotal: 500,
		},
		"horizon": &HorizonResult{
			Horizons: []uint32{0, 8}, MeanLat: []float64{100, 80},
			PeakOcc: []int{2, 3}, BufBound: []int{2, 3}, Delivered: []int64{10, 10},
		},
		"compare": &CompareResult{
			Disciplines: []string{"a", "b"},
			TightMiss:   []float64{0, 0.5}, LooseMiss: []float64{0, 0},
			TightMean: []float64{10, 20}, LooseMean: []float64{30, 40},
			TightN: []int64{5, 5}, LooseN: []int64{5, 5},
		},
		"vct": &VCTResult{Hops: 3, MeanOff: 100, MeanOn: 50, Saving: 50, CutFraction: 0.9},
		"multicast": &MulticastResult{
			Fanouts: []int{2}, MaxLat: []float64{100}, Bound: []float64{200},
			Delivered: []int64{4}, Expected: []int64{4},
		},
		"admit": &AdmitResult{
			Policies:  []string{"partitioned", "shared"},
			Symmetric: []int{10, 12}, Asymmetric: []int{3, 8},
		},
		"approx": &ApproxResult{
			Shifts: []uint{0, 4}, KeyBits: []int{9, 5},
			TightMiss: []float64{0, 0.3}, TightP99: []float64{100, 200},
			LooseMiss: []float64{0, 0},
		},
		"load": &LoadSweepResult{
			Rates: []float64{0.1, 0.5}, BEMean: []float64{100, 900},
			BEP99: []float64{200, 2000}, BEDeliv: []int64{50, 200},
			TCMean: []float64{500, 500}, TCMisses: []int64{0, 0}, Channels: 8, Cycles: 1000,
		},
		"skew": &SkewResult{
			SkewCycles: []int64{-40, 0, 40}, MeanLat: []float64{120, 100, 80},
			Misses: []int64{0, 0, 0}, Delivered: []int64{9, 9, 9},
		},
		"e1": &E1Result{Sizes: []int{16, 32}, Latencies: []int64{41, 57}, Overhead: 25, Linear: true},
		"failover": &FailoverResult{
			Phases: []string{"healthy", "failed"}, Sent: []int64{5, 5},
			Delivered: []int64{5, 0}, Drops: []int64{0, 5}, Misses: []int64{0, 0},
			RerouteOK: true,
		},
		"ring": &RingResult{Nodes: 8, Hops: 4, Delivered: 100, Expected: 100, MaxLat: 600, Budget: 800},
		"sharing": &SharingResult{
			Factors: []int{1, 4}, Comparators: []int{255, 63},
			TightMiss: []float64{0, 0.5}, TightP99: []float64{100, 900},
			LooseMiss: []float64{0, 0.1},
		},
	}
	for name, r := range renders {
		var buf bytes.Buffer
		tab := r.Table()
		tab.Fprint(&buf)
		out := buf.String()
		if !strings.Contains(out, "==") || len(out) < 40 {
			t.Errorf("%s: table render degenerate:\n%s", name, out)
		}
		if len(tab.Header) == 0 || len(tab.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
	// The failed-reroute failover path warns.
	badFail := &FailoverResult{Phases: []string{"p"}, Sent: []int64{1}, Delivered: []int64{1},
		Drops: []int64{0}, Misses: []int64{0}, RerouteOK: false}
	var wbuf bytes.Buffer
	badFail.Table().Fprint(&wbuf)
	if !strings.Contains(wbuf.String(), "WARNING") {
		t.Error("failed-reroute table missing warning")
	}
	// The non-linear E1 path warns.
	broken := &E1Result{Sizes: []int{16}, Latencies: []int64{41}, Overhead: 25, Linear: false}
	var buf bytes.Buffer
	broken.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "WARNING") {
		t.Error("non-linear E1 table missing warning")
	}
	// Chip renderers are covered by TestRunChip*; render once more with a
	// real run for the custom-point paths.
	chip := RunChip()
	for _, tab := range []*Table{chip.Table(), chip.SharedTable(), chip.ClockTable()} {
		var b bytes.Buffer
		tab.Fprint(&b)
		if b.Len() == 0 {
			t.Error("chip table empty")
		}
	}
}
