package obs

import (
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/metrics"
)

// histBuckets is the fixed bucket count of LogHist: bucket 0 holds
// exact zeros and bucket i (i ≥ 1) the range [2^(i−1), 2^i−1], so the
// top bucket starts at 2^42 — far beyond any latency or slack a
// simulation can produce, making the clamp in Record unreachable in
// practice.
const histBuckets = 44

// LogHist is an HDR-style log-bucketed histogram of signed values:
// power-of-two buckets for values ≥ 0 and a dedicated miss bucket for
// values < 0 (negative slack = a blown deadline). Every update is an
// atomic add or CAS on preallocated storage, so recorders on different
// mesh nodes may share one histogram during the parallel compute phase;
// because the operations commute, snapshots are identical across worker
// counts. The zero value is NOT ready to use — the min/max trackers
// need sentinels — construct via NewLogHist (or Init).
type LogHist struct {
	count   atomic.Int64
	sum     atomic.Int64
	miss    atomic.Int64
	min     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewLogHist returns an empty, ready-to-record histogram.
func NewLogHist() *LogHist {
	h := &LogHist{}
	h.Init()
	return h
}

// Init arms the min/max sentinels of an embedded zero-value LogHist.
func (h *LogHist) Init() {
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
}

// Reset empties the histogram. Not safe concurrently with Record; call
// between runs (the warmup-reset idiom).
func (h *LogHist) Reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.miss.Store(0)
	h.Init()
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// bucketOf maps a non-negative value to its bucket index: 0 for zero,
// i for [2^(i−1), 2^i−1].
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Record adds one value. Negative values count toward the miss bucket
// (and min), not the power-of-two buckets.
func (h *LogHist) Record(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	if v < 0 {
		h.miss.Add(1)
		return
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of recorded values.
func (h *LogHist) Count() int64 { return h.count.Load() }

// MissCount returns the number of recorded negative values.
func (h *LogHist) MissCount() int64 { return h.miss.Load() }

// Min returns the smallest recorded value (0 when empty).
func (h *LogHist) Min() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest recorded value (0 when empty).
func (h *LogHist) Max() int64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// BucketCount returns the count in non-negative bucket i, for tests.
func (h *LogHist) BucketCount(i int) int64 { return h.buckets[i].Load() }

// Snapshot copies the histogram into export form, computing the p50 and
// p99 quantile estimates and trimming trailing empty buckets.
func (h *LogHist) Snapshot() metrics.HistogramSnapshot {
	s := metrics.HistogramSnapshot{
		Count:     h.count.Load(),
		MissCount: h.miss.Load(),
		Sum:       h.sum.Load(),
	}
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	var counts [histBuckets]int64
	last := -1
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), counts[:last+1]...)
	}
	s.P50 = h.quantile(0.50, &s, counts[:])
	s.P99 = h.quantile(0.99, &s, counts[:])
	return s
}

// quantile estimates the q-quantile from bucket counts. Values in the
// miss bucket are represented by the recorded minimum (the worst
// miss); within a non-negative bucket the estimate interpolates
// linearly by rank (integer math, so identical across worker counts),
// clamped to the recorded extremes so one-value histograms report that
// value exactly.
func (h *LogHist) quantile(q float64, s *metrics.HistogramSnapshot, counts []int64) int64 {
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := s.MissCount
	if rank <= cum {
		return s.Min
	}
	for i, n := range counts {
		cum += n
		if rank > cum {
			continue
		}
		if i == 0 {
			return 0 // the zero bucket holds exact zeros
		}
		lower := int64(1) << uint(i-1)
		rankIn := rank - (cum - n) // 1..n within this bucket
		est := lower + (lower-1)*rankIn/n
		if est > s.Max {
			est = s.Max
		}
		if s.MissCount == 0 && est < s.Min {
			est = s.Min
		}
		return est
	}
	return s.Max
}
