package main

import (
	"flag"
	"reflect"
	"testing"
)

// TestRunnersSmoke executes every experiment runner with reduced cycle
// budgets, so CLI wiring cannot rot silently. Output goes to the test
// log; only errors fail.
func TestRunnersSmoke(t *testing.T) {
	cases := map[string]func() error{
		"e1":        runE1,
		"fig6":      runFig6,
		"chip":      runChip,
		"fig7":      func() error { return runFig7(4000, false) },
		"horizon":   func() error { return runHorizon(20000) },
		"compare":   func() error { return runCompare(20000) },
		"approx":    func() error { return runApprox(20000) },
		"vct":       func() error { return runVCT(20000) },
		"multicast": runMulticast,
		"admit":     runAdmit,
		"load":      func() error { return runLoad(15000) },
		"skew":      func() error { return runSkew(20000) },
		"failover":  runFailover,
		"ring":      func() error { return runRing(20000) },
		"sharing":   func() error { return runSharing(20000) },
	}
	for name, run := range cases {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			if err := run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}

// TestUnconsumedFlags pins the flag-consumption contract: a flag the
// selected experiment ignores is an explicit error, not a silent no-op.
func TestUnconsumedFlags(t *testing.T) {
	cases := []struct {
		exp  string
		set  []string
		want []string
	}{
		// A gate flag on an experiment with no baseline diff used to be
		// silently ignored — the bug this contract exists to kill.
		{"forensics", []string{"exp", "scenario", "baseline", "max-regress"}, []string{"baseline", "max-regress"}},
		{"capacity", []string{"exp", "mesh", "baseline", "max-regress", "benchjson"}, nil},
		{"layout", []string{"exp", "mesh", "strict-layout", "requests"}, nil},
		{"layout", []string{"exp", "workers"}, []string{"workers"}},
		{"e1", []string{"exp", "chart"}, []string{"chart"}},
		{"fig7", []string{"exp", "chart", "cycles"}, nil},
		// Global flags are consumed everywhere.
		{"e1", []string{"exp", "cpuprofile", "trace-out"}, nil},
		// Unknown experiments are the runner lookup's problem, not ours.
		{"nonesuch", []string{"exp", "workers"}, nil},
	}
	for _, tc := range cases {
		set := make(map[string]bool, len(tc.set))
		for _, f := range tc.set {
			set[f] = true
		}
		got := unconsumedFlags(tc.exp, set)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("unconsumedFlags(%q, %v) = %v, want %v", tc.exp, tc.set, got, tc.want)
		}
	}
}

// TestExpFlagsCoverAllFlags checks the consumption table stays in sync
// with the flag set: every name in expFlags and globalFlags must be a
// registered flag (catching renames), and every registered flag must be
// consumed by at least one experiment or globally (catching new flags
// added without a consumption entry).
func TestExpFlagsCoverAllFlags(t *testing.T) {
	registered := make(map[string]bool)
	flag.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })
	// The test binary's own flags (test.*) are not rtbench's.
	consumed := make(map[string]bool)
	for _, f := range globalFlags {
		if !registered[f] {
			t.Errorf("globalFlags names unregistered flag %q", f)
		}
		consumed[f] = true
	}
	for exp, fs := range expFlags {
		for _, f := range fs {
			if !registered[f] {
				t.Errorf("expFlags[%q] names unregistered flag %q", exp, f)
			}
			consumed[f] = true
		}
	}
	for name := range registered {
		if len(name) > 5 && name[:5] == "test." {
			continue
		}
		if !consumed[name] {
			t.Errorf("flag -%s is consumed by no experiment and is not global", name)
		}
	}
}
