package router

import (
	"fmt"

	"repro/internal/sched"
)

// ConnEntry is one connection-table row (Section 4.1): indexed by the
// incoming connection identifier, it supplies the identifier to use at
// the next hop, the local delay bound d, and the bit mask of output
// ports an arriving packet fans out to (several bits for multicast; a
// multicast connection uses the same d on every branch at this node).
type ConnEntry struct {
	Valid bool
	Out   uint8
	Delay uint8
	Mask  sched.PortMask
}

// ControlField names one staging register of the control interface. To
// minimize pin count the controlling processor programs the router as a
// sequence of single-field writes (Table 3): a connection entry is four
// writes, committed by the incoming-id write; a horizon update is two,
// committed by the value write.
type ControlField int

const (
	// CtlOutConn stages the outgoing connection identifier.
	CtlOutConn ControlField = iota
	// CtlDelay stages the local delay bound d, in slots.
	CtlDelay
	// CtlPortMask stages the output-port bit mask.
	CtlPortMask
	// CtlCommitConn writes the staged entry at the given incoming id.
	CtlCommitConn
	// CtlHorizonMask stages the output-port mask for a horizon update.
	CtlHorizonMask
	// CtlHorizonValue sets the staged ports' horizon to the value, in
	// slots, and commits.
	CtlHorizonValue
)

// controlIface holds the staging registers of the control interface.
type controlIface struct {
	outConn  uint8
	delay    uint8
	mask     sched.PortMask
	horizonM sched.PortMask
}

// ControlWrite performs one control-interface write (Table 3). Commits
// take effect immediately: the paper performs connection establishment
// before data transfer on the affected connection, so no packets race the
// update.
func (r *Router) ControlWrite(f ControlField, v uint8) error {
	c := &r.ctl
	switch f {
	case CtlOutConn:
		c.outConn = v
	case CtlDelay:
		if !r.wheel.ValidDelay(int64(v)) {
			return fmt.Errorf("router %s: delay %d violates half-clock-range bound %d",
				r.name, v, r.wheel.HalfRange())
		}
		c.delay = v
	case CtlPortMask:
		if v >= 1<<NumPorts {
			return fmt.Errorf("router %s: port mask %#x has bits beyond %d ports", r.name, v, NumPorts)
		}
		c.mask = sched.PortMask(v)
	case CtlCommitConn:
		if int(v) >= len(r.table) {
			return fmt.Errorf("router %s: incoming connection id %d exceeds table size %d",
				r.name, v, len(r.table))
		}
		if int(c.outConn) >= r.cfg.Conns {
			return fmt.Errorf("router %s: outgoing connection id %d exceeds table size %d",
				r.name, c.outConn, r.cfg.Conns)
		}
		r.table[v] = ConnEntry{Valid: true, Out: c.outConn, Delay: c.delay, Mask: c.mask}
	case CtlHorizonMask:
		if v >= 1<<NumPorts {
			return fmt.Errorf("router %s: horizon port mask %#x has bits beyond %d ports", r.name, v, NumPorts)
		}
		c.horizonM = sched.PortMask(v)
	case CtlHorizonValue:
		if !r.wheel.ValidDelay(int64(v)) {
			return fmt.Errorf("router %s: horizon %d violates half-clock-range bound %d",
				r.name, v, r.wheel.HalfRange())
		}
		for p := 0; p < NumPorts; p++ {
			if c.horizonM.Has(p) {
				r.horizons[p] = uint32(v)
			}
		}
	default:
		return fmt.Errorf("router %s: unknown control field %d", r.name, int(f))
	}
	return nil
}

// SetConnection programs one connection-table entry using the Table 3
// four-write sequence.
func (r *Router) SetConnection(in, out, delay uint8, mask sched.PortMask) error {
	for _, w := range []struct {
		f ControlField
		v uint8
	}{
		{CtlOutConn, out},
		{CtlDelay, delay},
		{CtlPortMask, uint8(mask)},
		{CtlCommitConn, in},
	} {
		if err := r.ControlWrite(w.f, w.v); err != nil {
			return err
		}
	}
	return nil
}

// ClearConnection invalidates a connection-table entry (teardown).
func (r *Router) ClearConnection(in uint8) error {
	if int(in) >= len(r.table) {
		return fmt.Errorf("router %s: incoming connection id %d exceeds table size %d",
			r.name, in, len(r.table))
	}
	r.table[in] = ConnEntry{}
	return nil
}

// SetHorizon programs the horizon parameter of every port in mask using
// the Table 3 two-write sequence.
func (r *Router) SetHorizon(mask sched.PortMask, h uint8) error {
	if err := r.ControlWrite(CtlHorizonMask, uint8(mask)); err != nil {
		return err
	}
	return r.ControlWrite(CtlHorizonValue, h)
}

// Horizon returns the current horizon parameter of a port.
func (r *Router) Horizon(port int) uint32 { return r.horizons[port] }

// Connection returns a copy of the table entry for an incoming id.
func (r *Router) Connection(in uint8) ConnEntry {
	if int(in) >= len(r.table) {
		return ConnEntry{}
	}
	return r.table[in]
}
