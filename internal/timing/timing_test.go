package timing

import (
	"testing"
	"testing/quick"
)

func TestNewWheelBounds(t *testing.T) {
	for _, bits := range []uint{0, 1, 31, 64} {
		if _, err := NewWheel(bits); err == nil {
			t.Errorf("NewWheel(%d): want error", bits)
		}
	}
	for _, bits := range []uint{2, 8, 16, 30} {
		w, err := NewWheel(bits)
		if err != nil {
			t.Fatalf("NewWheel(%d): %v", bits, err)
		}
		if w.Bits() != bits {
			t.Errorf("Bits() = %d, want %d", w.Bits(), bits)
		}
		if w.Range() != 1<<bits {
			t.Errorf("Range() = %d, want %d", w.Range(), 1<<bits)
		}
		if w.HalfRange() != 1<<(bits-1) {
			t.Errorf("HalfRange() = %d, want %d", w.HalfRange(), 1<<(bits-1))
		}
	}
}

func TestMustWheelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustWheel(1) did not panic")
		}
	}()
	MustWheel(1)
}

func TestWrapAdd(t *testing.T) {
	w := MustWheel(8)
	if got := w.Wrap(256); got != 0 {
		t.Errorf("Wrap(256) = %d, want 0", got)
	}
	if got := w.Wrap(300); got != 44 {
		t.Errorf("Wrap(300) = %d, want 44", got)
	}
	if got := w.Wrap(-1); got != 255 {
		t.Errorf("Wrap(-1) = %d, want 255", got)
	}
	if got := w.Add(250, 10); got != 4 {
		t.Errorf("Add(250,10) = %d, want 4", got)
	}
	if got := w.Sub(4, 250); got != 10 {
		t.Errorf("Sub(4,250) = %d, want 10", got)
	}
}

// TestFigure6 reproduces the worked example in Figure 6 of the paper:
// an 8-bit clock with t = 240. A packet with ℓ = 80 is early traffic
// (its real arrival time is 336 = 80+256), while ℓ = 210 is on-time.
func TestFigure6(t *testing.T) {
	w := MustWheel(8)
	const now Stamp = 240
	if w.OnTime(80, now) {
		t.Error("ℓ=80 at t=240 classified on-time; paper says early")
	}
	if !w.OnTime(210, now) {
		t.Error("ℓ=210 at t=240 classified early; paper says on-time")
	}
	// The early gap for ℓ=80 is 96 slots (336−240).
	if gap := w.EarlyGap(80, now); gap != 96 {
		t.Errorf("EarlyGap(80,240) = %d, want 96", gap)
	}
}

func TestOnTimeWindowAcrossRollover(t *testing.T) {
	w := MustWheel(8)
	// Absolute time 1000 wraps to stamp 232. A packet with absolute ℓ in
	// [1000−127, 1000] must be on-time; ℓ in (1000, 1000+127] early.
	now := w.Wrap(1000)
	for off := int64(-127); off <= 127; off++ {
		l := w.Wrap(Slot(1000 + off))
		want := off <= 0
		if got := w.OnTime(l, now); got != want {
			t.Fatalf("offset %d: OnTime=%v, want %v", off, got, want)
		}
	}
}

func TestLaxityAndOverdue(t *testing.T) {
	w := MustWheel(8)
	now := w.Wrap(500)
	lax, overdue := w.Laxity(w.Wrap(500+40), now)
	if overdue || lax != 40 {
		t.Errorf("Laxity(+40) = %d,%v, want 40,false", lax, overdue)
	}
	lax, overdue = w.Laxity(w.Wrap(500), now)
	if overdue || lax != 0 {
		t.Errorf("Laxity(0) = %d,%v, want 0,false", lax, overdue)
	}
	lax, overdue = w.Laxity(w.Wrap(500-3), now)
	if !overdue || lax != 0 {
		t.Errorf("Laxity(-3) = %d,%v, want 0,true (clamped)", lax, overdue)
	}
}

func TestSortKeyOrdering(t *testing.T) {
	w := MustWheel(8)
	now := w.Wrap(100)
	// On-time with smaller laxity sorts first.
	kTight, early, _ := w.SortKey(w.Wrap(95), w.Wrap(100+5), now)
	kLoose, _, _ := w.SortKey(w.Wrap(95), w.Wrap(100+50), now)
	if early {
		t.Fatal("on-time packet keyed early")
	}
	if !(kTight < kLoose) {
		t.Errorf("tight on-time key %d not < loose %d", kTight, kLoose)
	}
	// Any early key sorts after any on-time key.
	kEarly, early, _ := w.SortKey(w.Wrap(101), w.Wrap(101+1), now)
	if !early {
		t.Fatal("future packet not keyed early")
	}
	if !(kLoose < kEarly) {
		t.Errorf("on-time key %d not < early key %d", kLoose, kEarly)
	}
	// Every real key sorts before the ineligible key.
	if !(kEarly < w.KeyIneligible()) {
		t.Errorf("early key %d not < ineligible %d", kEarly, w.KeyIneligible())
	}
}

func TestHorizonCheck(t *testing.T) {
	w := MustWheel(8)
	now := w.Wrap(100)
	k, _, _ := w.SortKey(w.Wrap(104), w.Wrap(104+8), now) // 4 slots early
	if !w.WithinHorizon(k, 4) {
		t.Error("gap 4 with h=4: want within horizon")
	}
	if w.WithinHorizon(k, 3) {
		t.Error("gap 4 with h=3: want outside horizon")
	}
	kOn, _, _ := w.SortKey(w.Wrap(99), w.Wrap(99+8), now)
	if w.WithinHorizon(kOn, 200) {
		t.Error("on-time key must never be classified early-within-horizon")
	}
}

func TestValidDelay(t *testing.T) {
	w := MustWheel(8)
	cases := []struct {
		d    int64
		want bool
	}{{0, true}, {127, true}, {128, false}, {-1, false}, {1 << 20, false}}
	for _, c := range cases {
		if got := w.ValidDelay(c.d); got != c.want {
			t.Errorf("ValidDelay(%d) = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestCyclesToSlot(t *testing.T) {
	if got := CyclesToSlot(399, 20); got != 19 {
		t.Errorf("CyclesToSlot(399,20) = %d, want 19", got)
	}
	if got := CyclesToSlot(400, 20); got != 20 {
		t.Errorf("CyclesToSlot(400,20) = %d, want 20", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CyclesToSlot with zero divisor did not panic")
		}
	}()
	CyclesToSlot(1, 0)
}

// Property: for any absolute time t and offset within the valid window,
// classification and gaps computed on wrapped stamps match the unwrapped
// ground truth. This is the rollover-correctness claim of Section 4.3.
func TestRolloverPropertyQuick(t *testing.T) {
	w := MustWheel(8)
	prop := func(tAbs int64, off int16) bool {
		if tAbs < 0 {
			tAbs = -tAbs
		}
		o := int64(off) % 128 // stay within the half-range window
		lAbs := tAbs + o
		lt, tt := w.Wrap(Slot(lAbs)), w.Wrap(Slot(tAbs))
		if w.OnTime(lt, tt) != (o <= 0) {
			return false
		}
		if o > 0 && w.EarlyGap(lt, tt) != uint32(o) {
			return false
		}
		if o <= 0 {
			// Deadline d slots after ℓ, still in window.
			d := int64(20)
			if -o+d < 128 {
				lax, over := w.Laxity(w.Wrap(Slot(lAbs+d)), tt)
				if o+d >= 0 {
					if over || int64(lax) != o+d {
						return false
					}
				} else if !over || lax != 0 {
					// Deadline already expired: must clamp to overdue.
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: key ordering is consistent with (class, gap) lexicographic
// ordering for all in-window pairs.
func TestKeyOrderPropertyQuick(t *testing.T) {
	w := MustWheel(8)
	type pkt struct {
		l, dl Stamp
	}
	mk := func(tAbs int64, off int8, d uint8) pkt {
		o := int64(off) % 100
		dd := int64(d)%27 + 1
		return pkt{w.Wrap(Slot(tAbs + o)), w.Wrap(Slot(tAbs + o + dd))}
	}
	prop := func(tAbs int64, o1, o2 int8, d1, d2 uint8) bool {
		if tAbs < 0 {
			tAbs = -tAbs
		}
		now := w.Wrap(Slot(tAbs))
		a, b := mk(tAbs, o1, d1), mk(tAbs, o2, d2)
		ka, ea, _ := w.SortKey(a.l, a.dl, now)
		kb, eb, _ := w.SortKey(b.l, b.dl, now)
		// Class dominance: on-time always sorts before early.
		if !ea && eb && ka >= kb {
			return false
		}
		if ea && !eb && ka <= kb {
			return false
		}
		if ea == eb {
			ga, gb := w.KeyGap(ka), w.KeyGap(kb)
			if (ga < gb) != (ka < kb) && ga != gb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustive8BitClassification(t *testing.T) {
	// For every (ℓ, t) pair on an 8-bit wheel, exactly one of on-time /
	// early holds, and Sub/Add are inverses.
	w := MustWheel(8)
	for l := 0; l < 256; l++ {
		for tt := 0; tt < 256; tt++ {
			ls, ts := Stamp(l), Stamp(tt)
			on := w.OnTime(ls, ts)
			gap := w.Sub(ts, ls)
			if on != (gap < 128) {
				t.Fatalf("ℓ=%d t=%d: OnTime=%v gap=%d", l, tt, on, gap)
			}
			if w.Add(ls, w.Sub(ts, ls)) != ts {
				t.Fatalf("Add/Sub not inverse at ℓ=%d t=%d", l, tt)
			}
		}
	}
}
