package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// AuditRecord is one admission-plane decision: an admit, teardown,
// restore, or reroute, successful or refused, with the channel's
// contract, route, and margins — or the typed explanation of why it was
// turned away.
type AuditRecord struct {
	// Seq is the global decision sequence number: admission runs
	// host-side (sequentially, outside the cycle kernel), so Seq totals
	// all decisions in the order they were made.
	Seq uint64
	// Node is the shard index of the deciding channel's source node;
	// NodeSeq the record's position within that shard.
	Node    int
	NodeSeq uint64
	// Op is the control-plane verb: "admit", "teardown", "restore", or
	// "reroute". Outcome is its result: "admitted", "rejected",
	// "released", "restored", "rerouted", or "refused".
	Op      string
	Outcome string
	// Channel is the channel id, -1 when no channel was created.
	Channel int
	// Src and Dst are the endpoints; Spec the rendered traffic contract.
	Src, Dst, Spec string
	// Route is the hop-by-hop route with output ports; LocalD the
	// uniform per-hop delay split d_j; Hops the tree size. DSplit is
	// the rendered non-uniform split ("5+7+5") for layout-admitted
	// channels and replaces LocalD in the rendered line when set.
	Route  string
	LocalD int64
	DSplit string
	Hops   int
	// Margin is the admission margin in slots (min EDF headroom across
	// every link the test checked, candidate included) for successful
	// decisions, or the signed failure margin for refusals.
	Margin float64
	// Binding names the resource that refused the channel and Test the
	// failed admission test; Router the router that refused it (always
	// set on controller refusals); Err carries the rejection message.
	Binding, Test, Router, Err string
}

// String renders the record as one fixed-format line. The format is
// part of the byte-identity contract: identical decisions render
// identically regardless of worker count.
func (r AuditRecord) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d n%d.%d %s", r.Seq, r.Node, r.NodeSeq, r.Op)
	if r.Channel >= 0 {
		fmt.Fprintf(&b, " ch%d", r.Channel)
	}
	fmt.Fprintf(&b, " %s %s->%s", r.Outcome, r.Src, r.Dst)
	if r.Spec != "" {
		b.WriteByte(' ')
		b.WriteString(r.Spec)
	}
	if r.Route != "" {
		if r.DSplit != "" {
			fmt.Fprintf(&b, " d=[%s] hops=%d route=%s", r.DSplit, r.Hops, r.Route)
		} else {
			fmt.Fprintf(&b, " d=%d hops=%d route=%s", r.LocalD, r.Hops, r.Route)
		}
	}
	fmt.Fprintf(&b, " margin=%+g", r.Margin)
	if r.Binding != "" {
		fmt.Fprintf(&b, " binding=%s test=%s", r.Binding, r.Test)
		if r.Router != "" {
			fmt.Fprintf(&b, " router=%s", r.Router)
		}
	}
	if r.Err != "" {
		fmt.Fprintf(&b, " err=%q", r.Err)
	}
	return b.String()
}

type auditShard struct {
	recs []AuditRecord
	seq  uint64
}

// AuditLog collects admission-plane decisions per source node under the
// sharded contract: records live in the shard of the channel's source
// coordinate and Merged interleaves shards into the global decision
// order. Admission decisions are made host-side between kernel runs —
// never from worker goroutines — so recording needs no synchronization
// and the merged log is byte-identical at any worker count by
// construction; the per-node layout exists so audits slice the same way
// traces and SLO accounts do.
type AuditLog struct {
	shards map[int]*auditShard
	seq    uint64
}

// NewAuditLog returns an empty audit log.
func NewAuditLog() *AuditLog {
	return &AuditLog{shards: make(map[int]*auditShard)}
}

// Record appends one decision to node's shard, stamping the global and
// per-node sequence numbers.
func (l *AuditLog) Record(node int, rec AuditRecord) {
	s := l.shards[node]
	if s == nil {
		s = &auditShard{}
		l.shards[node] = s
	}
	rec.Seq = l.seq
	rec.Node = node
	rec.NodeSeq = s.seq
	l.seq++
	s.seq++
	s.recs = append(s.recs, rec)
}

// Len returns the total number of recorded decisions.
func (l *AuditLog) Len() int {
	return int(l.seq)
}

// Merged returns every shard's records interleaved into the global
// decision order.
func (l *AuditLog) Merged() []AuditRecord {
	out := make([]AuditRecord, 0, l.seq)
	for _, s := range l.shards {
		out = append(out, s.recs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the merged log one line per record.
func (l *AuditLog) Dump(w io.Writer) error {
	for _, r := range l.Merged() {
		if _, err := fmt.Fprintln(w, r.String()); err != nil {
			return err
		}
	}
	return nil
}

// DumpHash returns an FNV-1a digest over the merged log's rendered
// lines — a cheap fingerprint for the byte-identity gates, which compare
// whole 100k-decision logs across worker counts without holding two
// multi-megabyte dumps.
func (l *AuditLog) DumpHash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, r := range l.Merged() {
		for _, b := range []byte(r.String()) {
			h ^= uint64(b)
			h *= prime64
		}
		h ^= uint64('\n')
		h *= prime64
	}
	return h
}

// Reset discards all records and restarts the sequence numbering.
func (l *AuditLog) Reset() {
	l.shards = make(map[int]*auditShard)
	l.seq = 0
}
