// Package obs is the parallel-safe observability layer: sharded
// lifecycle collection, per-channel SLO accounting, and trace export.
//
// The problem it solves: a single shared Router.OnLifecycle observer (a
// trace.Ring) races under the parallel two-phase kernel, which used to
// force tracing into sequential mode. Sharded keeps one event buffer
// per mesh node instead. During the compute phase every router writes
// only its own node's shard — plain stores, no atomics, no locks — and
// the kernel's end-of-run barrier orders those writes before any merge.
// Merging interleaves the shards by (cycle, node, seq), a total order
// that depends only on what each node did and when, never on worker
// scheduling, so sequential and parallel runs of the same workload
// produce byte-identical merged traces (TestParallelEquivalence proves
// it).
//
// On top of the merged stream sit the per-channel SLO accountants
// (slo.go) and the exporters (export.go): Chrome trace-event JSON for
// Perfetto and a JSONL event log.
package obs

import (
	"io"
	"sort"

	"repro/internal/router"
	"repro/internal/trace"
)

// Event is one lifecycle observation tagged with its shard identity:
// Node is the shard index the emitting router was attached as (row-major
// mesh order when attached by core.NewMesh), Seq the event's position in
// that node's stream. (Cycle, Node, Seq) totally orders all events.
type Event struct {
	router.LifecycleEvent
	Node int
	Seq  uint64
}

// shard is one node's private event buffer: a fixed-capacity
// newest-wins ring, same eviction policy as trace.Ring. Only the owning
// node's goroutine touches it during the compute phase; merge-time
// readers run after the worker pool's barrier, which provides the
// happens-before edge.
type shard struct {
	name  string // router name, for export metadata
	buf   []Event
	next  int
	seq   uint64
	total int64
}

func (s *shard) record(e Event, capPer int) {
	if len(s.buf) < capPer {
		s.buf = append(s.buf, e)
		s.next = len(s.buf) % capPer
	} else {
		s.buf[s.next] = e
		s.next = (s.next + 1) % capPer
	}
	s.seq++
	s.total++
}

// events returns the retained events oldest-first. While the shard is
// still filling, next == len(buf) and the rotation below degenerates to
// a plain copy; once full, next points at the oldest retained event.
func (s *shard) events() []Event {
	out := make([]Event, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}

func (s *shard) reset() {
	s.buf = s.buf[:0]
	s.next = 0
	s.seq = 0
	s.total = 0
}

// DefaultShardCap is the per-node buffer capacity used when the caller
// passes a non-positive value to NewSharded.
const DefaultShardCap = 4096

// Sharded is the per-node lifecycle collector. Attach one router per
// mesh node in a fixed order (core.NewMesh uses row-major coordinate
// order); each attachment owns a private fixed-capacity buffer the
// router writes without synchronization.
type Sharded struct {
	capPer int
	shards []*shard
}

// NewSharded returns a collector keeping the last capPerNode events per
// attached router (DefaultShardCap if capPerNode <= 0).
func NewSharded(capPerNode int) *Sharded {
	if capPerNode <= 0 {
		capPerNode = DefaultShardCap
	}
	return &Sharded{capPer: capPerNode}
}

// Attach gives router r the next shard and chains its lifecycle and
// reset hooks, preserving any hooks already installed. It returns the
// node index assigned to r. Attach before the simulation starts; it is
// not safe concurrently with a running kernel.
func (c *Sharded) Attach(r *router.Router) int {
	node := len(c.shards)
	s := &shard{name: r.Name()}
	c.shards = append(c.shards, s)
	prev := r.OnLifecycle
	r.OnLifecycle = func(ev router.LifecycleEvent) {
		s.record(Event{LifecycleEvent: ev, Node: node, Seq: s.seq}, c.capPer)
		if prev != nil {
			prev(ev)
		}
	}
	prevReset := r.OnReset
	r.OnReset = func() {
		s.reset()
		if prevReset != nil {
			prevReset()
		}
	}
	return node
}

// Nodes returns the number of attached routers.
func (c *Sharded) Nodes() int { return len(c.shards) }

// RouterName returns the name of the router attached as node i.
func (c *Sharded) RouterName(i int) string { return c.shards[i].name }

// NodeNames returns every attached router's name in node order.
func (c *Sharded) NodeNames() []string {
	names := make([]string, len(c.shards))
	for i, s := range c.shards {
		names[i] = s.name
	}
	return names
}

// Cap returns the per-node buffer capacity.
func (c *Sharded) Cap() int { return c.capPer }

// Total returns how many events were recorded overall, including ones
// evicted from full shards.
func (c *Sharded) Total() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.total
	}
	return n
}

// Dropped returns how many recorded events were evicted.
func (c *Sharded) Dropped() int64 {
	var n int64
	for _, s := range c.shards {
		n += s.total - int64(len(s.buf))
	}
	return n
}

// Reset discards every shard's retained events and sequence counters.
// Router.ResetStats reaches it through the OnReset chain, so a warmup
// reset rotates the collector together with the hardware counters.
func (c *Sharded) Reset() {
	for _, s := range c.shards {
		s.reset()
	}
}

// Merged returns the retained events of every shard interleaved into
// the deterministic total order (Cycle, Node, Seq). Cycle refines the
// slot clock (one slot is many cycles), node index breaks same-cycle
// ties between routers, and Seq orders one node's events within a
// cycle — none of the three depends on worker scheduling.
func (c *Sharded) Merged() []Event {
	var out []Event
	for _, s := range c.shards {
		out = append(out, s.events()...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}

// TraceEvents converts the merged timeline to trace events, rendering
// exactly as a legacy single-ring recording of the same run would.
func (c *Sharded) TraceEvents() []trace.Event {
	m := c.Merged()
	out := make([]trace.Event, len(m))
	for i, e := range m {
		out[i] = trace.FromLifecycle(e.LifecycleEvent)
	}
	return out
}

// Dump writes the merged timeline in the standard human-readable trace
// format. The output is byte-identical across worker counts.
func (c *Sharded) Dump(w io.Writer) {
	trace.DumpEvents(w, c.TraceEvents())
}

// DumpTail writes only the last n merged events (all of them when n <= 0
// or n exceeds the retained count).
func (c *Sharded) DumpTail(w io.Writer, n int) {
	ev := c.TraceEvents()
	if n > 0 && n < len(ev) {
		ev = ev[len(ev)-n:]
	}
	trace.DumpEvents(w, ev)
}
