package admission

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
)

// xyPlan builds a PlanSpec along the XY route with an explicit split.
func xyPlan(t *testing.T, net *mesh.Network, src, dst mesh.Coord, spec rtc.Spec, dsplit []int64) PlanSpec {
	t.Helper()
	route := mesh.XYRoute(src, dst)
	if len(dsplit) != len(route) {
		t.Fatalf("test split has %d bounds for a %d-hop route", len(dsplit), len(route))
	}
	return PlanSpec{Src: src, Dst: dst, Spec: spec, Route: route, DSplit: dsplit}
}

// TestLayoutValidation drives each planLayout validation error.
func TestLayoutValidation(t *testing.T) {
	net := newNet(t, 4, 4)
	c, err := New(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := rtc.Spec{Imin: 16, Smax: 18, D: 64}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}
	okRoute := mesh.XYRoute(src, dst) // [+x +x local]

	cases := []struct {
		name string
		ps   PlanSpec
		want string
	}{
		{"empty route", PlanSpec{Src: src, Dst: dst, Spec: spec}, "layout: empty route"},
		{"split length", PlanSpec{Src: src, Dst: dst, Spec: spec, Route: okRoute, DSplit: []int64{10, 10}},
			"layout: 2 delay bounds for a 3-hop route"},
		{"src outside", PlanSpec{Src: mesh.Coord{X: 9, Y: 9}, Dst: dst, Spec: spec, Route: okRoute, DSplit: []int64{10, 10, 10}},
			"source (9,9) outside mesh"},
		{"no local delivery", PlanSpec{Src: src, Dst: dst, Spec: spec,
			Route: []int{router.PortXPlus, router.PortXPlus, router.PortXPlus}, DSplit: []int64{10, 10, 10}},
			"route must end with local delivery"},
		{"wrong terminus", PlanSpec{Src: src, Dst: dst, Spec: spec,
			Route: []int{router.PortXPlus, router.PortLocal}, DSplit: []int64{10, 10}},
			"route ends at (1,0), not (2,0)"},
		{"leaves mesh", PlanSpec{Src: src, Dst: dst, Spec: spec,
			Route: []int{router.PortYMinus, router.PortLocal}, DSplit: []int64{10, 10}},
			"route leaves the mesh"},
		{"revisits", PlanSpec{Src: src, Dst: dst, Spec: spec,
			Route:  []int{router.PortXPlus, router.PortXMinus, router.PortXPlus, router.PortXPlus, router.PortLocal},
			DSplit: []int64{10, 10, 10, 10, 10}},
			"route revisits (0,0)"},
		{"bound below service", xyPlan(t, net, src, dst, spec, []int64{0, 10, 10}),
			"hop 0 bound 0 below message service time"},
		{"split over budget", xyPlan(t, net, src, dst, spec, []int64{30, 30, 30}),
			"split sums to 90, over the end-to-end bound 64"},
	}
	for _, tc := range cases {
		_, err := c.PlanLayout(tc.ps)
		if err == nil {
			t.Errorf("%s: accepted, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
	if c.Active() != 0 {
		t.Errorf("rejected probes left %d active channels", c.Active())
	}
	if err := c.VerifyLedger(); err != nil {
		t.Errorf("rejected probes dirtied the ledger: %v", err)
	}
}

// TestAdmitLayoutCommit admits a non-uniform split over a YX route and
// checks the channel records the layout verbatim, the ledger verifies
// (per-hop deadlines reconstruct the reservations), and teardown
// restores the empty ledger exactly.
func TestAdmitLayoutCommit(t *testing.T) {
	net := newNet(t, 4, 4)
	c, err := New(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	empty, err := json.Marshal(c.Seal())
	if err != nil {
		t.Fatal(err)
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 1}
	spec := rtc.Spec{Imin: 16, Smax: 18, D: 64}
	route := mesh.YXRoute(src, dst) // [+y +x +x local]
	split := []int64{25, 13, 13, 13}
	ch, err := c.AdmitLayout(PlanSpec{Src: src, Dst: dst, Spec: spec, Route: route, DSplit: split})
	if err != nil {
		t.Fatal(err)
	}
	if ch.LocalD != 0 {
		t.Errorf("layout channel LocalD = %d, want 0 (delay structure lives in DSplit)", ch.LocalD)
	}
	if len(ch.DSplit) != len(split) {
		t.Fatalf("DSplit = %v, want %v", ch.DSplit, split)
	}
	for i := range split {
		if ch.DSplit[i] != split[i] {
			t.Fatalf("DSplit = %v, want %v", ch.DSplit, split)
		}
	}
	if got := ch.Bound(); got != 64 {
		t.Errorf("Bound = %d, want 64 (sum of split)", got)
	}
	if got := ch.SourceD(); got != 25 {
		t.Errorf("SourceD = %d, want 25 (first split element)", got)
	}
	if got := ch.Hops(); got != 4 {
		t.Errorf("Hops = %d, want 4", got)
	}
	if ch.Route() == "" {
		t.Error("layout channel has empty Route()")
	}
	if err := c.VerifyLedger(); err != nil {
		t.Errorf("ledger does not verify with a layout channel active: %v", err)
	}
	if err := c.Teardown(ch); err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(c.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(empty, after) {
		t.Error("teardown of a layout channel did not restore the empty ledger byte-for-byte")
	}
}

// TestAdmitLayoutAudit pins the layout audit record: op admit_layout,
// the d=[a+b+...] split rendering on success, and router= attribution
// on refusal.
func TestAdmitLayoutAudit(t *testing.T) {
	net := newNet(t, 4, 4)
	c, err := New(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewAuditLog()
	c.AttachAudit(log)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}
	spec := rtc.Spec{Imin: 16, Smax: 18, D: 64}
	ps := xyPlan(t, net, src, dst, spec, []int64{30, 17, 17})
	if _, err := c.AdmitLayout(ps); err != nil {
		t.Fatal(err)
	}
	recs := log.Merged()
	rec := recs[len(recs)-1]
	if rec.Op != "admit_layout" || rec.Outcome != "admitted" {
		t.Fatalf("audit record %q/%q, want admit_layout/admitted", rec.Op, rec.Outcome)
	}
	if rec.DSplit != "30+17+17" {
		t.Errorf("audit DSplit = %q, want 30+17+17", rec.DSplit)
	}
	line := rec.String()
	if !strings.Contains(line, " d=[30+17+17] hops=3 ") {
		t.Errorf("audit line %q missing d=[30+17+17] hops=3", line)
	}

	// Saturate the injection port so a refusal lands, and check it is
	// attributed to a router.
	tight := rtc.Spec{Imin: 4, Smax: 18, D: 24}
	var rejErr error
	for i := 0; i < 50; i++ {
		_, rejErr = c.AdmitLayout(xyPlan(t, net, src, dst, tight, []int64{8, 8, 8}))
		if rejErr != nil {
			break
		}
	}
	if rejErr == nil {
		t.Fatal("injection port never saturated")
	}
	recs = log.Merged()
	rec = recs[len(recs)-1]
	if rec.Op != "admit_layout" || rec.Outcome != "rejected" {
		t.Fatalf("audit record %q/%q, want admit_layout/rejected", rec.Op, rec.Outcome)
	}
	if rec.Router == "" {
		t.Error("layout refusal record does not name a router")
	}
}

// TestLayoutReferenceAgreement fuzzes random layouts against a pair of
// controllers — incremental and Reference mode — fed the identical
// sequence. Every AdmitLayout must agree on verdict, channel identity,
// margin, and error bytes, and the sealed ledgers must match
// byte-for-byte at the end.
func TestLayoutReferenceAgreement(t *testing.T) {
	w, h := 5, 4
	fast, err := New(newNet(t, w, h), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	refCfg := DefaultConfig()
	refCfg.Reference = true
	ref, err := New(newNet(t, w, h), refCfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		src := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		dst := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		if dst == src {
			dst.X = (dst.X + 1) % w
		}
		spec := rtc.Spec{Imin: int64(8 * (1 + rng.Intn(4))), Smax: 18, D: int64(32 + rng.Intn(64))}
		route := mesh.XYRoute(src, dst)
		if rng.Intn(2) == 0 {
			route = mesh.YXRoute(src, dst)
		}
		// Random split: mostly valid, sometimes deliberately broken so
		// rejection strings are compared too.
		split := make([]int64, len(route))
		per := spec.D / int64(len(route))
		for j := range split {
			split[j] = per
			if per > 1 && rng.Intn(3) == 0 {
				split[j] = per - int64(rng.Intn(int(per)))
			}
		}
		ps := PlanSpec{Src: src, Dst: dst, Spec: spec, Route: route, DSplit: split}
		fch, ferr := fast.AdmitLayout(ps)
		rch, rerr := ref.AdmitLayout(ps)
		if (ferr == nil) != (rerr == nil) {
			t.Fatalf("request %d: verdicts diverge: fast=%v ref=%v", i, ferr, rerr)
		}
		if ferr != nil {
			if ferr.Error() != rerr.Error() {
				t.Fatalf("request %d: rejection bytes diverge:\n fast %q\n  ref %q", i, ferr, rerr)
			}
			continue
		}
		if fch.ID != rch.ID || fch.Margin != rch.Margin || fch.SrcConn != rch.SrcConn || fch.Bound() != rch.Bound() {
			t.Fatalf("request %d: channel identity diverges: fast id=%d margin=%d conn=%d bound=%d, ref id=%d margin=%d conn=%d bound=%d",
				i, fch.ID, fch.Margin, fch.SrcConn, fch.Bound(), rch.ID, rch.Margin, rch.SrcConn, rch.Bound())
		}
	}
	fSeal, err := json.Marshal(fast.Seal())
	if err != nil {
		t.Fatal(err)
	}
	rSeal, err := json.Marshal(ref.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fSeal, rSeal) {
		t.Fatal("sealed ledgers diverge between incremental and Reference layout admission")
	}
	if err := fast.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
	if err := ref.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}
