package sim

import (
	"runtime"
	"sync"
)

// Parallel execution mode.
//
// The compute/commit split already guarantees that evaluation order
// never changes results across component boundaries, as long as
// components communicate only through Regs: every Tick reads values
// latched at the previous edge and writes values latched at the next
// one. The parallel mode exploits exactly that property. Components
// registered with RegisterShard are grouped by shard; within a shard
// they keep registration order (modelling same-chip paths and the
// node→router injection-queue handoff, the two documented ordering
// exceptions), while different shards tick concurrently on a persistent
// worker pool. Components registered with plain Register may touch
// anything (e.g. a telemetry sampler reading every router's counters),
// so they act as barriers: the schedule is a sequence of segments, each
// either one parallel batch of shard groups or one barrier component.
//
// The commit phase partitions the Latchables into contiguous chunks,
// one per worker; every latch is independent, so any partition commits
// the same state.
//
// No goroutine is spawned per cycle: SetWorkers starts workers-1
// resident goroutines that block on a per-worker channel, and each
// phase is one broadcast/join round. The calling goroutine doubles as
// worker 0. Results are bit-identical to the sequential mode for any
// worker count (see TestParallelEquivalence in internal/core).

// SetWorkers selects the execution mode: n <= 1 is the sequential mode
// (the default), n > 1 ticks shards on n workers (the caller counts as
// one). n <= 0 picks GOMAXPROCS. Changing the count mid-run is allowed
// between Steps; the resident pool is resized lazily.
func (k *Kernel) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == k.workers {
		return
	}
	k.stopPool()
	k.workers = n
}

// Workers returns the configured worker count (1 = sequential).
func (k *Kernel) Workers() int { return k.workers }

// Close releases the resident worker goroutines. The kernel remains
// usable afterwards in sequential mode (and a later Step with workers
// still set restarts the pool). Callers that enable parallel mode on
// short-lived kernels — benchmarks, sweeps — should Close them.
func (k *Kernel) Close() {
	k.stopPool()
	k.workers = 1
}

func (k *Kernel) stopPool() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
}

// segment is one step of the parallel schedule.
type segment struct {
	barrier Component     // non-nil: tick alone on the calling goroutine
	shards  [][]Component // else: shard groups ticked concurrently
}

// buildPlan folds the registration list into the segment schedule:
// maximal runs of sharded components coalesce into one parallel batch
// (grouped by shard, registration order preserved within each shard),
// split at every unsharded component.
func (k *Kernel) buildPlan() {
	k.plan = k.plan[:0]
	idx := make(map[int]int) // shard key -> position in the open batch
	var batch [][]Component
	flush := func() {
		if len(batch) > 0 {
			k.plan = append(k.plan, segment{shards: batch})
			batch = nil
			clear(idx)
		}
	}
	for _, e := range k.entries {
		if e.shard == globalShard {
			flush()
			k.plan = append(k.plan, segment{barrier: e.c})
			continue
		}
		i, ok := idx[e.shard]
		if !ok {
			i = len(batch)
			idx[e.shard] = i
			batch = append(batch, nil)
		}
		batch[i] = append(batch[i], e.c)
	}
	flush()
	k.planDirty = false
}

// stepParallel executes one cycle on the worker pool.
func (k *Kernel) stepParallel() {
	if k.planDirty {
		k.buildPlan()
	}
	if k.pool == nil {
		k.pool = newWorkerPool(k.workers)
	}
	for i := range k.plan {
		seg := &k.plan[i]
		if seg.barrier != nil {
			seg.barrier.Tick(k.now)
			continue
		}
		if len(seg.shards) == 1 {
			// One group cannot parallelize; skip the broadcast.
			for _, c := range seg.shards[0] {
				c.Tick(k.now)
			}
			continue
		}
		k.pool.tick(seg.shards, k.now)
	}
	k.pool.commit(k.latches)
	k.now++
}

// workerPool is the resident goroutine team. The job fields are written
// by the calling goroutine before the start broadcast and read by the
// workers after receiving it; the channel operations order the accesses.
type workerPool struct {
	n      int
	starts []chan struct{}
	wg     sync.WaitGroup

	// current job
	committing bool
	shards     [][]Component
	latches    []Latchable
	now        Cycle
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{n: n, starts: make([]chan struct{}, n)}
	for w := 1; w < n; w++ {
		p.starts[w] = make(chan struct{}, 1)
		go p.worker(w)
	}
	return p
}

func (p *workerPool) worker(id int) {
	for range p.starts[id] {
		p.run(id)
		p.wg.Done()
	}
}

// run executes worker id's share of the current job. Shard groups are
// assigned round-robin (group sizes are near-uniform in a mesh);
// latches split into contiguous chunks.
func (p *workerPool) run(id int) {
	if p.committing {
		lo := id * len(p.latches) / p.n
		hi := (id + 1) * len(p.latches) / p.n
		for _, l := range p.latches[lo:hi] {
			l.Commit()
		}
		return
	}
	for i := id; i < len(p.shards); i += p.n {
		for _, c := range p.shards[i] {
			c.Tick(p.now)
		}
	}
}

func (p *workerPool) dispatch() {
	p.wg.Add(p.n - 1)
	for w := 1; w < p.n; w++ {
		p.starts[w] <- struct{}{}
	}
	p.run(0)
	p.wg.Wait()
}

func (p *workerPool) tick(shards [][]Component, now Cycle) {
	p.committing = false
	p.shards = shards
	p.now = now
	p.dispatch()
}

func (p *workerPool) commit(latches []Latchable) {
	p.committing = true
	p.latches = latches
	p.dispatch()
}

func (p *workerPool) stop() {
	for w := 1; w < p.n; w++ {
		close(p.starts[w])
	}
}
