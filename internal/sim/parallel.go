package sim

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Parallel execution mode.
//
// The compute/commit split already guarantees that evaluation order
// never changes results across component boundaries, as long as
// components communicate only through Regs: every Tick reads values
// latched at the previous edge and writes values latched at the next
// one. The parallel mode exploits exactly that property.
//
// The engine compiles the registration list into a plan once (rebuilt
// lazily when registrations, tiling, or the worker count change):
//
//   - Maximal runs of sharded components become parallel segments.
//     Within a segment, shards are grouped into tiles (SetTiling; a mesh
//     maps node shards to square spatial blocks), tiles are sorted and
//     dealt out contiguously to the workers balanced by component count,
//     so the plan has ~workers coarse, cache-local groups rather than
//     ~shards small ones, and the tile→worker assignment is stable.
//   - Components registered with plain Register may touch anything
//     (e.g. a telemetry sampler reading every router's counters), so
//     they act as barriers: all workers rendezvous, worker 0 ticks the
//     component alone, and all workers rendezvous again.
//   - The latches are partitioned per worker into contiguous spans over
//     the typed commit banks (plus the loose interface list), so the
//     commit phase is a deterministic dirty scan with no shared cursor.
//
// Per cycle the pool costs one dispatch: the main goroutine publishes
// the job and enters the cycle barrier, every worker ticks its own
// group, and the tick-phase join doubles as the commit dispatch — each
// worker falls directly into committing its own latch spans. A final
// join lets Step return only after all state has committed, keeping
// between-step reads (RunUntil predicates, stats scrapes) safe. The
// barriers are sense-reversing atomics that spin briefly before parking,
// so a cycle costs a handful of atomic operations instead of the
// channel broadcast + WaitGroup rendezvous per phase it used to.
//
// When the process has a single CPU (or a single worker group), the
// pool cannot help, so the engine runs the same plan inline on the
// calling goroutine: no dispatch at all, but still the tiled iteration
// order and the dirty-latch commit. ForcePool overrides this for tests
// that need the real rendezvous path exercised under the race detector.

// SetWorkers selects the execution mode: n <= 1 is the sequential mode
// (the default), n > 1 ticks shards on n workers (the caller counts as
// one). n <= 0 picks GOMAXPROCS. Changing the count mid-run is allowed
// between Steps; the resident pool is resized lazily.
func (k *Kernel) SetWorkers(n int) {
	n = ResolveWorkers(n)
	if n == k.workers {
		return
	}
	k.stopPool()
	k.workers = n
	k.planDirty = true
}

// Workers returns the configured worker count (1 = sequential).
func (k *Kernel) Workers() int { return k.workers }

// ForcePool makes the parallel mode always run on the resident worker
// pool, even where the engine would normally fall back to the inline
// path (single-CPU processes, single-group plans). It exists so tests
// can exercise the rendezvous machinery under the race detector on any
// machine; simulations have no reason to set it.
func (k *Kernel) ForcePool(on bool) { k.forcePool = on }

// Close releases the resident worker goroutines. The kernel remains
// usable afterwards in sequential mode (and a later Step with workers
// still set restarts the pool). Callers that enable parallel mode on
// short-lived kernels — benchmarks, sweeps — should Close them.
func (k *Kernel) Close() {
	k.stopPool()
	if k.workers != 1 {
		k.workers = 1
		k.planDirty = true
	}
}

func (k *Kernel) stopPool() {
	if k.pool != nil {
		k.pool.stop()
		k.pool = nil
	}
}

// planSeg is one step of the parallel schedule: either one barrier
// component or one batch of per-worker tile lists.
type planSeg struct {
	barrier Component
	groups  [][]planTile
}

// planTile is one spatial tile of one worker's share: its components in
// tick order, plus what the epoch mode's per-tile skip needs — the
// components' Skipper views (nil when any component cannot skip) and
// the pipes whose reader lives in this tile.
type planTile struct {
	comps    []Component
	skippers []Skipper
	pipes    []PipeState
}

// trySkip fast-forwards one tile across a whole epoch when every
// component in it is idle past end and no inbound wire delivers before
// then. The pipe probe touches only ring slots in [now, end), which the
// epoch legality bound keeps disjoint from any concurrent writer's.
func (t *planTile) trySkip(now, end Cycle) bool {
	if t.skippers == nil {
		return false
	}
	for _, s := range t.skippers {
		if s.NextWork(now) < end {
			return false
		}
	}
	for _, p := range t.pipes {
		if p.HasStampIn(now, end) {
			return false
		}
	}
	for _, s := range t.skippers {
		s.Skip(now, end)
	}
	return true
}

// latchSpan is one contiguous slice of one commit bank (or, for
// bank == -1, of the loose interface list) owned by one worker.
type latchSpan struct {
	bank   int
	lo, hi int
}

// buildPlan compiles the registration list into the segment schedule
// and the per-worker latch spans.
func (k *Kernel) buildPlan() {
	k.plan = k.plan[:0]
	var run []entry
	flush := func() {
		if len(run) > 0 {
			k.plan = append(k.plan, planSeg{groups: k.groupRun(run)})
			run = run[:0]
		}
	}
	for _, e := range k.entries {
		if e.shard == globalShard {
			flush()
			k.plan = append(k.plan, planSeg{barrier: e.c})
			continue
		}
		run = append(run, e)
	}
	flush()
	k.buildSpans()
	k.planDirty = false
}

// groupRun turns one run of sharded registrations into per-worker tile
// lists: shards collapse into tiles (registration order preserved
// within each tile, which subsumes the per-shard order), tiles sort by
// id so the assignment is stable and spatially contiguous, and a greedy
// contiguous deal balances component counts across the workers. Each
// tile also learns its Skipper roster and inbound pipes, which is what
// the epoch mode's per-tile quiescence skip consults.
func (k *Kernel) groupRun(run []entry) [][]planTile {
	tileOf := func(shard int) int {
		if k.tiling != nil {
			return k.tiling(shard)
		}
		return shard
	}
	type tile struct {
		id     int
		shards map[int]bool
		comps  []Component
	}
	idx := make(map[int]int)
	var tiles []tile
	for _, e := range run {
		t := tileOf(e.shard)
		i, ok := idx[t]
		if !ok {
			i = len(tiles)
			idx[t] = i
			tiles = append(tiles, tile{id: t, shards: make(map[int]bool)})
		}
		tiles[i].comps = append(tiles[i].comps, e.c)
		tiles[i].shards[e.shard] = true
	}
	sort.Slice(tiles, func(i, j int) bool { return tiles[i].id < tiles[j].id })

	// A pipe with an unknown reader shard cannot be assigned to a tile,
	// so no tile may skip past it: disable tile skipping plan-wide.
	tileSkipOK := true
	for _, pe := range k.pipes {
		if pe.reader < 0 {
			tileSkipOK = false
			break
		}
	}
	build := func(t *tile) planTile {
		pt := planTile{comps: t.comps}
		if !tileSkipOK {
			return pt
		}
		skippers := make([]Skipper, 0, len(t.comps))
		for _, c := range t.comps {
			s, ok := c.(Skipper)
			if !ok {
				return pt
			}
			skippers = append(skippers, s)
		}
		pt.skippers = skippers
		for _, pe := range k.pipes {
			if t.shards[pe.reader] {
				pt.pipes = append(pt.pipes, pe.p)
			}
		}
		return pt
	}

	n := k.workers
	if n > len(tiles) {
		n = len(tiles)
	}
	groups := make([][]planTile, 0, n)
	total := len(run)
	done := 0
	var cur []planTile
	for i := range tiles {
		t := &tiles[i]
		cur = append(cur, build(t))
		done += len(t.comps)
		if len(groups) < n-1 && done >= (len(groups)+1)*total/n {
			groups = append(groups, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// buildSpans deals the latches out to the workers: the banks (then the
// loose list) form one logical sequence, split into contiguous
// per-worker ranges, so every latch commits exactly once and the
// partition is deterministic for any worker count.
func (k *Kernel) buildSpans() {
	total := len(k.loose)
	for _, b := range k.banks {
		total += b.size()
	}
	n := k.workers
	k.spans = make([][]latchSpan, n)
	for w := 0; w < n; w++ {
		glo, ghi := w*total/n, (w+1)*total/n
		off := 0
		for bi := -1; bi < len(k.banks); bi++ {
			var sz int
			if bi < 0 {
				sz = len(k.loose)
			} else {
				sz = k.banks[bi].size()
			}
			lo, hi := glo-off, ghi-off
			if lo < 0 {
				lo = 0
			}
			if hi > sz {
				hi = sz
			}
			if lo < hi {
				k.spans[w] = append(k.spans[w], latchSpan{bank: bi, lo: lo, hi: hi})
			}
			off += sz
		}
	}
}

// commitSpans commits one worker's share of the latches.
func (k *Kernel) commitSpans(spans []latchSpan) {
	for _, s := range spans {
		if s.bank < 0 {
			for _, l := range k.loose[s.lo:s.hi] {
				l.Commit()
			}
			continue
		}
		k.banks[s.bank].commitRange(s.lo, s.hi)
	}
}

// stepParallel executes one cycle of the compiled plan.
func (k *Kernel) stepParallel() {
	if !k.forcePool && runtime.GOMAXPROCS(0) == 1 {
		// Single CPU: no plan needed at all, the inline path ticks the
		// registration list directly.
		k.stepInline()
		return
	}
	if k.planDirty {
		k.buildPlan()
	}
	if !k.forcePool && k.singleGroup() {
		k.stepInline()
		return
	}
	if k.dirtyOn {
		// The dirty hooks are single-threaded; the pooled commit uses the
		// per-worker latch spans instead.
		k.disableDirty()
	}
	if k.pool == nil {
		k.pool = newWorkerPool(k)
	}
	p := k.pool
	p.plan, p.spans, p.now, p.epoch = k.plan, k.spans, k.now, 1
	p.enter.await()
	p.runCycle(0)
	k.now++
}

// stepEpoch executes e consecutive cycles with a single rendezvous.
// Callers guarantee e ≤ EffectiveEpoch, which implies the plan has no
// barrier segments and the kernel no latches — so the epoch needs no
// commit phases and no mid-epoch synchronization at all.
func (k *Kernel) stepEpoch(e int64) {
	if k.planDirty {
		k.buildPlan()
	}
	if !k.forcePool && (runtime.GOMAXPROCS(0) == 1 || k.singleGroup()) {
		// No parallelism to amortize for; per-cycle stepping is the same
		// work without the plan bookkeeping.
		for i := int64(0); i < e; i++ {
			k.Step()
		}
		return
	}
	if k.dirtyOn {
		k.disableDirty()
	}
	if k.pool == nil {
		k.pool = newWorkerPool(k)
	}
	p := k.pool
	p.plan, p.spans, p.now, p.epoch = k.plan, k.spans, k.now, e
	p.enter.await()
	p.runCycle(0)
	k.now += Cycle(e)
}

// singleGroup reports a plan with no parallelism to extract: no segment
// has more than one worker group.
func (k *Kernel) singleGroup() bool {
	for i := range k.plan {
		if len(k.plan[i].groups) > 1 {
			return false
		}
	}
	return true
}

// stepInline is the degenerate parallel mode for processes where
// concurrency cannot help: it ticks the registration list directly —
// the same order and cost as the sequential reference — and commits
// from the dirty list, touching only the registers that were written
// this cycle or still have to drain. That O(active wires) commit is
// where the mode's single-CPU advantage comes from.
func (k *Kernel) stepInline() {
	if !k.dirtyOn {
		k.enableDirty()
	}
	now := k.now
	for _, e := range k.entries {
		e.c.Tick(now)
	}
	// Commit and compact in place: wires that must drain next edge stay.
	dl := k.dirty
	keep := 0
	for _, r := range dl {
		if r.commitKeep() {
			dl[keep] = r
			keep++
		}
	}
	k.dirty = dl[:keep]
	for _, l := range k.loose {
		l.Commit()
	}
	k.now++
}

// enableDirty attaches every banked register to the kernel's dirty list
// and seeds the list with the registers that are already non-clean, so
// switching modes mid-run loses no pending drains.
func (k *Kernel) enableDirty() {
	list := k.dirty[:0]
	for _, b := range k.banks {
		list = b.attach(&k.dirty, list)
	}
	k.dirty = list
	k.dirtyOn = true
}

// disableDirty detaches the hooks; the sequential and pooled commits
// walk the full latch set and need no list.
func (k *Kernel) disableDirty() {
	for _, b := range k.banks {
		b.detach()
	}
	k.dirty = k.dirty[:0]
	k.dirtyOn = false
}

// cycleBarrier is a sense-reversing barrier: the last arriver of a
// generation resets the count, publishes the next generation, and wakes
// the parked. Waiters spin briefly on the generation word (cheap on
// multicore, where the other side is at most a few hundred nanoseconds
// behind) before parking on the condition variable.
type cycleBarrier struct {
	n       int32
	spin    int
	arrived atomic.Int32
	gen     atomic.Uint32
	mu      sync.Mutex
	cond    *sync.Cond
}

func newCycleBarrier(n, spin int) *cycleBarrier {
	b := &cycleBarrier{n: int32(n), spin: spin}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *cycleBarrier) await() {
	g := b.gen.Load()
	if b.arrived.Add(1) == b.n {
		b.arrived.Store(0)
		// The generation flips under the mutex so a waiter past its spin
		// phase cannot miss the broadcast between its check and its park.
		b.mu.Lock()
		b.gen.Store(g + 1)
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for i := 0; i < b.spin; i++ {
		if b.gen.Load() != g {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	b.mu.Lock()
	for b.gen.Load() == g {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// workerPool is the resident goroutine team. The job fields are written
// by the main goroutine before it enters the cycle barrier and read by
// the workers after they leave it; the barrier's atomics order the
// accesses.
type workerPool struct {
	k *Kernel
	n int

	// enter releases a cycle (workers park here between Steps), join
	// synchronizes phases within it, and leave ends it. All three have
	// every worker plus the main goroutine as participants.
	enter, join, leave *cycleBarrier

	stopping bool
	plan     []planSeg
	spans    [][]latchSpan
	now      Cycle
	epoch    int64
	wg       sync.WaitGroup
}

func newWorkerPool(k *Kernel) *workerPool {
	spin := 0
	if runtime.GOMAXPROCS(0) > 1 {
		spin = 256
	}
	p := &workerPool{
		k:     k,
		n:     k.workers,
		enter: newCycleBarrier(k.workers, spin),
		join:  newCycleBarrier(k.workers, spin),
		leave: newCycleBarrier(k.workers, spin),
	}
	p.wg.Add(p.n - 1)
	for w := 1; w < p.n; w++ {
		go p.workerLoop(w)
	}
	return p
}

func (p *workerPool) workerLoop(id int) {
	defer p.wg.Done()
	for {
		p.enter.await()
		if p.stopping {
			return
		}
		p.runCycle(id)
	}
}

// runCycle is one worker's share of one cycle. Every worker executes
// the same await sequence (the plan is shared), so the barriers stay
// balanced: around each barrier component all workers rendezvous twice,
// and the tick-phase join flows straight into each worker's own commit
// spans — the commit has no dispatch of its own.
func (p *workerPool) runCycle(id int) {
	now := p.now
	if e := p.epoch; e > 1 {
		p.runEpoch(id, now, now+Cycle(e))
		return
	}
	for i := range p.plan {
		s := &p.plan[i]
		if s.barrier != nil {
			p.join.await()
			if id == 0 {
				s.barrier.Tick(now)
			}
			p.join.await()
			continue
		}
		if id < len(s.groups) {
			for ti := range s.groups[id] {
				for _, c := range s.groups[id][ti].comps {
					c.Tick(now)
				}
			}
		}
	}
	p.join.await()
	p.k.commitSpans(p.spans[id])
	p.leave.await()
}

// runEpoch is one worker's share of one epoch: each of its tiles runs
// [now, end) to completion — or skips the whole span when quiescent —
// before the next tile starts. Tile-serial order is safe for the same
// reason the epoch is: anything a tile writes toward another lands at
// least a full epoch later, so within the epoch no tile can observe a
// sibling's progress. The epoch legality check guarantees the plan
// holds no barrier segments and the kernel no latches, so the single
// join covers the (empty) commit spans.
func (p *workerPool) runEpoch(id int, now, end Cycle) {
	for i := range p.plan {
		s := &p.plan[i]
		if id < len(s.groups) {
			for ti := range s.groups[id] {
				t := &s.groups[id][ti]
				if t.trySkip(now, end) {
					continue
				}
				for c := now; c < end; c++ {
					for _, comp := range t.comps {
						comp.Tick(c)
					}
				}
			}
		}
	}
	p.join.await()
	p.k.commitSpans(p.spans[id])
	p.leave.await()
}

func (p *workerPool) stop() {
	p.stopping = true
	p.enter.await()
	p.wg.Wait()
	p.stopping = false
}
