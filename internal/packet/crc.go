package packet

// CRC-8 with polynomial 0x07 (CRC-8/SMBUS), the checksum attached to
// time-constrained packet frames and best-effort flits when the router
// runs with integrity checking enabled. Hardware computes this with an
// 8-bit LFSR clocked once per byte; the table below is the software
// equivalent.

var crc8Table = makeCRC8Table()

func makeCRC8Table() [256]byte {
	var t [256]byte
	for i := 0; i < 256; i++ {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// CRC8 computes the checksum of data with initial value 0.
func CRC8(data []byte) byte {
	var c byte
	for _, b := range data {
		c = crc8Table[c^b]
	}
	return c
}

// CRC8Update folds one byte into a running checksum, for receivers that
// verify frames as bytes arrive.
func CRC8Update(crc, b byte) byte { return crc8Table[crc^b] }
