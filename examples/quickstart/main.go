// Quickstart: open a real-time channel across a 4×4 mesh, send periodic
// messages, and verify every one arrives inside its end-to-end bound
// while best-effort traffic shares the wires.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
)

func main() {
	// A 4×4 mesh of the paper's router chips with default parameters:
	// 256 packet buffers, 8-bit slot clock, deadline-driven scheduling.
	sys, err := core.NewMesh(4, 4, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	src := mesh.Coord{X: 0, Y: 0}
	dst := mesh.Coord{X: 3, Y: 3}

	// The traffic contract: one ≤18-byte message every 8 slots, end-to-
	// end deadline 70 slots (10 per router on the 7-router XY route).
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 70}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channel admitted: source id %d, per-router delay bound %d slots\n",
		ch.Admitted().SrcConn, ch.Admitted().LocalD)

	// Observe deliveries at the destination.
	var received []router.DeliveredTC
	sys.Sink(dst).OnTC = func(d router.DeliveredTC) { received = append(received, d) }

	// Periodic sender: one message per Imin, with best-effort chatter
	// crossing the same links.
	const messages = 12
	for i := 0; i < messages; i++ {
		if err := ch.Send([]byte(fmt.Sprintf("cmd %02d", i))); err != nil {
			log.Fatal(err)
		}
		if err := sys.SendBestEffort(mesh.Coord{X: 3, Y: 0}, mesh.Coord{X: 0, Y: 3},
			[]byte("bulk best-effort payload, any size, no reservation")); err != nil {
			log.Fatal(err)
		}
		sys.Run(spec.Imin * packet.TCBytes) // advance one period
	}
	sys.Run(spec.D * packet.TCBytes) // drain

	sum := sys.Summarize()
	fmt.Printf("delivered %d/%d time-constrained messages, %d deadline misses\n",
		len(received), messages, sum.TCMisses)
	fmt.Printf("best-effort packets delivered: %d\n", sum.BEDelivered)
	for _, d := range received[:3] {
		fmt.Printf("  conn %d at cycle %d: %q\n", d.Conn, d.Cycle, string(d.Payload[:6]))
	}
	if len(received) != messages || sum.TCMisses != 0 {
		log.Fatal("quickstart failed: losses or deadline misses")
	}
	fmt.Println("ok: every message arrived within its bound")
}
