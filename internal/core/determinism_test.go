package core

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// TestDeterministicReplay: the simulator is fully deterministic — two
// identically configured runs produce identical summaries, cycle for
// cycle. Reproducibility is what makes the EXPERIMENTS.md numbers
// checkable.
func TestDeterministicReplay(t *testing.T) {
	run := func() (int64, int64, float64, float64) {
		sys := MustNewMesh(3, 3, Options{})
		spec := rtc.Spec{Imin: 8, Smax: 18, D: 70}
		for i, rt := range [][2]mesh.Coord{
			{{X: 0, Y: 0}, {X: 2, Y: 2}},
			{{X: 2, Y: 0}, {X: 0, Y: 2}},
			{{X: 1, Y: 1}, {X: 2, Y: 1}},
		} {
			ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
			if err != nil {
				t.Fatal(err)
			}
			app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Periodic, 18)
			if err != nil {
				t.Fatal(err)
			}
			sys.Net.Kernel.Register(app)
			be, err := traffic.NewBEApp("be", sys.Net, rt[0],
				traffic.UniformDst(sys.Net, rt[0]), traffic.UniformSize(20, 200), 0.4, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			sys.Net.Kernel.Register(be)
		}
		sys.Run(25000)
		sum := sys.Summarize()
		return sum.TCDelivered, sum.BEDelivered, sum.TCLatency.Mean(), sum.BELatency.Mean()
	}
	tc1, be1, tl1, bl1 := run()
	tc2, be2, tl2, bl2 := run()
	if tc1 != tc2 || be1 != be2 || tl1 != tl2 || bl1 != bl2 {
		t.Errorf("replay diverged: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
			tc1, be1, tl1, bl1, tc2, be2, tl2, bl2)
	}
	if tc1 == 0 || be1 == 0 {
		t.Error("degenerate run")
	}
}
