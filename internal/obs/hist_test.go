package obs

import (
	"math"
	"testing"
)

// TestLogHistZero pins the zero-slack case: a delivery exactly on its
// deadline records as a non-miss in bucket 0.
func TestLogHistZero(t *testing.T) {
	h := NewLogHist()
	h.Record(0)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.MissCount(); got != 0 {
		t.Fatalf("zero slack counted as a miss: %d", got)
	}
	if got := h.BucketCount(0); got != 1 {
		t.Fatalf("bucket 0 = %d, want 1", got)
	}
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("min/max = %d/%d, want 0/0", h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("p50/p99 = %d/%d, want 0/0", s.P50, s.P99)
	}
}

// TestLogHistNegative pins the miss bucket: negative slack counts
// toward MissCount and min, never a power-of-two bucket.
func TestLogHistNegative(t *testing.T) {
	h := NewLogHist()
	h.Record(-3)
	h.Record(-17)
	h.Record(5)
	if got := h.MissCount(); got != 2 {
		t.Fatalf("miss count = %d, want 2", got)
	}
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := h.Min(); got != -17 {
		t.Fatalf("min = %d, want -17", got)
	}
	if got := h.Max(); got != 5 {
		t.Fatalf("max = %d, want 5", got)
	}
	var inBuckets int64
	for i := 0; i < histBuckets; i++ {
		inBuckets += h.BucketCount(i)
	}
	if inBuckets != 1 {
		t.Fatalf("%d values in non-negative buckets, want 1", inBuckets)
	}
	// With 2 of 3 samples negative, the median is a miss and reports the
	// worst recorded value.
	if s := h.Snapshot(); s.P50 != -17 {
		t.Fatalf("p50 = %d, want -17 (the worst miss)", s.P50)
	}
}

// TestLogHistBucketBoundaries pins the bucket map at powers of two:
// 2^k−1 is the top of bucket k and 2^k the bottom of bucket k+1.
func TestLogHistBucketBoundaries(t *testing.T) {
	for k := uint(1); k <= 10; k++ {
		h := NewLogHist()
		lo := int64(1)<<k - 1 // 2^k−1
		hi := int64(1) << k   // 2^k
		h.Record(lo)
		h.Record(hi)
		if got := h.BucketCount(int(k)); got != 1 {
			t.Fatalf("k=%d: bucket %d = %d, want 1 (value %d)", k, k, got, lo)
		}
		if got := h.BucketCount(int(k + 1)); got != 1 {
			t.Fatalf("k=%d: bucket %d = %d, want 1 (value %d)", k, k+1, got, hi)
		}
	}
	// The clamp: values past the top bucket land in it rather than
	// walking off the array.
	h := NewLogHist()
	h.Record(math.MaxInt64)
	if got := h.BucketCount(histBuckets - 1); got != 1 {
		t.Fatalf("max value missed the top bucket: %d", got)
	}
}

// TestLogHistQuantiles checks the rank arithmetic on a known
// population, including the one-value exactness clamp.
func TestLogHistQuantiles(t *testing.T) {
	h := NewLogHist()
	h.Record(100)
	s := h.Snapshot()
	if s.P50 != 100 || s.P99 != 100 {
		t.Fatalf("one-value histogram p50/p99 = %d/%d, want 100/100", s.P50, s.P99)
	}

	h = NewLogHist()
	for i := 0; i < 99; i++ {
		h.Record(4) // bucket 3
	}
	h.Record(1 << 20)
	s = h.Snapshot()
	if s.P50 < 4 || s.P50 > 7 {
		t.Fatalf("p50 = %d, want within bucket [4,7]", s.P50)
	}
	if s.P99 < 4 || s.P99 > 7 {
		t.Fatalf("p99 = %d, want within bucket [4,7] (rank 99 of 100)", s.P99)
	}
	if s.Max != 1<<20 {
		t.Fatalf("max = %d, want %d", s.Max, 1<<20)
	}
}

// TestLogHistSnapshotEmpty pins the empty-histogram snapshot: all
// zeros, no buckets, no sentinel leakage.
func TestLogHistSnapshotEmpty(t *testing.T) {
	s := NewLogHist().Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

// TestLogHistReset verifies Reset rearms the sentinels.
func TestLogHistReset(t *testing.T) {
	h := NewLogHist()
	h.Record(-5)
	h.Record(9)
	h.Reset()
	if h.Count() != 0 || h.MissCount() != 0 {
		t.Fatalf("reset left counts: %d/%d", h.Count(), h.MissCount())
	}
	h.Record(3)
	if h.Min() != 3 || h.Max() != 3 {
		t.Fatalf("post-reset min/max = %d/%d, want 3/3", h.Min(), h.Max())
	}
}
