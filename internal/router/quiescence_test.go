package router

import (
	"reflect"
	"testing"

	"repro/internal/packet"
	"repro/internal/sim"
)

// idleBuster is a same-package helper that pins routers onto the full
// tick path by clearing their idle latch every cycle, giving the
// differential tests a no-fast-path control.
type idleBuster struct{ rs []*Router }

func (b *idleBuster) Name() string { return "idle-buster" }
func (b *idleBuster) Tick(sim.Cycle) {
	for _, r := range b.rs {
		r.idle = false
	}
}

// quiescencePair builds two identical A↔B pair rigs with the same
// connection tables; the second has the idle fast path suppressed.
func quiescencePair(t *testing.T) (fast, slow *rig) {
	t.Helper()
	program := func(r *rig) {
		if err := r.a.SetConnection(1, 2, 5, maskOf(PortXPlus)); err != nil {
			t.Fatal(err)
		}
		if err := r.b.SetConnection(2, 7, 5, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
	}
	fast = newPairRig(t, DefaultConfig())
	program(fast)
	slow = newPairRig(t, DefaultConfig())
	program(slow)
	slow.k.Register(&idleBuster{rs: []*Router{slow.a, slow.b}})
	return fast, slow
}

// TestQuiescenceFastPathEquivalence runs idle stretches interleaved
// with real traffic on a fast-path rig and a suppressed-fast-path
// control, and requires every observable — delivery records, hardware
// counters — to match exactly, while proving the fast path actually
// engaged.
func TestQuiescenceFastPathEquivalence(t *testing.T) {
	fast, slow := quiescencePair(t)

	type obs struct {
		deliveries []DeliveredTC
		statsA     Stats
		statsB     Stats
	}
	run := func(r *rig) obs {
		var o obs
		inject := func() {
			r.a.InjectTC(tcPkt(1, uint8(r.k.Now()/packet.TCBytes), 0x5A))
		}
		// Long idle stretch before any traffic: the fast rig's routers go
		// quiescent after their first full tick.
		r.k.Run(700)
		inject()
		r.k.Run(900)
		o.deliveries = append(o.deliveries, r.b.DrainTC()...)
		// A second idle stretch and a second packet: idle must re-engage
		// after traffic drains, and re-arm injection must still work.
		r.k.Run(1100)
		inject()
		r.k.Run(900)
		o.deliveries = append(o.deliveries, r.b.DrainTC()...)
		o.statsA, o.statsB = r.a.Stats, r.b.Stats
		return o
	}
	fo, so := run(fast), run(slow)

	if len(fo.deliveries) != 2 {
		t.Fatalf("fast rig delivered %d packets, want 2", len(fo.deliveries))
	}
	if !reflect.DeepEqual(fo.deliveries, so.deliveries) {
		t.Errorf("deliveries diverge:\nfast: %+v\nslow: %+v", fo.deliveries, so.deliveries)
	}
	if !reflect.DeepEqual(fo.statsA, so.statsA) {
		t.Errorf("router A counters diverge:\nfast: %+v\nslow: %+v", fo.statsA, so.statsA)
	}
	if !reflect.DeepEqual(fo.statsB, so.statsB) {
		t.Errorf("router B counters diverge:\nfast: %+v\nslow: %+v", fo.statsB, so.statsB)
	}
	if fast.a.IdleTicks() == 0 || fast.b.IdleTicks() == 0 {
		t.Errorf("fast path never engaged: A=%d B=%d idle ticks", fast.a.IdleTicks(), fast.b.IdleTicks())
	}
	if slow.a.IdleTicks() != 0 || slow.b.IdleTicks() != 0 {
		t.Errorf("control rig took the fast path: A=%d B=%d idle ticks", slow.a.IdleTicks(), slow.b.IdleTicks())
	}
}

// TestQuiescenceWakesOnArrival: a router that has gone idle must drop
// out of the fast path the cycle a phit lands on an input wire, not a
// cycle late — otherwise the first byte of a packet would be lost.
func TestQuiescenceWakesOnArrival(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 2, 5, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 5, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.k.Run(500)
	if r.b.IdleTicks() == 0 {
		t.Fatal("receiver never went idle during warmup")
	}
	r.a.InjectTC(tcPkt(1, uint8(r.k.Now()/packet.TCBytes), 0xC3))
	if ok := r.k.RunUntil(func() bool { return r.b.Stats.TCDelivered > 0 }, 5000); !ok {
		t.Fatalf("packet lost across an idle receiver; A=%+v B=%+v", r.a.Stats, r.b.Stats)
	}
	d := r.b.DrainTC()
	if len(d) != 1 || d[0].Payload[0] != 0xC3 {
		t.Fatalf("bad delivery %+v", d)
	}
}
