package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
)

// AdmissionBatchRow is one AdmitBatch measurement at a fixed worker
// count: throughput plus the byte-identity verdict against the
// incremental sequential run.
type AdmissionBatchRow struct {
	Workers         int
	Secs            float64
	DecisionsPerSec float64
	Replans         int64
	Identical       bool
}

// AdmissionFamilyResult is one request family's mass-admission
// measurements: the reference (pre-incremental) sequential path, the
// incremental sequential path, AdmitBatch at each worker count, and the
// churn phase that tears down and re-admits a third of the admitted set.
type AdmissionFamilyResult struct {
	Name     string
	Requests int
	Admitted int
	Rejected int
	// RefSecs times the Reference-mode controller (every fast path
	// disabled: from-scratch EDF per link, no unicast planner, no route
	// memo) over the same request sequence — the pre-PR sequential path,
	// measured in-run so the speedup never compares across machines.
	RefSecs            float64
	RefDecisionsPerSec float64
	// SeqSecs times the incremental sequential Admit loop.
	SeqSecs            float64
	SeqDecisionsPerSec float64
	// Speedup is incremental-sequential over reference-sequential —
	// serial versus serial, so it holds on a single-CPU runner too.
	Speedup float64
	// P99AdmitMicros is the 99th-percentile single-decision latency of
	// the incremental sequential run (admissions and rejections both).
	P99AdmitMicros float64
	Batch          []AdmissionBatchRow
	// Churn phase: every third admitted channel torn down and re-admitted
	// on the live controller, then the ledger re-verified.
	ChurnOps       int
	ChurnOpsPerSec float64
}

// AdmissionResult is the outcome of RunAdmission across all families.
type AdmissionResult struct {
	W, H       int
	Requests   int
	WorkerSet  []int
	NumCPU     int
	GOMAXPROCS int
	Families   []AdmissionFamilyResult
	Checks     []CapacityCheck
}

// OK reports whether every identity and ledger check passed.
func (r *AdmissionResult) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// MinSpeedup returns the smallest per-family incremental-vs-reference
// speedup, the number the CI gate floors.
func (r *AdmissionResult) MinSpeedup() float64 {
	min := 0.0
	for i, f := range r.Families {
		if i == 0 || f.Speedup < min {
			min = f.Speedup
		}
	}
	return min
}

// BestBatchRate returns the highest AdmitBatch decisions/sec observed
// across families and worker counts.
func (r *AdmissionResult) BestBatchRate() float64 {
	best := 0.0
	for _, f := range r.Families {
		for _, b := range f.Batch {
			if b.DecisionsPerSec > best {
				best = b.DecisionsPerSec
			}
		}
	}
	return best
}

// admissionRequests expands a capacity family into its first n requests.
func admissionRequests(fam CapacityFamily, w, h, n int) []admission.Request {
	reqs := make([]admission.Request, n)
	for i := 0; i < n; i++ {
		src, dst := fam.Place(i, w, h)
		reqs[i] = admission.Request{Src: src, Dsts: []mesh.Coord{dst}, Spec: fam.Spec}
	}
	return reqs
}

// admissionRun is one controller's pass over a request sequence: the
// outcome counts, the sealed-ledger bytes, and the audit-log fingerprint
// that the identity checks compare.
type admissionRun struct {
	secs      float64
	admitted  int
	rejected  int
	seal      []byte
	auditLen  int
	auditHash uint64
	// chans[i] is the channel admitted for request i (nil if rejected);
	// only the incremental sequential run keeps it, for the churn phase.
	chans []*admission.Channel
	ctl   *admission.Controller
}

func newAdmissionController(w, h int, reference bool) (*admission.Controller, *obs.AuditLog, error) {
	net, err := mesh.New(w, h, router.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	cfg := admission.DefaultConfig()
	cfg.Reference = reference
	ctl, err := admission.New(net, cfg)
	if err != nil {
		return nil, nil, err
	}
	aud := obs.NewAuditLog()
	ctl.AttachAudit(aud)
	return ctl, aud, nil
}

// sequentialRun admits the sequence one request at a time. latencies, if
// non-nil, receives one duration per decision (for the p99 figure).
func sequentialRun(w, h int, reference bool, reqs []admission.Request, latencies *[]time.Duration) (*admissionRun, error) {
	ctl, aud, err := newAdmissionController(w, h, reference)
	if err != nil {
		return nil, err
	}
	run := &admissionRun{chans: make([]*admission.Channel, len(reqs)), ctl: ctl}
	start := time.Now()
	for i, r := range reqs {
		var t0 time.Time
		if latencies != nil {
			t0 = time.Now()
		}
		ch, err := ctl.Admit(r.Src, r.Dsts, r.Spec)
		if latencies != nil {
			*latencies = append(*latencies, time.Since(t0))
		}
		if err != nil {
			run.rejected++
			continue
		}
		run.chans[i] = ch
		run.admitted++
	}
	run.secs = time.Since(start).Seconds()
	return run, finishAdmissionRun(run, aud)
}

// batchRun admits the sequence through AdmitBatch at the given worker
// count.
func batchRun(w, h, workers int, reqs []admission.Request) (*admissionRun, int64, error) {
	ctl, aud, err := newAdmissionController(w, h, false)
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	res := ctl.AdmitBatch(reqs, workers)
	run := &admissionRun{
		secs:     time.Since(start).Seconds(),
		admitted: res.Admitted,
		rejected: res.Rejected,
		chans:    res.Channels,
		ctl:      ctl,
	}
	return run, ctl.Stats().BatchReplans, finishAdmissionRun(run, aud)
}

func finishAdmissionRun(run *admissionRun, aud *obs.AuditLog) error {
	if err := run.ctl.VerifyLedger(); err != nil {
		return fmt.Errorf("ledger after run: %w", err)
	}
	seal, err := json.Marshal(run.ctl.Seal())
	if err != nil {
		return err
	}
	run.seal = seal
	run.auditLen = aud.Len()
	run.auditHash = aud.DumpHash()
	return nil
}

// sameRun compares two runs' decisions, sealed ledgers, and audit logs.
func sameRun(a, b *admissionRun) (bool, string) {
	if a.admitted != b.admitted || a.rejected != b.rejected {
		return false, fmt.Sprintf("decisions %d/%d vs %d/%d", a.admitted, a.rejected, b.admitted, b.rejected)
	}
	if !bytes.Equal(a.seal, b.seal) {
		return false, "sealed ledger bytes differ"
	}
	if a.auditLen != b.auditLen || a.auditHash != b.auditHash {
		return false, fmt.Sprintf("audit log differs (%d records hash %x vs %d records hash %x)",
			a.auditLen, a.auditHash, b.auditLen, b.auditHash)
	}
	return true, ""
}

func p99Micros(lat []time.Duration) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := (99*len(sorted) + 99) / 100 // ceil(0.99*n)
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return float64(sorted[idx-1]) / float64(time.Microsecond)
}

// RunAdmission runs the mass-admission campaign on a w×h mesh: per
// request family it times the reference sequential path against the
// incremental sequential path over the same `requests`-long sequence
// (the in-run speedup the CI gate floors), measures AdmitBatch at each
// worker count with byte-identity checks against the sequential run,
// and finishes with a teardown/re-admit churn phase on the live
// controller. requests defaults to 100000, workers to {1, 2, 4}.
func RunAdmission(w, h, requests int, workers []int) (*AdmissionResult, error) {
	if requests <= 0 {
		requests = 100000
	}
	if len(workers) == 0 {
		workers = []int{1, 2, 4}
	}
	res := &AdmissionResult{
		W: w, H: h, Requests: requests, WorkerSet: workers,
		NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	check := func(name string, ok bool, format string, args ...any) {
		res.Checks = append(res.Checks, CapacityCheck{
			Name: name, OK: ok, Detail: fmt.Sprintf(format, args...),
		})
	}
	for _, fam := range DefaultCapacityFamilies() {
		reqs := admissionRequests(fam, w, h, requests)
		fr := AdmissionFamilyResult{Name: fam.Name, Requests: len(reqs)}

		refRun, err := sequentialRun(w, h, true, reqs, nil)
		if err != nil {
			return nil, fmt.Errorf("admission %s reference: %w", fam.Name, err)
		}
		latencies := make([]time.Duration, 0, len(reqs))
		seqRun, err := sequentialRun(w, h, false, reqs, &latencies)
		if err != nil {
			return nil, fmt.Errorf("admission %s sequential: %w", fam.Name, err)
		}
		fr.Admitted, fr.Rejected = seqRun.admitted, seqRun.rejected
		fr.RefSecs, fr.SeqSecs = refRun.secs, seqRun.secs
		if refRun.secs > 0 {
			fr.RefDecisionsPerSec = float64(len(reqs)) / refRun.secs
		}
		if seqRun.secs > 0 {
			fr.SeqDecisionsPerSec = float64(len(reqs)) / seqRun.secs
			fr.Speedup = refRun.secs / seqRun.secs
		}
		fr.P99AdmitMicros = p99Micros(latencies)
		check(fam.Name+"_saturates", fr.Admitted > 0 && fr.Rejected > 0,
			"admitted %d rejected %d of %d (identity checks need both outcomes)",
			fr.Admitted, fr.Rejected, len(reqs))
		// The reference controller is the oracle: the incremental path
		// must reproduce its decisions, ledger, and audit log exactly.
		if ok, why := sameRun(refRun, seqRun); ok {
			check(fam.Name+"_ref_identity", true, "incremental path matches the reference oracle")
		} else {
			check(fam.Name+"_ref_identity", false, "%s", why)
		}

		for _, wk := range workers {
			bRun, replans, err := batchRun(w, h, wk, reqs)
			if err != nil {
				return nil, fmt.Errorf("admission %s batch x%d: %w", fam.Name, wk, err)
			}
			row := AdmissionBatchRow{Workers: wk, Secs: bRun.secs, Replans: replans}
			if bRun.secs > 0 {
				row.DecisionsPerSec = float64(len(reqs)) / bRun.secs
			}
			ok, why := sameRun(seqRun, bRun)
			row.Identical = ok
			if ok {
				check(fmt.Sprintf("%s_batch_identity_x%d", fam.Name, wk), true,
					"%d replans", replans)
			} else {
				check(fmt.Sprintf("%s_batch_identity_x%d", fam.Name, wk), false, "%s", why)
			}
			fr.Batch = append(fr.Batch, row)
		}

		// Churn: tear down every third admitted channel on the live
		// sequential controller, re-admit the same requests, and verify
		// the ledger survives. Re-admission must succeed — the final set
		// is a subset of what the controller already proved feasible.
		var victims []int
		for i, ch := range seqRun.chans {
			if ch != nil && len(victims)*3 <= i {
				victims = append(victims, i)
			}
		}
		churnErr := error(nil)
		start := time.Now()
		for _, i := range victims {
			if err := seqRun.ctl.Teardown(seqRun.chans[i]); err != nil {
				churnErr = fmt.Errorf("teardown request %d: %w", i, err)
				break
			}
		}
		if churnErr == nil {
			for _, i := range victims {
				r := reqs[i]
				ch, err := seqRun.ctl.Admit(r.Src, r.Dsts, r.Spec)
				if err != nil {
					churnErr = fmt.Errorf("re-admit request %d: %w", i, err)
					break
				}
				seqRun.chans[i] = ch
			}
		}
		churnSecs := time.Since(start).Seconds()
		if churnErr == nil {
			churnErr = seqRun.ctl.VerifyLedger()
		}
		fr.ChurnOps = 2 * len(victims)
		if churnSecs > 0 {
			fr.ChurnOpsPerSec = float64(fr.ChurnOps) / churnSecs
		}
		check(fam.Name+"_churn_ledger", churnErr == nil,
			"%d teardown/re-admit ops: %v", fr.ChurnOps, churnErr)

		res.Families = append(res.Families, fr)
	}
	return res, nil
}

// Table renders the per-family throughput summary.
func (r *AdmissionResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Admission campaign: %dx%d mesh, %d requests (GOMAXPROCS=%d, NumCPU=%d)",
			r.W, r.H, r.Requests, r.GOMAXPROCS, r.NumCPU),
		Header: []string{"family", "admitted", "ref_dec/s", "inc_dec/s", "speedup",
			"p99_us"},
	}
	for _, wk := range r.WorkerSet {
		t.Header = append(t.Header, fmt.Sprintf("batch_x%d/s", wk))
	}
	t.Header = append(t.Header, "replans", "identical", "churn_ops/s")
	for _, f := range r.Families {
		row := []string{
			f.Name, di(f.Admitted),
			fmt.Sprintf("%.0f", f.RefDecisionsPerSec),
			fmt.Sprintf("%.0f", f.SeqDecisionsPerSec),
			fmt.Sprintf("%.1fx", f.Speedup),
			f2(f.P99AdmitMicros),
		}
		var replans int64
		identical := true
		for _, b := range f.Batch {
			row = append(row, fmt.Sprintf("%.0f", b.DecisionsPerSec))
			replans += b.Replans
			identical = identical && b.Identical
		}
		row = append(row, d(replans), fmt.Sprintf("%v", identical),
			fmt.Sprintf("%.0f", f.ChurnOpsPerSec))
		t.AddRow(row...)
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.AddNote("FAILED %s: %s", c.Name, c.Detail)
		}
	}
	return t
}

// AdmissionBaselineRow mirrors one archived campaign row (the shape
// rtbench writes to BENCH_admission.json).
type AdmissionBaselineRow struct {
	Family          string  `json:"family"`
	Requests        int     `json:"requests"`
	Admitted        int     `json:"admitted"`
	RefDecPerSec    float64 `json:"ref_decisions_per_sec"`
	SeqDecPerSec    float64 `json:"seq_decisions_per_sec"`
	Speedup         float64 `json:"speedup_vs_reference"`
	P99AdmitMicros  float64 `json:"p99_admit_micros"`
	BestBatchPerSec float64 `json:"best_batch_decisions_per_sec"`
}

// AdmissionBaseline is an archived admission campaign result.
type AdmissionBaseline struct {
	Mesh       string                 `json:"mesh"`
	Requests   int                    `json:"requests"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	Rows       []AdmissionBaselineRow `json:"rows"`
}

// BaselineRows converts a fresh result into the archived row shape.
func (r *AdmissionResult) BaselineRows() []AdmissionBaselineRow {
	rows := make([]AdmissionBaselineRow, 0, len(r.Families))
	for _, f := range r.Families {
		row := AdmissionBaselineRow{
			Family: f.Name, Requests: f.Requests, Admitted: f.Admitted,
			RefDecPerSec: f.RefDecisionsPerSec, SeqDecPerSec: f.SeqDecisionsPerSec,
			Speedup: f.Speedup, P99AdmitMicros: f.P99AdmitMicros,
		}
		for _, b := range f.Batch {
			if b.DecisionsPerSec > row.BestBatchPerSec {
				row.BestBatchPerSec = b.DecisionsPerSec
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// LoadAdmissionBaseline reads an archived BENCH_admission.json.
func LoadAdmissionBaseline(path string) (*AdmissionBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("admission baseline: %w", err)
	}
	var b AdmissionBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("admission baseline %s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("admission baseline %s: no rows", path)
	}
	return &b, nil
}

// AdmissionDelta compares one family against its baseline counterpart.
// SpeedupRatio is cur/base (machine-rate independent: both runs measure
// reference and incremental on their own hardware); AdmittedDrift is
// cur−base, which must be zero when mesh and request count match.
type AdmissionDelta struct {
	Family        string
	SameShape     bool // mesh and request count match the baseline
	BaseSpeedup   float64
	CurSpeedup    float64
	SpeedupRatio  float64
	BaseAdmitted  int
	CurAdmitted   int
	AdmittedDrift int
	BaseP99Micros float64
	CurP99Micros  float64
}

// Diff matches the campaign's families against the baseline by name.
func (r *AdmissionResult) Diff(base *AdmissionBaseline) []AdmissionDelta {
	idx := make(map[string]AdmissionBaselineRow, len(base.Rows))
	for _, row := range base.Rows {
		idx[row.Family] = row
	}
	sameShape := base.Mesh == fmt.Sprintf("%dx%d", r.W, r.H) && base.Requests == r.Requests
	var out []AdmissionDelta
	for _, f := range r.Families {
		b, ok := idx[f.Name]
		if !ok {
			continue
		}
		d := AdmissionDelta{
			Family: f.Name, SameShape: sameShape && b.Requests == f.Requests,
			BaseSpeedup: b.Speedup, CurSpeedup: f.Speedup,
			BaseAdmitted: b.Admitted, CurAdmitted: f.Admitted,
			AdmittedDrift: f.Admitted - b.Admitted,
			BaseP99Micros: b.P99AdmitMicros, CurP99Micros: f.P99AdmitMicros,
		}
		if b.Speedup > 0 {
			d.SpeedupRatio = f.Speedup / b.Speedup
		}
		out = append(out, d)
	}
	return out
}

// AdmissionDeltaTable renders the baseline comparison.
func AdmissionDeltaTable(deltas []AdmissionDelta, baselinePath string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Admission campaign vs baseline %s", baselinePath),
		Header: []string{"family", "speedup", "base", "ratio", "admitted", "base", "p99_us", "base"},
	}
	for _, d := range deltas {
		t.AddRow(
			d.Family,
			fmt.Sprintf("%.1fx", d.CurSpeedup),
			fmt.Sprintf("%.1fx", d.BaseSpeedup),
			f2(d.SpeedupRatio),
			di(d.CurAdmitted), di(d.BaseAdmitted),
			f2(d.CurP99Micros), f2(d.BaseP99Micros),
		)
	}
	return t
}

// CheckAdmissionRegression fails on the first family whose speedup fell
// more than maxRegress below the baseline, or — when the mesh and
// request count match the archive — whose admitted count drifted at all
// (the decision sequence is deterministic, so any drift is a behavior
// change, not noise).
func CheckAdmissionRegression(deltas []AdmissionDelta, maxRegress float64) error {
	for _, d := range deltas {
		if d.SameShape && d.AdmittedDrift != 0 {
			return fmt.Errorf("%s: admitted %d, baseline %d — deterministic decision sequence drifted",
				d.Family, d.CurAdmitted, d.BaseAdmitted)
		}
		if maxRegress > 0 && d.BaseSpeedup > 0 && d.SpeedupRatio < 1-maxRegress {
			return fmt.Errorf("%s: speedup %.1fx is %.0f%% below baseline %.1fx",
				d.Family, d.CurSpeedup, (1-d.SpeedupRatio)*100, d.BaseSpeedup)
		}
	}
	return nil
}
