package sim

import (
	"sync/atomic"
	"testing"
)

// TestForcePoolMatchesSequential forces the rendezvous worker pool on
// (bypassing the single-CPU inline path) and requires the Reg-coupled
// ring to reproduce the sequential history bit for bit.
func TestForcePoolMatchesSequential(t *testing.T) {
	const n, cycles = 13, 200
	seq := NewKernel()
	seqStages := buildRing(seq, n)
	seq.Run(cycles)

	par := NewKernel()
	parStages := buildRing(par, n)
	par.SetWorkers(4)
	par.ForcePool(true)
	defer par.Close()
	par.Run(cycles)

	for i := range seqStages {
		s, p := seqStages[i].seen, parStages[i].seen
		if len(s) != len(p) {
			t.Fatalf("stage %d: %d vs %d observations", i, len(s), len(p))
		}
		for c := range s {
			if s[c] != p[c] {
				t.Fatalf("stage %d cycle %d: sequential saw %d, pooled saw %d", i, c, s[c], p[c])
			}
		}
	}
}

// TestForcePoolBarrier is TestParallelBarrier on the real pooled path:
// a cross-shard barrier component still sees every earlier shard done
// and no later shard started.
func TestForcePoolBarrier(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	k.ForcePool(true)
	defer k.Close()
	var before, after atomic.Int64
	for s := 0; s < 8; s++ {
		k.RegisterShard(s, &funcComp{"pre", func(Cycle) { before.Add(1) }})
	}
	var seenBefore, seenAfter []int64
	k.Register(&funcComp{"barrier", func(Cycle) {
		seenBefore = append(seenBefore, before.Load())
		seenAfter = append(seenAfter, after.Load())
	}})
	for s := 0; s < 8; s++ {
		k.RegisterShard(s, &funcComp{"post", func(Cycle) { after.Add(1) }})
	}
	const cycles = 20
	k.Run(cycles)
	for c := 0; c < cycles; c++ {
		if seenBefore[c] != int64(8*(c+1)) {
			t.Errorf("cycle %d: barrier saw %d pre-ticks, want %d", c, seenBefore[c], 8*(c+1))
		}
		if seenAfter[c] != int64(8*c) {
			t.Errorf("cycle %d: barrier saw %d post-ticks, want %d", c, seenAfter[c], 8*c)
		}
	}
}

// TestForcePoolCommit checks the partitioned commit spans latch every
// Reg exactly once per cycle when the pooled path runs for real.
func TestForcePoolCommit(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	k.ForcePool(true)
	defer k.Close()
	regs := make([]*Reg[int], 37) // not a multiple of the worker count
	for i := range regs {
		regs[i] = NewSticky[int]()
		k.AddLatch(regs[i])
	}
	k.RegisterShard(0, &funcComp{"w", func(now Cycle) {
		for _, r := range regs {
			r.Write(int(now) + 1)
		}
	}})
	k.Run(3)
	for i, r := range regs {
		if got := r.Read(); got != 3 {
			t.Fatalf("reg %d = %d after 3 cycles, want 3", i, got)
		}
	}
}

// TestTiledPlanGroups checks the tiled sharding directly: shards map
// through the tiling into spatial tiles, tiles are walked in id order,
// and each worker group holds whole tiles with in-shard registration
// order preserved.
func TestTiledPlanGroups(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(2)
	defer k.Close()
	comps := make([]*counter, 8)
	for i := range comps {
		comps[i] = &counter{name: "c"}
		k.RegisterShard(i, comps[i])
	}
	// Reverse the spatial order: shards 4..7 are tile 0, shards 0..3 are
	// tile 1, so grouping must follow tile ids rather than shard ids.
	k.SetTiling(func(shard int) int { return (7 - shard) / 4 })
	k.buildPlan()
	if len(k.plan) != 1 {
		t.Fatalf("plan has %d segments, want 1", len(k.plan))
	}
	groups := k.plan[0].groups
	if len(groups) != 2 {
		t.Fatalf("plan has %d groups, want 2", len(groups))
	}
	wantGroups := [][]int{{4, 5, 6, 7}, {0, 1, 2, 3}}
	for g, want := range wantGroups {
		var flat []Component
		for _, tl := range groups[g] {
			flat = append(flat, tl.comps...)
		}
		if len(flat) != len(want) {
			t.Fatalf("group %d has %d components, want %d", g, len(flat), len(want))
		}
		for i, shard := range want {
			if flat[i] != comps[shard] {
				t.Errorf("group %d slot %d is not shard %d's component", g, i, shard)
			}
		}
	}
}

// TestTilingEquivalence: the tiling only regroups work — the ring's
// observed history is bit-identical for every tile choice, inline and
// pooled.
func TestTilingEquivalence(t *testing.T) {
	const n, cycles = 13, 150
	ref := NewKernel()
	refStages := buildRing(ref, n)
	ref.Run(cycles)

	for _, tile := range []int{1, 2, 4} {
		for _, pool := range []bool{false, true} {
			k := NewKernel()
			stages := buildRing(k, n)
			k.SetTiling(func(shard int) int { return shard / tile })
			k.SetWorkers(3)
			k.ForcePool(pool)
			k.Run(cycles)
			k.Close()
			for i := range refStages {
				s, p := refStages[i].seen, stages[i].seen
				if len(s) != len(p) {
					t.Fatalf("tile %d pool=%v stage %d: %d vs %d observations", tile, pool, i, len(s), len(p))
				}
				for c := range s {
					if s[c] != p[c] {
						t.Fatalf("tile %d pool=%v stage %d cycle %d: want %d, got %d", tile, pool, i, c, s[c], p[c])
					}
				}
			}
		}
	}
}

// TestDirtyLatchCommit drives a wire and a sticky Reg through
// write/no-write cycles at every execution mode and checks the dirty
// tracking preserves the documented semantics: wires drain to zero one
// cycle after their last write, stickies hold, and untouched latches
// stay untouched.
func TestDirtyLatchCommit(t *testing.T) {
	type mode struct {
		name    string
		workers int
		pool    bool
	}
	for _, m := range []mode{{"seq", 1, false}, {"inline", 2, false}, {"pooled", 2, true}} {
		t.Run(m.name, func(t *testing.T) {
			k := NewKernel()
			wire := NewReg[int]()
			sticky := NewSticky[int]()
			k.AddLatch(wire)
			k.AddLatch(sticky)
			k.RegisterShard(0, &funcComp{"w", func(now Cycle) {
				if now%2 == 0 { // write on even cycles only
					wire.Write(int(now) + 10)
					sticky.Write(int(now) + 10)
				}
			}})
			k.SetWorkers(m.workers)
			k.ForcePool(m.pool)
			defer k.Close()
			for c := 0; c < 8; c++ {
				k.Step()
				wantWire := 0
				if c%2 == 0 {
					wantWire = c + 10 // written this cycle, visible now
				}
				wantSticky := c + 10
				if c%2 == 1 {
					wantSticky = c - 1 + 10 // holds the last even-cycle write
				}
				if got := wire.Read(); got != wantWire {
					t.Fatalf("cycle %d: wire = %d, want %d", c, got, wantWire)
				}
				if got := sticky.Read(); got != wantSticky {
					t.Fatalf("cycle %d: sticky = %d, want %d", c, got, wantSticky)
				}
			}
		})
	}
}

// TestRegCommitIdempotentWhenClean: once a Reg has drained, further
// commits are no-ops — the invariant the dirty-scan commit relies on to
// skip clean latches.
func TestRegCommitIdempotentWhenClean(t *testing.T) {
	wire := NewReg[int]()
	wire.Write(5)
	wire.Commit()
	if got := wire.Read(); got != 5 {
		t.Fatalf("after write+commit: %d, want 5", got)
	}
	wire.Commit() // drain edge
	if got := wire.Read(); got != 0 {
		t.Fatalf("after drain: %d, want 0", got)
	}
	for i := 0; i < 3; i++ {
		wire.Commit() // clean: must stay zero
	}
	if got := wire.Read(); got != 0 {
		t.Fatalf("clean wire moved to %d", got)
	}

	sticky := NewSticky[int]()
	sticky.Write(7)
	sticky.Commit()
	for i := 0; i < 3; i++ {
		sticky.Commit()
	}
	if got := sticky.Read(); got != 7 {
		t.Fatalf("clean sticky = %d, want 7", got)
	}
	sticky.Write(0) // an explicit zero write is a real write
	sticky.Commit()
	if got := sticky.Read(); got != 0 {
		t.Fatalf("sticky after zero write = %d, want 0", got)
	}
}
