package router

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// Channel is one unidirectional physical link: a phit wire forward and an
// acknowledgement wire back, each with one cycle of latency. A mesh wires
// two Channels (one per direction) between each pair of neighbours.
type Channel struct {
	data *sim.Reg[packet.Phit]
	ack  *sim.Reg[packet.Ack]
}

// NewChannel creates a channel and registers its wires with the kernel.
func NewChannel(k *sim.Kernel) *Channel {
	c := &Channel{data: sim.NewReg[packet.Phit](), ack: sim.NewReg[packet.Ack]()}
	k.AddLatch(c.data)
	k.AddLatch(c.ack)
	return c
}

// Out returns the sending end of the channel.
func (c *Channel) Out() *OutLink { return &OutLink{c} }

// In returns the receiving end of the channel.
func (c *Channel) In() *InLink { return &InLink{c} }

// OutLink is the transmit side of a channel: drive phits, read acks.
type OutLink struct{ ch *Channel }

// Drive places a phit on the wire for the next cycle.
func (o *OutLink) Drive(p packet.Phit) { o.ch.data.Write(p) }

// Ack returns the acknowledgement latched from the receiver.
func (o *OutLink) Ack() packet.Ack { return o.ch.ack.Read() }

// InLink is the receive side of a channel: read phits, drive acks.
type InLink struct{ ch *Channel }

// Phit returns the phit latched on the wire this cycle.
func (i *InLink) Phit() packet.Phit { return i.ch.data.Read() }

// DriveAck returns a flit credit to the sender for the next cycle.
func (i *InLink) DriveAck(a packet.Ack) { i.ch.ack.Write(a) }

// Loopback wires an output port of a router directly to one of its own
// input ports through a normal one-cycle channel, reproducing the
// single-chip multi-hop configuration of the paper's first experiment.
func Loopback(k *sim.Kernel, r *Router, outPort, inPort int) {
	ch := NewChannel(k)
	r.ConnectOut(outPort, ch.Out())
	r.ConnectIn(inPort, ch.In())
}
