GO ?= go

.PHONY: check build vet test fmt capacity admission layout bench benchall trace

# check is the tier-1 gate: vet, build, race tests, formatting, the
# capacity gate, and the layout-synthesis gate.
check: vet build test fmt capacity layout

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test -race ./...

# fmt fails (rather than rewrites) so CI catches unformatted files.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# capacity runs the capacity-probe campaign on a small mesh plus the
# admission audit byte-identity gate; it exits nonzero on a ledger
# conservation violation, an unexplained rejection, or an audit log
# that differs across worker counts.
capacity:
	$(GO) run ./cmd/rtbench -exp capacity -mesh 6 -scenario scenarios/faulty.json -cycles 35000

# admission runs the mass-admission throughput campaign: 100k-request
# uniform/hotspot/transpose batches on a 16×16 mesh, timing the
# pre-cache reference path against the incremental-EDF path in the
# same run (serial vs serial, so the speedup floor is enforceable on
# any hardware), checking batch byte-identity at workers 1/2/4, and
# churning teardown/re-admit against the ledger verifier. Results land
# in $(ADMIT_JSON).
ADMIT_JSON ?= BENCH_admission.json
admission:
	$(GO) run ./cmd/rtbench -exp admission -requests 100000 -min-admit-speedup 5 -benchjson $(ADMIT_JSON)

# layout runs the channel-layout synthesis campaign on an 8×8 mesh:
# per family, the greedy planner versus the route-and-split search over
# identical request sequences. It exits nonzero if the synthesizer ever
# admits fewer channels than greedy, if it fails to strictly beat
# greedy on the hotspot family (transpose fully admits at this size, so
# strictness there is enforced by CI's 16×16 run), if either ledger
# breaks conservation, or if the Reference-mode shadow controller
# refuses — or re-seals differently — any synthesized layout. Results
# land in $(LAYOUT_JSON).
LAYOUT_JSON ?= BENCH_layout.json
layout:
	$(GO) run ./cmd/rtbench -exp layout -mesh 8 -strict-layout hotspot -benchjson $(LAYOUT_JSON)

# bench runs the simulator-speed micro-benchmarks (router tick hot
# paths, cycle rate sequential vs parallel, scheduler selection, sort
# keys) with allocation reporting, the admission-path benchmarks with
# their allocs-per-admit ceiling (TestAdmitAllocs fails the run if the
# steady-state admit path starts allocating), then runs the full
# scaling sweep — mesh size × worker count, printing the speedup table
# — and records machine-readable numbers (including allocs/cycle,
# GOMAXPROCS and NumCPU) in $(BENCH_JSON).
BENCH_JSON ?= BENCH_router.json
bench:
	$(GO) test -run '^$$' -bench BenchmarkRouterTick -benchmem ./internal/router
	$(GO) test -run '^$$' -bench 'BenchmarkRouterCycleRate|BenchmarkT4SchedulerThroughput|BenchmarkFig6SortKeys' -benchmem .
	$(GO) test -run '^$$' -bench 'BenchmarkAdmit$$|BenchmarkAdmitBatch$$|BenchmarkLinkCheckCached$$' -benchmem ./internal/admission
	$(GO) test -run TestAdmitAllocs -count=1 ./internal/admission
	$(GO) run ./cmd/rtbench -exp sweep -benchjson $(BENCH_JSON)

# benchall runs every benchmark, including the full experiment replays.
benchall:
	$(GO) test -bench=. -benchmem ./...

# trace produces a sample Perfetto trace from the Figure 6 scenario
# (open $(TRACE_JSON) at https://ui.perfetto.dev, or chrome://tracing).
TRACE_JSON ?= trace.json
trace:
	$(GO) run ./cmd/rtsim -scenario scenarios/fig6.json -trace-out $(TRACE_JSON)
