package admission

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
)

// TestRejectionMessageFormats pins the hand-rolled strconv rendering in
// errors.go to the fmt formats it replaced: the audit log's byte
// identity across reference and incremental runs rides on these strings
// never drifting.
func TestRejectionMessageFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	coords := []mesh.Coord{{X: 0, Y: 0}, {X: 3, Y: 11}, {X: 15, Y: 7}}
	for i := 0; i < 500; i++ {
		node := coords[rng.Intn(len(coords))]
		port := rng.Intn(router.NumPorts+1) - 1
		k := linkKey{node, port}
		util := rng.Float64() * 2
		margin := 1 - util
		at := rng.Int63n(1 << 16)
		demand := at + rng.Int63n(64) + 1

		var wantPrefix string
		inject := rng.Intn(2) == 0
		if inject {
			wantPrefix = fmt.Sprintf("admission: injection port at %s fails the schedulability test", k.node)
		} else {
			wantPrefix = fmt.Sprintf("admission: link %s fails the schedulability test", k)
		}

		cases := []struct {
			err  *ErrLinkOverload
			want string
		}{
			{
				&ErrLinkOverload{link: k.String(), node: k.node.String(), inject: inject, Test: "utilization", Util: util, Margin: margin},
				fmt.Sprintf("%s (utilization %.4g > 1, margin %+.4g)", wantPrefix, util, margin),
			},
			{
				&ErrLinkOverload{link: k.String(), node: k.node.String(), inject: inject, Test: "busy_period", At: at, Demand: demand, Margin: float64(at - demand)},
				fmt.Sprintf("%s (busy_period at t=%d: demand %d > %d, margin %+g)", wantPrefix, at, demand, at, float64(at-demand)),
			},
			{
				&ErrLinkOverload{link: k.String(), node: k.node.String(), inject: inject, Test: "link_failed", Margin: -1},
				fmt.Sprintf("%s (link_failed)", wantPrefix),
			},
		}
		for _, tc := range cases {
			if got := tc.err.Error(); got != tc.want {
				t.Fatalf("ErrLinkOverload rendering drifted:\n got %q\nwant %q", got, tc.want)
			}
		}

		used, need, limit := rng.Intn(1000), rng.Intn(100)+1, rng.Intn(1000)
		shared := &ErrBufferExhausted{node: node.String(), port: -1, Used: used, Need: need, Limit: limit}
		if want := fmt.Sprintf("admission: %s out of packet buffers (%d used + %d needed > %d)",
			node, used, need, limit); shared.Error() != want {
			t.Fatalf("shared-pool rendering drifted:\n got %q\nwant %q", shared.Error(), want)
		}
		p := rng.Intn(router.NumPorts)
		part := &ErrBufferExhausted{node: node.String(), port: p, Used: used, Need: need, Limit: limit}
		if want := fmt.Sprintf("admission: %s port %s partition full (%d used + %d needed > %d)",
			node, router.PortName(p), used, need, limit); part.Error() != want {
			t.Fatalf("partition rendering drifted:\n got %q\nwant %q", part.Error(), want)
		}
	}
}

// TestForwardLinkRejectionNamesRouter drives a rejection that binds on
// a forward link at an intermediate router — not the injection port —
// and checks the typed explanation names that router, the audit record
// carries it, and the legacy message prefix is byte-identical to what
// the format pin above expects. Forward-link overloads used to leave
// the router name empty, so Explain and the audit refusal trail could
// not say WHERE a multi-hop request died.
func TestForwardLinkRejectionNamesRouter(t *testing.T) {
	c, err := New(newNet(t, 3, 1), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	log := obs.NewAuditLog()
	c.AttachAudit(log)

	// Alternate sources (0,0) and (1,0), both to (2,0): the shared
	// forward link (1,0)→+x carries every channel while each injection
	// port carries only half, so the first refusal binds mid-route.
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 24}
	srcs := []mesh.Coord{{X: 0, Y: 0}, {X: 1, Y: 0}}
	dst := mesh.Coord{X: 2, Y: 0}
	var rejErr error
	for i := 0; i < 300; i++ {
		if _, aerr := c.Admit(srcs[i%2], []mesh.Coord{dst}, spec); aerr != nil {
			rejErr = aerr
			break
		}
	}
	if rejErr == nil {
		t.Fatal("forward link never saturated")
	}
	rej, ok := Explain(rejErr)
	if !ok {
		t.Fatalf("rejection %v carries no typed explanation", rejErr)
	}
	if got := rej.BindingResource(); got != "(1,0)→+x" {
		t.Fatalf("BindingResource = %q, want the shared forward link (1,0)→+x", got)
	}
	if got := rej.Router(); got != "(1,0)" {
		t.Errorf("Router = %q, want (1,0) — forward-link rejections must name the refusing router", got)
	}
	wantPrefix := "admission: link (1,0)→+x fails the schedulability test"
	if !strings.HasPrefix(rejErr.Error(), wantPrefix) {
		t.Errorf("legacy message prefix drifted:\n got %q\nwant prefix %q", rejErr.Error(), wantPrefix)
	}

	recs := log.Merged()
	last := recs[len(recs)-1]
	if last.Outcome != "rejected" {
		t.Fatalf("last audit record outcome = %q, want rejected", last.Outcome)
	}
	if last.Router != "(1,0)" {
		t.Errorf("audit record Router = %q, want (1,0)", last.Router)
	}
	if line := last.String(); !strings.Contains(line, " router=(1,0)") {
		t.Errorf("audit line %q missing router=(1,0)", line)
	}
}

// TestLinkKeyString pins the strconv link rendering to the fmt format.
func TestLinkKeyString(t *testing.T) {
	for _, k := range []linkKey{
		{mesh.Coord{X: 0, Y: 0}, portInject},
		{mesh.Coord{X: 12, Y: 3}, 0},
		{mesh.Coord{X: 7, Y: 15}, router.NumPorts - 1},
	} {
		var want string
		if k.port == portInject {
			want = fmt.Sprintf("%s→inject", k.node)
		} else {
			want = fmt.Sprintf("%s→%s", k.node, router.PortName(k.port))
		}
		if got := k.String(); got != want {
			t.Fatalf("linkKey rendering drifted: got %q want %q", got, want)
		}
	}
}
