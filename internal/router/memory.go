package router

import (
	"fmt"

	"repro/internal/packet"
)

// packetMemory models the shared single-ported SRAM that stores
// time-constrained packets awaiting the output links (Section 3.4). The
// memory is chunked — the paper's part is 10 bytes wide with a 20 ns
// access time, one chunk per cycle — and allocation uses an idle-address
// FIFO, as in the shared-memory switches the paper cites.
type packetMemory struct {
	data [][packet.TCBytes]byte
	idle []int // FIFO of free slot addresses
}

func newPacketMemory(slots int) *packetMemory {
	m := &packetMemory{data: make([][packet.TCBytes]byte, slots)}
	m.idle = make([]int, slots)
	for i := range m.idle {
		m.idle[i] = i
	}
	return m
}

// alloc pops a free slot from the idle-address FIFO.
func (m *packetMemory) alloc() (int, bool) {
	if len(m.idle) == 0 {
		return -1, false
	}
	s := m.idle[0]
	m.idle = m.idle[1:]
	return s, true
}

// free returns a slot to the idle-address pool.
func (m *packetMemory) free(slot int) {
	if slot < 0 || slot >= len(m.data) {
		panic(fmt.Sprintf("router: freeing invalid memory slot %d", slot))
	}
	m.idle = append(m.idle, slot)
}

func (m *packetMemory) freeSlots() int { return len(m.idle) }

// writeChunk stores chunk i (chunkBytes wide) of a packet into slot.
func (m *packetMemory) writeChunk(slot, chunk, chunkBytes int, src []byte) {
	off := chunk * chunkBytes
	copy(m.data[slot][off:off+chunkBytes], src)
}

// readChunk loads chunk i of slot into dst.
func (m *packetMemory) readChunk(slot, chunk, chunkBytes int, dst []byte) {
	off := chunk * chunkBytes
	copy(dst, m.data[slot][off:off+chunkBytes])
}

// busClient is a port engine that may need a memory access this cycle.
// The bus polls clients in round-robin order and grants one chunk
// transfer per cycle (demand-driven arbitration, Section 3.4).
type busClient interface {
	wantsBus() bool
	busGrant()
}

// memBus is the internal bus to the shared packet memory: exactly one
// chunk transfer per cycle among all requesting engines.
type memBus struct {
	clients []busClient
	rr      int
	// grants counts chunk transfers, a utilization statistic.
	grants int64
}

func (b *memBus) attach(c busClient) { b.clients = append(b.clients, c) }

// tick grants at most one client, starting the scan after last grantee.
func (b *memBus) tick() {
	n := len(b.clients)
	for i := 0; i < n; i++ {
		idx := (b.rr + i) % n
		if b.clients[idx].wantsBus() {
			b.clients[idx].busGrant()
			b.rr = idx + 1
			b.grants++
			return
		}
	}
}
