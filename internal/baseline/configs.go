package baseline

import "repro/internal/router"

// FIFOConfig returns the real-time router reconfigured as a plain
// output-queued packet switch: no deadline hardware, arrival-order
// service. This is the "drop the comparator tree" ablation.
func FIFOConfig() router.Config {
	cfg := router.DefaultConfig()
	cfg.Scheduler = router.SchedFIFO
	return cfg
}

// StaticPriorityConfig returns the real-time router reconfigured to
// serve time-constrained packets by fixed per-connection priority with
// no logical-arrival gating — the behavioural analog of designs that
// resolve priority through dedicated virtual channels (Related Work
// [3,4,17]): priorities are static, granularity is per connection, and
// nothing holds early traffic back.
func StaticPriorityConfig() router.Config {
	cfg := router.DefaultConfig()
	cfg.Scheduler = router.SchedStaticPriority
	return cfg
}
