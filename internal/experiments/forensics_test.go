package experiments

import (
	"os"
	"strings"
	"testing"
)

// gateCycles picks the capped run length for the forensics gate tests:
// short enough for -short, long enough otherwise to reach the faulty
// scenario's first fault episode.
func gateCycles(short, full int64) int64 {
	if testing.Short() {
		return short
	}
	return full
}

func runGate(t *testing.T, path string, cycles int64) *ForensicsResult {
	t.Helper()
	return runGateEpoch(t, path, cycles, 1)
}

func runGateEpoch(t *testing.T, path string, cycles int64, epoch int) *ForensicsResult {
	t.Helper()
	res, err := RunForensics(path, cycles, nil, epoch)
	if err != nil {
		t.Fatalf("RunForensics(%s): %v", path, err)
	}
	if !res.Identical {
		t.Errorf("forensics report not byte-identical across workers %v", res.Workers)
	}
	for _, c := range res.Checks {
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	return res
}

// TestForensicsGateFig6 runs the full gate — byte-identical reports at
// workers {1,2,4}, zero unattributed stall cycles, conservation, and
// counter reconciliation — on the clean paper scenario.
func TestForensicsGateFig6(t *testing.T) {
	res := runGate(t, "../../scenarios/fig6.json", gateCycles(4000, 10000))
	if res.Stats.TCStallCycles == 0 {
		t.Error("fig6 produced no attributed TC stall cycles; the engine saw nothing")
	}
	for _, section := range []string{
		"=== stall attribution: cause totals ===",
		"=== blame matrix (victim x blamed) ===",
		"=== slack waterfalls (retained episodes) ===",
		"=== longest stall episodes ===",
	} {
		if !strings.Contains(res.Report, section) {
			t.Errorf("report missing section %q", section)
		}
	}
}

// TestForensicsGateFaulty runs the gate on the fault scenario; past the
// first corruption episode the run must still attribute every stall and
// reconcile with the hardware counters.
func TestForensicsGateFaulty(t *testing.T) {
	res := runGate(t, "../../scenarios/faulty.json", gateCycles(6000, 14000))
	if res.Stats.Unattributed != 0 {
		t.Errorf("unattributed stall cycles: %d", res.Stats.Unattributed)
	}
	// Trigger firing itself is covered deterministically by the core
	// tiny-ring recorder test; faulty.json's 0.002 corruption rate is
	// too sparse to guarantee a hit inside the capped window.
}

// TestForensicsGateEpoch runs the gate epoch-synchronized: with the
// links deepened to 4 cycles and the barrier amortized over 4-cycle
// epochs, the report must still be byte-identical at workers {1,2,4}
// and every invariant must still reconcile.
func TestForensicsGateEpoch(t *testing.T) {
	res := runGateEpoch(t, "../../scenarios/fig6.json", gateCycles(4000, 10000), 4)
	if res.Stats.TCStallCycles == 0 {
		t.Error("epoch-4 fig6 produced no attributed TC stall cycles; the engine saw nothing")
	}
}

// TestSweepDiff covers the baseline matcher and the regression gate on
// synthetic rows: a halved speedup trips the gate, a within-tolerance
// row and a single-worker row do not.
func TestSweepDiff(t *testing.T) {
	cur := &SweepResult{Rows: []SweepRow{
		{W: 8, H: 8, Workers: 1, Speedup: 0.5, ParAllocsPerCycle: 2.0},
		{W: 8, H: 8, Workers: 4, Speedup: 1.0, ParAllocsPerCycle: 2.0},
		{W: 16, H: 16, Workers: 4, Speedup: 2.0, ParAllocsPerCycle: 2.0},
	}}
	base := &SweepBaseline{Rows: []BaselineRow{
		{Mesh: "8x8", Workers: 1, Speedup: 1.0, ParAllocsPerCycle: 2.0},
		{Mesh: "8x8", Workers: 4, Speedup: 2.0, ParAllocsPerCycle: 2.0},
		{Mesh: "16x16", Workers: 4, Speedup: 2.1, ParAllocsPerCycle: 2.0},
		{Mesh: "32x32", Workers: 4, Speedup: 3.0, ParAllocsPerCycle: 2.0},
	}}
	deltas := cur.Diff(base)
	if len(deltas) != 3 {
		t.Fatalf("matched %d rows, want 3 (32x32 has no current row)", len(deltas))
	}
	if err := CheckRegression(deltas, 0.2); err == nil {
		t.Error("halved 8x8 x4 speedup passed a 20%% gate")
	} else if !strings.Contains(err.Error(), "8x8 x4") {
		t.Errorf("gate blamed the wrong row: %v", err)
	}
	if err := CheckRegression(deltas[:1], 0.2); err != nil {
		t.Errorf("single-worker row tripped the speedup floor: %v", err)
	}
	if err := CheckRegression(deltas[2:], 0.2); err != nil {
		t.Errorf("within-tolerance row tripped the gate: %v", err)
	}
	if err := CheckRegression(deltas, 0); err != nil {
		t.Errorf("disabled gate (max-regress 0) still failed: %v", err)
	}

	// Allocation growth trips the gate independently of speedup.
	grew := []SweepDelta{{Mesh: "8x8", Workers: 4, BaseSpeedup: 2.0,
		CurSpeedup: 2.0, SpeedupRatio: 1.0,
		BaseAllocs: 1.0, CurAllocs: 1.5, AllocsRatio: 1.5}}
	if err := CheckRegression(grew, 0.2); err == nil {
		t.Error("50%% allocation growth passed a 20%% gate")
	}
}

// TestLoadSweepBaseline exercises the archive loader's error paths and
// round-trip.
func TestLoadSweepBaseline(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		p := dir + "/" + name
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json",
		`{"gomaxprocs": 8, "rows": [{"mesh": "8x8", "workers": 4, "speedup": 2.5}]}`)
	b, err := LoadSweepBaseline(good)
	if err != nil {
		t.Fatal(err)
	}
	if b.GOMAXPROCS != 8 || len(b.Rows) != 1 || b.Rows[0].Speedup != 2.5 {
		t.Errorf("round-trip mismatch: %+v", b)
	}
	if _, err := LoadSweepBaseline(dir + "/missing.json"); err == nil {
		t.Error("missing file loaded")
	}
	if _, err := LoadSweepBaseline(write("empty.json", `{"rows": []}`)); err == nil {
		t.Error("empty baseline loaded")
	}
	if _, err := LoadSweepBaseline(write("bad.json", `{"rows": [`)); err == nil {
		t.Error("malformed baseline loaded")
	}
}
