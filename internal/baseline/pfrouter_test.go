package baseline

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
)

// pfRig wires two PF routers A→B on the x axis.
type pfRig struct {
	k    *sim.Kernel
	a, b *PFRouter
}

func newPFRig(t *testing.T) *pfRig {
	t.Helper()
	k := sim.NewKernel()
	a, err := NewPFRouter("A", 256)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPFRouter("B", 256)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(a)
	k.Register(b)
	ab := router.NewChannel(k)
	a.ConnectOut(router.PortXPlus, ab.Out())
	b.ConnectIn(router.PortXMinus, ab.In())
	ba := router.NewChannel(k)
	b.ConnectOut(router.PortXMinus, ba.Out())
	a.ConnectIn(router.PortXPlus, ba.In())
	return &pfRig{k: k, a: a, b: b}
}

func pfPkt(conn, prio uint8, tag byte) packet.TCPacket {
	p := packet.TCPacket{Conn: conn, Stamp: prio}
	p.Payload[0] = tag
	return p
}

func TestPFLocalDelivery(t *testing.T) {
	k := sim.NewKernel()
	r, err := NewPFRouter("A", 16)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(r)
	if err := r.SetRoute(1, 9, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	r.Inject(pfPkt(1, 5, 0xAA))
	ok := k.RunUntil(func() bool { return r.Stats.Delivered > 0 }, 2000)
	if !ok {
		t.Fatalf("not delivered: %+v", r.Stats)
	}
	d := r.DrainTC()
	if d[0].Conn != 9 || d[0].Stamp != 5 || d[0].Payload[0] != 0xAA {
		t.Errorf("delivery %+v", d[0])
	}
}

func TestPFTwoHop(t *testing.T) {
	rig := newPFRig(t)
	if err := rig.a.SetRoute(1, 2, 1<<router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := rig.b.SetRoute(2, 7, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	rig.a.Inject(pfPkt(1, 3, 0x11))
	ok := rig.k.RunUntil(func() bool { return rig.b.Stats.Delivered > 0 }, 5000)
	if !ok {
		t.Fatalf("not delivered: A=%+v B=%+v", rig.a.Stats, rig.b.Stats)
	}
	d := rig.b.DrainTC()
	if d[0].Conn != 7 || d[0].Stamp != 3 {
		t.Errorf("delivery %+v (priority must survive the hop)", d[0])
	}
}

// TestPFPriorityOrder creates queueing at A — B's input buffer fills
// while B's local port serves its own better-priority stream — then
// injects one high-priority packet at A; it must overtake the packets
// still queued at A.
func TestPFPriorityOrder(t *testing.T) {
	rig := newPFRig(t)
	if err := rig.a.SetRoute(1, 2, 1<<router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := rig.b.SetRoute(2, 7, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	if err := rig.b.SetRoute(3, 8, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	// B's own long stream at priority 50 monopolizes its local port, so
	// A's prio-200 stream backs up (8 in B's buffer, the rest queued at
	// A).
	for i := 0; i < 300; i++ {
		rig.b.Inject(pfPkt(3, 50, byte(i)))
	}
	for i := 0; i < 12; i++ {
		rig.a.Inject(pfPkt(1, 200, byte(i)))
	}
	rig.k.Run(1500) // let the backlog form while B is still busy
	rig.a.Inject(pfPkt(1, 1, 0x99))
	rig.k.RunUntil(func() bool { return rig.b.Stats.Delivered >= 313 }, 120000)
	got := rig.b.DrainTC()
	pos, after := -1, 0
	for i, d := range got {
		if d.Conn == 7 && d.Payload[0] == 0x99 {
			pos = i
		} else if pos >= 0 && d.Conn == 7 {
			after++
		}
	}
	if pos < 0 {
		t.Fatal("high-priority packet lost")
	}
	// It must beat the low-priority packets that were still queued at A
	// (at least the last few of the twelve).
	if after < 3 {
		t.Errorf("high-priority packet overtook only %d queued packets", after)
	}
}

// TestPFBackpressure fills B's input queue (nothing drains it) and
// checks A stops sending at 8 packets in flight rather than overrunning.
func TestPFBackpressure(t *testing.T) {
	rig := newPFRig(t)
	if err := rig.a.SetRoute(1, 2, 1<<router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	// Credits cap A's in-flight count at the queue depth; with a valid
	// route at B every packet must arrive with zero overruns.
	if err := rig.b.SetRoute(2, 7, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		rig.a.Inject(pfPkt(1, 9, byte(i)))
	}
	rig.k.RunUntil(func() bool { return rig.b.Stats.Delivered >= 20 }, 40000)
	if rig.b.Stats.Delivered != 20 {
		t.Fatalf("delivered %d/20", rig.b.Stats.Delivered)
	}
	if rig.b.Stats.DropsOverrun != 0 {
		t.Errorf("input queue overran despite credits: %+v", rig.b.Stats)
	}
}

// TestPFPriorityInheritance: B's input queue from A is full of
// mid-priority packets while a high-priority packet waits at A. The
// sideband must boost B's head so it drains ahead of B's other traffic.
func TestPFPriorityInheritance(t *testing.T) {
	rig := newPFRig(t)
	// A sends everything to B's local port.
	if err := rig.a.SetRoute(1, 2, 1<<router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := rig.b.SetRoute(2, 7, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	// B also has its own injected traffic for its local port at priority
	// 50, competing with the A→B stream at priority 100.
	if err := rig.b.SetRoute(3, 8, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	// Ten prio-100 packets from A: eight fill B's input buffer, two
	// queue at A. B's long-running prio-50 self stream keeps winning
	// B's local port, so the A→B stream is stuck.
	for i := 0; i < PFQueueDepth+2; i++ {
		rig.a.Inject(pfPkt(1, 100, byte(i)))
	}
	for i := 0; i < 300; i++ {
		rig.b.Inject(pfPkt(3, 50, byte(i)))
	}
	rig.k.Run(1500)
	if rig.b.QueueDepth(router.PortXMinus) != PFQueueDepth {
		t.Fatalf("B input buffer depth %d, want %d (saturated)",
			rig.b.QueueDepth(router.PortXMinus), PFQueueDepth)
	}
	// A critical packet arrives at A. Its priority (1) sorts to the head
	// of A's queue; the sideband lets the head of B's full input buffer
	// inherit it, cutting the whole chain ahead of B's prio-50 stream.
	rig.a.Inject(pfPkt(1, 1, 0xEE))
	rig.k.Run(4000)
	if rig.b.Stats.Inherited == 0 {
		t.Errorf("no priority inheritance recorded; A=%+v B=%+v", rig.a.Stats, rig.b.Stats)
	}
	// The critical packet must arrive while B's self stream still runs.
	found := false
	for _, d := range rig.b.DrainTC() {
		if d.Conn == 7 && d.Payload[0] == 0xEE {
			found = true
		}
	}
	if !found {
		t.Error("critical packet not delivered past the blocked buffer")
	}
	if rig.b.Stats.Delivered >= 310 {
		t.Error("B self stream finished; inheritance was not exercised under blocking")
	}
}

func TestPFValidation(t *testing.T) {
	if _, err := NewPFRouter("x", 0); err == nil {
		t.Error("zero-table router accepted")
	}
	r, _ := NewPFRouter("x", 16)
	if err := r.SetRoute(20, 0, 1); err == nil {
		t.Error("out-of-range id accepted")
	}
	if err := r.SetRoute(1, 0, 0); err == nil {
		t.Error("empty mask accepted")
	}
	if err := r.SetRoute(1, 0, 0b11); err == nil {
		t.Error("multicast mask accepted (model is unicast)")
	}
}

func TestPFDropsNoRoute(t *testing.T) {
	k := sim.NewKernel()
	r, _ := NewPFRouter("A", 16)
	k.Register(r)
	r.Inject(pfPkt(5, 1, 0))
	k.Run(200)
	if r.Stats.DropsNoRoute != 1 {
		t.Errorf("DropsNoRoute = %d, want 1", r.Stats.DropsNoRoute)
	}
}

func TestAblationConfigs(t *testing.T) {
	if FIFOConfig().Scheduler != router.SchedFIFO {
		t.Error("FIFOConfig scheduler wrong")
	}
	if StaticPriorityConfig().Scheduler != router.SchedStaticPriority {
		t.Error("StaticPriorityConfig scheduler wrong")
	}
	if err := FIFOConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := StaticPriorityConfig().Validate(); err != nil {
		t.Error(err)
	}
}
