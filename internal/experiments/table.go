// Package experiments contains one driver per table and figure of the
// paper's evaluation (and the extension studies listed in DESIGN.md §4).
// cmd/rtbench and the repository-root benchmarks both call into these
// drivers, so the numbers printed by either always come from the same
// code.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func d(v int64) string    { return fmt.Sprintf("%d", v) }
func di(v int) string     { return fmt.Sprintf("%d", v) }
