package scenario

import "testing"

// FuzzParse throws arbitrary bytes at the scenario decoder: it must
// either return an error or a document that re-validates, and never
// panic. The seed corpus covers every schema feature, the failure
// timeline kinds in particular.
func FuzzParse(f *testing.F) {
	f.Add([]byte(sampleJSON))
	f.Add([]byte(`{"mesh":{"w":2,"h":1},"cycles":100}`))
	f.Add([]byte(`{"mesh":{"w":3,"h":3},"cycles":1000,"router":{"scheduler":"approx","approxShift":2,"vct":true}}`))
	f.Add([]byte(`{"mesh":{"w":2,"h":2},"cycles":500,"failures":[{"at":10,"from":[0,0],"port":"+x","kind":"flap","repair_at":200}]}`))
	f.Add([]byte(`{"mesh":{"w":2,"h":2},"cycles":500,"failures":[{"at":10,"from":[0,1],"port":"-y","kind":"corrupt","rate":0.05,"burst":4}]}`))
	f.Add([]byte(`{"mesh":{"w":2,"h":2},"cycles":500,"failures":[{"at":0,"from":[1,1],"port":"-x","kind":"lose","rate":0.5,"repair_at":500}]}`))
	f.Add([]byte(`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","repair_at":10}]}`))
	f.Add([]byte(`{"mesh":{"w":1,"h":1},"cycles":-1}`))
	f.Add([]byte(`{"cycles":1e18}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		sc, err := Parse(raw)
		if err != nil {
			return
		}
		if sc == nil {
			t.Fatal("nil scenario without error")
		}
		if err := sc.validate(); err != nil {
			t.Fatalf("parsed scenario fails re-validation: %v", err)
		}
	})
}
