package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/timing"
	"repro/internal/traffic"
)

// Fig6Result demonstrates the clock-rollover handling of Section 4.3 /
// Figure 6 in two parts: the static classification example from the
// figure (an 8-bit clock at t=240), and a long-running periodic channel
// whose lifetime spans many wraps of the 8-bit slot clock with zero
// deadline misses.
type Fig6Result struct {
	// Classifications mirrors Figure 6: stamp, class at t=240.
	Stamps  []uint8
	Classes []string
	Gaps    []uint32

	// Dynamic run across rollovers.
	Wraps      int64
	Delivered  int64
	Misses     int64
	MaxLatency float64
}

// RunFig6 evaluates the Figure 6 example and a multi-wrap soak run.
func RunFig6(wraps int64) (*Fig6Result, error) {
	if wraps < 1 {
		return nil, fmt.Errorf("experiments: wraps must be positive")
	}
	res := &Fig6Result{Wraps: wraps}
	w := timing.MustWheel(8)
	const now timing.Stamp = 240
	for _, s := range []uint8{210, 240, 250, 80, 111} {
		st := timing.Stamp(s)
		res.Stamps = append(res.Stamps, s)
		if w.OnTime(st, now) {
			res.Classes = append(res.Classes, "on-time")
			res.Gaps = append(res.Gaps, w.Sub(now, st))
		} else {
			res.Classes = append(res.Classes, "early")
			res.Gaps = append(res.Gaps, w.EarlyGap(st, now))
		}
	}

	// Soak: a periodic channel running across `wraps` rollovers of the
	// 256-slot clock. Any misclassification at a wrap would surface as a
	// held packet (deadline miss) or an early release.
	sys, err := core.NewMesh(2, 1, core.Options{})
	if err != nil {
		return nil, err
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	spec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: 32}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		return nil, err
	}
	app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
	if err != nil {
		return nil, err
	}
	sys.Net.Kernel.Register(app)
	cycles := wraps * 256 * packet.TCBytes
	sys.Run(cycles)
	sum := sys.Summarize()
	res.Delivered = sum.TCDelivered
	res.Misses = sum.TCMisses
	res.MaxLatency = sum.TCLatency.Max()
	return res, nil
}

// Table renders both parts.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:  "Figure 6 — clock rollover with an 8-bit clock (t = 240)",
		Header: []string{"ℓ(m) stamp", "class", "slots to/from ℓ"},
	}
	for i := range r.Stamps {
		t.AddRow(fmt.Sprintf("%d", r.Stamps[i]), r.Classes[i], fmt.Sprintf("%d", r.Gaps[i]))
	}
	t.AddNote("paper example: ℓ=210 on-time, ℓ=80 early at t=240")
	t.AddNote("soak across %d clock wraps: %d packets delivered, %d deadline misses, max latency %.0f cycles",
		r.Wraps, r.Delivered, r.Misses, r.MaxLatency)
	return t
}
