package experiments

import (
	"fmt"

	"repro/internal/router"
)

// ApproxResult is the X6 study of the paper's Section 7 proposal:
// approximate versions of real-time channels with reduced scheduling
// complexity. The X2 bottleneck workload (a tight-deadline stream
// contending with bulky loose streams) runs under the quantized-key
// scheduler at increasing granularities; each dropped key bit narrows
// every comparator in the shared tree, and the study measures what that
// costs in deadline behaviour.
type ApproxResult struct {
	Shifts    []uint
	KeyBits   []int // comparator width after quantization
	TightMiss []float64
	TightP99  []float64 // cycles
	LooseMiss []float64
}

// RunApprox sweeps the quantization exponent over the X2 workload.
func RunApprox(shifts []uint, cycles int64) (*ApproxResult, error) {
	if len(shifts) == 0 || cycles < 10000 {
		return nil, fmt.Errorf("experiments: invalid approx sweep config")
	}
	res := &ApproxResult{Shifts: shifts}
	for _, sh := range shifts {
		cfg := router.DefaultConfig()
		cfg.Scheduler = router.SchedApproxEDF
		cfg.ApproxShift = sh
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		tight, loose, err := runCompareRouter(cfg, cycles)
		if err != nil {
			return nil, fmt.Errorf("experiments: shift %d: %w", sh, err)
		}
		res.KeyBits = append(res.KeyBits, int(cfg.ClockBits-sh)+1)
		res.TightMiss = append(res.TightMiss, tight.missRate())
		res.TightP99 = append(res.TightP99, tight.lat.Quantile(0.99))
		res.LooseMiss = append(res.LooseMiss, loose.missRate())
	}
	return res, nil
}

// Table renders the sweep.
func (r *ApproxResult) Table() *Table {
	t := &Table{
		Title:  "X6 — approximate deadline scheduling (paper §7): key quantization vs. deadline behaviour",
		Header: []string{"dropped bits", "key bits", "tight miss%", "tight p99 (cyc)", "loose miss%"},
	}
	for i, sh := range r.Shifts {
		t.AddRow(fmt.Sprintf("%d (2^%d-slot buckets)", sh, sh),
			di(r.KeyBits[i]), f1(r.TightMiss[i]*100), f1(r.TightP99[i]), f1(r.LooseMiss[i]*100))
	}
	t.AddNote("each dropped bit narrows all 255 comparators by one bit; coarse buckets blur")
	t.AddNote("deadline order inside a bucket, eroding the tight stream's slack first")
	return t
}
