// Package admission implements connection establishment for real-time
// channels (Sections 2 and 4.1 of the paper): route selection (including
// multicast trees), decomposition of the end-to-end delay bound into
// per-hop bounds, the per-link schedulability test, buffer reservation
// against the routers' shared packet memories, and programming of the
// router connection tables through their control interfaces.
//
// The paper deliberately relegates this machinery to protocol software —
// it is computationally intensive but not time-critical — and that is
// exactly where it lives here: the Controller runs outside the
// cycle-accurate simulation and only touches the chips through the same
// control writes a host processor would issue.
package admission

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
	"repro/internal/timing"
)

// BufferPolicy selects how a router's shared packet memory is accounted
// during reservation (Section 3.4).
type BufferPolicy int

const (
	// Partitioned divides the memory evenly among the five output
	// ports; a connection's reservation must fit its ports' partitions.
	// This keeps any one link from starving the others' admissibility.
	Partitioned BufferPolicy = iota
	// SharedPool draws all reservations from one pool, maximizing
	// admissibility for asymmetric loads at the cost of fairness.
	SharedPool
)

func (p BufferPolicy) String() string {
	if p == Partitioned {
		return "partitioned"
	}
	return "shared"
}

// Config parameterizes the controller.
type Config struct {
	// Policy is the packet-memory accounting mode.
	Policy BufferPolicy
	// SourceWindow is how many slots ahead of ℓ0 the source regulator
	// may inject; it plays the role of h+d of a hop "before" the source
	// router in the buffer bound.
	SourceWindow int64
	// Horizon is the horizon parameter programmed on every output port.
	Horizon uint32
	// Reference disables every admission fast path — the incremental EDF
	// cache, the unicast planner, route memoization, and batched
	// speculation — so the controller runs the original from-scratch
	// analysis on every check. A Reference controller must make exactly
	// the same decisions as a standard one (the fuzz harness diffs them);
	// it exists as the differential-testing oracle and as the honest
	// "pre-PR sequential path" the admission campaign times against.
	Reference bool
}

// DefaultConfig returns partitioned buffers, a modest source window and
// a zero horizon (the paper's conservative baseline).
func DefaultConfig() Config {
	return Config{Policy: Partitioned, SourceWindow: 8}
}

// Controller owns the reservation state of one mesh and admits or
// rejects real-time channels against it.
type Controller struct {
	net *mesh.Network
	cfg Config
	// links and failed are dense tables indexed by linkIdx — the mesh is
	// a full W×H rectangle, so a slice beats a map on the admission hot
	// path (linkCheckIn runs once per route hop per plan attempt).
	links  []*linkState
	nodes  []*nodeState
	chans  map[int]*Channel
	failed []bool
	seq    int
	// linkNames and nodeNames lazily cache rendered link/node names for
	// audit records (dense, same indexing as links/nodes).
	linkNames []string
	nodeNames []string

	// audit, when attached, receives one record per control-plane
	// decision (see AttachAudit).
	audit *obs.AuditLog
	// sealed holds the last published capacity snapshot (see Seal in
	// ledger.go); atomic so a live HTTP scrape never races a seal.
	sealed atomic.Pointer[metrics.CapacitySnapshot]
	// memo caches the deterministic planners' port sequences (pure
	// functions of endpoints, so entries never invalidate).
	memo routeMemo
	// sc is the serial control path's evaluation scratch; AdmitBatch's
	// concurrent evaluators carry their own.
	sc evalScratch
	// mut counts reservation-state mutations (commits, teardowns, link
	// failure transitions); rejMemo caches whole admit() rejections
	// keyed by request and mut. Mass admission replays the same few
	// (src, dst, spec) rejections thousands of times against unchanged
	// state, and a rejection leaves no state behind, so replaying the
	// stored error is exact — same value, same rendered bytes.
	mut     uint64
	rejMemo map[rejKey]error
	// lastSpec/lastSpecStr memoize the last audit spec rendering: a mass
	// admission run replays one traffic contract thousands of times.
	lastSpec    rtc.Spec
	lastSpecStr string
	// stats counts control-plane decisions for telemetry (see Stats).
	stats admStats
}

// AttachAudit wires an audit log to receive every Admit, Teardown,
// restore and Reroute decision. Admission runs host-side between kernel
// runs, so no synchronization is needed; pass nil to detach.
func (c *Controller) AttachAudit(log *obs.AuditLog) { c.audit = log }

// ConfigView returns the controller's configuration (a copy). Layout
// synthesis reads SourceWindow and Horizon to keep its repaired delay
// splits inside the rollover window without a rejected probe per step.
func (c *Controller) ConfigView() Config { return c.cfg }

// portInject is the pseudo-port of a node's time-constrained injection
// link: one byte per cycle shared by every channel sourced there, EDF-
// ordered by the source regulator, and therefore subject to the same
// schedulability test as the mesh links.
const portInject = -1

type linkKey struct {
	node mesh.Coord
	port int
}

func (k linkKey) String() string {
	if k.port == portInject {
		return k.node.String() + "→inject"
	}
	return k.node.String() + "→" + router.PortName(k.port)
}

// task is one connection's demand on a link: C slots every T slots with
// relative deadline D.
type task struct {
	C, T, D int64
	chanID  int
}

type linkState struct {
	tasks []task
	// cache is the incremental EDF digest of tasks (edfcache.go), kept
	// current by every commit/teardown/restore/unwind; unused (left
	// unbuilt) when the controller runs in Reference mode.
	cache edfCache
}

type nodeState struct {
	usedIDs     map[uint8]bool
	portBuffers [router.NumPorts]int
	total       int
	// wheel, slots and conns cache the router's static configuration so
	// the per-hop admission checks never touch the router map or copy a
	// Config struct.
	wheel timing.Wheel
	slots int
	conns int
}

// New creates a controller for the given network and programs the
// configured horizon on every router port.
func New(net *mesh.Network, cfg Config) (*Controller, error) {
	if cfg.SourceWindow < 0 {
		return nil, fmt.Errorf("admission: negative source window")
	}
	c := &Controller{
		net:    net,
		cfg:    cfg,
		links:  make([]*linkState, net.W*net.H*(router.NumPorts+1)),
		nodes:  make([]*nodeState, net.W*net.H),
		chans:  make(map[int]*Channel),
		failed: make([]bool, net.W*net.H*(router.NumPorts+1)),
	}
	c.linkNames = make([]string, len(c.links))
	c.nodeNames = make([]string, len(c.nodes))
	for _, coord := range net.Coords() {
		r := net.Router(coord)
		if !r.Wheel().ValidDelay(int64(cfg.Horizon)) {
			return nil, fmt.Errorf("admission: horizon %d exceeds half clock range", cfg.Horizon)
		}
		if err := r.SetHorizon(sched.AllPortsMask(router.NumPorts), uint8(cfg.Horizon)); err != nil {
			return nil, err
		}
		cfgR := r.Config()
		c.nodes[net.Shard(coord)] = &nodeState{
			usedIDs: make(map[uint8]bool),
			wheel:   r.Wheel(), slots: cfgR.Slots, conns: cfgR.Conns,
		}
	}
	return c, nil
}

// linkIdx maps a directed link to its slot in the dense link/failed
// tables; the injection pseudo-port (−1) occupies slot 0 of each node's
// NumPorts+1 stride.
func (c *Controller) linkIdx(k linkKey) int {
	return c.net.Shard(k.node)*(router.NumPorts+1) + k.port + 1
}

// linkKeyAt inverts linkIdx for table iteration. Ascending index order
// is (node.Y, node.X, port) order with inject first — exactly the
// deterministic link order Seal publishes.
func (c *Controller) linkKeyAt(i int) linkKey {
	n, p := i/(router.NumPorts+1), i%(router.NumPorts+1)-1
	return linkKey{mesh.Coord{X: n % c.net.W, Y: n / c.net.W}, p}
}

// linkAt returns the link's state without materializing one, nil if the
// link has never held a reservation.
func (c *Controller) linkAt(k linkKey) *linkState { return c.links[c.linkIdx(k)] }

// linkName returns k.String() through a lazily filled dense cache: the
// rejection path stamps a link name on every audited refusal, and there
// are only W×H×(NumPorts+1) distinct names.
func (c *Controller) linkName(k linkKey) string {
	i := c.linkIdx(k)
	if c.linkNames[i] == "" {
		c.linkNames[i] = k.String()
	}
	return c.linkNames[i]
}

// nodeName is linkName's per-router twin.
func (c *Controller) nodeName(co mesh.Coord) string {
	i := c.net.Shard(co)
	if c.nodeNames[i] == "" {
		c.nodeNames[i] = co.String()
	}
	return c.nodeNames[i]
}

// node returns the router's reservation state (always materialized by
// the constructor).
func (c *Controller) node(co mesh.Coord) *nodeState { return c.nodes[c.net.Shard(co)] }

// Channel is an admitted real-time channel.
type Channel struct {
	ID      int
	Src     mesh.Coord
	Dsts    []mesh.Coord
	Spec    rtc.Spec
	SrcConn uint8   // connection id to stamp on injected packets
	DstConn []uint8 // delivery id at each destination, parallel to Dsts
	// LocalD is the uniform per-router delay bound d chosen by the
	// default planner. Zero when DSplit is set: a layout-admitted channel
	// has no single shared d.
	LocalD int64
	// DSplit is the explicit per-hop delay split d_j of a channel
	// admitted through AdmitLayout, source router first; nil for
	// channels admitted through the default planner (uniform LocalD at
	// every hop).
	DSplit []int64

	// Margin is the admission-time EDF headroom in slots: the minimum
	// t−dbf(t) over every link the schedulability test checked with this
	// channel included. It is fixed at admission and survives
	// teardown/restore verbatim, so ledger exports of "worst admitted
	// margin" are stable across reroute refusals.
	Margin int64

	hops []hopRef
}

type hopRef struct {
	node    mesh.Coord
	inConn  uint8
	outConn uint8
	mask    sched.PortMask
	buffers int
	// d is the per-router delay bound reserved at this hop — LocalD for
	// default-planned channels, DSplit[j] for layout-admitted ones. It is
	// the deadline of this hop's link tasks and the value programmed into
	// the router's connection table, so teardown/restore and the ledger
	// verifier reconstruct reservations from it verbatim.
	d int64
}

// treeNode is one router in the multicast route tree.
type treeNode struct {
	coord mesh.Coord
	mask  sched.PortMask // output ports used (links and/or local)
	depth int            // routers from the source (source = 0)
}

// routeFn produces a port sequence from src to dst.
type routeFn func(src, dst mesh.Coord) []int

// buildTree merges the routes to every destination into one tree using
// the given routing order. It returns nodes in breadth-first order.
func (c *Controller) buildTree(src mesh.Coord, dsts []mesh.Coord, route routeFn) ([]*treeNode, int, error) {
	if !c.net.Contains(src) {
		return nil, 0, fmt.Errorf("admission: source %s outside mesh", src)
	}
	byCoord := make(map[mesh.Coord]*treeNode)
	get := func(at mesh.Coord, depth int) *treeNode {
		n, ok := byCoord[at]
		if !ok {
			n = &treeNode{coord: at, depth: depth}
			byCoord[at] = n
		}
		return n
	}
	maxSegs := 0
	seen := make(map[mesh.Coord]bool)
	for _, dst := range dsts {
		if !c.net.Contains(dst) {
			return nil, 0, fmt.Errorf("admission: destination %s outside mesh", dst)
		}
		if seen[dst] {
			return nil, 0, fmt.Errorf("admission: duplicate destination %s", dst)
		}
		seen[dst] = true
		ports := route(src, dst)
		if len(ports) > maxSegs {
			maxSegs = len(ports)
		}
		at := src
		for i, port := range ports {
			n := get(at, i)
			if n.depth != i {
				// Single-order merges always agree on depth; a mismatch
				// would mean two routes visit one router at different
				// distances, impossible within one dimension order.
				return nil, 0, fmt.Errorf("admission: internal: inconsistent tree depth at %s", at)
			}
			n.mask |= 1 << port
			at = at.Add(port)
		}
	}
	nodes := make([]*treeNode, 0, len(byCoord))
	for _, n := range byCoord {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].depth != nodes[j].depth {
			return nodes[i].depth < nodes[j].depth
		}
		a, b := nodes[i].coord, nodes[j].coord
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return nodes, maxSegs, nil
}

// Admit establishes a real-time channel from src to one or more
// destinations, or explains why it cannot. Route selection follows the
// paper's §3.3: the XY dimension order is tried first; for unicast
// channels the disjoint YX order serves as fallback when the XY path
// lacks resources or crosses failed links. On success the routers along
// the route(s) are programmed and resources are debited; the returned
// Channel carries the connection id the source must stamp.
func (c *Controller) Admit(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec) (*Channel, error) {
	ch, err := c.admit(src, dsts, spec)
	c.recordAdmit(src, dsts, spec, ch, err)
	return ch, err
}

// recordAdmit counts one admission decision and, when an audit log is
// attached, records it. Shared between Admit and AdmitBatch's serial
// finalize, so a batched request leaves exactly the trail a sequential
// one does.
func (c *Controller) recordAdmit(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, ch *Channel, err error) {
	if err != nil {
		c.stats.rejects.Add(1)
	} else {
		c.stats.admits.Add(1)
	}
	if c.audit == nil {
		return
	}
	srcName := src.String()
	if c.net.Contains(src) {
		srcName = c.nodeName(src)
	}
	rec := obs.AuditRecord{
		Op: "admit", Channel: -1,
		Src: srcName, Dst: c.dstName(dsts), Spec: c.specStr(spec),
	}
	if err != nil {
		rec.Outcome = "rejected"
		rec.Err = err.Error()
		if rej, ok := Explain(err); ok {
			rec.Binding = rej.BindingResource()
			rec.Test = rej.FailingTest()
			rec.Margin = rej.FailMargin()
			rec.Router = rej.Router()
		}
	} else {
		rec.Outcome = "admitted"
		rec.Channel = ch.ID
		rec.Route = ch.Route()
		rec.LocalD = ch.LocalD
		rec.DSplit = dsplitString(ch.DSplit)
		rec.Hops = ch.Hops()
		rec.Margin = float64(ch.Margin)
	}
	c.audit.Record(c.net.Shard(src), rec)
}

// dsplitString renders a per-hop delay split for audit records, e.g.
// "5+7+5"; empty for default-planned channels.
func dsplitString(ds []int64) string {
	if len(ds) == 0 {
		return ""
	}
	b := make([]byte, 0, 4*len(ds))
	for i, d := range ds {
		if i > 0 {
			b = append(b, '+')
		}
		b = strconv.AppendInt(b, d, 10)
	}
	return string(b)
}

// rejKey names one memoizable unicast rejection: the request plus the
// controller's mutation count, which pins the exact reservation state
// the decision was made against.
type rejKey struct {
	src, dst mesh.Coord
	spec     rtc.Spec
	mut      uint64
}

// rejMemoCap bounds the rejection memo; on overflow the map is cleared
// in place (buckets are kept, so steady state stays allocation-free).
const rejMemoCap = 1 << 14

func (c *Controller) admit(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("admission: no destinations")
	}
	memoable := len(dsts) == 1 && !c.cfg.Reference
	var key rejKey
	if memoable {
		key = rejKey{src: src, dst: dsts[0], spec: spec, mut: c.mut}
		if err, ok := c.rejMemo[key]; ok {
			return nil, err
		}
	}
	ch, errXY := c.tryVia(src, dsts, spec, xyOrder)
	if errXY == nil {
		return ch, nil
	}
	if len(dsts) == 1 && src.X != dsts[0].X && src.Y != dsts[0].Y {
		if ch, errYX := c.tryVia(src, dsts, spec, yxOrder); errYX == nil {
			return ch, nil
		}
	}
	if memoable {
		if c.rejMemo == nil {
			c.rejMemo = make(map[rejKey]error, 1<<10)
		} else if len(c.rejMemo) >= rejMemoCap {
			clear(c.rejMemo)
		}
		c.rejMemo[key] = errXY
	}
	return nil, errXY
}

// tryVia plans and immediately commits along one routing order.
func (c *Controller) tryVia(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, order routeOrder) (*Channel, error) {
	p, err := c.planVia(src, dsts, spec, order, &c.sc)
	if err != nil {
		return nil, err
	}
	return c.commitPlan(p)
}

// plan runs admission phase 1 only — route, delay split, schedulability,
// buffers, identifiers, with the XY→YX fallback Admit applies — without
// mutating any controller state. In incremental (non-Reference) mode it
// is safe to call from many goroutines concurrently against a frozen
// controller, each with its own scratch; that is AdmitBatch's
// speculative evaluation.
func (c *Controller) plan(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, sc *evalScratch) (*admitPlan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("admission: no destinations")
	}
	p, errXY := c.planVia(src, dsts, spec, xyOrder, sc)
	if errXY == nil {
		return p, nil
	}
	if len(dsts) == 1 && src.X != dsts[0].X && src.Y != dsts[0].Y {
		if p, errYX := c.planVia(src, dsts, spec, yxOrder, sc); errYX == nil {
			return p, nil
		}
	}
	return nil, errXY
}

// dstName is dstString through the controller's rendered-name cache
// (identical bytes: nodeName caches Coord.String itself).
func (c *Controller) dstName(dsts []mesh.Coord) string {
	if len(dsts) == 1 && c.net.Contains(dsts[0]) {
		return c.nodeName(dsts[0])
	}
	return dstString(dsts)
}

// specStr is specString through the controller's single-entry memo.
func (c *Controller) specStr(spec rtc.Spec) string {
	if c.lastSpecStr == "" || spec != c.lastSpec {
		c.lastSpec, c.lastSpecStr = spec, specString(spec)
	}
	return c.lastSpecStr
}

// dstString renders a destination set for audit records.
func dstString(dsts []mesh.Coord) string {
	if len(dsts) == 1 {
		return dsts[0].String()
	}
	parts := make([]string, len(dsts))
	for i, d := range dsts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "+")
}

// specString renders a traffic contract for audit records. strconv
// instead of fmt — one of these renders on every audited decision.
func specString(s rtc.Spec) string {
	b := make([]byte, 0, 48)
	b = append(b, "spec[Imin="...)
	b = strconv.AppendInt(b, s.Imin, 10)
	b = append(b, " Smax="...)
	b = strconv.AppendInt(b, int64(s.Smax), 10)
	b = append(b, " Bmax="...)
	b = strconv.AppendInt(b, int64(s.Bmax), 10)
	b = append(b, " D="...)
	b = strconv.AppendInt(b, s.D, 10)
	b = append(b, ']')
	return string(b)
}

// routeOrder selects the dimension order of the deterministic planner.
type routeOrder uint8

const (
	xyOrder routeOrder = iota
	yxOrder
)

// routeFor returns the (memoized) port sequence for one routing order.
// Reference mode bypasses the memo so the pre-PR cost model stays
// honest.
func (c *Controller) routeFor(src, dst mesh.Coord, order routeOrder) []int {
	if c.cfg.Reference {
		if order == yxOrder {
			return mesh.YXRoute(src, dst)
		}
		return mesh.XYRoute(src, dst)
	}
	return c.memo.route(src, dst, order)
}

// admitPlan is the read-only product of admission phase 1: everything
// phase 2 needs to debit resources and program the chips. The plan's
// task carries no channel id yet — commitPlan stamps the id when the
// plan actually lands, so a plan computed speculatively (before earlier
// batched requests settled) commits with the right id.
type admitPlan struct {
	src    mesh.Coord
	dsts   []mesh.Coord
	spec   rtc.Spec
	d      int64
	margin int64
	task   task
	hops   []planHop
	// dsplit is the explicit per-hop split of a layout plan (nil for the
	// default planners, whose hops all share d). commitPlan copies it
	// onto the channel so audits and the ledger can tell the two apart.
	dsplit  []int64
	srcIn   uint8
	dstConn []uint8
}

type planHop struct {
	node    mesh.Coord
	mask    sched.PortMask
	in, out uint8
	buffers int
	// d is this hop's delay bound (see hopRef.d). The default planners
	// set every hop to the plan's uniform d; planLayout sets DSplit[j].
	d int64
}

// planVia runs admission phase 1 along one routing order.
func (c *Controller) planVia(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, order routeOrder, sc *evalScratch) (*admitPlan, error) {
	if len(dsts) == 1 && !c.cfg.Reference {
		return c.planUnicast(src, dsts, spec, order, sc)
	}
	route := func(s, d mesh.Coord) []int { return c.routeFor(s, d, order) }
	nodes, maxSegs, err := c.buildTree(src, dsts, route)
	if err != nil {
		return nil, err
	}
	wheel := c.node(src).wheel
	// The hardware uses one d per router shared by all branches; use the
	// deepest path to size it, so every branch meets its bound.
	ds, err := rtc.Decompose(spec, maxSegs, wheel)
	if err != nil {
		return nil, err
	}
	d := ds[len(ds)-1] // uniform (the most conservative of the split)
	if d < 1 {
		return nil, fmt.Errorf("admission: empty delay budget")
	}
	// Rollover constraints (Section 4.3): what the downstream hop can
	// see early is window+d at the source, h+d elsewhere.
	if !wheel.ValidDelay(c.cfg.SourceWindow + d) {
		return nil, fmt.Errorf("admission: source window %d + d %d exceeds half clock range",
			c.cfg.SourceWindow, d)
	}
	if !wheel.ValidDelay(int64(c.cfg.Horizon) + d) {
		return nil, fmt.Errorf("admission: horizon %d + d %d exceeds half clock range",
			c.cfg.Horizon, d)
	}

	// Check every resource without mutating anything. The channel's
	// admission margin is the minimum EDF headroom across every link
	// checked, candidate included.
	newTask := task{C: spec.MessageSlots(), T: spec.Imin, D: d}
	injKey := linkKey{src, portInject}
	rep := c.linkCheckIn(injKey, newTask, sc)
	if !rep.feasible {
		return nil, overloadError(c.linkName(injKey), c.nodeName(injKey.node), rep, true)
	}
	margin := rep.headroom
	buffers := make(map[mesh.Coord]int, len(nodes))
	for _, n := range nodes {
		for p := 0; p < router.NumPorts; p++ {
			if !n.mask.Has(p) {
				continue
			}
			key := linkKey{n.coord, p}
			rep := c.linkCheckIn(key, newTask, sc)
			if !rep.feasible {
				return nil, overloadError(c.linkName(key), c.nodeName(n.coord), rep, false)
			}
			if rep.headroom < margin {
				margin = rep.headroom
			}
		}
		prev := int64(c.cfg.Horizon) + d
		if n.depth == 0 {
			prev = c.cfg.SourceWindow
		}
		need := rtc.BufferBound(prev, d, spec)
		buffers[n.coord] = need
		if err := c.buffersFit(n.coord, n.mask, need); err != nil {
			return nil, err
		}
	}
	ids, err := c.assignIDs(nodes)
	if err != nil {
		return nil, err
	}
	p := &admitPlan{src: src, dsts: dsts, spec: spec, d: d, margin: margin, task: newTask}
	p.hops = make([]planHop, len(nodes))
	for i, n := range nodes {
		p.hops[i] = planHop{node: n.coord, mask: n.mask,
			in: ids[n.coord].in, out: ids[n.coord].out, buffers: buffers[n.coord], d: d}
	}
	p.srcIn = ids[src].in
	p.dstConn = make([]uint8, len(dsts))
	for i, dst := range dsts {
		p.dstConn[i] = ids[dst].out
	}
	return p, nil
}

// planUnicast is the allocation-light phase 1 for single-destination
// requests: the route tree degenerates to a path, so no tree maps and no
// claim maps are needed — each router appears once and hands its
// outgoing id straight to the next. It mirrors the generic planner
// decision for decision (same check order, same first-fit id scans, same
// error values); the admission fuzz harness diffs the two via a
// Reference-mode shadow controller.
func (c *Controller) planUnicast(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, order routeOrder, sc *evalScratch) (*admitPlan, error) {
	dst := dsts[0]
	if !c.net.Contains(src) {
		return nil, fmt.Errorf("admission: source %s outside mesh", src)
	}
	if !c.net.Contains(dst) {
		return nil, fmt.Errorf("admission: destination %s outside mesh", dst)
	}
	ports := c.routeFor(src, dst, order)
	wheel := c.node(src).wheel
	d, err := rtc.DecomposeUniform(spec, len(ports), wheel)
	if err != nil {
		return nil, err
	}
	if d < 1 {
		return nil, fmt.Errorf("admission: empty delay budget")
	}
	if !wheel.ValidDelay(c.cfg.SourceWindow + d) {
		return nil, fmt.Errorf("admission: source window %d + d %d exceeds half clock range",
			c.cfg.SourceWindow, d)
	}
	if !wheel.ValidDelay(int64(c.cfg.Horizon) + d) {
		return nil, fmt.Errorf("admission: horizon %d + d %d exceeds half clock range",
			c.cfg.Horizon, d)
	}

	newTask := task{C: spec.MessageSlots(), T: spec.Imin, D: d}
	injKey := linkKey{src, portInject}
	rep := c.linkCheckIn(injKey, newTask, sc)
	if !rep.feasible {
		return nil, overloadError(c.linkName(injKey), c.nodeName(injKey.node), rep, true)
	}
	margin := rep.headroom
	// Check every hop into the scratch hop buffer first; the plan (and
	// its hops slice) only materializes once the route passes, so a
	// rejected attempt allocates nothing here.
	hops := sc.hops[:0]
	at := src
	for i, port := range ports {
		key := linkKey{at, port}
		rep := c.linkCheckIn(key, newTask, sc)
		if !rep.feasible {
			sc.hops = hops
			return nil, overloadError(c.linkName(key), c.nodeName(at), rep, false)
		}
		if rep.headroom < margin {
			margin = rep.headroom
		}
		prev := int64(c.cfg.Horizon) + d
		if i == 0 {
			prev = c.cfg.SourceWindow
		}
		need := rtc.BufferBound(prev, d, spec)
		mask := sched.PortMask(1) << port
		if err := c.buffersFit(at, mask, need); err != nil {
			sc.hops = hops
			return nil, err
		}
		hops = append(hops, planHop{node: at, mask: mask, buffers: need, d: d})
		if port != router.PortLocal {
			at = at.Add(port)
		}
	}
	sc.hops = hops
	p := &admitPlan{src: src, dsts: dsts, spec: spec, d: d, task: newTask, margin: margin}
	p.hops = make([]planHop, len(hops))
	copy(p.hops, hops)

	// Identifier assignment down the path: the source picks its lowest
	// free id; each hop's outgoing id is the lowest free at the next
	// router (the generic assigner's claim set is empty there, since a
	// path visits every router once); the delivery id at the destination
	// additionally avoids the incoming id it just claimed.
	conns := c.node(src).conns
	cur, ok := firstFreeID(c.node(src), conns, -1)
	if !ok {
		return nil, &ErrIDExhausted{
			Node: src.String(),
			msg:  fmt.Sprintf("admission: %s out of connection identifiers", src),
		}
	}
	p.srcIn = cur
	for i, port := range ports {
		h := &p.hops[i]
		h.in = cur
		var out uint8
		if port == router.PortLocal {
			out, ok = firstFreeID(c.node(h.node), conns, int(cur))
		} else {
			out, ok = firstFreeID(c.node(h.node.Add(port)), conns, -1)
		}
		if !ok {
			return nil, &ErrIDExhausted{
				Node: h.node.String(), Common: true,
				msg: fmt.Sprintf("admission: no common free id across children of %s", h.node),
			}
		}
		h.out = out
		cur = out
	}
	p.dstConn = []uint8{p.hops[len(ports)-1].out}
	return p, nil
}

// firstFreeID returns the lowest connection id free at ns, skipping
// except (-1 for none) — the same id the generic assigner's first-fit
// scan lands on.
func firstFreeID(ns *nodeState, conns int, except int) (uint8, bool) {
	for v := 0; v < conns; v++ {
		if v == except || ns.usedIDs[uint8(v)] {
			continue
		}
		return uint8(v), true
	}
	return 0, false
}

// commitPlan is admission phase 2: debit resources and program the
// chips exactly as the plan says. The plan must describe the
// controller's current state — AdmitBatch guarantees that by re-planning
// any request whose footprint an earlier commit touched.
func (c *Controller) commitPlan(p *admitPlan) (*Channel, error) {
	c.mut++
	ch := &Channel{
		ID:     c.seq,
		Src:    p.src,
		Dsts:   append([]mesh.Coord(nil), p.dsts...),
		Spec:   p.spec,
		LocalD: p.d,
		DSplit: append([]int64(nil), p.dsplit...),
		Margin: p.margin,
	}
	c.seq++
	newTask := p.task
	newTask.chanID = ch.ID
	for _, h := range p.hops {
		if err := c.net.Router(h.node).SetConnection(h.in, h.out, uint8(h.d), h.mask); err != nil {
			// A control write failed mid-commit; unwind the hops already
			// programmed so a refused admission leaves no debris.
			c.unwindCommit(ch)
			return nil, fmt.Errorf("admission: programming %s: %w", h.node, err)
		}
		ns := c.node(h.node)
		ns.usedIDs[h.in] = true
		if h.mask.Has(router.PortLocal) {
			ns.usedIDs[h.out] = true
		}
		ns.total += h.buffers
		hopTask := newTask
		hopTask.D = h.d
		for pt := 0; pt < router.NumPorts; pt++ {
			if h.mask.Has(pt) {
				ns.portBuffers[pt] += h.buffers
				ls := c.link(linkKey{h.node, pt})
				ls.tasks = append(ls.tasks, hopTask)
				c.noteAdd(ls, hopTask)
			}
		}
		ch.hops = append(ch.hops, hopRef{node: h.node, inConn: h.in, outConn: h.out, mask: h.mask, buffers: h.buffers, d: h.d})
	}
	// The injection pseudo-link's deadline is the source router's delay
	// bound — hops[0] is always the source (depth 0 sorts first).
	injTask := newTask
	injTask.D = p.hops[0].d
	inj := c.link(linkKey{p.src, portInject})
	inj.tasks = append(inj.tasks, injTask)
	c.noteAdd(inj, injTask)
	ch.SrcConn = p.srcIn
	ch.DstConn = append([]uint8(nil), p.dstConn...)
	c.chans[ch.ID] = ch
	return ch, nil
}

// noteAdd and noteRemove keep a link's incremental EDF cache in step
// with its task list; Reference mode leaves caches unbuilt.
func (c *Controller) noteAdd(ls *linkState, tk task) {
	if !c.cfg.Reference {
		ls.cache.addTask(ls.tasks, tk)
	}
}

func (c *Controller) noteRemove(ls *linkState, tk task) {
	if !c.cfg.Reference {
		ls.cache.removeTask(ls.tasks, tk)
	}
}

// Teardown releases an admitted channel's resources and invalidates its
// table entries.
func (c *Controller) Teardown(ch *Channel) error {
	if err := c.teardown(ch); err != nil {
		return err
	}
	c.stats.teardowns.Add(1)
	if c.audit != nil {
		c.audit.Record(c.net.Shard(ch.Src), obs.AuditRecord{
			Op: "teardown", Outcome: "released", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
			Margin: float64(ch.Margin),
		})
	}
	return nil
}

func (c *Controller) teardown(ch *Channel) error {
	if _, ok := c.chans[ch.ID]; !ok {
		return fmt.Errorf("admission: channel %d not active", ch.ID)
	}
	c.mut++
	delete(c.chans, ch.ID)
	inj := c.link(linkKey{ch.Src, portInject})
	for i := range inj.tasks {
		if inj.tasks[i].chanID == ch.ID {
			tk := inj.tasks[i]
			inj.tasks = append(inj.tasks[:i], inj.tasks[i+1:]...)
			c.noteRemove(inj, tk)
			break
		}
	}
	for _, h := range ch.hops {
		if err := c.net.Router(h.node).ClearConnection(h.inConn); err != nil {
			return err
		}
		ns := c.node(h.node)
		delete(ns.usedIDs, h.inConn)
		if h.mask.Has(router.PortLocal) {
			delete(ns.usedIDs, h.outConn)
		}
		ns.total -= h.buffers
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] -= h.buffers
				key := linkKey{h.node, p}
				ls := c.link(key)
				for i := range ls.tasks {
					if ls.tasks[i].chanID == ch.ID {
						tk := ls.tasks[i]
						ls.tasks = append(ls.tasks[:i], ls.tasks[i+1:]...)
						c.noteRemove(ls, tk)
						break
					}
				}
			}
		}
	}
	return nil
}

// unwindCommit reverses the hops already committed by admitVia's phase 2
// when a later control write fails: table entries are cleared and the
// resource debits reversed, hop by hop.
func (c *Controller) unwindCommit(ch *Channel) {
	c.mut++
	for _, h := range ch.hops {
		_ = c.net.Router(h.node).ClearConnection(h.inConn)
		ns := c.node(h.node)
		delete(ns.usedIDs, h.inConn)
		if h.mask.Has(router.PortLocal) {
			delete(ns.usedIDs, h.outConn)
		}
		ns.total -= h.buffers
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] -= h.buffers
				ls := c.link(linkKey{h.node, p})
				for i := range ls.tasks {
					if ls.tasks[i].chanID == ch.ID {
						tk := ls.tasks[i]
						ls.tasks = append(ls.tasks[:i], ls.tasks[i+1:]...)
						c.noteRemove(ls, tk)
						break
					}
				}
			}
		}
	}
	ch.hops = nil
}

// restore re-commits a channel's reservations exactly as they were
// before a Teardown, with no feasibility re-check: the resources were
// freed by that Teardown, so they are available by construction. It is
// the mechanical inverse of Teardown and backs the atomicity of Reroute.
func (c *Controller) restore(ch *Channel) error {
	if _, ok := c.chans[ch.ID]; ok {
		return fmt.Errorf("admission: channel %d already active", ch.ID)
	}
	newTask := task{C: ch.Spec.MessageSlots(), T: ch.Spec.Imin, chanID: ch.ID}
	for _, h := range ch.hops {
		if err := c.net.Router(h.node).SetConnection(h.inConn, h.outConn, uint8(h.d), h.mask); err != nil {
			return fmt.Errorf("admission: restoring channel %d at %s: %w", ch.ID, h.node, err)
		}
		ns := c.node(h.node)
		ns.usedIDs[h.inConn] = true
		if h.mask.Has(router.PortLocal) {
			ns.usedIDs[h.outConn] = true
		}
		ns.total += h.buffers
		hopTask := newTask
		hopTask.D = h.d
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] += h.buffers
				ls := c.link(linkKey{h.node, p})
				ls.tasks = append(ls.tasks, hopTask)
				c.noteAdd(ls, hopTask)
			}
		}
	}
	injTask := newTask
	injTask.D = ch.hops[0].d
	inj := c.link(linkKey{ch.Src, portInject})
	inj.tasks = append(inj.tasks, injTask)
	c.noteAdd(inj, injTask)
	c.chans[ch.ID] = ch
	c.stats.restores.Add(1)
	if c.audit != nil {
		c.audit.Record(c.net.Shard(ch.Src), obs.AuditRecord{
			Op: "restore", Outcome: "restored", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
			Route: ch.Route(), LocalD: ch.LocalD, DSplit: dsplitString(ch.DSplit),
			Hops:   ch.Hops(),
			Margin: float64(ch.Margin),
		})
	}
	return nil
}

// Active returns the number of admitted channels.
func (c *Controller) Active() int { return len(c.chans) }

func (c *Controller) link(k linkKey) *linkState {
	i := c.linkIdx(k)
	ls := c.links[i]
	if ls == nil {
		ls = &linkState{}
		if !c.cfg.Reference {
			// Invariant of the incremental mode: every linkState the table
			// holds has a built cache, so concurrent (read-only) batch
			// evaluation never has to build one.
			ls.cache.rebuild(nil)
		}
		c.links[i] = ls
	}
	return ls
}

// linkCheck runs the EDF schedulability analysis for the link with the
// candidate task added; failed links are never feasible and report the
// "link_failed" pseudo-test.
func (c *Controller) linkCheck(k linkKey, cand task) edfReport {
	return c.linkCheckIn(k, cand, &c.sc)
}

// linkCheckIn is linkCheck with an explicit evaluation scratch, so
// AdmitBatch's concurrent planners don't share buffers. It never mutates
// controller state: links with no reservations are analyzed against a
// shared pre-built empty cache instead of materializing a linkState.
func (c *Controller) linkCheckIn(k linkKey, cand task, sc *evalScratch) edfReport {
	i := c.linkIdx(k)
	if c.failed[i] {
		return edfReport{test: "link_failed", margin: -1}
	}
	if c.cfg.Reference {
		ls := c.link(k)
		tasks := make([]task, 0, len(ls.tasks)+1)
		tasks = append(tasks, ls.tasks...)
		tasks = append(tasks, cand)
		return edfAnalyze(tasks)
	}
	ls := c.links[i]
	if ls == nil {
		return sc.emptyCheck(cand)
	}
	return ls.cache.check(ls.tasks, cand, sc)
}

// buffersFit checks the packet-memory reservation at one router for a
// channel using the masked output ports.
func (c *Controller) buffersFit(co mesh.Coord, mask sched.PortMask, need int) error {
	ns := c.node(co)
	slots := ns.slots
	switch c.cfg.Policy {
	case SharedPool:
		if ns.total+need > slots {
			return &ErrBufferExhausted{
				node: c.nodeName(co), port: -1, Used: ns.total, Need: need, Limit: slots,
			}
		}
	default:
		per := slots / router.NumPorts
		for p := 0; p < router.NumPorts; p++ {
			if mask.Has(p) && ns.portBuffers[p]+need > per {
				return &ErrBufferExhausted{
					node: c.nodeName(co), port: p,
					Used: ns.portBuffers[p], Need: need, Limit: per,
				}
			}
		}
	}
	return nil
}

type idPair struct{ in, out uint8 }

// assignIDs picks the connection identifiers along the tree: a router's
// outgoing id must be free as an incoming id at every child router it
// forwards to, because the hardware rewrites one id per entry regardless
// of fan-out. The destination routers' outgoing ids become the local
// delivery ids.
func (c *Controller) assignIDs(nodes []*treeNode) (map[mesh.Coord]idPair, error) {
	byCoord := make(map[mesh.Coord]*treeNode, len(nodes))
	for _, n := range nodes {
		byCoord[n.coord] = n
	}
	ids := make(map[mesh.Coord]idPair, len(nodes))
	// Tentatively claimed incoming ids per coordinate during this
	// assignment (so two children of one parent don't collide with each
	// other before commit).
	claimed := make(map[mesh.Coord]map[uint8]bool)
	claim := func(at mesh.Coord) map[uint8]bool {
		m, ok := claimed[at]
		if !ok {
			m = make(map[uint8]bool)
			claimed[at] = m
		}
		return m
	}
	freeAt := func(at mesh.Coord, id uint8) bool {
		return !c.node(at).usedIDs[id] && !claim(at)[id]
	}
	conns := c.node(nodes[0].coord).conns
	for i, n := range nodes {
		// Incoming id: for the source (depth 0) pick any free id; for
		// others it was fixed by the parent via claimed[].
		var in uint8
		if i == 0 {
			found := false
			for v := 0; v < conns; v++ {
				if freeAt(n.coord, uint8(v)) {
					in = uint8(v)
					found = true
					break
				}
			}
			if !found {
				return nil, &ErrIDExhausted{
					Node: n.coord.String(),
					msg:  fmt.Sprintf("admission: %s out of connection identifiers", n.coord),
				}
			}
			claim(n.coord)[in] = true
		} else {
			pair, ok := ids[n.coord]
			if !ok {
				return nil, fmt.Errorf("admission: internal: child %s visited before parent", n.coord)
			}
			in = pair.in
		}
		// Outgoing id: the hardware rewrites one id per entry, so it must
		// be free as an incoming id at every child router — and, when the
		// local bit is set, free at this node too, because the processor
		// receives it as the delivery identifier and must be able to tell
		// connections apart.
		children := make([]mesh.Coord, 0, 4)
		for p := 0; p < router.NumLinks; p++ {
			if n.mask.Has(p) {
				children = append(children, n.coord.Add(p))
			}
		}
		local := n.mask.Has(router.PortLocal)
		var out uint8
		found := false
		for v := 0; v < conns; v++ {
			if local && !freeAt(n.coord, uint8(v)) {
				continue
			}
			ok := true
			for _, ch := range children {
				if !freeAt(ch, uint8(v)) {
					ok = false
					break
				}
			}
			if ok {
				out = uint8(v)
				found = true
				break
			}
		}
		if !found {
			return nil, &ErrIDExhausted{
				Node: n.coord.String(), Common: true,
				msg: fmt.Sprintf("admission: no common free id across children of %s", n.coord),
			}
		}
		if local {
			claim(n.coord)[out] = true
		}
		for _, chd := range children {
			claim(chd)[out] = true
			ids[chd] = idPair{in: out}
		}
		ids[n.coord] = idPair{in: in, out: out}
	}
	return ids, nil
}

// MarkFailed records a bidirectional link failure so no future channel
// routes across it (pair with mesh.Network.FailLink, which cuts the
// wires). Channels already using the link keep their reservations until
// rerouted or torn down.
func (c *Controller) MarkFailed(from mesh.Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("admission: port %s is not a link", router.PortName(port))
	}
	to := from.Add(port)
	if !c.net.Contains(from) || !c.net.Contains(to) {
		return fmt.Errorf("admission: no link %s→%s", from, router.PortName(port))
	}
	c.mut++
	c.failed[c.linkIdx(linkKey{from, port})] = true
	c.failed[c.linkIdx(linkKey{to, reverse(port)})] = true
	return nil
}

// MarkRepaired clears a previously recorded link failure in both
// directions so future admissions may route across the link again (pair
// with mesh.Network.RepairLink, which restores the wires).
func (c *Controller) MarkRepaired(from mesh.Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("admission: port %s is not a link", router.PortName(port))
	}
	to := from.Add(port)
	if !c.net.Contains(from) || !c.net.Contains(to) {
		return fmt.Errorf("admission: no link %s→%s", from, router.PortName(port))
	}
	c.mut++
	c.failed[c.linkIdx(linkKey{from, port})] = false
	c.failed[c.linkIdx(linkKey{to, reverse(port)})] = false
	return nil
}

// reverse maps a link port to the peer router's port on the same link.
func reverse(port int) int {
	switch port {
	case router.PortXPlus:
		return router.PortXMinus
	case router.PortXMinus:
		return router.PortXPlus
	case router.PortYPlus:
		return router.PortYMinus
	default:
		return router.PortYPlus
	}
}

// Hops returns the number of routers on the channel's deepest branch —
// under single-dimension-order routing, the Manhattan distance to the
// farthest destination plus the source router itself.
func (ch *Channel) Hops() int {
	// A layout-admitted channel's route is explicit and need not be
	// Manhattan-minimal; count its actual hop records (one per traversed
	// router, delivery included).
	if len(ch.DSplit) > 0 {
		return len(ch.hops)
	}
	max := 0
	for _, d := range ch.Dsts {
		h := abs(d.X-ch.Src.X) + abs(d.Y-ch.Src.Y) + 1
		if h > max {
			max = h
		}
	}
	return max
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Bound returns the analytic end-to-end delay bound actually reserved:
// LocalD slots at each traversed router along the deepest branch, or the
// sum of the explicit per-hop split for a layout-admitted channel. It is
// at most the requested Spec.D (decomposition rounds down; layout
// validation enforces Σd_j ≤ D).
func (ch *Channel) Bound() int64 {
	if len(ch.DSplit) > 0 {
		var sum int64
		for _, d := range ch.DSplit {
			sum += d
		}
		return sum
	}
	return ch.LocalD * int64(ch.Hops())
}

// SourceD returns the source router's delay bound — the deadline the
// source regulator paces injections against: DSplit[0] for a
// layout-admitted channel, LocalD otherwise.
func (ch *Channel) SourceD() int64 {
	if len(ch.DSplit) > 0 {
		return ch.DSplit[0]
	}
	return ch.LocalD
}

// HopID identifies one router traversal of an admitted channel: the
// node and the connection ids the packet carries arriving there (In)
// and leaving for the next hop (Out). Observability layers key per-hop
// accounting on (Node, In).
type HopID struct {
	Node mesh.Coord
	In   uint8
	Out  uint8
}

// HopIDs returns the channel's router traversals in breadth-first route
// order, source first. Delivery legs appear with the destination's
// DstConn as Out.
func (ch *Channel) HopIDs() []HopID {
	ids := make([]HopID, len(ch.hops))
	for i, h := range ch.hops {
		ids[i] = HopID{Node: h.node, In: h.inConn, Out: h.outConn}
	}
	return ids
}

// Route renders the channel's route tree hop by hop: each traversed
// router in breadth-first order with the output ports its packets fan
// out on, e.g. "(0,0)[+x] (1,0)[+x local]". Deterministic given the
// same admitted route, so audit lines are byte-stable.
func (ch *Channel) Route() string {
	var b strings.Builder
	var ports []int
	for i, h := range ch.hops {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(h.node.String())
		b.WriteByte('[')
		ports = h.mask.Ports(ports[:0])
		for j, p := range ports {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(router.PortName(p))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Uses reports whether the channel's route crosses the given directed
// link.
func (ch *Channel) Uses(node mesh.Coord, port int) bool {
	for _, h := range ch.hops {
		if h.node == node && h.mask.Has(port) {
			return true
		}
	}
	return false
}

// Reroute re-establishes a channel after a failure (or a repair, for
// failing back to the primary path): its reservations are released and
// admission re-runs, taking the failed-link set and the freed resources
// into account. On success the old channel is invalid and the returned
// one carries fresh connection ids; the caller must re-bind its source
// regulator. On failure the old channel's reservations are restored
// verbatim — per-hop delay split included, so a refused reroute of a
// layout-admitted channel leaves it exactly as it was. A successful
// reroute of a layout channel falls back to the default planner (uniform
// split); re-synthesizing a layout after a failure is the optimizer's
// job, not the control plane's.
func (c *Controller) Reroute(ch *Channel) (*Channel, error) {
	nch, err := c.reroute(ch)
	c.stats.reroutes.Add(1)
	if c.audit != nil {
		rec := obs.AuditRecord{
			Op: "reroute", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
		}
		if err != nil {
			rec.Outcome = "refused"
			rec.Err = err.Error()
			if rej, ok := Explain(err); ok {
				rec.Binding = rej.BindingResource()
				rec.Test = rej.FailingTest()
				rec.Margin = rej.FailMargin()
				rec.Router = rej.Router()
			}
		} else {
			rec.Outcome = "rerouted"
			rec.Channel = nch.ID
			rec.Route = nch.Route()
			rec.LocalD = nch.LocalD
			rec.DSplit = dsplitString(nch.DSplit)
			rec.Hops = nch.Hops()
			rec.Margin = float64(nch.Margin)
		}
		c.audit.Record(c.net.Shard(ch.Src), rec)
	}
	return nch, err
}

func (c *Controller) reroute(ch *Channel) (*Channel, error) {
	if err := c.Teardown(ch); err != nil {
		return nil, err
	}
	nch, err := c.Admit(ch.Src, ch.Dsts, ch.Spec)
	if err != nil {
		if rerr := c.restore(ch); rerr != nil {
			return nil, fmt.Errorf("admission: reroute of channel %d failed (%v) and restore failed: %w", ch.ID, err, rerr)
		}
		return nil, fmt.Errorf("admission: reroute of channel %d: %w", ch.ID, err)
	}
	return nch, nil
}
