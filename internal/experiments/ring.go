package experiments

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// RingResult is the X10 study of the paper's claim that "although the
// implementation is geared toward two-dimensional meshes, the
// architecture directly extends to other network topologies": the
// time-constrained datapath is entirely table-driven, so the same chips
// form a unidirectional ring with no routing changes at all. N routers
// connect +x → −x around the circle; every node opens a channel to the
// node halfway around, the worst-case hop count; all deadlines must
// hold. (Best-effort traffic stays off this topology — its
// dimension-ordered offsets assume a mesh, which is exactly the
// asymmetry the paper's Table 2 sets up.)
type RingResult struct {
	Nodes     int
	Hops      int
	Delivered int64
	Expected  int64
	Misses    int64
	MaxLat    float64
	Budget    float64
}

// ringCollector gathers latencies at every node.
type ringCollector struct {
	rs  []*router.Router
	max float64
	n   int64
}

func (c *ringCollector) Name() string { return "ring-collect" }
func (c *ringCollector) Tick(sim.Cycle) {
	for _, r := range c.rs {
		for _, d := range r.DrainTC() {
			c.n++
			inj, _ := traffic.DecodeProbe(d.Payload[:])
			if inj > 0 && inj <= d.Cycle {
				if lat := float64(d.Cycle - inj); lat > c.max {
					c.max = lat
				}
			}
		}
	}
}

// ringSource injects one packet per period on one connection.
type ringSource struct {
	name   string
	r      *router.Router
	conn   uint8
	period int64
	next   int64
	seq    uint32
}

func (s *ringSource) Name() string { return "ring-src-" + s.name }
func (s *ringSource) Tick(now sim.Cycle) {
	if int64(now) < s.next {
		return
	}
	s.next = int64(now) + s.period*packet.TCBytes
	p := packet.TCPacket{Conn: s.conn, Stamp: packet.StampOf(s.r.SlotNow(int64(now)))}
	traffic.EncodeProbe(p.Payload[:], int64(now), s.seq)
	s.seq++
	s.r.InjectTC(p)
}

// RunRing wires nodes routers into a unidirectional ring and runs
// every-node-to-antipode periodic channels with d slots per hop.
func RunRing(nodes int, dPerHop int64, cycles int64) (*RingResult, error) {
	if nodes < 3 || nodes > 32 {
		return nil, fmt.Errorf("experiments: ring size %d out of [3,32]", nodes)
	}
	hops := nodes / 2
	if dPerHop < 1 || dPerHop*int64(hops+1) >= 128 {
		return nil, fmt.Errorf("experiments: per-hop budget %d infeasible for %d hops", dPerHop, hops)
	}
	if cycles <= 0 {
		return nil, fmt.Errorf("experiments: cycles must be positive")
	}
	k := sim.NewKernel()
	rs := make([]*router.Router, nodes)
	for i := range rs {
		r, err := router.New(fmt.Sprintf("ring%d", i), router.DefaultConfig())
		if err != nil {
			return nil, err
		}
		rs[i] = r
	}
	// The ring: each router's +x output feeds the next router's −x input.
	for i := range rs {
		ch := router.NewChannel(k)
		rs[i].ConnectOut(router.PortXPlus, ch.Out())
		rs[(i+1)%nodes].ConnectIn(router.PortXMinus, ch.In())
	}
	// Channel n: node n → node (n+hops) mod nodes, connection id n at
	// every router (distinct per channel since each node sources one).
	period := int64(4 * hops) // comfortable utilization: hops/(4·hops) per link
	for n := 0; n < nodes; n++ {
		id := uint8(n)
		for h := 0; h < hops; h++ {
			at := rs[(n+h)%nodes]
			if err := at.SetConnection(id, id, uint8(dPerHop), 1<<router.PortXPlus); err != nil {
				return nil, err
			}
		}
		dst := rs[(n+hops)%nodes]
		// Delivery id: reuse the channel id offset into the upper half of
		// the table to avoid clashing with transit entries at that node.
		if err := dst.SetConnection(id, id+128, uint8(dPerHop), 1<<router.PortLocal); err != nil {
			return nil, err
		}
		src := &ringSource{name: fmt.Sprint(n), r: rs[n], conn: id, period: period}
		k.Register(src)
	}
	// Table-index safety: ids are globally unique per channel, and no
	// channel transits its own destination (hops < nodes), so a transit
	// entry and a delivery entry never share an index at one router.
	for _, r := range rs {
		k.Register(r)
	}
	collect := &ringCollector{rs: rs}
	k.Register(collect)
	k.Run(cycles)

	res := &RingResult{
		Nodes:  nodes,
		Hops:   hops,
		MaxLat: collect.max,
		Budget: missBound(dPerHop * int64(hops+1)),
	}
	res.Delivered = collect.n
	// The final period's packets may still be in flight at cutoff.
	res.Expected = int64(nodes) * (cycles/(period*packet.TCBytes) - 1)
	for _, r := range rs {
		res.Misses += r.Stats.TCDeadlineMisses
	}
	return res, nil
}

// Table renders the study.
func (r *RingResult) Table() *Table {
	t := &Table{
		Title:  "X10 — table-driven routing beyond the mesh: unidirectional ring (conclusion's topology claim)",
		Header: []string{"nodes", "hops/channel", "delivered", "expected≥", "worst latency (cyc)", "budget (cyc)", "misses"},
	}
	t.AddRow(di(r.Nodes), di(r.Hops), d(r.Delivered), d(r.Expected),
		f1(r.MaxLat), f1(r.Budget), d(r.Misses))
	t.AddNote("no routing logic changed: connection tables express the ring; BE stays mesh-only (Table 2)")
	return t
}
