package fault

import (
	"bytes"
	"testing"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sched"
)

func integrityCfg() router.Config {
	cfg := router.DefaultConfig()
	cfg.Integrity = true
	return cfg
}

func maskOf(port int) sched.PortMask { return sched.PortMask(1 << port) }

// TestBECorruptRetransmit drives best-effort frames across a corrupting
// link; the nack/retransmit machinery must deliver every byte intact.
func TestBECorruptRetransmit(t *testing.T) {
	n := mesh.MustNew(2, 1, integrityCfg())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	in := New(7)
	if err := in.InjectLink(n, src, router.PortXPlus, Config{Kind: Corrupt, Rate: 0.05}); err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		payload := bytes.Repeat([]byte{byte(i + 1)}, 40)
		want = append(want, payload)
		frame, err := packet.NewBE(1, 0, payload)
		if err != nil {
			t.Fatal(err)
		}
		n.Router(src).InjectBE(frame)
	}
	n.Run(20000)
	got := n.Router(dst).DrainBE()
	if len(got) != len(want) {
		t.Fatalf("delivered %d/%d frames (stats rx=%+v)", len(got), len(want), n.Router(dst).Stats)
	}
	for i, d := range got {
		if !bytes.Equal(d.Payload, want[i]) {
			t.Errorf("frame %d corrupted end-to-end", i)
		}
	}
	rx := n.Router(dst).Stats
	tx := n.Router(src).Stats
	if rx.BEFlitNacks == 0 {
		t.Error("no nacks despite corruption")
	}
	if tx.BEFlitRetransmits == 0 {
		t.Error("no retransmissions despite nacks")
	}
	if in.Stats().CorruptedPhits == 0 {
		t.Error("injector reports no corruption")
	}
}

// TestBELoseRecovers covers the Lose kind on best-effort traffic (loss
// is modelled as mangling, so the same nack path recovers it).
func TestBELoseRecovers(t *testing.T) {
	n := mesh.MustNew(2, 1, integrityCfg())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	in := New(11)
	if err := in.InjectLink(n, src, router.PortXPlus, Config{Kind: Lose, Rate: 0.03, Burst: 2}); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xA5}, 200)
	frame, err := packet.NewBE(1, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	n.Router(src).InjectBE(frame)
	n.Run(20000)
	got := n.Router(dst).DrainBE()
	if len(got) != 1 || !bytes.Equal(got[0].Payload, payload) {
		t.Fatalf("frame not recovered: %d delivered, rx=%+v", len(got), n.Router(dst).Stats)
	}
	if in.Stats().LostPhits == 0 {
		t.Error("injector reports no losses")
	}
}

// TestTCCorruptDropped: corrupted time-constrained packets must be
// dropped at the receiving input, never delivered garbled, and counted.
func TestTCCorruptDropped(t *testing.T) {
	n := mesh.MustNew(2, 1, integrityCfg())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	in := New(3)
	if err := in.InjectLink(n, src, router.PortXPlus, Config{Kind: Corrupt, Rate: 0.08}); err != nil {
		t.Fatal(err)
	}
	if err := n.Router(src).SetConnection(1, 2, 10, maskOf(router.PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := n.Router(dst).SetConnection(2, 9, 10, maskOf(router.PortLocal)); err != nil {
		t.Fatal(err)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		var p packet.TCPacket
		p.Conn = 1
		for j := range p.Payload {
			p.Payload[j] = byte(i)
		}
		n.Router(src).InjectTC(p)
		n.Run(5 * packet.TCBytes)
	}
	n.Run(5000)
	rx := n.Router(dst).Stats
	for _, d := range n.Router(dst).DrainTC() {
		for _, b := range d.Payload {
			if b != d.Payload[0] {
				t.Fatal("garbled packet delivered")
			}
		}
	}
	if rx.TCCorruptDrops == 0 {
		t.Errorf("no corrupt drops at %v%% phit error rate", 8)
	}
	if got := rx.TCDelivered + rx.TCCorruptDrops + rx.TCFramingDrops; got != sent {
		t.Errorf("conservation: delivered %d + corrupt %d + framing %d = %d, want %d",
			rx.TCDelivered, rx.TCCorruptDrops, rx.TCFramingDrops, got, sent)
	}
	if n.Router(dst).FreeSlots() != integrityCfg().Slots {
		t.Error("slot leaked through corrupt drops")
	}
}

// TestTCLoseDetected: erased time-constrained phits break framing; the
// receiver must resynchronize and count exactly one drop per lost
// packet.
func TestTCLoseDetected(t *testing.T) {
	n := mesh.MustNew(2, 1, integrityCfg())
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	in := New(5)
	if err := in.InjectLink(n, src, router.PortXPlus, Config{Kind: Lose, Rate: 0.05}); err != nil {
		t.Fatal(err)
	}
	if err := n.Router(src).SetConnection(1, 2, 10, maskOf(router.PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := n.Router(dst).SetConnection(2, 9, 10, maskOf(router.PortLocal)); err != nil {
		t.Fatal(err)
	}
	const sent = 200
	for i := 0; i < sent; i++ {
		n.Router(src).InjectTC(packet.TCPacket{Conn: 1})
		n.Run(5 * packet.TCBytes)
	}
	n.Run(5000)
	rx := n.Router(dst).Stats
	if rx.TCFramingDrops == 0 {
		t.Error("no framing drops despite phit loss")
	}
	// Lost phits strand at most one partial assembly at exit; everything
	// else is delivered or counted.
	accounted := rx.TCDelivered + rx.TCCorruptDrops + rx.TCFramingDrops
	if accounted != sent && accounted != sent-1 {
		t.Errorf("conservation: accounted %d of %d", accounted, sent)
	}
	if n.Router(dst).FreeSlots() != integrityCfg().Slots {
		t.Error("slot leaked through framing drops")
	}
}

// TestDeterministicFromSeed: identical seeds must produce bit-identical
// outcomes; a different seed must place faults differently.
func TestDeterministicFromSeed(t *testing.T) {
	run := func(seed int64) (router.Stats, Stats) {
		n := mesh.MustNew(2, 1, integrityCfg())
		src := mesh.Coord{X: 0, Y: 0}
		in := New(seed)
		if err := in.InjectLink(n, src, router.PortXPlus, Config{Kind: Corrupt, Rate: 0.02, Burst: 3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			frame, err := packet.NewBE(1, 0, bytes.Repeat([]byte{byte(i)}, 64))
			if err != nil {
				t.Fatal(err)
			}
			n.Router(src).InjectBE(frame)
		}
		n.Run(15000)
		return n.Router(mesh.Coord{X: 1, Y: 0}).Stats, in.Stats()
	}
	a1, i1 := run(42)
	a2, i2 := run(42)
	if a1 != a2 || i1 != i2 {
		t.Errorf("same seed diverged: %+v vs %+v (%+v vs %+v)", a1, a2, i1, i2)
	}
	b, ib := run(43)
	if i1 == ib && a1 == b {
		t.Error("different seeds produced identical fault placement")
	}
}

// TestConfigValidate pins the configuration contract.
func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{Kind: Corrupt, Rate: 0},
		{Kind: Corrupt, Rate: 1},
		{Kind: Lose, Rate: -0.1},
		{Kind: Kind(9), Rate: 0.1},
		{Kind: Corrupt, Rate: 0.1, Burst: -1},
	} {
		if bad.Validate() == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	if err := (Config{Kind: Lose, Rate: 0.5, Burst: 4}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if Corrupt.String() != "corrupt" || Lose.String() != "lose" {
		t.Error("kind labels wrong")
	}
}

// TestInjectLinkErrors pins the attachment contract.
func TestInjectLinkErrors(t *testing.T) {
	n := mesh.MustNew(2, 1, integrityCfg())
	in := New(1)
	good := Config{Kind: Corrupt, Rate: 0.1}
	if err := in.InjectLink(n, mesh.Coord{X: 0, Y: 0}, router.PortLocal, good); err == nil {
		t.Error("local port accepted as a link")
	}
	if err := in.InjectLink(n, mesh.Coord{X: 1, Y: 0}, router.PortXPlus, good); err == nil {
		t.Error("edge link with no neighbour accepted")
	}
	if err := in.InjectLink(n, mesh.Coord{X: 0, Y: 0}, router.PortXPlus, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
	if err := in.InjectAll(n, good); err != nil {
		t.Errorf("InjectAll on a valid mesh: %v", err)
	}
}
