package sim

import (
	"fmt"
	"testing"
)

// TestPipeSemantics pins the delay-line contract: a value written at t
// arrives exactly at t+latency, for that one cycle only, and a latency-1
// pipe behaves like the single-edge Reg wire.
func TestPipeSemantics(t *testing.T) {
	for _, lat := range []int64{1, 2, 4, 7} {
		p := NewPipe[int](lat)
		if p.Latency() != lat {
			t.Fatalf("latency %d reported as %d", lat, p.Latency())
		}
		p.Write(10, 42)
		for c := Cycle(10); c < Cycle(10+2*lat+2); c++ {
			got := p.Read(c)
			want := 0
			if c == Cycle(10+lat) {
				want = 42
			}
			if got != want {
				t.Fatalf("lat %d: read at %d = %d, want %d", lat, c, got, want)
			}
		}
	}
	if NewPipe[int](3).NextStamp(0) != Never {
		t.Fatal("empty pipe reports pending arrival")
	}
	p := NewPipe[int](4)
	p.Write(5, 1)
	if got := p.NextStamp(0); got != 9 {
		t.Fatalf("NextStamp = %d, want 9", got)
	}
	if p.HasStampIn(5, 9) {
		t.Fatal("HasStampIn [5,9) true, arrival is at 9")
	}
	if !p.HasStampIn(9, 10) {
		t.Fatal("HasStampIn [9,10) false, arrival is at 9")
	}
}

// TestEpochLegality pins the clamp rules: the effective epoch is the
// requested length bounded by the minimum cross-shard pipe latency;
// same-shard wires are exempt; unknown-shard wires, 1-cycle wires,
// latches, and barrier components all force per-cycle stepping.
func TestEpochLegality(t *testing.T) {
	mk := func() *Kernel {
		k := NewKernel()
		k.RegisterShard(0, &funcComp{"a", func(Cycle) {}})
		k.RegisterShard(1, &funcComp{"b", func(Cycle) {}})
		return k
	}

	k := mk()
	k.AttachPipe(NewPipe[int](4), 0, 1)
	k.SetEpoch(8)
	if got := k.EffectiveEpoch(); got != 4 {
		t.Fatalf("cross-shard latency 4: effective epoch %d, want 4", got)
	}

	// A same-shard wire of any latency never constrains the epoch.
	k.AttachPipe(NewPipe[int](1), 1, 1)
	if got := k.EffectiveEpoch(); got != 4 {
		t.Fatalf("same-shard 1-cycle wire clamped epoch to %d", got)
	}

	// A 1-cycle cross-shard wire refuses any epoch beyond 1.
	k.AttachPipe(NewPipe[int](1), 1, 0)
	if got := k.EffectiveEpoch(); got != 1 {
		t.Fatalf("1-cycle cross-shard wire: effective epoch %d, want 1", got)
	}

	// Unknown endpoint shards must be treated as cross-shard.
	k = mk()
	k.AttachPipe(NewPipe[int](4), 0, 1)
	k.AttachPipe(NewPipe[int](2), -1, -1)
	k.SetEpoch(8)
	if got := k.EffectiveEpoch(); got != 2 {
		t.Fatalf("unknown-shard latency 2: effective epoch %d, want 2", got)
	}

	// Latches need their commit every edge.
	k = mk()
	k.AttachPipe(NewPipe[int](4), 0, 1)
	k.AddLatch(NewReg[int]())
	k.SetEpoch(4)
	if got := k.EffectiveEpoch(); got != 1 {
		t.Fatalf("latched kernel: effective epoch %d, want 1", got)
	}

	// Barrier components need the per-cycle rendezvous.
	k = mk()
	k.AttachPipe(NewPipe[int](4), 0, 1)
	k.Register(&funcComp{"barrier", func(Cycle) {}})
	k.SetEpoch(4)
	if got := k.EffectiveEpoch(); got != 1 {
		t.Fatalf("barrier kernel: effective epoch %d, want 1", got)
	}

	// The request itself is respected when lower than the wires allow.
	k = mk()
	k.AttachPipe(NewPipe[int](8), 0, 1)
	k.SetEpoch(2)
	if got := k.EffectiveEpoch(); got != 2 {
		t.Fatalf("requested 2 under latency 8: effective epoch %d", got)
	}
}

// TestEpochMidRunBarrierFlush: registering a barrier component mid-run
// collapses the effective epoch before the next Run iteration, so the
// new component never misses a rendezvous.
func TestEpochMidRunBarrierFlush(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(2)
	k.ForcePool(true)
	defer k.Close()
	k.RegisterShard(0, &funcComp{"a", func(Cycle) {}})
	k.RegisterShard(1, &funcComp{"b", func(Cycle) {}})
	k.AttachPipe(NewPipe[int](4), 0, 1)
	k.SetEpoch(4)
	k.Run(8)
	if got := k.EffectiveEpoch(); got != 4 {
		t.Fatalf("effective epoch %d before barrier, want 4", got)
	}
	var ticks []Cycle
	k.Register(&funcComp{"late-barrier", func(now Cycle) { ticks = append(ticks, now) }})
	if got := k.EffectiveEpoch(); got != 1 {
		t.Fatalf("effective epoch %d after barrier, want 1", got)
	}
	k.Run(4)
	if len(ticks) != 4 {
		t.Fatalf("late barrier ticked %d times in 4 cycles, want 4", len(ticks))
	}
	for i, c := range ticks {
		if c != Cycle(8+i) {
			t.Fatalf("late barrier tick %d at cycle %d, want %d", i, c, 8+i)
		}
	}
}

// pipeStage is a ring stage coupled through delay-line wires: an
// arriving token with remaining hop budget is recorded and forwarded
// with the budget decremented. Between tokens the stage is pure, which
// its Skipper view reports.
type pipeStage struct {
	name    string
	in, out *Pipe[int]
	seen    []string
}

func (s *pipeStage) Name() string { return s.name }
func (s *pipeStage) Tick(now Cycle) {
	if v := s.in.Read(now); v > 0 {
		s.seen = append(s.seen, fmt.Sprintf("@%d:%d", now, v))
		s.out.Write(now, v-1)
	}
}
func (s *pipeStage) NextWork(now Cycle) Cycle { return Never }
func (s *pipeStage) Skip(now, target Cycle)   {}

// pipeDriver injects a fresh token into the ring every period cycles.
type pipeDriver struct {
	out    *Pipe[int]
	period int64
	count  int64
}

func (d *pipeDriver) Name() string { return "driver" }
func (d *pipeDriver) Tick(now Cycle) {
	if int64(now)%d.period == 0 {
		d.out.Write(now, 9)
		d.count++
	}
}
func (d *pipeDriver) NextWork(now Cycle) Cycle {
	if int64(now)%d.period == 0 {
		return now
	}
	return now + Cycle(d.period-int64(now)%d.period)
}
func (d *pipeDriver) Skip(now, target Cycle) {}

// buildPipeRing wires n stages into a ring of pipes with the given
// latency, one shard per stage, driven from stage 0's shard.
func buildPipeRing(k *Kernel, n int, lat int64) []*pipeStage {
	wires := make([]*Pipe[int], n)
	for i := range wires {
		wires[i] = NewPipe[int](lat)
	}
	stages := make([]*pipeStage, n)
	for i := range stages {
		stages[i] = &pipeStage{name: "stage", in: wires[i], out: wires[(i+1)%n]}
	}
	// Stage i reads wire i (written by stage i-1 in shard i-1).
	for i := range wires {
		k.AttachPipe(wires[i], (i-1+n)%n, i)
	}
	k.RegisterShard(0, &pipeDriver{out: wires[0], period: 37})
	// The driver shares stage n-1's output wire into shard 0; re-attach
	// it as unknown-writer? No: the driver writes wire 0 from shard 0
	// while stage n-1 also writes it cross-shard — the wire is already
	// attached with the cross-shard (slower) endpoint, which is the
	// conservative direction.
	for i, s := range stages {
		k.RegisterShard(i, s)
	}
	return stages
}

// TestEpochEquivalence is the kernel-level bit-identity contract: a
// pipe-coupled ring produces identical per-stage histories whether it
// runs sequentially, per-cycle parallel, or epoch-synchronized, at any
// worker count and epoch length the wires allow.
func TestEpochEquivalence(t *testing.T) {
	const n, lat, cycles = 12, 4, 600
	ref := NewKernel()
	refStages := buildPipeRing(ref, n, lat)
	ref.Run(cycles)

	for _, workers := range []int{1, 2, 4} {
		for _, epoch := range []int64{1, 2, 4} {
			k := NewKernel()
			stages := buildPipeRing(k, n, lat)
			k.SetWorkers(workers)
			k.ForcePool(workers > 1)
			k.SetEpoch(epoch)
			if workers > 1 {
				want := epoch
				if got := k.EffectiveEpoch(); got != want {
					t.Fatalf("workers %d epoch %d: effective %d", workers, epoch, got)
				}
			}
			k.Run(cycles)
			k.Close()
			if k.Now() != ref.Now() {
				t.Fatalf("workers %d epoch %d: clock at %d, want %d", workers, epoch, k.Now(), ref.Now())
			}
			for i := range stages {
				if len(stages[i].seen) != len(refStages[i].seen) {
					t.Fatalf("workers %d epoch %d stage %d: %d events, want %d",
						workers, epoch, i, len(stages[i].seen), len(refStages[i].seen))
				}
				for j := range stages[i].seen {
					if stages[i].seen[j] != refStages[i].seen[j] {
						t.Fatalf("workers %d epoch %d stage %d event %d: %q vs %q",
							workers, epoch, i, j, stages[i].seen[j], refStages[i].seen[j])
					}
				}
			}
		}
	}
}

// skipComp has an observable per-cycle side effect (a tick counter) and
// a closed-form Skip; it works only every period-th cycle.
type skipComp struct {
	period  int64
	ticks   int64
	works   int64
	skips   int64
	skipped int64
}

func (s *skipComp) Name() string { return "skipper" }
func (s *skipComp) Tick(now Cycle) {
	s.ticks++
	if int64(now)%s.period == 0 {
		s.works++
	}
}
func (s *skipComp) NextWork(now Cycle) Cycle {
	if int64(now)%s.period == 0 {
		return now
	}
	return now + Cycle(s.period-int64(now)%s.period)
}
func (s *skipComp) Skip(now, target Cycle) {
	s.skips++
	s.skipped += int64(target - now)
	s.ticks += int64(target - now)
}

// TestQuiescenceSkip: when every component can fast-forward, Run jumps
// the idle gaps — and the replayed state is identical to stepping every
// cycle.
func TestQuiescenceSkip(t *testing.T) {
	const cycles = 1000
	ref := NewKernel()
	refComps := []*skipComp{{period: 7}, {period: 13}}
	for i, c := range refComps {
		ref.RegisterShard(i, c)
	}
	for i := int64(0); i < cycles; i++ {
		ref.Step() // Step never skips
	}

	k := NewKernel()
	comps := []*skipComp{{period: 7}, {period: 13}}
	for i, c := range comps {
		k.RegisterShard(i, c)
	}
	k.Run(cycles)
	if k.Now() != ref.Now() {
		t.Fatalf("clock at %d, want %d", k.Now(), ref.Now())
	}
	for i := range comps {
		if comps[i].ticks != refComps[i].ticks || comps[i].works != refComps[i].works {
			t.Fatalf("comp %d: ticks %d works %d, want ticks %d works %d",
				i, comps[i].ticks, comps[i].works, refComps[i].ticks, refComps[i].works)
		}
		if comps[i].skips == 0 {
			t.Fatalf("comp %d: quiescence skip never engaged", i)
		}
	}

}

// TestSkipRespectsPipeArrivals: the whole-system jump stops at a wire
// delivery so the receiving component ticks exactly on the arrival
// cycle.
func TestSkipRespectsPipeArrivals(t *testing.T) {
	k := NewKernel()
	var seen []Cycle
	p := NewPipe[int](16)
	recv := &funcSkipComp{
		tick: func(now Cycle) {
			if p.Read(now) != 0 {
				seen = append(seen, now)
			}
		},
		next: func(now Cycle) Cycle { return Never },
	}
	k.RegisterShard(0, recv)
	k.AttachPipe(p, 0, 0)
	p.Write(0, 7)
	k.Run(100)
	if len(seen) != 1 || seen[0] != 16 {
		t.Fatalf("arrival observed at %v, want exactly [16]", seen)
	}
}

// funcSkipComp adapts closures into a Skipper for tests.
type funcSkipComp struct {
	tick func(Cycle)
	next func(Cycle) Cycle
}

func (f *funcSkipComp) Name() string { return "funcskip" }
func (f *funcSkipComp) Tick(now Cycle) {
	if f.tick != nil {
		f.tick(now)
	}
}
func (f *funcSkipComp) NextWork(now Cycle) Cycle { return f.next(now) }
func (f *funcSkipComp) Skip(now, target Cycle)   {}
