package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLayoutCampaign runs the synthesis campaign on a small mesh: every
// check — ledger conservation on both runs, synth ≥ greedy, and the
// Reference-mode shadow re-validation — must pass, and the report
// surfaces must render.
func TestLayoutCampaign(t *testing.T) {
	res, err := RunLayout(5, 5, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	if !res.OK() {
		t.Fatal("campaign not OK")
	}
	if res.Requests != defaultLayoutRequests(5, 5) {
		t.Errorf("requests defaulted to %d, want %d", res.Requests, defaultLayoutRequests(5, 5))
	}
	for _, f := range res.Families {
		if f.GreedyAdmitted <= 0 || f.SynthAdmitted <= 0 {
			t.Errorf("family %s admitted nothing (greedy %d, synth %d)", f.Name, f.GreedyAdmitted, f.SynthAdmitted)
		}
		if f.SynthAdmitted < f.GreedyAdmitted {
			t.Errorf("family %s: synthesized %d < greedy %d", f.Name, f.SynthAdmitted, f.GreedyAdmitted)
		}
		if !f.ShadowAgreed {
			t.Errorf("family %s: reference shadow diverged", f.Name)
		}
		if lines := strings.Count(f.GreedyRejectHeat, "\n"); lines != 5 {
			t.Errorf("family %s rejection heatmap has %d rows, want 5:\n%s", f.Name, lines, f.GreedyRejectHeat)
		}
		if f.Snapshot == nil || len(f.Snapshot.Links) == 0 {
			t.Errorf("family %s sealed an empty synthesized ledger", f.Name)
		}
	}
	if res.Table() == nil {
		t.Error("nil summary table")
	}
}

// TestLayoutBaselineRoundTrip archives a campaign's rows, reloads them,
// and checks the diff against itself is clean while a doctored baseline
// trips the regression check.
func TestLayoutBaselineRoundTrip(t *testing.T) {
	res, err := RunLayout(4, 4, 24, nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_layout.json")
	blob, err := json.Marshal(map[string]any{
		"benchmark": "layout_synthesis",
		"mesh":      "4x4",
		"requests":  res.Requests,
		"rows":      res.BaselineRows(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadLayoutBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	deltas := res.Diff(base)
	if len(deltas) != len(res.Families) {
		t.Fatalf("diff covers %d families, want %d", len(deltas), len(res.Families))
	}
	for _, d := range deltas {
		if !d.SameShape {
			t.Errorf("family %s: same-run diff reports a shape mismatch", d.Family)
		}
		if d.SynthDrift != 0 || d.GreedyDrift != 0 {
			t.Errorf("family %s: self-diff drifted (greedy %+d, synth %+d)", d.Family, d.GreedyDrift, d.SynthDrift)
		}
	}
	if err := CheckLayoutRegression(deltas, 0.01); err != nil {
		t.Errorf("self-diff failed the regression check: %v", err)
	}

	// Doctor the baseline: same shape with different counts must trip
	// the determinism contract.
	doctored := *base
	doctored.Rows = append([]LayoutBaselineRow(nil), base.Rows...)
	doctored.Rows[0].SynthAdmitted += 3
	if err := CheckLayoutRegression(res.Diff(&doctored), 0.5); err == nil {
		t.Error("doctored same-shape baseline passed the regression check")
	}
}
