package admission

// edfFeasible decides whether a set of sporadic connections is
// schedulable on one link under the deadline-driven discipline the
// router implements. Each task demands C slots every T slots with
// relative deadline D (all in slots, all < 128 by the rollover
// constraint).
//
// The test is the processor-demand criterion for sporadic tasks under
// EDF: the link is feasible iff utilization does not exceed one and, for
// every absolute deadline t up to the analysis bound,
//
//	dbf(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1)·C_i ≤ t.
//
// Early traffic served under the horizon parameter is work performed
// ahead of the EDF schedule on an otherwise idle link, so it never
// increases any dbf term; horizons affect buffer bounds (rtc.BufferBound)
// but not this test.
//
// With utilization ≤ 1, violations occur only inside the first busy
// period, whose length is bounded by Σ C_i / (1 − U); the test caps the
// bound at a hyper-horizon sufficient for the router's 7-bit parameter
// range and rejects (conservatively) anything that would need more.
func edfFeasible(tasks []task) bool {
	if len(tasks) == 0 {
		return true
	}
	var sumC int64
	var util float64
	for _, tk := range tasks {
		if tk.C < 1 || tk.T < 1 || tk.D < 1 {
			return false
		}
		if tk.C > tk.D {
			return false // a message cannot finish inside its own bound
		}
		sumC += tk.C
		util += float64(tk.C) / float64(tk.T)
	}
	if util > 1.0+1e-9 {
		return false
	}
	limit := busyPeriodBound(tasks, sumC, util)
	// Check dbf at every step point t = D_i + k·T_i ≤ limit.
	for _, tk := range tasks {
		for t := tk.D; t <= limit; t += tk.T {
			if demandAt(tasks, t) > t {
				return false
			}
		}
	}
	return true
}

// maxAnalysisHorizon caps the busy-period bound. Task parameters are
// < 128 slots, so even dense task sets converge well inside this window;
// sets that would need more are rejected as unanalyzable.
const maxAnalysisHorizon = 1 << 16

func busyPeriodBound(tasks []task, sumC int64, util float64) int64 {
	var maxD int64
	for _, tk := range tasks {
		if tk.D > maxD {
			maxD = tk.D
		}
	}
	if util >= 1.0-1e-9 {
		// Fully loaded: fall back to the capped hyper-horizon.
		return maxAnalysisHorizon
	}
	bp := int64(float64(sumC)/(1.0-util)) + 1
	if bp < maxD {
		bp = maxD
	}
	if bp > maxAnalysisHorizon {
		bp = maxAnalysisHorizon
	}
	return bp
}

// demandAt computes dbf(t).
func demandAt(tasks []task, t int64) int64 {
	var sum int64
	for _, tk := range tasks {
		if t < tk.D {
			continue
		}
		n := (t-tk.D)/tk.T + 1
		sum += n * tk.C
	}
	return sum
}
