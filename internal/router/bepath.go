package router

import (
	"repro/internal/metrics"
	"repro/internal/packet"
)

// beInput is the best-effort wormhole receive engine of one input source:
// a small flit buffer (10 bytes in the paper), header capture for
// dimension-ordered routing, and a single output binding held from header
// to tail (wormhole packets do not interleave within a virtual channel).
// Arriving best-effort flits are covered by the credits this router
// granted upstream; every flit consumed from the buffer returns one
// credit on the reverse acknowledgement wire.
type beInput struct {
	r  *Router
	id int // 0..3 mesh links, 4 injection

	// buf is the flit buffer (raw bytes as received, header included).
	// It is head-indexed: pop advances bufHead and push compacts the
	// consumed prefix when full, so the small backing array is reused
	// instead of regrown on every slide.
	buf     []byte
	bufHead int

	// current packet parse/forward state
	parsed   bool
	hdr      packet.BEHeader
	nextHdr  [packet.BEHeaderBytes]byte
	outPort  int
	fwdIdx   int // bytes of the current packet already forwarded
	bound    bool
	dropping bool // misrouted packet being consumed and discarded

	// readyAt gates the head flit: byte synchronization and chunk
	// accumulation for the internal bus cost BEHeadDelay cycles per hop.
	readyAt int64

	// consumed counts flits removed from the buffer this cycle; each one
	// returns a credit upstream (mesh links only).
	consumed int

	// Integrity receive state (mesh links only). discard marks the engine
	// rejecting flits after a checksum failure until the sender's
	// retransmission run arrives (its first flit carries Rexmit);
	// nackPending is a nack awaiting the next reverse-ack edge. Rejected
	// flits never enter the buffer but still return their credit, so the
	// credit loop stays conserved through an error episode.
	discard     bool
	nackPending bool

	// injection source (id 4 only): queued packets stream into the flit
	// buffer at link rate. Head-indexed like buf; fully streamed frames
	// are recycled to the router's frame pool.
	injQ    [][]byte
	injHead int
	injPos  int
}

// occ is the number of unconsumed bytes in the flit buffer.
func (u *beInput) occ() int { return len(u.buf) - u.bufHead }

// push appends one byte, reclaiming consumed head space instead of
// growing the backing array.
func (u *beInput) push(b byte) {
	if len(u.buf) == cap(u.buf) && u.bufHead > 0 {
		n := copy(u.buf, u.buf[u.bufHead:])
		u.buf = u.buf[:n]
		u.bufHead = 0
	}
	u.buf = append(u.buf, b)
}

// inject queues one encoded frame behind the injection port.
func (u *beInput) inject(frame []byte) {
	if u.injHead > 0 && len(u.injQ) == cap(u.injQ) {
		n := copy(u.injQ, u.injQ[u.injHead:])
		for i := n; i < len(u.injQ); i++ {
			u.injQ[i] = nil
		}
		u.injQ = u.injQ[:n]
		u.injHead = 0
	}
	u.injQ = append(u.injQ, frame)
}

// acceptByte receives one best-effort flit from the wire.
func (u *beInput) acceptByte(b byte) {
	if u.occ() >= u.r.cfg.FlitBufBytes {
		// Credits make this unreachable from a correct upstream; count it
		// as a protocol violation rather than silently growing the buffer.
		u.r.Stats.BEBufferOverruns++
		u.r.dropBE(metrics.DropBEOverrun, u.id)
		return
	}
	u.push(b)
}

// acceptWireBE receives one best-effort flit from the wire with
// integrity checking: the flit's sideband carries its checksum, and a
// mismatch nacks the sender into a retransmission (go-back-N over the
// two-cycle link turnaround) while this engine discards everything
// until the retransmission run arrives.
func (u *beInput) acceptWireBE(ph packet.Phit) {
	ok := ph.SideValid && ph.Side == packet.CRC8Update(0, ph.Data)
	if u.discard {
		if !ph.Rexmit || !ok {
			u.consumed++ // discarded flits still return their credit
			if ph.Rexmit {
				// The retransmission itself arrived corrupt: nack again.
				u.nack()
			}
			return
		}
		u.discard = false
	} else if !ok {
		u.consumed++
		u.discard = true
		u.nack()
		return
	}
	u.acceptByte(ph.Data)
}

func (u *beInput) nack() {
	u.nackPending = true
	u.r.Stats.BEFlitNacks++
	if u.r.met != nil {
		u.r.met.BEFlitNacks.Inc()
	}
}

// abortRecv handles an Abort tail flit: the upstream router gave up on
// the frame (its own upstream link died, or the retry budget ran out),
// so the partial copy here is dropped and the abort propagates to
// wherever this engine had already forwarded bytes. The frame is
// counted once, at the router that originated the abort — this side
// only records the drop reason.
func (u *beInput) abortRecv() {
	u.consumed++ // the abort flit spent a credit; return it
	u.r.dropBE(metrics.DropBEAborted, u.id)
	u.discardFrame()
}

// feedInjection streams one byte of the oldest queued packet into the
// flit buffer, modelling the injection port crossing at link rate.
func (u *beInput) feedInjection() {
	if u.injHead == len(u.injQ) || u.occ() >= u.r.cfg.FlitBufBytes {
		return
	}
	pkt := u.injQ[u.injHead]
	u.push(pkt[u.injPos])
	u.injPos++
	if u.injPos == len(pkt) {
		u.r.recycleBEFrame(pkt)
		u.injQ[u.injHead] = nil
		u.injHead++
		u.injPos = 0
		if u.injHead == len(u.injQ) {
			u.injQ = u.injQ[:0]
			u.injHead = 0
		}
	}
}

// parse decodes the routing header once its four bytes are buffered and
// computes the output port and the rewritten next-hop header.
func (u *beInput) parse() {
	if u.parsed || u.occ() < packet.BEHeaderBytes {
		return
	}
	u.hdr = packet.DecodeBEHeader(u.buf[u.bufHead : u.bufHead+packet.BEHeaderBytes])
	if u.hdr.Len < packet.BEHeaderBytes {
		// Malformed length; consume just the header and move on.
		u.r.Stats.BEMalformed++
		u.hdr.Len = packet.BEHeaderBytes
	}
	next := u.hdr
	switch {
	case u.hdr.XOff > 0:
		u.outPort = PortXPlus
		next.XOff--
	case u.hdr.XOff < 0:
		u.outPort = PortXMinus
		next.XOff++
	case u.hdr.YOff > 0:
		u.outPort = PortYPlus
		next.YOff--
	case u.hdr.YOff < 0:
		u.outPort = PortYMinus
		next.YOff++
	default:
		u.outPort = PortLocal
	}
	packet.EncodeBEHeader(next, u.nextHdr[:])
	u.parsed = true
	u.fwdIdx = 0
	u.readyAt = u.r.nowCycle + int64(u.r.cfg.BEHeadDelay)
	if u.outPort != PortLocal && u.r.out[u.outPort] == nil {
		// No neighbour in that direction: a routing error (dimension
		// order keeps in-mesh destinations on existing links). Consume
		// and discard the packet.
		u.dropping = true
		u.r.Stats.BEMisroutes++
		u.r.dropBE(metrics.DropBEMisroute, u.outPort)
	}
}

// hasByte reports whether the engine can supply a byte to its output.
func (u *beInput) hasByte() bool {
	return u.parsed && u.occ() > 0 && u.r.nowCycle >= u.readyAt
}

// pop removes the next byte of the current packet, substituting the
// rewritten header for the first four bytes, and reports head/tail.
func (u *beInput) pop() (b byte, head, tail bool) {
	b = u.buf[u.bufHead]
	if u.fwdIdx < packet.BEHeaderBytes {
		b = u.nextHdr[u.fwdIdx]
	}
	u.bufHead++
	if u.bufHead == len(u.buf) {
		u.buf = u.buf[:0]
		u.bufHead = 0
	}
	u.consumed++
	head = u.fwdIdx == 0
	u.fwdIdx++
	tail = u.fwdIdx == int(u.hdr.Len)
	if tail {
		u.parsed = false
		u.bound = false
		u.dropping = false
	}
	return b, head, tail
}

// drainDropped consumes one byte per cycle of a misrouted packet.
func (u *beInput) drainDropped() {
	if !u.dropping || u.occ() == 0 {
		return
	}
	u.pop()
}

// truncate abandons a packet whose tail can never arrive (its upstream
// link failed mid-worm): the fragment is discarded and any output
// binding released so other traffic can use the port. The frame itself
// is counted at the router feeding the failed link (drainDeadBE), so
// this side records only the drop reason — each broken worm lands in
// exactly one conservation bucket.
func (u *beInput) truncate() {
	if u.parsed || u.occ() > 0 {
		u.r.dropBE(metrics.DropBETruncated, u.id)
	}
	u.discardFrame()
}

// discardFrame resets the engine's current frame, releasing any output
// binding and propagating an abort to wherever bytes were already
// forwarded — a worm spanning several hops must release every segment,
// or the downstream ports stay bound to a tail that never comes.
func (u *beInput) discardFrame() {
	if u.parsed && !u.dropping && u.fwdIdx > 0 {
		if u.outPort == PortLocal {
			o := u.r.beOut[PortLocal]
			o.rxBuf = o.rxBuf[:0]
		} else if u.r.out[u.outPort] != nil {
			u.r.beOut[u.outPort].abortPending = true
		}
	}
	for q := 0; q < NumPorts; q++ {
		if o := u.r.beOut[q]; o.curIn == u.id {
			o.curIn = -1
		}
	}
	u.buf = u.buf[:0]
	u.bufHead = 0
	u.parsed = false
	u.bound = false
	u.dropping = false
	u.discard = false
	u.nackPending = false
}

type beHist struct {
	cycle int64
	ph    packet.Phit
	valid bool
}

// beOutput arbitrates the best-effort virtual channel of one output
// port: round-robin over the input engines, binding held for a whole
// packet, gated by downstream flit credits.
type beOutput struct {
	r    *Router
	port int

	curIn   int // bound input engine, or -1
	rr      int
	credits int // downstream flit-buffer credits (mesh links only)

	// wasStalled marks an ongoing credit stall so the trace records one
	// block event per episode rather than one per cycle.
	wasStalled bool

	// Integrity transmit state: nackWin is how far back a nack reaches —
	// the link round trip (2·latency: the corrupted flit travelled one
	// way before its nack came back), and every flit sent since must be
	// resent too so the stream stays in order. hist remembers recently
	// sent flits so a nack can replay them, sized to the window plus
	// slack at one flit per cycle; replay holds flits awaiting
	// retransmission (sent before any fresh byte, first one marked
	// Rexmit); resumeAt delays the replay by an exponential backoff;
	// retryCount bounds the episode against Config.BERetryLimit.
	// abortPending requests an Abort tail flit — also used without
	// Integrity to release a downstream worm segment after a link
	// failure.
	nackWin      int64
	hist         []beHist
	histIdx      int
	replay       []packet.Phit
	replayHead   int
	rexmitNext   bool
	retryCount   int
	resumeAt     int64
	abortPending bool

	// local reception assembly (PortLocal only)
	rxBuf []byte
}

// record notes a flit sent this cycle in the history ring. The Rexmit
// mark is stripped: whether a future replay of this flit starts a
// retransmission run is decided when that replay is sent.
func (b *beOutput) record(ph packet.Phit) {
	ph.Rexmit = false
	b.hist[b.histIdx] = beHist{cycle: b.r.nowCycle, ph: ph, valid: true}
	b.histIdx = (b.histIdx + 1) % len(b.hist)
}

// handleNack reacts to a nack read from the reverse wire: every flit
// sent within the nack window goes back on the replay queue (ahead of
// any replay remainder), the next attempt is delayed by an exponential
// backoff, and an exhausted retry budget aborts the frame.
func (b *beOutput) handleNack(now int64) {
	var win []packet.Phit
	for i := 0; i < len(b.hist); i++ {
		e := b.hist[(b.histIdx+i)%len(b.hist)] // oldest → newest
		if e.valid && e.cycle >= now-b.nackWin {
			win = append(win, e.ph)
		}
	}
	if len(win) == 0 {
		return // stale nack for a frame already aborted or drained
	}
	b.retryCount++
	limit := b.r.cfg.BERetryLimit
	if limit == 0 {
		limit = 8
	}
	if b.retryCount > limit {
		b.abortFrame()
		return
	}
	rest := b.replay[b.replayHead:]
	nq := make([]packet.Phit, 0, len(win)+len(rest))
	nq = append(nq, win...)
	nq = append(nq, rest...)
	b.replay = nq
	b.replayHead = 0
	b.rexmitNext = true
	shift := b.retryCount - 1
	if shift > 6 {
		shift = 6
	}
	b.resumeAt = now + int64(1)<<shift
	// The window flits now live on the replay queue; invalidate them in
	// history so an overlapping nack cannot enqueue them twice.
	for i := range b.hist {
		b.hist[i].valid = false
	}
}

// abortFrame gives up on the current frame after the retry budget ran
// out: pending replays are dropped, the bound input drains the rest of
// the frame unsent, and an Abort tail flit tells the downstream router
// to drop its partial copy.
func (b *beOutput) abortFrame() {
	b.clearFault()
	b.abortPending = true
	if b.curIn >= 0 {
		u := b.r.beIn[b.curIn]
		u.dropping = true
		b.curIn = -1
	}
	b.r.Stats.BEFrameAborts++
	if b.r.met != nil {
		b.r.met.BEFrameAborts.Inc()
	}
	b.r.dropBE(metrics.DropBEAborted, b.port)
}

// clearFault resets the retransmission machinery (history, replay
// queue, backoff, pending abort) — on frame abort or link death.
func (b *beOutput) clearFault() {
	for i := range b.hist {
		b.hist[i] = beHist{}
	}
	b.histIdx = 0
	b.replay = b.replay[:0]
	b.replayHead = 0
	b.rexmitNext = false
	b.retryCount = 0
	b.resumeAt = 0
	b.abortPending = false
}

// drainDeadBE releases the best-effort side of a dead output port: a
// worm bound here can never finish (its remaining bytes drain unsent at
// the input), and neither replays nor an abort flit can cross a missing
// wire. This is where a broken worm is counted — exactly once, at the
// router feeding the failed link.
func (b *beOutput) drainDeadBE() {
	if b.curIn >= 0 {
		u := b.r.beIn[b.curIn]
		u.dropping = true
		b.curIn = -1
		b.r.Stats.BETruncated++
		b.r.dropBE(metrics.DropBETruncated, b.port)
	}
	b.clearFault()
}

// hasFaultWork reports whether the port owes the link a recovery flit:
// a pending abort, or replays whose backoff has elapsed. Both need a
// downstream credit, like any other flit.
func (b *beOutput) hasFaultWork() bool {
	if b.port == PortLocal || b.r.out[b.port] == nil || b.credits <= 0 {
		return false
	}
	if b.abortPending {
		return true
	}
	return b.replayHead < len(b.replay) && b.r.nowCycle >= b.resumeAt
}

// sendFaultFlit sends one recovery flit: the pending abort, or the next
// replay (the first of a run carries Rexmit so the receiver leaves
// discard mode at exactly the right flit).
func (b *beOutput) sendFaultFlit() {
	b.credits--
	if b.abortPending {
		b.abortPending = false
		b.r.out[b.port].Drive(b.r.nowCycle, packet.Phit{Valid: true, VC: packet.VCBest, Tail: true, Abort: true})
		return
	}
	ph := b.replay[b.replayHead]
	b.replayHead++
	if b.replayHead == len(b.replay) {
		b.replay = b.replay[:0]
		b.replayHead = 0
	}
	if b.rexmitNext {
		ph.Rexmit = true
		b.rexmitNext = false
	}
	b.record(ph)
	b.r.Stats.BEFlitRetransmits++
	if b.r.met != nil {
		b.r.met.BEFlitRetransmits.Inc()
	}
	b.r.out[b.port].Drive(b.r.nowCycle, ph)
}

// bind picks a waiting input if none is bound, scanning round-robin.
func (b *beOutput) bind() {
	if b.curIn >= 0 {
		return
	}
	n := len(b.r.beIn)
	for i := 0; i < n; i++ {
		idx := (b.rr + i) % n
		u := b.r.beIn[idx]
		if u.parsed && !u.bound && !u.dropping && u.outPort == b.port {
			u.bound = true
			b.curIn = idx
			b.rr = idx + 1
			return
		}
	}
}

// canSend reports whether a best-effort flit could go out this cycle.
// Recovery traffic (pending replays or an abort) blocks fresh bytes:
// the stream must stay in order.
func (b *beOutput) canSend() bool {
	if b.abortPending || b.replayHead < len(b.replay) {
		return false
	}
	b.bind()
	if b.curIn < 0 {
		return false
	}
	if b.port != PortLocal && b.credits <= 0 {
		return false
	}
	return b.r.beIn[b.curIn].hasByte()
}

// stalled reports whether a bound input has a flit ready but the port
// cannot send it for lack of downstream credits.
func (b *beOutput) stalled() bool {
	b.bind()
	return b.curIn >= 0 && b.port != PortLocal && b.credits <= 0 &&
		b.r.beIn[b.curIn].hasByte()
}

// sendByte forwards one flit from the bound input. The caller has
// checked canSend.
func (b *beOutput) sendByte() {
	u := b.r.beIn[b.curIn]
	by, head, tail := u.pop()
	b.r.Stats.BEBytes[b.port]++
	if b.r.met != nil {
		b.r.met.ArbWins[b.port][metrics.ArbBE].Inc()
	}
	if b.r.OnBETransmit != nil {
		b.r.OnBETransmit(b.port, b.r.nowCycle)
	}
	if b.port == PortLocal {
		b.rxBuf = append(b.rxBuf, by)
		if tail {
			b.deliverLocal()
			b.curIn = -1
		}
		return
	}
	b.credits--
	ph := packet.Phit{Valid: true, VC: packet.VCBest, Data: by, Head: head, Tail: tail}
	if b.r.cfg.Integrity {
		ph.SideValid = true
		ph.Side = packet.CRC8Update(0, by)
		b.record(ph)
		b.retryCount = 0 // a fresh flit went out: the error episode is over
	}
	b.r.out[b.port].Drive(b.r.nowCycle, ph)
	if tail {
		b.curIn = -1
		b.r.Stats.BEPacketsSent[b.port]++
	}
}

func (b *beOutput) deliverLocal() {
	var payload []byte
	if n := len(b.rxBuf) - packet.BEHeaderBytes; n > 0 {
		payload = b.r.beArena.alloc(n)
		copy(payload, b.rxBuf[packet.BEHeaderBytes:])
	}
	b.r.beDelivered = append(b.r.beDelivered, DeliveredBE{
		Payload: payload,
		Cycle:   b.r.nowCycle,
	})
	b.r.Stats.BEDelivered++
	if b.r.met != nil {
		b.r.met.BEDelivered.Inc()
	}
	if b.r.OnLifecycle != nil {
		b.r.lifecycle(LifecycleEvent{Kind: EvDeliver, Port: -1, BE: true})
	}
	b.rxBuf = b.rxBuf[:0]
}

// beArena is a chunked bump allocator backing the payloads of
// delivered best-effort packets: one amortized chunk allocation
// replaces one heap allocation per delivery. reset retains the chunks
// for reuse, so steady-state delivery is allocation-free once the
// working set is covered. The router double-buffers two arenas in step
// with the beDelivered queues (see DrainBE), so a drained payload stays
// valid until the DrainBE call after next.
type beArena struct {
	chunks [][]byte
	live   int // chunks currently in use; the rest are retained spares
}

// beArenaChunk is the default chunk size; oversized payloads get a
// dedicated chunk of their own length.
const beArenaChunk = 4096

// alloc returns an owned, uninitialized slice of length n.
func (a *beArena) alloc(n int) []byte {
	if a.live > 0 {
		c := a.chunks[a.live-1]
		if len(c)+n <= cap(c) {
			c = c[:len(c)+n]
			a.chunks[a.live-1] = c
			return c[len(c)-n:]
		}
	}
	size := beArenaChunk
	if n > size {
		size = n
	}
	if a.live == len(a.chunks) {
		a.chunks = append(a.chunks, nil)
	}
	c := a.chunks[a.live]
	if cap(c) < n {
		c = make([]byte, 0, size)
	}
	c = c[:n]
	a.chunks[a.live] = c
	a.live++
	return c
}

// reset marks every chunk free for reuse without releasing its memory.
func (a *beArena) reset() {
	for i := range a.chunks {
		a.chunks[i] = a.chunks[i][:0]
	}
	a.live = 0
}
