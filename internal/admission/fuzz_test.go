package admission

import (
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

// TestAdmitTeardownFuzz runs random interleavings of admissions and
// teardowns and checks the controller's accounting stays consistent:
// after tearing everything down, every router's table is empty, every
// id is free, and the original capacity is available again.
func TestAdmitTeardownFuzz(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := mesh.MustNew(3, 3, router.DefaultConfig())
		c, err := New(n, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var live []*Channel
		for op := 0; op < 120; op++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				idx := rng.Intn(len(live))
				if err := c.Teardown(live[idx]); err != nil {
					t.Fatalf("seed %d op %d: teardown: %v", seed, op, err)
				}
				live = append(live[:idx], live[idx+1:]...)
				continue
			}
			src := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
			nd := 1
			if rng.Intn(4) == 0 {
				nd = 2 + rng.Intn(2)
			}
			var dsts []mesh.Coord
			seen := map[mesh.Coord]bool{src: true}
			for len(dsts) < nd {
				d := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
				if seen[d] {
					break
				}
				seen[d] = true
				dsts = append(dsts, d)
			}
			if len(dsts) == 0 {
				continue
			}
			imin := int64(4 + rng.Intn(28))
			spec := rtc.Spec{
				Imin: imin,
				Smax: 1 + rng.Intn(36),
				D:    int64(5+rng.Intn(20)) * int64(4+rng.Intn(6)),
			}
			if spec.MessageSlots() > spec.Imin {
				continue
			}
			ch, err := c.Admit(src, dsts, spec)
			if err != nil {
				continue // rejections are fine
			}
			live = append(live, ch)
			if op%8 == 0 {
				if err := c.VerifyLedger(); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, op, err)
				}
			}
		}
		if err := c.VerifyLedger(); err != nil {
			t.Fatalf("seed %d: conservation before drain: %v", seed, err)
		}
		for _, ch := range live {
			if err := c.Teardown(ch); err != nil {
				t.Fatalf("seed %d: final teardown: %v", seed, err)
			}
		}
		if c.Active() != 0 {
			t.Fatalf("seed %d: %d channels still active", seed, c.Active())
		}
		if err := c.VerifyLedger(); err != nil {
			t.Fatalf("seed %d: conservation after drain: %v", seed, err)
		}
		if snap := c.Seal(); len(snap.Links) != 0 || snap.Channels != 0 {
			t.Fatalf("seed %d: drained ledger still holds %d links, %d channels",
				seed, len(snap.Links), snap.Channels)
		}
		// Every router table empty again.
		for _, coord := range n.Coords() {
			r := n.Router(coord)
			for id := 0; id < r.Config().Conns; id++ {
				if r.Connection(uint8(id)).Valid {
					t.Fatalf("seed %d: stale table entry at %s id %d", seed, coord, id)
				}
			}
		}
		// Full capacity restored: the canonical filler fits its EDF bound
		// again on a previously used link.
		filler := rtc.Spec{Imin: 4, Smax: 18, D: 8}
		got := 0
		for {
			if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, filler); err != nil {
				break
			}
			got++
		}
		if got != 4 {
			t.Fatalf("seed %d: capacity after churn = %d channels, want 4", seed, got)
		}
	}
}
