package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/router"
)

// Forensics merges the per-router blame banks into channel-level
// attribution: the blame matrix (channel i lost N cycles to channel j
// or subsystem k), the per-channel slack waterfalls, and the cause
// totals whose conservation the CI gate checks.
//
// Attach enables blame collection on each router and retains it for the
// post-run merge. The banks are written lock-free during the owning
// router's tick (the obs shard contract), so Forensics reads them only
// after Flush — which the run driver calls once the kernel barrier has
// ordered all writes. Until then the metrics-facing exporters return
// nothing, keeping a live -listen scrape race-free.
type Forensics struct {
	routers []*router.Router
	slo     *SLO
	sealed  atomic.Bool
}

// NewForensics returns an empty aggregator.
func NewForensics() *Forensics {
	return &Forensics{}
}

// Attach enables blame collection on r and retains it for merging.
// Attach before the simulation starts, in node order (core.NewMesh uses
// row-major coordinate order) so merged output is deterministic.
func (f *Forensics) Attach(r *router.Router) {
	r.EnableBlame()
	f.routers = append(f.routers, r)
}

// UseSLO supplies the channel-name resolver: blame rows label victims
// and blamed parties by channel name where the SLO tracker knows the
// (router, conn) endpoint, falling back to conn<id>@<router>.
func (f *Forensics) UseSLO(s *SLO) { f.slo = s }

// Routers returns how many routers are attached.
func (f *Forensics) Routers() int { return len(f.routers) }

// Flush closes every router's open stall episodes (emitting their
// EvStall events into the lifecycle stream) and marks the banks
// readable. Call after the run, before reading the merged timeline or
// any exporter; idempotent.
func (f *Forensics) Flush() {
	for _, r := range f.routers {
		r.FlushBlame()
	}
	f.sealed.Store(true)
}

// victimLabel resolves a bank cell's victim to a stable display label.
func (f *Forensics) victimLabel(rname string, k router.BlameKey) string {
	if k.BE {
		return "be:" + rname + ":" + router.PortName(int(k.Port))
	}
	if f.slo != nil {
		if n, ok := f.slo.ChannelName(rname, k.Victim); ok {
			return n
		}
	}
	return fmt.Sprintf("conn%d@%s", k.Victim, rname)
}

// blamedLabel resolves the blamed party: a channel label when the cell
// names a competing connection, empty when the cycle went to a
// subsystem (the cause string is the column then).
func (f *Forensics) blamedLabel(rname string, k router.BlameKey) string {
	if k.Blamed == 0 {
		return ""
	}
	if f.slo != nil {
		if n, ok := f.slo.ChannelName(rname, k.Blamed); ok {
			return n
		}
	}
	return fmt.Sprintf("conn%d@%s", k.Blamed, rname)
}

// Rows merges every router's bank into (victim, cause, blamed) rows,
// summing cells that resolve to the same labels and sorting by victim,
// cause, blamed — a total order independent of map iteration and worker
// count.
func (f *Forensics) Rows() []metrics.BlameSnapshot {
	type rk struct{ victim, cause, blamed string }
	agg := make(map[rk]int64)
	for _, r := range f.routers {
		name := r.Name()
		r.ForEachBlame(func(k router.BlameKey, n int64) {
			agg[rk{f.victimLabel(name, k), k.Cause.String(), f.blamedLabel(name, k)}] += n
		})
	}
	out := make([]metrics.BlameSnapshot, 0, len(agg))
	for k, n := range agg {
		out = append(out, metrics.BlameSnapshot{
			Victim: k.victim, Cause: k.cause, Blamed: k.blamed, Cycles: n,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Victim != b.Victim {
			return a.Victim < b.Victim
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		return a.Blamed < b.Blamed
	})
	return out
}

// Stats sums every router's attribution totals.
func (f *Forensics) Stats() metrics.ForensicsSnapshot {
	var fs metrics.ForensicsSnapshot
	by := make(map[string]int64)
	for _, r := range f.routers {
		st := r.BlameStats()
		fs.TCStallCycles += st.TCStallCycles
		for c := router.StallCause(1); c < router.NumStallCauses; c++ {
			if st.ByCause[c] != 0 {
				by[c.String()] += st.ByCause[c]
			}
		}
	}
	fs.Unattributed = by[router.CauseUnattributed.String()]
	if len(by) > 0 {
		fs.ByCause = by
	}
	return fs
}

// ExportBlame is the metrics.Registry blame source: nil until Flush so
// a live scrape never races the compute phase.
func (f *Forensics) ExportBlame() []metrics.BlameSnapshot {
	if !f.sealed.Load() {
		return nil
	}
	return f.Rows()
}

// ExportStats is the metrics.Registry forensics source: nil until
// Flush. The caller may stamp Triggers (flight-recorder count) onto the
// returned snapshot.
func (f *Forensics) ExportStats() *metrics.ForensicsSnapshot {
	if !f.sealed.Load() {
		return nil
	}
	fs := f.Stats()
	return &fs
}

// Waterfall is one victim channel's slack spend, reconstructed from the
// retained stall episodes of the merged timeline: how many of its
// non-advancing cycles went to each cause, and its single longest
// episode.
type Waterfall struct {
	Victim  string
	Total   int64
	ByCause []CauseCycles
	// Longest is the worst single episode observed.
	Longest StallEpisode
}

// CauseCycles is one bar of a waterfall.
type CauseCycles struct {
	Cause  string
	Cycles int64
}

// StallEpisode is one closed attribution episode lifted from the merged
// timeline (an EvStall event): the victim spent Cycles consecutive
// cycles ending exclusive at End not advancing on Router's Port.
type StallEpisode struct {
	End    int64
	Router string
	Port   int
	Victim string
	Cause  string
	Blamed string
	Cycles int64
}

// label resolves an event-side (router, conn) endpoint like the bank
// merge does.
func (f *Forensics) label(rname string, conn uint8) string {
	if f.slo != nil {
		if n, ok := f.slo.ChannelName(rname, conn); ok {
			return n
		}
	}
	return fmt.Sprintf("conn%d@%s", conn, rname)
}

// episode converts a merged EvStall event.
func (f *Forensics) episode(e Event) StallEpisode {
	blamed := ""
	if e.OutConn != 0 {
		blamed = f.label(e.Router, e.OutConn)
	}
	return StallEpisode{
		End: e.Cycle, Router: e.Router, Port: e.Port,
		Victim: f.label(e.Router, e.InConn), Cause: e.Cause.String(),
		Blamed: blamed, Cycles: e.Wait,
	}
}

// Waterfalls reconstructs per-victim waterfalls from the merged
// timeline's stall episodes, sorted by total cycles descending (victim
// label breaking ties). Only episodes still retained in the collector
// contribute — size the shards to the run for complete waterfalls; the
// bank-derived Rows and Stats are always complete.
func (f *Forensics) Waterfalls(events []Event) []Waterfall {
	type acc struct {
		total   int64
		by      map[string]int64
		longest StallEpisode
	}
	accs := make(map[string]*acc)
	for _, e := range events {
		if e.Kind != router.EvStall {
			continue
		}
		ep := f.episode(e)
		a := accs[ep.Victim]
		if a == nil {
			a = &acc{by: make(map[string]int64)}
			accs[ep.Victim] = a
		}
		a.total += ep.Cycles
		a.by[ep.Cause] += ep.Cycles
		if ep.Cycles > a.longest.Cycles {
			a.longest = ep
		}
	}
	out := make([]Waterfall, 0, len(accs))
	for victim, a := range accs {
		wf := Waterfall{Victim: victim, Total: a.total, Longest: a.longest}
		for cause, n := range a.by {
			wf.ByCause = append(wf.ByCause, CauseCycles{Cause: cause, Cycles: n})
		}
		sort.Slice(wf.ByCause, func(i, j int) bool {
			a, b := wf.ByCause[i], wf.ByCause[j]
			if a.Cycles != b.Cycles {
				return a.Cycles > b.Cycles
			}
			return a.Cause < b.Cause
		})
		out = append(out, wf)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return a.Victim < b.Victim
	})
	return out
}

// Episodes lifts every retained stall episode from the merged timeline,
// sorted longest-first (then by end cycle, router, port for a total
// order).
func (f *Forensics) Episodes(events []Event) []StallEpisode {
	var out []StallEpisode
	for _, e := range events {
		if e.Kind == router.EvStall {
			out = append(out, f.episode(e))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycles != b.Cycles {
			return a.Cycles > b.Cycles
		}
		if a.End != b.End {
			return a.End < b.End
		}
		if a.Router != b.Router {
			return a.Router < b.Router
		}
		return a.Port < b.Port
	})
	return out
}

// Report writes the full forensics summary: cause totals with the
// conservation line, the blame matrix, per-victim slack waterfalls, and
// the longest stall episodes. events is the merged timeline (pass
// collector.Merged(), or nil to skip the timeline-derived sections).
// Output is byte-identical across worker counts.
func (f *Forensics) Report(w io.Writer, events []Event) {
	st := f.Stats()
	fmt.Fprintf(w, "=== stall attribution: cause totals ===\n")
	type cc struct {
		cause  string
		cycles int64
	}
	var causes []cc
	for c, n := range st.ByCause {
		causes = append(causes, cc{c, n})
	}
	sort.Slice(causes, func(i, j int) bool {
		if causes[i].cycles != causes[j].cycles {
			return causes[i].cycles > causes[j].cycles
		}
		return causes[i].cause < causes[j].cause
	})
	for _, c := range causes {
		fmt.Fprintf(w, "%-18s %12d\n", c.cause, c.cycles)
	}
	fmt.Fprintf(w, "tc stall cycles: %d  unattributed: %d\n",
		st.TCStallCycles, st.Unattributed)

	rows := f.Rows()
	fmt.Fprintf(w, "\n=== blame matrix (victim x blamed) ===\n")
	fmt.Fprintf(w, "%-24s %-18s %-24s %12s\n", "victim", "cause", "blamed", "cycles")
	for _, r := range rows {
		blamed := r.Blamed
		if blamed == "" {
			blamed = "-"
		}
		fmt.Fprintf(w, "%-24s %-18s %-24s %12d\n", r.Victim, r.Cause, blamed, r.Cycles)
	}

	if events == nil {
		return
	}
	wfs := f.Waterfalls(events)
	fmt.Fprintf(w, "\n=== slack waterfalls (retained episodes) ===\n")
	for _, wf := range wfs {
		fmt.Fprintf(w, "%s: %d stalled cycles\n", wf.Victim, wf.Total)
		for _, b := range wf.ByCause {
			pct := float64(b.Cycles) * 100 / float64(wf.Total)
			fmt.Fprintf(w, "    %-18s %12d  %5.1f%%\n", b.Cause, b.Cycles, pct)
		}
	}

	eps := f.Episodes(events)
	const topN = 10
	if len(eps) > topN {
		eps = eps[:topN]
	}
	fmt.Fprintf(w, "\n=== longest stall episodes ===\n")
	fmt.Fprintf(w, "%10s %-8s %-4s %-24s %-18s %-24s %8s\n",
		"end", "router", "port", "victim", "cause", "blamed", "cycles")
	for _, ep := range eps {
		blamed := ep.Blamed
		if blamed == "" {
			blamed = "-"
		}
		fmt.Fprintf(w, "%10d %-8s %-4s %-24s %-18s %-24s %8d\n",
			ep.End, ep.Router, router.PortName(ep.Port), ep.Victim, ep.Cause, blamed, ep.Cycles)
	}
}
