package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// loadedRun is everything observable about one simulation run: the
// per-router hardware counters, every packet delivered at every node in
// delivery order, the telemetry registry totals, the merged lifecycle
// trace, and the per-channel SLO snapshots.
type loadedRun struct {
	Stats      []router.Stats
	Deliveries [][]string
	Snapshot   metrics.Snapshot
	Trace      string
	Channels   []metrics.ChannelSnapshot
}

// runLoaded drives a loaded 8×8 mesh — unicast and multicast real-time
// channels crossing the network plus a seeded best-effort source on
// every node — for the given number of cycles with the given worker
// count, tile size (0 = default), and pool forcing, and records the
// complete observable outcome.
func runLoaded(t *testing.T, workers, tile int, forcePool bool, cycles int64) loadedRun {
	t.Helper()
	reg := metrics.NewRegistry()
	col := obs.NewSharded(4096)
	slo := obs.NewSLO()
	sys, err := NewMesh(8, 8, Options{Workers: workers, Tile: tile, Metrics: reg, Collector: col, ChannelSLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Net.Kernel.ForcePool(forcePool)

	spec := rtc.Spec{Imin: 8, Smax: 18, D: 120}
	routes := [][]mesh.Coord{
		{{X: 0, Y: 0}, {X: 7, Y: 7}},
		{{X: 7, Y: 0}, {X: 0, Y: 7}},
		{{X: 3, Y: 2}, {X: 3, Y: 6}},
		{{X: 6, Y: 5}, {X: 1, Y: 5}},
		{{X: 2, Y: 7}, {X: 5, Y: 0}},
		{{X: 4, Y: 4}, {X: 0, Y: 4}, {X: 4, Y: 0}}, // multicast fan-out
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], rt[1:], spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	coords := sys.Net.Coords()
	for i, c := range coords {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.UniformSize(16, 120), 0.3, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(c, be)
	}

	// Per-node delivery logs: each sink appends only to its own slot, so
	// the recording itself is race-free under parallel execution.
	deliv := make([][]string, len(coords))
	for i, c := range coords {
		i, snk := i, sys.Sink(c)
		snk.OnTC = func(d router.DeliveredTC) {
			deliv[i] = append(deliv[i], fmt.Sprintf("tc c%d s%d @%d %x", d.Conn, d.Stamp, d.Cycle, d.Payload))
		}
		snk.OnBE = func(d router.DeliveredBE) {
			deliv[i] = append(deliv[i], fmt.Sprintf("be @%d %x", d.Cycle, d.Payload))
		}
	}

	sys.Run(cycles)

	var dump strings.Builder
	col.Dump(&dump)
	run := loadedRun{
		Deliveries: deliv,
		Snapshot:   reg.Snapshot(),
		Trace:      dump.String(),
		Channels:   slo.Export(),
	}
	for _, c := range coords {
		run.Stats = append(run.Stats, sys.Router(c).Stats)
	}
	return run
}

// TestParallelEquivalence is the parallel kernel's contract: a loaded
// 8×8 mesh produces bit-identical router counters, delivered-packet
// sequences, and telemetry totals whether the kernel runs on one worker
// or several.
func TestParallelEquivalence(t *testing.T) {
	// Short mode trims the run but must stay long enough for the
	// vacuity guard below: the first time-constrained deliveries land
	// only after the channels' end-to-end pipelines fill (D=120 slots),
	// so anything much below ~3000 cycles sees zero TC traffic.
	cycles := int64(6000)
	if testing.Short() {
		cycles = 3000
	}
	seq := runLoaded(t, 1, 0, false, cycles)
	par := runLoaded(t, 4, 0, false, cycles)

	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		for i := range seq.Stats {
			if seq.Stats[i] != par.Stats[i] {
				t.Errorf("router %d: sequential %+v\nparallel %+v", i, seq.Stats[i], par.Stats[i])
			}
		}
		t.Fatal("router stats diverged between sequential and parallel runs")
	}
	for i := range seq.Deliveries {
		s, p := seq.Deliveries[i], par.Deliveries[i]
		if len(s) != len(p) {
			t.Fatalf("node %d: %d vs %d deliveries", i, len(s), len(p))
		}
		for j := range s {
			if s[j] != p[j] {
				t.Fatalf("node %d delivery %d: %q vs %q", i, j, s[j], p[j])
			}
		}
	}
	if !reflect.DeepEqual(seq.Snapshot, par.Snapshot) {
		t.Fatal("metrics snapshots diverged between sequential and parallel runs")
	}
	if seq.Trace != par.Trace {
		t.Fatal("merged lifecycle traces diverged between sequential and parallel runs")
	}
	if !reflect.DeepEqual(seq.Channels, par.Channels) {
		t.Fatal("per-channel SLO snapshots diverged between sequential and parallel runs")
	}

	// Guard against a vacuous pass: the workload must actually have
	// exercised both traffic classes end to end, produced a non-empty
	// merged trace, and recorded latency samples on every channel.
	var tc, be int64
	for _, st := range seq.Stats {
		tc += st.TCDelivered
		be += st.BEDelivered
	}
	if tc == 0 || be == 0 {
		t.Fatalf("degenerate workload: tc=%d be=%d deliveries", tc, be)
	}
	if seq.Trace == "" {
		t.Fatal("degenerate workload: empty merged trace")
	}
	if len(seq.Channels) == 0 {
		t.Fatal("degenerate workload: no SLO channels registered")
	}
	for _, ch := range seq.Channels {
		if ch.Delivered == 0 || ch.Latency.Count == 0 || ch.Slack.Count == 0 {
			t.Fatalf("channel %q recorded no SLO samples: %+v", ch.Name, ch)
		}
	}

	// The tile size only regroups the plan; every choice must reproduce
	// the same run, through the real pooled rendezvous path.
	for _, tile := range []int{1, 2, 4} {
		tile := tile
		t.Run(fmt.Sprintf("tile%d", tile), func(t *testing.T) {
			tiled := runLoaded(t, 4, tile, true, cycles)
			if !reflect.DeepEqual(seq.Stats, tiled.Stats) {
				t.Fatal("router stats diverged with tile size", tile)
			}
			if !reflect.DeepEqual(seq.Deliveries, tiled.Deliveries) {
				t.Fatal("deliveries diverged with tile size", tile)
			}
			if !reflect.DeepEqual(seq.Snapshot, tiled.Snapshot) {
				t.Fatal("metrics snapshots diverged with tile size", tile)
			}
			if seq.Trace != tiled.Trace {
				t.Fatal("merged traces diverged with tile size", tile)
			}
			if !reflect.DeepEqual(seq.Channels, tiled.Channels) {
				t.Fatal("SLO snapshots diverged with tile size", tile)
			}
		})
	}
}

// TestParallelTracingRace is the observability side of the parallel
// contract, meant to run under the race detector: with lifecycle
// tracing, telemetry counters, and channel SLO histograms all attached,
// the kernel runs on every available core and the merged event stream
// still comes out byte-identical to the sequential run's. The sharded
// collector makes this safe — each router writes only its own node's
// buffer during the compute phase, the histograms are atomic, and the
// merge is deterministic in (cycle, node, seq).
func TestParallelTracingRace(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cycles := int64(4000)
	if testing.Short() {
		cycles = 3000
	}
	// ForcePool makes the parallel run take the real worker-pool
	// rendezvous even on a single-CPU machine, so the race detector
	// always sees the cross-goroutine path.
	seq := runLoaded(t, 1, 0, false, cycles)
	par := runLoaded(t, workers, 0, true, cycles)

	if seq.Trace == "" {
		t.Fatal("degenerate workload: empty merged trace")
	}
	if seq.Trace != par.Trace {
		t.Fatalf("merged traces diverged between 1 and %d workers", workers)
	}
	if !reflect.DeepEqual(seq.Channels, par.Channels) {
		t.Fatalf("SLO snapshots diverged between 1 and %d workers", workers)
	}
	if !reflect.DeepEqual(seq.Snapshot, par.Snapshot) {
		t.Fatalf("metrics snapshots diverged between 1 and %d workers", workers)
	}
}
