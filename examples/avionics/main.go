// Avionics models the kind of system the paper's introduction motivates:
// a flight-control computer on a mesh where a controller node multicasts
// actuator commands to four surface nodes every control period, sensor
// nodes stream readings back, and a maintenance task bulk-transfers logs
// as best-effort traffic — all on the same wires, with the command and
// sensor channels holding hard deadlines regardless of the log transfer.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

const (
	controlPeriod = 50  // slots between actuator commands
	controlBound  = 100 // end-to-end deadline for commands, slots
	sensorPeriod  = 25
	sensorBound   = 120
)

func main() {
	sys, err := core.NewMesh(4, 4, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	controller := mesh.Coord{X: 1, Y: 1}
	actuators := []mesh.Coord{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 0, Y: 3}, {X: 3, Y: 3}}
	sensors := []mesh.Coord{{X: 2, Y: 0}, {X: 0, Y: 2}, {X: 3, Y: 2}}

	// One multicast channel carries each command to all four actuators.
	cmdSpec := rtc.Spec{Imin: controlPeriod, Smax: 18, D: controlBound}
	cmd, err := sys.OpenChannel(controller, actuators, cmdSpec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("command channel: multicast to %d actuators, %d slots/hop budget\n",
		len(actuators), cmd.Admitted().LocalD)

	// Sensor channels stream readings back to the controller.
	sensorSpec := rtc.Spec{Imin: sensorPeriod, Smax: 36, D: sensorBound}
	for i, s := range sensors {
		ch, err := sys.OpenChannel(s, []mesh.Coord{controller}, sensorSpec)
		if err != nil {
			log.Fatal(err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("sensor%d", i), ch.Paced(), sensorSpec,
			traffic.Periodic, 36)
		if err != nil {
			log.Fatal(err)
		}
		sys.Net.Kernel.Register(app)
	}

	// Count command arrivals per actuator and watch worst latency.
	arrivals := map[mesh.Coord]int{}
	for _, a := range actuators {
		a := a
		sys.Sink(a).OnTC = func(d router.DeliveredTC) { arrivals[a]++ }
	}

	// The maintenance task dumps logs as best-effort bulk transfers.
	logDump, err := traffic.NewBEApp("maintenance", sys.Net, mesh.Coord{X: 2, Y: 2},
		traffic.FixedDst(mesh.Coord{X: 0, Y: 1}), traffic.FixedSize(900), 0.8, 42)
	if err != nil {
		log.Fatal(err)
	}
	sys.Net.Kernel.Register(logDump)

	// Fly for 40 control periods.
	const periods = 40
	for i := 0; i < periods; i++ {
		if err := cmd.Send([]byte(fmt.Sprintf("surfaces %02d", i))); err != nil {
			log.Fatal(err)
		}
		sys.Run(controlPeriod * packet.TCBytes)
	}
	sys.Run(controlBound * packet.TCBytes)

	sum := sys.Summarize()
	fmt.Printf("after %d control periods:\n", periods)
	for _, a := range actuators {
		fmt.Printf("  actuator %s received %d/%d commands\n", a, arrivals[a], periods)
		if arrivals[a] != periods {
			log.Fatal("actuator missed commands")
		}
	}
	fmt.Printf("sensor messages delivered to controller: %d\n", sys.Sink(controller).TCCount)
	fmt.Printf("maintenance log bytes moved best-effort: %d packets\n", sum.BEDelivered)
	fmt.Printf("deadline misses across the network: %d\n", sum.TCMisses)
	if sum.TCMisses != 0 {
		log.Fatal("hard deadline missed under best-effort load")
	}
	fmt.Println("ok: control loop held its deadlines under bulk maintenance traffic")
}
