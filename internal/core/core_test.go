package core

import (
	"testing"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
)

func TestOpenChannelAndSend(t *testing.T) {
	sys := MustNewMesh(4, 4, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 3, Y: 2}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer ch.Close()
	if err := ch.Send([]byte("hello real-time world")); err == nil {
		t.Fatal("oversize message accepted")
	}
	if err := ch.Send([]byte("cmd")); err != nil {
		t.Fatal(err)
	}
	ok := sys.RunUntil(func() bool { return sys.Sink(dst).TCCount > 0 }, 100000)
	if !ok {
		t.Fatalf("message not delivered; summary %+v", sys.Summarize())
	}
	sum := sys.Summarize()
	if sum.TCMisses != 0 || sum.TCDrops != 0 {
		t.Errorf("misses=%d drops=%d", sum.TCMisses, sum.TCDrops)
	}
}

func TestChannelDeliversWithinBound(t *testing.T) {
	sys := MustNewMesh(3, 3, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 6, Smax: 18, D: 50}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Stream 20 periodic messages.
	for i := 0; i < 20; i++ {
		if err := ch.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		sys.Run(spec.Imin * packet.TCBytes)
	}
	sys.Run(spec.D * packet.TCBytes * 2)
	if got := sys.Sink(dst).TCCount; got != 20 {
		t.Fatalf("delivered %d/20", got)
	}
	if m := sys.Summarize().TCMisses; m != 0 {
		t.Errorf("deadline misses: %d", m)
	}
}

func TestMulticastChannel(t *testing.T) {
	sys := MustNewMesh(4, 4, Options{})
	src := mesh.Coord{X: 1, Y: 1}
	dsts := []mesh.Coord{{X: 3, Y: 1}, {X: 1, Y: 3}, {X: 3, Y: 3}}
	ch, err := sys.OpenChannel(src, dsts, rtc.Spec{Imin: 10, Smax: 18, D: 80})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("to all")); err != nil {
		t.Fatal(err)
	}
	ok := sys.RunUntil(func() bool {
		for _, d := range dsts {
			if sys.Sink(d).TCCount == 0 {
				return false
			}
		}
		return true
	}, 200000)
	if !ok {
		t.Fatal("multicast incomplete")
	}
}

func TestBestEffortSend(t *testing.T) {
	sys := MustNewMesh(3, 3, Options{})
	src, dst := mesh.Coord{X: 2, Y: 0}, mesh.Coord{X: 0, Y: 2}
	if err := sys.SendBestEffort(src, dst, []byte("bulk data transfer")); err != nil {
		t.Fatal(err)
	}
	ok := sys.RunUntil(func() bool { return sys.Sink(dst).BECount > 0 }, 50000)
	if !ok {
		t.Fatal("best-effort packet lost")
	}
	if err := sys.SendBestEffort(mesh.Coord{X: 9, Y: 9}, dst, nil); err == nil {
		t.Error("source outside mesh accepted")
	}
	if err := sys.SendBestEffort(src, mesh.Coord{X: 9, Y: 9}, nil); err == nil {
		t.Error("destination outside mesh accepted")
	}
}

func TestChannelCloseReleases(t *testing.T) {
	sys := MustNewMesh(2, 1, Options{})
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 8}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	var open []*Channel
	for {
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			break
		}
		open = append(open, ch)
	}
	if len(open) == 0 {
		t.Fatal("nothing admitted")
	}
	if err := open[0].Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec); err != nil {
		t.Errorf("re-open after close failed: %v", err)
	}
}

func TestOptionsOverride(t *testing.T) {
	rcfg := router.DefaultConfig()
	rcfg.VCT = true
	opts := Options{Router: rcfg}.WithAdmission(admission.Config{
		Policy:       admission.SharedPool,
		SourceWindow: 4,
		Horizon:      16,
	})
	sys, err := NewMesh(2, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Router(mesh.Coord{X: 0, Y: 0})
	if !r.Config().VCT {
		t.Error("router override lost")
	}
	if r.Horizon(router.PortXPlus) != 16 {
		t.Errorf("horizon = %d, want 16 (programmed by admission)", r.Horizon(router.PortXPlus))
	}
	if sys.Pacer(mesh.Coord{X: 0, Y: 0}).Window() != 4 {
		t.Error("source window override lost")
	}
}

func TestSummarize(t *testing.T) {
	sys := MustNewMesh(2, 1, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ch.Send(make([]byte, 18)); err != nil {
			t.Fatal(err)
		}
		sys.Run(8 * packet.TCBytes)
	}
	sys.Run(2000)
	sum := sys.Summarize()
	if sum.TCDelivered != 5 {
		t.Errorf("TCDelivered = %d, want 5", sum.TCDelivered)
	}
	if sum.BusUtilization <= 0 {
		t.Error("bus utilization not measured")
	}
}

func TestResetStats(t *testing.T) {
	sys := MustNewMesh(2, 1, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send(make([]byte, 18)); err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)
	if sys.Summarize().TCDelivered == 0 {
		t.Fatal("warmup traffic not delivered")
	}
	sys.ResetStats()
	sum := sys.Summarize()
	if sum.TCDelivered != 0 || sum.TCLatency.N() != 0 || sum.BusUtilization != 0 {
		t.Errorf("stats not reset: %+v", sum)
	}
	// Measurement continues cleanly after the reset.
	if err := ch.Send(make([]byte, 18)); err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)
	if got := sys.Summarize().TCDelivered; got != 1 {
		t.Errorf("post-reset delivered = %d, want 1", got)
	}
}
