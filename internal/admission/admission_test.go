package admission

import (
	"testing"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

func newNet(t *testing.T, w, h int) *mesh.Network {
	t.Helper()
	return mesh.MustNew(w, h, router.DefaultConfig())
}

func TestEDFFeasibleBasics(t *testing.T) {
	if !edfFeasible(nil) {
		t.Error("empty set infeasible")
	}
	// One task using the whole link periodically, D = T.
	if !edfFeasible([]task{{C: 4, T: 4, D: 4}}) {
		t.Error("single saturating task rejected")
	}
	// Utilization over one.
	if edfFeasible([]task{{C: 3, T: 4, D: 4}, {C: 2, T: 4, D: 4}}) {
		t.Error("overloaded link accepted")
	}
	// C > D can never meet its bound.
	if edfFeasible([]task{{C: 5, T: 10, D: 4}}) {
		t.Error("C>D accepted")
	}
	// Degenerate parameters.
	if edfFeasible([]task{{C: 0, T: 4, D: 4}}) {
		t.Error("zero-cost task accepted (invalid)")
	}
}

func TestEDFDeadlineConstrained(t *testing.T) {
	// Two tasks, each C=2, T=8, but both with D=4: demand at t=4 is 4,
	// fine; with three such tasks demand at t=4 is 6 > 4: infeasible even
	// though utilization is only 3/4.
	two := []task{{C: 2, T: 8, D: 4}, {C: 2, T: 8, D: 4}}
	if !edfFeasible(two) {
		t.Error("two-task constrained set rejected")
	}
	three := append(two, task{C: 2, T: 8, D: 4})
	if edfFeasible(three) {
		t.Error("constrained-deadline overload accepted (dbf(4)=6>4)")
	}
}

func TestEDFFigure7Set(t *testing.T) {
	// The three backlogged connections of Figure 7 (d = Imin ∈ {4,8,16})
	// plus their aggregate utilization 1/4+1/8+1/16 = 7/16: comfortably
	// feasible on one link.
	set := []task{
		{C: 1, T: 4, D: 4},
		{C: 1, T: 8, D: 8},
		{C: 1, T: 16, D: 16},
	}
	if !edfFeasible(set) {
		t.Error("Figure 7 connection set rejected")
	}
}

func TestControllerAdmitUnicast(t *testing.T) {
	n := newNet(t, 4, 4)
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 40}
	ch, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 2, Y: 1}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Active() != 1 {
		t.Errorf("Active = %d, want 1", c.Active())
	}
	// Route 0,0 → 2,1 has 4 segments; D=40 → d=10 each.
	if ch.LocalD != 10 {
		t.Errorf("LocalD = %d, want 10", ch.LocalD)
	}
	// The tables must be programmed along the XY route.
	ent := n.Router(mesh.Coord{X: 0, Y: 0}).Connection(ch.SrcConn)
	if !ent.Valid || !ent.Mask.Has(router.PortXPlus) {
		t.Errorf("source entry %+v", ent)
	}
	// Walk the chain: every hop's entry must exist and feed the next.
	at := mesh.Coord{X: 0, Y: 0}
	in := ch.SrcConn
	for hops := 0; hops < 10; hops++ {
		e := n.Router(at).Connection(in)
		if !e.Valid {
			t.Fatalf("missing entry at %s id %d", at, in)
		}
		if e.Mask.Has(router.PortLocal) {
			if at != (mesh.Coord{X: 2, Y: 1}) {
				t.Fatalf("local delivery at %s, want (2,1)", at)
			}
			if e.Out != ch.DstConn[0] {
				t.Fatalf("delivery id %d, want %d", e.Out, ch.DstConn[0])
			}
			return
		}
		moved := false
		for p := 0; p < router.NumLinks; p++ {
			if e.Mask.Has(p) {
				at = at.Add(p)
				in = e.Out
				moved = true
				break
			}
		}
		if !moved {
			t.Fatalf("entry at %s has empty mask", at)
		}
	}
	t.Fatal("route never reached local delivery")
}

func TestControllerAdmitMulticast(t *testing.T) {
	n := newNet(t, 4, 4)
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 48}
	dsts := []mesh.Coord{{X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	ch, err := c.Admit(mesh.Coord{X: 0, Y: 0}, dsts, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.DstConn) != 3 {
		t.Fatalf("DstConn = %v", ch.DstConn)
	}
	// Every branch of the tree must reach exactly one local delivery.
	findEntryFor(t, n, ch)
}

// findEntryFor walks from the source checking every reachable hop entry
// is valid; returns the source entry.
func findEntryFor(t *testing.T, n *mesh.Network, ch *Channel) router.ConnEntry {
	t.Helper()
	type visit struct {
		at mesh.Coord
		in uint8
	}
	stack := []visit{{ch.Src, ch.SrcConn}}
	locals := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e := n.Router(v.at).Connection(v.in)
		if !e.Valid {
			t.Fatalf("invalid entry at %s id %d", v.at, v.in)
		}
		for p := 0; p < router.NumPorts; p++ {
			if !e.Mask.Has(p) {
				continue
			}
			if p == router.PortLocal {
				locals++
				continue
			}
			stack = append(stack, visit{v.at.Add(p), e.Out})
		}
	}
	if locals != len(ch.Dsts) {
		t.Fatalf("tree delivers to %d locals, want %d", locals, len(ch.Dsts))
	}
	return n.Router(ch.Src).Connection(ch.SrcConn)
}

func TestAdmitRejectsOverload(t *testing.T) {
	n := newNet(t, 2, 1)
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each channel uses 1 slot every 4 with d=4 on the (0,0)→+x link:
	// the link saturates after a few.
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 8}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Admit(src, []mesh.Coord{dst}, spec); err != nil {
			break
		}
		admitted++
	}
	// d=4, T=4, C=1: dbf(4) = n·1 ≤ 4 → at most 4 connections.
	if admitted != 4 {
		t.Errorf("admitted %d channels, want 4 (EDF bound)", admitted)
	}
}

func TestAdmitRejectsBadInput(t *testing.T) {
	n := newNet(t, 2, 2)
	c, _ := New(n, DefaultConfig())
	good := rtc.Spec{Imin: 8, Smax: 18, D: 40}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, nil, good); err == nil {
		t.Error("no destinations accepted")
	}
	if _, err := c.Admit(mesh.Coord{X: 5, Y: 5}, []mesh.Coord{{X: 0, Y: 0}}, good); err == nil {
		t.Error("source outside mesh accepted")
	}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 5, Y: 0}}, good); err == nil {
		t.Error("destination outside mesh accepted")
	}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}, {X: 1, Y: 0}}, good); err == nil {
		t.Error("duplicate destination accepted")
	}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, rtc.Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
	// Delay bound too tight for the distance.
	tight := rtc.Spec{Imin: 8, Smax: 18, D: 1}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 1}}, tight); err == nil {
		t.Error("over-tight bound accepted")
	}
}

func TestTeardownReleasesResources(t *testing.T) {
	n := newNet(t, 2, 1)
	c, _ := New(n, DefaultConfig())
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 8}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	var chans []*Channel
	for {
		ch, err := c.Admit(src, []mesh.Coord{dst}, spec)
		if err != nil {
			break
		}
		chans = append(chans, ch)
	}
	full := len(chans)
	if full == 0 {
		t.Fatal("nothing admitted")
	}
	// Tear one down: exactly one more fits again.
	if err := c.Teardown(chans[0]); err != nil {
		t.Fatal(err)
	}
	if c.Active() != full-1 {
		t.Errorf("Active = %d, want %d", c.Active(), full-1)
	}
	if _, err := c.Admit(src, []mesh.Coord{dst}, spec); err != nil {
		t.Errorf("re-admission after teardown failed: %v", err)
	}
	if _, err := c.Admit(src, []mesh.Coord{dst}, spec); err == nil {
		t.Error("admission beyond capacity accepted after teardown")
	}
	// Double teardown errors.
	if err := c.Teardown(chans[0]); err == nil {
		t.Error("double teardown accepted")
	}
	// The torn-down entry must be gone from the chip.
	if n.Router(src).Connection(chans[0].SrcConn).Valid {
		// The id may have been reused by the re-admission; only check
		// when it was not.
		reused := false
		for _, ch := range chans[1:] {
			if ch.SrcConn == chans[0].SrcConn {
				reused = true
			}
		}
		if !reused && c.Active() < full {
			t.Log("entry reprogrammed by re-admission; acceptable")
		}
	}
}

func TestBufferPolicyDifferences(t *testing.T) {
	// With a huge source window the buffer demand per channel is large;
	// partitioned accounting exhausts one port's share well before the
	// shared pool does.
	admitCount := func(policy BufferPolicy) int {
		n := newNet(t, 2, 1)
		cfg := DefaultConfig()
		cfg.Policy = policy
		cfg.SourceWindow = 100
		c, err := New(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Window 100 + d 20 → 15 buffers per channel at the source
		// router: the +x partition (51 slots) binds long before EDF
		// (which allows 8 of these) or the shared pool (256 slots).
		spec := rtc.Spec{Imin: 8, Smax: 18, D: 40}
		count := 0
		for i := 0; i < 300; i++ {
			if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, spec); err != nil {
				break
			}
			count++
		}
		return count
	}
	part := admitCount(Partitioned)
	shared := admitCount(SharedPool)
	if part == 0 || shared == 0 {
		t.Fatalf("no channels admitted: part=%d shared=%d", part, shared)
	}
	if shared <= part {
		t.Errorf("shared pool (%d) should admit more than partitioned (%d) under asymmetric load",
			shared, part)
	}
}

func TestAdmitRespectsRolloverWindow(t *testing.T) {
	n := newNet(t, 2, 1)
	cfg := DefaultConfig()
	cfg.SourceWindow = 100
	c, err := New(n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// d = 120/2 = 60; window 100 + 60 = 160 ≥ 128: must be rejected.
	spec := rtc.Spec{Imin: 120, Smax: 18, D: 120}
	if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, spec); err == nil {
		t.Error("rollover-violating window accepted")
	}
}

func TestHorizonValidation(t *testing.T) {
	n := newNet(t, 2, 1)
	cfg := DefaultConfig()
	cfg.Horizon = 200
	if _, err := New(n, cfg); err == nil {
		t.Error("horizon beyond half clock range accepted")
	}
	cfg.Horizon = 0
	cfg.SourceWindow = -1
	if _, err := New(n, cfg); err == nil {
		t.Error("negative source window accepted")
	}
}

func TestIDExhaustion(t *testing.T) {
	n := mesh.MustNew(2, 1, func() router.Config {
		c := router.DefaultConfig()
		c.Conns = 3
		return c
	}())
	c, _ := New(n, Config{Policy: SharedPool, SourceWindow: 0})
	spec := rtc.Spec{Imin: 100, Smax: 18, D: 200}
	admitted := 0
	for i := 0; i < 10; i++ {
		if _, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}}, spec); err != nil {
			break
		}
		admitted++
	}
	// Each channel consumes an incoming id plus a distinct delivery id
	// at the destination router, so a 3-entry table fits one channel.
	if admitted != 1 {
		t.Errorf("admitted %d with a 3-entry table, want 1", admitted)
	}
}

func TestChannelBound(t *testing.T) {
	n := newNet(t, 4, 4)
	c, _ := New(n, DefaultConfig())
	ch, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 2, Y: 1}},
		rtc.Spec{Imin: 8, Smax: 18, D: 40})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Hops() != 4 {
		t.Errorf("Hops = %d, want 4", ch.Hops())
	}
	if ch.Bound() != 40 {
		t.Errorf("Bound = %d, want 40 (4 hops × d=10)", ch.Bound())
	}
	if ch.Bound() > ch.Spec.D {
		t.Error("reserved bound exceeds the requested bound")
	}
	// Multicast: the deepest branch governs.
	mc, err := c.Admit(mesh.Coord{X: 0, Y: 0}, []mesh.Coord{{X: 1, Y: 0}, {X: 3, Y: 3}},
		rtc.Spec{Imin: 8, Smax: 18, D: 70})
	if err != nil {
		t.Fatal(err)
	}
	if mc.Hops() != 7 {
		t.Errorf("multicast Hops = %d, want 7", mc.Hops())
	}
}
