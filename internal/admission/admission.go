// Package admission implements connection establishment for real-time
// channels (Sections 2 and 4.1 of the paper): route selection (including
// multicast trees), decomposition of the end-to-end delay bound into
// per-hop bounds, the per-link schedulability test, buffer reservation
// against the routers' shared packet memories, and programming of the
// router connection tables through their control interfaces.
//
// The paper deliberately relegates this machinery to protocol software —
// it is computationally intensive but not time-critical — and that is
// exactly where it lives here: the Controller runs outside the
// cycle-accurate simulation and only touches the chips through the same
// control writes a host processor would issue.
package admission

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
)

// BufferPolicy selects how a router's shared packet memory is accounted
// during reservation (Section 3.4).
type BufferPolicy int

const (
	// Partitioned divides the memory evenly among the five output
	// ports; a connection's reservation must fit its ports' partitions.
	// This keeps any one link from starving the others' admissibility.
	Partitioned BufferPolicy = iota
	// SharedPool draws all reservations from one pool, maximizing
	// admissibility for asymmetric loads at the cost of fairness.
	SharedPool
)

func (p BufferPolicy) String() string {
	if p == Partitioned {
		return "partitioned"
	}
	return "shared"
}

// Config parameterizes the controller.
type Config struct {
	// Policy is the packet-memory accounting mode.
	Policy BufferPolicy
	// SourceWindow is how many slots ahead of ℓ0 the source regulator
	// may inject; it plays the role of h+d of a hop "before" the source
	// router in the buffer bound.
	SourceWindow int64
	// Horizon is the horizon parameter programmed on every output port.
	Horizon uint32
}

// DefaultConfig returns partitioned buffers, a modest source window and
// a zero horizon (the paper's conservative baseline).
func DefaultConfig() Config {
	return Config{Policy: Partitioned, SourceWindow: 8}
}

// Controller owns the reservation state of one mesh and admits or
// rejects real-time channels against it.
type Controller struct {
	net    *mesh.Network
	cfg    Config
	links  map[linkKey]*linkState
	nodes  map[mesh.Coord]*nodeState
	chans  map[int]*Channel
	failed map[linkKey]bool
	seq    int

	// audit, when attached, receives one record per control-plane
	// decision (see AttachAudit).
	audit *obs.AuditLog
	// sealed holds the last published capacity snapshot (see Seal in
	// ledger.go); atomic so a live HTTP scrape never races a seal.
	sealed atomic.Pointer[metrics.CapacitySnapshot]
}

// AttachAudit wires an audit log to receive every Admit, Teardown,
// restore and Reroute decision. Admission runs host-side between kernel
// runs, so no synchronization is needed; pass nil to detach.
func (c *Controller) AttachAudit(log *obs.AuditLog) { c.audit = log }

// portInject is the pseudo-port of a node's time-constrained injection
// link: one byte per cycle shared by every channel sourced there, EDF-
// ordered by the source regulator, and therefore subject to the same
// schedulability test as the mesh links.
const portInject = -1

type linkKey struct {
	node mesh.Coord
	port int
}

func (k linkKey) String() string {
	if k.port == portInject {
		return fmt.Sprintf("%s→inject", k.node)
	}
	return fmt.Sprintf("%s→%s", k.node, router.PortName(k.port))
}

// task is one connection's demand on a link: C slots every T slots with
// relative deadline D.
type task struct {
	C, T, D int64
	chanID  int
}

type linkState struct {
	tasks []task
}

type nodeState struct {
	usedIDs     map[uint8]bool
	portBuffers [router.NumPorts]int
	total       int
}

// New creates a controller for the given network and programs the
// configured horizon on every router port.
func New(net *mesh.Network, cfg Config) (*Controller, error) {
	if cfg.SourceWindow < 0 {
		return nil, fmt.Errorf("admission: negative source window")
	}
	c := &Controller{
		net:    net,
		cfg:    cfg,
		links:  make(map[linkKey]*linkState),
		nodes:  make(map[mesh.Coord]*nodeState),
		chans:  make(map[int]*Channel),
		failed: make(map[linkKey]bool),
	}
	for _, coord := range net.Coords() {
		r := net.Router(coord)
		if !r.Wheel().ValidDelay(int64(cfg.Horizon)) {
			return nil, fmt.Errorf("admission: horizon %d exceeds half clock range", cfg.Horizon)
		}
		if err := r.SetHorizon(sched.AllPortsMask(router.NumPorts), uint8(cfg.Horizon)); err != nil {
			return nil, err
		}
		c.nodes[coord] = &nodeState{usedIDs: make(map[uint8]bool)}
	}
	return c, nil
}

// Channel is an admitted real-time channel.
type Channel struct {
	ID      int
	Src     mesh.Coord
	Dsts    []mesh.Coord
	Spec    rtc.Spec
	SrcConn uint8   // connection id to stamp on injected packets
	DstConn []uint8 // delivery id at each destination, parallel to Dsts
	LocalD  int64   // uniform per-router delay bound d

	// Margin is the admission-time EDF headroom in slots: the minimum
	// t−dbf(t) over every link the schedulability test checked with this
	// channel included. It is fixed at admission and survives
	// teardown/restore verbatim, so ledger exports of "worst admitted
	// margin" are stable across reroute refusals.
	Margin int64

	hops []hopRef
}

type hopRef struct {
	node    mesh.Coord
	inConn  uint8
	outConn uint8
	mask    sched.PortMask
	buffers int
}

// treeNode is one router in the multicast route tree.
type treeNode struct {
	coord mesh.Coord
	mask  sched.PortMask // output ports used (links and/or local)
	depth int            // routers from the source (source = 0)
}

// routeFn produces a port sequence from src to dst.
type routeFn func(src, dst mesh.Coord) []int

// buildTree merges the routes to every destination into one tree using
// the given routing order. It returns nodes in breadth-first order.
func (c *Controller) buildTree(src mesh.Coord, dsts []mesh.Coord, route routeFn) ([]*treeNode, int, error) {
	if !c.net.Contains(src) {
		return nil, 0, fmt.Errorf("admission: source %s outside mesh", src)
	}
	byCoord := make(map[mesh.Coord]*treeNode)
	get := func(at mesh.Coord, depth int) *treeNode {
		n, ok := byCoord[at]
		if !ok {
			n = &treeNode{coord: at, depth: depth}
			byCoord[at] = n
		}
		return n
	}
	maxSegs := 0
	seen := make(map[mesh.Coord]bool)
	for _, dst := range dsts {
		if !c.net.Contains(dst) {
			return nil, 0, fmt.Errorf("admission: destination %s outside mesh", dst)
		}
		if seen[dst] {
			return nil, 0, fmt.Errorf("admission: duplicate destination %s", dst)
		}
		seen[dst] = true
		ports := route(src, dst)
		if len(ports) > maxSegs {
			maxSegs = len(ports)
		}
		at := src
		for i, port := range ports {
			n := get(at, i)
			if n.depth != i {
				// Single-order merges always agree on depth; a mismatch
				// would mean two routes visit one router at different
				// distances, impossible within one dimension order.
				return nil, 0, fmt.Errorf("admission: internal: inconsistent tree depth at %s", at)
			}
			n.mask |= 1 << port
			at = at.Add(port)
		}
	}
	nodes := make([]*treeNode, 0, len(byCoord))
	for _, n := range byCoord {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].depth != nodes[j].depth {
			return nodes[i].depth < nodes[j].depth
		}
		a, b := nodes[i].coord, nodes[j].coord
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	return nodes, maxSegs, nil
}

// Admit establishes a real-time channel from src to one or more
// destinations, or explains why it cannot. Route selection follows the
// paper's §3.3: the XY dimension order is tried first; for unicast
// channels the disjoint YX order serves as fallback when the XY path
// lacks resources or crosses failed links. On success the routers along
// the route(s) are programmed and resources are debited; the returned
// Channel carries the connection id the source must stamp.
func (c *Controller) Admit(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec) (*Channel, error) {
	ch, err := c.admit(src, dsts, spec)
	if c.audit != nil {
		rec := obs.AuditRecord{
			Op: "admit", Channel: -1,
			Src: src.String(), Dst: dstString(dsts), Spec: specString(spec),
		}
		if err != nil {
			rec.Outcome = "rejected"
			rec.Err = err.Error()
			if rej, ok := Explain(err); ok {
				rec.Binding = rej.BindingResource()
				rec.Test = rej.FailingTest()
				rec.Margin = rej.FailMargin()
			}
		} else {
			rec.Outcome = "admitted"
			rec.Channel = ch.ID
			rec.Route = ch.Route()
			rec.LocalD = ch.LocalD
			rec.Hops = ch.Hops()
			rec.Margin = float64(ch.Margin)
		}
		c.audit.Record(c.net.Shard(src), rec)
	}
	return ch, err
}

func (c *Controller) admit(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec) (*Channel, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(dsts) == 0 {
		return nil, fmt.Errorf("admission: no destinations")
	}
	ch, errXY := c.admitVia(src, dsts, spec, mesh.XYRoute)
	if errXY == nil {
		return ch, nil
	}
	if len(dsts) == 1 && src.X != dsts[0].X && src.Y != dsts[0].Y {
		if ch, errYX := c.admitVia(src, dsts, spec, mesh.YXRoute); errYX == nil {
			return ch, nil
		}
	}
	return nil, errXY
}

// dstString renders a destination set for audit records.
func dstString(dsts []mesh.Coord) string {
	if len(dsts) == 1 {
		return dsts[0].String()
	}
	parts := make([]string, len(dsts))
	for i, d := range dsts {
		parts[i] = d.String()
	}
	return strings.Join(parts, "+")
}

// specString renders a traffic contract for audit records.
func specString(s rtc.Spec) string {
	return fmt.Sprintf("spec[Imin=%d Smax=%d Bmax=%d D=%d]", s.Imin, s.Smax, s.Bmax, s.D)
}

// admitVia attempts admission along one routing order.
func (c *Controller) admitVia(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec, route routeFn) (*Channel, error) {
	nodes, maxSegs, err := c.buildTree(src, dsts, route)
	if err != nil {
		return nil, err
	}
	wheel := c.net.Router(src).Wheel()
	// The hardware uses one d per router shared by all branches; use the
	// deepest path to size it, so every branch meets its bound.
	ds, err := rtc.Decompose(spec, maxSegs, wheel)
	if err != nil {
		return nil, err
	}
	d := ds[len(ds)-1] // uniform (the most conservative of the split)
	if d < 1 {
		return nil, fmt.Errorf("admission: empty delay budget")
	}
	// Rollover constraints (Section 4.3): what the downstream hop can
	// see early is window+d at the source, h+d elsewhere.
	if !wheel.ValidDelay(c.cfg.SourceWindow + d) {
		return nil, fmt.Errorf("admission: source window %d + d %d exceeds half clock range",
			c.cfg.SourceWindow, d)
	}
	if !wheel.ValidDelay(int64(c.cfg.Horizon) + d) {
		return nil, fmt.Errorf("admission: horizon %d + d %d exceeds half clock range",
			c.cfg.Horizon, d)
	}

	// Phase 1: check every resource without mutating anything. The
	// channel's admission margin is the minimum EDF headroom across
	// every link checked, candidate included.
	newTask := task{C: spec.MessageSlots(), T: spec.Imin, D: d, chanID: c.seq}
	injKey := linkKey{src, portInject}
	rep := c.linkCheck(injKey, newTask)
	if !rep.feasible {
		return nil, overloadError(injKey, rep,
			fmt.Sprintf("admission: injection port at %s fails the schedulability test", src))
	}
	margin := rep.headroom
	buffers := make(map[mesh.Coord]int, len(nodes))
	for _, n := range nodes {
		for p := 0; p < router.NumPorts; p++ {
			if !n.mask.Has(p) {
				continue
			}
			key := linkKey{n.coord, p}
			rep := c.linkCheck(key, newTask)
			if !rep.feasible {
				return nil, overloadError(key, rep,
					fmt.Sprintf("admission: link %s fails the schedulability test", key))
			}
			if rep.headroom < margin {
				margin = rep.headroom
			}
		}
		prev := int64(c.cfg.Horizon) + d
		if n.depth == 0 {
			prev = c.cfg.SourceWindow
		}
		need := rtc.BufferBound(prev, d, spec)
		buffers[n.coord] = need
		if err := c.buffersAvailable(n, need); err != nil {
			return nil, err
		}
	}
	ids, err := c.assignIDs(nodes)
	if err != nil {
		return nil, err
	}

	// Phase 2: commit — debit resources and program the chips.
	ch := &Channel{
		ID:     c.seq,
		Src:    src,
		Dsts:   append([]mesh.Coord(nil), dsts...),
		Spec:   spec,
		LocalD: d,
		Margin: margin,
	}
	c.seq++
	for _, n := range nodes {
		in, out := ids[n.coord].in, ids[n.coord].out
		if err := c.net.Router(n.coord).SetConnection(in, out, uint8(d), n.mask); err != nil {
			// A control write failed mid-commit; unwind the hops already
			// programmed so a refused admission leaves no debris.
			c.unwindCommit(ch)
			return nil, fmt.Errorf("admission: programming %s: %w", n.coord, err)
		}
		ns := c.nodes[n.coord]
		ns.usedIDs[in] = true
		if n.mask.Has(router.PortLocal) {
			ns.usedIDs[out] = true
		}
		need := buffers[n.coord]
		ns.total += need
		for p := 0; p < router.NumPorts; p++ {
			if n.mask.Has(p) {
				ns.portBuffers[p] += need
				ls := c.link(linkKey{n.coord, p})
				ls.tasks = append(ls.tasks, newTask)
			}
		}
		ch.hops = append(ch.hops, hopRef{node: n.coord, inConn: in, outConn: out, mask: n.mask, buffers: need})
	}
	inj := c.link(linkKey{src, portInject})
	inj.tasks = append(inj.tasks, newTask)
	ch.SrcConn = ids[src].in
	for _, dst := range dsts {
		ch.DstConn = append(ch.DstConn, ids[dst].out)
	}
	c.chans[ch.ID] = ch
	return ch, nil
}

// Teardown releases an admitted channel's resources and invalidates its
// table entries.
func (c *Controller) Teardown(ch *Channel) error {
	if err := c.teardown(ch); err != nil {
		return err
	}
	if c.audit != nil {
		c.audit.Record(c.net.Shard(ch.Src), obs.AuditRecord{
			Op: "teardown", Outcome: "released", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
			Margin: float64(ch.Margin),
		})
	}
	return nil
}

func (c *Controller) teardown(ch *Channel) error {
	if _, ok := c.chans[ch.ID]; !ok {
		return fmt.Errorf("admission: channel %d not active", ch.ID)
	}
	delete(c.chans, ch.ID)
	inj := c.link(linkKey{ch.Src, portInject})
	for i := range inj.tasks {
		if inj.tasks[i].chanID == ch.ID {
			inj.tasks = append(inj.tasks[:i], inj.tasks[i+1:]...)
			break
		}
	}
	for _, h := range ch.hops {
		if err := c.net.Router(h.node).ClearConnection(h.inConn); err != nil {
			return err
		}
		ns := c.nodes[h.node]
		delete(ns.usedIDs, h.inConn)
		if h.mask.Has(router.PortLocal) {
			delete(ns.usedIDs, h.outConn)
		}
		ns.total -= h.buffers
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] -= h.buffers
				key := linkKey{h.node, p}
				ls := c.link(key)
				for i := range ls.tasks {
					if ls.tasks[i].chanID == ch.ID {
						ls.tasks = append(ls.tasks[:i], ls.tasks[i+1:]...)
						break
					}
				}
			}
		}
	}
	return nil
}

// unwindCommit reverses the hops already committed by admitVia's phase 2
// when a later control write fails: table entries are cleared and the
// resource debits reversed, hop by hop.
func (c *Controller) unwindCommit(ch *Channel) {
	for _, h := range ch.hops {
		_ = c.net.Router(h.node).ClearConnection(h.inConn)
		ns := c.nodes[h.node]
		delete(ns.usedIDs, h.inConn)
		if h.mask.Has(router.PortLocal) {
			delete(ns.usedIDs, h.outConn)
		}
		ns.total -= h.buffers
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] -= h.buffers
				ls := c.link(linkKey{h.node, p})
				for i := range ls.tasks {
					if ls.tasks[i].chanID == ch.ID {
						ls.tasks = append(ls.tasks[:i], ls.tasks[i+1:]...)
						break
					}
				}
			}
		}
	}
	ch.hops = nil
}

// restore re-commits a channel's reservations exactly as they were
// before a Teardown, with no feasibility re-check: the resources were
// freed by that Teardown, so they are available by construction. It is
// the mechanical inverse of Teardown and backs the atomicity of Reroute.
func (c *Controller) restore(ch *Channel) error {
	if _, ok := c.chans[ch.ID]; ok {
		return fmt.Errorf("admission: channel %d already active", ch.ID)
	}
	newTask := task{C: ch.Spec.MessageSlots(), T: ch.Spec.Imin, D: ch.LocalD, chanID: ch.ID}
	for _, h := range ch.hops {
		if err := c.net.Router(h.node).SetConnection(h.inConn, h.outConn, uint8(ch.LocalD), h.mask); err != nil {
			return fmt.Errorf("admission: restoring channel %d at %s: %w", ch.ID, h.node, err)
		}
		ns := c.nodes[h.node]
		ns.usedIDs[h.inConn] = true
		if h.mask.Has(router.PortLocal) {
			ns.usedIDs[h.outConn] = true
		}
		ns.total += h.buffers
		for p := 0; p < router.NumPorts; p++ {
			if h.mask.Has(p) {
				ns.portBuffers[p] += h.buffers
				ls := c.link(linkKey{h.node, p})
				ls.tasks = append(ls.tasks, newTask)
			}
		}
	}
	inj := c.link(linkKey{ch.Src, portInject})
	inj.tasks = append(inj.tasks, newTask)
	c.chans[ch.ID] = ch
	if c.audit != nil {
		c.audit.Record(c.net.Shard(ch.Src), obs.AuditRecord{
			Op: "restore", Outcome: "restored", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
			Route: ch.Route(), LocalD: ch.LocalD, Hops: ch.Hops(),
			Margin: float64(ch.Margin),
		})
	}
	return nil
}

// Active returns the number of admitted channels.
func (c *Controller) Active() int { return len(c.chans) }

func (c *Controller) link(k linkKey) *linkState {
	ls, ok := c.links[k]
	if !ok {
		ls = &linkState{}
		c.links[k] = ls
	}
	return ls
}

// linkCheck runs the EDF schedulability analysis for the link with the
// candidate task added; failed links are never feasible and report the
// "link_failed" pseudo-test.
func (c *Controller) linkCheck(k linkKey, cand task) edfReport {
	if c.failed[k] {
		return edfReport{test: "link_failed", margin: -1}
	}
	ls := c.link(k)
	tasks := make([]task, 0, len(ls.tasks)+1)
	tasks = append(tasks, ls.tasks...)
	tasks = append(tasks, cand)
	return edfAnalyze(tasks)
}

// buffersAvailable checks the packet-memory reservation at one router.
func (c *Controller) buffersAvailable(n *treeNode, need int) error {
	ns := c.nodes[n.coord]
	r := c.net.Router(n.coord)
	slots := r.Config().Slots
	switch c.cfg.Policy {
	case SharedPool:
		if ns.total+need > slots {
			return &ErrBufferExhausted{
				Node: n.coord.String(), Used: ns.total, Need: need, Limit: slots,
				msg: fmt.Sprintf("admission: %s out of packet buffers (%d used + %d needed > %d)",
					n.coord, ns.total, need, slots),
			}
		}
	default:
		per := slots / router.NumPorts
		for p := 0; p < router.NumPorts; p++ {
			if n.mask.Has(p) && ns.portBuffers[p]+need > per {
				return &ErrBufferExhausted{
					Node: n.coord.String(), Port: router.PortName(p),
					Used: ns.portBuffers[p], Need: need, Limit: per,
					msg: fmt.Sprintf("admission: %s port %s partition full (%d used + %d needed > %d)",
						n.coord, router.PortName(p), ns.portBuffers[p], need, per),
				}
			}
		}
	}
	return nil
}

type idPair struct{ in, out uint8 }

// assignIDs picks the connection identifiers along the tree: a router's
// outgoing id must be free as an incoming id at every child router it
// forwards to, because the hardware rewrites one id per entry regardless
// of fan-out. The destination routers' outgoing ids become the local
// delivery ids.
func (c *Controller) assignIDs(nodes []*treeNode) (map[mesh.Coord]idPair, error) {
	byCoord := make(map[mesh.Coord]*treeNode, len(nodes))
	for _, n := range nodes {
		byCoord[n.coord] = n
	}
	ids := make(map[mesh.Coord]idPair, len(nodes))
	// Tentatively claimed incoming ids per coordinate during this
	// assignment (so two children of one parent don't collide with each
	// other before commit).
	claimed := make(map[mesh.Coord]map[uint8]bool)
	claim := func(at mesh.Coord) map[uint8]bool {
		m, ok := claimed[at]
		if !ok {
			m = make(map[uint8]bool)
			claimed[at] = m
		}
		return m
	}
	freeAt := func(at mesh.Coord, id uint8) bool {
		return !c.nodes[at].usedIDs[id] && !claim(at)[id]
	}
	conns := c.net.Router(nodes[0].coord).Config().Conns
	for i, n := range nodes {
		// Incoming id: for the source (depth 0) pick any free id; for
		// others it was fixed by the parent via claimed[].
		var in uint8
		if i == 0 {
			found := false
			for v := 0; v < conns; v++ {
				if freeAt(n.coord, uint8(v)) {
					in = uint8(v)
					found = true
					break
				}
			}
			if !found {
				return nil, &ErrIDExhausted{
					Node: n.coord.String(),
					msg:  fmt.Sprintf("admission: %s out of connection identifiers", n.coord),
				}
			}
			claim(n.coord)[in] = true
		} else {
			pair, ok := ids[n.coord]
			if !ok {
				return nil, fmt.Errorf("admission: internal: child %s visited before parent", n.coord)
			}
			in = pair.in
		}
		// Outgoing id: the hardware rewrites one id per entry, so it must
		// be free as an incoming id at every child router — and, when the
		// local bit is set, free at this node too, because the processor
		// receives it as the delivery identifier and must be able to tell
		// connections apart.
		children := make([]mesh.Coord, 0, 4)
		for p := 0; p < router.NumLinks; p++ {
			if n.mask.Has(p) {
				children = append(children, n.coord.Add(p))
			}
		}
		local := n.mask.Has(router.PortLocal)
		var out uint8
		found := false
		for v := 0; v < conns; v++ {
			if local && !freeAt(n.coord, uint8(v)) {
				continue
			}
			ok := true
			for _, ch := range children {
				if !freeAt(ch, uint8(v)) {
					ok = false
					break
				}
			}
			if ok {
				out = uint8(v)
				found = true
				break
			}
		}
		if !found {
			return nil, &ErrIDExhausted{
				Node: n.coord.String(), Common: true,
				msg: fmt.Sprintf("admission: no common free id across children of %s", n.coord),
			}
		}
		if local {
			claim(n.coord)[out] = true
		}
		for _, chd := range children {
			claim(chd)[out] = true
			ids[chd] = idPair{in: out}
		}
		ids[n.coord] = idPair{in: in, out: out}
	}
	return ids, nil
}

// MarkFailed records a bidirectional link failure so no future channel
// routes across it (pair with mesh.Network.FailLink, which cuts the
// wires). Channels already using the link keep their reservations until
// rerouted or torn down.
func (c *Controller) MarkFailed(from mesh.Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("admission: port %s is not a link", router.PortName(port))
	}
	to := from.Add(port)
	if !c.net.Contains(from) || !c.net.Contains(to) {
		return fmt.Errorf("admission: no link %s→%s", from, router.PortName(port))
	}
	c.failed[linkKey{from, port}] = true
	c.failed[linkKey{to, reverse(port)}] = true
	return nil
}

// MarkRepaired clears a previously recorded link failure in both
// directions so future admissions may route across the link again (pair
// with mesh.Network.RepairLink, which restores the wires).
func (c *Controller) MarkRepaired(from mesh.Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("admission: port %s is not a link", router.PortName(port))
	}
	to := from.Add(port)
	if !c.net.Contains(from) || !c.net.Contains(to) {
		return fmt.Errorf("admission: no link %s→%s", from, router.PortName(port))
	}
	delete(c.failed, linkKey{from, port})
	delete(c.failed, linkKey{to, reverse(port)})
	return nil
}

// reverse maps a link port to the peer router's port on the same link.
func reverse(port int) int {
	switch port {
	case router.PortXPlus:
		return router.PortXMinus
	case router.PortXMinus:
		return router.PortXPlus
	case router.PortYPlus:
		return router.PortYMinus
	default:
		return router.PortYPlus
	}
}

// Hops returns the number of routers on the channel's deepest branch —
// under single-dimension-order routing, the Manhattan distance to the
// farthest destination plus the source router itself.
func (ch *Channel) Hops() int {
	max := 0
	for _, d := range ch.Dsts {
		h := abs(d.X-ch.Src.X) + abs(d.Y-ch.Src.Y) + 1
		if h > max {
			max = h
		}
	}
	return max
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Bound returns the analytic end-to-end delay bound actually reserved:
// LocalD slots at each traversed router along the deepest branch. It is
// at most the requested Spec.D (decomposition rounds down).
func (ch *Channel) Bound() int64 {
	return ch.LocalD * int64(ch.Hops())
}

// HopID identifies one router traversal of an admitted channel: the
// node and the connection ids the packet carries arriving there (In)
// and leaving for the next hop (Out). Observability layers key per-hop
// accounting on (Node, In).
type HopID struct {
	Node mesh.Coord
	In   uint8
	Out  uint8
}

// HopIDs returns the channel's router traversals in breadth-first route
// order, source first. Delivery legs appear with the destination's
// DstConn as Out.
func (ch *Channel) HopIDs() []HopID {
	ids := make([]HopID, len(ch.hops))
	for i, h := range ch.hops {
		ids[i] = HopID{Node: h.node, In: h.inConn, Out: h.outConn}
	}
	return ids
}

// Route renders the channel's route tree hop by hop: each traversed
// router in breadth-first order with the output ports its packets fan
// out on, e.g. "(0,0)[+x] (1,0)[+x local]". Deterministic given the
// same admitted route, so audit lines are byte-stable.
func (ch *Channel) Route() string {
	var b strings.Builder
	var ports []int
	for i, h := range ch.hops {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(h.node.String())
		b.WriteByte('[')
		ports = h.mask.Ports(ports[:0])
		for j, p := range ports {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(router.PortName(p))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// Uses reports whether the channel's route crosses the given directed
// link.
func (ch *Channel) Uses(node mesh.Coord, port int) bool {
	for _, h := range ch.hops {
		if h.node == node && h.mask.Has(port) {
			return true
		}
	}
	return false
}

// Reroute re-establishes a channel after a failure (or a repair, for
// failing back to the primary path): its reservations are released and
// admission re-runs, taking the failed-link set and the freed resources
// into account. On success the old channel is invalid and the returned
// one carries fresh connection ids; the caller must re-bind its source
// regulator. On failure the old channel's reservations are restored
// verbatim, so a refused reroute leaves the channel exactly as it was.
func (c *Controller) Reroute(ch *Channel) (*Channel, error) {
	nch, err := c.reroute(ch)
	if c.audit != nil {
		rec := obs.AuditRecord{
			Op: "reroute", Channel: ch.ID,
			Src: ch.Src.String(), Dst: dstString(ch.Dsts), Spec: specString(ch.Spec),
		}
		if err != nil {
			rec.Outcome = "refused"
			rec.Err = err.Error()
			if rej, ok := Explain(err); ok {
				rec.Binding = rej.BindingResource()
				rec.Test = rej.FailingTest()
				rec.Margin = rej.FailMargin()
			}
		} else {
			rec.Outcome = "rerouted"
			rec.Channel = nch.ID
			rec.Route = nch.Route()
			rec.LocalD = nch.LocalD
			rec.Hops = nch.Hops()
			rec.Margin = float64(nch.Margin)
		}
		c.audit.Record(c.net.Shard(ch.Src), rec)
	}
	return nch, err
}

func (c *Controller) reroute(ch *Channel) (*Channel, error) {
	if err := c.Teardown(ch); err != nil {
		return nil, err
	}
	nch, err := c.Admit(ch.Src, ch.Dsts, ch.Spec)
	if err != nil {
		if rerr := c.restore(ch); rerr != nil {
			return nil, fmt.Errorf("admission: reroute of channel %d failed (%v) and restore failed: %w", ch.ID, err, rerr)
		}
		return nil, fmt.Errorf("admission: reroute of channel %d: %w", ch.ID, err)
	}
	return nch, nil
}
