package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// TestDoubleFailLink: severing an already-severed link must fail
// loudly, and the error must not disturb the recorded failure.
func TestDoubleFailLink(t *testing.T) {
	sys := MustNewMesh(2, 2, Options{})
	src := mesh.Coord{X: 0, Y: 0}
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailLink(src, router.PortXPlus); err == nil {
		t.Fatal("double FailLink accepted")
	}
	// The far end names the same wire; failing it again must also error.
	if err := sys.FailLink(mesh.Coord{X: 1, Y: 0}, router.PortXMinus); err == nil {
		t.Fatal("double FailLink via the reverse direction accepted")
	}
	if !sys.Net.LinkFailed(src, router.PortXPlus) {
		t.Fatal("failure record lost after rejected duplicates")
	}
	// Repairing twice is equally loud.
	if err := sys.RepairLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := sys.RepairLink(src, router.PortXPlus); err == nil {
		t.Fatal("double RepairLink accepted")
	}
}

// TestFailRepairFailback is the full flap story: the channel leaves its
// primary path at the failure, returns to it after the repair, and
// delivers with guarantees intact in all three phases.
func TestFailRepairFailback(t *testing.T) {
	sys := MustNewMesh(3, 3, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 80}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	send := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := ch.Send([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
			sys.Run(spec.Imin * 20)
		}
		sys.Run(spec.D * 20)
	}
	send(4)
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reroute(); err != nil {
		t.Fatal(err)
	}
	if ch.Admitted().Uses(src, router.PortXPlus) {
		t.Fatal("channel still on the failed link")
	}
	send(4)
	if err := sys.RepairLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reroute(); err != nil {
		t.Fatal(err)
	}
	if !ch.Admitted().Uses(src, router.PortXPlus) {
		t.Fatal("channel did not fail back to the primary path after repair")
	}
	send(4)
	if got := sys.Sink(dst).TCCount; got != 12 {
		t.Errorf("deliveries across fail/repair/failback: %d/12", got)
	}
	if m := sys.Summarize().TCMisses; m != 0 {
		t.Errorf("deadline misses across the flap: %d", m)
	}
}

// TestZeroSpareRerouteThenRepair: with no spare path the reroute is
// refused and the channel survives on its original reservations; once
// the link is repaired the same channel reroutes (trivially, back onto
// the repaired primary) and flows again.
func TestZeroSpareRerouteThenRepair(t *testing.T) {
	sys := MustNewMesh(2, 2, Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 1}
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 16}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := sys.FailLink(src, router.PortYPlus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reroute(); err == nil {
		t.Fatal("reroute succeeded with no live path")
	}
	if sys.Adm.Active() != 1 {
		t.Fatalf("channel lost by the refused reroute: active %d", sys.Adm.Active())
	}
	// The regression this pins: the failed reroute used to strand the
	// channel with reservations but no source regulator, so the next
	// Send errored. The pacer must have survived.
	if err := ch.Send([]byte("still paced")); err != nil {
		t.Fatalf("source regulator lost by the refused reroute: %v", err)
	}
	if err := sys.RepairLink(src, router.PortXPlus); err != nil {
		t.Fatal(err)
	}
	if err := ch.Reroute(); err != nil {
		t.Fatalf("reroute after repair: %v", err)
	}
	if err := ch.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if !sys.RunUntil(func() bool { return sys.Sink(dst).TCCount > 0 }, 20000) {
		t.Fatal("no delivery after repair-and-reroute")
	}
}

// faultedRun drives a loaded 4×4 mesh with link-level integrity on and
// (optionally) a seeded fault injector corrupting every link, recording
// the complete observable outcome for equivalence comparison.
func faultedRun(t *testing.T, workers int, inject bool, cycles int64) loadedRun {
	t.Helper()
	rcfg := router.DefaultConfig()
	rcfg.Integrity = true
	reg := metrics.NewRegistry()
	col := obs.NewSharded(4096)
	slo := obs.NewSLO()
	sys, err := NewMesh(4, 4, Options{Router: rcfg, Workers: workers, Metrics: reg, Collector: col, ChannelSLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if inject {
		inj := fault.New(1234)
		if err := inj.InjectAll(sys.Net, fault.Config{Kind: fault.Corrupt, Rate: 0.002, Burst: 3}); err != nil {
			t.Fatal(err)
		}
	}

	spec := rtc.Spec{Imin: 8, Smax: 18, D: 120}
	routes := [][]mesh.Coord{
		{{X: 0, Y: 0}, {X: 3, Y: 3}},
		{{X: 3, Y: 0}, {X: 0, Y: 3}},
		{{X: 1, Y: 2}, {X: 2, Y: 0}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], rt[1:], spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	coords := sys.Net.Coords()
	for i, c := range coords {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.UniformSize(16, 120), 0.3, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(c, be)
	}
	deliv := make([][]string, len(coords))
	for i, c := range coords {
		i, snk := i, sys.Sink(c)
		snk.OnTC = func(d router.DeliveredTC) {
			deliv[i] = append(deliv[i], fmt.Sprintf("tc c%d s%d @%d %x", d.Conn, d.Stamp, d.Cycle, d.Payload))
		}
		snk.OnBE = func(d router.DeliveredBE) {
			deliv[i] = append(deliv[i], fmt.Sprintf("be @%d %x", d.Cycle, d.Payload))
		}
	}

	sys.Run(cycles)

	var dump strings.Builder
	col.Dump(&dump)
	run := loadedRun{
		Deliveries: deliv,
		Snapshot:   reg.Snapshot(),
		Trace:      dump.String(),
		Channels:   slo.Export(),
	}
	for _, c := range coords {
		run.Stats = append(run.Stats, sys.Router(c).Stats)
	}
	return run
}

func compareRuns(t *testing.T, label string, a, b loadedRun) {
	t.Helper()
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		for i := range a.Stats {
			if a.Stats[i] != b.Stats[i] {
				t.Errorf("%s: router %d: %+v\nvs %+v", label, i, a.Stats[i], b.Stats[i])
			}
		}
		t.Fatalf("%s: router stats diverged", label)
	}
	if !reflect.DeepEqual(a.Deliveries, b.Deliveries) {
		t.Fatalf("%s: delivery sequences diverged", label)
	}
	if !reflect.DeepEqual(a.Snapshot, b.Snapshot) {
		t.Fatalf("%s: metrics snapshots diverged", label)
	}
	if a.Trace != b.Trace {
		t.Fatalf("%s: merged lifecycle traces diverged", label)
	}
	if !reflect.DeepEqual(a.Channels, b.Channels) {
		t.Fatalf("%s: SLO snapshots diverged", label)
	}
}

// TestFaultParallelEquivalence: with a fixed-seed fault process garbling
// every link, the run must stay byte-identical across worker counts —
// fault placement depends only on the seed and the traffic, never on
// scheduling.
func TestFaultParallelEquivalence(t *testing.T) {
	cycles := int64(6000)
	if testing.Short() {
		cycles = 3000
	}
	maxw := runtime.GOMAXPROCS(0)
	if maxw < 2 {
		maxw = 2
	}
	seq := faultedRun(t, 1, true, cycles)
	for _, w := range []int{2, maxw} {
		par := faultedRun(t, w, true, cycles)
		compareRuns(t, fmt.Sprintf("faults on, workers=%d", w), seq, par)
	}
	// Non-vacuity: the faults must actually have bitten and been healed.
	var nacks, rexmit, corrupt int64
	for _, st := range seq.Stats {
		nacks += st.BEFlitNacks
		rexmit += st.BEFlitRetransmits
		corrupt += st.TCCorruptDrops + st.TCFramingDrops
	}
	if nacks == 0 || rexmit == 0 {
		t.Fatalf("degenerate fault run: nacks=%d retransmits=%d", nacks, rexmit)
	}
	if corrupt == 0 {
		t.Fatal("degenerate fault run: no time-constrained drops")
	}
}

// TestIntegrityZeroFaultEquivalence: integrity machinery armed but no
// injector — the checksums must never fire, and the run must stay
// byte-identical across worker counts.
func TestIntegrityZeroFaultEquivalence(t *testing.T) {
	cycles := int64(4000)
	if testing.Short() {
		cycles = 3000
	}
	seq := faultedRun(t, 1, false, cycles)
	par := faultedRun(t, 4, false, cycles)
	compareRuns(t, "integrity on, zero faults", seq, par)
	for i, st := range seq.Stats {
		if st.TCCorruptDrops != 0 || st.TCFramingDrops != 0 || st.BEFlitNacks != 0 ||
			st.BEFlitRetransmits != 0 || st.BEFrameAborts != 0 {
			t.Fatalf("router %d: integrity machinery fired without faults: %+v", i, st)
		}
	}
}
