package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/router"
)

func TestRunE1LinearShape(t *testing.T) {
	res, err := RunE1(router.DefaultConfig(), []int{16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linear {
		t.Fatalf("latency not linear: %+v", res)
	}
	// Same regime as the paper's 30-cycle constant.
	if res.Overhead < 10 || res.Overhead > 60 {
		t.Errorf("overhead %d cycles out of the paper's regime", res.Overhead)
	}
	var buf bytes.Buffer
	res.Table().Fprint(&buf)
	if !strings.Contains(buf.String(), "linear shape reproduced") {
		t.Error("table missing linearity note")
	}
}

func TestRunE1Errors(t *testing.T) {
	if _, err := RunE1(router.DefaultConfig(), []int{2}); err == nil {
		t.Error("sub-header size accepted")
	}
	bad := router.DefaultConfig()
	bad.Slots = 0
	if _, err := RunE1(bad, []int{16}); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestRunFig7Proportionality is the headline qualitative claim of
// Figure 7: each backlogged connection receives bandwidth in proportion
// to its reservation (1/Imin), every deadline is met, and best-effort
// traffic absorbs all remaining link capacity.
func TestRunFig7Proportionality(t *testing.T) {
	res, err := RunFig7(DefaultFig7())
	if err != nil {
		t.Fatal(err)
	}
	if res.Misses != 0 {
		t.Errorf("deadline misses: %d", res.Misses)
	}
	for i := range res.Cfg.Imins {
		ratio := res.TCTotal[i] / res.Expected[i]
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("connection %d served %.0f bytes, expected %.0f (ratio %.2f)",
				i, res.TCTotal[i], res.Expected[i], ratio)
		}
	}
	// Consecutive connections differ by 2× in Imin: service halves.
	for i := 0; i+1 < len(res.TCTotal); i++ {
		r := res.TCTotal[i] / res.TCTotal[i+1]
		if r < 1.7 || r > 2.3 {
			t.Errorf("service ratio conn%d/conn%d = %.2f, want ≈2", i, i+1, r)
		}
	}
	// Best-effort must soak up most of the leftover bandwidth: total
	// link utilization above 90%.
	var tc float64
	for _, v := range res.TCTotal {
		tc += v
	}
	util := (tc + res.BETotal) / float64(res.Cfg.Cycles)
	if util < 0.9 {
		t.Errorf("link utilization %.2f; best-effort not consuming excess bandwidth", util)
	}
	if res.BETotal < tc {
		t.Errorf("best-effort (%.0f) below TC total (%.0f); with 44%% reservation BE should dominate",
			res.BETotal, tc)
	}
	if chart := res.Chart(); !strings.Contains(chart, "best-effort") {
		t.Error("chart missing legend")
	}
}

func TestRunFig7Validation(t *testing.T) {
	if _, err := RunFig7(Fig7Config{}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bbb"}}
	tb.AddRow("1", "2")
	tb.AddNote("note %d", 7)
	var buf bytes.Buffer
	tb.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "a  bbb", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
