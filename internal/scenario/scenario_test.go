package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleJSON = `{
  "mesh": {"w": 3, "h": 3},
  "cycles": 40000,
  "seed": 7,
  "admission": {"policy": "partitioned", "sourceWindow": 8, "horizon": 4},
  "channels": [
    {"src": [0,0], "dsts": [[2,2]], "imin": 8, "smax": 18, "d": 80, "pattern": "periodic"},
    {"src": [2,0], "dsts": [[0,2]], "imin": 16, "smax": 36, "d": 96, "pattern": "backlogged"},
    {"src": [1,1], "dsts": [[0,0],[2,2]], "imin": 24, "smax": 18, "d": 120, "pattern": "bursty", "bmax": 1}
  ],
  "bestEffort": [
    {"src": [0,1], "rate": 0.3, "sizeMin": 20, "sizeMax": 200},
    {"src": [2,1], "dst": [0,0], "rate": 0.2, "sizeMin": 64, "sizeMax": 64}
  ],
  "failures": [
    {"at": 20000, "from": [0,0], "port": "+x"}
  ]
}`

func TestParseValid(t *testing.T) {
	sc, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mesh.W != 3 || len(sc.Channels) != 3 || len(sc.BestEffort) != 2 || len(sc.Failures) != 1 {
		t.Errorf("parsed shape wrong: %+v", sc)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		`{`, // malformed
		`{"mesh":{"w":0,"h":1},"cycles":100}`,
		`{"mesh":{"w":2,"h":1},"cycles":0}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"router":{"scheduler":"magic"}}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"admission":{"policy":"hoard"}}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"channels":[{"src":[0,0],"dsts":[]}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"channels":[{"src":[0,0],"dsts":[[1,0]],"pattern":"chaotic"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"sideways"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":500,"from":[0,0],"port":"+x"}]}`,
		// Failure episode validation: bad kind, off-mesh nodes and links.
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","kind":"melt"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[5,0],"port":"+x"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[1,0],"port":"+x"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+y"}]}`,
		// Boundary: repair must land inside (at, cycles].
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","repair_at":10}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","repair_at":500}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","kind":"flap"}]}`,
		// Rate/burst contract per kind.
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","rate":0.1}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","kind":"corrupt"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"+x","kind":"lose","rate":1.5}]}`,
		// Duplicate/overlapping episodes on one link (second names the
		// same wire from the far end).
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[
		   {"at":10,"from":[0,0],"port":"+x"},
		   {"at":50,"from":[1,0],"port":"-x"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[
		   {"at":10,"from":[0,0],"port":"+x","kind":"flap","repair_at":60},
		   {"at":40,"from":[0,0],"port":"+x"}]}`,
	}
	for i, b := range bad {
		if _, err := Parse([]byte(b)); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
	// Sequential (non-overlapping) episodes on one link are fine, as is
	// a fault process running concurrently with an outage elsewhere.
	ok := `{"mesh":{"w":3,"h":1},"cycles":100,"failures":[
	  {"at":10,"from":[0,0],"port":"+x","kind":"flap","repair_at":40},
	  {"at":40,"from":[0,0],"port":"+x"},
	  {"at":5,"from":[1,0],"port":"+x","kind":"corrupt","rate":0.01,"repair_at":90}]}`
	if _, err := Parse([]byte(ok)); err != nil {
		t.Errorf("sequential episodes rejected: %v", err)
	}
}

// TestRunValidatesHandBuiltScenario pins the parsePort bugfix: a
// scenario constructed in code (never parsed) with a bad port string
// must fail loudly instead of silently failing the wrong link.
func TestRunValidatesHandBuiltScenario(t *testing.T) {
	var sc Scenario
	sc.Mesh.W, sc.Mesh.H = 2, 1
	sc.Cycles = 100
	sc.Failures = []LinkFail{{At: 10, From: [2]int{0, 0}, Port: "east"}}
	if _, _, err := sc.Run(); err == nil {
		t.Fatal("bad port string in a hand-built scenario not rejected")
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunEndToEnd plays the sample scenario, including the mid-run link
// failure with automatic reroute, and checks the guarantees held.
func TestRunEndToEnd(t *testing.T) {
	sc, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, sys, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 3 {
		t.Fatalf("opened %d/3 channels (rejections: %v)", res.Opened, res.Rejected)
	}
	if res.Failures != 1 {
		t.Errorf("failures played: %d", res.Failures)
	}
	// Both the (0,0)→(2,2) channel (forward direction) and the
	// (2,0)→(0,2) channel (reverse direction of the same wire) must have
	// been rerouted.
	if res.Rerouted != 2 {
		t.Errorf("rerouted %d channels, want 2 (both directions of the dead link)", res.Rerouted)
	}
	if res.Summary.TCMisses != 0 {
		t.Errorf("deadline misses: %d", res.Summary.TCMisses)
	}
	if res.Summary.TCDelivered == 0 || res.Summary.BEDelivered == 0 {
		t.Error("degenerate run")
	}
	if sys == nil {
		t.Fatal("system not returned")
	}
}

// TestRunFlapFailsBack plays a flap episode: the displaced channel is
// rerouted at the failure and failed back at the repair.
func TestRunFlapFailsBack(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "mesh": {"w": 3, "h": 3}, "cycles": 30000, "seed": 3,
	  "channels": [{"src": [0,0], "dsts": [[2,2]], "imin": 8, "smax": 18, "d": 80}],
	  "failures": [{"at": 10000, "from": [0,0], "port": "+x", "kind": "flap", "repair_at": 20000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 || res.Repairs != 1 {
		t.Errorf("timeline played %d failures, %d repairs, want 1 and 1", res.Failures, res.Repairs)
	}
	if res.Rerouted != 2 {
		t.Errorf("rerouted %d times, want 2 (away and back)", res.Rerouted)
	}
	if res.Summary.TCMisses != 0 {
		t.Errorf("deadline misses through the flap: %d", res.Summary.TCMisses)
	}
	if res.Summary.TCDelivered == 0 {
		t.Error("degenerate run")
	}
}

// TestRunCorruptEpisode arms a transient corruption process over a
// best-effort flow's path; integrity must be switched on automatically
// and the link-level recovery must show up in the result.
func TestRunCorruptEpisode(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "mesh": {"w": 2, "h": 1}, "cycles": 30000, "seed": 9,
	  "bestEffort": [{"src": [0,0], "dst": [1,0], "rate": 0.3, "sizeMin": 64, "sizeMax": 64}],
	  "failures": [{"at": 0, "from": [0,0], "port": "+x", "kind": "corrupt", "rate": 0.02, "repair_at": 30000}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.CorruptedPhits == 0 {
		t.Error("fault process never fired")
	}
	if res.Summary.BENacks == 0 || res.Summary.BERetransmits == 0 {
		t.Errorf("no link-level recovery: %+v", res.Summary)
	}
	if res.Summary.BEDelivered == 0 {
		t.Error("nothing delivered through the corruption episode")
	}
	if res.Repairs != 1 {
		t.Errorf("fault process not disarmed: repairs %d", res.Repairs)
	}
}

func TestRunRejectsInfeasibleChannel(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "mesh": {"w": 2, "h": 1}, "cycles": 1000,
	  "channels": [{"src": [0,0], "dsts": [[1,0]], "imin": 4, "smax": 18, "d": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 0 || len(res.Rejected) != 1 {
		t.Errorf("infeasible channel not reported: %+v", res)
	}
}
