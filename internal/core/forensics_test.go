package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// forensicsWorkload drives a loaded 3×3 mesh — three crossing TC
// channels plus best-effort background on every node — under the given
// options and returns the system after cycles ticks. The workload is
// deterministic, so two calls with behavior-neutral option differences
// must produce identical hardware counters.
func forensicsWorkload(t *testing.T, opts Options, inject bool, cycles int64) *System {
	t.Helper()
	rcfg := router.DefaultConfig()
	rcfg.Integrity = true
	opts.Router = rcfg
	sys, err := NewMesh(3, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inject {
		inj := fault.New(99)
		if err := inj.InjectAll(sys.Net, fault.Config{Kind: fault.Corrupt, Rate: 0.01, Burst: 3}); err != nil {
			t.Fatal(err)
		}
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 90}
	routes := [][]mesh.Coord{
		{{X: 0, Y: 0}, {X: 2, Y: 2}},
		{{X: 2, Y: 0}, {X: 0, Y: 2}},
		{{X: 0, Y: 1}, {X: 2, Y: 1}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], rt[1:], spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	for i, c := range sys.Net.Coords() {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.UniformSize(16, 96), 0.3, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(c, be)
	}
	sys.Run(cycles)
	return sys
}

// TestForensicsInert: attaching the slack-attribution engine and the
// flight recorder must not perturb the simulated machine — every
// hardware counter and delivery count matches a bare run.
func TestForensicsInert(t *testing.T) {
	bare := forensicsWorkload(t, Options{}, false, 6000)
	defer bare.Close()
	fns := obs.NewForensics()
	rec := obs.NewRecorder(64, 2)
	wired := forensicsWorkload(t, Options{Forensics: fns, Recorder: rec}, false, 6000)
	defer wired.Close()

	for _, c := range bare.Net.Coords() {
		a, b := bare.Router(c).Stats, wired.Router(c).Stats
		if a != b {
			t.Errorf("router %v counters diverged with forensics attached:\n%+v\nvs\n%+v", c, a, b)
		}
		if at, bt := bare.Sink(c).TCCount, wired.Sink(c).TCCount; at != bt {
			t.Errorf("router %v TC deliveries diverged: %d vs %d", c, at, bt)
		}
		if ab, bb := bare.Sink(c).BECount, wired.Sink(c).BECount; ab != bb {
			t.Errorf("router %v BE deliveries diverged: %d vs %d", c, ab, bb)
		}
	}
}

// TestForensicsSealedExport: the metrics sources stay nil until Flush
// seals the run (so a live scrape never races the compute phase), and
// after sealing the snapshot carries a conserved blame breakdown and
// the Prometheus text exposes the rt_blame_*/rt_forensics_* families.
func TestForensicsSealedExport(t *testing.T) {
	reg := metrics.NewRegistry()
	fns := obs.NewForensics()
	rec := obs.NewRecorder(0, 0)
	sys := forensicsWorkload(t, Options{Metrics: reg, Forensics: fns, Recorder: rec}, false, 6000)
	defer sys.Close()

	pre := reg.Snapshot()
	if pre.Blame != nil || pre.Forensics != nil {
		t.Fatal("blame/forensics exported before Flush sealed the run")
	}

	fns.Flush()
	snap := reg.Snapshot()
	if snap.Forensics == nil {
		t.Fatal("no forensics snapshot after Flush")
	}
	if len(snap.Blame) == 0 {
		t.Fatal("no blame rows after a loaded run")
	}
	fs := snap.Forensics
	if fs.Unattributed != 0 {
		t.Errorf("unattributed stall cycles: %d", fs.Unattributed)
	}
	var tcSum, rowSum int64
	for cause, v := range fs.ByCause {
		if cause != router.CauseCreditStarved.String() {
			tcSum += v
		}
	}
	if tcSum != fs.TCStallCycles {
		t.Errorf("cause sum %d != tc stall cycles %d", tcSum, fs.TCStallCycles)
	}
	// The blame matrix is the same ledger at finer grain: its cycle
	// total must equal the cause totals'.
	var causeSum int64
	for _, v := range fs.ByCause {
		causeSum += v
	}
	for _, row := range snap.Blame {
		rowSum += row.Cycles
	}
	if rowSum != causeSum {
		t.Errorf("blame rows sum %d != cause totals sum %d", rowSum, causeSum)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"rt_blame_cycles_total{",
		"rt_forensics_tc_stall_cycles_total",
		"rt_forensics_unattributed_cycles_total",
		"rt_forensics_cause_cycles_total{",
		"rt_forensics_triggers_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("Prometheus text missing %s", family)
		}
	}
}

// TestRecorderTinyRing: satellite coverage for the -short flight
// recorder path. A deliberately tiny per-node ring under a corrupting
// fault injector must keep counting evicted triggers, retain at most
// ring-depth descriptors per node in merged order, and still dump a
// well-formed JSONL window; a recorder that saw no trouble must decline
// to dump at all.
func TestRecorderTinyRing(t *testing.T) {
	col := obs.NewSharded(4096)
	slo := obs.NewSLO()
	fns := obs.NewForensics()
	rec := obs.NewRecorder(64, 2)
	sys := forensicsWorkload(t, Options{
		Collector: col, ChannelSLO: slo, Forensics: fns, Recorder: rec,
	}, true, 8000)
	defer sys.Close()
	fns.Flush()

	if rec.Count() == 0 {
		t.Fatal("corrupting injector fired no flight-recorder triggers")
	}
	if rec.CountKind("fault_drop") == 0 {
		t.Error("no fault_drop triggers under a corrupting injector")
	}
	if rec.CountKind("no_such_kind") != 0 {
		t.Error("unknown trigger kind returned a nonzero count")
	}
	ts := rec.Triggers()
	if len(ts) == 0 || int64(len(ts)) > rec.Count() {
		t.Fatalf("retained %d triggers of %d counted", len(ts), rec.Count())
	}
	if max := 9 * 2; len(ts) > max {
		t.Errorf("tiny ring retained %d triggers, cap is %d", len(ts), max)
	}
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Node < a.Node) {
			t.Fatalf("triggers out of (cycle, node) order at %d: %+v then %+v", i, a, b)
		}
	}

	var jsonl bytes.Buffer
	fired, err := rec.DumpJSONL(&jsonl, col)
	if err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("DumpJSONL declined with retained triggers")
	}
	lines := strings.Split(strings.TrimRight(jsonl.String(), "\n"), "\n")
	if !strings.Contains(lines[0], `"kind":"trigger"`) {
		t.Errorf("JSONL dump does not lead with trigger records: %q", lines[0])
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("malformed JSONL line: %q", l)
		}
		if strings.Contains(l, `"kind":"trigger"`) && !strings.Contains(l, `"free_slots":`) {
			t.Errorf("trigger record missing occupancy snapshot: %q", l)
		}
	}

	var chrome bytes.Buffer
	fired, err = rec.DumpChrome(&chrome, col, slo)
	if err != nil {
		t.Fatal(err)
	}
	if !fired || chrome.Len() == 0 {
		t.Fatal("DumpChrome declined with retained triggers")
	}

	// A recorder that never saw trouble must not write anything.
	idle := obs.NewRecorder(64, 2)
	var empty bytes.Buffer
	if fired, err := idle.DumpChrome(&empty, col, slo); err != nil || fired {
		t.Fatalf("idle recorder dumped: fired=%v err=%v", fired, err)
	}
	if fired, err := idle.DumpJSONL(&empty, col); err != nil || fired {
		t.Fatalf("idle recorder dumped JSONL: fired=%v err=%v", fired, err)
	}
	if empty.Len() != 0 {
		t.Fatalf("idle recorder wrote %d bytes", empty.Len())
	}
}
