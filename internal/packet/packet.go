// Package packet defines the wire formats of the real-time router
// (Figure 3 of the paper) and the phit-level link protocol.
//
// Each physical link carries one phit (one byte of packet data) per cycle,
// tagged with a single virtual-channel bit that separates time-constrained
// from best-effort traffic (Section 3.2); the reverse direction carries an
// acknowledgement bit used as a flit credit for the best-effort wormhole
// virtual channel. Head/Tail markers stand in for the framing the hardware
// derives from byte counting and are asserted only on the first and last
// phits of a packet.
//
// Time-constrained packets are fixed-size, 20 bytes (Figure 3a):
//
//	byte 0      connection identifier
//	byte 1      ℓ(m)+d — the local deadline at the sender, which the
//	            downstream router reads as the logical arrival time ℓ(m)
//	bytes 2-19  18 bytes of payload
//
// Best-effort packets are variable length (Figure 3b):
//
//	byte 0      x offset (signed, hops remaining in the x dimension)
//	byte 1      y offset (signed)
//	bytes 2-3   total packet length in bytes, big-endian, header included
//	bytes 4-    payload
package packet

import (
	"encoding/binary"
	"fmt"

	"repro/internal/timing"
)

// VC identifies the virtual channel a phit belongs to.
type VC uint8

const (
	// VCTime is the packet-switched virtual channel for time-constrained
	// traffic.
	VCTime VC = iota
	// VCBest is the wormhole virtual channel for best-effort traffic.
	VCBest
)

func (v VC) String() string {
	switch v {
	case VCTime:
		return "TC"
	case VCBest:
		return "BE"
	default:
		return fmt.Sprintf("VC(%d)", uint8(v))
	}
}

// Phit is one byte on a link for one cycle, plus the VC type bit and
// modelling-convenience framing markers. The sideband fields are unused
// by the real-time router; the priority-forwarding baseline model (see
// internal/baseline) uses them to propagate inherited priorities on
// otherwise idle cycles.
type Phit struct {
	Valid bool
	VC    VC
	Data  byte
	Head  bool
	Tail  bool

	SideValid bool
	Side      byte

	// Rexmit marks the first flit of a best-effort retransmission run: the
	// receiver leaves discard mode and resumes accepting at this flit.
	Rexmit bool
	// Abort marks a best-effort tail flit that terminates a frame early:
	// the upstream link died (or the retry budget ran out) mid-worm, so the
	// receiver must drop the partial frame and release the output binding.
	Abort bool
}

// Ack is the reverse-direction link signal: one best-effort flit credit
// per cycle (the paper's acknowledgement bit). TCCredit is unused by the
// real-time router, whose reservation model never blocks
// time-constrained traffic; the input-queued priority-forwarding
// baseline uses it for per-packet backpressure.
type Ack struct {
	BECredit bool
	TCCredit bool

	// BENack reports that the best-effort flit sampled this edge failed
	// its checksum; the sender must back up and retransmit from the nacked
	// flit. Only meaningful when the router runs with Config.Integrity.
	BENack bool
}

// Time-constrained packet geometry (Table 2 / Figure 3a).
const (
	TCBytes        = 20 // fixed time-constrained packet size
	TCHeaderBytes  = 2
	TCPayloadBytes = TCBytes - TCHeaderBytes
)

// Best-effort header geometry (Figure 3b).
const (
	BEHeaderBytes = 4
	// BEMaxBytes is the largest encodable best-effort packet (16-bit
	// length field).
	BEMaxBytes = 1<<16 - 1
)

// TCPacket is a decoded time-constrained packet.
type TCPacket struct {
	Conn    uint8 // connection identifier at the receiving router
	Stamp   uint8 // sender's ℓ+d == receiver's logical arrival time ℓ
	Payload [TCPayloadBytes]byte
}

// EncodeTC serializes a time-constrained packet into a fixed 20-byte
// frame.
func EncodeTC(p TCPacket) [TCBytes]byte {
	var b [TCBytes]byte
	b[0] = p.Conn
	b[1] = p.Stamp
	copy(b[2:], p.Payload[:])
	return b
}

// DecodeTC parses a 20-byte frame into a TCPacket.
func DecodeTC(b [TCBytes]byte) TCPacket {
	var p TCPacket
	p.Conn = b[0]
	p.Stamp = b[1]
	copy(p.Payload[:], b[2:])
	return p
}

// StampOf converts a scheduler stamp to the 8-bit header field. The
// header field width fixes the usable clock width at 8 bits for on-wire
// traffic, matching the paper's chip.
func StampOf(s timing.Stamp) uint8 { return uint8(s) }

// BEHeader is the decoded routing header of a best-effort packet.
type BEHeader struct {
	XOff int8   // remaining hops in x (positive = +x direction)
	YOff int8   // remaining hops in y
	Len  uint16 // total packet length in bytes, header included
}

// EncodeBEHeader writes the 4-byte best-effort header into dst.
func EncodeBEHeader(h BEHeader, dst []byte) {
	if len(dst) < BEHeaderBytes {
		panic("packet: EncodeBEHeader: dst too short")
	}
	dst[0] = byte(h.XOff)
	dst[1] = byte(h.YOff)
	binary.BigEndian.PutUint16(dst[2:4], h.Len)
}

// DecodeBEHeader parses the 4-byte best-effort header from src.
func DecodeBEHeader(src []byte) BEHeader {
	if len(src) < BEHeaderBytes {
		panic("packet: DecodeBEHeader: src too short")
	}
	return BEHeader{
		XOff: int8(src[0]),
		YOff: int8(src[1]),
		Len:  binary.BigEndian.Uint16(src[2:4]),
	}
}

// AppendBE appends a complete best-effort packet frame — header with the
// given offsets, then the payload — to dst and returns the extended
// slice. dst may be a recycled buffer (see router.BEFrameBuf), which is
// how steady-state sources avoid a frame allocation per packet.
func AppendBE(dst []byte, xoff, yoff int, payload []byte) ([]byte, error) {
	total := BEHeaderBytes + len(payload)
	if total > BEMaxBytes {
		return nil, fmt.Errorf("packet: best-effort packet of %d bytes exceeds %d", total, BEMaxBytes)
	}
	if xoff < -128 || xoff > 127 || yoff < -128 || yoff > 127 {
		return nil, fmt.Errorf("packet: offsets (%d,%d) exceed signed byte range", xoff, yoff)
	}
	var hdr [BEHeaderBytes]byte
	EncodeBEHeader(BEHeader{XOff: int8(xoff), YOff: int8(yoff), Len: uint16(total)}, hdr[:])
	return append(append(dst, hdr[:]...), payload...), nil
}

// NewBE builds a complete best-effort packet frame with the given offsets
// and payload in a fresh exact-size buffer. The length field covers
// header plus payload.
func NewBE(xoff, yoff int, payload []byte) ([]byte, error) {
	return AppendBE(make([]byte, 0, BEHeaderBytes+len(payload)), xoff, yoff, payload)
}

// Frame converts an encoded packet to a phit stream on the given VC.
// It is used by injection units and by tests that drive links directly.
func Frame(vc VC, data []byte) []Phit {
	ph := make([]Phit, len(data))
	for i, d := range data {
		ph[i] = Phit{
			Valid: true,
			VC:    vc,
			Data:  d,
			Head:  i == 0,
			Tail:  i == len(data)-1,
		}
	}
	return ph
}
