package mesh

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 3, router.DefaultConfig()); err == nil {
		t.Error("0-width mesh accepted")
	}
	if _, err := New(3, 0, router.DefaultConfig()); err == nil {
		t.Error("0-height mesh accepted")
	}
	if _, err := New(200, 1, router.DefaultConfig()); err == nil {
		t.Error("mesh beyond offset range accepted")
	}
	bad := router.DefaultConfig()
	bad.Slots = 0
	if _, err := New(2, 2, bad); err == nil {
		t.Error("invalid router config accepted")
	}
}

func TestMeshStructure(t *testing.T) {
	n := MustNew(4, 4, router.DefaultConfig())
	if len(n.Coords()) != 16 {
		t.Fatalf("got %d nodes, want 16", len(n.Coords()))
	}
	if n.Router(Coord{3, 3}) == nil || n.Router(Coord{0, 0}) == nil {
		t.Fatal("corner routers missing")
	}
	if n.Router(Coord{4, 0}) != nil {
		t.Error("out-of-range lookup returned a router")
	}
	if !n.Contains(Coord{3, 3}) || n.Contains(Coord{4, 3}) || n.Contains(Coord{-1, 0}) {
		t.Error("Contains wrong")
	}
}

func TestCoordAdd(t *testing.T) {
	c := Coord{2, 2}
	cases := map[int]Coord{
		router.PortXPlus:  {3, 2},
		router.PortXMinus: {1, 2},
		router.PortYPlus:  {2, 3},
		router.PortYMinus: {2, 1},
		router.PortLocal:  {2, 2},
	}
	for port, want := range cases {
		if got := c.Add(port); got != want {
			t.Errorf("Add(%s) = %v, want %v", router.PortName(port), got, want)
		}
	}
}

func TestXYRoute(t *testing.T) {
	route := XYRoute(Coord{0, 0}, Coord{2, 1})
	want := []int{router.PortXPlus, router.PortXPlus, router.PortYPlus, router.PortLocal}
	if len(route) != len(want) {
		t.Fatalf("route %v, want %v", route, want)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("route %v, want %v", route, want)
		}
	}
	// Walking the route from src must land on dst then stay.
	at := Coord{0, 0}
	for _, p := range route {
		at = at.Add(p)
	}
	if at != (Coord{2, 1}) {
		t.Errorf("route walks to %v", at)
	}
	// Negative directions.
	route = XYRoute(Coord{3, 3}, Coord{1, 2})
	at = Coord{3, 3}
	for _, p := range route {
		at = at.Add(p)
	}
	if at != (Coord{1, 2}) {
		t.Errorf("negative route walks to %v", at)
	}
	// Self route is just local delivery.
	if r := XYRoute(Coord{1, 1}, Coord{1, 1}); len(r) != 1 || r[0] != router.PortLocal {
		t.Errorf("self route = %v", r)
	}
}

func TestBEOffsets(t *testing.T) {
	x, y := BEOffsets(Coord{1, 2}, Coord{3, 0})
	if x != 2 || y != -2 {
		t.Errorf("offsets = %d,%d, want 2,-2", x, y)
	}
}

// TestBEAcrossMesh sends a best-effort packet corner to corner of a 4×4
// mesh, the dimension-ordered shaded path of Figure 1.
func TestBEAcrossMesh(t *testing.T) {
	n := MustNew(4, 4, router.DefaultConfig())
	src, dst := Coord{0, 3}, Coord{3, 0}
	xo, yo := BEOffsets(src, dst)
	frame, err := packet.NewBE(xo, yo, []byte("corner to corner"))
	if err != nil {
		t.Fatal(err)
	}
	n.Router(src).InjectBE(frame)
	ok := n.Kernel.RunUntil(func() bool {
		return n.Router(dst).Stats.BEDelivered > 0
	}, 50000)
	if !ok {
		t.Fatal("packet lost in mesh")
	}
	got := n.Router(dst).DrainBE()
	if string(got[0].Payload) != "corner to corner" {
		t.Errorf("payload %q", got[0].Payload)
	}
	// Dimension order: all x traffic happens in row y=3.
	if n.Router(Coord{1, 3}).Stats.BEBytes[router.PortXPlus] == 0 {
		t.Error("packet did not route x-first")
	}
	if n.Router(Coord{0, 2}).Stats.BEBytes[router.PortYMinus] != 0 {
		t.Error("packet took a y-first path")
	}
}

// TestTCAcrossMesh programs a three-hop real-time channel through the
// mesh and checks end-to-end delivery within the accumulated deadline.
func TestTCAcrossMesh(t *testing.T) {
	n := MustNew(3, 3, router.DefaultConfig())
	src, dst := Coord{0, 0}, Coord{2, 1}
	route := XYRoute(src, dst)
	// Program per-hop entries: conn id 5 everywhere, d=6 slots per hop.
	at := src
	for _, port := range route {
		if err := n.Router(at).SetConnection(5, 5, 6, 1<<port); err != nil {
			t.Fatal(err)
		}
		at = at.Add(port)
	}
	n.Router(src).InjectTC(packet.TCPacket{Conn: 5, Stamp: 0})
	ok := n.Kernel.RunUntil(func() bool {
		return n.Router(dst).Stats.TCDelivered > 0
	}, 100000)
	if !ok {
		t.Fatal("time-constrained packet lost in mesh")
	}
	d := n.Router(dst).DrainTC()[0]
	// Four hops (3 links + reception) at d=6: end-to-end deadline is
	// slot 24 = cycle 480, plus the 20-cycle reception completing.
	if d.Cycle > 500 {
		t.Errorf("delivered at cycle %d, after the composed deadline", d.Cycle)
	}
	if misses := n.TotalStats(func(s *router.Stats) int64 { return s.TCDeadlineMisses }); misses != 0 {
		t.Errorf("deadline misses in mesh: %d", misses)
	}
}

// TestLoopbackExperimentWiring reproduces the Section 5.2 wormhole path:
// injection → +x → (loop) → −x in → +y → (loop) → −y in → reception.
func TestLoopbackExperimentWiring(t *testing.T) {
	l := MustNewLoopback(router.DefaultConfig())
	frame, err := packet.NewBE(1, 1, []byte{0xEE})
	if err != nil {
		t.Fatal(err)
	}
	l.R.InjectBE(frame)
	ok := l.Kernel.RunUntil(func() bool { return l.R.Stats.BEDelivered > 0 }, 5000)
	if !ok {
		t.Fatalf("loopback packet not delivered: %+v", l.R.Stats)
	}
	if l.R.Stats.BEBytes[router.PortXPlus] == 0 || l.R.Stats.BEBytes[router.PortYPlus] == 0 {
		t.Error("packet did not traverse both loopback links")
	}
	if got := l.R.DrainBE(); got[0].Payload[0] != 0xEE {
		t.Error("payload corrupted around the loop")
	}
}

// TestLoopbackLatencyShape verifies the paper's headline result shape:
// end-to-end latency of a b-byte wormhole packet is overhead + b cycles.
func TestLoopbackLatencyShape(t *testing.T) {
	lat := func(b int) int64 {
		l := MustNewLoopback(router.DefaultConfig())
		payload := make([]byte, b-packet.BEHeaderBytes)
		frame, err := packet.NewBE(1, 1, payload)
		if err != nil {
			t.Fatal(err)
		}
		l.R.InjectBE(frame)
		if !l.Kernel.RunUntil(func() bool { return l.R.Stats.BEDelivered > 0 }, 200000) {
			t.Fatalf("%d-byte packet not delivered", b)
		}
		return l.R.DrainBE()[0].Cycle
	}
	l16, l32, l64, l128 := lat(16), lat(32), lat(64), lat(128)
	// Perfectly linear: constant difference per byte.
	if l32-l16 != 16 || l64-l32 != 32 || l128-l64 != 64 {
		t.Errorf("latency not linear in b: %d %d %d %d", l16, l32, l64, l128)
	}
	overhead := l16 - 16
	// The paper reports 30+b for its circuit; our pipeline model lands in
	// the same few-cycles-per-hop regime.
	if overhead < 10 || overhead > 60 {
		t.Errorf("per-path overhead %d cycles implausible (paper: 30)", overhead)
	}
	t.Logf("loopback wormhole latency = %d + b cycles (paper: 30 + b)", overhead)
}

func TestTotalStats(t *testing.T) {
	n := MustNew(2, 2, router.DefaultConfig())
	frame, _ := packet.NewBE(0, 0, []byte("x"))
	n.Router(Coord{0, 0}).InjectBE(frame)
	n.Run(200)
	if got := n.TotalStats(func(s *router.Stats) int64 { return s.BEDelivered }); got != 1 {
		t.Errorf("TotalStats BEDelivered = %d, want 1", got)
	}
}

// TestDegenerateMeshShapes exercises 1-wide and 1-tall meshes, where
// most routers have unwired ports.
func TestDegenerateMeshShapes(t *testing.T) {
	for _, dims := range [][2]int{{4, 1}, {1, 4}, {1, 1}, {8, 2}} {
		n := MustNew(dims[0], dims[1], router.DefaultConfig())
		src := Coord{0, 0}
		dst := Coord{dims[0] - 1, dims[1] - 1}
		if src == dst {
			continue
		}
		xo, yo := BEOffsets(src, dst)
		frame, err := packet.NewBE(xo, yo, []byte("shape"))
		if err != nil {
			t.Fatal(err)
		}
		n.Router(src).InjectBE(frame)
		ok := n.Kernel.RunUntil(func() bool {
			return n.Router(dst).Stats.BEDelivered > 0
		}, 50000)
		if !ok {
			t.Errorf("%dx%d: packet lost", dims[0], dims[1])
		}
	}
}

// TestLargeMeshSoak runs an 8x8 mesh with cross traffic — the "larger
// network configurations" the paper defers to its simulator companion.
func TestLargeMeshSoak(t *testing.T) {
	n := MustNew(8, 8, router.DefaultConfig())
	// Every edge node sends best-effort to its mirror.
	sent := 0
	for i := 0; i < 8; i++ {
		pairs := [][2]Coord{
			{{i, 0}, {7 - i, 7}},
			{{0, i}, {7, 7 - i}},
		}
		for _, p := range pairs {
			xo, yo := BEOffsets(p[0], p[1])
			frame, err := packet.NewBE(xo, yo, make([]byte, 120))
			if err != nil {
				t.Fatal(err)
			}
			n.Router(p[0]).InjectBE(frame)
			sent++
		}
	}
	ok := n.Kernel.RunUntil(func() bool {
		return n.TotalStats(func(s *router.Stats) int64 { return s.BEDelivered }) >= int64(sent)
	}, 300000)
	if !ok {
		got := n.TotalStats(func(s *router.Stats) int64 { return s.BEDelivered })
		t.Fatalf("delivered %d/%d across the 8x8 mesh", got, sent)
	}
	if over := n.TotalStats(func(s *router.Stats) int64 { return s.BEBufferOverruns }); over != 0 {
		t.Errorf("flit buffer overruns: %d", over)
	}
	if mis := n.TotalStats(func(s *router.Stats) int64 { return s.BEMisroutes }); mis != 0 {
		t.Errorf("misroutes: %d", mis)
	}
}

// TestRouteAllocations: the dimension-ordered route helpers make
// exactly one allocation — the exact-length result slice — however
// long the route.
func TestRouteAllocations(t *testing.T) {
	cases := [][2]Coord{
		{{X: 0, Y: 0}, {X: 0, Y: 0}},
		{{X: 0, Y: 0}, {X: 7, Y: 7}},
		{{X: 7, Y: 2}, {X: 1, Y: 5}},
		{{X: 3, Y: 6}, {X: 3, Y: 0}},
	}
	var sink []int
	for _, tc := range cases {
		for name, route := range map[string]func(Coord, Coord) []int{"XYRoute": XYRoute, "YXRoute": YXRoute} {
			allocs := testing.AllocsPerRun(100, func() {
				sink = route(tc[0], tc[1])
			})
			if allocs != 1 {
				t.Errorf("%s(%v,%v): %.1f allocs/op, want exactly 1", name, tc[0], tc[1], allocs)
			}
			want := routeLen(tc[0], tc[1])
			if len(sink) != want || cap(sink) != want {
				t.Errorf("%s(%v,%v): len=%d cap=%d, want both %d", name, tc[0], tc[1], len(sink), cap(sink), want)
			}
		}
	}
}

// TestRegisterAtShardAffinity: RegisterAt puts a component in the same
// shard as its router, so kernel parallel mode keeps their tick order.
func TestRegisterAtShardAffinity(t *testing.T) {
	n := MustNew(3, 2, router.DefaultConfig())
	defer n.Close()
	if got := n.Shard(Coord{X: 2, Y: 1}); got != 5 {
		t.Fatalf("Shard((2,1)) = %d, want 5 (row-major)", got)
	}
	before := n.Kernel.Components()
	n.RegisterAt(Coord{X: 1, Y: 1}, nopComp{})
	if n.Kernel.Components() != before+1 {
		t.Fatal("RegisterAt did not register the component")
	}
}

type nopComp struct{}

func (nopComp) Name() string   { return "nop" }
func (nopComp) Tick(sim.Cycle) {}
