package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// FailoverResult is the X9 study of the resilience story the paper's
// introduction motivates: multi-hop topologies offer disjoint routes,
// so a link failure costs a re-establishment, not the connection. One
// periodic channel runs across a 3×3 mesh in three phases — healthy,
// failed (its XY link severed, traffic blackholing), and recovered
// (rerouted onto the disjoint YX path).
type FailoverResult struct {
	Phases    []string
	Sent      []int64
	Delivered []int64
	Drops     []int64
	Misses    []int64
	// RerouteOK records that re-admission found the disjoint path.
	RerouteOK bool
}

// RunFailover runs the three-phase timeline with the given messages per
// phase.
func RunFailover(perPhase int) (*FailoverResult, error) {
	if perPhase < 1 {
		return nil, fmt.Errorf("experiments: need at least one message per phase")
	}
	sys, err := core.NewMesh(3, 3, core.Options{})
	if err != nil {
		return nil, err
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: 80}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		return nil, err
	}
	res := &FailoverResult{}
	seq := uint32(0)
	phase := func(name string, n int) error {
		startDeliv := sys.Sink(dst).TCCount
		startSum := sys.Summarize()
		for i := 0; i < n; i++ {
			body := make([]byte, packet.TCPayloadBytes)
			traffic.EncodeProbe(body, sys.Now()+1, seq)
			seq++
			if err := ch.Send(body); err != nil {
				return err
			}
			sys.Run(spec.Imin * packet.TCBytes)
		}
		sys.Run(spec.D * packet.TCBytes)
		endSum := sys.Summarize()
		res.Phases = append(res.Phases, name)
		res.Sent = append(res.Sent, int64(n))
		res.Delivered = append(res.Delivered, sys.Sink(dst).TCCount-startDeliv)
		res.Drops = append(res.Drops, endSum.TCDrops-startSum.TCDrops)
		res.Misses = append(res.Misses, endSum.TCMisses-startSum.TCMisses)
		return nil
	}
	if err := phase("healthy (XY route)", perPhase); err != nil {
		return nil, err
	}
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		return nil, err
	}
	if err := phase("link failed, not yet rerouted", perPhase); err != nil {
		return nil, err
	}
	if err := ch.Reroute(); err != nil {
		return nil, err
	}
	res.RerouteOK = !ch.Admitted().Uses(src, router.PortXPlus)
	if err := phase("recovered (YX route)", perPhase); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the timeline.
func (r *FailoverResult) Table() *Table {
	t := &Table{
		Title:  "X9 — link failure and re-establishment (3x3 mesh, disjoint XY/YX routes)",
		Header: []string{"phase", "sent", "delivered", "dropped", "misses"},
	}
	for i, p := range r.Phases {
		t.AddRow(p, d(r.Sent[i]), d(r.Delivered[i]), d(r.Drops[i]), d(r.Misses[i]))
	}
	if r.RerouteOK {
		t.AddNote("re-admission moved the channel onto the disjoint dimension order; guarantees resumed")
	} else {
		t.AddNote("WARNING: rerouted channel still crosses the failed link")
	}
	return t
}
