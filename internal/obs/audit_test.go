package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestAuditLogMergeOrder(t *testing.T) {
	l := NewAuditLog()
	// Records land on interleaved shards; the global Seq must win.
	l.Record(3, AuditRecord{Op: "admit", Outcome: "admitted", Channel: 0})
	l.Record(1, AuditRecord{Op: "admit", Outcome: "admitted", Channel: 1})
	l.Record(3, AuditRecord{Op: "teardown", Outcome: "released", Channel: 0})
	l.Record(0, AuditRecord{Op: "admit", Outcome: "rejected", Channel: -1})
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	recs := l.Merged()
	for i, r := range recs {
		if int(r.Seq) != i {
			t.Errorf("position %d holds Seq %d", i, r.Seq)
		}
	}
	if recs[0].Node != 3 || recs[0].NodeSeq != 0 {
		t.Errorf("first record %+v", recs[0])
	}
	if recs[2].Node != 3 || recs[2].NodeSeq != 1 {
		t.Errorf("third record on shard 3 has NodeSeq %d, want 1", recs[2].NodeSeq)
	}
	l.Reset()
	if l.Len() != 0 || len(l.Merged()) != 0 {
		t.Error("Reset did not clear the log")
	}
	l.Record(0, AuditRecord{Op: "admit"})
	if got := l.Merged(); len(got) != 1 || got[0].Seq != 0 {
		t.Errorf("sequence after Reset: %+v", got)
	}
}

func TestAuditRecordString(t *testing.T) {
	full := AuditRecord{
		Seq: 7, Node: 2, NodeSeq: 3, Op: "admit", Outcome: "admitted",
		Channel: 5, Src: "(0,0)", Dst: "(2,1)", Spec: "spec[Imin=8 Smax=18 Bmax=0 D=40]",
		Route: "(0,0)[+x] (1,0)[+x local]", LocalD: 10, Hops: 4, Margin: 3,
	}
	want := `#7 n2.3 admit ch5 admitted (0,0)->(2,1) spec[Imin=8 Smax=18 Bmax=0 D=40] d=10 hops=4 route=(0,0)[+x] (1,0)[+x local] margin=+3`
	if got := full.String(); got != want {
		t.Errorf("String()\n got %q\nwant %q", got, want)
	}
	rej := AuditRecord{
		Seq: 8, Op: "admit", Outcome: "rejected", Channel: -1,
		Src: "(0,0)", Dst: "(1,0)", Margin: -0.25,
		Binding: "(0,0)→inject", Test: "utilization", Err: "overloaded",
	}
	s := rej.String()
	for _, frag := range []string{"margin=-0.25", "binding=(0,0)→inject", "test=utilization", `err="overloaded"`} {
		if !strings.Contains(s, frag) {
			t.Errorf("rejection line %q missing %q", s, frag)
		}
	}
	if strings.Contains(s, "ch-1") {
		t.Errorf("rejection line renders a channel id: %q", s)
	}

	var buf bytes.Buffer
	l := NewAuditLog()
	l.Record(0, full)
	if err := l.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "#0 n0.0 admit ch5") {
		t.Errorf("dump restamps wrongly: %q", buf.String())
	}
}
