// Wormhole demonstrates the paper's first experiment (Section 5.2): a
// single router chip with its +x and +y links looped back onto its own
// −x and −y inputs. A best-effort packet injected with offsets (1,1)
// crosses the chip three times and its end-to-end latency is a small
// constant plus one cycle per byte — the signature of wormhole
// switching (the paper measures 30 + b on its circuit).
package main

import (
	"fmt"
	"log"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
)

func main() {
	fmt.Println("single-chip loopback: injection → +x → −x → +y → −y → reception")
	fmt.Printf("%8s  %10s  %12s\n", "bytes", "latency", "latency − b")
	prevOverhead := int64(-1)
	for _, b := range []int{8, 16, 64, 256, 1024, 4096} {
		loop, err := mesh.NewLoopback(router.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		frame, err := packet.NewBE(1, 1, make([]byte, b-packet.BEHeaderBytes))
		if err != nil {
			log.Fatal(err)
		}
		loop.R.InjectBE(frame)
		if !loop.Kernel.RunUntil(func() bool { return loop.R.Stats.BEDelivered > 0 }, 1<<22) {
			log.Fatalf("%d-byte packet never arrived", b)
		}
		lat := loop.R.DrainBE()[0].Cycle
		overhead := lat - int64(b)
		fmt.Printf("%8d  %10d  %12d\n", b, lat, overhead)
		if prevOverhead >= 0 && overhead != prevOverhead {
			log.Fatal("latency is not linear in packet size")
		}
		prevOverhead = overhead
	}
	fmt.Printf("\nmeasured: latency = %d + b cycles (paper's circuit: 30 + b)\n", prevOverhead)
	fmt.Println("ok: wormhole latency is linear in packet length across three chip crossings")
}
