package experiments

import (
	"fmt"

	"repro/internal/router"
	"repro/internal/sched"
)

// SharingResult is the X11 study making Section 5.1's cost-reduction
// alternative live: combining several comparator-tree leaves into one
// module with a single comparator cuts the tree's area by the sharing
// factor, but each selection must serialize through the module's
// packets — the scheduler beat slows proportionally. The study runs the
// X2 bottleneck workload at increasing sharing factors and reports when
// the slower scheduler stops keeping the link busy inside the tight
// stream's slack.
type SharingResult struct {
	Factors     []int
	Comparators []int
	TightMiss   []float64
	TightP99    []float64
	LooseMiss   []float64
}

// RunSharing sweeps the leaf-sharing factor over the X2 workload.
func RunSharing(factors []int, cycles int64) (*SharingResult, error) {
	if len(factors) == 0 || cycles < 10000 {
		return nil, fmt.Errorf("experiments: invalid sharing sweep config")
	}
	res := &SharingResult{Factors: factors}
	for _, f := range factors {
		cfg := router.DefaultConfig()
		cfg.LeafSharing = f
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		tight, loose, err := runCompareRouter(cfg, cycles)
		if err != nil {
			return nil, fmt.Errorf("experiments: sharing %d: %w", f, err)
		}
		res.Comparators = append(res.Comparators, sched.CostModelShared(cfg.Slots, f, cfg.ClockBits, 2).Comparators)
		res.TightMiss = append(res.TightMiss, tight.missRate())
		res.TightP99 = append(res.TightP99, tight.lat.Quantile(0.99))
		res.LooseMiss = append(res.LooseMiss, loose.missRate())
	}
	return res, nil
}

// Table renders the sweep.
func (r *SharingResult) Table() *Table {
	t := &Table{
		Title:  "X11 — §5.1 leaf sharing made live: comparator area vs. scheduling throughput",
		Header: []string{"leaves/module", "comparators", "tight miss%", "tight p99 (cyc)", "loose miss%"},
	}
	for i, f := range r.Factors {
		t.AddRow(di(f), di(r.Comparators[i]), f1(r.TightMiss[i]*100), f1(r.TightP99[i]), f1(r.LooseMiss[i]*100))
	}
	t.AddNote("each doubling of the sharing factor halves the tree but doubles the selection beat;")
	t.AddNote("round-robin beats serve idle ports too, so the busy port's selection rate falls below")
	t.AddNote("one per packet time almost immediately — §5.1's untested trade, measured: the two-stage")
	t.AddNote("pipeline's throughput headroom (§5.1's 'sufficient to satisfy the output ports') is load-bearing")
	return t
}
