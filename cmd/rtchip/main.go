// Command rtchip prints the modelled router's specification — the
// architectural half of the paper's Table 4 — and the comparator-tree
// cost model for nearby design points. The silicon half (area,
// transistors, power) belongs to the authors' 0.5 µm implementation and
// is not modelled; see DESIGN.md §5.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sched"
)

func main() {
	leaves := flag.Int("leaves", 0, "also print the cost model for this leaf count")
	stages := flag.Int("stages", 2, "pipeline stages for the extra cost point")
	flag.Parse()

	cfg := router.DefaultConfig()
	fmt.Println("real-time router — modelled configuration (paper Table 4a)")
	fmt.Printf("  connections:               %d\n", cfg.Conns)
	fmt.Printf("  time-constrained packets:  %d x %d bytes\n", cfg.Slots, packet.TCBytes)
	fmt.Printf("  clock (sorting key):       %d (%d) bits\n", cfg.ClockBits, cfg.ClockBits+1)
	fmt.Printf("  comparator tree pipeline:  one selection per %d cycles\n", cfg.SchedPeriod)
	fmt.Printf("  flit input buffer:         %d bytes\n", cfg.FlitBufBytes)
	fmt.Printf("  memory chunk:              %d bytes/cycle\n", cfg.ChunkBytes)
	fmt.Printf("  ports:                     %d in + %d out (4 links, injection, reception)\n\n",
		router.NumPorts, router.NumPorts)

	res := experiments.RunChip()
	res.Table().Fprint(os.Stdout)
	res.SharedTable().Fprint(os.Stdout)
	res.ClockTable().Fprint(os.Stdout)

	if *leaves > 0 {
		if *stages < 1 {
			fmt.Fprintln(os.Stderr, "rtchip: stages must be positive")
			os.Exit(2)
		}
		c := sched.CostModel(*leaves, cfg.ClockBits, *stages)
		fmt.Printf("custom point: %d leaves → %d comparators, %d levels, %d rows/stage over %d stages\n",
			c.Leaves, c.Comparators, c.Levels, c.RowsPerStage, c.Stages)
	}
}
