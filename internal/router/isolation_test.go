package router

import (
	"testing"

	"repro/internal/packet"
)

// TestMisbehavingConnectionIsolation checks the claim at the heart of
// the real-time channel model (Section 2): "the model limits the
// influence an ill-behaving or malicious connection can have on other
// traffic in the network." A rogue source floods far beyond its
// reservation while a compliant connection shares the link; the
// compliant connection must keep every deadline.
func TestMisbehavingConnectionIsolation(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	// Compliant: conn 1, one packet per 4 slots, d=4 per hop.
	if err := r.a.SetConnection(1, 2, 4, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 4, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// Rogue: conn 3, nominally one packet per 8 slots, d=8.
	if err := r.a.SetConnection(3, 4, 8, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(4, 8, 8, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}

	// The rogue generates as fast as the header stamps can represent:
	// its honest logical clock advances Imin=8 per message while it
	// keeps the maximum in-flight backlog the 8-bit clock's half-range
	// permits (the regulator enforces exactly this cap in the full
	// stack; here we drive the port directly to stress the hardware).
	const slots = 400
	const runAhead = 100 // < half clock range, the §4.3 bound
	rogueL := int64(0)
	for s := int64(0); s < slots; s++ {
		slot := r.a.SlotNow(int64(r.k.Now()))
		if s%4 == 0 {
			// Compliant source: on-time, properly spaced.
			r.a.InjectTC(tcPkt(1, packet.StampOf(slot), byte(s)))
		}
		// One rogue release per slot at most: the injection port carries
		// one packet per slot, and the full stack's regulator would
		// never queue the port deeper (its deadline order is what keeps
		// the compliant stream's port access timely).
		if rogueL < s+runAhead {
			r.a.InjectTC(tcPkt(3, uint8(rogueL%256), 0xFF))
			rogueL += 8
		}
		r.k.Run(packet.TCBytes)
	}
	r.k.Run(40 * packet.TCBytes)

	// The compliant connection delivered everything within bounds: its
	// per-hop d=4 twice → every packet in by ℓ0+8 slots.
	var compliant, rogue int
	for _, d := range r.b.DrainTC() {
		switch d.Conn {
		case 7:
			compliant++
		case 8:
			rogue++
		}
	}
	if want := slots / 4; compliant != want {
		t.Errorf("compliant connection delivered %d/%d", compliant, want)
	}
	if r.a.Stats.TCDeadlineMisses != 0 || r.b.Stats.TCDeadlineMisses != 0 {
		t.Errorf("deadline misses under rogue flood: A=%d B=%d",
			r.a.Stats.TCDeadlineMisses, r.b.Stats.TCDeadlineMisses)
	}
	// The rogue was throttled to its reservation: one packet per 8 slots
	// crossed the link (plus its in-flight run-ahead); the excess sat as
	// ineligible early traffic at A.
	if limit := (slots+runAhead)/8 + 4; rogue > limit {
		t.Errorf("rogue pushed %d packets through, reservation allows ~%d", rogue, limit)
	}
	// And router B was never flooded: the early holding kept the rogue's
	// backlog at A.
	if r.b.Stats.TCDropsNoSlot != 0 {
		t.Errorf("rogue overflowed the downstream router: %d drops", r.b.Stats.TCDropsNoSlot)
	}
}

// TestStaleStampFloodLimitation documents the boundary of the
// hardware's protection: a rogue that forges its logical arrival times
// ("everything is on-time now") defeats the eligibility mechanism, and
// under the resulting >100% on-time load even the compliant stream
// accumulates misses. This is by design in the paper's model: initial
// ℓ0 stamps come from the source node's protocol software (the trusted
// regulator); every LATER hop's stamp is computed by router hardware
// from the connection table, so remote nodes cannot forge. The test
// pins the failure mode so the trust boundary stays visible.
func TestStaleStampFloodLimitation(t *testing.T) {
	r := newPairRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 2, 4, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(2, 7, 4, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// The rogue's table entry grants it d=30 — a loose bound, so its
	// always-on-time flood still sorts behind the compliant stream.
	if err := r.a.SetConnection(3, 4, 30, maskOf(PortXPlus)); err != nil {
		t.Fatal(err)
	}
	if err := r.b.SetConnection(4, 8, 30, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// Track per-connection misses precisely through the transmit hooks:
	// the flood may miss its own loose deadlines once backlogged — that
	// IS the isolation working — but the compliant stream must not.
	var compliantMisses, rogueMisses int
	hook := func(ev TCTransmitEvent) {
		if !ev.Missed {
			return
		}
		if ev.InConn == 1 || ev.InConn == 2 {
			compliantMisses++
		} else {
			rogueMisses++
		}
	}
	r.a.OnTCTransmit = hook
	r.b.OnTCTransmit = hook

	const slots = 200
	for s := int64(0); s < slots; s++ {
		slot := packet.StampOf(r.a.SlotNow(int64(r.k.Now())))
		if s%4 == 0 {
			r.a.InjectTC(tcPkt(1, slot, byte(s)))
		}
		r.a.InjectTC(tcPkt(3, slot, 0xFF)) // flood, stamped "now"
		r.k.Run(packet.TCBytes)
	}
	r.k.Run(40 * packet.TCBytes)
	var compliant int
	for _, d := range r.b.DrainTC() {
		if d.Conn == 7 {
			compliant++
		}
	}
	// The forged flood offers 1 packet/slot on top of the compliant
	// 0.25/slot: 125% on-time load. EDF degrades both — the documented
	// limitation.
	if compliantMisses == 0 && compliant == slots/4 {
		t.Error("stale-stamp flood caused no harm; if the hardware now enforces " +
			"per-connection rates, update the trust-boundary docs (DESIGN.md §5)")
	}
	// What must still hold: conservation (no wedging, no corruption) and
	// bounded damage — the compliant stream keeps flowing at a majority
	// of its rate rather than starving outright.
	if compliant < (slots/4)*3/5 {
		t.Errorf("compliant stream starved: %d/%d delivered", compliant, slots/4)
	}
	_ = rogueMisses
}
