package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// CompareResult is the X2 extension study: the same two-class workload
// run over five router architectures — the paper's deadline-driven
// design, a FIFO output-queued switch, a static-priority scheduler,
// the priority-forwarding chip model, and a two-VC priority wormhole
// router. The workload interleaves a tight-deadline command stream with
// bulky loose-deadline streams that share its bottleneck link, the
// scenario the paper's Related Work argues FIFO hardware cannot serve.
// (The priority-VC design's intra-channel head-of-line limitation needs
// co-resident bulk traffic on the SAME channel to surface; baseline's
// TestVCHeadOfLineBlocking pins it directly.)
//
// Topology: a 3-router line. Two "loose" connections (Imin=16 slots,
// 5-packet messages, d=16/hop) run (0,0)→(2,0); one "tight" connection
// (Imin=4, 1 packet, d=4/hop) runs (1,0)→(2,0), contending with the
// loose streams at router (1,0)'s +x link.
type CompareResult struct {
	Disciplines []string
	TightMiss   []float64 // fraction of tight packets past their bound
	LooseMiss   []float64
	TightMean   []float64 // mean latency, cycles
	LooseMean   []float64
	TightN      []int64
	LooseN      []int64
}

const (
	cmpTightImin = 4
	cmpTightD    = 8 // 2 hops × d=4
	cmpLooseImin = 16
	cmpLooseSmax = 90 // 5 packets per message
	cmpLooseD    = 48 // 3 hops × d=16
)

// missBound converts an end-to-end slot bound into a cycle budget: the
// bound, plus the delivery slot itself, plus pipeline slack.
func missBound(dSlots int64) float64 {
	return float64((dSlots+2)*packet.TCBytes) + 10
}

// RunCompare evaluates all five architectures.
func RunCompare(cycles int64) (*CompareResult, error) {
	if cycles < 10000 {
		return nil, fmt.Errorf("experiments: comparison needs at least 10000 cycles")
	}
	res := &CompareResult{}
	kinds := []struct {
		name string
		cfg  router.Config
	}{
		{"real-time (EDF)", router.DefaultConfig()},
		{"FIFO output-queued", baseline.FIFOConfig()},
		{"static priority", baseline.StaticPriorityConfig()},
	}
	for _, k := range kinds {
		tight, loose, err := runCompareRouter(k.cfg, cycles)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", k.name, err)
		}
		res.add(k.name, tight, loose)
	}
	tight, loose, err := runComparePF(cycles)
	if err != nil {
		return nil, fmt.Errorf("experiments: priority-forwarding: %w", err)
	}
	res.add("priority-forwarding", tight, loose)
	tight, loose, err = runCompareVC(cycles)
	if err != nil {
		return nil, fmt.Errorf("experiments: priority-VC wormhole: %w", err)
	}
	res.add("priority-VC wormhole", tight, loose)
	return res, nil
}

func (r *CompareResult) add(name string, tight, loose *classStats) {
	r.Disciplines = append(r.Disciplines, name)
	r.TightMiss = append(r.TightMiss, tight.missRate())
	r.LooseMiss = append(r.LooseMiss, loose.missRate())
	r.TightMean = append(r.TightMean, tight.lat.Mean())
	r.LooseMean = append(r.LooseMean, loose.lat.Mean())
	r.TightN = append(r.TightN, int64(tight.lat.N()))
	r.LooseN = append(r.LooseN, int64(loose.lat.N()))
}

type classStats struct {
	lat    stats.Hist
	bound  float64
	misses int64
}

func (c *classStats) observe(latency float64) {
	c.lat.Add(latency)
	if latency > c.bound {
		c.misses++
	}
}

func (c *classStats) missRate() float64 {
	if c.lat.N() == 0 {
		return 0
	}
	return float64(c.misses) / float64(c.lat.N())
}

// runCompareRouter drives the workload over real-time router hardware
// with the given scheduler configuration.
func runCompareRouter(cfg router.Config, cycles int64) (tight, loose *classStats, err error) {
	sys, err := core.NewMesh(3, 1, core.Options{Router: cfg})
	if err != nil {
		return nil, nil, err
	}
	dst := mesh.Coord{X: 2, Y: 0}
	looseSpec := rtc.Spec{Imin: cmpLooseImin, Smax: cmpLooseSmax, D: cmpLooseD}
	tightSpec := rtc.Spec{Imin: cmpTightImin, Smax: packet.TCPayloadBytes, D: cmpTightD}

	tight = &classStats{bound: missBound(cmpTightD)}
	loose = &classStats{bound: missBound(cmpLooseD)}
	byConn := map[uint8]*classStats{}

	open := func(src mesh.Coord, spec rtc.Spec, cls *classStats, tag string) error {
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return err
		}
		byConn[ch.Admitted().DstConn[0]] = cls
		app, err := traffic.NewTCApp(tag, ch.Paced(), spec, traffic.Periodic, spec.Smax)
		if err != nil {
			return err
		}
		sys.Net.Kernel.Register(app)
		return nil
	}
	if err := open(mesh.Coord{X: 0, Y: 0}, looseSpec, loose, "loose0"); err != nil {
		return nil, nil, err
	}
	if err := open(mesh.Coord{X: 0, Y: 0}, looseSpec, loose, "loose1"); err != nil {
		return nil, nil, err
	}
	if err := open(mesh.Coord{X: 1, Y: 0}, tightSpec, tight, "tight"); err != nil {
		return nil, nil, err
	}
	sys.Sink(dst).OnTC = func(d router.DeliveredTC) {
		cls, ok := byConn[d.Conn]
		if !ok {
			return
		}
		inj, _ := traffic.DecodeProbe(d.Payload[:])
		if inj > 0 && inj <= d.Cycle {
			cls.observe(float64(d.Cycle - inj))
		}
	}
	sys.Run(cycles)
	return tight, loose, nil
}

// pfInjector submits periodic messages to a PF router with a static
// priority in the stamp byte.
type pfInjector struct {
	name string
	r    *baseline.PFRouter
	conn uint8
	prio uint8
	imin int64 // slots
	pkts int   // packets per message
	next int64 // next release cycle
	seq  uint32
}

func (a *pfInjector) Name() string { return a.name }
func (a *pfInjector) Tick(now sim.Cycle) {
	if int64(now) < a.next {
		return
	}
	a.next = int64(now) + a.imin*packet.TCBytes
	for i := 0; i < a.pkts; i++ {
		p := packet.TCPacket{Conn: a.conn, Stamp: a.prio}
		// Probe only the first packet so message-level latency counting
		// matches the TCApp-driven architectures.
		if i == 0 {
			traffic.EncodeProbe(p.Payload[:], int64(now), a.seq)
			a.seq++
		}
		a.r.Inject(p)
	}
}

// runComparePF drives the same workload over the priority-forwarding
// model. Static priorities: tight = 4, loose = 16 (their local delay
// bounds, as a deadline-monotonic assignment).
func runComparePF(cycles int64) (tight, loose *classStats, err error) {
	k := sim.NewKernel()
	rs := make([]*baseline.PFRouter, 3)
	for i := range rs {
		rs[i], err = baseline.NewPFRouter(fmt.Sprintf("pf%d", i), 256)
		if err != nil {
			return nil, nil, err
		}
	}
	for i := 0; i < 2; i++ {
		fw := router.NewChannel(k)
		rs[i].ConnectOut(router.PortXPlus, fw.Out())
		rs[i+1].ConnectIn(router.PortXMinus, fw.In())
		bw := router.NewChannel(k)
		rs[i+1].ConnectOut(router.PortXMinus, bw.Out())
		rs[i].ConnectIn(router.PortXPlus, bw.In())
	}
	// Routes: loose ids 1,2 from pf0; tight id 3 from pf1; all delivered
	// at pf2.
	for _, id := range []uint8{1, 2} {
		if err := rs[0].SetRoute(id, id, 1<<router.PortXPlus); err != nil {
			return nil, nil, err
		}
		if err := rs[1].SetRoute(id, id, 1<<router.PortXPlus); err != nil {
			return nil, nil, err
		}
		if err := rs[2].SetRoute(id, id, 1<<router.PortLocal); err != nil {
			return nil, nil, err
		}
	}
	if err := rs[1].SetRoute(3, 3, 1<<router.PortXPlus); err != nil {
		return nil, nil, err
	}
	if err := rs[2].SetRoute(3, 3, 1<<router.PortLocal); err != nil {
		return nil, nil, err
	}

	tight = &classStats{bound: missBound(cmpTightD)}
	loose = &classStats{bound: missBound(cmpLooseD)}
	apps := []*pfInjector{
		{name: "loose0", r: rs[0], conn: 1, prio: 16, imin: cmpLooseImin, pkts: 5},
		{name: "loose1", r: rs[0], conn: 2, prio: 16, imin: cmpLooseImin, pkts: 5},
		{name: "tight", r: rs[1], conn: 3, prio: 4, imin: cmpTightImin, pkts: 1},
	}
	for _, a := range apps {
		k.Register(a)
	}
	for _, r := range rs {
		k.Register(r)
	}
	collect := &pfCollector{r: rs[2], tight: tight, loose: loose}
	k.Register(collect)
	k.Run(cycles)
	return tight, loose, nil
}

type pfCollector struct {
	r            *baseline.PFRouter
	tight, loose *classStats
}

func (c *pfCollector) Name() string { return "pf-collect" }
func (c *pfCollector) Tick(now sim.Cycle) {
	for _, d := range c.r.DrainTC() {
		inj, _ := traffic.DecodeProbe(d.Payload[:])
		if inj <= 0 || inj > d.Cycle {
			continue
		}
		lat := float64(d.Cycle - inj)
		if d.Conn == 3 {
			c.tight.observe(lat)
		} else {
			c.loose.observe(lat)
		}
	}
}

// vcInjector submits periodic wormhole messages on the priority virtual
// channel, the class mapping of priority-VC designs: every
// time-critical packet rides VC0, undifferentiated within it.
type vcInjector struct {
	name string
	r    *baseline.VCRouter
	xoff int
	size int // payload bytes
	imin int64
	next int64
	seq  uint32
}

func (a *vcInjector) Name() string { return a.name }
func (a *vcInjector) Tick(now sim.Cycle) {
	if int64(now) < a.next {
		return
	}
	a.next = int64(now) + a.imin*packet.TCBytes
	body := make([]byte, a.size)
	traffic.EncodeProbe(body, int64(now), a.seq)
	a.seq++
	frame, err := packet.NewBE(a.xoff, 0, body)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	if err := a.r.Inject(0, frame); err != nil {
		panic("experiments: " + err.Error())
	}
}

// runCompareVC drives the workload over the priority-virtual-channel
// wormhole model: both streams share VC0, FIFO/round-robin within it.
func runCompareVC(cycles int64) (tight, loose *classStats, err error) {
	k := sim.NewKernel()
	rs := make([]*baseline.VCRouter, 3)
	for i := range rs {
		rs[i] = baseline.NewVCRouter(fmt.Sprintf("vc%d", i))
	}
	for i := 0; i < 2; i++ {
		fw := router.NewChannel(k)
		rs[i].ConnectOut(router.PortXPlus, fw.Out())
		rs[i+1].ConnectIn(router.PortXMinus, fw.In())
		bw := router.NewChannel(k)
		rs[i+1].ConnectOut(router.PortXMinus, bw.Out())
		rs[i].ConnectIn(router.PortXPlus, bw.In())
	}
	tight = &classStats{bound: missBound(cmpTightD)}
	loose = &classStats{bound: missBound(cmpLooseD)}
	apps := []*vcInjector{
		{name: "loose0", r: rs[0], xoff: 2, size: cmpLooseSmax, imin: cmpLooseImin},
		{name: "loose1", r: rs[0], xoff: 2, size: cmpLooseSmax, imin: cmpLooseImin},
		{name: "tight", r: rs[1], xoff: 1, size: packet.TCPayloadBytes, imin: cmpTightImin},
	}
	for _, a := range apps {
		k.Register(a)
	}
	for _, r := range rs {
		k.Register(r)
	}
	collect := &vcCollector{r: rs[2], tight: tight, loose: loose}
	k.Register(collect)
	k.Run(cycles)
	return tight, loose, nil
}

type vcCollector struct {
	r            *baseline.VCRouter
	tight, loose *classStats
}

func (c *vcCollector) Name() string { return "vc-collect" }
func (c *vcCollector) Tick(sim.Cycle) {
	for _, d := range c.r.Drain(0) {
		inj, _ := traffic.DecodeProbe(d.Payload)
		if inj <= 0 || inj > d.Cycle {
			continue
		}
		lat := float64(d.Cycle - inj)
		if len(d.Payload) == cmpLooseSmax {
			c.loose.observe(lat)
		} else {
			c.tight.observe(lat)
		}
	}
}

// Table renders the comparison.
func (r *CompareResult) Table() *Table {
	t := &Table{
		Title:  "X2 — architecture comparison on a shared bottleneck (tight d=4-slot stream vs. bulky d=16 streams)",
		Header: []string{"architecture", "tight miss%", "tight mean (cyc)", "loose miss%", "loose mean (cyc)", "tight n", "loose n"},
	}
	for i, name := range r.Disciplines {
		t.AddRow(name,
			f1(r.TightMiss[i]*100), f1(r.TightMean[i]),
			f1(r.LooseMiss[i]*100), f1(r.LooseMean[i]),
			d(r.TightN[i]), d(r.LooseN[i]))
	}
	t.AddNote("expected shape: FIFO hardware misses tight deadlines behind bulky messages;")
	t.AddNote("deadline- and priority-aware designs protect the tight stream (paper §6 argument)")
	return t
}
