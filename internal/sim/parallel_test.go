package sim

import (
	"sync/atomic"
	"testing"
)

// pipelineStage models a component that communicates only through Regs:
// it reads its input wire and drives input+1 on its output wire.
type pipelineStage struct {
	name    string
	in, out *Reg[int]
	seen    []int
}

func (s *pipelineStage) Name() string { return s.name }
func (s *pipelineStage) Tick(Cycle) {
	v := s.in.Read()
	s.seen = append(s.seen, v)
	s.out.Write(v + 1)
}

// buildRing wires n stages into a ring through Regs, one shard per
// stage, and a driver that seeds the first wire each cycle.
func buildRing(k *Kernel, n int) []*pipelineStage {
	wires := make([]*Reg[int], n)
	for i := range wires {
		wires[i] = NewReg[int]()
		k.AddLatch(wires[i])
	}
	stages := make([]*pipelineStage, n)
	for i := range stages {
		stages[i] = &pipelineStage{
			name: "stage",
			in:   wires[i],
			out:  wires[(i+1)%n],
		}
		k.RegisterShard(i, stages[i])
	}
	return stages
}

// TestParallelMatchesSequential runs the same Reg-coupled ring with one
// and with four workers and requires identical per-component histories.
func TestParallelMatchesSequential(t *testing.T) {
	const n, cycles = 13, 200
	seq := NewKernel()
	seqStages := buildRing(seq, n)
	seq.Run(cycles)

	par := NewKernel()
	parStages := buildRing(par, n)
	par.SetWorkers(4)
	defer par.Close()
	par.Run(cycles)

	for i := range seqStages {
		s, p := seqStages[i].seen, parStages[i].seen
		if len(s) != len(p) {
			t.Fatalf("stage %d: %d vs %d observations", i, len(s), len(p))
		}
		for c := range s {
			if s[c] != p[c] {
				t.Fatalf("stage %d cycle %d: sequential saw %d, parallel saw %d", i, c, s[c], p[c])
			}
		}
	}
}

// TestParallelShardOrder: components sharing a shard tick in
// registration order even in parallel mode (they share state directly,
// like a router and its pacer).
func TestParallelShardOrder(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(3)
	defer k.Close()
	type rec struct{ shard, step int }
	perShard := make([][]rec, 4)
	for s := 0; s < 4; s++ {
		s := s
		for j := 0; j < 3; j++ {
			j := j
			k.RegisterShard(s, &funcComp{"c", func(Cycle) {
				perShard[s] = append(perShard[s], rec{s, j})
			}})
		}
	}
	k.Run(5)
	for s, recs := range perShard {
		if len(recs) != 15 {
			t.Fatalf("shard %d ticked %d times, want 15", s, len(recs))
		}
		for i, r := range recs {
			if r.step != i%3 {
				t.Fatalf("shard %d: out-of-order tick %v at %d", s, r, i)
			}
		}
	}
}

// TestParallelBarrier: an unsharded component runs alone — after every
// sharded component registered before it has finished the cycle, and
// before any registered after it starts.
func TestParallelBarrier(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	defer k.Close()
	var before, after, snapshots atomic.Int64
	for s := 0; s < 8; s++ {
		k.RegisterShard(s, &funcComp{"pre", func(Cycle) { before.Add(1) }})
	}
	var seenBefore, seenAfter []int64
	k.Register(&funcComp{"barrier", func(Cycle) {
		seenBefore = append(seenBefore, before.Load())
		seenAfter = append(seenAfter, after.Load())
		snapshots.Add(1)
	}})
	for s := 0; s < 8; s++ {
		k.RegisterShard(s, &funcComp{"post", func(Cycle) { after.Add(1) }})
	}
	const cycles = 20
	k.Run(cycles)
	for c := 0; c < cycles; c++ {
		if seenBefore[c] != int64(8*(c+1)) {
			t.Errorf("cycle %d: barrier saw %d pre-ticks, want %d", c, seenBefore[c], 8*(c+1))
		}
		if seenAfter[c] != int64(8*c) {
			t.Errorf("cycle %d: barrier saw %d post-ticks, want %d", c, seenAfter[c], 8*c)
		}
	}
}

// TestParallelCommit: the commit phase latches every Reg exactly once
// per cycle regardless of worker count.
func TestParallelCommit(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(4)
	defer k.Close()
	regs := make([]*Reg[int], 37) // not a multiple of the worker count
	for i := range regs {
		regs[i] = NewSticky[int]()
		k.AddLatch(regs[i])
	}
	k.RegisterShard(0, &funcComp{"w", func(now Cycle) {
		for _, r := range regs {
			r.Write(int(now) + 1)
		}
	}})
	k.Run(3)
	for i, r := range regs {
		if got := r.Read(); got != 3 {
			t.Fatalf("reg %d = %d after 3 cycles, want 3", i, got)
		}
	}
}

// TestSetWorkersMidRun switches modes between Steps and keeps the
// component history consistent; Close returns to sequential mode.
func TestSetWorkersMidRun(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.RegisterShard(0, c)
	k.Run(5)
	k.SetWorkers(3)
	k.Run(5)
	k.SetWorkers(2) // resize drops the old pool
	k.Run(5)
	k.Close()
	if k.Workers() != 1 {
		t.Fatalf("Workers() after Close = %d, want 1", k.Workers())
	}
	k.Run(5)
	if c.count() != 20 {
		t.Fatalf("ticked %d times, want 20", c.count())
	}
	for i, cyc := range c.ticks {
		if cyc != Cycle(i) {
			t.Fatalf("tick %d at cycle %d", i, cyc)
		}
	}
}

// TestSetWorkersZeroPicksGOMAXPROCS documents the n<=0 convention.
func TestSetWorkersZeroPicksGOMAXPROCS(t *testing.T) {
	k := NewKernel()
	defer k.Close()
	k.SetWorkers(0)
	if k.Workers() < 1 {
		t.Fatalf("Workers() = %d", k.Workers())
	}
}

// TestParallelRegistrationAfterRun: registering more components marks
// the plan dirty and the next parallel Step picks them up.
func TestParallelRegistrationAfterRun(t *testing.T) {
	k := NewKernel()
	k.SetWorkers(2)
	defer k.Close()
	a := &counter{name: "a"}
	k.RegisterShard(0, a)
	k.Run(3)
	b := &counter{name: "b"}
	k.RegisterShard(1, b)
	k.Run(3)
	if a.count() != 6 || b.count() != 3 {
		t.Fatalf("a=%d b=%d, want 6 and 3", a.count(), b.count())
	}
}

func TestRegisterShardNegativePanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("RegisterShard(-1) did not panic")
		}
	}()
	k.RegisterShard(-1, &counter{name: "x"})
}
