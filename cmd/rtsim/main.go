// Command rtsim runs a configurable mixed-traffic scenario on a mesh of
// real-time routers and prints a network-wide summary: the
// network-simulator companion the paper lists as ongoing work (ref 30).
//
// Example:
//
//	rtsim -mesh 4x4 -channels 12 -imin 16 -deadline 96 -berate 0.3 -cycles 200000
//
// opens 12 randomly placed real-time channels (Imin 16 slots, end-to-end
// bound 96 slots), runs uniform best-effort background traffic at 0.3
// bytes/cycle per node, simulates 200k cycles and reports latency and
// miss statistics.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime/pprof"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	var (
		meshDim    = flag.String("mesh", "4x4", "mesh dimensions WxH")
		channels   = flag.Int("channels", 8, "real-time channels to open at random placements")
		imin       = flag.Int64("imin", 16, "channel Imin in slots")
		deadline   = flag.Int64("deadline", 96, "channel end-to-end bound in slots")
		smax       = flag.Int("smax", 18, "channel message size in bytes")
		beRate     = flag.Float64("berate", 0.2, "best-effort bytes/cycle injected per node (0 disables)")
		beSize     = flag.Int("besize", 64, "best-effort payload bytes")
		cycles     = flag.Int64("cycles", 100000, "cycles to simulate")
		seed       = flag.Int64("seed", 1, "workload placement seed")
		horizon    = flag.Uint("horizon", 8, "horizon parameter programmed on all ports (slots)")
		window     = flag.Int64("window", 8, "source regulator window (slots)")
		scheduler  = flag.String("sched", "edf", "link scheduler: edf|fifo|static")
		vct        = flag.Bool("vct", false, "enable virtual cut-through for time-constrained traffic")
		shared     = flag.Bool("shared", false, "use shared-pool buffer accounting instead of partitioned")
		traceN     = flag.Int("trace", 0, "dump the last N network events after the run (0 disables)")
		traceOut   = flag.String("trace-out", "", "write the merged event timeline to this file after the run (.json = Chrome trace-event JSON for Perfetto, .jsonl = JSON lines, otherwise the human-readable dump)")
		traceBuf   = flag.Int("trace-buf", obs.DefaultShardCap, "per-node event buffer capacity for -trace/-trace-out (oldest events evict first)")
		scenPath   = flag.String("scenario", "", "run a JSON scenario file instead of the flag-driven workload")
		links      = flag.Bool("links", false, "print the per-link utilization table after the run")
		metricsOut = flag.String("metrics", "", "write the telemetry report to this file after the run (.prom/.txt = Prometheus text, otherwise JSON; - = stdout)")
		sample     = flag.Int64("sample", 0, "snapshot telemetry totals into a time series every N cycles (0 = cycles/100 when telemetry is on)")
		listen     = flag.String("listen", "", "serve live telemetry over HTTP at this address during the run (e.g. :8080; also serves net/http/pprof under /debug/pprof/)")
		workers    = flag.Int("workers", 1, "simulation kernel workers: 1 = sequential, >1 parallel (bit-identical results), 0 = GOMAXPROCS")
		explain    = flag.Bool("explain", false, "print the slack-attribution report after the run: cause totals, blame matrix, per-channel waterfalls, longest stall episodes")
		flight     = flag.String("flight", "", "write the flight-recorder dump to this file after the run: the merged events of the last -flight-cycles cycles before the final trigger (.jsonl = JSON lines with trigger records, otherwise Chrome trace-event JSON for Perfetto)")
		flightN    = flag.Int64("flight-cycles", 0, "flight-recorder dump window in cycles (0 = 4096); the dump draws on the -trace-buf event retention, so windows deeper than the per-node buffer covers come back truncated")
		admitRep   = flag.Bool("admit-report", false, "print the capacity ledger (per-link reservations, EDF headroom, buffer/id usage) and the admission audit trail after the run")
		memProfile = flag.String("memprofile", "", "write a heap (allocs) profile to this file at exit")
	)
	flag.Parse()

	if *memProfile != "" {
		path := *memProfile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rtsim: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "rtsim: memprofile:", err)
				return
			}
			fmt.Printf("heap profile written to %s\n", path)
		}()
	}

	// core.Options treats 0 as "default" (sequential); the documented
	// CLI meaning of 0 is GOMAXPROCS, which Options expresses as a
	// negative count.
	if *workers == 0 {
		*workers = -1
	}

	reg := openTelemetry(*metricsOut, *listen, sample, *cycles)

	// Tracing is sharded per node (obs.Sharded), so it composes with any
	// worker count; the merged timeline is identical across modes.
	// Forensics and the flight recorder both reconstruct from the merged
	// timeline, so requesting either brings the collector up too.
	var col *obs.Sharded
	if *traceN > 0 || *traceOut != "" || *explain || *flight != "" {
		col = obs.NewSharded(*traceBuf)
	}
	slo := obs.NewSLO()
	var fns *obs.Forensics
	var rec *obs.Recorder
	if *explain || *flight != "" {
		fns = obs.NewForensics()
		fns.UseSLO(slo)
		rec = obs.NewRecorder(*flightN, 0)
	}

	var aud *obs.AuditLog
	if *admitRep {
		aud = obs.NewAuditLog()
	}

	if *scenPath != "" {
		runScenario(*scenPath, reg, *sample, *metricsOut, *workers, col, slo, fns, rec, aud,
			*traceN, *traceOut, *explain, *flight)
		return
	}

	w, h, err := parseMesh(*meshDim)
	if err != nil {
		fail(err)
	}
	cfg := router.DefaultConfig()
	cfg.VCT = *vct
	switch *scheduler {
	case "edf":
	case "fifo":
		cfg.Scheduler = router.SchedFIFO
	case "static":
		cfg.Scheduler = router.SchedStaticPriority
	default:
		fail(fmt.Errorf("unknown scheduler %q", *scheduler))
	}
	policy := admission.Partitioned
	if *shared {
		policy = admission.SharedPool
	}
	sys, err := core.NewMesh(w, h, core.Options{
		Router:             cfg,
		Metrics:            reg,
		MetricsSampleEvery: *sample,
		Collector:          col,
		ChannelSLO:         slo,
		Forensics:          fns,
		Recorder:           rec,
		Audit:              aud,
		Workers:            *workers,
	}.WithAdmission(admission.Config{
		Policy:       policy,
		SourceWindow: *window,
		Horizon:      uint32(*horizon),
	}))
	if err != nil {
		fail(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(*seed))
	spec := rtc.Spec{Imin: *imin, Smax: *smax, D: *deadline}
	opened := 0
	for try := 0; try < *channels*10 && opened < *channels; try++ {
		src := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		dst := mesh.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
		if src == dst {
			continue
		}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			continue
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", opened), ch.Paced(), spec, traffic.Periodic, *smax)
		if err != nil {
			fail(err)
		}
		sys.RegisterNode(src, app)
		opened++
	}
	fmt.Printf("opened %d/%d real-time channels (Imin=%d slots, D=%d slots, Smax=%dB)\n",
		opened, *channels, *imin, *deadline, *smax)
	// The admission phase is over: publish the reservation ledger so a
	// live -listen scrape and the final telemetry report both carry it.
	sys.SealCapacity()

	if *beRate > 0 {
		for i, c := range sys.Net.Coords() {
			app, err := traffic.NewBEApp(fmt.Sprintf("be%s", c), sys.Net, c,
				traffic.UniformDst(sys.Net, c), traffic.FixedSize(*beSize), *beRate, *seed+int64(i))
			if err != nil {
				fail(err)
			}
			sys.RegisterNode(c, app)
		}
		fmt.Printf("best-effort background: %.2f bytes/cycle/node, %dB payloads, uniform destinations\n",
			*beRate, *beSize)
	}

	sys.Run(*cycles)
	// Flush open stall episodes before anything reads the merged
	// timeline, so -trace-out, -explain and -flight all see them.
	if fns != nil {
		fns.Flush()
	}
	printSummary(sys, *cycles, *workers)
	printChannelReport(slo)
	if *links {
		printLinkTable(sys, *cycles)
	}
	printForensics(fns, rec, col, *explain)
	printAdmitReport(sys, aud)
	dumpTraceTail(col, *traceN)
	writeTraceFile(col, slo, *traceOut)
	writeFlightFile(rec, col, slo, *flight)
	finishTelemetry(reg, sys.Now(), *metricsOut)
}

// printAdmitReport writes the sealed capacity ledger (per-link
// reservations with EDF headroom, per-node buffer and id usage) and the
// admission audit trail, as -admit-report requests.
func printAdmitReport(sys *core.System, aud *obs.AuditLog) {
	if aud == nil {
		return
	}
	snap := sys.SealCapacity()
	fmt.Printf("\ncapacity ledger: %d admitted channels", snap.Channels)
	if snap.WorstLink != "" {
		fmt.Printf("; worst link %s at %.2f utilization; min EDF headroom %d slots",
			snap.WorstLink, snap.WorstUtilization, snap.MinHeadroomSlots)
	}
	fmt.Println()
	if len(snap.Links) > 0 {
		fmt.Printf("  %-14s %8s %6s %9s %9s %7s\n",
			"link", "channels", "util", "reserved", "headroom", "margin")
		for _, lc := range snap.Links {
			fmt.Printf("  %-14s %8d %6.2f %9d %9d %7d\n",
				lc.Link, lc.Channels, lc.Utilization, lc.ReservedSlots,
				lc.HeadroomSlots, lc.WorstMarginSlots)
		}
	}
	if len(snap.Nodes) > 0 {
		fmt.Printf("  %-8s %9s %9s %7s %7s\n", "node", "buffers", "buflimit", "conns", "connlim")
		for _, nc := range snap.Nodes {
			fmt.Printf("  %-8s %9d %9d %7d %7d\n",
				nc.Node, nc.BuffersUsed, nc.BuffersLimit, nc.ConnsUsed, nc.ConnsLimit)
		}
	}
	fmt.Printf("\nadmission audit trail (%d decisions):\n", aud.Len())
	if err := aud.Dump(os.Stdout); err != nil {
		fail(err)
	}
}

// printForensics writes the slack-attribution report and the flight
// recorder's trigger digest, as -explain requests.
func printForensics(fns *obs.Forensics, rec *obs.Recorder, col *obs.Sharded, explain bool) {
	if fns == nil || !explain {
		return
	}
	var events []obs.Event
	if col != nil {
		events = col.Merged()
	}
	fmt.Println("\nforensics (slack attribution):")
	fns.Report(os.Stdout, events)
	if rec != nil {
		fmt.Println()
		rec.Summary(os.Stdout)
	}
}

// writeFlightFile dumps the flight-recorder window — the merged events
// of the last recorder-window cycles up to the final trigger — to the
// path; .jsonl selects JSON lines (trigger records first), anything
// else Chrome trace-event JSON for Perfetto.
func writeFlightFile(rec *obs.Recorder, col *obs.Sharded, slo *obs.SLO, path string) {
	if rec == nil || col == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	var fired bool
	if strings.HasSuffix(path, ".jsonl") {
		fired, err = rec.DumpJSONL(f, col)
	} else {
		fired, err = rec.DumpChrome(f, col, slo)
	}
	if err != nil {
		fail(err)
	}
	if !fired {
		fmt.Printf("flight recorder: no triggers fired; %s left empty\n", path)
		return
	}
	last, _ := rec.Last()
	fmt.Printf("flight recorder dump written to %s (%d cycles ending at %d; %d triggers)\n",
		path, rec.Window(), last.Cycle, rec.Count())
}

// printChannelReport writes the per-channel SLO table (latency and
// slack quantiles, miss and early counters) for every opened channel.
func printChannelReport(slo *obs.SLO) {
	if slo == nil || len(slo.Channels()) == 0 {
		return
	}
	fmt.Println("\nper-channel SLO (latency in cycles, slack in slots):")
	slo.Report(os.Stdout)
}

// dumpTraceTail prints the last n merged events, as -trace requests.
func dumpTraceTail(col *obs.Sharded, n int) {
	if col == nil || n <= 0 {
		return
	}
	evs := col.TraceEvents()
	tail := evs
	if n < len(evs) {
		tail = evs[len(evs)-n:]
	}
	fmt.Printf("\nlast %d of %d network events:\n", len(tail), col.Total())
	trace.DumpEvents(os.Stdout, tail)
}

// writeTraceFile exports the merged timeline; the extension picks the
// format (.json Chrome trace for Perfetto, .jsonl event log, otherwise
// the human-readable dump).
func writeTraceFile(col *obs.Sharded, slo *obs.SLO, path string) {
	if col == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	switch {
	case strings.HasSuffix(path, ".json"):
		err = obs.WriteChromeTrace(f, col, slo)
	case strings.HasSuffix(path, ".jsonl"):
		err = obs.WriteJSONL(f, col)
	default:
		col.Dump(f)
	}
	if err != nil {
		fail(err)
	}
	fmt.Printf("trace written to %s (%d events recorded, %d evicted)\n", path, col.Total(), col.Dropped())
}

// openTelemetry builds the metrics registry when any telemetry output
// is requested, starts the live HTTP endpoint, and defaults the
// sampling period to 1% of the run.
func openTelemetry(metricsOut, listen string, sample *int64, cycles int64) *metrics.Registry {
	if metricsOut == "" && listen == "" {
		return nil
	}
	reg := metrics.NewRegistry()
	if *sample <= 0 {
		*sample = cycles / 100
		if *sample < 1 {
			*sample = 1
		}
	}
	if listen != "" {
		// Telemetry at the root, the standard pprof handlers alongside it:
		// profiling parity with rtbench without a second listener.
		mux := http.NewServeMux()
		mux.Handle("/", reg)
		mux.HandleFunc("/debug/pprof/", httppprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
		go func() {
			if err := http.ListenAndServe(listen, mux); err != nil {
				fmt.Fprintln(os.Stderr, "rtsim: telemetry listener:", err)
			}
		}()
		fmt.Printf("telemetry: live at http://%s/ (Prometheus text; ?format=json for JSON; pprof at /debug/pprof/)\n", listen)
	}
	return reg
}

// finishTelemetry stamps the final cycle count and writes the report.
func finishTelemetry(reg *metrics.Registry, now int64, metricsOut string) {
	if reg == nil {
		return
	}
	reg.Cycles.Store(now)
	if metricsOut == "" {
		return
	}
	if err := writeMetrics(reg, metricsOut); err != nil {
		fail(err)
	}
	if metricsOut != "-" {
		fmt.Printf("telemetry report written to %s\n", metricsOut)
	}
}

// writeMetrics dumps the registry; the extension picks the format.
func writeMetrics(reg *metrics.Registry, path string) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if strings.HasSuffix(path, ".prom") || strings.HasSuffix(path, ".txt") {
		return reg.WritePrometheus(w)
	}
	return reg.WriteJSON(w)
}

// runScenario plays a declarative workload file (see scenarios/ and the
// scenario package).
func runScenario(path string, reg *metrics.Registry, sample int64, metricsOut string, workers int,
	col *obs.Sharded, slo *obs.SLO, fns *obs.Forensics, rec *obs.Recorder, aud *obs.AuditLog,
	traceN int, traceOut string, explain bool, flight string) {
	sc, err := scenario.Load(path)
	if err != nil {
		fail(err)
	}
	res, sys, err := sc.RunWith(scenario.RunOpts{
		Metrics: reg, SampleEvery: sample, Workers: workers,
		Collector: col, ChannelSLO: slo, Forensics: fns, Recorder: rec, Audit: aud,
	})
	if err != nil {
		fail(err)
	}
	defer sys.Close()
	if fns != nil {
		fns.Flush()
	}
	fmt.Printf("scenario %s: %dx%d mesh, %d channels opened", path, sc.Mesh.W, sc.Mesh.H, res.Opened)
	if len(res.Rejected) > 0 {
		fmt.Printf(" (%d rejected)", len(res.Rejected))
	}
	fmt.Println()
	for _, r := range res.Rejected {
		fmt.Println("  rejected:", r)
	}
	if res.Failures > 0 {
		fmt.Printf("fault episodes played: %d (repairs: %d); channels rerouted: %d\n",
			res.Failures, res.Repairs, res.Rerouted)
	}
	if res.Faults.CorruptedPhits > 0 || res.Faults.LostPhits > 0 {
		fmt.Printf("wire faults injected: %d corrupted, %d lost phits\n",
			res.Faults.CorruptedPhits, res.Faults.LostPhits)
	}
	printSummary(sys, res.Cycles, workers)
	printChannelReport(slo)
	printForensics(fns, rec, col, explain)
	printAdmitReport(sys, aud)
	dumpTraceTail(col, traceN)
	writeTraceFile(col, slo, traceOut)
	writeFlightFile(rec, col, slo, flight)
	finishTelemetry(reg, sys.Now(), metricsOut)
}

func parseMesh(s string) (int, int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("rtsim: mesh must be WxH, got %q", s)
	}
	var w, h int
	if _, err := fmt.Sscanf(parts[0], "%d", &w); err != nil {
		return 0, 0, fmt.Errorf("rtsim: bad mesh width %q", parts[0])
	}
	if _, err := fmt.Sscanf(parts[1], "%d", &h); err != nil {
		return 0, 0, fmt.Errorf("rtsim: bad mesh height %q", parts[1])
	}
	return w, h, nil
}

// printLinkTable reports per-link traffic: the PP-MESS-SIM style
// breakdown of where the bytes went.
func printLinkTable(sys *core.System, cycles int64) {
	fmt.Println("\nper-link traffic (bytes and utilization):")
	fmt.Printf("  %-8s %-6s %12s %12s %8s\n", "router", "port", "TC bytes", "BE bytes", "util%")
	for _, c := range sys.Net.Coords() {
		st := sys.Router(c).Stats
		for p := 0; p < router.NumLinks; p++ {
			tc := st.TCTransmitted[p] * packet.TCBytes
			be := st.BEBytes[p]
			if tc == 0 && be == 0 {
				continue
			}
			util := float64(tc+be) / float64(cycles) * 100
			fmt.Printf("  %-8s %-6s %12d %12d %7.1f%%\n", c, router.PortName(p), tc, be, util)
		}
	}
}

func printSummary(sys *core.System, cycles int64, workers int) {
	sum := sys.Summarize()
	fmt.Printf("\nsimulated %d cycles (%d slots) on %d kernel worker(s)\n",
		cycles, cycles/packet.TCBytes, sim.ResolveWorkers(workers))
	fmt.Printf("time-constrained: %d delivered, %d deadline misses, %d drops\n",
		sum.TCDelivered, sum.TCMisses, sum.TCDrops)
	if sum.TCLatency.N() > 0 {
		fmt.Printf("  latency cycles: mean=%.0f p50=%.0f p99=%.0f max=%.0f (n=%d)\n",
			sum.TCLatency.Mean(), sum.TCLatency.Quantile(0.5),
			sum.TCLatency.Quantile(0.99), sum.TCLatency.Max(), sum.TCLatency.N())
	}
	fmt.Printf("best-effort: %d delivered\n", sum.BEDelivered)
	if sum.BELatency.N() > 0 {
		fmt.Printf("  latency cycles: mean=%.0f p50=%.0f p99=%.0f max=%.0f (n=%d)\n",
			sum.BELatency.Mean(), sum.BELatency.Quantile(0.5),
			sum.BELatency.Quantile(0.99), sum.BELatency.Max(), sum.BELatency.N())
	}
	fmt.Printf("peak scheduler occupancy: %d packets; cut-throughs: %d; memory-bus load: %.2f chunks/cycle/router\n",
		sum.SchedulerPeak, sum.CutThroughs, sum.BusUtilization)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rtsim:", err)
	os.Exit(1)
}
