// Benchmarks, one per paper table/figure plus the extension studies
// (DESIGN.md §4 maps each to its experiment driver). Macro benchmarks
// report the wall time of a full experiment run and domain metrics via
// ReportMetric; micro benchmarks cover the hardware-critical paths
// (sorting keys, comparator-tree selection, router cycle rate).
package repro

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
	"repro/internal/timing"
	"repro/internal/traffic"
)

// BenchmarkE1WormholeBaseline regenerates the Section 5.2 latency model
// (paper: 30 + b cycles; Table E1 in EXPERIMENTS.md).
func BenchmarkE1WormholeBaseline(b *testing.B) {
	sizes := []int{16, 64, 256, 1024}
	var overhead int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunE1(router.DefaultConfig(), sizes)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Linear {
			b.Fatal("latency not linear")
		}
		overhead = res.Overhead
	}
	b.ReportMetric(float64(overhead), "overhead-cycles")
}

// BenchmarkFig7MixedTraffic regenerates the Figure 7 service-share
// experiment and reports the achieved link utilization.
func BenchmarkFig7MixedTraffic(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(experiments.DefaultFig7())
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatalf("misses: %d", res.Misses)
		}
		var tc float64
		for _, v := range res.TCTotal {
			tc += v
		}
		util = (tc + res.BETotal) / float64(res.Cfg.Cycles)
	}
	b.ReportMetric(util*100, "link-util-%")
}

// BenchmarkFig6SortKeys measures the Figure 4 key computation — the
// logic at the base of every comparator-tree leaf.
func BenchmarkFig6SortKeys(b *testing.B) {
	w := timing.MustWheel(8)
	var sink timing.Key
	for i := 0; i < b.N; i++ {
		t := w.Wrap(timing.Slot(i))
		l := w.Add(t, uint32(i)%40)
		k, _, _ := w.SortKey(l, w.Add(l, 20), t)
		sink ^= k
	}
	_ = sink
}

// BenchmarkFig6Rollover regenerates the rollover soak (Figure 6).
func BenchmarkFig6Rollover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig6(2)
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatal("rollover misses")
		}
	}
}

// BenchmarkT1ServiceOrder exercises the Table 1 three-queue decision for
// one output port with a mixed population of on-time and early packets.
func BenchmarkT1ServiceOrder(b *testing.B) {
	w := timing.MustWheel(8)
	tree := sched.NewEDFTree(256, w)
	for i := 0; i < 256; i++ {
		off := int64(i%60) - 30
		leaf := sched.Leaf{
			L:    w.Wrap(timing.Slot(1000 + off)),
			Dl:   w.Wrap(timing.Slot(1000 + off + 25)),
			Mask: sched.PortMask(1 << (i % 5)),
		}
		if err := tree.Install(i, leaf); err != nil {
			b.Fatal(err)
		}
	}
	now := w.Wrap(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Select(i%5, now, 8)
	}
}

// BenchmarkT3ControlInterface measures the Table 3 staged-write
// programming path.
func BenchmarkT3ControlInterface(b *testing.B) {
	r := router.MustNew("bench", router.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.SetConnection(uint8(i), uint8(i+1), 10, 1<<router.PortLocal); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkT4SchedulerThroughput measures full-occupancy selection on
// the paper's 256-leaf shared tree (the chip does one selection per
// ~50 ns pipeline beat).
func BenchmarkT4SchedulerThroughput(b *testing.B) {
	w := timing.MustWheel(8)
	for _, kind := range []struct {
		name string
		s    sched.Scheduler
	}{
		{"linear-scan", sched.NewEDFTree(256, w)},
		{"tournament", sched.NewTournament(256, w)},
	} {
		for i := 0; i < 256; i++ {
			leaf := sched.Leaf{
				L:    w.Wrap(timing.Slot(i % 90)),
				Dl:   w.Wrap(timing.Slot(i%90 + 30)),
				Mask: sched.PortMask(1 << (i % 5)),
			}
			if err := kind.s.Install(i, leaf); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(kind.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kind.s.Select(i%5, timing.Stamp(i), 8)
			}
		})
	}
}

// BenchmarkX1HorizonSweep regenerates the horizon trade-off study.
func BenchmarkX1HorizonSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunHorizon([]uint32{0, 16, 48}, 20000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatal("misses in sweep")
		}
	}
}

// BenchmarkX2BaselineComparison regenerates the architecture
// comparison and reports the FIFO tight-stream miss rate.
func BenchmarkX2BaselineComparison(b *testing.B) {
	var fifoMiss float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCompare(30000)
		if err != nil {
			b.Fatal(err)
		}
		for j, name := range res.Disciplines {
			if name == "FIFO output-queued" {
				fifoMiss = res.TightMiss[j]
			}
		}
	}
	b.ReportMetric(fifoMiss*100, "fifo-tight-miss-%")
}

// BenchmarkX3VirtualCutThrough regenerates the Section 7 extension
// study and reports the latency saving.
func BenchmarkX3VirtualCutThrough(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunVCT(3, 30000)
		if err != nil {
			b.Fatal(err)
		}
		saving = res.Saving
	}
	b.ReportMetric(saving, "saving-cycles")
}

// BenchmarkX4Multicast regenerates the fan-out study.
func BenchmarkX4Multicast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunMulticast([]int{2, 4}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 || res.SlotLeaks != 0 {
			b.Fatal("multicast misses or leaks")
		}
	}
}

// BenchmarkX5Admissibility regenerates the buffer-policy study.
func BenchmarkX5Admissibility(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAdmit()
		if err != nil {
			b.Fatal(err)
		}
		gap = float64(res.Asymmetric[1] - res.Asymmetric[0])
	}
	b.ReportMetric(gap, "shared-minus-partitioned")
}

// BenchmarkX6ApproximateScheduling regenerates the Section 7
// reduced-complexity study and reports where misses begin.
func BenchmarkX6ApproximateScheduling(b *testing.B) {
	var missAt4 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunApprox([]uint{0, 4}, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if res.TightMiss[0] != 0 {
			b.Fatal("exact EDF missed")
		}
		missAt4 = res.TightMiss[1]
	}
	b.ReportMetric(missAt4*100, "tight-miss-%@16-slot-buckets")
}

// BenchmarkX7LoadSweep regenerates the network load sweep and reports
// the best-effort latency blow-up factor between light and heavy load.
func BenchmarkX7LoadSweep(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLoadSweep([]float64{0.05, 0.6}, 30000)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range res.TCMisses {
			if m != 0 {
				b.Fatal("reserved class missed under load")
			}
		}
		if res.BEMean[0] > 0 {
			factor = res.BEMean[1] / res.BEMean[0]
		}
	}
	b.ReportMetric(factor, "be-latency-blowup")
}

// BenchmarkX8ClockSkew regenerates the §4.1 skew-tolerance study.
func BenchmarkX8ClockSkew(b *testing.B) {
	var missesBeyond int64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSkew([]int64{0, 400}, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses[0] != 0 {
			b.Fatal("aligned clocks missed")
		}
		missesBeyond = res.Misses[1]
	}
	b.ReportMetric(float64(missesBeyond), "misses@20-slot-skew")
}

// BenchmarkX9Failover regenerates the link-failure timeline.
func BenchmarkX9Failover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFailover(4)
		if err != nil {
			b.Fatal(err)
		}
		if !res.RerouteOK || res.Delivered[2] != 4 {
			b.Fatal("failover did not recover")
		}
	}
}

// BenchmarkX10RingTopology regenerates the topology-independence study.
func BenchmarkX10RingTopology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRing(8, 8, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Misses != 0 {
			b.Fatal("ring missed deadlines")
		}
	}
}

// BenchmarkX11LeafSharing regenerates the §5.1 area/throughput study.
func BenchmarkX11LeafSharing(b *testing.B) {
	var missAt32 float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunSharing([]int{1, 32}, 30000)
		if err != nil {
			b.Fatal(err)
		}
		if res.TightMiss[0] != 0 {
			b.Fatal("factor-1 chip missed")
		}
		missAt32 = res.TightMiss[1]
	}
	b.ReportMetric(missAt32*100, "tight-miss-%@32-sharing")
}

// buildLoadedMesh constructs a loaded w×h benchmark mesh — real-time
// channels crossing corner to corner plus a best-effort source on every
// node. With traced set it carries the full observability stack: the
// sharded lifecycle collector, the telemetry registry, and per-channel
// SLO histograms.
func buildLoadedMesh(tb testing.TB, w, h, workers int, traced bool) *core.System {
	tb.Helper()
	opts := core.Options{Workers: workers}
	if traced {
		opts.Metrics = metrics.NewRegistry()
		opts.Collector = obs.NewSharded(obs.DefaultShardCap)
		opts.ChannelSLO = obs.NewSLO()
	}
	sys, err := core.NewMesh(w, h, opts)
	if err != nil {
		tb.Fatal(err)
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 24 * int64(w+h)}
	for i, rt := range [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: w - 1, Y: h - 1}},
		{{X: w - 1, Y: 0}, {X: 0, Y: h - 1}},
		{{X: 0, Y: h - 1}, {X: w - 1, Y: 0}},
		{{X: w - 1, Y: h - 1}, {X: 0, Y: 0}},
	} {
		ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
		if err != nil {
			tb.Fatal(err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			tb.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	for i, c := range sys.Net.Coords() {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.FixedSize(64), 0.3, int64(i)+1)
		if err != nil {
			tb.Fatal(err)
		}
		sys.RegisterNode(c, be)
	}
	return sys
}

// BenchmarkRouterCycleRate measures the simulator itself: cycles per
// second for a loaded 8×8 mesh, the figure that bounds every experiment
// above — once with the sequential kernel and once with the parallel
// kernel at GOMAXPROCS workers (both modes produce identical results;
// see core.TestParallelEquivalence).
func BenchmarkRouterCycleRate(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 2 // still exercise the pooled path on single-core hosts
	}
	for _, workers := range []int{1, par} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys := buildLoadedMesh(b, 8, 8, workers, false)
			defer sys.Close()
			sys.Run(2000) // warm up buffers and frame pools
			b.ResetTimer()
			sys.Run(int64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(64), "routers")
		})
	}
}

// BenchmarkRouterCycleRateTraced is the same mesh with the full
// observability stack attached — sharded lifecycle collector, telemetry
// counters, and channel SLO histograms — so the delta against
// BenchmarkRouterCycleRate is the price of always-on tracing.
func BenchmarkRouterCycleRateTraced(b *testing.B) {
	par := runtime.GOMAXPROCS(0)
	if par < 2 {
		par = 2
	}
	for _, workers := range []int{1, par} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sys := buildLoadedMesh(b, 8, 8, workers, true)
			defer sys.Close()
			sys.Run(2000)
			b.ResetTimer()
			sys.Run(int64(b.N))
			b.StopTimer()
			b.ReportMetric(float64(64), "routers")
		})
	}
}

// TestTracingOverheadGate is the regression gate on that price: a
// traced parallel run must stay within 10% of the untraced run's wall
// time. Best-of-N timing on interleaved trials absorbs scheduler noise;
// the gate is skipped in short mode and under the race detector, where
// instrumented atomics distort the ratio.
func TestTracingOverheadGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in short mode")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	const cycles = 20000
	const trials = 5
	measure := func(traced bool) time.Duration {
		sys := buildLoadedMesh(t, 8, 8, workers, traced)
		defer sys.Close()
		sys.Run(2000) // warm up
		best := time.Duration(1<<63 - 1)
		for i := 0; i < trials; i++ {
			start := time.Now()
			sys.Run(cycles)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	plain := measure(false)
	traced := measure(true)
	ratio := float64(traced) / float64(plain)
	t.Logf("untraced %v, traced %v, ratio %.3f", plain, traced, ratio)
	if ratio > 1.10 {
		t.Errorf("tracing overhead %.1f%% exceeds the 10%% budget (untraced %v, traced %v)",
			(ratio-1)*100, plain, traced)
	}
}

// TestSteadyStateAllocs is the allocation regression gate locking in the
// preallocated hot state: once the pools and arenas have warmed up, the
// tick path of a loaded mesh must be allocation-free to within the
// per-mesh budget, at every mesh size. The budgets are deliberately a
// couple of orders of magnitude below where the pre-pooling code sat
// (0.5 allocs/cycle at 8×8, 12+ at 32×32), so any new per-packet or
// per-cycle heap traffic on the hot path trips the gate immediately.
func TestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation gate skipped in short mode")
	}
	budgets := []struct {
		edge   int
		budget float64 // allocs per simulated cycle
	}{
		{8, 0.05},
		{16, 0.05},
		{32, 0.10},
	}
	for _, bc := range budgets {
		bc := bc
		t.Run(fmt.Sprintf("mesh%dx%d", bc.edge, bc.edge), func(t *testing.T) {
			sys := buildLoadedMesh(t, bc.edge, bc.edge, 1, false)
			defer sys.Close()
			// Warm-up must outlast every pool's growth phase: delivery
			// double-buffers, frame pools, flit queues, and the BE arena all
			// reach their working set within the first few thousand cycles.
			sys.Run(8000)
			const cycles = 4000
			// AllocsPerRun calls the body once extra before measuring, so
			// the measured window starts from an even warmer steady state.
			perRun := testing.AllocsPerRun(1, func() {
				sys.Run(cycles)
			})
			perCycle := perRun / float64(cycles)
			t.Logf("%dx%d: %.4f allocs/cycle (budget %.2f)", bc.edge, bc.edge, perCycle, bc.budget)
			if perCycle > bc.budget {
				t.Errorf("%dx%d mesh: %.4f allocs/cycle exceeds the %.2f budget",
					bc.edge, bc.edge, perCycle, bc.budget)
			}
		})
	}
}
