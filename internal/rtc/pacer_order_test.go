package rtc

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
)

// TestPacerReleasesInDeadlineOrder: with several channels eligible at
// once, the regulator must hand the injection port the message with the
// earliest ℓ0+d, not the first-registered channel — it is the EDF
// scheduler of the injection link.
func TestPacerReleasesInDeadlineOrder(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 8)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(p)
	k.Register(r)
	// Loose channel registered FIRST; tight second. Both route locally.
	if err := r.SetConnection(1, 11, 40, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	if err := r.SetConnection(2, 12, 4, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	loose, err := p.Channel(1, Spec{Imin: 16, Smax: 18, D: 80}, 40)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := p.Channel(2, Spec{Imin: 16, Smax: 18, D: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Submit loose first, then tight, both at slot 0 (both immediately
	// eligible with window 8).
	if err := loose.Submit(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := tight.Submit(0, []byte{2}); err != nil {
		t.Fatal(err)
	}
	ok := k.RunUntil(func() bool { return r.Stats.TCDelivered >= 2 }, 5000)
	if !ok {
		t.Fatalf("not delivered: %+v", r.Stats)
	}
	got := r.DrainTC()
	if got[0].Conn != 12 {
		t.Errorf("first delivery conn %d, want 12 (tight, earliest ℓ0+d)", got[0].Conn)
	}
	if got[1].Conn != 11 {
		t.Errorf("second delivery conn %d, want 11", got[1].Conn)
	}
}

// TestPacerPortPacing: the regulator must not dump its whole backlog
// into the router at once — at most one message release outstanding
// beyond the packet crossing the port.
func TestPacerPortPacing(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 100)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(p)
	k.Register(r)
	if err := r.SetConnection(1, 11, 100, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, Spec{Imin: 4, Smax: 18, D: 120}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ch.Submit(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// After a few cycles the router's injection queue must stay small
	// even though all ten messages are within the window.
	k.Run(30)
	if bl := r.TCInjectBacklog(); bl > 2 {
		t.Errorf("injection backlog %d; pacer must rate-match the port", bl)
	}
	k.RunUntil(func() bool { return ch.Sent == 10 }, 20000)
	if ch.Sent != 10 {
		t.Errorf("sent %d/10", ch.Sent)
	}
	_ = packet.TCBytes
}

// TestPacerMultiPacketMessageAtomic: a multi-packet message's packets
// release together (they are one C-slot scheduling unit on the port).
func TestPacerMultiPacketMessageAtomic(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := NewPacer("pacer", r, 4)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(p)
	k.Register(r)
	if err := r.SetConnection(1, 11, 20, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	if err := r.SetConnection(2, 12, 20, 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	big, err := p.Channel(1, Spec{Imin: 8, Smax: 54, D: 40}, 20)
	if err != nil {
		t.Fatal(err)
	}
	small, err := p.Channel(2, Spec{Imin: 8, Smax: 18, D: 40}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := big.Submit(0, make([]byte, 54)); err != nil { // 3 packets
		t.Fatal(err)
	}
	if err := small.Submit(0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	k.RunUntil(func() bool { return r.Stats.TCDelivered >= 4 }, 10000)
	got := r.DrainTC()
	if len(got) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(got))
	}
	// The three big-message packets must be contiguous (same deadline →
	// whichever won went out whole before the other message).
	first := got[0].Conn
	switch first {
	case 11:
		for i := 0; i < 3; i++ {
			if got[i].Conn != 11 {
				t.Errorf("big message interleaved at position %d: %v", i, got)
			}
		}
	case 12:
		for i := 1; i < 4; i++ {
			if got[i].Conn != 11 {
				t.Errorf("big message interleaved at position %d: %v", i, got)
			}
		}
	default:
		t.Fatalf("unexpected first conn %d", first)
	}
}
