package packet

import (
	"bytes"
	"testing"
)

// FuzzBEHeaderRoundTrip exercises header encode/decode over arbitrary
// bytes: decoding any 4 bytes and re-encoding must reproduce them, and
// NewBE output must always decode to its own inputs.
func FuzzBEHeaderRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 4})
	f.Add([]byte{0xFF, 0x80, 0x12, 0x34})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < BEHeaderBytes {
			return
		}
		h := DecodeBEHeader(raw)
		var out [BEHeaderBytes]byte
		EncodeBEHeader(h, out[:])
		if !bytes.Equal(out[:], raw[:BEHeaderBytes]) {
			t.Fatalf("re-encode mismatch: %x vs %x", out, raw[:BEHeaderBytes])
		}
	})
}

// FuzzTCRoundTrip: any 20 bytes decode and re-encode identically.
func FuzzTCRoundTrip(f *testing.F) {
	f.Add(make([]byte, TCBytes))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < TCBytes {
			return
		}
		var frame [TCBytes]byte
		copy(frame[:], raw)
		if EncodeTC(DecodeTC(frame)) != frame {
			t.Fatal("TC frame round trip mismatch")
		}
	})
}
