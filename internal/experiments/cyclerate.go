package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// CycleRateResult reports the simulator's own throughput — cycles per
// second on a loaded mesh — sequentially and with the parallel kernel,
// together with the evidence that the two modes agree bit for bit.
type CycleRateResult struct {
	W, H    int
	Cycles  int64
	Workers int
	// Epoch is the synchronization epoch requested for the parallel
	// mode (1 = per-cycle barriers). Epochs above 1 deepen the link
	// latency to match, on both modes, so the comparison stays honest.
	Epoch int

	SeqRate float64 // cycles per second, sequential kernel
	ParRate float64 // cycles per second, parallel kernel
	Speedup float64 // median of per-repetition par/seq ratios

	SeqAllocsPerCycle float64
	ParAllocsPerCycle float64

	// StatsMatch confirms the parallel run reproduced the sequential
	// run's per-router hardware counters exactly.
	StatsMatch bool
}

// loadCycleRateSystem builds the measured workload: real-time channels
// crossing the mesh corner to corner plus a best-effort source on every
// node, all registered into per-node shards. linkLat deepens the mesh
// wires (epoch legality requires latency >= epoch), epoch > 1 turns on
// epoch-synchronized execution.
func loadCycleRateSystem(w, h, workers, linkLat, epoch int) (*core.System, error) {
	opts := core.Options{Workers: workers, Epoch: epoch}
	if linkLat > 1 {
		opts.Router = router.DefaultConfig()
		opts.Router.LinkLatency = linkLat
	}
	sys, err := core.NewMesh(w, h, opts)
	if err != nil {
		return nil, err
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 24 * int64(w+h)}
	routes := [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: w - 1, Y: h - 1}},
		{{X: w - 1, Y: 0}, {X: 0, Y: h - 1}},
		{{X: 0, Y: h - 1}, {X: w - 1, Y: 0}},
		{{X: w - 1, Y: h - 1}, {X: 0, Y: 0}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
		if err != nil {
			return nil, fmt.Errorf("cyclerate: channel %d: %w", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(rt[0], app)
	}
	for i, c := range sys.Net.Coords() {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.FixedSize(64), 0.3, int64(i)+1)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(c, be)
	}
	return sys, nil
}

// timingReps is how many times the measured segment repeats per mode.
// Rates report the best repetition; the speedup is the median of the
// per-repetition ratios, which discards one-off stalls entirely.
const timingReps = 5

// measurement is one mode's timing outcome.
type measurement struct {
	Rate  float64   // cycles per second, best repetition
	Reps  []float64 // cycles per second of every repetition, in order
	Stats []router.Stats
}

// timeSegment times one already-warm system over cycles and folds the
// repetition into m.
func timeSegment(sys *core.System, cycles int64, m *measurement) {
	start := time.Now()
	sys.Run(cycles)
	elapsed := time.Since(start)
	r := float64(cycles) / elapsed.Seconds()
	m.Reps = append(m.Reps, r)
	if r > m.Rate {
		m.Rate = r
	}
}

// allocWarmup is how long a fresh system must run before its heap goes
// quiet. The best-effort frame pools refill from *received* frames, so
// every source keeps allocating until traffic has round-tripped the
// mesh — O(diameter × frame serialization) cycles. 125·(w+h) puts
// 32x32 at 8000 cycles, the warm-up the allocation regression gate
// (TestSteadyStateAllocs) validated against.
func allocWarmup(w, h int) int64 {
	return 125 * int64(w+h)
}

// steadyAllocs measures heap allocations per cycle in the steady state:
// one fresh system, warmed past the pool-filling transient, then a
// clean measured window. Timing repetitions can't reuse this number —
// their warm-up is sized for rate stability, not pool circulation, so
// folding allocation reads into them would report the transient.
func steadyAllocs(w, h, workers, linkLat, epoch int, window int64) (float64, error) {
	sys, err := loadCycleRateSystem(w, h, workers, linkLat, epoch)
	if err != nil {
		return 0, err
	}
	defer sys.Close()
	sys.Run(allocWarmup(w, h))
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sys.Run(window)
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(window), nil
}

// timePair measures the sequential and the parallel kernel on identical
// workloads with interleaved repetitions — seq, par, seq, par, … — so
// machine-load drift lands on both modes alike. Every repetition builds
// both systems from scratch: heap layout luck is a persistent few-
// percent bias for any single instance, and only re-drawing it per
// repetition lets the median expose the code's real difference. The
// returned speedup is the median of the per-repetition par/seq ratios.
// epoch > 1 runs the parallel mode epoch-synchronized; both modes then
// share the deepened link latency the epoch requires, so the sequential
// baseline simulates the identical machine.
func timePair(w, h, workers, epoch int, cycles int64) (seq, par measurement, speedup float64, err error) {
	linkLat := 1
	if epoch > 1 {
		linkLat = epoch
	}
	for rep := 0; rep < timingReps; rep++ {
		seqSys, err := loadCycleRateSystem(w, h, 1, linkLat, 0)
		if err != nil {
			return seq, par, 0, err
		}
		parSys, err := loadCycleRateSystem(w, h, workers, linkLat, epoch)
		if err != nil {
			seqSys.Close()
			return seq, par, 0, err
		}
		// Warm up pools and buffers so the steady state is what's
		// measured, and start each timing from a clean heap.
		seqSys.Run(cycles / 10)
		parSys.Run(cycles / 10)
		runtime.GC()
		timeSegment(seqSys, cycles, &seq)
		timeSegment(parSys, cycles, &par)
		if rep == timingReps-1 {
			for _, c := range seqSys.Net.Coords() {
				seq.Stats = append(seq.Stats, seqSys.Router(c).Stats)
			}
			for _, c := range parSys.Net.Coords() {
				par.Stats = append(par.Stats, parSys.Router(c).Stats)
			}
		}
		parSys.Close()
		seqSys.Close()
	}
	ratios := make([]float64, 0, timingReps)
	for i := range par.Reps {
		if seq.Reps[i] > 0 {
			ratios = append(ratios, par.Reps[i]/seq.Reps[i])
		}
	}
	sort.Float64s(ratios)
	if len(ratios) > 0 {
		speedup = ratios[len(ratios)/2]
	}
	return seq, par, speedup, nil
}

// RunCycleRate measures simulator throughput on a loaded w×h mesh with
// the sequential kernel and with the parallel kernel at the given
// worker count (<= 0 picks GOMAXPROCS), and cross-checks that both
// modes produce identical router counters. epoch > 1 amortizes the
// parallel kernel's barrier over that many cycles (the links deepen to
// match, in both modes).
func RunCycleRate(w, h int, cycles int64, workers, epoch int) (*CycleRateResult, error) {
	workers = sim.ResolveWorkers(workers)
	if epoch < 1 {
		epoch = 1
	}
	if cycles <= 0 {
		cycles = 50000
	}
	seq, par, speedup, err := timePair(w, h, workers, epoch, cycles)
	if err != nil {
		return nil, err
	}
	linkLat := 1
	if epoch > 1 {
		linkLat = epoch
	}
	seqAllocs, err := steadyAllocs(w, h, 1, linkLat, 0, cycles)
	if err != nil {
		return nil, err
	}
	parAllocs, err := steadyAllocs(w, h, workers, linkLat, epoch, cycles)
	if err != nil {
		return nil, err
	}
	return &CycleRateResult{
		W: w, H: h, Cycles: cycles, Workers: workers, Epoch: epoch,
		SeqRate: seq.Rate, ParRate: par.Rate, Speedup: speedup,
		SeqAllocsPerCycle: seqAllocs, ParAllocsPerCycle: parAllocs,
		StatsMatch: reflect.DeepEqual(seq.Stats, par.Stats),
	}, nil
}

// Table renders the result.
func (r *CycleRateResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Simulator cycle rate, %dx%d mesh, %d cycles", r.W, r.H, r.Cycles),
		Header: []string{"kernel", "cycles/sec", "allocs/cycle"},
	}
	t.AddRow("sequential", fmt.Sprintf("%.0f", r.SeqRate), fmt.Sprintf("%.2f", r.SeqAllocsPerCycle))
	par := fmt.Sprintf("parallel x%d", r.Workers)
	if r.Epoch > 1 {
		par += fmt.Sprintf(" epoch %d", r.Epoch)
	}
	t.AddRow(par, fmt.Sprintf("%.0f", r.ParRate), fmt.Sprintf("%.2f", r.ParAllocsPerCycle))
	t.AddNote("speedup %.2fx; router counters bit-identical: %v", r.Speedup, r.StatsMatch)
	return t
}
