package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"

	"repro/internal/sim"
)

// SweepRow is one (mesh, worker-count) measurement of the scaling
// sweep, always compared against a shared sequential baseline for the
// same mesh.
type SweepRow struct {
	W, H    int
	Cycles  int64
	Workers int
	// Epoch is the synchronization epoch of the parallel mode (1 =
	// per-cycle barriers); epochs above 1 deepen the link latency to
	// match on both modes.
	Epoch int

	SeqRate float64 // cycles per second, sequential kernel
	ParRate float64 // cycles per second, parallel kernel
	Speedup float64 // median of per-repetition par/seq ratios

	SeqAllocsPerCycle float64
	ParAllocsPerCycle float64

	// StatsMatch confirms this run reproduced the sequential baseline's
	// per-router hardware counters exactly.
	StatsMatch bool
}

// SweepResult is the full scaling matrix. GOMAXPROCS and NumCPU record
// the machine parallelism the sweep actually had available, so a reader
// of the archived numbers can tell a single-core inline-path result
// from a real multicore one (GOMAXPROCS can be capped below the CPU
// count by the environment; NumCPU is the hardware's own figure).
type SweepResult struct {
	GOMAXPROCS int
	NumCPU     int
	Rows       []SweepRow
}

// DefaultSweepMeshes are the square mesh edges the sweep covers.
var DefaultSweepMeshes = []int{8, 16, 32, 64, 128}

// DefaultSweepWorkers returns the worker counts to sweep: 1, 2, 4 and
// GOMAXPROCS, deduplicated and sorted.
func DefaultSweepWorkers() []int {
	set := map[int]bool{1: true, 2: true, 4: true, runtime.GOMAXPROCS(0): true}
	out := make([]int, 0, len(set))
	for w := range set {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// DefaultSweepCycles sizes the measured run per mesh edge so the whole
// sweep stays in tens of seconds: larger meshes do more work per cycle
// and need fewer cycles for a stable rate.
func DefaultSweepCycles(edge int) int64 {
	switch {
	case edge <= 8:
		return 20000
	case edge <= 16:
		return 8000
	case edge <= 32:
		return 3000
	case edge <= 64:
		return 1000
	default:
		return 400
	}
}

// RunScalingSweep measures simulator throughput for every mesh edge ×
// worker count combination. Each mesh's sequential baseline is timed
// once and shared across its rows. Nil or empty arguments select the
// defaults; worker counts <= 0 resolve to GOMAXPROCS. epoch > 1 runs
// the parallel mode epoch-synchronized (links deepened to match on
// both modes).
func RunScalingSweep(meshes []int, workers []int, cycles func(edge int) int64, epoch int) (*SweepResult, error) {
	if len(meshes) == 0 {
		meshes = DefaultSweepMeshes
	}
	if len(workers) == 0 {
		workers = DefaultSweepWorkers()
	}
	if cycles == nil {
		cycles = DefaultSweepCycles
	}
	if epoch < 1 {
		epoch = 1
	}
	linkLat := 1
	if epoch > 1 {
		linkLat = epoch
	}
	res := &SweepResult{GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, edge := range meshes {
		n := cycles(edge)
		// Steady-state allocations are deterministic and independent of
		// the worker count (the parallel kernel reproduces the sequential
		// machine bit for bit), so measure each mode once per mesh and
		// share the number across the mesh's rows. The measurement warms
		// up past the pool-filling transient, which the short timing
		// warm-up deliberately does not wait for.
		wkAlloc := 1
		for _, wk := range workers {
			if r := sim.ResolveWorkers(wk); r > wkAlloc {
				wkAlloc = r
			}
		}
		seqAllocs, err := steadyAllocs(edge, edge, 1, linkLat, 0, n)
		if err != nil {
			return nil, fmt.Errorf("sweep %dx%d seq allocs: %w", edge, edge, err)
		}
		parAllocs, err := steadyAllocs(edge, edge, wkAlloc, linkLat, epoch, n)
		if err != nil {
			return nil, fmt.Errorf("sweep %dx%d par allocs: %w", edge, edge, err)
		}
		for _, wk := range workers {
			wk = sim.ResolveWorkers(wk)
			// Each row carries its own interleaved sequential baseline so
			// the ratio is taken under the same machine conditions.
			seq, par, speedup, err := timePair(edge, edge, wk, epoch, n)
			if err != nil {
				return nil, fmt.Errorf("sweep %dx%d x%d: %w", edge, edge, wk, err)
			}
			res.Rows = append(res.Rows, SweepRow{
				W: edge, H: edge, Cycles: n, Workers: wk, Epoch: epoch,
				SeqRate: seq.Rate, ParRate: par.Rate, Speedup: speedup,
				SeqAllocsPerCycle: seqAllocs, ParAllocsPerCycle: parAllocs,
				StatsMatch: reflect.DeepEqual(seq.Stats, par.Stats),
			})
		}
	}
	return res, nil
}

// Row returns the sweep row for the given mesh edge and worker count,
// or nil if the combination was not measured.
func (s *SweepResult) Row(edge, workers int) *SweepRow {
	for i := range s.Rows {
		r := &s.Rows[i]
		if r.W == edge && r.Workers == workers {
			return r
		}
	}
	return nil
}

// Table renders the scaling matrix.
func (s *SweepResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Parallel kernel scaling sweep (GOMAXPROCS=%d, NumCPU=%d)", s.GOMAXPROCS, s.NumCPU),
		Header: []string{"mesh", "workers", "epoch", "cycles", "seq c/s", "par c/s", "speedup", "allocs/cyc", "match"},
	}
	for _, r := range s.Rows {
		t.AddRow(
			fmt.Sprintf("%dx%d", r.W, r.H),
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%d", r.Epoch),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.0f", r.SeqRate),
			fmt.Sprintf("%.0f", r.ParRate),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.2f", r.ParAllocsPerCycle),
			fmt.Sprintf("%v", r.StatsMatch),
		)
	}
	return t
}
