package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// LoadSweepResult is the X7 study: the network-level evaluation the
// paper defers to its PP-MESS-SIM companion (reference 30). A 4×4 mesh
// carries a fixed population of admitted real-time channels while
// uniform best-effort traffic ramps from light load to saturation. The
// paper's architecture claim is that the two classes separate: the
// best-effort latency curve knees upward as the mesh saturates, while
// the time-constrained class keeps its zero miss rate at every load.
type LoadSweepResult struct {
	Rates    []float64 // injected BE bytes/cycle/node
	BEMean   []float64 // cycles
	BEP99    []float64
	BEDeliv  []int64
	TCMean   []float64
	TCMisses []int64
	Channels int
	Cycles   int64
}

// RunLoadSweep sweeps the best-effort injection rate.
func RunLoadSweep(rates []float64, cycles int64) (*LoadSweepResult, error) {
	if len(rates) == 0 || cycles < 10000 {
		return nil, fmt.Errorf("experiments: invalid load sweep config")
	}
	res := &LoadSweepResult{Rates: rates, Cycles: cycles}
	for _, rate := range rates {
		sys, err := core.NewMesh(4, 4, core.Options{})
		if err != nil {
			return nil, err
		}
		// A fixed real-time population: eight channels between corners
		// and mid-mesh nodes.
		routes := [][2]mesh.Coord{
			{{X: 0, Y: 0}, {X: 3, Y: 1}},
			{{X: 3, Y: 0}, {X: 0, Y: 2}},
			{{X: 0, Y: 3}, {X: 2, Y: 0}},
			{{X: 3, Y: 3}, {X: 1, Y: 1}},
			{{X: 1, Y: 2}, {X: 3, Y: 2}},
			{{X: 2, Y: 1}, {X: 0, Y: 1}},
			{{X: 1, Y: 0}, {X: 1, Y: 3}},
			{{X: 2, Y: 3}, {X: 2, Y: 0}},
		}
		opened := 0
		for i, rt := range routes {
			spec := rtc.Spec{Imin: 16, Smax: packet.TCPayloadBytes, D: 100}
			ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
			if err != nil {
				return nil, fmt.Errorf("experiments: channel %d: %w", i, err)
			}
			app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
			if err != nil {
				return nil, err
			}
			sys.Net.Kernel.Register(app)
			opened++
		}
		res.Channels = opened
		if rate > 0 {
			for i, c := range sys.Net.Coords() {
				app, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
					traffic.UniformDst(sys.Net, c), traffic.FixedSize(96), rate, int64(i+1))
				if err != nil {
					return nil, err
				}
				sys.Net.Kernel.Register(app)
			}
		}
		// Standard simulator methodology: warm the network into steady
		// state, reset the counters, then measure.
		warm := cycles / 5
		sys.Run(warm)
		sys.ResetStats()
		sys.Run(cycles - warm)
		sum := sys.Summarize()
		res.BEMean = append(res.BEMean, sum.BELatency.Mean())
		res.BEP99 = append(res.BEP99, sum.BELatency.Quantile(0.99))
		res.BEDeliv = append(res.BEDeliv, sum.BEDelivered)
		res.TCMean = append(res.TCMean, sum.TCLatency.Mean())
		res.TCMisses = append(res.TCMisses, sum.TCMisses)
	}
	return res, nil
}

// Table renders the sweep.
func (r *LoadSweepResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("X7 — network load sweep, 4x4 mesh, %d reserved channels (the ref-[30] companion study)",
			r.Channels),
		Header: []string{"BE rate (B/cyc/node)", "BE mean (cyc)", "BE p99 (cyc)", "BE delivered", "TC mean (cyc)", "TC misses"},
	}
	for i, rate := range r.Rates {
		t.AddRow(f2(rate), f1(r.BEMean[i]), f1(r.BEP99[i]), d(r.BEDeliv[i]), f1(r.TCMean[i]), d(r.TCMisses[i]))
	}
	t.AddNote("best-effort latency knees upward toward saturation while the reserved class")
	t.AddNote("holds zero misses at every load — the class separation the architecture exists for")
	return t
}
