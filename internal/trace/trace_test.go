package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
)

func TestRingEviction(t *testing.T) {
	r := NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Record(Event{Cycle: i})
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(i+2) {
			t.Errorf("event %d cycle %d, want %d (oldest-first)", i, e.Cycle, i+2)
		}
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(10)
	r.Record(Event{Cycle: 7})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Cycle != 7 {
		t.Fatalf("events = %v", ev)
	}
	if NewRing(0) == nil {
		t.Fatal("degenerate capacity must clamp, not fail")
	}
}

func TestKindString(t *testing.T) {
	if KindTCTransmit.String() != "tc-tx" || KindTCDeliver.String() != "tc-rx" || KindBEDeliver.String() != "be-rx" {
		t.Error("kind labels wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind label wrong")
	}
}

// TestAttachEndToEnd traces a live system and checks transmit and
// delivery events appear with sane fields.
func TestAttachEndToEnd(t *testing.T) {
	sys := core.MustNewMesh(2, 1, core.Options{})
	ring := NewRing(64)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	for _, c := range sys.Net.Coords() {
		AttachRouter(ring, sys.Router(c))
		obs := NewDeliveryObserver(ring, c)
		sys.Sink(c).OnTC = obs.TC
		sys.Sink(c).OnBE = obs.BE
	}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("traced")); err != nil {
		t.Fatal(err)
	}
	frame, err := packet.NewBE(1, 0, []byte("be"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Router(src).InjectBE(frame)
	sys.Run(2000)

	var tx, rx, be int
	for _, e := range ring.Events() {
		switch e.Kind {
		case KindTCTransmit:
			tx++
			if e.Class == sched.ClassNone {
				t.Error("transmit event with no class")
			}
		case KindTCDeliver:
			rx++
		case KindBEDeliver:
			be++
		}
	}
	// One packet: transmits at (0,0)+x and at (1,0) reception, one
	// delivery; one BE delivery.
	if tx != 2 || rx != 1 || be != 1 {
		t.Errorf("tx=%d rx=%d be=%d, want 2,1,1", tx, rx, be)
	}
	var buf bytes.Buffer
	ring.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"tc-tx", "tc-rx", "be-rx", "(0,0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestAttachChainsExistingHook verifies tracing composes with hooks the
// experiments install rather than displacing them.
func TestAttachChainsExistingHook(t *testing.T) {
	sys := core.MustNewMesh(1, 1, core.Options{})
	at := mesh.Coord{X: 0, Y: 0}
	r := sys.Router(at)
	called := 0
	r.OnTCTransmit = func(router.TCTransmitEvent) { called++ }
	ring := NewRing(8)
	AttachRouter(ring, r)
	ch, err := sys.OpenChannel(at, []mesh.Coord{at}, rtc.Spec{Imin: 8, Smax: 18, D: 16})
	if err != nil {
		// Self-channels may be rejected by routing; fall back to raw
		// injection against a hand-programmed entry.
		if err := r.SetConnection(9, 9, 8, 1<<router.PortLocal); err != nil {
			t.Fatal(err)
		}
		r.InjectTC(packet.TCPacket{Conn: 9})
	} else if err := ch.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	if called == 0 {
		t.Error("pre-existing hook no longer invoked")
	}
	if ring.Total() == 0 {
		t.Error("ring recorded nothing")
	}
}
