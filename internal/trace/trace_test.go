package trace_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sched"
	"repro/internal/trace"
)

func TestRingEviction(t *testing.T) {
	r := trace.NewRing(3)
	for i := int64(0); i < 5; i++ {
		r.Record(trace.Event{Cycle: i})
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	ev := r.Events()
	if len(ev) != 3 {
		t.Fatalf("retained %d, want 3", len(ev))
	}
	for i, e := range ev {
		if e.Cycle != int64(i+2) {
			t.Errorf("event %d cycle %d, want %d (oldest-first)", i, e.Cycle, i+2)
		}
	}
}

func TestRingUnderfill(t *testing.T) {
	r := trace.NewRing(10)
	r.Record(trace.Event{Cycle: 7})
	ev := r.Events()
	if len(ev) != 1 || ev[0].Cycle != 7 {
		t.Fatalf("events = %v", ev)
	}
	if trace.NewRing(0) == nil {
		t.Fatal("degenerate capacity must clamp, not fail")
	}
}

func TestKindString(t *testing.T) {
	if trace.KindTCTransmit.String() != "tc-tx" || trace.KindTCDeliver.String() != "tc-rx" || trace.KindBEDeliver.String() != "be-rx" {
		t.Error("kind labels wrong")
	}
	if trace.KindStall.String() != "stall" {
		t.Error("stall kind label wrong")
	}
	if trace.Kind(99).String() != "kind(99)" {
		t.Error("unknown kind label wrong")
	}
}

// TestAttachEndToEnd traces a live system and checks the full packet
// lifecycle appears with sane fields. trace.AttachRouter alone now records
// deliveries (through the lifecycle hook), so no sink observers are
// needed.
func TestAttachEndToEnd(t *testing.T) {
	sys := core.MustNewMesh(2, 1, core.Options{})
	ring := trace.NewRing(64)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	for _, c := range sys.Net.Coords() {
		trace.AttachRouter(ring, sys.Router(c))
	}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("traced")); err != nil {
		t.Fatal(err)
	}
	frame, err := packet.NewBE(1, 0, []byte("be"))
	if err != nil {
		t.Fatal(err)
	}
	sys.Router(src).InjectBE(frame)
	sys.Run(2000)

	var inject, enq, win, tx, rx, be int
	for _, e := range ring.Events() {
		switch e.Kind {
		case trace.KindInject:
			inject++
		case trace.KindEnqueue:
			enq++
		case trace.KindArbWin:
			win++
		case trace.KindTCTransmit:
			tx++
			if e.Class == sched.ClassNone {
				t.Error("transmit event with no class")
			}
		case trace.KindTCDeliver:
			rx++
		case trace.KindBEDeliver:
			be++
		}
	}
	// One packet: injected and enqueued at (0,0), transmitted there and
	// at (1,0) (memory or cut-through path), one delivery; one BE
	// delivery.
	if tx != 2 || rx != 1 || be != 1 {
		t.Errorf("tx=%d rx=%d be=%d, want 2,1,1", tx, rx, be)
	}
	if inject != 1 || enq < 1 || win != 2 {
		t.Errorf("inject=%d enqueue=%d arb-win=%d, want 1,>=1,2", inject, enq, win)
	}
	var buf bytes.Buffer
	ring.Dump(&buf)
	out := buf.String()
	for _, want := range []string{"inject", "enqueue", "tc-tx", "tc-rx", "be-rx", "(0,0)"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestTimeline reconstructs a multi-hop time-constrained packet's
// inject→deliver chain across rewritten per-hop connection ids.
func TestTimeline(t *testing.T) {
	sys := core.MustNewMesh(3, 1, core.Options{})
	ring := trace.NewRing(256)
	for _, c := range sys.Net.Coords() {
		trace.AttachRouter(ring, sys.Router(c))
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("hop-hop")); err != nil {
		t.Fatal(err)
	}
	sys.Run(4000)

	tl := trace.Timeline(ring, ch.Admitted().SrcConn)
	if len(tl) < 4 {
		t.Fatalf("timeline too short: %v", tl)
	}
	if tl[0].Kind != trace.KindInject || tl[0].Router != src.String() {
		t.Errorf("timeline does not start with inject at source: %+v", tl[0])
	}
	last := tl[len(tl)-1]
	if last.Kind != trace.KindTCDeliver || last.Router != dst.String() {
		t.Errorf("timeline does not end with delivery at destination: %+v", last)
	}
	hops := map[string]bool{}
	var tx int
	for i, e := range tl {
		hops[e.Router] = true
		if i > 0 && e.Cycle < tl[i-1].Cycle {
			t.Errorf("timeline not in cycle order at %d: %+v", i, e)
		}
		if e.Kind == trace.KindTCTransmit {
			tx++
		}
	}
	if len(hops) != 3 {
		t.Errorf("timeline spans %d routers, want all 3 hops", len(hops))
	}
	if tx != 3 {
		t.Errorf("timeline has %d transmits, want 3 (one per hop)", tx)
	}
}

// TestResetStatsClearsRing checks Router.ResetStats propagates through
// the OnReset chain installed by trace.AttachRouter.
func TestResetStatsClearsRing(t *testing.T) {
	sys := core.MustNewMesh(2, 1, core.Options{})
	ring := trace.NewRing(64)
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	for _, c := range sys.Net.Coords() {
		trace.AttachRouter(ring, sys.Router(c))
	}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{Imin: 8, Smax: 18, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Send([]byte("warmup")); err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)
	if ring.Total() == 0 {
		t.Fatal("warmup recorded nothing")
	}
	sys.Router(src).ResetStats()
	if ring.Total() != 0 || len(ring.Events()) != 0 {
		t.Errorf("ResetStats left %d events (total %d)", len(ring.Events()), ring.Total())
	}
}

// TestAttachChainsExistingHook verifies tracing composes with hooks the
// experiments install rather than displacing them.
func TestAttachChainsExistingHook(t *testing.T) {
	sys := core.MustNewMesh(1, 1, core.Options{})
	at := mesh.Coord{X: 0, Y: 0}
	r := sys.Router(at)
	called := 0
	r.OnTCTransmit = func(router.TCTransmitEvent) { called++ }
	ring := trace.NewRing(8)
	trace.AttachRouter(ring, r)
	ch, err := sys.OpenChannel(at, []mesh.Coord{at}, rtc.Spec{Imin: 8, Smax: 18, D: 16})
	if err != nil {
		// Self-channels may be rejected by routing; fall back to raw
		// injection against a hand-programmed entry.
		if err := r.SetConnection(9, 9, 8, 1<<router.PortLocal); err != nil {
			t.Fatal(err)
		}
		r.InjectTC(packet.TCPacket{Conn: 9})
	} else if err := ch.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	if called == 0 {
		t.Error("pre-existing hook no longer invoked")
	}
	if ring.Total() == 0 {
		t.Error("ring recorded nothing")
	}
}
