package admission

// edfFeasible decides whether a set of sporadic connections is
// schedulable on one link under the deadline-driven discipline the
// router implements. Each task demands C slots every T slots with
// relative deadline D (all in slots, all < 128 by the rollover
// constraint).
//
// The test is the processor-demand criterion for sporadic tasks under
// EDF: the link is feasible iff utilization does not exceed one and, for
// every absolute deadline t up to the analysis bound,
//
//	dbf(t) = Σ_i max(0, ⌊(t − D_i)/T_i⌋ + 1)·C_i ≤ t.
//
// Early traffic served under the horizon parameter is work performed
// ahead of the EDF schedule on an otherwise idle link, so it never
// increases any dbf term; horizons affect buffer bounds (rtc.BufferBound)
// but not this test.
//
// With utilization ≤ 1, violations occur only inside the first busy
// period, whose length is bounded by Σ C_i / (1 − U); the test caps the
// bound at a hyper-horizon sufficient for the router's 7-bit parameter
// range and rejects (conservatively) anything that would need more.
func edfFeasible(tasks []task) bool {
	return edfAnalyze(tasks).feasible
}

// edfReport is the full outcome of one link analysis: the verdict plus
// the numbers the audit trail and capacity ledger surface — which
// sub-test failed and by how much, or how much slack survives.
type edfReport struct {
	feasible bool
	// util is ΣC/T over the analyzed set (valid in every outcome except
	// a "validity" failure, where summation stops at the bad task).
	util float64
	// headroom is the minimum over all checked step points of
	// t − dbf(t), in slots: how many more slots of demand the link could
	// absorb at its tightest deadline. Valid only when feasible.
	headroom int64
	// test names the failed sub-test when infeasible: "utilization",
	// "busy_period", or "validity".
	test string
	// at is the failing step point t and demand the dbf(t) there
	// (busy_period failures only).
	at, demand int64
	// margin is signed: the failure margin (≤ 0) when infeasible —
	// 1−util for the utilization test, t−dbf(t) for the busy-period
	// test — or the headroom (≥ 0) when feasible.
	margin float64
}

// edfAnalyze runs the processor-demand criterion and reports the
// verdict with its margins. The test order matches the original
// edfFeasible exactly — validity, then utilization, then dbf at every
// step point t = D_i + k·T_i ≤ busy-period bound — so the first failing
// test is the one reported.
func edfAnalyze(tasks []task) edfReport {
	if len(tasks) == 0 {
		return edfReport{feasible: true, headroom: maxAnalysisHorizon,
			margin: maxAnalysisHorizon}
	}
	var sumC int64
	var util float64
	for _, tk := range tasks {
		if tk.C < 1 || tk.T < 1 || tk.D < 1 || tk.C > tk.D {
			// Invalid parameters, or a message that cannot finish inside
			// its own bound.
			return edfReport{test: "validity", util: util, margin: -1}
		}
		sumC += tk.C
		util += float64(tk.C) / float64(tk.T)
	}
	if util > 1.0+1e-9 {
		return edfReport{test: "utilization", util: util, margin: 1.0 - util}
	}
	limit := busyPeriodBound(tasks, sumC, util)
	headroom := int64(maxAnalysisHorizon)
	// Check dbf at every step point t = D_i + k·T_i ≤ limit.
	for _, tk := range tasks {
		for t := tk.D; t <= limit; t += tk.T {
			slack := t - demandAt(tasks, t)
			if slack < 0 {
				return edfReport{test: "busy_period", util: util,
					at: t, demand: t - slack, margin: float64(slack)}
			}
			if slack < headroom {
				headroom = slack
			}
		}
	}
	return edfReport{feasible: true, util: util, headroom: headroom,
		margin: float64(headroom)}
}

// maxAnalysisHorizon caps the busy-period bound. Task parameters are
// < 128 slots, so even dense task sets converge well inside this window;
// sets that would need more are rejected as unanalyzable.
const maxAnalysisHorizon = 1 << 16

func busyPeriodBound(tasks []task, sumC int64, util float64) int64 {
	var maxD int64
	for _, tk := range tasks {
		if tk.D > maxD {
			maxD = tk.D
		}
	}
	// busyBoundFrom (edfcache.go) holds the shared arithmetic so the
	// incremental path computes a bit-identical bound.
	return busyBoundFrom(maxD, sumC, util)
}

// demandAt computes dbf(t).
func demandAt(tasks []task, t int64) int64 {
	var sum int64
	for _, tk := range tasks {
		if t < tk.D {
			continue
		}
		n := (t-tk.D)/tk.T + 1
		sum += n * tk.C
	}
	return sum
}
