package experiments

import "testing"

// TestRunSkew checks the §4.1 shape: skew inside the per-hop slack is
// harmless (latency shifts, zero misses); positive skew at or beyond
// the d=8-slot bound produces misses.
func TestRunSkew(t *testing.T) {
	res, err := RunSkew([]int64{-80, 0, 40, 300}, 60000)
	if err != nil {
		t.Fatal(err)
	}
	// Within-slack points: no misses.
	for i, sk := range res.SkewCycles {
		if sk <= 40 && res.Misses[i] != 0 {
			t.Errorf("skew %d cycles: %d misses inside the slack", sk, res.Misses[i])
		}
		if res.Delivered[i] == 0 {
			t.Errorf("skew %d cycles: nothing delivered", sk)
		}
	}
	// B's clock behind (negative skew): packets look early longer →
	// higher latency than the aligned case.
	if !(res.MeanLat[0] > res.MeanLat[1]) {
		t.Errorf("negative skew did not raise latency: %v", res.MeanLat)
	}
	// Far beyond the slack (300 cycles = 15 slots > d=8): misses.
	last := len(res.SkewCycles) - 1
	if res.Misses[last] == 0 {
		t.Error("skew beyond the per-hop bound produced no misses; the §4.1 constraint is not binding")
	}
	if _, err := RunSkew(nil, 100); err == nil {
		t.Error("empty sweep accepted")
	}
	if _, err := RunSkew([]int64{1 << 20}, 100); err == nil {
		t.Error("skew beyond validation bound accepted")
	}
}
