package experiments

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
)

// Fig7Config parameterizes the Figure 7 reproduction: three backlogged
// time-constrained connections with d = Imin (in 20-byte slots) share
// one link with backlogged best-effort traffic under a zero horizon.
type Fig7Config struct {
	Imins  []int64 // per-connection Imin = d, paper uses a 1:2:4 spread
	Cycles int64   // simulated cycles
	Sample int64   // sampling period for the service curves
}

// DefaultFig7 returns the configuration used in EXPERIMENTS.md: Imin =
// d ∈ {4, 8, 16} slots, 8000 cycles (400 slots).
func DefaultFig7() Fig7Config {
	return Fig7Config{Imins: []int64{4, 8, 16}, Cycles: 8000, Sample: 100}
}

// Fig7Result carries the cumulative service curves and their end
// points.
type Fig7Result struct {
	Cfg      Fig7Config
	TC       []*stats.Series // per connection, bytes
	BE       *stats.Series   // best-effort bytes
	TCTotal  []float64
	BETotal  float64
	Expected []float64 // reservation-proportional service
	Misses   int64
}

// sampler periodically samples a set of accumulators.
type sampler struct {
	period int64
	accs   []*stats.Accumulator
}

func (s *sampler) Name() string { return "sampler" }
func (s *sampler) Tick(now sim.Cycle) {
	if int64(now)%s.period == 0 {
		for _, a := range s.accs {
			a.Sample(int64(now))
		}
	}
}

// RunFig7 reproduces the paper's mixed-traffic experiment.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	if len(cfg.Imins) == 0 || cfg.Cycles <= 0 || cfg.Sample <= 0 {
		return nil, fmt.Errorf("experiments: invalid Figure 7 config")
	}
	sys, err := core.NewMesh(2, 1, core.Options{}.WithAdmission(admission.Config{
		Policy:       admission.Partitioned,
		SourceWindow: 4,
		Horizon:      0, // the paper's experiment uses h = 0
	}))
	if err != nil {
		return nil, err
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}

	res := &Fig7Result{Cfg: cfg}
	accs := make([]*stats.Accumulator, 0, len(cfg.Imins)+1)
	connAcc := make(map[uint8]*stats.Accumulator)
	for i, imin := range cfg.Imins {
		spec := rtc.Spec{Imin: imin, Smax: packet.TCPayloadBytes, D: 2 * imin}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: admitting connection %d: %w", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Backlogged, packet.TCPayloadBytes)
		if err != nil {
			return nil, err
		}
		sys.Net.Kernel.Register(app)
		acc := &stats.Accumulator{Series: stats.Series{Name: fmt.Sprintf("connection %d (d=Imin=%d)", i+1, imin)}}
		connAcc[ch.Admitted().SrcConn] = acc
		accs = append(accs, acc)
		res.TC = append(res.TC, &acc.Series)
	}
	beAcc := &stats.Accumulator{Series: stats.Series{Name: "best-effort"}}
	accs = append(accs, beAcc)
	res.BE = &beAcc.Series

	// Tap the (0,0)→+x link.
	r0 := sys.Router(src)
	r0.OnTCTransmit = func(ev router.TCTransmitEvent) {
		if ev.Port != router.PortXPlus {
			return
		}
		if acc, ok := connAcc[ev.InConn]; ok {
			acc.Inc(packet.TCBytes)
		}
	}
	r0.OnBETransmit = func(port int, _ int64) {
		if port == router.PortXPlus {
			beAcc.Inc(1)
		}
	}

	// Backlogged best-effort traffic: saturate whatever the scheduler
	// leaves over.
	beApp, err := traffic.NewBEApp("be", sys.Net, src, traffic.FixedDst(dst), traffic.FixedSize(60), 1.0, 1)
	if err != nil {
		return nil, err
	}
	sys.Net.Kernel.Register(beApp)
	sys.Net.Kernel.Register(&sampler{period: cfg.Sample, accs: accs})

	sys.Run(cfg.Cycles)

	slots := float64(cfg.Cycles) / packet.TCBytes
	for i, imin := range cfg.Imins {
		res.TCTotal = append(res.TCTotal, accs[i].Total())
		res.Expected = append(res.Expected, slots/float64(imin)*packet.TCBytes)
	}
	res.BETotal = beAcc.Total()
	res.Misses = sys.Summarize().TCMisses
	return res, nil
}

// Table renders the end-of-run service totals against the
// reservation-proportional expectation.
func (r *Fig7Result) Table() *Table {
	t := &Table{
		Title: "Figure 7 — time-constrained and best-effort service on one link " +
			"(backlogged connections, h=0)",
		Header: []string{"flow", "Imin=d (slots)", "service (bytes)", "expected (bytes)", "ratio"},
	}
	for i, imin := range r.Cfg.Imins {
		ratio := 0.0
		if r.Expected[i] > 0 {
			ratio = r.TCTotal[i] / r.Expected[i]
		}
		t.AddRow(fmt.Sprintf("connection %d", i+1), d(imin), f1(r.TCTotal[i]), f1(r.Expected[i]), f2(ratio))
	}
	t.AddRow("best-effort", "-", f1(r.BETotal), "(excess bandwidth)", "-")
	var tc float64
	for _, v := range r.TCTotal {
		tc += v
	}
	util := (tc + r.BETotal) / float64(r.Cfg.Cycles)
	t.AddNote("connections served in proportion to 1/Imin as in the paper; deadline misses: %d", r.Misses)
	t.AddNote("link utilization %.1f%% (TC %.1f%% + BE %.1f%%): best-effort flits fill all excess bandwidth",
		util*100, tc/float64(r.Cfg.Cycles)*100, r.BETotal/float64(r.Cfg.Cycles)*100)
	return t
}

// Chart renders the Figure 7 service curves as ASCII art.
func (r *Fig7Result) Chart() string {
	series := append([]*stats.Series{}, r.TC...)
	series = append(series, r.BE)
	return stats.RenderASCII(64, 16, series...)
}
