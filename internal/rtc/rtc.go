// Package rtc implements the real-time channel abstraction (Section 2 of
// the paper, after Kandlur, Shin & Ferrari): unidirectional virtual
// connections with a linear bounded arrival process at the source, an
// end-to-end delay bound decomposed into per-hop bounds, and
// logical-arrival-time bookkeeping that insulates well-behaved
// connections from ill-behaved ones.
//
// All times are in slots — one slot is one time-constrained packet
// transmission time (20 byte cycles) — matching the router's on-chip
// clock. The structures here are the "protocol software" side of the
// design: they run on the node processor and program the router chip
// through its control interface.
package rtc

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/timing"
)

// Spec is a connection's traffic contract and performance requirement.
type Spec struct {
	// Imin is the minimum temporal spacing between messages, in slots.
	Imin int64
	// Smax is the maximum message size in bytes; messages larger than
	// one packet payload occupy multiple consecutive packets.
	Smax int
	// Bmax is the maximum burst: the number of messages a source may
	// generate in excess of the periodic restriction. Bursts are absorbed
	// by logical arrival times (they queue logically at the source), so
	// Bmax affects source buffering, not the per-link guarantees.
	Bmax int
	// D is the end-to-end delay bound relative to logical arrival, in
	// slots.
	D int64
}

// Validate reports the first contract error, if any.
func (s Spec) Validate() error {
	switch {
	case s.Imin < 1:
		return fmt.Errorf("rtc: Imin %d must be at least one slot", s.Imin)
	case s.Smax < 1:
		return fmt.Errorf("rtc: Smax %d must be positive", s.Smax)
	case s.Bmax < 0:
		return fmt.Errorf("rtc: Bmax %d must be non-negative", s.Bmax)
	case s.D < 1:
		return fmt.Errorf("rtc: delay bound %d must be positive", s.D)
	}
	if s.MessageSlots() > s.Imin {
		return fmt.Errorf("rtc: message transmission time %d slots exceeds Imin %d (utilization > 1 at the source)",
			s.MessageSlots(), s.Imin)
	}
	return nil
}

// PacketsPerMessage returns how many fixed-size packets carry one
// maximum-size message.
func (s Spec) PacketsPerMessage() int {
	return (s.Smax + packet.TCPayloadBytes - 1) / packet.TCPayloadBytes
}

// MessageSlots is the link time of one message: the scheduling cost C in
// the per-link admission test.
func (s Spec) MessageSlots() int64 { return int64(s.PacketsPerMessage()) }

// Utilization is the fraction of one link's slots the contract reserves
// in the worst case: C/Imin, the per-connection term the admission
// test's utilization check sums.
func (s Spec) Utilization() float64 {
	return float64(s.MessageSlots()) / float64(s.Imin)
}

// Source computes logical arrival times at the connection's source node:
//
//	ℓ0(m_i) = t_i                          if i = 0
//	ℓ0(m_i) = max(ℓ0(m_{i−1}) + Imin, t_i) if i > 0
//
// Basing all guarantees on ℓ0 rather than the actual generation time t_i
// is what bounds the influence of a bursty or malicious source.
type Source struct {
	spec    Spec
	lastL   timing.Slot
	started bool
	count   int64
}

// NewSource returns a logical-arrival clock for one connection.
func NewSource(spec Spec) *Source { return &Source{spec: spec} }

// Next assigns the logical arrival time for a message generated at slot t.
func (s *Source) Next(t timing.Slot) timing.Slot {
	if !s.started {
		s.started = true
		s.lastL = t
		s.count = 1
		return t
	}
	l := s.lastL + timing.Slot(s.spec.Imin)
	if t > l {
		l = t
	}
	s.lastL = l
	s.count++
	return l
}

// Messages returns how many messages have been assigned arrival times.
func (s *Source) Messages() int64 { return s.count }

// Backlog returns how far the logical clock runs ahead of slot t — the
// number of slots of queued work a backlogged source has accumulated.
func (s *Source) Backlog(t timing.Slot) int64 {
	if !s.started || s.lastL <= t {
		return 0
	}
	return int64(s.lastL - t)
}

// Decompose splits an end-to-end delay bound D over the routers of a
// route (segments = hops + 1: every router traversed, including the
// source and destination routers, schedules the packet once). Each local
// bound must cover at least the message transmission time and respect
// the half-clock-range rollover constraint. Remainder slots go to the
// earliest hops, where queueing for injection is concentrated.
func Decompose(spec Spec, segments int, wheel timing.Wheel) ([]int64, error) {
	if segments < 1 {
		return nil, fmt.Errorf("rtc: route with %d segments", segments)
	}
	base := spec.D / int64(segments)
	rem := spec.D % int64(segments)
	c := spec.MessageSlots()
	if base < c {
		return nil, fmt.Errorf("rtc: delay bound %d too tight for %d hops of %d-slot messages",
			spec.D, segments, c)
	}
	ds := make([]int64, segments)
	for i := range ds {
		ds[i] = base
		if int64(i) < rem {
			ds[i]++
		}
		if !wheel.ValidDelay(ds[i]) {
			return nil, fmt.Errorf("rtc: local delay bound %d exceeds half the clock range (%d)",
				ds[i], wheel.HalfRange())
		}
	}
	return ds, nil
}

// DecomposeUniform is Decompose for callers that only want the uniform
// per-hop bound — the last (most conservative) element of the split —
// without allocating the slice. It reproduces Decompose's verdict and
// error bytes exactly: the split holds only two distinct values, base
// and base+1, and Decompose reports the first invalid one, which is
// base+1 (index 0) when a remainder exists.
func DecomposeUniform(spec Spec, segments int, wheel timing.Wheel) (int64, error) {
	if segments < 1 {
		return 0, fmt.Errorf("rtc: route with %d segments", segments)
	}
	base := spec.D / int64(segments)
	rem := spec.D % int64(segments)
	c := spec.MessageSlots()
	if base < c {
		return 0, fmt.Errorf("rtc: delay bound %d too tight for %d hops of %d-slot messages",
			spec.D, segments, c)
	}
	if rem > 0 && !wheel.ValidDelay(base+1) {
		return 0, fmt.Errorf("rtc: local delay bound %d exceeds half the clock range (%d)",
			base+1, wheel.HalfRange())
	}
	if !wheel.ValidDelay(base) {
		return 0, fmt.Errorf("rtc: local delay bound %d exceeds half the clock range (%d)",
			base, wheel.HalfRange())
	}
	return base, nil
}

// BufferBound is the worst-case number of messages from one connection
// resident at hop j simultaneously (Section 2): packets can arrive up to
// h(j−1)+d(j−1) slots early and leave up to d(j) slots late, so
//
//	⌈(h(j−1)+d(j−1)+d(j)) / Imin⌉
//
// messages may coexist. At the source router, the regulator window takes
// the place of h+d of the (nonexistent) previous hop. The result is in
// packets.
func BufferBound(prevWindow, dj int64, spec Spec) int {
	msgs := (prevWindow + dj + spec.Imin - 1) / spec.Imin
	if msgs < 1 {
		msgs = 1
	}
	return int(msgs) * spec.PacketsPerMessage()
}
