package layout

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
)

func newPair(t *testing.T, w, h int, reference bool) (*mesh.Network, *admission.Controller) {
	t.Helper()
	net, err := mesh.New(w, h, router.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := admission.DefaultConfig()
	cfg.Reference = reference
	ctl, err := admission.New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return net, ctl
}

// uniformRequests is a deterministic stride pattern past saturation.
func uniformRequests(w, h, n int) []Request {
	reqs := make([]Request, n)
	nodes := w * h
	for i := range reqs {
		s := (i*7 + 3) % nodes
		d := (i*13 + 5) % nodes
		if d == s {
			d = (d + 1) % nodes
		}
		reqs[i] = Request{
			Src:  mesh.Coord{X: s % w, Y: s / w},
			Dst:  mesh.Coord{X: d % w, Y: d / w},
			Spec: rtc.Spec{Imin: 16, Smax: 18, D: 64},
		}
	}
	return reqs
}

// TestSynthesizerInertness is the differential guarantee the PR rides
// on: with the optimizer unused, the default Admit path's observable
// bytes — sealed ledger, audit dump hash, and every rejection string —
// are identical whether or not layout probes ever ran against the
// controller. PlanLayout is a read-only what-if; if it ever perturbs
// admission state, this test catches the drift byte-for-byte.
func TestSynthesizerInertness(t *testing.T) {
	w, h := 6, 6
	_, plain := newPair(t, w, h, false)
	_, probed := newPair(t, w, h, false)
	plainLog, probedLog := obs.NewAuditLog(), obs.NewAuditLog()
	plain.AttachAudit(plainLog)
	probed.AttachAudit(probedLog)

	reqs := uniformRequests(w, h, 3*w*h)
	rng := rand.New(rand.NewSource(3))
	for i, r := range reqs {
		// Interleave read-only layout probes on the probed controller:
		// valid ones, invalid ones, and ones that are refused on
		// resources. None may leave a trace.
		for k := 0; k < 1+rng.Intn(3); k++ {
			route := mesh.XYRoute(r.Src, r.Dst)
			if rng.Intn(2) == 0 {
				route = mesh.YXRoute(r.Src, r.Dst)
			}
			split := make([]int64, len(route))
			per := r.Spec.D / int64(len(route))
			for j := range split {
				split[j] = per - int64(rng.Intn(3)) // sometimes below service time
			}
			probed.PlanLayout(admission.PlanSpec{
				Src: r.Src, Dst: r.Dst, Spec: r.Spec, Route: route, DSplit: split,
			})
		}
		_, perr := plain.Admit(r.Src, []mesh.Coord{r.Dst}, r.Spec)
		_, qerr := probed.Admit(r.Src, []mesh.Coord{r.Dst}, r.Spec)
		if (perr == nil) != (qerr == nil) {
			t.Fatalf("request %d: verdicts diverge after layout probes: plain=%v probed=%v", i, perr, qerr)
		}
		if perr != nil && perr.Error() != qerr.Error() {
			t.Fatalf("request %d: rejection bytes diverge after layout probes:\n plain %q\nprobed %q", i, perr, qerr)
		}
	}
	plainSeal, err := json.Marshal(plain.Seal())
	if err != nil {
		t.Fatal(err)
	}
	probedSeal, err := json.Marshal(probed.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainSeal, probedSeal) {
		t.Fatal("sealed ledgers diverge: layout probes perturbed default admission state")
	}
	if plainLog.DumpHash() != probedLog.DumpHash() {
		t.Fatal("audit logs diverge: layout probes left records on the default path")
	}
	if err := probed.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestSynthesizedPlansReferenceAgreement is the fuzz leg: every layout
// the synthesizer settles on is re-admitted, in commit order, by a
// from-scratch Reference-mode controller, which must agree on channel
// identity, reservation totals, and the final sealed ledger bytes.
func TestSynthesizedPlansReferenceAgreement(t *testing.T) {
	w, h := 6, 6
	net, ctl := newPair(t, w, h, false)
	res := Synthesize(net, ctl, uniformRequests(w, h, 3*w*h), Options{})
	if len(res.Admitted) == 0 {
		t.Fatal("synthesizer admitted nothing")
	}
	_, shadow := newPair(t, w, h, true)
	for _, adm := range res.Admitted {
		sch, err := shadow.AdmitLayout(adm.Plan)
		if err != nil {
			t.Fatalf("reference controller refused synthesized layout for request %d: %v", adm.Request, err)
		}
		if sch.ID != adm.Channel.ID || sch.Margin != adm.Channel.Margin ||
			sch.SrcConn != adm.Channel.SrcConn || sch.Bound() != adm.Channel.Bound() {
			t.Fatalf("request %d: reference channel diverges: got id=%d margin=%d conn=%d bound=%d, want id=%d margin=%d conn=%d bound=%d",
				adm.Request, sch.ID, sch.Margin, sch.SrcConn, sch.Bound(),
				adm.Channel.ID, adm.Channel.Margin, adm.Channel.SrcConn, adm.Channel.Bound())
		}
	}
	ctlSeal, err := json.Marshal(ctl.Seal())
	if err != nil {
		t.Fatal(err)
	}
	shadowSeal, err := json.Marshal(shadow.Seal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ctlSeal, shadowSeal) {
		t.Fatal("sealed ledgers diverge between synthesizer run and reference replay")
	}
	if err := shadow.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestSynthesizeAtLeastGreedy checks the structural guarantee that the
// search's first candidates are the greedy planner's own layouts: on
// any request sequence the synthesizer admits at least as many channels
// as the default path.
func TestSynthesizeAtLeastGreedy(t *testing.T) {
	w, h := 6, 6
	reqs := uniformRequests(w, h, 3*w*h)

	_, greedy := newPair(t, w, h, false)
	admitted := 0
	for _, r := range reqs {
		if _, err := greedy.Admit(r.Src, []mesh.Coord{r.Dst}, r.Spec); err == nil {
			admitted++
		}
	}
	net, ctl := newPair(t, w, h, false)
	res := Synthesize(net, ctl, reqs, Options{})
	if len(res.Admitted) < admitted {
		t.Fatalf("synthesizer admitted %d < greedy %d", len(res.Admitted), admitted)
	}
	if got := len(res.Admitted) + len(res.Rejected); got != len(reqs) {
		t.Fatalf("admitted %d + rejected %d != %d requests", len(res.Admitted), len(res.Rejected), len(reqs))
	}
}

// TestCandidateRoutes checks the route generator's invariants: XY
// first, then YX, then staircases; every candidate is Manhattan-minimal
// and ends with local delivery at the destination.
func TestCandidateRoutes(t *testing.T) {
	src, dst := mesh.Coord{X: 1, Y: 1}, mesh.Coord{X: 4, Y: 3}
	routes := candidateRoutes(src, dst, DefaultMaxRoutes)
	if len(routes) < 2 {
		t.Fatalf("got %d candidates, want at least XY and YX", len(routes))
	}
	manhattan := 3 + 2 + 1 // dx + dy + local
	seen := make(map[string]bool)
	for i, route := range routes {
		if len(route) != manhattan {
			t.Errorf("candidate %d has %d hops, want %d (Manhattan-minimal)", i, len(route), manhattan)
		}
		at := src
		for j, port := range route {
			if j == len(route)-1 {
				if port != router.PortLocal {
					t.Errorf("candidate %d does not end with local delivery", i)
				}
				break
			}
			at = at.Add(port)
		}
		if at != dst {
			t.Errorf("candidate %d ends at %s, want %s", i, at, dst)
		}
		key := ""
		for _, p := range route {
			key += router.PortName(p) + ","
		}
		if seen[key] {
			t.Errorf("candidate %d duplicates an earlier route", i)
		}
		seen[key] = true
	}

	// Single-dimension pairs have exactly one minimal route.
	routes = candidateRoutes(mesh.Coord{X: 0, Y: 2}, mesh.Coord{X: 3, Y: 2}, DefaultMaxRoutes)
	if len(routes) != 1 {
		t.Errorf("aligned pair produced %d candidates, want 1", len(routes))
	}
}
