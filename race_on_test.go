//go:build race

package repro

// raceEnabled reports whether the race detector instruments this build;
// timing-sensitive gates skip themselves when it does.
const raceEnabled = true
