// Package mesh assembles real-time routers into networks: the 2-D square
// mesh of Figure 1, and the single-chip loopback configuration used by
// the paper's first experiment. It also provides the coordinate algebra
// shared by dimension-ordered routing and the admission controller.
package mesh

import (
	"fmt"
	"strconv"

	"repro/internal/router"
	"repro/internal/sim"
)

// Coord addresses a node in the mesh.
type Coord struct {
	X, Y int
}

// String renders "(x,y)". Built with strconv rather than fmt: the
// admission audit trail renders coordinates on every decision, and this
// sits on that hot path.
func (c Coord) String() string {
	b := make([]byte, 0, 8)
	b = append(b, '(')
	b = strconv.AppendInt(b, int64(c.X), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(c.Y), 10)
	b = append(b, ')')
	return string(b)
}

// Add returns c displaced by one hop through the given output port.
func (c Coord) Add(port int) Coord {
	switch port {
	case router.PortXPlus:
		return Coord{c.X + 1, c.Y}
	case router.PortXMinus:
		return Coord{c.X - 1, c.Y}
	case router.PortYPlus:
		return Coord{c.X, c.Y + 1}
	case router.PortYMinus:
		return Coord{c.X, c.Y - 1}
	default:
		return c
	}
}

// Network is a set of wired routers driven by one simulation kernel.
type Network struct {
	Kernel  *sim.Kernel
	W, H    int
	cfg     router.Config
	routers map[Coord]*router.Router
	order   []Coord // deterministic iteration order
	failed  map[linkID]bool
}

// linkID names an undirected mesh link canonically: the endpoint with
// the +x/+y facing port.
type linkID struct {
	from Coord
	port int
}

func canonicalLink(from Coord, port int) linkID {
	if port == router.PortXMinus || port == router.PortYMinus {
		return linkID{from.Add(port), reversePort(port)}
	}
	return linkID{from, port}
}

// New builds a W×H mesh of routers with the given configuration,
// bidirectionally wiring every adjacent pair. Router names are their
// coordinates.
func New(w, h int, cfg router.Config) (*Network, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("mesh: dimensions %dx%d invalid", w, h)
	}
	if w > 128 || h > 128 {
		// A 128-edge mesh is the largest whose dimension offsets (at most
		// ±127) still fit the best-effort header's signed bytes.
		return nil, fmt.Errorf("mesh: dimensions %dx%d exceed the signed-byte offset range", w, h)
	}
	n := &Network{
		Kernel:  sim.NewKernel(),
		W:       w,
		H:       h,
		cfg:     cfg,
		routers: make(map[Coord]*router.Router, w*h),
		failed:  make(map[linkID]bool),
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := Coord{x, y}
			r, err := router.New(c.String(), cfg)
			if err != nil {
				return nil, err
			}
			n.routers[c] = r
			n.order = append(n.order, c)
			// Each router is its own kernel shard; node-side software
			// (pacers, sinks, traffic apps) registers into the same shard
			// via RegisterAt so the parallel mode keeps the documented
			// node-before-router ordering per chip.
			n.Kernel.RegisterShard(n.Shard(c), r)
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := Coord{x, y}
			if x+1 < w {
				n.wire(c, Coord{x + 1, y}, router.PortXPlus, router.PortXMinus)
			}
			if y+1 < h {
				n.wire(c, Coord{x, y + 1}, router.PortYPlus, router.PortYMinus)
			}
		}
	}
	n.SetTileSize(0)
	return n, nil
}

// MustNew is New for known-good parameters.
func MustNew(w, h int, cfg router.Config) *Network {
	n, err := New(w, h, cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// wire connects a and b bidirectionally: a's outPort to b, b's reverse
// port back to a. The channels carry the configured link latency and
// tell the kernel which shards they bridge, which is what licenses
// epoch-synchronized parallel execution (the epoch length is bounded by
// the minimum cross-shard wire latency).
func (n *Network) wire(a, b Coord, aPort, bPort int) {
	lat := int64(n.cfg.LinkLatency)
	if lat <= 0 {
		lat = 1
	}
	sa, sb := n.Shard(a), n.Shard(b)
	fw := router.NewChannelShards(n.Kernel, lat, sa, sb)
	n.routers[a].ConnectOut(aPort, fw.Out())
	n.routers[b].ConnectIn(bPort, fw.In())
	bw := router.NewChannelShards(n.Kernel, lat, sb, sa)
	n.routers[b].ConnectOut(bPort, bw.Out())
	n.routers[a].ConnectIn(aPort, bw.In())
}

// Router returns the router at c, or nil if out of range.
func (n *Network) Router(c Coord) *router.Router { return n.routers[c] }

// Contains reports whether c lies in the mesh.
func (n *Network) Contains(c Coord) bool {
	return c.X >= 0 && c.X < n.W && c.Y >= 0 && c.Y < n.H
}

// Coords returns all node coordinates in row-major order.
func (n *Network) Coords() []Coord { return n.order }

// Shard returns the kernel shard key of the node at c (its row-major
// index). Components that talk directly to that node's router — rather
// than through cycle-latched wires — must register into this shard so
// the parallel execution mode preserves their tick order.
func (n *Network) Shard(c Coord) int { return c.Y*n.W + c.X }

// RegisterAt registers a component into the shard of the node at c.
// Use it for per-node software (traffic generators, observers) so the
// network stays parallelizable; cross-node components must use
// Kernel.Register, which makes them scheduling barriers.
func (n *Network) RegisterAt(c Coord, comp sim.Component) {
	n.Kernel.RegisterShard(n.Shard(c), comp)
}

// SetWorkers selects the kernel execution mode: 1 (default) runs every
// component sequentially; w > 1 ticks the per-node shards on w workers
// with bit-identical results; w <= 0 picks GOMAXPROCS.
func (n *Network) SetWorkers(w int) { n.Kernel.SetWorkers(w) }

// DefaultTileSize is the spatial tile edge used by the parallel
// execution mode: node shards group into DefaultTileSize² blocks so
// each kernel worker walks coarse, cache-local regions of the mesh.
const DefaultTileSize = 4

// SetTileSize regroups the kernel's parallel plan around t×t spatial
// blocks of nodes (t = 1 is per-node grouping; t <= 0 restores
// DefaultTileSize). Results are bit-identical for every tile size; the
// choice only affects locality. Takes effect at the next Step.
func (n *Network) SetTileSize(t int) {
	if t <= 0 {
		t = DefaultTileSize
	}
	tilesX := (n.W + t - 1) / t
	n.Kernel.SetTiling(func(shard int) int {
		x, y := shard%n.W, shard/n.W
		return (y/t)*tilesX + x/t
	})
}

// Close releases the kernel's resident worker goroutines, if any.
func (n *Network) Close() { n.Kernel.Close() }

// Run advances the whole network by the given number of cycles.
func (n *Network) Run(cycles int64) { n.Kernel.Run(cycles) }

// Now returns the current cycle.
func (n *Network) Now() int64 { return int64(n.Kernel.Now()) }

// routeLen is the exact length of a dimension-ordered route: one hop
// per unit of offset plus the final local port.
func routeLen(src, dst Coord) int {
	n := 1
	if dst.X > src.X {
		n += dst.X - src.X
	} else {
		n += src.X - dst.X
	}
	if dst.Y > src.Y {
		n += dst.Y - src.Y
	} else {
		n += src.Y - dst.Y
	}
	return n
}

// XYRoute returns the dimension-ordered port sequence from src to dst:
// all x hops, then all y hops — the route best-effort packets take and
// the default route for real-time channels. The returned slice is a
// single exact-length allocation.
func XYRoute(src, dst Coord) []int {
	ports := make([]int, 0, routeLen(src, dst))
	for x := src.X; x < dst.X; x++ {
		ports = append(ports, router.PortXPlus)
	}
	for x := src.X; x > dst.X; x-- {
		ports = append(ports, router.PortXMinus)
	}
	for y := src.Y; y < dst.Y; y++ {
		ports = append(ports, router.PortYPlus)
	}
	for y := src.Y; y > dst.Y; y-- {
		ports = append(ports, router.PortYMinus)
	}
	return append(ports, router.PortLocal)
}

// YXRoute returns the alternate dimension order — all y hops, then all
// x hops. The admission controller uses it as the disjoint fallback
// route when the XY path lacks resources or has failed links (§3.3:
// "the chosen route depends on the resources available at various nodes
// and links in the network").
func YXRoute(src, dst Coord) []int {
	ports := make([]int, 0, routeLen(src, dst))
	for y := src.Y; y < dst.Y; y++ {
		ports = append(ports, router.PortYPlus)
	}
	for y := src.Y; y > dst.Y; y-- {
		ports = append(ports, router.PortYMinus)
	}
	for x := src.X; x < dst.X; x++ {
		ports = append(ports, router.PortXPlus)
	}
	for x := src.X; x > dst.X; x-- {
		ports = append(ports, router.PortXMinus)
	}
	return append(ports, router.PortLocal)
}

// BEOffsets returns the header offsets that dimension-order a
// best-effort packet from src to dst.
func BEOffsets(src, dst Coord) (x, y int) {
	return dst.X - src.X, dst.Y - src.Y
}

// reversePort maps each link direction to its opposite.
func reversePort(p int) int {
	switch p {
	case router.PortXPlus:
		return router.PortXMinus
	case router.PortXMinus:
		return router.PortXPlus
	case router.PortYPlus:
		return router.PortYMinus
	case router.PortYMinus:
		return router.PortYPlus
	default:
		return p
	}
}

// FailLink severs the bidirectional link leaving `from` through `port`:
// both routers lose the wire, in both directions. In-flight
// time-constrained packets scheduled onto the dead port drain at the
// router (counted as TCDeadPortDrops); best-effort packets toward it
// drop as misroutes. Failing a link that is already down is an error.
// The admission controller must be told separately
// (Controller.MarkFailed) so new channels route around.
func (n *Network) FailLink(from Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("mesh: FailLink port %d is not a link", port)
	}
	to := from.Add(port)
	if !n.Contains(from) || !n.Contains(to) {
		return fmt.Errorf("mesh: no link %s→%s", from, router.PortName(port))
	}
	id := canonicalLink(from, port)
	if n.failed[id] {
		return fmt.Errorf("mesh: link %s→%s already failed", from, router.PortName(port))
	}
	n.failed[id] = true
	n.routers[from].ConnectOut(port, nil)
	n.routers[from].ConnectIn(port, nil)
	rp := reversePort(port)
	n.routers[to].ConnectOut(rp, nil)
	n.routers[to].ConnectIn(rp, nil)
	return nil
}

// RepairLink restores a link previously severed by FailLink, rewiring
// both directions with fresh channels. The dead channels' wires stay
// attached to the kernel but their stamps age out, so the cost of a
// flap is bounded and the parallel plan simply rebuilds. Repairing a
// link that is up is an error. Pair with Controller.MarkRepaired so new
// admissions may use the link again.
func (n *Network) RepairLink(from Coord, port int) error {
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("mesh: RepairLink port %d is not a link", port)
	}
	to := from.Add(port)
	if !n.Contains(from) || !n.Contains(to) {
		return fmt.Errorf("mesh: no link %s→%s", from, router.PortName(port))
	}
	id := canonicalLink(from, port)
	if !n.failed[id] {
		return fmt.Errorf("mesh: link %s→%s is not failed", from, router.PortName(port))
	}
	delete(n.failed, id)
	n.wire(from, to, port, reversePort(port))
	return nil
}

// LinkFailed reports whether the link leaving `from` through `port` is
// currently severed.
func (n *Network) LinkFailed(from Coord, port int) bool {
	if port < 0 || port >= router.NumLinks {
		return false
	}
	return n.failed[canonicalLink(from, port)]
}

// TotalStats sums a statistic across all routers. f receives a pointer
// to each router's live Stats struct (no copying); it must only read.
func (n *Network) TotalStats(f func(*router.Stats) int64) int64 {
	var total int64
	for _, c := range n.order {
		total += f(&n.routers[c].Stats)
	}
	return total
}

// Loopback is the paper's first-experiment configuration: one router
// whose +x output feeds its own −x input and whose +y output feeds its
// own −y input. A packet injected with offsets (1,1) crosses the chip
// three times — injection→+x, −x→+y, −y→reception — the multi-hop path
// of Section 5.2.
type Loopback struct {
	Kernel *sim.Kernel
	R      *router.Router
}

// NewLoopback builds the loopback configuration.
func NewLoopback(cfg router.Config) (*Loopback, error) {
	k := sim.NewKernel()
	r, err := router.New("loop", cfg)
	if err != nil {
		return nil, err
	}
	k.Register(r)
	router.Loopback(k, r, router.PortXPlus, router.PortXMinus)
	router.Loopback(k, r, router.PortYPlus, router.PortYMinus)
	return &Loopback{Kernel: k, R: r}, nil
}

// MustNewLoopback is NewLoopback for known-good configurations.
func MustNewLoopback(cfg router.Config) *Loopback {
	l, err := NewLoopback(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Run advances the loopback rig.
func (l *Loopback) Run(cycles int64) { l.Kernel.Run(cycles) }
