package experiments

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// HorizonResult is the X1 extension study: the horizon parameter trades
// average time-constrained latency against downstream buffer occupancy
// (Sections 2 and 4.1 discuss the trade-off; the paper does not plot
// it). One periodic connection crosses a three-router line with slack
// in its per-hop bounds, so packets arrive early at every hop; larger
// horizons release them sooner but hold more packets downstream.
type HorizonResult struct {
	Horizons  []uint32
	MeanLat   []float64 // cycles, injection to delivery
	PeakOcc   []int     // peak scheduler occupancy at the middle router
	BufBound  []int     // reserved buffers per the admission formula
	Delivered []int64
	Misses    int64
}

// occupancyProbe tracks the peak scheduler occupancy of one router.
type occupancyProbe struct {
	sys  *core.System
	at   mesh.Coord
	peak int
}

func (o *occupancyProbe) Name() string { return "occupancy" }
func (o *occupancyProbe) Tick(sim.Cycle) {
	if n := o.sys.Router(o.at).Scheduler().Occupancy(); n > o.peak {
		o.peak = n
	}
}

// RunHorizon sweeps the horizon parameter.
func RunHorizon(horizons []uint32, cycles int64) (*HorizonResult, error) {
	if len(horizons) == 0 || cycles <= 0 {
		return nil, fmt.Errorf("experiments: invalid horizon sweep config")
	}
	res := &HorizonResult{Horizons: horizons}
	spec := rtc.Spec{Imin: 16, Smax: packet.TCPayloadBytes, D: 120} // d = 30/hop: lots of slack
	for _, h := range horizons {
		sys, err := core.NewMesh(4, 1, core.Options{}.WithAdmission(admission.Config{
			Policy:       admission.Partitioned,
			SourceWindow: 16,
			Horizon:      h,
		}))
		if err != nil {
			return nil, err
		}
		src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 3, Y: 0}
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			return nil, err
		}
		app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
		if err != nil {
			return nil, err
		}
		probe := &occupancyProbe{sys: sys, at: mesh.Coord{X: 1, Y: 0}}
		sys.Net.Kernel.Register(app)
		sys.Net.Kernel.Register(probe)
		sys.Run(cycles)
		sum := sys.Summarize()
		res.MeanLat = append(res.MeanLat, sum.TCLatency.Mean())
		res.PeakOcc = append(res.PeakOcc, probe.peak)
		res.BufBound = append(res.BufBound, rtc.BufferBound(int64(h)+ch.Admitted().LocalD, ch.Admitted().LocalD, spec))
		res.Delivered = append(res.Delivered, sum.TCDelivered)
		res.Misses += sum.TCMisses
	}
	return res, nil
}

// Table renders the sweep.
func (r *HorizonResult) Table() *Table {
	t := &Table{
		Title:  "X1 — horizon parameter: average latency vs. downstream buffering (4-router line, d=30/hop)",
		Header: []string{"horizon h (slots)", "mean latency (cycles)", "peak occupancy @hop1", "buffer bound/conn", "delivered"},
	}
	for i, h := range r.Horizons {
		t.AddRow(fmt.Sprintf("%d", h), f1(r.MeanLat[i]), di(r.PeakOcc[i]), di(r.BufBound[i]), d(r.Delivered[i]))
	}
	t.AddNote("larger horizons release early packets sooner (latency falls) but reserve more downstream buffers")
	t.AddNote("deadline misses across the sweep: %d", r.Misses)
	return t
}
