package admission

import (
	"sync"

	"repro/internal/mesh"
)

// routeMemo caches the deterministic planners' port sequences. XY and YX
// routes are pure functions of the endpoint pair, so entries never
// invalidate; under a 100k-request batch the same few thousand pairs
// recur constantly and the memo turns route computation into one map
// probe. Concurrent-safe: AdmitBatch's speculative planners share it.
type routeMemo struct {
	mu sync.RWMutex
	m  map[routeMemoKey][]int
}

type routeMemoKey struct {
	src, dst mesh.Coord
	order    routeOrder
}

// route returns the memoized port sequence, computing and caching it on
// first use. Callers must not mutate the returned slice.
func (rm *routeMemo) route(src, dst mesh.Coord, order routeOrder) []int {
	k := routeMemoKey{src, dst, order}
	rm.mu.RLock()
	ports, ok := rm.m[k]
	rm.mu.RUnlock()
	if ok {
		return ports
	}
	if order == yxOrder {
		ports = mesh.YXRoute(src, dst)
	} else {
		ports = mesh.XYRoute(src, dst)
	}
	rm.mu.Lock()
	if rm.m == nil {
		rm.m = make(map[routeMemoKey][]int)
	}
	// A racing writer may have stored the same pure-function result
	// already; keep the first so callers can alias-compare if they like.
	if prev, ok := rm.m[k]; ok {
		ports = prev
	} else {
		rm.m[k] = ports
	}
	rm.mu.Unlock()
	return ports
}
