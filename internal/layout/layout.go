// Package layout synthesizes channel layouts: given a traffic matrix
// and a mesh, it searches over candidate routes (XY, YX, and minimal
// staircase paths) and non-uniform per-hop delay splits to admit more
// channels than the default planner's fixed XY/YX-plus-uniform-split
// policy can.
//
// The paper fixes neither degree of freedom — any loop-free route and
// any decomposition of D into per-hop d_j that passes the admission
// tests is legal — but its control plane (and this repo's default
// planner) picks the conservative corner of that space: dimension-
// ordered routes and the uniform floor split, which discards up to
// D mod hops slots of deadline slack at every hop. The synthesizer
// recovers both freedoms with a greedy-plus-repair loop: start from
// the exact greedy layout, and on rejection use the typed rejection's
// binding-link/margin feedback to shift delay slack toward the binding
// hop (busy-period failures) or reroute around it (utilization
// failures), probing each candidate with the controller's read-only
// PlanLayout before committing anything.
//
// Everything the synthesizer admits goes through the same
// schedulability, buffer, rollover, and identifier checks as a default
// admission — it proposes layouts, the controller disposes.
package layout

import (
	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/timing"
)

// Request is one channel request of a traffic matrix.
type Request struct {
	Src, Dst mesh.Coord
	Spec     rtc.Spec
}

// Options bounds the synthesizer's search.
type Options struct {
	// MaxRepairs is the per-route cap on repair iterations (delay-slack
	// shifts and buffer shrinks) before the search moves to the next
	// candidate route. Zero means DefaultMaxRepairs.
	MaxRepairs int
	// MaxRoutes caps the candidate routes tried per request (the two
	// dimension orders plus staircase variants). Zero means
	// DefaultMaxRoutes.
	MaxRoutes int
}

// DefaultMaxRepairs and DefaultMaxRoutes bound the search when Options
// leaves them zero: enough iterations to drain a hop's slack surplus
// one transfer at a time at campaign scale, and enough routes to reach
// past the two dimension orders without exploding probe counts.
const (
	DefaultMaxRepairs = 64
	DefaultMaxRoutes  = 8
)

// Admitted records one synthesized admission: the channel the
// controller granted and the exact layout it was granted for (the
// shadow re-validation replays these verbatim).
type Admitted struct {
	Request int // index into the request slice
	Plan    admission.PlanSpec
	Channel *admission.Channel
}

// Rejected records one request no candidate layout could place, with
// the last rejection the search saw.
type Rejected struct {
	Request int
	Err     error
}

// Stats counts the search's work.
type Stats struct {
	// Probes is the number of read-only PlanLayout calls issued.
	Probes int
	// Repairs is the number of delay-split adjustments applied.
	Repairs int
	// Rerouted counts admissions whose route is neither XY nor YX.
	Rerouted int
	// Nonuniform counts admissions whose split is not the uniform floor.
	Nonuniform int
}

// Result is the synthesizer's output for one request sequence.
type Result struct {
	Admitted []Admitted
	Rejected []Rejected
	Stats    Stats
}

// Synthesize runs the requests in order against the controller,
// admitting each through the best layout the search finds. Requests
// are processed greedily (no backtracking over earlier admissions);
// the candidate order guarantees any request the default planner would
// admit is admitted with the byte-identical layout, so a synthesized
// run never places fewer channels than the greedy baseline on the same
// sequence prefix.
func Synthesize(net *mesh.Network, ctl *admission.Controller, reqs []Request, opts Options) *Result {
	if opts.MaxRepairs <= 0 {
		opts.MaxRepairs = DefaultMaxRepairs
	}
	if opts.MaxRoutes <= 0 {
		opts.MaxRoutes = DefaultMaxRoutes
	}
	res := &Result{}
	s := &synth{net: net, ctl: ctl, opts: opts, res: res}
	for i, req := range reqs {
		ps, err := s.place(req)
		if err != nil {
			res.Rejected = append(res.Rejected, Rejected{Request: i, Err: err})
			continue
		}
		ch, err := ctl.AdmitLayout(ps)
		if err != nil {
			// The probe said yes and nothing committed in between, so
			// this cannot happen; surface it as a rejection rather than
			// panicking in a campaign.
			res.Rejected = append(res.Rejected, Rejected{Request: i, Err: err})
			continue
		}
		res.Admitted = append(res.Admitted, Admitted{Request: i, Plan: ps, Channel: ch})
		if !isDimensionOrdered(req.Src, req.Dst, ps.Route) {
			res.Stats.Rerouted++
		}
		if !isUniform(ps.DSplit) {
			res.Stats.Nonuniform++
		}
	}
	return res
}

type synth struct {
	net  *mesh.Network
	ctl  *admission.Controller
	opts Options
	res  *Result
}

// place searches for a layout that admits one request. Candidate
// order: the exact greedy layouts first (XY then YX with the uniform
// floor split — byte-identical to what Admit would commit), then the
// slack-aware search (full-budget Decompose split with repair) over
// XY, YX, and staircase routes. The first probe that passes wins.
func (s *synth) place(req Request) (admission.PlanSpec, error) {
	wheel := s.net.Router(req.Src).Wheel()
	routes := candidateRoutes(req.Src, req.Dst, s.opts.MaxRoutes)
	var lastErr error

	// Greedy-identical pass: guarantees the synthesizer never does
	// worse than the default planner on any prefix of the sequence.
	dimRoutes := 1
	if len(routes) > 1 && isDimensionOrdered(req.Src, req.Dst, routes[1]) {
		dimRoutes = 2
	}
	for _, route := range routes[:dimRoutes] {
		d, err := rtc.DecomposeUniform(req.Spec, len(route), wheel)
		if err != nil {
			lastErr = err
			continue
		}
		ds := make([]int64, len(route))
		for j := range ds {
			ds[j] = d
		}
		ps := admission.PlanSpec{Src: req.Src, Dst: req.Dst, Spec: req.Spec, Route: route, DSplit: ds}
		s.res.Stats.Probes++
		if _, err := s.ctl.PlanLayout(ps); err == nil {
			return ps, nil
		} else {
			lastErr = err
		}
	}

	// Slack-aware search: full-budget split, repaired toward the
	// binding hop on busy-period failures, rerouted on utilization or
	// failed-link ones.
	for _, route := range routes {
		ps, err := s.repair(req, route, wheel)
		if err == nil {
			return ps, nil
		}
		lastErr = err
	}
	return admission.PlanSpec{}, lastErr
}

// repair probes one route starting from the full-budget Decompose
// split and steers by the typed rejection until the layout passes, the
// repair budget runs out, or the rejection says this route cannot work
// at any split (utilization and link failures are split-independent).
func (s *synth) repair(req Request, route []int, wheel timing.Wheel) (admission.PlanSpec, error) {
	ds, err := rtc.Decompose(req.Spec, len(route), wheel)
	if err != nil {
		return admission.PlanSpec{}, err
	}
	dsplit := append([]int64(nil), ds...)
	coords := routeCoords(req.Src, route)
	c := req.Spec.MessageSlots()
	var lastErr error
	for iter := 0; iter <= s.opts.MaxRepairs; iter++ {
		ps := admission.PlanSpec{Src: req.Src, Dst: req.Dst, Spec: req.Spec, Route: route, DSplit: dsplit}
		s.res.Stats.Probes++
		_, err := s.ctl.PlanLayout(ps)
		if err == nil {
			return ps, nil
		}
		lastErr = err
		rej, ok := admission.Explain(err)
		if !ok {
			// Validation error (rollover, budget): not repairable by
			// slot-level shifts — next route.
			return admission.PlanSpec{}, err
		}
		var repaired bool
		switch rej.FailingTest() {
		case "busy_period":
			// The binding link's deadline is too tight: grow that hop's
			// bound with slack taken from the richest other hop. The
			// utilization sum ΣC/T is split-independent, so only the
			// demand-bound half of the test can be repaired this way.
			if j := hopIndex(coords, rej.Router()); j >= 0 {
				repaired = s.shiftToward(dsplit, j, c, wheel)
			}
		case "buffers":
			// The buffer bound at hop j grows with d_{j-1}+d_j; shrink
			// the larger of the two (forfeiting end-to-end slack).
			if j := hopIndex(coords, rej.Router()); j >= 0 {
				repaired = s.shrinkAround(dsplit, j, c)
			}
		default:
			// utilization, link_failed, conn_ids: no delay split fixes
			// these — reroute.
			return admission.PlanSpec{}, err
		}
		if !repaired {
			return admission.PlanSpec{}, err
		}
		s.res.Stats.Repairs++
	}
	return admission.PlanSpec{}, lastErr
}

// shiftToward moves delay slack onto hop j from the hop with the
// largest bound, transferring half the donor's surplus per call (at
// least one slot) so repeated repairs converge geometrically. Returns
// false when no donor has surplus or the receiver cannot grow without
// violating the rollover window.
func (s *synth) shiftToward(ds []int64, j int, c int64, wheel timing.Wheel) bool {
	donor := -1
	for k := range ds {
		if k == j || ds[k] <= c {
			continue
		}
		if donor < 0 || ds[k] > ds[donor] {
			donor = k
		}
	}
	if donor < 0 {
		return false
	}
	t := (ds[donor] - c + 1) / 2
	cfg := s.ctl.ConfigView()
	for t > 0 {
		ok := wheel.ValidDelay(int64(cfg.Horizon) + ds[j] + t)
		if ok && j == 0 {
			ok = wheel.ValidDelay(cfg.SourceWindow + ds[j] + t)
		}
		if ok {
			break
		}
		t /= 2
	}
	if t <= 0 {
		return false
	}
	ds[donor] -= t
	ds[j] += t
	return true
}

// shrinkAround lowers the buffer bound at hop j by shrinking the
// larger of d_{j-1} and d_j one slot (never below the message service
// time). The forfeited slot shortens the end-to-end bound — acceptable
// for admitting a channel the pool could not otherwise buffer.
func (s *synth) shrinkAround(ds []int64, j int, c int64) bool {
	cand := j
	if j > 0 && ds[j-1] > ds[j] {
		cand = j - 1
	}
	if ds[cand] <= c {
		// Try the other side before giving up.
		other := j
		if cand == j && j > 0 {
			other = j - 1
		}
		if other == cand || ds[other] <= c {
			return false
		}
		cand = other
	}
	ds[cand]--
	return true
}

// hopIndex finds the route hop owned by the named router (rejection
// Router() strings render mesh coordinates), -1 when the router is not
// on the route (cannot happen for controller rejections of this
// layout's own probe).
func hopIndex(coords []mesh.Coord, routerName string) int {
	for i, co := range coords {
		if co.String() == routerName {
			return i
		}
	}
	return -1
}

// routeCoords lists the routers a route visits, source first.
func routeCoords(src mesh.Coord, route []int) []mesh.Coord {
	coords := make([]mesh.Coord, 0, len(route))
	at := src
	for _, port := range route {
		coords = append(coords, at)
		if port != router.PortLocal {
			at = at.Add(port)
		}
	}
	return coords
}

// isDimensionOrdered reports whether route is the XY or YX path for
// the endpoints.
func isDimensionOrdered(src, dst mesh.Coord, route []int) bool {
	return sameRoute(route, mesh.XYRoute(src, dst)) || sameRoute(route, mesh.YXRoute(src, dst))
}

func sameRoute(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isUniform reports whether every hop shares one bound — the shape the
// default planner's floor split produces.
func isUniform(ds []int64) bool {
	for _, d := range ds[1:] {
		if d != ds[0] {
			return false
		}
	}
	return true
}

// candidateRoutes enumerates Manhattan-minimal routes from src to dst:
// the XY path, the YX path (when both dimensions move), and staircase
// paths that switch dimensions partway (k steps in the first dimension,
// the full second dimension, then the remainder). All candidates end
// with the local delivery port; max bounds the list. XY and YX lead so
// the greedy-identical pass can reuse the prefix.
func candidateRoutes(src, dst mesh.Coord, max int) [][]int {
	routes := [][]int{mesh.XYRoute(src, dst)}
	dx, dy := dst.X-src.X, dst.Y-src.Y
	if dx == 0 || dy == 0 {
		return routes // one dimension: XY, YX and all staircases coincide
	}
	routes = append(routes, mesh.YXRoute(src, dst))
	xPort, yPort := router.PortXPlus, router.PortYPlus
	nx, ny := dx, dy
	if nx < 0 {
		xPort, nx = router.PortXMinus, -nx
	}
	if ny < 0 {
		yPort, ny = router.PortYMinus, -ny
	}
	stair := func(firstPort, secondPort int, k, nFirst, nSecond int) []int {
		r := make([]int, 0, nx+ny+1)
		for i := 0; i < k; i++ {
			r = append(r, firstPort)
		}
		for i := 0; i < nSecond; i++ {
			r = append(r, secondPort)
		}
		for i := k; i < nFirst; i++ {
			r = append(r, firstPort)
		}
		return append(r, router.PortLocal)
	}
	// Interleave x-first and y-first staircases by split point so a
	// small max still samples both families near the middle of the
	// path, where staircases diverge most from the dimension orders.
	for k := 1; len(routes) < max && (k < nx || k < ny); k++ {
		if k < nx {
			routes = append(routes, stair(xPort, yPort, k, nx, ny))
		}
		if len(routes) < max && k < ny {
			routes = append(routes, stair(yPort, xPort, k, ny, nx))
		}
	}
	return routes
}
