package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/rtc"
)

// Example shows the complete life of a real-time channel: admission,
// periodic sending, and a summary of the guarantees held.
func Example() {
	sys, err := core.NewMesh(4, 4, core.Options{})
	if err != nil {
		panic(err)
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 3, Y: 3}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 70}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		panic(err)
	}
	for i := 0; i < 5; i++ {
		if err := ch.Send([]byte("tick")); err != nil {
			panic(err)
		}
		sys.Run(spec.Imin * packet.TCBytes)
	}
	sys.Run(spec.D * packet.TCBytes)
	sum := sys.Summarize()
	fmt.Printf("delivered=%d misses=%d\n", sum.TCDelivered, sum.TCMisses)
	// Output: delivered=5 misses=0
}

// ExampleSystem_OpenChannel demonstrates admission control rejecting an
// infeasible request: the deadline is too tight for the distance.
func ExampleSystem_OpenChannel() {
	sys := core.MustNewMesh(4, 4, core.Options{})
	_, err := sys.OpenChannel(
		mesh.Coord{X: 0, Y: 0},
		[]mesh.Coord{{X: 3, Y: 3}},
		rtc.Spec{Imin: 8, Smax: 18, D: 3}, // 7 routers, 3 slots: impossible
	)
	fmt.Println(err != nil)
	// Output: true
}

// ExampleSystem_SendBestEffort shows unreserved traffic coexisting with
// the admission-controlled class.
func ExampleSystem_SendBestEffort() {
	sys := core.MustNewMesh(2, 2, core.Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 1}
	if err := sys.SendBestEffort(src, dst, []byte("no reservation needed")); err != nil {
		panic(err)
	}
	sys.RunUntil(func() bool { return sys.Sink(dst).BECount > 0 }, 10000)
	fmt.Println(sys.Sink(dst).BECount)
	// Output: 1
}

// ExampleChannel_Close shows resources returning to the pool.
func ExampleChannel_Close() {
	sys := core.MustNewMesh(2, 1, core.Options{})
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 1, Y: 0}
	spec := rtc.Spec{Imin: 4, Smax: 18, D: 8}
	// Fill the link, close one, and a new channel fits again.
	var last *core.Channel
	n := 0
	for {
		ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
		if err != nil {
			break
		}
		last, n = ch, n+1
	}
	if err := last.Close(); err != nil {
		panic(err)
	}
	_, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	fmt.Printf("admitted=%d reopened=%v\n", n, err == nil)
	// Output: admitted=4 reopened=true
}
