package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// CycleRateResult reports the simulator's own throughput — cycles per
// second on a loaded mesh — sequentially and with the parallel kernel,
// together with the evidence that the two modes agree bit for bit.
type CycleRateResult struct {
	W, H    int
	Cycles  int64
	Workers int

	SeqRate float64 // cycles per second, sequential kernel
	ParRate float64 // cycles per second, parallel kernel
	Speedup float64

	SeqAllocsPerCycle float64
	ParAllocsPerCycle float64

	// StatsMatch confirms the parallel run reproduced the sequential
	// run's per-router hardware counters exactly.
	StatsMatch bool
}

// loadCycleRateSystem builds the measured workload: real-time channels
// crossing the mesh corner to corner plus a best-effort source on every
// node, all registered into per-node shards.
func loadCycleRateSystem(w, h, workers int) (*core.System, error) {
	sys, err := core.NewMesh(w, h, core.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 24 * int64(w+h)}
	routes := [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: w - 1, Y: h - 1}},
		{{X: w - 1, Y: 0}, {X: 0, Y: h - 1}},
		{{X: 0, Y: h - 1}, {X: w - 1, Y: 0}},
		{{X: w - 1, Y: h - 1}, {X: 0, Y: 0}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
		if err != nil {
			return nil, fmt.Errorf("cyclerate: channel %d: %w", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(rt[0], app)
	}
	for i, c := range sys.Net.Coords() {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.FixedSize(64), 0.3, int64(i)+1)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(c, be)
	}
	return sys, nil
}

// timeRun measures one run: cycles per second, heap allocations per
// cycle, and the final per-router counters.
func timeRun(w, h, workers int, cycles int64) (rate, allocs float64, stats []router.Stats, err error) {
	sys, err := loadCycleRateSystem(w, h, workers)
	if err != nil {
		return 0, 0, nil, err
	}
	defer sys.Close()
	// Warm up pools and buffers so the steady state is what's measured.
	sys.Run(cycles / 10)

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sys.Run(cycles)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	rate = float64(cycles) / elapsed.Seconds()
	allocs = float64(m1.Mallocs-m0.Mallocs) / float64(cycles)
	for _, c := range sys.Net.Coords() {
		stats = append(stats, sys.Router(c).Stats)
	}
	return rate, allocs, stats, nil
}

// RunCycleRate measures simulator throughput on a loaded w×h mesh with
// the sequential kernel and with the parallel kernel at the given
// worker count (<= 0 picks GOMAXPROCS), and cross-checks that both
// modes produce identical router counters.
func RunCycleRate(w, h int, cycles int64, workers int) (*CycleRateResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cycles <= 0 {
		cycles = 50000
	}
	seqRate, seqAllocs, seqStats, err := timeRun(w, h, 1, cycles)
	if err != nil {
		return nil, err
	}
	parRate, parAllocs, parStats, err := timeRun(w, h, workers, cycles)
	if err != nil {
		return nil, err
	}
	res := &CycleRateResult{
		W: w, H: h, Cycles: cycles, Workers: workers,
		SeqRate: seqRate, ParRate: parRate,
		SeqAllocsPerCycle: seqAllocs, ParAllocsPerCycle: parAllocs,
		StatsMatch: reflect.DeepEqual(seqStats, parStats),
	}
	if seqRate > 0 {
		res.Speedup = parRate / seqRate
	}
	return res, nil
}

// Table renders the result.
func (r *CycleRateResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Simulator cycle rate, %dx%d mesh, %d cycles", r.W, r.H, r.Cycles),
		Header: []string{"kernel", "cycles/sec", "allocs/cycle"},
	}
	t.AddRow("sequential", fmt.Sprintf("%.0f", r.SeqRate), fmt.Sprintf("%.2f", r.SeqAllocsPerCycle))
	t.AddRow(fmt.Sprintf("parallel x%d", r.Workers), fmt.Sprintf("%.0f", r.ParRate), fmt.Sprintf("%.2f", r.ParAllocsPerCycle))
	t.AddNote("speedup %.2fx; router counters bit-identical: %v", r.Speedup, r.StatsMatch)
	return t
}
