// Failover demonstrates the resilience story behind multi-hop
// topologies: a control channel keeps its deadlines, survives a link
// failure through re-establishment on the disjoint dimension order, and
// resumes guaranteed service — while the failure window is fully
// accounted rather than silently lossy.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
)

func main() {
	sys, err := core.NewMesh(3, 3, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 80}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		log.Fatal(err)
	}

	phase := func(name string, n int) int64 {
		before := sys.Sink(dst).TCCount
		for i := 0; i < n; i++ {
			if err := ch.Send([]byte(fmt.Sprintf("cmd %d", i))); err != nil {
				log.Fatal(err)
			}
			sys.Run(spec.Imin * packet.TCBytes)
		}
		sys.Run(spec.D * packet.TCBytes)
		got := sys.Sink(dst).TCCount - before
		fmt.Printf("%-34s delivered %d/%d\n", name, got, n)
		return got
	}

	phase("healthy (XY route):", 6)

	fmt.Println("\n*** link (0,0)→(1,0) fails ***")
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		log.Fatal(err)
	}
	phase("failed, awaiting re-establishment:", 3)

	if err := ch.Reroute(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("*** channel re-admitted on the disjoint YX route ***")
	got := phase("recovered (YX route):", 6)

	sum := sys.Summarize()
	fmt.Printf("\ndeadline misses end to end: %d; blackholed packets accounted as drops: %d\n",
		sum.TCMisses, sum.TCDrops)
	if got != 6 || sum.TCMisses != 0 {
		log.Fatal("failover demo failed")
	}
	fmt.Println("ok: guarantees resumed after the failure")
}
