package main

import "testing"

func TestParseMesh(t *testing.T) {
	good := map[string][2]int{
		"4x4":  {4, 4},
		"2X3":  {2, 3},
		"10x1": {10, 1},
	}
	for in, want := range good {
		w, h, err := parseMesh(in)
		if err != nil {
			t.Errorf("parseMesh(%q): %v", in, err)
			continue
		}
		if w != want[0] || h != want[1] {
			t.Errorf("parseMesh(%q) = %d,%d, want %d,%d", in, w, h, want[0], want[1])
		}
	}
	for _, in := range []string{"4", "4x", "x4", "axb", "4x4x4", ""} {
		if _, _, err := parseMesh(in); err == nil {
			t.Errorf("parseMesh(%q): want error", in)
		}
	}
}
