package experiments

import (
	"fmt"
	"time"

	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/timing"
)

// ChipResult is the Table 4 analog: the architectural parameters of the
// modelled chip and the structural cost of the shared comparator tree
// for several design points, plus measured selection throughput of the
// software model. Silicon area, transistor count and power (Table 4b)
// are properties of the 0.5 µm implementation and are not reproducible
// in a simulator; the comparator counts and pipeline depths that drove
// them are.
type ChipResult struct {
	Params []string // architectural parameters (Table 4a)
	Costs  []sched.Cost
	// Shared explores §5.1's leaf-sharing alternative: fewer comparators
	// at the price of serialized per-module scans.
	Shared []sched.SharedCost
	// ClockTradeoffs quantifies §4.3: each clock bit doubles both the
	// usable per-hop delay range and the comparator width.
	ClockTradeoffs []ClockPoint
	// SelectNsPerOp is the software model's full-occupancy selection
	// cost for the paper's 256-leaf tree (context for bench numbers).
	SelectNsPerOp float64
}

// ClockPoint is one clock-width design point.
type ClockPoint struct {
	Bits    uint
	KeyBits int
	MaxD    uint32 // largest admissible h+d window, slots
}

// RunChip computes the cost table for leaf counts bracketing the
// paper's 256 and measures software selection cost.
func RunChip() *ChipResult {
	res := &ChipResult{
		Params: []string{
			fmt.Sprintf("connections: 256"),
			fmt.Sprintf("time-constrained packets: 256 x %d bytes", packet.TCBytes),
			fmt.Sprintf("clock (sorting key): 8 (9) bits"),
			fmt.Sprintf("comparator tree pipeline: 2 stages"),
			fmt.Sprintf("flit input buffer: 10 bytes"),
			fmt.Sprintf("packet memory chunk: 10 bytes/cycle"),
		},
	}
	for _, leaves := range []int{64, 128, 256, 512, 1024} {
		res.Costs = append(res.Costs, sched.CostModel(leaves, 8, 2))
	}
	for _, per := range []int{1, 2, 4, 8, 16} {
		res.Shared = append(res.Shared, sched.CostModelShared(256, per, 8, 2))
	}
	for _, bits := range []uint{4, 5, 6, 7, 8} {
		w := timing.MustWheel(bits)
		res.ClockTradeoffs = append(res.ClockTradeoffs, ClockPoint{
			Bits:    bits,
			KeyBits: int(bits) + 1,
			MaxD:    w.HalfRange() - 1,
		})
	}

	// Measure: full tree of on-time packets, one selection.
	wheel := timing.MustWheel(8)
	tree := sched.NewEDFTree(256, wheel)
	for i := 0; i < 256; i++ {
		leaf := sched.Leaf{
			L:    wheel.Wrap(timing.Slot(i % 100)),
			Dl:   wheel.Wrap(timing.Slot(i%100 + 20)),
			Mask: sched.PortMask(1 << (i % 5)),
		}
		if err := tree.Install(i, leaf); err != nil {
			panic(err)
		}
	}
	const iters = 20000
	start := time.Now()
	for i := 0; i < iters; i++ {
		tree.Select(i%5, wheel.Wrap(timing.Slot(i)), 0)
	}
	res.SelectNsPerOp = float64(time.Since(start).Nanoseconds()) / iters
	return res
}

// Table renders the chip specification.
func (r *ChipResult) Table() *Table {
	t := &Table{
		Title:  "Table 4 — router specification (architectural analog; silicon metrics not modelled)",
		Header: []string{"leaves", "comparators", "tree levels", "key bits", "stages", "rows/stage"},
	}
	for _, c := range r.Costs {
		t.AddRow(di(c.Leaves), di(c.Comparators), di(c.Levels), di(c.KeyBits), di(c.Stages), di(c.RowsPerStage))
	}
	for _, p := range r.Params {
		t.AddNote("%s", p)
	}
	t.AddNote("paper chip point: 256 leaves, 255 comparators, 8 levels folded into 2 pipeline stages")
	t.AddNote("software model: %.0f ns per full-occupancy selection", r.SelectNsPerOp)
	return t
}

// SharedTable renders the §5.1 leaf-sharing alternative.
func (r *ChipResult) SharedTable() *Table {
	t := &Table{
		Title:  "Table 4 (cont.) — §5.1 leaf-sharing alternative at 256 packets",
		Header: []string{"leaves/module", "modules", "comparators", "serial scans/selection"},
	}
	for _, c := range r.Shared {
		t.AddRow(di(c.LeavesPerModule), di(c.Modules), di(c.Comparators), di(c.SerializeSlots))
	}
	t.AddNote("sharing trades comparator area for selection latency; the paper's chip keeps factor 1")
	return t
}

// ClockTable renders the §4.3 clock-width trade-off.
func (r *ChipResult) ClockTable() *Table {
	t := &Table{
		Title:  "Table 4 (cont.) — §4.3 clock width vs. delay range",
		Header: []string{"clock bits", "key bits", "max h+d window (slots)"},
	}
	for _, p := range r.ClockTradeoffs {
		t.AddRow(fmt.Sprintf("%d", p.Bits), di(p.KeyBits), fmt.Sprintf("%d", p.MaxD))
	}
	t.AddNote("each clock bit doubles the admissible per-hop delay budget and widens every comparator")
	return t
}
