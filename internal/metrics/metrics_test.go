package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("counter = %d, want 5", c.Load())
	}
	var g Gauge
	g.Set(7)
	g.SetMax(3)
	if g.Load() != 7 {
		t.Errorf("SetMax lowered the gauge to %d", g.Load())
	}
	g.SetMax(11)
	if g.Load() != 11 {
		t.Errorf("SetMax did not raise the gauge: %d", g.Load())
	}
}

func TestRouterBlockNilSafe(t *testing.T) {
	var m *RouterMetrics
	m.Reset() // must not panic
	if m.Name() != "" {
		t.Error("nil block has a name")
	}
}

func TestRegistryRouterIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Router("(0,0)")
	b := reg.Router("(0,0)")
	if a != b {
		t.Fatal("Router() returned distinct blocks for one name")
	}
	reg.Router("(1,0)")
	if got := reg.Routers(); len(got) != 2 || got[0] != "(0,0)" || got[1] != "(1,0)" {
		t.Errorf("Routers() = %v", got)
	}
}

func fill(reg *Registry) {
	m := reg.Router("(0,0)")
	m.TCEnqueued.Add(10)
	m.TCDequeued[0].Add(9)
	m.ArbWins[0][ArbOnTime].Add(7)
	m.ArbWins[0][ArbEarly].Add(2)
	m.ArbWins[4][ArbBE].Add(100)
	m.MemOccupancy.Set(3)
	m.MemHighWater.SetMax(12)
	m.SlotRollovers.Add(4)
	m.DeadlineMisses.Inc()
	m.Drops[DropTCNoRoute].Add(2)
	n := reg.Router("(1,0)")
	n.TCEnqueued.Add(5)
	n.MemHighWater.SetMax(8)
}

func TestSnapshotTotals(t *testing.T) {
	reg := NewRegistry()
	fill(reg)
	snap := reg.Snapshot()
	if snap.Totals.TCEnqueued != 15 {
		t.Errorf("total enqueued = %d, want 15", snap.Totals.TCEnqueued)
	}
	if snap.Totals.MemHighWater != 12 {
		t.Errorf("total high water = %d, want max 12", snap.Totals.MemHighWater)
	}
	if snap.Totals.ArbWins["+x"]["on_time"] != 7 {
		t.Errorf("total on-time wins = %d, want 7", snap.Totals.ArbWins["+x"]["on_time"])
	}
	if snap.Totals.Drops["tc_no_route"] != 2 {
		t.Errorf("total no-route drops = %d, want 2", snap.Totals.Drops["tc_no_route"])
	}
	if len(snap.Routers) != 2 {
		t.Fatalf("routers = %d, want 2", len(snap.Routers))
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	reg := NewRegistry()
	fill(reg)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if snap.Totals.SlotRollovers != 4 || snap.Totals.DeadlineMisses != 1 {
		t.Errorf("decoded totals wrong: %+v", snap.Totals)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	fill(reg)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rt_arb_wins_total{router="(0,0)",port="+x",class="on_time"} 7`,
		`rt_mem_high_water{router="(0,0)"} 12`,
		`rt_deadline_misses_total{router="(0,0)"} 1`,
		`rt_slot_rollovers_total{router="(0,0)"} 4`,
		`rt_drops_total{router="(0,0)",reason="tc_no_route"} 2`,
		"# TYPE rt_arb_wins_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

func TestResetZeroes(t *testing.T) {
	reg := NewRegistry()
	fill(reg)
	reg.Reset()
	snap := reg.Snapshot()
	if snap.Totals.TCEnqueued != 0 || snap.Totals.MemHighWater != 0 {
		t.Errorf("reset left counts: %+v", snap.Totals)
	}
	// Occupancy level survives reset by design (it is a level, not a count).
	if snap.Totals.MemOccupancy != 3 {
		t.Errorf("occupancy level = %d, want 3 preserved", snap.Totals.MemOccupancy)
	}
}

func TestServeHTTPFormats(t *testing.T) {
	reg := NewRegistry()
	fill(reg)
	rr := httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rr.Body.String(), "rt_arb_wins_total") {
		t.Error("default response is not prometheus text")
	}
	rr = httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics.json", nil))
	var snap Snapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Errorf(".json endpoint not JSON: %v", err)
	}
	rr = httptest.NewRecorder()
	reg.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics?format=json", nil))
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Errorf("format=json endpoint not JSON: %v", err)
	}
}

func TestSamplerSeries(t *testing.T) {
	reg := NewRegistry()
	m := reg.Router("r")
	s := NewSampler("sampler", reg, 10)
	for cyc := int64(0); cyc < 40; cyc++ {
		if cyc == 5 {
			m.TCEnqueued.Add(3)
		}
		if cyc == 25 {
			m.TCEnqueued.Add(2)
			m.MemOccupancy.Set(7)
		}
		s.Tick(sim.Cycle(cyc))
	}
	enq := s.TS.Series("tc_enqueued")
	if enq == nil || enq.Len() != 4 {
		t.Fatalf("tc_enqueued series = %v", enq)
	}
	if enq.At(15) != 3 || enq.At(35) != 5 {
		t.Errorf("series values: at15=%v at35=%v, want 3,5", enq.At(15), enq.At(35))
	}
	if occ := s.TS.Series("mem_occupancy"); occ.At(30) != 7 {
		t.Errorf("occupancy at 30 = %v, want 7", occ.At(30))
	}
}
