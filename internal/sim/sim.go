// Package sim provides a two-phase synchronous simulation kernel.
//
// The real-time router is synchronous hardware: every flip-flop latches on
// the same clock edge. The kernel models this with a compute/commit split.
// On each cycle every registered Component observes the *current* values of
// all Regs (the wires latched at the previous edge) and writes *next*
// values; after all components have run, every Reg commits next→current.
// Because components only communicate through Regs, evaluation order never
// changes results across component boundaries.
//
// Two exceptions are deliberate and documented where used:
//
//   - Nodes (traffic sources/sinks) talk to their local router through
//     injection and delivery queues rather than cycle-latched wires; nodes
//     are registered before routers so a packet handed over in cycle c is
//     visible to the router in cycle c. This models the processor-network
//     interface, which the paper leaves outside the chip.
//   - A router's internal units run in a fixed order inside its single
//     Tick, modelling same-chip combinational paths.
package sim

import "fmt"

// Cycle is an absolute simulation cycle count. One cycle is one byte time
// on a network link (20 ns at the paper's 50 MHz).
type Cycle int64

// Component is a block of synchronous logic evaluated once per cycle.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Tick performs the compute phase for the given cycle: read current
	// Reg values, update internal state, write next Reg values.
	Tick(now Cycle)
}

// Latchable is state that commits at the clock edge, after all components
// have ticked.
type Latchable interface {
	Commit()
}

// Kernel drives a set of components cycle by cycle.
//
// By default every component ticks sequentially in registration order.
// SetWorkers enables the parallel execution mode: components registered
// with RegisterShard may tick concurrently with components of other
// shards, while components registered with plain Register act as
// barriers (see parallel.go). Results are bit-identical across worker
// counts as long as components of different shards communicate only
// through Regs.
type Kernel struct {
	entries []entry
	latches []Latchable
	now     Cycle

	workers   int
	pool      *workerPool
	plan      []segment
	planDirty bool
}

// entry is one registered component with its shard tag.
type entry struct {
	c     Component
	shard int // globalShard for barrier components
}

// globalShard marks a component registered without a shard: it may
// touch any state, so in parallel mode it runs alone between batches.
const globalShard = -1

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel { return &Kernel{workers: 1} }

// Register adds a component. Components tick in registration order. In
// parallel mode an unsharded component is a barrier: every component
// registered before it finishes ticking first, and it ticks alone.
func (k *Kernel) Register(c Component) {
	if c == nil {
		panic("sim: Register(nil)")
	}
	k.entries = append(k.entries, entry{c: c, shard: globalShard})
	k.planDirty = true
}

// RegisterShard adds a component to a shard. Components of the same
// shard always tick in registration order relative to each other;
// components of different shards may tick concurrently in parallel
// mode, so they must interact only through Regs (or not at all). The
// shard key is arbitrary; meshes use the router's row-major index and
// tag each router's node-side software (pacer, sink, traffic sources)
// with its router's shard.
func (k *Kernel) RegisterShard(shard int, c Component) {
	if c == nil {
		panic("sim: RegisterShard(nil)")
	}
	if shard < 0 {
		panic(fmt.Sprintf("sim: RegisterShard(%d): shard must be non-negative", shard))
	}
	k.entries = append(k.entries, entry{c: c, shard: shard})
	k.planDirty = true
}

// AddLatch adds latched state committed at the end of every cycle.
func (k *Kernel) AddLatch(l Latchable) {
	if l == nil {
		panic("sim: AddLatch(nil)")
	}
	k.latches = append(k.latches, l)
}

// Now returns the current cycle (the cycle about to be executed by Step).
func (k *Kernel) Now() Cycle { return k.now }

// Step executes one full cycle: compute phase then commit phase.
func (k *Kernel) Step() {
	if k.workers > 1 {
		k.stepParallel()
		return
	}
	for _, e := range k.entries {
		e.c.Tick(k.now)
	}
	for _, l := range k.latches {
		l.Commit()
	}
	k.now++
}

// Run executes n cycles.
func (k *Kernel) Run(n int64) {
	for i := int64(0); i < n; i++ {
		k.Step()
	}
}

// RunUntil steps the kernel until pred returns true or the budget of
// cycles is exhausted. It reports whether pred was satisfied.
func (k *Kernel) RunUntil(pred func() bool, budget int64) bool {
	for i := int64(0); i < budget; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// Components returns the number of registered components.
func (k *Kernel) Components() int { return len(k.entries) }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d components=%d latches=%d workers=%d}",
		k.now, len(k.entries), len(k.latches), k.workers)
}

// Reg is a clock-latched register of any value type. Producers write the
// next value during the compute phase; consumers read the current value.
// If no producer writes during a cycle, the register drains to the zero
// value at the edge (wire semantics: a Phit is only on the wire for the
// cycle it was driven).
type Reg[T any] struct {
	cur, next T
	sticky    bool // if true, hold value until overwritten (latch semantics)
}

// NewReg returns a wire-semantics register (drains each cycle).
func NewReg[T any]() *Reg[T] { return &Reg[T]{} }

// NewSticky returns a latch-semantics register (holds last written value).
func NewSticky[T any]() *Reg[T] { return &Reg[T]{sticky: true} }

// Read returns the value latched at the previous clock edge.
func (r *Reg[T]) Read() T { return r.cur }

// Write drives the value to be latched at the next clock edge.
func (r *Reg[T]) Write(v T) { r.next = v }

// Commit implements Latchable.
func (r *Reg[T]) Commit() {
	r.cur = r.next
	if !r.sticky {
		var zero T
		r.next = zero
	}
}
