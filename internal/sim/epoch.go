package sim

// Epoch synchronization and quiescence skipping.
//
// The parallel engine's baseline costs one full worker rendezvous per
// simulated cycle. When every cross-shard interaction travels through a
// Pipe of latency ≥ k, a value written during cycle t is unreadable
// before t+k, so workers may tick their tiles for k consecutive cycles
// between rendezvous without any tile observing another's writes early:
// the reader's probe range [t, t+k) and the writer's store range
// [t+k, t+2k) occupy disjoint ring slots. SetEpoch requests such a k;
// the kernel clamps it to the minimum cross-shard pipe latency and
// falls back to 1 whenever a latch (a Reg needs its commit every edge),
// a barrier component, or an unknown-latency wire makes longer epochs
// illegal. The clamp re-derives lazily after every registration, so a
// barrier component registered mid-run flushes the epoch back to 1
// before the next Run iteration.
//
// Quiescence skipping removes the idle cycles entirely. A component
// that implements Skipper can report the next cycle at which it has
// work and can replay a span of idle ticks in closed form. When every
// component is idle past a horizon and no pipe holds an in-flight
// value due before it, the kernel jumps the clock. Skip must be
// bit-exact: counters, scheduler state, and telemetry after Skip(now,
// target) must equal what target-now idle Ticks would have produced,
// which is what keeps sequential, parallel, and epoch runs
// byte-identical.

// Never is the NextWork sentinel for "no work scheduled": far enough
// ahead that it never bounds a skip, small enough that arithmetic on
// it cannot overflow.
const Never = Cycle(1) << 62

// Skipper is a component whose idle stretches the kernel may
// fast-forward.
type Skipper interface {
	Component

	// NextWork returns the earliest cycle ≥ now at which the component
	// may do anything observable; now itself means "busy". Returning an
	// earlier cycle than necessary is safe (the skip just shortens);
	// returning a later one is a correctness bug.
	NextWork(now Cycle) Cycle

	// Skip replays the idle cycles [now, target) in closed form. The
	// component's complete state afterwards must be bit-identical to
	// having Ticked every cycle of the span.
	Skip(now, target Cycle)
}

// SetEpoch requests that parallel workers run up to n consecutive
// cycles between rendezvous. The effective epoch is clamped to the
// minimum cross-shard pipe latency and collapses to 1 whenever latches
// or barrier components are present (EffectiveEpoch reports the result).
// n < 1 panics. Epochs only change execution schedule, never results.
func (k *Kernel) SetEpoch(n int64) {
	if n < 1 {
		panic("sim: SetEpoch requires n >= 1")
	}
	k.epochReq = n
	k.syncDirty = true
}

// Epoch returns the requested epoch length.
func (k *Kernel) Epoch() int64 { return k.epochReq }

// EffectiveEpoch returns the epoch length the kernel may legally run:
// the requested length clamped by wire latencies, latches, and barrier
// components.
func (k *Kernel) EffectiveEpoch() int64 {
	k.refreshSync()
	return k.effEpoch
}

// refreshSync re-derives the effective epoch and the skip roster after
// any registration change.
func (k *Kernel) refreshSync() {
	if !k.syncDirty {
		return
	}
	k.syncDirty = false

	e := k.epochReq
	if len(k.latches) > 0 {
		// Regs must commit at every edge; epochs would skip commits.
		e = 1
	}
	if e > 1 {
		for _, en := range k.entries {
			if en.shard == globalShard {
				// A barrier component may read anything; it needs the
				// per-cycle rendezvous.
				e = 1
				break
			}
		}
	}
	if e > 1 {
		for _, pe := range k.pipes {
			if pe.writer == pe.reader && pe.writer >= 0 {
				continue // same-shard wire: ordering is per-shard serial
			}
			if l := pe.p.Latency(); l < e {
				e = l
			}
		}
	}
	k.effEpoch = e

	// Whole-system skipping needs every component able to fast-forward
	// and no latch whose per-edge drain a jump would miss.
	k.skippers = k.skippers[:0]
	k.skipOK = len(k.latches) == 0
	if k.skipOK {
		for _, en := range k.entries {
			s, ok := en.c.(Skipper)
			if !ok {
				k.skipOK = false
				break
			}
			k.skippers = append(k.skippers, s)
		}
	}
	if !k.skipOK {
		k.skippers = k.skippers[:0]
	}
	k.skipBlock = -1
}

// trySkipTo fast-forwards the whole system to the earliest upcoming
// work (capped at end) when every component is idle and no wire holds
// an arrival due first. Returns false — having changed nothing — if any
// component or pipe has work now. The most-recently-blocking component
// is probed first, so on a busy system the failed probe is one call.
func (k *Kernel) trySkipTo(end Cycle) bool {
	if !k.skipOK {
		return false
	}
	now := k.now
	if b := k.skipBlock; b >= 0 && k.skippers[b].NextWork(now) <= now {
		return false
	}
	target := end
	for i, s := range k.skippers {
		nw := s.NextWork(now)
		if nw <= now {
			k.skipBlock = i
			return false
		}
		if nw < target {
			target = nw
		}
	}
	k.skipBlock = -1
	for _, pe := range k.pipes {
		ns := pe.p.NextStamp(now)
		if ns <= now {
			return false
		}
		if ns < target {
			target = ns
		}
	}
	if target <= now {
		return false
	}
	for _, s := range k.skippers {
		s.Skip(now, target)
	}
	k.now = target
	return true
}
