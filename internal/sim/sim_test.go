package sim

import "testing"

type counter struct {
	name  string
	ticks []Cycle
}

func (c *counter) Name() string   { return c.name }
func (c *counter) Tick(now Cycle) { c.ticks = append(c.ticks, now) }
func (c *counter) count() int     { return len(c.ticks) }
func (c *counter) last() Cycle    { return c.ticks[len(c.ticks)-1] }
func (c *counter) first() Cycle   { return c.ticks[0] }

func TestKernelStepOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	a := &funcComp{"a", func(Cycle) { order = append(order, "a") }}
	b := &funcComp{"b", func(Cycle) { order = append(order, "b") }}
	k.Register(a)
	k.Register(b)
	k.Step()
	k.Step()
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 2 {
		t.Errorf("Now() = %d, want 2", k.Now())
	}
}

type funcComp struct {
	name string
	f    func(Cycle)
}

func (f *funcComp) Name() string   { return f.name }
func (f *funcComp) Tick(now Cycle) { f.f(now) }

func TestKernelRun(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	k.Run(10)
	if c.count() != 10 {
		t.Fatalf("ticked %d times, want 10", c.count())
	}
	if c.first() != 0 || c.last() != 9 {
		t.Errorf("tick cycles [%d..%d], want [0..9]", c.first(), c.last())
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	ok := k.RunUntil(func() bool { return c.count() >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil did not satisfy predicate")
	}
	if c.count() != 5 {
		t.Errorf("ran %d cycles, want exactly 5", c.count())
	}
	ok = k.RunUntil(func() bool { return c.count() >= 1000 }, 10)
	if ok {
		t.Fatal("RunUntil reported success past budget")
	}
}

// TestRunUntilPredAlreadyTrue: a satisfied predicate costs zero steps.
func TestRunUntilPredAlreadyTrue(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	if !k.RunUntil(func() bool { return true }, 100) {
		t.Fatal("RunUntil(true) reported failure")
	}
	if c.count() != 0 {
		t.Errorf("ran %d cycles for an already-true predicate", c.count())
	}
	if k.Now() != 0 {
		t.Errorf("Now() = %d, want 0", k.Now())
	}
}

// TestRunUntilZeroBudget: no steps are taken and the result is just the
// predicate's current value.
func TestRunUntilZeroBudget(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	if k.RunUntil(func() bool { return false }, 0) {
		t.Fatal("zero-budget RunUntil reported success on a false predicate")
	}
	if ok := k.RunUntil(func() bool { return true }, 0); !ok {
		t.Fatal("zero-budget RunUntil missed an already-true predicate")
	}
	if c.count() != 0 {
		t.Errorf("zero budget still ran %d cycles", c.count())
	}
}

// TestRunUntilSatisfiedOnLastCycle: the final post-step check counts —
// a predicate that becomes true exactly when the budget is exhausted
// still reports success.
func TestRunUntilSatisfiedOnLastCycle(t *testing.T) {
	k := NewKernel()
	c := &counter{name: "c"}
	k.Register(c)
	if !k.RunUntil(func() bool { return c.count() >= 10 }, 10) {
		t.Fatal("RunUntil missed a predicate satisfied by the last budgeted cycle")
	}
	if c.count() != 10 {
		t.Errorf("ran %d cycles, want exactly 10", c.count())
	}
	// One cycle short: same predicate, budget 9 from a fresh kernel.
	k2 := NewKernel()
	c2 := &counter{name: "c"}
	k2.Register(c2)
	if k2.RunUntil(func() bool { return c2.count() >= 10 }, 9) {
		t.Fatal("RunUntil reported success one cycle short of the budget")
	}
}

func TestRegisterNilPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	k.Register(nil)
}

func TestAddLatchNilPanics(t *testing.T) {
	k := NewKernel()
	defer func() {
		if recover() == nil {
			t.Fatal("AddLatch(nil) did not panic")
		}
	}()
	k.AddLatch(nil)
}

func TestRegWireSemantics(t *testing.T) {
	r := NewReg[int]()
	r.Write(7)
	if got := r.Read(); got != 0 {
		t.Errorf("Read before commit = %d, want 0", got)
	}
	r.Commit()
	if got := r.Read(); got != 7 {
		t.Errorf("Read after commit = %d, want 7", got)
	}
	// No write this cycle: the wire drains.
	r.Commit()
	if got := r.Read(); got != 0 {
		t.Errorf("wire did not drain: Read = %d, want 0", got)
	}
}

func TestRegStickySemantics(t *testing.T) {
	r := NewSticky[string]()
	r.Write("held")
	r.Commit()
	r.Commit()
	r.Commit()
	if got := r.Read(); got != "held" {
		t.Errorf("sticky reg lost value: %q", got)
	}
	r.Write("new")
	r.Commit()
	if got := r.Read(); got != "new" {
		t.Errorf("sticky reg did not update: %q", got)
	}
}

// TestRegWireMultipleWrites: the last write of a cycle wins, mirroring
// the final driven value being the one latched at the edge.
func TestRegWireMultipleWrites(t *testing.T) {
	r := NewReg[int]()
	r.Write(1)
	r.Write(2)
	r.Write(3)
	r.Commit()
	if got := r.Read(); got != 3 {
		t.Errorf("Read = %d, want the last written value 3", got)
	}
}

// TestRegStickyZeroWrite: writing the zero value to a sticky register
// is a real write, not "no write" — the latch holds zero afterwards.
func TestRegStickyZeroWrite(t *testing.T) {
	r := NewSticky[int]()
	r.Write(9)
	r.Commit()
	r.Write(0)
	r.Commit()
	if got := r.Read(); got != 0 {
		t.Errorf("sticky Read = %d after explicit zero write, want 0", got)
	}
	r.Commit()
	if got := r.Read(); got != 0 {
		t.Errorf("sticky reg drifted to %d", got)
	}
}

// TestRegWireVsStickyDivergence pins the defining difference between
// the two semantics over the same write/commit sequence.
func TestRegWireVsStickyDivergence(t *testing.T) {
	wire := NewReg[string]()
	latch := NewSticky[string]()
	for _, r := range []*Reg[string]{wire, latch} {
		r.Write("driven")
		r.Commit()
	}
	// Cycle with no writes: wire drains, latch holds.
	wire.Commit()
	latch.Commit()
	if got := wire.Read(); got != "" {
		t.Errorf("wire held %q across an idle cycle", got)
	}
	if got := latch.Read(); got != "driven" {
		t.Errorf("sticky lost %q across an idle cycle", got)
	}
}

// TestRegOneCycleLatency verifies the defining property of the kernel: a
// value written by component A in cycle c is visible to component B only
// in cycle c+1, regardless of registration order.
func TestRegOneCycleLatency(t *testing.T) {
	for _, producerFirst := range []bool{true, false} {
		k := NewKernel()
		wire := NewReg[int]()
		k.AddLatch(wire)
		var seen []int
		producer := &funcComp{"p", func(now Cycle) { wire.Write(int(now) + 100) }}
		consumer := &funcComp{"c", func(Cycle) { seen = append(seen, wire.Read()) }}
		if producerFirst {
			k.Register(producer)
			k.Register(consumer)
		} else {
			k.Register(consumer)
			k.Register(producer)
		}
		k.Run(3)
		// Cycle 0: consumer sees 0 (nothing latched yet).
		// Cycle 1: sees value produced in cycle 0 (100).
		// Cycle 2: sees value produced in cycle 1 (101).
		want := []int{0, 100, 101}
		for i := range want {
			if seen[i] != want[i] {
				t.Fatalf("producerFirst=%v: seen=%v, want %v", producerFirst, seen, want)
			}
		}
	}
}

func TestKernelString(t *testing.T) {
	k := NewKernel()
	k.Register(&counter{name: "x"})
	k.AddLatch(NewReg[int]())
	k.Step()
	want := "sim.Kernel{cycle=1 components=1 latches=1 workers=1}"
	if got := k.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
