package sched

import (
	"math/rand"
	"testing"

	"repro/internal/timing"
)

func TestNewApproxEDFValidation(t *testing.T) {
	if _, err := NewApproxEDF(0, wheel8, 2); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewApproxEDF(8, wheel8, 8); err == nil {
		t.Error("shift consuming the whole key accepted")
	}
	a, err := NewApproxEDF(8, wheel8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.QuantizedKeyBits() != 6 {
		t.Errorf("QuantizedKeyBits = %d, want 6 (8−3 magnitude + class)", a.QuantizedKeyBits())
	}
}

// TestApproxZeroShiftMatchesExact: with shift 0 the approximate
// scheduler must make exactly the EDF tree's decisions.
func TestApproxZeroShiftMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(48)
		exact := NewEDFTree(n, wheel8)
		approx, err := NewApproxEDF(n, wheel8, 0)
		if err != nil {
			t.Fatal(err)
		}
		base := rng.Int63n(1 << 18)
		for slot := 0; slot < n; slot++ {
			if rng.Intn(3) == 0 {
				continue
			}
			off := int64(rng.Intn(80)) - 40
			d := int64(rng.Intn(40)) + 1
			lf := Leaf{
				L:    wheel8.Wrap(timing.Slot(base + off)),
				Dl:   wheel8.Wrap(timing.Slot(base + off + d)),
				Mask: PortMask(rng.Intn(31) + 1),
			}
			must(t, exact.Install(slot, lf))
			must(t, approx.Install(slot, lf))
		}
		now := wheel8.Wrap(timing.Slot(base))
		for port := 0; port < NumPorts; port++ {
			for _, h := range []uint32{0, 5, 40} {
				a := exact.Select(port, now, h)
				b := approx.Select(port, now, h)
				if a.Slot != b.Slot || a.Class != b.Class {
					t.Fatalf("trial %d port %d h %d: exact=%+v approx=%+v", trial, port, h, a, b)
				}
			}
		}
	}
}

// TestApproxBucketsCollapseOrder: two on-time packets in the same
// bucket serve lowest-slot-first regardless of exact laxity; packets in
// different buckets keep deadline order.
func TestApproxBucketsCollapseOrder(t *testing.T) {
	a, err := NewApproxEDF(8, wheel8, 3) // 8-slot buckets
	if err != nil {
		t.Fatal(err)
	}
	now := wheel8.Wrap(100)
	// Laxities 5 and 2: same bucket (0) → slot order picks slot 0 even
	// though slot 1 is more urgent.
	must(t, a.Install(0, Leaf{L: wheel8.Wrap(95), Dl: wheel8.Wrap(105), Mask: 1}))
	must(t, a.Install(1, Leaf{L: wheel8.Wrap(95), Dl: wheel8.Wrap(102), Mask: 1}))
	if sel := a.Select(0, now, 0); sel.Slot != 0 {
		t.Errorf("same-bucket tie selected %d, want 0 (slot order)", sel.Slot)
	}
	// Laxity 30 is bucket 3: still loses to bucket 0.
	must(t, a.Install(2, Leaf{L: wheel8.Wrap(95), Dl: wheel8.Wrap(130), Mask: 1}))
	if sel := a.Select(0, now, 0); sel.Slot != 0 {
		t.Errorf("cross-bucket selected %d, want 0", sel.Slot)
	}
	// Clear the bucket-0 packets: bucket 3 surfaces.
	if _, err := a.ClearPort(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ClearPort(1, 0); err != nil {
		t.Fatal(err)
	}
	if sel := a.Select(0, now, 0); sel.Slot != 2 || sel.Class != ClassOnTime {
		t.Errorf("got %+v, want slot 2 on-time", sel)
	}
	if a.Occupancy() != 1 {
		t.Errorf("Occupancy = %d, want 1", a.Occupancy())
	}
}

// TestApproxClassExact: quantization never blurs early vs. on-time, and
// the horizon check stays exact.
func TestApproxClassExact(t *testing.T) {
	a, err := NewApproxEDF(8, wheel8, 4)
	if err != nil {
		t.Fatal(err)
	}
	now := wheel8.Wrap(50)
	// Early by 3: bucket 0 — same bucket as an on-time laxity-3 packet
	// would be, but the class bit must still dominate.
	must(t, a.Install(0, Leaf{L: wheel8.Wrap(53), Dl: wheel8.Wrap(70), Mask: 1}))
	must(t, a.Install(1, Leaf{L: wheel8.Wrap(40), Dl: wheel8.Wrap(115), Mask: 1})) // on-time, laxity 65
	sel := a.Select(0, now, 10)
	if sel.Slot != 1 || sel.Class != ClassOnTime {
		t.Fatalf("on-time must beat early regardless of buckets: %+v", sel)
	}
	if _, err := a.ClearPort(1, 0); err != nil {
		t.Fatal(err)
	}
	// Horizon gates exactly: gap 3 with h=2 is held even though bucket 0.
	if sel := a.Select(0, now, 2); sel.Class != ClassNone {
		t.Errorf("early beyond horizon offered: %+v", sel)
	}
	if sel := a.Select(0, now, 3); sel.Slot != 0 || sel.Class != ClassEarly {
		t.Errorf("early within horizon not offered: %+v", sel)
	}
}

func TestApproxInstallClearErrors(t *testing.T) {
	a, _ := NewApproxEDF(4, wheel8, 1)
	if err := a.Install(9, Leaf{Mask: 1}); err == nil {
		t.Error("out-of-range install accepted")
	}
	if err := a.Install(0, Leaf{}); err == nil {
		t.Error("empty mask accepted")
	}
	must(t, a.Install(0, Leaf{Mask: 1}))
	if err := a.Install(0, Leaf{Mask: 1}); err == nil {
		t.Error("double install accepted")
	}
	if _, err := a.ClearPort(0, 3); err == nil {
		t.Error("clear of unset bit accepted")
	}
	if _, err := a.ClearPort(9, 0); err == nil {
		t.Error("out-of-range clear accepted")
	}
}
