// Package baseline provides the comparator router architectures the
// paper positions itself against (Section 6, Related Work):
//
//   - PFRouter, a behavioural model of the priority-forwarding router
//     chip of Toda et al. [reference 5]: input-queued, packet-switched,
//     small per-input priority queues with static per-packet priorities,
//     and a priority-inheritance protocol that lets the head of a full
//     input buffer inherit the priority of the highest-priority packet
//     still waiting upstream.
//   - Configuration constructors that turn the real-time router into its
//     own ablations (FIFO scheduling, static-priority scheduling), which
//     stand in for output-queued designs without deadline hardware and
//     for priority-virtual-channel designs respectively.
//
// The PF model carries the same 20-byte time-constrained packets as the
// real-time router, with the header stamp byte reinterpreted as the
// packet's static priority (smaller = more urgent) — an 8-bit rendition
// of the chip's 32-bit priority field. It reuses the mesh link types, so
// experiments can wire either architecture into the same harness.
package baseline

import (
	"fmt"
	"sort"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sched"
	"repro/internal/sim"
)

// PFQueueDepth is the per-input priority queue capacity of the
// priority-forwarding chip (8 packets in the published design).
const PFQueueDepth = 8

// PFEntry is one routing-table row of the PF model: incoming id →
// outgoing id and output port set. Priorities travel with packets, not
// connections, so no delay field exists.
type PFEntry struct {
	Valid bool
	Out   uint8
	Mask  sched.PortMask
}

// PFStats aggregates the model's counters.
type PFStats struct {
	Arrived      int64
	Transmitted  [router.NumPorts]int64
	Delivered    int64
	DropsNoRoute int64
	DropsOverrun int64
	Inherited    int64 // head-priority boosts received
}

// pfPacket is one queued packet with its effective priority.
type pfPacket struct {
	prio uint8 // static priority from the header stamp byte
	data [packet.TCBytes]byte
	seq  int64 // FIFO tie-break
}

// pfInput is one input port: byte assembly plus the priority queue.
type pfInput struct {
	asm     [packet.TCBytes]byte
	nAsm    int
	queue   []pfPacket // sorted by (prio, seq)
	inherit uint8      // sideband-boosted head priority (255 = none)
	popped  int        // packets removed this cycle → credits to return
}

// pfOutput is one output port: transmission state and downstream
// credits.
type pfOutput struct {
	credits  int
	txActive bool
	txBuf    [packet.TCBytes]byte
	txIdx    int
	rxBuf    [packet.TCBytes]byte // local reception assembly
}

// PFRouter is the priority-forwarding router model. It implements
// sim.Component and wires into the same channels as the real-time
// router.
type PFRouter struct {
	name  string
	table []PFEntry
	in    [router.NumLinks]*router.InLink
	out   [router.NumLinks]*router.OutLink

	inputs  [router.NumPorts]*pfInput
	outputs [router.NumPorts]*pfOutput

	injQ      [][packet.TCBytes]byte
	injCount  int
	injPkt    [packet.TCBytes]byte
	delivered []router.DeliveredTC

	seq      int64
	nowCycle int64

	Stats PFStats
}

// NewPFRouter creates a priority-forwarding router with the given
// routing-table size.
func NewPFRouter(name string, conns int) (*PFRouter, error) {
	if conns < 1 || conns > 256 {
		return nil, fmt.Errorf("baseline: conns %d out of [1,256]", conns)
	}
	r := &PFRouter{name: name, table: make([]PFEntry, conns)}
	for i := 0; i < router.NumPorts; i++ {
		r.inputs[i] = &pfInput{inherit: 255}
		r.outputs[i] = &pfOutput{credits: PFQueueDepth}
	}
	return r, nil
}

// Name implements sim.Component.
func (r *PFRouter) Name() string { return r.name }

// ConnectIn attaches a link receive side to input port p.
func (r *PFRouter) ConnectIn(p int, l *router.InLink) { r.in[p] = l }

// ConnectOut attaches a link transmit side to output port p.
func (r *PFRouter) ConnectOut(p int, l *router.OutLink) { r.out[p] = l }

// SetRoute programs one table entry.
func (r *PFRouter) SetRoute(in, out uint8, mask sched.PortMask) error {
	if int(in) >= len(r.table) {
		return fmt.Errorf("baseline: id %d exceeds table size %d", in, len(r.table))
	}
	if mask == 0 || mask >= 1<<router.NumPorts {
		return fmt.Errorf("baseline: invalid port mask %#x", mask)
	}
	if mask.Count() != 1 {
		return fmt.Errorf("baseline: priority-forwarding model is unicast only")
	}
	r.table[in] = PFEntry{Valid: true, Out: out, Mask: mask}
	return nil
}

// Inject queues a packet at the injection port; the stamp byte is the
// packet's static priority.
func (r *PFRouter) Inject(p packet.TCPacket) {
	r.injQ = append(r.injQ, packet.EncodeTC(p))
}

// DrainTC returns and clears delivered packets.
func (r *PFRouter) DrainTC() []router.DeliveredTC {
	d := r.delivered
	r.delivered = nil
	return d
}

// Tick implements sim.Component.
func (r *PFRouter) Tick(now sim.Cycle) {
	r.nowCycle = int64(now)
	for p := 0; p < router.NumPorts; p++ {
		r.arbitrate(p)
	}
	r.sampleInputs()
	r.driveAcks()
}

// headFor returns the input whose queue head targets output port p with
// the best effective priority, or -1.
func (r *PFRouter) headFor(p int) int {
	best, bestPrio := -1, uint32(1<<16)
	for i := 0; i < router.NumPorts; i++ {
		q := r.inputs[i].queue
		if len(q) == 0 {
			continue
		}
		ent := r.table[q[0].data[0]]
		if !ent.Valid || !ent.Mask.Has(p) {
			continue
		}
		prio := uint32(q[0].prio)
		if eff := uint32(r.inputs[i].inherit); eff < prio {
			prio = eff
		}
		if prio < bestPrio {
			bestPrio = prio
			best = i
		}
	}
	return best
}

func (r *PFRouter) arbitrate(p int) {
	o := r.outputs[p]
	if o.txActive {
		r.emit(p)
		return
	}
	in := r.headFor(p)
	if in < 0 {
		return
	}
	if p != router.PortLocal {
		if r.out[p] == nil {
			// Dead port: discard (mirrors the real-time router's drain).
			r.popHead(in)
			return
		}
		if o.credits <= 0 {
			// Blocked: advertise the best waiting priority downstream so
			// the full input buffer's head can inherit it.
			q := r.inputs[in].queue
			r.out[p].Drive(r.nowCycle, packet.Phit{SideValid: true, Side: q[0].prio})
			return
		}
		o.credits--
	}
	pkt := r.popHead(in)
	ent := r.table[pkt.data[0]]
	o.txBuf = pkt.data
	o.txBuf[0] = ent.Out // rewrite the connection id; priority stays
	o.txActive = true
	o.txIdx = 0
	r.Stats.Transmitted[p]++
	r.emit(p)
}

func (r *PFRouter) popHead(in int) pfPacket {
	u := r.inputs[in]
	pkt := u.queue[0]
	u.queue = u.queue[1:]
	u.inherit = 255 // inheritance applies to the departed head only
	u.popped++
	return pkt
}

func (r *PFRouter) emit(p int) {
	o := r.outputs[p]
	b := o.txBuf[o.txIdx]
	head := o.txIdx == 0
	tail := o.txIdx == packet.TCBytes-1
	if p == router.PortLocal {
		o.rxBuf[o.txIdx] = b
		o.txIdx++
		if tail {
			o.txActive = false
			pk := packet.DecodeTC(o.rxBuf)
			r.delivered = append(r.delivered, router.DeliveredTC{
				Conn: pk.Conn, Stamp: pk.Stamp, Payload: pk.Payload, Cycle: r.nowCycle,
			})
			r.Stats.Delivered++
		}
		return
	}
	o.txIdx++
	if tail {
		o.txActive = false
	}
	r.out[p].Drive(r.nowCycle, packet.Phit{Valid: true, VC: packet.VCTime, Data: b, Head: head, Tail: tail})
}

func (r *PFRouter) sampleInputs() {
	for p := 0; p < router.NumLinks; p++ {
		if r.in[p] != nil {
			ph := r.in[p].Phit(r.nowCycle)
			if ph.Valid && ph.VC == packet.VCTime {
				r.acceptByte(p, ph.Data)
			}
			if ph.SideValid {
				u := r.inputs[p]
				if len(u.queue) > 0 && ph.Side < u.inherit && ph.Side < u.queue[0].prio {
					u.inherit = ph.Side
					r.Stats.Inherited++
				}
			}
		}
		if r.out[p] != nil && r.out[p].Ack(r.nowCycle).TCCredit {
			if o := r.outputs[p]; o.credits < PFQueueDepth {
				o.credits++
			}
		}
	}
	r.feedInjection()
}

func (r *PFRouter) acceptByte(in int, b byte) {
	u := r.inputs[in]
	u.asm[u.nAsm] = b
	u.nAsm++
	if u.nAsm < packet.TCBytes {
		return
	}
	u.nAsm = 0
	r.enqueue(in, u.asm)
}

func (r *PFRouter) enqueue(in int, data [packet.TCBytes]byte) {
	u := r.inputs[in]
	if !r.table[data[0]].Valid {
		r.Stats.DropsNoRoute++
		return
	}
	if len(u.queue) >= PFQueueDepth {
		// Credits make this unreachable from a correct upstream.
		r.Stats.DropsOverrun++
		return
	}
	pkt := pfPacket{prio: data[1], data: data, seq: r.seq}
	r.seq++
	u.queue = append(u.queue, pkt)
	sort.SliceStable(u.queue, func(a, b int) bool {
		if u.queue[a].prio != u.queue[b].prio {
			return u.queue[a].prio < u.queue[b].prio
		}
		return u.queue[a].seq < u.queue[b].seq
	})
	r.Stats.Arrived++
}

// feedInjection streams queued packets across the injection port at one
// byte per cycle, respecting the local input queue's capacity.
func (r *PFRouter) feedInjection() {
	u := r.inputs[router.PortLocal]
	if r.injCount == 0 {
		if len(r.injQ) == 0 || len(u.queue) >= PFQueueDepth {
			return
		}
		r.injPkt = r.injQ[0]
		r.injQ = r.injQ[1:]
		r.injCount = packet.TCBytes
	}
	idx := packet.TCBytes - r.injCount
	r.acceptByte(router.PortLocal, r.injPkt[idx])
	r.injCount--
}

func (r *PFRouter) driveAcks() {
	for p := 0; p < router.NumLinks; p++ {
		if r.in[p] == nil {
			continue
		}
		if u := r.inputs[p]; u.popped > 0 {
			r.in[p].DriveAck(r.nowCycle, packet.Ack{TCCredit: true})
			u.popped--
		}
	}
}

// QueueDepth reports the current occupancy of an input queue (tests).
func (r *PFRouter) QueueDepth(in int) int { return len(r.inputs[in].queue) }
