// Package sched implements the run-time link scheduler of the real-time
// router (Section 4.2 of the paper).
//
// The router does not keep time-constrained packets in sorted order.
// Instead a single comparator tree, shared by all five output ports,
// selects the packet with the smallest sorting key on demand. Each leaf of
// the tree holds the per-packet state installed when the packet arrived:
// the logical arrival time ℓ(m), the deadline ℓ(m)+d, and a bit mask of
// the output ports still owed a copy (Figure 5). Leaves correspond 1:1
// with packet-memory slots: a mask of zero means both the leaf and the
// memory slot are free.
//
// At the base of the tree, keys are normalized against the current slot
// clock t (Figure 4): on-time packets (ℓ ≤ t) sort by laxity, early
// packets by time-to-ℓ with the discriminator bit set, ineligible leaves
// get the all-ones key. At the top of the tree a final check decides
// whether a winning early packet falls within the link's horizon
// parameter h and may be sent ahead of its logical arrival time.
//
// The package provides three Scheduler implementations behind one
// interface:
//
//   - EDFTree — the paper's design (deadline-driven with horizon).
//   - FIFO — per-port FIFO order; the "no deadline hardware" baseline.
//   - StaticPriority — per-connection fixed priority, standing in for
//     priority-forwarding-style designs in ablations.
package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/timing"
)

// NumPorts is the number of output ports sharing the scheduler: the four
// mesh links plus the reception port.
const NumPorts = 5

// PortMask is a bit mask over output ports; bit i set means the packet is
// still owed to port i (multicast uses several bits).
type PortMask uint8

// AllPortsMask returns a mask with the low n bits set.
func AllPortsMask(n int) PortMask { return PortMask(1<<n - 1) }

// Has reports whether port p's bit is set.
func (m PortMask) Has(p int) bool { return m&(1<<p) != 0 }

// Clear returns m with port p's bit cleared.
func (m PortMask) Clear(p int) PortMask { return m &^ (1 << p) }

// Count returns the number of set bits.
func (m PortMask) Count() int { return bits.OnesCount8(uint8(m)) }

// Ports appends the set port indices to dst in ascending order and
// returns it. Pass dst[:0] to reuse a scratch slice without allocating.
func (m PortMask) Ports(dst []int) []int {
	for p := 0; m != 0; p++ {
		if m&1 != 0 {
			dst = append(dst, p)
		}
		m >>= 1
	}
	return dst
}

// Class is the service class a selection falls in (Table 1).
type Class int

const (
	// ClassNone means no packet is eligible for the port.
	ClassNone Class = iota
	// ClassOnTime is Queue 1: a packet past its logical arrival time,
	// served ahead of everything else.
	ClassOnTime
	// ClassEarly is Queue 3: a packet ahead of its logical arrival time
	// but within the link's horizon; served only when no on-time packet
	// and no best-effort flit awaits.
	ClassEarly
)

func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassOnTime:
		return "on-time"
	case ClassEarly:
		return "early"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Leaf is the per-packet scheduling state at the base of the comparator
// tree. The hardware stores only L, Dl, Mask and OutConn; EnqueueCycle is
// simulator bookkeeping for statistics.
type Leaf struct {
	InUse        bool
	L            timing.Stamp // logical arrival time ℓ(m)
	Dl           timing.Stamp // local deadline ℓ(m)+d
	Mask         PortMask
	OutConn      uint8 // connection identifier for the next hop
	InConn       uint8 // incoming identifier (simulator bookkeeping)
	EnqueueCycle int64
}

// Selection is the result of a scheduling decision for one port.
type Selection struct {
	Slot  int
	Class Class
	Key   timing.Key
}

// Scheduler is the interface the router's output ports program and query.
// Implementations must be deterministic: ties break toward the lowest
// slot index, as a hardware tree with index tie-breaking would.
type Scheduler interface {
	// Install places packet state into the given leaf/memory slot.
	Install(slot int, leaf Leaf) error
	// Select returns the best packet for the port at slot-clock t, given
	// the port's horizon parameter. Class is ClassNone if nothing is
	// eligible.
	Select(port int, t timing.Stamp, horizon uint32) Selection
	// ClearPort marks port's copy of the packet in slot transmitted and
	// reports whether the leaf (and memory slot) is now free.
	ClearPort(slot, port int) (empty bool, err error)
	// Leaf returns a copy of the leaf state for inspection.
	Leaf(slot int) Leaf
	// Occupancy returns the number of in-use leaves.
	Occupancy() int
	// Slots returns the leaf count.
	Slots() int
}

// IdleSkipper is implemented by schedulers whose empty-tree Select has
// closed-form side effects: SkipIdleSelects(n) must leave the scheduler
// bit-identical to n Select calls on an empty tree. The router's
// quiescence fast-forward requires it — a scheduler without the method
// disables cycle skipping for its router.
type IdleSkipper interface {
	SkipIdleSelects(n int64)
}

// EDFTree is the paper's scheduler: a comparator tree over all leaves
// with Figure 4 keys. The software model scans linearly; Tournament (in
// tree.go) mirrors the hardware structure and is tested equivalent.
type EDFTree struct {
	wheel   timing.Wheel
	leaves  []Leaf
	inUse   int
	Overdue int64 // count of selections whose laxity clamped (robustness metric)
	Selects int64 // count of Select invocations (arbitration beats)
}

// NewEDFTree returns an EDF scheduler with the given number of leaf slots
// on the given clock wheel.
func NewEDFTree(slots int, wheel timing.Wheel) *EDFTree {
	if slots <= 0 {
		panic("sched: slots must be positive")
	}
	return &EDFTree{wheel: wheel, leaves: make([]Leaf, slots)}
}

// Wheel returns the clock wheel the tree sorts on.
func (t *EDFTree) Wheel() timing.Wheel { return t.wheel }

// Install implements Scheduler.
func (t *EDFTree) Install(slot int, leaf Leaf) error {
	if slot < 0 || slot >= len(t.leaves) {
		return fmt.Errorf("sched: slot %d out of range [0,%d)", slot, len(t.leaves))
	}
	if t.leaves[slot].InUse {
		return fmt.Errorf("sched: slot %d already in use", slot)
	}
	if leaf.Mask == 0 {
		return fmt.Errorf("sched: installing leaf with empty port mask")
	}
	leaf.InUse = true
	t.leaves[slot] = leaf
	t.inUse++
	return nil
}

// Select implements Scheduler. It performs the same min-reduction the
// hardware comparator tree performs, with the top-of-tree horizon check.
func (t *EDFTree) Select(port int, now timing.Stamp, horizon uint32) Selection {
	t.Selects++
	best := Selection{Slot: -1, Class: ClassNone, Key: t.wheel.KeyIneligible()}
	for i := range t.leaves {
		lf := &t.leaves[i]
		if !lf.InUse || !lf.Mask.Has(port) {
			continue
		}
		k, early, overdue := t.wheel.SortKey(lf.L, lf.Dl, now)
		if overdue {
			t.Overdue++
		}
		if k < best.Key {
			best.Key = k
			best.Slot = i
			if early {
				best.Class = ClassEarly
			} else {
				best.Class = ClassOnTime
			}
		}
	}
	if best.Slot < 0 {
		return Selection{Slot: -1, Class: ClassNone, Key: t.wheel.KeyIneligible()}
	}
	// Top-of-tree check: early winners ship only within the horizon.
	if best.Class == ClassEarly && !t.wheel.WithinHorizon(best.Key, horizon) {
		return Selection{Slot: -1, Class: ClassNone, Key: best.Key}
	}
	return best
}

// ClearPort implements Scheduler.
func (t *EDFTree) ClearPort(slot, port int) (bool, error) {
	if slot < 0 || slot >= len(t.leaves) {
		return false, fmt.Errorf("sched: slot %d out of range", slot)
	}
	lf := &t.leaves[slot]
	if !lf.InUse {
		return false, fmt.Errorf("sched: clearing free slot %d", slot)
	}
	if !lf.Mask.Has(port) {
		return false, fmt.Errorf("sched: port %d bit already clear in slot %d", port, slot)
	}
	lf.Mask = lf.Mask.Clear(port)
	if lf.Mask == 0 {
		*lf = Leaf{}
		t.inUse--
		return true, nil
	}
	return false, nil
}

// Leaf implements Scheduler.
func (t *EDFTree) Leaf(slot int) Leaf { return t.leaves[slot] }

// Occupancy implements Scheduler.
func (t *EDFTree) Occupancy() int { return t.inUse }

// Slots implements Scheduler.
func (t *EDFTree) Slots() int { return len(t.leaves) }

// ResetTelemetry zeroes the running Select and Overdue counters without
// disturbing installed leaves; Router.ResetStats calls it so warmup
// exclusion covers the scheduler too.
func (t *EDFTree) ResetTelemetry() {
	t.Selects = 0
	t.Overdue = 0
}

// SkipIdleSelects implements IdleSkipper: an empty-tree Select only
// increments the beat counter (no leaf, no Overdue).
func (t *EDFTree) SkipIdleSelects(n int64) { t.Selects += n }
