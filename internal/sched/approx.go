package sched

import (
	"fmt"

	"repro/internal/timing"
)

// ApproxEDF is the reduced-complexity link scheduler the paper's
// Section 7 puts forward as future work: an *approximate* version of
// real-time channels that trades sorting precision for hardware cost.
//
// Keys are quantized by dropping the low g bits of the time component
// before comparison, so packets whose laxities (or early gaps) fall in
// the same 2^g-slot bucket are indistinguishable and serve in
// lowest-slot order. Every comparator in the tree narrows by g bits,
// and with coarse enough buckets the tree can be replaced by a small
// bucket-select priority encoder — the cost question CostModel's
// KeyBits column quantifies.
//
// The approximation is conservative in class but not in order: on-time
// never degrades to early (the class bit is exact; only the magnitude
// quantizes), so eligibility and horizon semantics are preserved, while
// deadline *order* inside a bucket is not. The X6 experiment measures
// what that costs in deadline slack across granularities.
type ApproxEDF struct {
	wheel  timing.Wheel
	shift  uint
	leaves []Leaf
	inUse  int
}

// NewApproxEDF returns an approximate scheduler dropping the low
// `shift` bits of every key magnitude. shift = 0 is exact EDF.
func NewApproxEDF(slots int, wheel timing.Wheel, shift uint) (*ApproxEDF, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("sched: slots must be positive")
	}
	if shift >= wheel.Bits() {
		return nil, fmt.Errorf("sched: quantization of %d bits leaves no key on a %d-bit clock",
			shift, wheel.Bits())
	}
	return &ApproxEDF{wheel: wheel, shift: shift, leaves: make([]Leaf, slots)}, nil
}

// QuantizedKeyBits returns the comparator width after quantization
// (class bit plus the surviving magnitude bits).
func (a *ApproxEDF) QuantizedKeyBits() int { return int(a.wheel.Bits()-a.shift) + 1 }

// Install implements Scheduler.
func (a *ApproxEDF) Install(slot int, leaf Leaf) error {
	if slot < 0 || slot >= len(a.leaves) {
		return fmt.Errorf("sched: slot %d out of range [0,%d)", slot, len(a.leaves))
	}
	if a.leaves[slot].InUse {
		return fmt.Errorf("sched: slot %d already in use", slot)
	}
	if leaf.Mask == 0 {
		return fmt.Errorf("sched: installing leaf with empty port mask")
	}
	leaf.InUse = true
	a.leaves[slot] = leaf
	a.inUse++
	return nil
}

// Select implements Scheduler with bucketed comparisons. The horizon
// check uses the exact gap — the buffer-reservation contract depends on
// it — so only the ordering is approximate.
func (a *ApproxEDF) Select(port int, now timing.Stamp, horizon uint32) Selection {
	type qkey struct {
		early  bool
		bucket uint32
	}
	less := func(x, y qkey) bool {
		if x.early != y.early {
			return y.early
		}
		return x.bucket < y.bucket
	}
	best := Selection{Slot: -1, Class: ClassNone, Key: a.wheel.KeyIneligible()}
	var bestQ qkey
	for i := range a.leaves {
		lf := &a.leaves[i]
		if !lf.InUse || !lf.Mask.Has(port) {
			continue
		}
		k, early, _ := a.wheel.SortKey(lf.L, lf.Dl, now)
		if early && !a.wheel.WithinHorizon(k, horizon) {
			continue
		}
		q := qkey{early: early, bucket: a.wheel.KeyGap(k) >> a.shift}
		if best.Slot < 0 || less(q, bestQ) {
			best.Slot = i
			best.Key = k
			bestQ = q
			if early {
				best.Class = ClassEarly
			} else {
				best.Class = ClassOnTime
			}
		}
	}
	return best
}

// ClearPort implements Scheduler.
func (a *ApproxEDF) ClearPort(slot, port int) (bool, error) {
	if slot < 0 || slot >= len(a.leaves) {
		return false, fmt.Errorf("sched: slot %d out of range", slot)
	}
	lf := &a.leaves[slot]
	if !lf.InUse || !lf.Mask.Has(port) {
		return false, fmt.Errorf("sched: invalid clear of slot %d port %d", slot, port)
	}
	lf.Mask = lf.Mask.Clear(port)
	if lf.Mask == 0 {
		*lf = Leaf{}
		a.inUse--
		return true, nil
	}
	return false, nil
}

// Leaf implements Scheduler.
func (a *ApproxEDF) Leaf(slot int) Leaf { return a.leaves[slot] }

// Occupancy implements Scheduler.
func (a *ApproxEDF) Occupancy() int { return a.inUse }

// Slots implements Scheduler.
func (a *ApproxEDF) Slots() int { return len(a.leaves) }

// SkipIdleSelects implements IdleSkipper: an empty-tree Select is a
// pure scan with no telemetry, so skipping beats changes nothing.
func (a *ApproxEDF) SkipIdleSelects(int64) {}

var _ Scheduler = (*ApproxEDF)(nil)
