package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// TestTournamentDrivesChipIdentically runs the same randomized workload
// with the linear-scan EDF model and with the structural comparator
// tree (the gate-level Figure 5 mirror) driving every router, and
// requires bit-identical outcomes. This is the strongest form of the
// sched-package equivalence property: the hardware-shaped reduction
// makes exactly the decisions the behavioural model makes, inside the
// full chip, under contention, multicast and best-effort interference.
func TestTournamentDrivesChipIdentically(t *testing.T) {
	run := func(kind router.SchedulerKind) (int64, int64, float64, int64) {
		cfg := router.DefaultConfig()
		cfg.Scheduler = kind
		sys, err := NewMesh(3, 3, Options{Router: cfg})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 12; i++ {
			src := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
			dst := mesh.Coord{X: rng.Intn(3), Y: rng.Intn(3)}
			if src == dst {
				continue
			}
			spec := rtc.Spec{Imin: int64(6 + rng.Intn(20)), Smax: 18, D: 90}
			ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
			if err != nil {
				continue
			}
			app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
			if err != nil {
				t.Fatal(err)
			}
			sys.Net.Kernel.Register(app)
		}
		for i, c := range sys.Net.Coords() {
			app, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
				traffic.UniformDst(sys.Net, c), traffic.UniformSize(20, 150), 0.25, int64(i))
			if err != nil {
				t.Fatal(err)
			}
			sys.Net.Kernel.Register(app)
		}
		sys.Run(25000)
		sum := sys.Summarize()
		return sum.TCDelivered, sum.BEDelivered, sum.TCLatency.Mean(), sum.TCMisses
	}
	tc1, be1, lat1, m1 := run(router.SchedEDF)
	tc2, be2, lat2, m2 := run(router.SchedTournament)
	if tc1 != tc2 || be1 != be2 || lat1 != lat2 || m1 != m2 {
		t.Errorf("scan vs tournament diverged: (%d,%d,%v,%d) vs (%d,%d,%v,%d)",
			tc1, be1, lat1, m1, tc2, be2, lat2, m2)
	}
	if tc1 == 0 {
		t.Error("degenerate workload")
	}
	if m1 != 0 {
		t.Errorf("admitted workload missed %d deadlines", m1)
	}
}
