package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/scenario"
)

// CapacityFamily is one deterministic sequence of channel requests: the
// i-th request's endpoints come from Place, all requests share Spec.
// The capacity campaign binary-searches the longest admissible prefix
// of the sequence — the family's max admissible channel count — which
// is the baseline number the ROADMAP's layout-synthesis engine will
// have to beat.
type CapacityFamily struct {
	Name string
	Spec rtc.Spec
	// Place returns the i-th request's endpoints on a w×h mesh. It must
	// be a pure function of its arguments so probes are reproducible.
	Place func(i, w, h int) (src, dst mesh.Coord)
}

// DefaultCapacityFamilies returns the standard scenario families:
// uniform stride placement (spread load, links bind), a hotspot funnel
// into the mesh center (the center's delivery port binds), and a
// transpose pattern (diagonal links bind under XY routing).
func DefaultCapacityFamilies() []CapacityFamily {
	return []CapacityFamily{
		{
			Name: "uniform",
			Spec: rtc.Spec{Imin: 16, Smax: 18, D: 64},
			Place: func(i, w, h int) (mesh.Coord, mesh.Coord) {
				n := w * h
				s := (i*7 + 3) % n
				d := (i*13 + 5) % n
				if d == s {
					d = (d + 1) % n
				}
				return mesh.Coord{X: s % w, Y: s / w}, mesh.Coord{X: d % w, Y: d / w}
			},
		},
		{
			Name: "hotspot",
			Spec: rtc.Spec{Imin: 24, Smax: 18, D: 96},
			Place: func(i, w, h int) (mesh.Coord, mesh.Coord) {
				n := w * h
				center := mesh.Coord{X: w / 2, Y: h / 2}
				s := (i*11 + 1) % n
				src := mesh.Coord{X: s % w, Y: s / w}
				if src == center {
					s = (s + 1) % n
					src = mesh.Coord{X: s % w, Y: s / w}
				}
				return src, center
			},
		},
		{
			Name: "transpose",
			Spec: rtc.Spec{Imin: 16, Smax: 18, D: 64},
			Place: func(i, w, h int) (mesh.Coord, mesh.Coord) {
				n := w * h
				s := (i*5 + 1) % n
				src := mesh.Coord{X: s % w, Y: s / w}
				dst := mesh.Coord{X: src.Y % w, Y: src.X % h}
				if dst == src {
					dst.X = (dst.X + 1) % w
					if dst == src {
						dst.Y = (dst.Y + 1) % h
					}
				}
				return src, dst
			},
		},
	}
}

// CapacityCheck is one pass/fail invariant of the capacity campaign.
type CapacityCheck struct {
	Name   string
	OK     bool
	Detail string
}

// CapacityFamilyResult is one family's saturation point and the sealed
// ledger at that point.
type CapacityFamilyResult struct {
	Name string
	// MaxChannels is the longest fully admissible request prefix;
	// Probes counts the admission sweeps the search spent finding it.
	// Capped means the search hit its request budget without a
	// rejection (the family cannot saturate this mesh).
	MaxChannels int
	Probes      int
	Capped      bool
	// Snapshot is the sealed capacity ledger with MaxChannels admitted.
	Snapshot *metrics.CapacitySnapshot
	// The first rejected request's typed explanation (empty if Capped).
	RejectBinding string
	RejectTest    string
	RejectMargin  float64
	RejectErr     string
	// Heatmap is the per-node utilization grid at saturation.
	Heatmap string
}

// CapacityResult is the outcome of RunCapacity across all families.
type CapacityResult struct {
	W, H     int
	Families []CapacityFamilyResult
	Checks   []CapacityCheck
}

// OK reports whether every conservation and explanation check passed.
func (r *CapacityResult) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// capacityProbeBudget bounds the request sequence per family, as a
// multiple of the node count. A family that admits its whole budget is
// reported Capped rather than searched further.
const capacityProbeBudget = 8

// admitPrefix admits the first n requests of the family on a fresh
// controller. It returns the controller, the admitted channels, and the
// rejection that stopped the prefix short (nil when all n fit).
func admitPrefix(fam CapacityFamily, w, h, n int) (*admission.Controller, []*admission.Channel, error, error) {
	net, err := mesh.New(w, h, router.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	ctl, err := admission.New(net, admission.DefaultConfig())
	if err != nil {
		return nil, nil, nil, err
	}
	chans := make([]*admission.Channel, 0, n)
	for i := 0; i < n; i++ {
		src, dst := fam.Place(i, w, h)
		ch, rej := ctl.Admit(src, []mesh.Coord{dst}, fam.Spec)
		if rej != nil {
			return ctl, chans, rej, nil
		}
		chans = append(chans, ch)
	}
	return ctl, chans, nil, nil
}

// maxAdmissible finds the longest admissible prefix by exponential
// growth then bisection. The predicate "the first n requests all admit"
// is monotone in n — a longer prefix replays the shorter one first — so
// binary search is exact, not heuristic.
func maxAdmissible(fam CapacityFamily, w, h, budget int) (max, probes int, capped bool, err error) {
	lo, hi := 0, 1
	for {
		_, _, rej, perr := admitPrefix(fam, w, h, hi)
		probes++
		if perr != nil {
			return 0, probes, false, perr
		}
		if rej != nil {
			break
		}
		lo = hi
		if hi >= budget {
			return lo, probes, true, nil
		}
		hi *= 2
		if hi > budget {
			hi = budget
		}
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		_, _, rej, perr := admitPrefix(fam, w, h, mid)
		probes++
		if perr != nil {
			return 0, probes, false, perr
		}
		if rej == nil {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, probes, false, nil
}

// utilizationHeatmap renders the sealed ledger as a w×h digit grid: each
// cell is the highest utilization of any resource leaving that node
// (mesh links, delivery port, injection), floor(util*10) clamped to 9,
// "." for idle nodes.
func utilizationHeatmap(w, h int, snap *metrics.CapacitySnapshot) string {
	load := make([]float64, w*h)
	for _, lc := range snap.Links {
		idx := lc.NodeY*w + lc.NodeX
		if lc.Utilization > load[idx] {
			load[idx] = lc.Utilization
		}
	}
	var b strings.Builder
	for y := 0; y < h; y++ {
		b.WriteString("  ")
		for x := 0; x < w; x++ {
			u := load[y*w+x]
			switch {
			case u == 0:
				b.WriteByte('.')
			case u >= 0.95:
				b.WriteByte('9')
			default:
				b.WriteByte(byte('0' + int(u*10)))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RunCapacity runs the capacity-probe campaign on a w×h mesh: for each
// request family it binary-searches the max admissible channel count,
// seals the ledger at saturation, and checks the conservation invariant
// (per-link/per-node totals equal the sum of channel reservations,
// restored exactly by teardown) plus the typed-explanation contract
// (the first rejection past saturation names a binding resource, test,
// and margin).
func RunCapacity(w, h int, families []CapacityFamily) (*CapacityResult, error) {
	if len(families) == 0 {
		families = DefaultCapacityFamilies()
	}
	res := &CapacityResult{W: w, H: h}
	check := func(name string, ok bool, format string, args ...any) {
		res.Checks = append(res.Checks, CapacityCheck{
			Name: name, OK: ok, Detail: fmt.Sprintf(format, args...),
		})
	}
	budget := capacityProbeBudget * w * h
	for _, fam := range families {
		max, probes, capped, err := maxAdmissible(fam, w, h, budget)
		if err != nil {
			return nil, fmt.Errorf("capacity %s on %dx%d: %w", fam.Name, w, h, err)
		}
		fr := CapacityFamilyResult{Name: fam.Name, MaxChannels: max, Probes: probes, Capped: capped}

		// Re-admit the saturating prefix to populate a ledger for the
		// heatmap, the conservation checks, and the rejection probe.
		ctl, chans, rej, err := admitPrefix(fam, w, h, max)
		if err != nil {
			return nil, err
		}
		probes++
		if rej != nil {
			return nil, fmt.Errorf("capacity %s: prefix of %d stopped admitting on replay: %v", fam.Name, max, rej)
		}
		fr.Snapshot = ctl.Seal()
		fr.Heatmap = utilizationHeatmap(w, h, fr.Snapshot)
		check(fam.Name+"_ledger_conservation", ctl.VerifyLedger() == nil,
			"%d channels admitted: %v", max, ctl.VerifyLedger())

		if !capped {
			// The next request must be refused with a typed explanation,
			// and the refusal must not perturb the ledger.
			src, dst := fam.Place(max, w, h)
			_, rerr := ctl.Admit(src, []mesh.Coord{dst}, fam.Spec)
			if rerr == nil {
				check(fam.Name+"_saturation_rejects", false,
					"request %d admitted past the searched maximum", max)
			} else if exp, ok := admission.Explain(rerr); ok {
				fr.RejectBinding = exp.BindingResource()
				fr.RejectTest = exp.FailingTest()
				fr.RejectMargin = exp.FailMargin()
				fr.RejectErr = rerr.Error()
				check(fam.Name+"_saturation_rejects", true,
					"binding %s, test %s, margin %+g", fr.RejectBinding, fr.RejectTest, fr.RejectMargin)
			} else {
				check(fam.Name+"_saturation_rejects", false,
					"rejection carries no typed explanation: %v", rerr)
			}
			after, _ := json.Marshal(ctl.Seal())
			before, _ := json.Marshal(fr.Snapshot)
			check(fam.Name+"_rejection_inert", bytes.Equal(before, after),
				"ledger changed across a refused admission")
		}

		// Tear every channel down; the ledger must return to empty.
		var tderr error
		for _, ch := range chans {
			if err := ctl.Teardown(ch); err != nil && tderr == nil {
				tderr = err
			}
		}
		if tderr == nil {
			tderr = ctl.VerifyLedger()
		}
		empty := ctl.Seal()
		check(fam.Name+"_teardown_restores",
			tderr == nil && ctl.Active() == 0 && len(empty.Links) == 0 && empty.Channels == 0,
			"%d active, %d reserved links after full teardown (err %v)",
			ctl.Active(), len(empty.Links), tderr)

		fr.Probes = probes
		res.Families = append(res.Families, fr)
	}
	return res, nil
}

// Table renders the per-family saturation summary.
func (r *CapacityResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Capacity campaign: %dx%d mesh", r.W, r.H),
		Header: []string{"family", "max_channels", "probes", "worst_link",
			"worst_util", "min_headroom", "binding", "test", "margin"},
	}
	for _, f := range r.Families {
		binding, test, margin := f.RejectBinding, f.RejectTest, fmt.Sprintf("%+g", f.RejectMargin)
		if f.Capped {
			binding, test, margin = "-", "(request budget reached)", "-"
		}
		t.AddRow(f.Name, di(f.MaxChannels), di(f.Probes),
			f.Snapshot.WorstLink, f2(f.Snapshot.WorstUtilization),
			d(f.Snapshot.MinHeadroomSlots), binding, test, margin)
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.AddNote("FAILED %s: %s", c.Name, c.Detail)
		}
	}
	return t
}

// HeadroomTable renders the most loaded links of one family at
// saturation.
func (f *CapacityFamilyResult) HeadroomTable(top int) *Table {
	t := &Table{
		Title: fmt.Sprintf("%s: tightest links at %d channels", f.Name, f.MaxChannels),
		Header: []string{"link", "channels", "util", "reserved_slots",
			"edf_headroom", "worst_margin"},
	}
	links := append([]metrics.LinkCapacity(nil), f.Snapshot.Links...)
	sort.SliceStable(links, func(i, j int) bool {
		return links[i].Utilization > links[j].Utilization
	})
	if top > 0 && len(links) > top {
		links = links[:top]
	}
	for _, lc := range links {
		t.AddRow(lc.Link, di(lc.Channels), f2(lc.Utilization),
			d(lc.ReservedSlots), d(lc.HeadroomSlots), d(lc.WorstMarginSlots))
	}
	return t
}

// CapacityBaselineRow mirrors one archived capacity row (the shape
// rtbench writes to a capacity bench JSON).
type CapacityBaselineRow struct {
	Family      string `json:"family"`
	MaxChannels int    `json:"max_channels"`
	Capped      bool   `json:"capped"`
}

// CapacityBaseline is an archived capacity campaign result.
type CapacityBaseline struct {
	Mesh string                `json:"mesh"`
	Rows []CapacityBaselineRow `json:"rows"`
}

// BaselineRows converts a fresh result into the archived row shape.
func (r *CapacityResult) BaselineRows() []CapacityBaselineRow {
	rows := make([]CapacityBaselineRow, 0, len(r.Families))
	for _, f := range r.Families {
		rows = append(rows, CapacityBaselineRow{
			Family: f.Name, MaxChannels: f.MaxChannels, Capped: f.Capped,
		})
	}
	return rows
}

// LoadCapacityBaseline reads an archived capacity bench JSON.
func LoadCapacityBaseline(path string) (*CapacityBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("capacity baseline: %w", err)
	}
	var b CapacityBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("capacity baseline %s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("capacity baseline %s: no rows", path)
	}
	return &b, nil
}

// CapacityDelta compares one family's saturation point against its
// baseline counterpart.
type CapacityDelta struct {
	Family    string
	SameShape bool // mesh matches the baseline
	Base      int
	Cur       int
	Drift     int
}

// Diff matches the campaign's families against the baseline by name.
func (r *CapacityResult) Diff(base *CapacityBaseline) []CapacityDelta {
	idx := make(map[string]CapacityBaselineRow, len(base.Rows))
	for _, row := range base.Rows {
		idx[row.Family] = row
	}
	sameShape := base.Mesh == fmt.Sprintf("%dx%d", r.W, r.H)
	var out []CapacityDelta
	for _, f := range r.Families {
		b, ok := idx[f.Name]
		if !ok {
			continue
		}
		out = append(out, CapacityDelta{
			Family: f.Name, SameShape: sameShape,
			Base: b.MaxChannels, Cur: f.MaxChannels, Drift: f.MaxChannels - b.MaxChannels,
		})
	}
	return out
}

// CapacityDeltaTable renders the baseline comparison.
func CapacityDeltaTable(deltas []CapacityDelta, baselinePath string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Capacity campaign vs baseline %s", baselinePath),
		Header: []string{"family", "max_channels", "base", "drift"},
	}
	for _, d := range deltas {
		t.AddRow(d.Family, di(d.Cur), di(d.Base), fmt.Sprintf("%+d", d.Drift))
	}
	return t
}

// CheckCapacityRegression fails on the first family whose saturation
// point drifted from a same-mesh baseline (the search is deterministic,
// so any drift is a behavior change), or — across meshes — whose count
// fell more than maxRegress below the baseline's.
func CheckCapacityRegression(deltas []CapacityDelta, maxRegress float64) error {
	for _, d := range deltas {
		if d.SameShape && d.Drift != 0 {
			return fmt.Errorf("%s: max admissible %d, baseline %d — deterministic saturation point drifted",
				d.Family, d.Cur, d.Base)
		}
		if maxRegress > 0 && d.Base > 0 {
			ratio := float64(d.Cur) / float64(d.Base)
			if ratio < 1-maxRegress {
				return fmt.Errorf("%s: max admissible %d is %.0f%% below baseline %d",
					d.Family, d.Cur, (1-ratio)*100, d.Base)
			}
		}
	}
	return nil
}

// AuditIdentityResult is the outcome of RunAuditIdentity: whether the
// admission audit log and the sealed capacity ledger came out
// byte-identical at every worker count.
type AuditIdentityResult struct {
	Scenario  string
	Workers   []int
	Identical bool
	// Decisions is the reference run's audit-log length; Log the
	// reference dump (audit lines followed by the ledger JSON).
	Decisions int
	Log       string
}

// clipScenario shortens a loaded scenario to the capped run length:
// failure episodes starting past the end vanish, repairs past the end
// clamp to it. No-op when cycles is zero or not shorter.
func clipScenario(sc *scenario.Scenario, cycles int64) {
	if cycles <= 0 || cycles >= sc.Cycles {
		return
	}
	sc.Cycles = cycles
	kept := sc.Failures[:0]
	for _, f := range sc.Failures {
		if f.At >= cycles {
			continue
		}
		if f.RepairAt > cycles {
			f.RepairAt = cycles
		}
		kept = append(kept, f)
	}
	sc.Failures = kept
}

// RunAuditIdentity runs the scenario once per worker count with an
// audit log attached and verifies the merged audit dump and the final
// sealed capacity ledger are byte-identical across worker counts — the
// admission plane's PR-3 contract. cycles > 0 caps the run length.
func RunAuditIdentity(path string, cycles int64, workers []int) (*AuditIdentityResult, error) {
	if len(workers) == 0 {
		workers = DefaultForensicsWorkers
	}
	res := &AuditIdentityResult{Scenario: path, Workers: workers, Identical: true}
	var ref []byte
	for i, wk := range workers {
		sc, err := scenario.Load(path)
		if err != nil {
			return nil, err
		}
		clipScenario(sc, cycles)
		aud := obs.NewAuditLog()
		_, sys, err := sc.RunWith(scenario.RunOpts{Audit: aud, Workers: wk})
		if err != nil {
			return nil, fmt.Errorf("audit identity %s x%d: %w", path, wk, err)
		}
		var buf bytes.Buffer
		if err := aud.Dump(&buf); err != nil {
			return nil, err
		}
		ledger, err := json.MarshalIndent(sys.SealCapacity(), "", "  ")
		sys.Close()
		if err != nil {
			return nil, err
		}
		buf.Write(ledger)
		buf.WriteByte('\n')
		if i == 0 {
			ref = append([]byte(nil), buf.Bytes()...)
			res.Decisions = aud.Len()
			res.Log = buf.String()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			res.Identical = false
		}
	}
	return res, nil
}
