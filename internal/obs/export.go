package obs

import (
	"encoding/json"
	"io"

	"repro/internal/packet"
	"repro/internal/router"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// Perfetto and chrome://tracing load). Only the fields this exporter
// uses are modelled.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int64          `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	Comment         string        `json:"otherData,omitempty"`
}

// Track layout: one Perfetto "process" per mesh node (pid = node index
// + 1; pid 0 renders poorly), one "thread" per output port (tid = port
// + 1) plus a node-level track (tid = nodeTid) for inject, enqueue and
// deliver events, which are not port-specific.
const nodeTid = router.NumPorts + 1

// flowPoint classifies one (router, conn) endpoint of a monitored
// channel for flow binding: where the packet flow starts (the source
// hop), steps (intermediate transmits), or finishes (delivery).
type flowPoint struct {
	chanID int
	name   string
	start  bool
	end    bool
	// Per-endpoint packet indices (FIFO order within a channel), one
	// counter per event kind: the source endpoint sees each packet twice
	// (inject, then transmit), so the streams must count independently
	// for the k-th inject and the k-th transmit to name the same packet.
	kInj, kTx, kRx int64
}

// flowTable indexes every monitored channel endpoint. Per-channel
// traffic is FIFO through each endpoint, so the k-th event of a kind at
// each endpoint belongs to the k-th packet of that channel, and
// id = chanID<<20 | k names one packet's flow across all its hops.
func flowTable(slo *SLO) map[Endpoint]*flowPoint {
	if slo == nil {
		return nil
	}
	tbl := make(map[Endpoint]*flowPoint)
	for _, cs := range slo.Channels() {
		info := cs.Info()
		for i, h := range info.Hops {
			tbl[Endpoint{Router: h.Router, Conn: h.In}] = &flowPoint{
				chanID: info.ID, name: info.Name, start: i == 0,
			}
		}
		for _, d := range info.Deliver {
			tbl[d] = &flowPoint{chanID: info.ID, name: info.Name, end: true}
		}
	}
	return tbl
}

// WriteChromeTrace writes the collector's merged timeline as Chrome
// trace-event JSON: transmissions are duration slices on their port's
// track, inject/enqueue/deliver are slices on the node track, and
// drops, blocks and cut-throughs are instants. When an SLO tracker is
// supplied, each monitored channel's packets are additionally linked
// into flows (ph s/t/f) so Perfetto draws one arrow chain per packet
// from injection through every hop to delivery.
//
// Timebase: 1 trace microsecond = 1 byte cycle (the viewer has no
// native cycle unit). Flow matching counts events per endpoint, so it
// is exact only when no shard evicted events — size the collector to
// the run (or accept arrows joining different packets of the same
// channel after eviction). Multicast channels share one flow id across
// their delivery branches.
func WriteChromeTrace(w io.Writer, c *Sharded, slo *SLO) error {
	return WriteChromeEvents(w, c.NodeNames(), c.Merged(), slo)
}

// WriteChromeEvents renders an already-merged (and possibly filtered)
// event slice as Chrome trace-event JSON. names[i] labels node i's
// process track. The flight recorder uses it to dump trigger windows;
// WriteChromeTrace feeds it a collector's full merged timeline.
func WriteChromeEvents(w io.Writer, names []string, events []Event, slo *SLO) error {
	flows := flowTable(slo)
	tr := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for node := 0; node < len(names); node++ {
		pid := node + 1
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "router " + names[node]},
		})
		for p := 0; p < router.NumPorts; p++ {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: p + 1,
				Args: map[string]any{"name": "port " + router.PortName(p)},
			})
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: nodeTid,
			Args: map[string]any{"name": "node"},
		})
	}

	flowStep := func(e Event, pid, tid int) *chromeEvent {
		if flows == nil {
			return nil
		}
		fp := flows[Endpoint{Router: e.Router, Conn: e.InConn}]
		if fp == nil {
			return nil
		}
		var k *int64
		switch e.Kind {
		case router.EvInject:
			if !fp.start {
				return nil
			}
			k = &fp.kInj
		case router.EvDeliver:
			if !fp.end {
				return nil
			}
			k = &fp.kRx
		default: // EvTransmit
			k = &fp.kTx
		}
		id := int64(fp.chanID)<<20 | *k
		*k++
		ev := &chromeEvent{
			Name: fp.name, Cat: "packet", Ts: e.Cycle, Pid: pid, Tid: tid, ID: id,
		}
		switch {
		case e.Kind == router.EvInject:
			ev.Ph = "s"
		case fp.end:
			ev.Ph = "f"
			ev.BP = "e"
		default:
			ev.Ph = "t"
		}
		return ev
	}

	for _, e := range events {
		pid := e.Node + 1
		tid := nodeTid
		if e.Port >= 0 {
			tid = e.Port + 1
		}
		args := map[string]any{"conn": e.InConn}
		if e.OutConn != 0 {
			args["out_conn"] = e.OutConn
		}
		ce := chromeEvent{Ts: e.Cycle, Pid: pid, Tid: tid, Args: args}
		switch e.Kind {
		case router.EvTransmit:
			ce.Name, ce.Ph, ce.Dur = "tc-tx", "X", packet.TCBytes
			args["class"] = e.Class.String()
			args["slack_slots"] = e.Slack
			args["wait_cycles"] = e.Wait
			if e.Missed {
				args["missed"] = true
			}
		case router.EvInject:
			ce.Name, ce.Ph, ce.Dur = "inject", "X", 1
		case router.EvEnqueue:
			ce.Name, ce.Ph, ce.Dur = "enqueue", "X", 1
			args["slack_slots"] = e.Slack
		case router.EvDeliver:
			if e.BE {
				ce.Name, ce.Ph, ce.Dur = "be-rx", "X", 1
				delete(args, "conn")
			} else {
				ce.Name, ce.Ph, ce.Dur = "tc-rx", "X", 1
				args["slack_slots"] = e.Slack
			}
		case router.EvArbWin:
			ce.Name, ce.Ph, ce.S = "arb-win", "i", "t"
			args["class"] = e.Class.String()
		case router.EvCutThrough:
			ce.Name, ce.Ph, ce.S = "cut-through", "i", "t"
		case router.EvBlock:
			ce.Name, ce.Ph, ce.S = "be-block", "i", "t"
			delete(args, "conn")
		case router.EvDrop:
			ce.Name, ce.Ph, ce.S = "drop", "i", "t"
			args["reason"] = e.Reason.String()
		case router.EvStall:
			// The episode covered [Cycle-Wait, Cycle-1]: render it as a
			// slice spanning exactly the stalled cycles.
			ce.Name, ce.Ph, ce.Ts, ce.Dur = "tc-stall", "X", e.Cycle-e.Wait, e.Wait
			args["cause"] = e.Cause.String()
			args["cycles"] = e.Wait
			if e.OutConn != 0 {
				args["blamed_conn"] = e.OutConn
				delete(args, "out_conn")
			}
		default:
			continue
		}
		tr.TraceEvents = append(tr.TraceEvents, ce)
		if !e.BE && (e.Kind == router.EvInject || e.Kind == router.EvTransmit || e.Kind == router.EvDeliver) {
			if fe := flowStep(e, pid, tid); fe != nil {
				tr.TraceEvents = append(tr.TraceEvents, *fe)
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}

// jsonlEvent is the line format of WriteJSONL.
type jsonlEvent struct {
	Cycle   int64  `json:"cycle"`
	Node    int    `json:"node"`
	Seq     uint64 `json:"seq"`
	Router  string `json:"router"`
	Kind    string `json:"kind"`
	Port    int    `json:"port"`
	Conn    uint8  `json:"conn"`
	OutConn uint8  `json:"out_conn,omitempty"`
	Class   string `json:"class,omitempty"`
	Missed  bool   `json:"missed,omitempty"`
	Wait    int64  `json:"wait,omitempty"`
	Stamp   uint32 `json:"stamp"`
	Slack   int64  `json:"slack"`
	Reason  string `json:"reason,omitempty"`
	Cause   string `json:"cause,omitempty"`
	BE      bool   `json:"be,omitempty"`
}

// WriteJSONL writes the merged timeline as one JSON object per line —
// the machine-readable sibling of Dump, stable across worker counts.
func WriteJSONL(w io.Writer, c *Sharded) error {
	return WriteJSONLEvents(w, c.Merged())
}

// WriteJSONLEvents writes an already-merged (and possibly filtered)
// event slice as JSONL; the flight recorder dumps trigger windows
// through it.
func WriteJSONLEvents(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		le := jsonlEvent{
			Cycle:  e.Cycle,
			Node:   e.Node,
			Seq:    e.Seq,
			Router: e.Router,
			Kind:   e.Kind.String(),
			Port:   e.Port,
			Conn:   e.InConn,
			Missed: e.Missed,
			Wait:   e.Wait,
			Stamp:  uint32(e.Stamp),
			Slack:  e.Slack,
			BE:     e.BE,
		}
		if e.OutConn != 0 {
			le.OutConn = e.OutConn
		}
		switch e.Kind {
		case router.EvArbWin, router.EvTransmit, router.EvCutThrough:
			le.Class = e.Class.String()
		case router.EvDrop:
			le.Reason = e.Reason.String()
		case router.EvStall:
			le.Cause = e.Cause.String()
		}
		if err := enc.Encode(le); err != nil {
			return err
		}
	}
	return nil
}
