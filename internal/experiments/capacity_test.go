package experiments

import (
	"strings"
	"testing"
)

// TestCapacityCampaign runs the probe campaign on a small mesh: every
// family must saturate (find a finite max admissible channel count with
// a typed rejection past it), every conservation check must pass, and
// the heatmap must be renderable.
func TestCapacityCampaign(t *testing.T) {
	res, err := RunCapacity(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Checks {
		if !c.OK {
			t.Errorf("check %s failed: %s", c.Name, c.Detail)
		}
	}
	saturated := 0
	for _, f := range res.Families {
		if f.MaxChannels <= 0 {
			t.Errorf("family %s admitted no channels at all", f.Name)
		}
		if f.Capped {
			continue
		}
		saturated++
		if f.RejectTest == "" || f.RejectBinding == "" {
			t.Errorf("family %s saturated without a typed explanation (binding %q, test %q)",
				f.Name, f.RejectBinding, f.RejectTest)
		}
		if f.RejectMargin > 0 {
			t.Errorf("family %s rejection carries positive margin %+g", f.Name, f.RejectMargin)
		}
		if f.Snapshot == nil || len(f.Snapshot.Links) == 0 {
			t.Errorf("family %s sealed an empty ledger at saturation", f.Name)
			continue
		}
		if lines := strings.Count(f.Heatmap, "\n"); lines != 4 {
			t.Errorf("family %s heatmap has %d rows, want 4:\n%s", f.Name, lines, f.Heatmap)
		}
		if f.Snapshot.WorstUtilization <= 0 || f.Snapshot.WorstLink == "" {
			t.Errorf("family %s worst link missing: %q at %g",
				f.Name, f.Snapshot.WorstLink, f.Snapshot.WorstUtilization)
		}
	}
	if saturated < 2 {
		t.Errorf("only %d families saturated; the campaign needs at least 2 for a meaningful report", saturated)
	}
}

// TestCapacityHeatmapHotspot pins the hotspot family's spatial story:
// the most loaded resource must sit at the mesh center the family
// funnels into.
func TestCapacityHeatmapHotspot(t *testing.T) {
	res, err := RunCapacity(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range res.Families {
		if f.Name != "hotspot" || f.Capped {
			continue
		}
		if !strings.Contains(f.Snapshot.WorstLink, "(2,2)") {
			t.Errorf("hotspot worst link %s is not at the center (2,2)", f.Snapshot.WorstLink)
		}
		return
	}
	t.Skip("hotspot family did not saturate on 4x4")
}

// TestAuditIdentityFig6 checks the admission plane's sharded contract
// on the clean paper scenario: the merged audit log and the sealed
// ledger are byte-identical at workers {1, 2, 4}.
func TestAuditIdentityFig6(t *testing.T) {
	res, err := RunAuditIdentity("../../scenarios/fig6.json", gateCycles(2000, 8000), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Errorf("audit log differs across workers %v", res.Workers)
	}
	if res.Decisions == 0 {
		t.Error("fig6 produced no audit records; 5 channel opens expected")
	}
	if !strings.Contains(res.Log, "admit") || !strings.Contains(res.Log, "margin=") {
		t.Errorf("audit dump missing admit records:\n%s", res.Log)
	}
}

// TestAuditIdentityFaulty runs the identity gate on the fault scenario;
// past the flap outage the log carries reroute and failback records and
// must still be byte-identical at every worker count.
func TestAuditIdentityFaulty(t *testing.T) {
	cycles := gateCycles(4000, 80000)
	res, err := RunAuditIdentity("../../scenarios/faulty.json", cycles, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Errorf("audit log differs across workers %v", res.Workers)
	}
	if res.Decisions == 0 {
		t.Error("faulty produced no audit records")
	}
	if !testing.Short() {
		// The flap outage at cycle 30000 displaces channel 0 and the
		// repair at 70000 fails it back; both must be in the log.
		if !strings.Contains(res.Log, "reroute") {
			t.Error("full faulty run recorded no reroute decisions")
		}
	}
}
