package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

const sampleJSON = `{
  "mesh": {"w": 3, "h": 3},
  "cycles": 40000,
  "seed": 7,
  "admission": {"policy": "partitioned", "sourceWindow": 8, "horizon": 4},
  "channels": [
    {"src": [0,0], "dsts": [[2,2]], "imin": 8, "smax": 18, "d": 80, "pattern": "periodic"},
    {"src": [2,0], "dsts": [[0,2]], "imin": 16, "smax": 36, "d": 96, "pattern": "backlogged"},
    {"src": [1,1], "dsts": [[0,0],[2,2]], "imin": 24, "smax": 18, "d": 120, "pattern": "bursty", "bmax": 1}
  ],
  "bestEffort": [
    {"src": [0,1], "rate": 0.3, "sizeMin": 20, "sizeMax": 200},
    {"src": [2,1], "dst": [0,0], "rate": 0.2, "sizeMin": 64, "sizeMax": 64}
  ],
  "failures": [
    {"at": 20000, "from": [0,0], "port": "+x"}
  ]
}`

func TestParseValid(t *testing.T) {
	sc, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Mesh.W != 3 || len(sc.Channels) != 3 || len(sc.BestEffort) != 2 || len(sc.Failures) != 1 {
		t.Errorf("parsed shape wrong: %+v", sc)
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		`{`, // malformed
		`{"mesh":{"w":0,"h":1},"cycles":100}`,
		`{"mesh":{"w":2,"h":1},"cycles":0}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"router":{"scheduler":"magic"}}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"admission":{"policy":"hoard"}}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"channels":[{"src":[0,0],"dsts":[]}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"channels":[{"src":[0,0],"dsts":[[1,0]],"pattern":"chaotic"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":10,"from":[0,0],"port":"sideways"}]}`,
		`{"mesh":{"w":2,"h":1},"cycles":100,"failures":[{"at":500,"from":[0,0],"port":"+x"}]}`,
	}
	for i, b := range bad {
		if _, err := Parse([]byte(b)); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	if err := os.WriteFile(path, []byte(sampleJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunEndToEnd plays the sample scenario, including the mid-run link
// failure with automatic reroute, and checks the guarantees held.
func TestRunEndToEnd(t *testing.T) {
	sc, err := Parse([]byte(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, sys, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 3 {
		t.Fatalf("opened %d/3 channels (rejections: %v)", res.Opened, res.Rejected)
	}
	if res.Failures != 1 {
		t.Errorf("failures played: %d", res.Failures)
	}
	// Both the (0,0)→(2,2) channel (forward direction) and the
	// (2,0)→(0,2) channel (reverse direction of the same wire) must have
	// been rerouted.
	if res.Rerouted != 2 {
		t.Errorf("rerouted %d channels, want 2 (both directions of the dead link)", res.Rerouted)
	}
	if res.Summary.TCMisses != 0 {
		t.Errorf("deadline misses: %d", res.Summary.TCMisses)
	}
	if res.Summary.TCDelivered == 0 || res.Summary.BEDelivered == 0 {
		t.Error("degenerate run")
	}
	if sys == nil {
		t.Fatal("system not returned")
	}
}

func TestRunRejectsInfeasibleChannel(t *testing.T) {
	sc, err := Parse([]byte(`{
	  "mesh": {"w": 2, "h": 1}, "cycles": 1000,
	  "channels": [{"src": [0,0], "dsts": [[1,0]], "imin": 4, "smax": 18, "d": 1}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sc.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 0 || len(res.Rejected) != 1 {
		t.Errorf("infeasible channel not reported: %+v", res)
	}
}
