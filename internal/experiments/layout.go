package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/admission"
	"repro/internal/layout"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/router"
)

// LayoutBindingCount is one binding resource's rejection tally.
type LayoutBindingCount struct {
	Resource string `json:"resource"`
	Count    int    `json:"count"`
}

// LayoutFamilyResult compares the greedy planner against the layout
// synthesizer on one request family.
type LayoutFamilyResult struct {
	Name     string
	Requests int
	// GreedyAdmitted is what the default Admit path places on a fresh
	// controller; SynthAdmitted what the synthesizer places on another.
	GreedyAdmitted int
	SynthAdmitted  int
	// Probes/Repairs are the synthesizer's search effort; Rerouted and
	// Nonuniform count admissions that actually used the recovered
	// freedoms (non-dimension-ordered route, non-uniform split).
	Probes     int
	Repairs    int
	Rerouted   int
	Nonuniform int
	// GreedyBindings/SynthBindings are the rejection tallies per binding
	// resource, most-refused first — the heatmap's tabular twin.
	GreedyBindings []LayoutBindingCount
	SynthBindings  []LayoutBindingCount
	// GreedyRejectHeat is the per-router grid of greedy rejection counts
	// (digit-clamped); SynthHeat the utilization heatmap of the
	// synthesized ledger at end of run.
	GreedyRejectHeat string
	SynthHeat        string
	// Snapshot is the synthesized run's sealed ledger.
	Snapshot *metrics.CapacitySnapshot
	// ShadowAgreed is true when a Reference-mode controller re-admitted
	// every synthesized layout with identical channel state and sealed
	// ledger bytes.
	ShadowAgreed bool
}

// LayoutResult is the outcome of RunLayout across all families.
type LayoutResult struct {
	W, H     int
	Requests int
	Families []LayoutFamilyResult
	Checks   []CapacityCheck
}

// OK reports whether every invariant check passed.
func (r *LayoutResult) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// StrictlyBeatsGreedy reports whether the synthesizer admitted strictly
// more channels than the greedy baseline on the named family.
func (r *LayoutResult) StrictlyBeatsGreedy(family string) bool {
	for _, f := range r.Families {
		if f.Name == family {
			return f.SynthAdmitted > f.GreedyAdmitted
		}
	}
	return false
}

// DefaultLayoutFamilies returns the layout campaign's request families.
// uniform and transpose mirror the capacity campaign byte-for-byte.
// hotspot differs deliberately: capacity's hotspot funnels every
// request into one router, whose delivery port then binds on
// utilization — a route- and split-independent wall no synthesizer can
// move. Here the funnel targets the mesh's center column: under XY
// routing every request's Y-travel happens inside that column, so its
// vertical links saturate while the delivery ports still have
// headroom. YX and staircase routes carry the Y-travel in the source's
// own column and enter the hot column only at the destination row —
// exactly the congestion route search can steer around.
func DefaultLayoutFamilies() []CapacityFamily {
	fams := DefaultCapacityFamilies()
	for fi := range fams {
		if fams[fi].Name != "hotspot" {
			continue
		}
		fams[fi].Place = func(i, w, h int) (mesh.Coord, mesh.Coord) {
			n := w * h
			dst := mesh.Coord{X: w / 2, Y: (i*3 + 1) % h}
			s := (i*11 + 1) % n
			src := mesh.Coord{X: s % w, Y: s / w}
			if src == dst {
				s = (s + 1) % n
				src = mesh.Coord{X: s % w, Y: s / w}
			}
			return src, dst
		}
	}
	return fams
}

// layoutRequests expands a capacity family into layout requests.
func layoutRequests(fam CapacityFamily, w, h, n int) []layout.Request {
	reqs := make([]layout.Request, n)
	for i := 0; i < n; i++ {
		src, dst := fam.Place(i, w, h)
		reqs[i] = layout.Request{Src: src, Dst: dst, Spec: fam.Spec}
	}
	return reqs
}

// bindingCounts sorts a rejection tally most-refused first (ties by
// name, so output is deterministic), keeping the top entries.
func bindingCounts(tally map[string]int, top int) []LayoutBindingCount {
	out := make([]LayoutBindingCount, 0, len(tally))
	for res, n := range tally {
		out = append(out, LayoutBindingCount{Resource: res, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Resource < out[j].Resource
	})
	if top > 0 && len(out) > top {
		out = out[:top]
	}
	return out
}

// rejectionHeatmap renders per-router rejection counts as a w×h digit
// grid, "." for routers that never bound a rejection.
func rejectionHeatmap(w, h int, counts map[string]int) string {
	var b strings.Builder
	for y := 0; y < h; y++ {
		b.WriteString("  ")
		for x := 0; x < w; x++ {
			n := counts[mesh.Coord{X: x, Y: y}.String()]
			switch {
			case n == 0:
				b.WriteByte('.')
			case n > 9:
				b.WriteByte('9')
			default:
				b.WriteByte(byte('0' + n))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// defaultLayoutRequests sizes a family's request sequence well past the
// mesh's saturation point so the synthesizer has rejections to repair.
func defaultLayoutRequests(w, h int) int { return 3 * w * h }

// RunLayout runs the channel-layout campaign on a w×h mesh: per family,
// a greedy baseline (the default Admit path, request by request) and a
// synthesized run (layout.Synthesize over the identical sequence), with
// binding-resource tallies for both, conservation checks on both
// ledgers, and a Reference-mode shadow controller re-admitting every
// synthesized layout to prove the fast-path controller granted nothing
// the from-scratch analysis would refuse.
func RunLayout(w, h, requests int, families []CapacityFamily) (*LayoutResult, error) {
	if len(families) == 0 {
		families = DefaultLayoutFamilies()
	}
	if requests <= 0 {
		requests = defaultLayoutRequests(w, h)
	}
	res := &LayoutResult{W: w, H: h, Requests: requests}
	check := func(name string, ok bool, format string, args ...any) {
		res.Checks = append(res.Checks, CapacityCheck{
			Name: name, OK: ok, Detail: fmt.Sprintf(format, args...),
		})
	}
	for _, fam := range families {
		fr := LayoutFamilyResult{Name: fam.Name, Requests: requests}

		// Greedy baseline: the default planner, one request at a time.
		gctl, _, err := newAdmissionController(w, h, false)
		if err != nil {
			return nil, err
		}
		greedyTally := make(map[string]int)
		greedyRouters := make(map[string]int)
		for i := 0; i < requests; i++ {
			src, dst := fam.Place(i, w, h)
			if _, aerr := gctl.Admit(src, []mesh.Coord{dst}, fam.Spec); aerr != nil {
				if rej, ok := admission.Explain(aerr); ok {
					greedyTally[rej.BindingResource()]++
					greedyRouters[rej.Router()]++
				}
				continue
			}
			fr.GreedyAdmitted++
		}
		check(fam.Name+"_greedy_ledger", gctl.VerifyLedger() == nil,
			"%d channels: %v", fr.GreedyAdmitted, gctl.VerifyLedger())
		fr.GreedyBindings = bindingCounts(greedyTally, 8)
		fr.GreedyRejectHeat = rejectionHeatmap(w, h, greedyRouters)

		// Synthesized run: identical sequence, layout search enabled.
		snet, err := mesh.New(w, h, router.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sctl, err := admission.New(snet, admission.DefaultConfig())
		if err != nil {
			return nil, err
		}
		sres := layout.Synthesize(snet, sctl, layoutRequests(fam, w, h, requests), layout.Options{})
		fr.SynthAdmitted = len(sres.Admitted)
		fr.Probes = sres.Stats.Probes
		fr.Repairs = sres.Stats.Repairs
		fr.Rerouted = sres.Stats.Rerouted
		fr.Nonuniform = sres.Stats.Nonuniform
		synthTally := make(map[string]int)
		for _, rej := range sres.Rejected {
			if exp, ok := admission.Explain(rej.Err); ok {
				synthTally[exp.BindingResource()]++
			}
		}
		fr.SynthBindings = bindingCounts(synthTally, 8)
		check(fam.Name+"_synth_ledger", sctl.VerifyLedger() == nil,
			"%d channels: %v", fr.SynthAdmitted, sctl.VerifyLedger())
		check(fam.Name+"_synth_at_least_greedy", fr.SynthAdmitted >= fr.GreedyAdmitted,
			"synthesized %d < greedy %d", fr.SynthAdmitted, fr.GreedyAdmitted)
		fr.Snapshot = sctl.Seal()
		fr.SynthHeat = utilizationHeatmap(w, h, fr.Snapshot)

		// Shadow re-validation: a Reference-mode controller (no caches,
		// no fast paths) replays every accepted layout verbatim. Each
		// must be re-admitted with the same channel identity, and the
		// final sealed ledgers must be byte-identical.
		shadow, _, err := newAdmissionController(w, h, true)
		if err != nil {
			return nil, err
		}
		fr.ShadowAgreed = true
		for _, adm := range sres.Admitted {
			sch, serr := shadow.AdmitLayout(adm.Plan)
			if serr != nil {
				fr.ShadowAgreed = false
				check(fam.Name+"_shadow_verdict", false,
					"reference controller refused accepted layout for request %d: %v", adm.Request, serr)
				break
			}
			if sch.ID != adm.Channel.ID || sch.Margin != adm.Channel.Margin ||
				sch.SrcConn != adm.Channel.SrcConn || sch.Bound() != adm.Channel.Bound() {
				fr.ShadowAgreed = false
				check(fam.Name+"_shadow_verdict", false,
					"reference channel state diverged on request %d (id %d/%d margin %d/%d)",
					adm.Request, sch.ID, adm.Channel.ID, sch.Margin, adm.Channel.Margin)
				break
			}
		}
		if fr.ShadowAgreed {
			synthSeal, _ := json.Marshal(fr.Snapshot)
			shadowSeal, _ := json.Marshal(shadow.Seal())
			sealsEqual := bytes.Equal(synthSeal, shadowSeal)
			fr.ShadowAgreed = sealsEqual && shadow.VerifyLedger() == nil
			check(fam.Name+"_shadow_seal_identical", sealsEqual,
				"reference-mode sealed ledger differs from synthesized run's")
		}

		res.Families = append(res.Families, fr)
	}
	return res, nil
}

// Table renders the per-family greedy-vs-synthesized summary.
func (r *LayoutResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Layout synthesis: %dx%d mesh, %d requests/family", r.W, r.H, r.Requests),
		Header: []string{"family", "requests", "greedy", "synth", "gain",
			"rerouted", "nonuniform", "probes", "repairs", "shadow"},
	}
	for _, f := range r.Families {
		shadow := "agreed"
		if !f.ShadowAgreed {
			shadow = "DIVERGED"
		}
		t.AddRow(f.Name, di(f.Requests), di(f.GreedyAdmitted), di(f.SynthAdmitted),
			fmt.Sprintf("%+d", f.SynthAdmitted-f.GreedyAdmitted),
			di(f.Rerouted), di(f.Nonuniform), di(f.Probes), di(f.Repairs), shadow)
	}
	for _, c := range r.Checks {
		if !c.OK {
			t.AddNote("FAILED %s: %s", c.Name, c.Detail)
		}
	}
	return t
}

// BindingTable renders one family's most-refused binding resources for
// greedy and synthesized runs side by side.
func (f *LayoutFamilyResult) BindingTable() *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s: binding resources at rejection", f.Name),
		Header: []string{"greedy_binding", "rejections", "synth_binding", "rejections"},
	}
	n := len(f.GreedyBindings)
	if len(f.SynthBindings) > n {
		n = len(f.SynthBindings)
	}
	for i := 0; i < n; i++ {
		g, gr, s, sr := "-", "-", "-", "-"
		if i < len(f.GreedyBindings) {
			g, gr = f.GreedyBindings[i].Resource, di(f.GreedyBindings[i].Count)
		}
		if i < len(f.SynthBindings) {
			s, sr = f.SynthBindings[i].Resource, di(f.SynthBindings[i].Count)
		}
		t.AddRow(g, gr, s, sr)
	}
	return t
}

// LayoutBaselineRow mirrors one archived layout-campaign row (the shape
// rtbench writes to BENCH_layout.json).
type LayoutBaselineRow struct {
	Family         string `json:"family"`
	Requests       int    `json:"requests"`
	GreedyAdmitted int    `json:"greedy_admitted"`
	SynthAdmitted  int    `json:"synth_admitted"`
	Rerouted       int    `json:"rerouted"`
	Nonuniform     int    `json:"nonuniform"`
}

// LayoutBaseline is an archived layout campaign result.
type LayoutBaseline struct {
	Mesh     string              `json:"mesh"`
	Requests int                 `json:"requests"`
	Rows     []LayoutBaselineRow `json:"rows"`
}

// BaselineRows converts a fresh result into the archived row shape.
func (r *LayoutResult) BaselineRows() []LayoutBaselineRow {
	rows := make([]LayoutBaselineRow, 0, len(r.Families))
	for _, f := range r.Families {
		rows = append(rows, LayoutBaselineRow{
			Family: f.Name, Requests: f.Requests,
			GreedyAdmitted: f.GreedyAdmitted, SynthAdmitted: f.SynthAdmitted,
			Rerouted: f.Rerouted, Nonuniform: f.Nonuniform,
		})
	}
	return rows
}

// LoadLayoutBaseline reads an archived BENCH_layout.json.
func LoadLayoutBaseline(path string) (*LayoutBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("layout baseline: %w", err)
	}
	var b LayoutBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("layout baseline %s: %w", path, err)
	}
	if len(b.Rows) == 0 {
		return nil, fmt.Errorf("layout baseline %s: no rows", path)
	}
	return &b, nil
}

// LayoutDelta compares one family against its baseline counterpart.
type LayoutDelta struct {
	Family      string
	SameShape   bool // mesh and request count match the baseline
	BaseGreedy  int
	CurGreedy   int
	BaseSynth   int
	CurSynth    int
	SynthDrift  int
	GreedyDrift int
}

// Diff matches the campaign's families against the baseline by name.
func (r *LayoutResult) Diff(base *LayoutBaseline) []LayoutDelta {
	idx := make(map[string]LayoutBaselineRow, len(base.Rows))
	for _, row := range base.Rows {
		idx[row.Family] = row
	}
	sameShape := base.Mesh == fmt.Sprintf("%dx%d", r.W, r.H) && base.Requests == r.Requests
	var out []LayoutDelta
	for _, f := range r.Families {
		b, ok := idx[f.Name]
		if !ok {
			continue
		}
		out = append(out, LayoutDelta{
			Family: f.Name, SameShape: sameShape && b.Requests == f.Requests,
			BaseGreedy: b.GreedyAdmitted, CurGreedy: f.GreedyAdmitted,
			BaseSynth: b.SynthAdmitted, CurSynth: f.SynthAdmitted,
			SynthDrift:  f.SynthAdmitted - b.SynthAdmitted,
			GreedyDrift: f.GreedyAdmitted - b.GreedyAdmitted,
		})
	}
	return out
}

// LayoutDeltaTable renders the baseline comparison.
func LayoutDeltaTable(deltas []LayoutDelta, baselinePath string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Layout campaign vs baseline %s", baselinePath),
		Header: []string{"family", "greedy", "base", "synth", "base", "drift"},
	}
	for _, d := range deltas {
		t.AddRow(d.Family, di(d.CurGreedy), di(d.BaseGreedy),
			di(d.CurSynth), di(d.BaseSynth), fmt.Sprintf("%+d", d.SynthDrift))
	}
	return t
}

// CheckLayoutRegression fails on the first family whose admitted counts
// drifted from a same-shape baseline (both runs are deterministic, so
// any drift is a behavior change), or — across shapes — whose
// synthesized count fell more than maxRegress below the baseline's.
func CheckLayoutRegression(deltas []LayoutDelta, maxRegress float64) error {
	for _, d := range deltas {
		if d.SameShape && (d.SynthDrift != 0 || d.GreedyDrift != 0) {
			return fmt.Errorf("%s: greedy %d/synth %d, baseline %d/%d — deterministic decision sequence drifted",
				d.Family, d.CurGreedy, d.CurSynth, d.BaseGreedy, d.BaseSynth)
		}
		if maxRegress > 0 && d.BaseSynth > 0 {
			ratio := float64(d.CurSynth) / float64(d.BaseSynth)
			if ratio < 1-maxRegress {
				return fmt.Errorf("%s: synthesized %d is %.0f%% below baseline %d",
					d.Family, d.CurSynth, (1-ratio)*100, d.BaseSynth)
			}
		}
	}
	return nil
}
