package router

import (
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/sched"
	"repro/internal/sim"
)

// TestTruncateMidWormOnLinkFailure severs the A→B wire while a worm is
// crossing; B must flush the headless fragment, release the output
// binding, and keep serving other traffic.
func TestTruncateMidWormOnLinkFailure(t *testing.T) {
	k := sim.NewKernel()
	a := MustNew("A", DefaultConfig())
	b := MustNew("B", DefaultConfig())
	k.Register(a)
	k.Register(b)
	ab := NewChannel(k)
	a.ConnectOut(PortXPlus, ab.Out())
	b.ConnectIn(PortXMinus, ab.In())
	frame, err := packet.NewBE(1, 0, make([]byte, 500))
	if err != nil {
		t.Fatal(err)
	}
	a.InjectBE(frame)
	k.Run(120) // mid-worm
	if b.Stats.BEBytes[PortLocal] == 0 && b.Stats.BEDelivered != 0 {
		t.Fatal("setup wrong")
	}
	// Sever: both ends lose the wire.
	a.ConnectOut(PortXPlus, nil)
	b.ConnectIn(PortXMinus, nil)
	k.Run(100)
	// The broken worm is counted once, at the router feeding the dead
	// link; the receiver just flushes its fragment.
	if a.Stats.BETruncated != 1 {
		t.Errorf("sender BETruncated = %d, want 1", a.Stats.BETruncated)
	}
	if b.Stats.BETruncated != 0 {
		t.Errorf("receiver BETruncated = %d, want 0", b.Stats.BETruncated)
	}
	// B's local port must be free for its own traffic afterwards.
	own, err := packet.NewBE(0, 0, []byte("alive"))
	if err != nil {
		t.Fatal(err)
	}
	b.InjectBE(own)
	k.RunUntil(func() bool { return b.Stats.BEDelivered > 0 }, 2000)
	if b.Stats.BEDelivered != 1 {
		t.Error("local port wedged by truncated fragment")
	}
}

// TestMalformedBELength drives a frame whose length field undershoots
// the header; the router must count it and move on.
func TestMalformedBELength(t *testing.T) {
	r := newRig(t, DefaultConfig())
	bad := make([]byte, packet.BEHeaderBytes)
	packet.EncodeBEHeader(packet.BEHeader{XOff: 0, YOff: 0, Len: 2}, bad)
	r.a.InjectBE(bad)
	r.k.Run(1000)
	if r.a.Stats.BEMalformed != 1 {
		t.Errorf("BEMalformed = %d, want 1", r.a.Stats.BEMalformed)
	}
	ok, _ := packet.NewBE(0, 0, []byte("next"))
	r.a.InjectBE(ok)
	r.k.RunUntil(func() bool { return r.a.Stats.BEDelivered > 0 }, 2000)
	if r.a.Stats.BEDelivered == 0 {
		t.Error("router wedged after malformed frame")
	}
}

// TestAllSchedulerKindsConstruct drives a packet through each
// configured discipline, including the structural tree and the
// quantized scheduler.
func TestAllSchedulerKindsConstruct(t *testing.T) {
	kinds := []SchedulerKind{SchedEDF, SchedFIFO, SchedStaticPriority, SchedApproxEDF, SchedTournament}
	for _, kind := range kinds {
		cfg := DefaultConfig()
		cfg.Scheduler = kind
		cfg.ApproxShift = 2
		r := newRig(t, cfg)
		if err := r.a.SetConnection(1, 9, 10, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
		r.a.InjectTC(tcPkt(1, 0, byte(kind)))
		if !r.k.RunUntil(func() bool { return r.a.Stats.TCDelivered > 0 }, 5000) {
			t.Errorf("%v: packet not delivered", kind)
		}
		if s := kind.String(); s == "" || strings.HasPrefix(s, "SchedulerKind(") {
			t.Errorf("missing String label for %d", int(kind))
		}
	}
	if SchedulerKind(99).String() != "SchedulerKind(99)" {
		t.Error("unknown kind label wrong")
	}
}

// TestNarrowClockRouter runs a chip with a 5-bit clock: tighter delay
// range, same correctness inside it.
func TestNarrowClockRouter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ClockBits = 5 // half range 16 slots
	r := newRig(t, cfg)
	if err := r.a.SetConnection(1, 9, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	// d beyond the narrow half range must be rejected.
	if err := r.a.SetConnection(2, 9, 20, maskOf(PortLocal)); err == nil {
		t.Error("d=20 accepted on a 5-bit clock (half range 16)")
	}
	// Run long enough to wrap the 32-slot clock several times.
	for i := 0; i < 20; i++ {
		r.a.InjectTC(tcPkt(1, packet.StampOf(r.a.SlotNow(int64(r.k.Now()))), byte(i)))
		r.k.Run(8 * packet.TCBytes)
	}
	r.k.Run(2000)
	if r.a.Stats.TCDelivered != 20 {
		t.Errorf("delivered %d/20 across narrow-clock wraps", r.a.Stats.TCDelivered)
	}
	if r.a.Stats.TCDeadlineMisses != 0 {
		t.Errorf("misses on narrow clock: %d", r.a.Stats.TCDeadlineMisses)
	}
}

// TestResetStatsRouter covers the warmup idiom at chip level.
func TestResetStatsRouter(t *testing.T) {
	r := newRig(t, DefaultConfig())
	if err := r.a.SetConnection(1, 9, 10, maskOf(PortLocal)); err != nil {
		t.Fatal(err)
	}
	r.a.InjectTC(tcPkt(1, 0, 1))
	r.k.RunUntil(func() bool { return r.a.Stats.TCDelivered > 0 }, 2000)
	r.a.ResetStats()
	if r.a.Stats.TCDelivered != 0 || r.a.Stats.BusGrants != 0 {
		t.Errorf("stats survived reset: %+v", r.a.Stats)
	}
	if r.a.TCInjectBacklog() != 0 {
		t.Error("backlog miscounted")
	}
}

// TestInjectBEPanicsOnShortFrame pins the API contract.
func TestInjectBEPanicsOnShortFrame(t *testing.T) {
	r := MustNew("x", DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("short frame did not panic")
		}
	}()
	r.InjectBE([]byte{1, 2})
}

// TestConnectOutOfRangePanics pins port validation.
func TestConnectOutOfRangePanics(t *testing.T) {
	r := MustNew("x", DefaultConfig())
	for _, f := range []func(){
		func() { r.ConnectIn(4, nil) },
		func() { r.ConnectOut(-1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range connect did not panic")
				}
			}()
			f()
		}()
	}
}

// TestLeafSharingSlowsScheduling pins the §5.1 knob at chip level: the
// same single packet takes longer to schedule with a heavily shared
// tree.
func TestLeafSharingSlowsScheduling(t *testing.T) {
	lat := func(sharing int) int64 {
		cfg := DefaultConfig()
		cfg.LeafSharing = sharing
		r := newRig(t, cfg)
		if err := r.a.SetConnection(1, 9, 100, maskOf(PortLocal)); err != nil {
			t.Fatal(err)
		}
		r.a.InjectTC(tcPkt(1, 0, 1))
		if !r.k.RunUntil(func() bool { return r.a.Stats.TCDelivered > 0 }, 50000) {
			t.Fatalf("sharing %d: never delivered", sharing)
		}
		return r.a.DrainTC()[0].Cycle
	}
	if l1, l32 := lat(1), lat(32); l32 <= l1 {
		t.Errorf("sharing 32 latency %d not above factor-1 latency %d", l32, l1)
	}
	cfg := DefaultConfig()
	cfg.LeafSharing = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero sharing factor accepted")
	}
	_ = sched.ClassNone
}

// TestVCTBackToBackCutsSameInput is the regression test for a wedge the
// randomized guarantee property uncovered: two packets arriving
// back-to-back on one input, cutting through to different ports, used
// to share (and reset) the input's skew FIFO — wiping the first cut's
// undelivered bytes and wedging its output mid-packet forever. The
// second packet must instead fall back to store-and-forward until the
// first cut drains.
func TestVCTBackToBackCutsSameInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.VCT = true
	for p := range cfg.Horizons {
		cfg.Horizons[p] = 64
	}
	k := sim.NewKernel()
	a := MustNew("A", cfg)
	bx := MustNew("Bx", cfg)
	by := MustNew("By", cfg)
	k.Register(a)
	k.Register(bx)
	k.Register(by)
	chx := NewChannel(k)
	a.ConnectOut(PortXPlus, chx.Out())
	bx.ConnectIn(PortXMinus, chx.In())
	chy := NewChannel(k)
	a.ConnectOut(PortYPlus, chy.Out())
	by.ConnectIn(PortYMinus, chy.In())
	for _, c := range []struct {
		r    *Router
		in   uint8
		mask sched.PortMask
	}{
		{a, 1, maskOf(PortXPlus)},
		{a, 2, maskOf(PortYPlus)},
		{bx, 1, maskOf(PortLocal)},
		{by, 2, maskOf(PortLocal)},
	} {
		if err := c.r.SetConnection(c.in, c.in, 30, c.mask); err != nil {
			t.Fatal(err)
		}
	}
	// Back-to-back injection: the second packet's header arrives while
	// the first cut is still draining through +x.
	a.InjectTC(tcPkt(1, 0, 0x11))
	a.InjectTC(tcPkt(2, 0, 0x22))
	ok := k.RunUntil(func() bool {
		return bx.Stats.TCDelivered > 0 && by.Stats.TCDelivered > 0
	}, 20000)
	if !ok {
		t.Fatalf("wedged: Bx=%+v By=%+v A-ports: +x %+v +y %+v",
			bx.Stats, by.Stats, a.OutputState(PortXPlus), a.OutputState(PortYPlus))
	}
	if got := bx.DrainTC()[0]; got.Payload[0] != 0x11 {
		t.Errorf("first packet corrupted: %#x", got.Payload[0])
	}
	if got := by.DrainTC()[0]; got.Payload[0] != 0x22 {
		t.Errorf("second packet corrupted: %#x", got.Payload[0])
	}
	if a.FreeSlots() != cfg.Slots {
		t.Error("memory slot leaked")
	}
}
