package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// CycleRateResult reports the simulator's own throughput — cycles per
// second on a loaded mesh — sequentially and with the parallel kernel,
// together with the evidence that the two modes agree bit for bit.
type CycleRateResult struct {
	W, H    int
	Cycles  int64
	Workers int

	SeqRate float64 // cycles per second, sequential kernel
	ParRate float64 // cycles per second, parallel kernel
	Speedup float64 // median of per-repetition par/seq ratios

	SeqAllocsPerCycle float64
	ParAllocsPerCycle float64

	// StatsMatch confirms the parallel run reproduced the sequential
	// run's per-router hardware counters exactly.
	StatsMatch bool
}

// loadCycleRateSystem builds the measured workload: real-time channels
// crossing the mesh corner to corner plus a best-effort source on every
// node, all registered into per-node shards.
func loadCycleRateSystem(w, h, workers int) (*core.System, error) {
	sys, err := core.NewMesh(w, h, core.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	spec := rtc.Spec{Imin: 8, Smax: 18, D: 24 * int64(w+h)}
	routes := [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: w - 1, Y: h - 1}},
		{{X: w - 1, Y: 0}, {X: 0, Y: h - 1}},
		{{X: 0, Y: h - 1}, {X: w - 1, Y: 0}},
		{{X: w - 1, Y: h - 1}, {X: 0, Y: 0}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
		if err != nil {
			return nil, fmt.Errorf("cyclerate: channel %d: %w", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(rt[0], app)
	}
	for i, c := range sys.Net.Coords() {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.FixedSize(64), 0.3, int64(i)+1)
		if err != nil {
			return nil, err
		}
		sys.RegisterNode(c, be)
	}
	return sys, nil
}

// timingReps is how many times the measured segment repeats per mode.
// Rates report the best repetition; the speedup is the median of the
// per-repetition ratios, which discards one-off stalls entirely.
const timingReps = 5

// measurement is one mode's timing outcome.
type measurement struct {
	Rate   float64   // cycles per second, best repetition
	Allocs float64   // heap allocations per cycle, lowest repetition
	Reps   []float64 // cycles per second of every repetition, in order
	Stats  []router.Stats
}

// timeSegment times one already-warm system over cycles and folds the
// repetition into m.
func timeSegment(sys *core.System, cycles int64, rep int, m *measurement) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	sys.Run(cycles)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	r := float64(cycles) / elapsed.Seconds()
	m.Reps = append(m.Reps, r)
	if r > m.Rate {
		m.Rate = r
	}
	if a := float64(m1.Mallocs-m0.Mallocs) / float64(cycles); rep == 0 || a < m.Allocs {
		m.Allocs = a
	}
}

// timePair measures the sequential and the parallel kernel on identical
// workloads with interleaved repetitions — seq, par, seq, par, … — so
// machine-load drift lands on both modes alike. Every repetition builds
// both systems from scratch: heap layout luck is a persistent few-
// percent bias for any single instance, and only re-drawing it per
// repetition lets the median expose the code's real difference. The
// returned speedup is the median of the per-repetition par/seq ratios.
func timePair(w, h, workers int, cycles int64) (seq, par measurement, speedup float64, err error) {
	for rep := 0; rep < timingReps; rep++ {
		seqSys, err := loadCycleRateSystem(w, h, 1)
		if err != nil {
			return seq, par, 0, err
		}
		parSys, err := loadCycleRateSystem(w, h, workers)
		if err != nil {
			seqSys.Close()
			return seq, par, 0, err
		}
		// Warm up pools and buffers so the steady state is what's
		// measured, and start each timing from a clean heap.
		seqSys.Run(cycles / 10)
		parSys.Run(cycles / 10)
		runtime.GC()
		timeSegment(seqSys, cycles, rep, &seq)
		timeSegment(parSys, cycles, rep, &par)
		if rep == timingReps-1 {
			for _, c := range seqSys.Net.Coords() {
				seq.Stats = append(seq.Stats, seqSys.Router(c).Stats)
			}
			for _, c := range parSys.Net.Coords() {
				par.Stats = append(par.Stats, parSys.Router(c).Stats)
			}
		}
		parSys.Close()
		seqSys.Close()
	}
	ratios := make([]float64, 0, timingReps)
	for i := range par.Reps {
		if seq.Reps[i] > 0 {
			ratios = append(ratios, par.Reps[i]/seq.Reps[i])
		}
	}
	sort.Float64s(ratios)
	if len(ratios) > 0 {
		speedup = ratios[len(ratios)/2]
	}
	return seq, par, speedup, nil
}

// RunCycleRate measures simulator throughput on a loaded w×h mesh with
// the sequential kernel and with the parallel kernel at the given
// worker count (<= 0 picks GOMAXPROCS), and cross-checks that both
// modes produce identical router counters.
func RunCycleRate(w, h int, cycles int64, workers int) (*CycleRateResult, error) {
	workers = sim.ResolveWorkers(workers)
	if cycles <= 0 {
		cycles = 50000
	}
	seq, par, speedup, err := timePair(w, h, workers, cycles)
	if err != nil {
		return nil, err
	}
	return &CycleRateResult{
		W: w, H: h, Cycles: cycles, Workers: workers,
		SeqRate: seq.Rate, ParRate: par.Rate, Speedup: speedup,
		SeqAllocsPerCycle: seq.Allocs, ParAllocsPerCycle: par.Allocs,
		StatsMatch: reflect.DeepEqual(seq.Stats, par.Stats),
	}, nil
}

// Table renders the result.
func (r *CycleRateResult) Table() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Simulator cycle rate, %dx%d mesh, %d cycles", r.W, r.H, r.Cycles),
		Header: []string{"kernel", "cycles/sec", "allocs/cycle"},
	}
	t.AddRow("sequential", fmt.Sprintf("%.0f", r.SeqRate), fmt.Sprintf("%.2f", r.SeqAllocsPerCycle))
	t.AddRow(fmt.Sprintf("parallel x%d", r.Workers), fmt.Sprintf("%.0f", r.ParRate), fmt.Sprintf("%.2f", r.ParAllocsPerCycle))
	t.AddNote("speedup %.2fx; router counters bit-identical: %v", r.Speedup, r.StatsMatch)
	return t
}
