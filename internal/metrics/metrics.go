// Package metrics is the router telemetry layer: a zero-allocation
// counter/gauge registry the router core updates on every hot-path
// event, with JSON and Prometheus-text export and an HTTP handler for
// watching a long simulation live.
//
// The label space is fixed at construction — router name, output port
// (0..4) and arbitration class — so every hot-path update is a single
// atomic add into a preallocated array; nothing on the tick path
// allocates, hashes or locks. Counters are safe for concurrent readers
// (the -listen endpoint) while the simulation is running.
//
// The software plays the role of the chip-level event counters and
// Verilog waveforms the paper's authors watched (Figures 4–7): each
// counter answers a "why did this happen" question — arbitration wins
// by class per port, packet-memory occupancy high-water, slot-clock
// rollovers, best-effort credit stalls, deadline misses and drops by
// reason.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// NumPorts mirrors the router's port count (four mesh links plus the
// local port). Kept as a local constant so the router package can
// depend on metrics without a cycle.
const NumPorts = 5

// portName mirrors router.PortName for export labels.
func portName(p int) string {
	switch p {
	case 0:
		return "+x"
	case 1:
		return "-x"
	case 2:
		return "+y"
	case 3:
		return "-y"
	case 4:
		return "local"
	default:
		return fmt.Sprintf("port(%d)", p)
	}
}

// ArbClass labels an output-port arbitration decision (Table 1 service
// order): an on-time time-constrained packet, an early time-constrained
// packet sent within the horizon, or a best-effort flit.
type ArbClass uint8

const (
	// ArbOnTime is a Queue-1 win: a time-constrained packet at or past
	// its logical arrival time started transmission.
	ArbOnTime ArbClass = iota
	// ArbEarly is a Queue-3 win: a time-constrained packet ahead of its
	// logical arrival time was sent within the port's horizon.
	ArbEarly
	// ArbBE is a best-effort win: one wormhole flit crossed the port.
	// Counted per flit, because the chip re-arbitrates best-effort
	// traffic every byte (byte-level preemption).
	ArbBE
	// NumArbClasses sizes per-class arrays.
	NumArbClasses = 3
)

func (c ArbClass) String() string {
	switch c {
	case ArbOnTime:
		return "on_time"
	case ArbEarly:
		return "early"
	case ArbBE:
		return "best_effort"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// DropReason labels a discarded packet by the mechanism that dropped it.
type DropReason uint8

const (
	// DropTCNoSlot: the idle-address FIFO was empty (a reservation
	// violation; admitted traffic cannot exhaust the packet memory).
	DropTCNoSlot DropReason = iota
	// DropTCNoRoute: no valid connection-table entry for the header id.
	DropTCNoRoute
	// DropTCStaging: the input's nominal staging space overran.
	DropTCStaging
	// DropTCDeadPort: the packet was scheduled to an unwired link.
	DropTCDeadPort
	// DropBEMisroute: dimension-ordered routing pointed off the mesh.
	DropBEMisroute
	// DropBETruncated: a wormhole fragment was abandoned after its
	// upstream link failed mid-packet.
	DropBETruncated
	// DropBEOverrun: a best-effort flit arrived with no buffer space (a
	// credit-protocol violation).
	DropBEOverrun
	// DropTCCorrupt: a time-constrained packet failed its frame checksum
	// at the input (integrity checking on).
	DropTCCorrupt
	// DropTCFraming: a time-constrained assembly lost framing — a head
	// arrived mid-packet or a phit went missing mid-frame.
	DropTCFraming
	// DropBEAborted: a partial best-effort frame was discarded on an
	// Abort flit from upstream (link death or retry exhaustion mid-worm).
	DropBEAborted
	// NumDropReasons sizes per-reason arrays.
	NumDropReasons = 10
)

func (d DropReason) String() string {
	switch d {
	case DropTCNoSlot:
		return "tc_no_slot"
	case DropTCNoRoute:
		return "tc_no_route"
	case DropTCStaging:
		return "tc_staging"
	case DropTCDeadPort:
		return "tc_dead_port"
	case DropBEMisroute:
		return "be_misroute"
	case DropBETruncated:
		return "be_truncated"
	case DropBEOverrun:
		return "be_overrun"
	case DropTCCorrupt:
		return "tc_corrupt"
	case DropTCFraming:
		return "tc_framing"
	case DropBEAborted:
		return "be_aborted"
	default:
		return fmt.Sprintf("reason(%d)", int(d))
	}
}

// Counter is a monotonically increasing event count, safe for one
// writer and many concurrent readers (and for several writers, though
// the simulator is single-threaded).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is an instantaneous level, also usable as a running maximum via
// SetMax (high-water marks).
type Gauge struct{ v atomic.Int64 }

// Set stores the current level.
func (g *Gauge) Set(x int64) { g.v.Store(x) }

// SetMax raises the gauge to x if x exceeds the stored value.
func (g *Gauge) SetMax(x int64) {
	for {
		cur := g.v.Load()
		if x <= cur || g.v.CompareAndSwap(cur, x) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

func (g *Gauge) reset() { g.v.Store(0) }

// RouterMetrics is the fixed-cardinality counter block of one router
// chip. The router core holds a pointer (nil when telemetry is off) and
// updates fields directly on its hot path; all updates are atomic adds
// or stores into preallocated storage.
type RouterMetrics struct {
	name string

	// TCInjected counts packets handed to the time-constrained
	// injection port by the local processor.
	TCInjected Counter
	// TCEnqueued counts scheduling-leaf installs: a packet became live
	// in the shared memory and visible to the comparator tree.
	TCEnqueued Counter
	// TCDequeued counts transmission starts per output port for packets
	// leaving through the memory path (cut-throughs are separate).
	TCDequeued [NumPorts]Counter
	// TCDelivered counts packets handed to the local processor.
	TCDelivered Counter
	// BEDelivered counts best-effort deliveries.
	BEDelivered Counter

	// ArbWins counts output-port arbitration decisions by class:
	// time-constrained wins per packet, best-effort wins per flit.
	ArbWins [NumPorts][NumArbClasses]Counter

	// CutThroughs counts established virtual cut-through paths (§7).
	CutThroughs Counter

	// MemOccupancy is the current number of occupied packet-memory
	// slots; MemHighWater is its maximum since the last reset.
	MemOccupancy Gauge
	MemHighWater Gauge

	// SchedSelects counts comparator-tree selection beats issued;
	// SchedOccupancy/SchedOccPeak track in-use scheduling leaves.
	SchedSelects   Counter
	SchedOccupancy Gauge
	SchedOccPeak   Gauge

	// SlotRollovers counts wraps of the bounded slot clock (§4.3).
	SlotRollovers Counter

	// DeadlineMisses counts transmissions that started past their local
	// deadline.
	DeadlineMisses Counter

	// BEStallCycles counts cycles an output port idled with a
	// best-effort flit waiting but no downstream credit.
	BEStallCycles [NumPorts]Counter
	// BEFlitAcks counts flit credits returned upstream.
	BEFlitAcks Counter

	// FaultCorruptPhits and FaultLostPhits count link-fault injections on
	// this router's input wires: phits garbled in place and phits erased
	// entirely. Incremented by the attached fault injector, not the
	// router core.
	FaultCorruptPhits Counter
	FaultLostPhits    Counter
	// BEFlitNacks counts corrupted best-effort flits nacked upstream;
	// BEFlitRetransmits counts flits resent after a nack; BEFrameAborts
	// counts frames abandoned after the retry budget ran out.
	BEFlitNacks       Counter
	BEFlitRetransmits Counter
	BEFrameAborts     Counter

	// Drops counts discarded packets by reason.
	Drops [NumDropReasons]Counter
}

// Name returns the router label the block was registered under.
func (m *RouterMetrics) Name() string {
	if m == nil {
		return ""
	}
	return m.name
}

// Reset zeroes every counter and gauge. Nil-safe, so the router's
// warmup reset needs no telemetry guard.
func (m *RouterMetrics) Reset() {
	if m == nil {
		return
	}
	m.TCInjected.reset()
	m.TCEnqueued.reset()
	m.TCDelivered.reset()
	m.BEDelivered.reset()
	m.CutThroughs.reset()
	m.SchedSelects.reset()
	m.SlotRollovers.reset()
	m.DeadlineMisses.reset()
	m.BEFlitAcks.reset()
	m.FaultCorruptPhits.reset()
	m.FaultLostPhits.reset()
	m.BEFlitNacks.reset()
	m.BEFlitRetransmits.reset()
	m.BEFrameAborts.reset()
	m.MemHighWater.reset()
	m.SchedOccPeak.reset()
	// Occupancy gauges keep their level: the memory does not empty on a
	// stats reset, and the next update overwrites them anyway.
	for p := 0; p < NumPorts; p++ {
		m.TCDequeued[p].reset()
		m.BEStallCycles[p].reset()
		for c := 0; c < NumArbClasses; c++ {
			m.ArbWins[p][c].reset()
		}
	}
	for d := 0; d < NumDropReasons; d++ {
		m.Drops[d].reset()
	}
}

// Registry holds the telemetry of a whole network, one RouterMetrics
// block per router plus run-level bookkeeping. Router() is the only
// locking operation and runs once per router at attach time; everything
// on the simulation hot path goes through the preallocated blocks.
type Registry struct {
	mu      sync.RWMutex
	routers map[string]*RouterMetrics
	order   []string

	// channels, when set, supplies per-channel SLO snapshots for export
	// (see SetChannelSource); the obs package is the standard provider.
	channels func() []ChannelSnapshot

	// blame and forensics, when set, supply slack-attribution exports
	// (see SetBlameSource/SetForensicsSource); obs.Forensics is the
	// standard provider.
	blame     func() []BlameSnapshot
	forensics func() *ForensicsSnapshot

	// capacity, when set, supplies the admission-plane reservation
	// ledger (see SetCapacitySource); the admission controller's Sealed
	// method is the standard provider.
	capacity func() *CapacitySnapshot

	// admission, when set, supplies control-plane decision counters
	// (see SetAdmissionSource); the admission controller's Stats method
	// is the standard provider. Kept separate from the capacity ledger
	// because rejected admissions increment these counters while the
	// sealed ledger must stay byte-identical across refusals.
	admission func() *AdmissionStats

	// Cycles, if set by the harness, records the measured cycle span
	// for rate normalization in reports.
	Cycles atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{routers: make(map[string]*RouterMetrics)}
}

// Router returns the metrics block registered under name, creating it
// on first use. Safe for concurrent use.
func (g *Registry) Router(name string) *RouterMetrics {
	g.mu.RLock()
	m := g.routers[name]
	g.mu.RUnlock()
	if m != nil {
		return m
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if m = g.routers[name]; m != nil {
		return m
	}
	m = &RouterMetrics{name: name}
	g.routers[name] = m
	g.order = append(g.order, name)
	return m
}

// Routers returns the registered router names in registration order.
func (g *Registry) Routers() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return append([]string(nil), g.order...)
}

// Reset zeroes every registered block (warmup exclusion).
func (g *Registry) Reset() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, m := range g.routers {
		m.Reset()
	}
	g.Cycles.Store(0)
}

// HistogramSnapshot is a point-in-time copy of one log-bucketed
// latency/slack histogram in export-friendly form. Buckets[0] counts
// exact zeros; Buckets[i] for i ≥ 1 counts values in [2^(i−1), 2^i−1].
// Negative values (deadline misses for slack histograms) land in
// MissCount, not in Buckets. Min/Max/P50/P99 are over all recorded
// values including negative ones; they are zero when Count is zero.
type HistogramSnapshot struct {
	Count     int64   `json:"count"`
	MissCount int64   `json:"miss_count"`
	Sum       int64   `json:"sum"`
	Min       int64   `json:"min"`
	Max       int64   `json:"max"`
	P50       int64   `json:"p50"`
	P99       int64   `json:"p99"`
	Buckets   []int64 `json:"buckets,omitempty"`
}

// ChannelSnapshot is a point-in-time copy of one real-time channel's
// SLO accounting: end-to-end delivery latency (cycles), end-to-end
// deadline slack at delivery (slots, ℓ+D−arrival), per-hop slack
// against the local deadline d_j (slots), plus miss and horizon-early
// counters.
type ChannelSnapshot struct {
	ID         int               `json:"id"`
	Name       string            `json:"name"`
	Src        string            `json:"src"`
	Dst        string            `json:"dst"`
	BoundSlots int64             `json:"bound_slots"`
	Delivered  int64             `json:"delivered"`
	Misses     int64             `json:"deadline_misses"`
	HopMisses  int64             `json:"hop_misses"`
	EarlyTx    int64             `json:"early_tx"`
	Latency    HistogramSnapshot `json:"latency_cycles"`
	Slack      HistogramSnapshot `json:"slack_slots"`
	HopSlack   HistogramSnapshot `json:"hop_slack_slots"`
}

// SetChannelSource installs the function Snapshot calls to collect
// per-channel SLO snapshots (nil detaches). The source must be safe to
// call concurrently with the simulation, like the router counters.
func (g *Registry) SetChannelSource(fn func() []ChannelSnapshot) {
	g.mu.Lock()
	g.channels = fn
	g.mu.Unlock()
}

// BlameSnapshot is one aggregated blame-matrix cell: the victim channel
// lost Cycles cycles to the blamed channel (arb_loss) or subsystem
// (every other cause; Blamed is then empty).
type BlameSnapshot struct {
	Victim string `json:"victim"`
	Cause  string `json:"cause"`
	Blamed string `json:"blamed,omitempty"`
	Cycles int64  `json:"cycles"`
}

// ForensicsSnapshot summarizes the slack-attribution engine's totals
// and the flight recorder's trigger count.
type ForensicsSnapshot struct {
	// TCStallCycles is the total of attributed time-constrained stall
	// cycles (all causes except credit_starved, which is best-effort).
	TCStallCycles int64 `json:"tc_stall_cycles"`
	// Unattributed counts stalled cycles the classifier could not
	// explain; the CI gate requires zero.
	Unattributed int64            `json:"unattributed_cycles"`
	ByCause      map[string]int64 `json:"by_cause,omitempty"`
	// Triggers counts flight-recorder trigger events (deadline misses,
	// best-effort aborts, fault drops) observed so far.
	Triggers int64 `json:"triggers"`
}

// SetBlameSource installs the function Snapshot calls to collect
// aggregated blame-matrix cells (nil detaches). Rows must arrive
// pre-sorted; Snapshot passes them through untouched.
func (g *Registry) SetBlameSource(fn func() []BlameSnapshot) {
	g.mu.Lock()
	g.blame = fn
	g.mu.Unlock()
}

// SetForensicsSource installs the function Snapshot calls to collect
// the forensics summary (nil detaches).
func (g *Registry) SetForensicsSource(fn func() *ForensicsSnapshot) {
	g.mu.Lock()
	g.forensics = fn
	g.mu.Unlock()
}

// LinkCapacity is the reservation ledger's view of one directed link:
// how much of the link's EDF budget the admitted channels hold and how
// much slack remains. Links with no reservations are omitted from the
// snapshot.
type LinkCapacity struct {
	// Link is the display name ("(1,0)→+x", "(0,0)→inject"); NodeX,
	// NodeY and Port are the same identity in structured form.
	Link  string `json:"link"`
	NodeX int    `json:"x"`
	NodeY int    `json:"y"`
	Port  string `json:"port"`
	// Channels is the number of channels reserving slots on this link.
	Channels int `json:"channels"`
	// Utilization is ΣC/T over the link's reserved task set.
	Utilization float64 `json:"utilization"`
	// ReservedSlots is ΣC: slots per message reserved across channels.
	ReservedSlots int64 `json:"reserved_slots"`
	// HeadroomSlots is the minimum t−dbf(t) over the EDF analysis step
	// points: slots of extra demand the link could absorb at its
	// tightest deadline.
	HeadroomSlots int64 `json:"edf_headroom_slots"`
	// WorstMarginSlots is the smallest admission-time margin among the
	// channels crossing this link.
	WorstMarginSlots int64 `json:"worst_admitted_margin_slots"`
}

// NodeCapacity is the ledger's view of one router's finite tables:
// packet-memory slots and connection identifiers. Nodes holding no
// reservations are omitted.
type NodeCapacity struct {
	Node string `json:"node"`
	// BuffersUsed of BuffersLimit packet-memory slots are reserved;
	// PortBuffers splits the usage by output-port partition (only
	// meaningful under Partitioned accounting, populated always).
	BuffersUsed  int            `json:"buffers_used"`
	BuffersLimit int            `json:"buffers_limit"`
	PortBuffers  map[string]int `json:"port_buffers,omitempty"`
	// ConnsUsed of ConnsLimit connection-table identifiers are held.
	ConnsUsed  int `json:"conns_used"`
	ConnsLimit int `json:"conns_limit"`
}

// CapacitySnapshot is a sealed point-in-time copy of the admission
// plane's reservation ledger. It is immutable once published: the
// admission controller seals a fresh snapshot after every control-plane
// phase, so a live HTTP scrape never observes a half-updated ledger.
type CapacitySnapshot struct {
	// Channels is the number of admitted channels backing the ledger.
	Channels int            `json:"channels"`
	Links    []LinkCapacity `json:"links,omitempty"`
	Nodes    []NodeCapacity `json:"nodes,omitempty"`
	// WorstLink is the most utilized link and WorstUtilization its
	// load; MinHeadroomSlots is the tightest EDF headroom anywhere.
	WorstLink        string  `json:"worst_link,omitempty"`
	WorstUtilization float64 `json:"worst_utilization"`
	MinHeadroomSlots int64   `json:"min_edf_headroom_slots"`
}

// SetCapacitySource installs the function Snapshot calls to collect the
// admission capacity ledger (nil detaches). The source must tolerate
// concurrent calls during the simulation; returning nil (nothing sealed
// yet) omits the section.
func (g *Registry) SetCapacitySource(fn func() *CapacitySnapshot) {
	g.mu.Lock()
	g.capacity = fn
	g.mu.Unlock()
}

// AdmissionStats counts control-plane decisions since the controller was
// created. Unlike the sealed capacity ledger these counters move on
// rejected requests too, so they live in their own export section.
type AdmissionStats struct {
	Admits        int64 `json:"admits"`
	Rejects       int64 `json:"rejects"`
	Teardowns     int64 `json:"teardowns"`
	Restores      int64 `json:"restores"`
	Reroutes      int64 `json:"reroutes"`
	BatchRequests int64 `json:"batch_requests"`
	BatchChunks   int64 `json:"batch_chunks"`
	BatchReplans  int64 `json:"batch_replans"`
}

// SetAdmissionSource installs the function Snapshot calls to collect
// admission decision counters (nil detaches). The source must tolerate
// concurrent calls; returning nil omits the section.
func (g *Registry) SetAdmissionSource(fn func() *AdmissionStats) {
	g.mu.Lock()
	g.admission = fn
	g.mu.Unlock()
}

// RouterSnapshot is a point-in-time copy of one router's counters in
// export-friendly form.
type RouterSnapshot struct {
	Router         string                      `json:"router"`
	TCInjected     int64                       `json:"tc_injected"`
	TCEnqueued     int64                       `json:"tc_enqueued"`
	TCDequeued     map[string]int64            `json:"tc_dequeued"`
	TCDelivered    int64                       `json:"tc_delivered"`
	BEDelivered    int64                       `json:"be_delivered"`
	ArbWins        map[string]map[string]int64 `json:"arb_wins"`
	CutThroughs    int64                       `json:"cut_throughs"`
	MemOccupancy   int64                       `json:"mem_occupancy"`
	MemHighWater   int64                       `json:"mem_high_water"`
	SchedSelects   int64                       `json:"sched_selects"`
	SchedOccupancy int64                       `json:"sched_occupancy"`
	SchedOccPeak   int64                       `json:"sched_occ_peak"`
	SlotRollovers  int64                       `json:"slot_rollovers"`
	DeadlineMisses int64                       `json:"deadline_misses"`
	BEStallCycles  map[string]int64            `json:"be_stall_cycles"`
	BEFlitAcks     int64                       `json:"be_flit_acks"`
	FaultCorrupt   int64                       `json:"fault_corrupt_phits"`
	FaultLost      int64                       `json:"fault_lost_phits"`
	BEFlitNacks    int64                       `json:"be_flit_nacks"`
	BERetransmits  int64                       `json:"be_flit_retransmits"`
	BEFrameAborts  int64                       `json:"be_frame_aborts"`
	Drops          map[string]int64            `json:"drops"`
}

// Snapshot is a point-in-time copy of the whole registry: per-router
// blocks plus network-wide totals (gauges aggregate by max for
// high-waters and by sum for levels).
type Snapshot struct {
	Cycles    int64              `json:"cycles,omitempty"`
	Totals    RouterSnapshot     `json:"totals"`
	Routers   []RouterSnapshot   `json:"routers"`
	Channels  []ChannelSnapshot  `json:"channels,omitempty"`
	Blame     []BlameSnapshot    `json:"blame,omitempty"`
	Forensics *ForensicsSnapshot `json:"forensics,omitempty"`
	Capacity  *CapacitySnapshot  `json:"capacity,omitempty"`
	Admission *AdmissionStats    `json:"admission,omitempty"`
}

func (m *RouterMetrics) snapshot() RouterSnapshot {
	s := RouterSnapshot{
		Router:         m.name,
		TCInjected:     m.TCInjected.Load(),
		TCEnqueued:     m.TCEnqueued.Load(),
		TCDequeued:     make(map[string]int64, NumPorts),
		TCDelivered:    m.TCDelivered.Load(),
		BEDelivered:    m.BEDelivered.Load(),
		ArbWins:        make(map[string]map[string]int64, NumPorts),
		CutThroughs:    m.CutThroughs.Load(),
		MemOccupancy:   m.MemOccupancy.Load(),
		MemHighWater:   m.MemHighWater.Load(),
		SchedSelects:   m.SchedSelects.Load(),
		SchedOccupancy: m.SchedOccupancy.Load(),
		SchedOccPeak:   m.SchedOccPeak.Load(),
		SlotRollovers:  m.SlotRollovers.Load(),
		DeadlineMisses: m.DeadlineMisses.Load(),
		BEStallCycles:  make(map[string]int64, NumPorts),
		BEFlitAcks:     m.BEFlitAcks.Load(),
		FaultCorrupt:   m.FaultCorruptPhits.Load(),
		FaultLost:      m.FaultLostPhits.Load(),
		BEFlitNacks:    m.BEFlitNacks.Load(),
		BERetransmits:  m.BEFlitRetransmits.Load(),
		BEFrameAborts:  m.BEFrameAborts.Load(),
		Drops:          make(map[string]int64, NumDropReasons),
	}
	for p := 0; p < NumPorts; p++ {
		pn := portName(p)
		s.TCDequeued[pn] = m.TCDequeued[p].Load()
		s.BEStallCycles[pn] = m.BEStallCycles[p].Load()
		wins := make(map[string]int64, NumArbClasses)
		for c := 0; c < NumArbClasses; c++ {
			wins[ArbClass(c).String()] = m.ArbWins[p][c].Load()
		}
		s.ArbWins[pn] = wins
	}
	for d := 0; d < NumDropReasons; d++ {
		s.Drops[DropReason(d).String()] = m.Drops[d].Load()
	}
	return s
}

func (s *RouterSnapshot) accumulate(o RouterSnapshot) {
	s.TCInjected += o.TCInjected
	s.TCEnqueued += o.TCEnqueued
	s.TCDelivered += o.TCDelivered
	s.BEDelivered += o.BEDelivered
	s.CutThroughs += o.CutThroughs
	s.MemOccupancy += o.MemOccupancy
	if o.MemHighWater > s.MemHighWater {
		s.MemHighWater = o.MemHighWater
	}
	s.SchedSelects += o.SchedSelects
	s.SchedOccupancy += o.SchedOccupancy
	if o.SchedOccPeak > s.SchedOccPeak {
		s.SchedOccPeak = o.SchedOccPeak
	}
	s.SlotRollovers += o.SlotRollovers
	s.DeadlineMisses += o.DeadlineMisses
	s.BEFlitAcks += o.BEFlitAcks
	s.FaultCorrupt += o.FaultCorrupt
	s.FaultLost += o.FaultLost
	s.BEFlitNacks += o.BEFlitNacks
	s.BERetransmits += o.BERetransmits
	s.BEFrameAborts += o.BEFrameAborts
	for pn, v := range o.TCDequeued {
		s.TCDequeued[pn] += v
	}
	for pn, v := range o.BEStallCycles {
		s.BEStallCycles[pn] += v
	}
	for pn, wins := range o.ArbWins {
		if s.ArbWins[pn] == nil {
			s.ArbWins[pn] = make(map[string]int64, NumArbClasses)
		}
		for cn, v := range wins {
			s.ArbWins[pn][cn] += v
		}
	}
	for dn, v := range o.Drops {
		s.Drops[dn] += v
	}
}

// Snapshot copies the registry. Counters are read atomically but not as
// one transaction; a snapshot taken mid-cycle can be off by in-flight
// events, which is fine for reporting.
func (g *Registry) Snapshot() Snapshot {
	g.mu.RLock()
	defer g.mu.RUnlock()
	snap := Snapshot{
		Cycles: g.Cycles.Load(),
		Totals: RouterSnapshot{
			Router:        "total",
			TCDequeued:    make(map[string]int64, NumPorts),
			BEStallCycles: make(map[string]int64, NumPorts),
			ArbWins:       make(map[string]map[string]int64, NumPorts),
			Drops:         make(map[string]int64, NumDropReasons),
		},
	}
	for _, name := range g.order {
		rs := g.routers[name].snapshot()
		snap.Routers = append(snap.Routers, rs)
		snap.Totals.accumulate(rs)
	}
	if g.channels != nil {
		snap.Channels = g.channels()
	}
	if g.blame != nil {
		snap.Blame = g.blame()
	}
	if g.forensics != nil {
		snap.Forensics = g.forensics()
	}
	if g.capacity != nil {
		snap.Capacity = g.capacity()
	}
	if g.admission != nil {
		snap.Admission = g.admission()
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON.
func (g *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g.Snapshot())
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, one sample per router/label combination under the rt_ prefix.
func (g *Registry) WritePrometheus(w io.Writer) error {
	snap := g.Snapshot()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP rt_cycles Simulated cycles covered by this report.\n# TYPE rt_cycles gauge\nrt_cycles %d\n", snap.Cycles)
	counter := func(metric, help string, get func(RouterSnapshot) int64) {
		p("# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
		for _, rs := range snap.Routers {
			p("%s{router=%q} %d\n", metric, rs.Router, get(rs))
		}
	}
	gauge := func(metric, help string, get func(RouterSnapshot) int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
		for _, rs := range snap.Routers {
			p("%s{router=%q} %d\n", metric, rs.Router, get(rs))
		}
	}
	counter("rt_tc_injected_total", "Time-constrained packets injected by the local processor.",
		func(r RouterSnapshot) int64 { return r.TCInjected })
	counter("rt_tc_enqueued_total", "Scheduling-leaf installs (packet live in shared memory).",
		func(r RouterSnapshot) int64 { return r.TCEnqueued })
	counter("rt_tc_delivered_total", "Time-constrained deliveries to the local processor.",
		func(r RouterSnapshot) int64 { return r.TCDelivered })
	counter("rt_be_delivered_total", "Best-effort deliveries to the local processor.",
		func(r RouterSnapshot) int64 { return r.BEDelivered })
	counter("rt_cut_throughs_total", "Virtual cut-through paths established.",
		func(r RouterSnapshot) int64 { return r.CutThroughs })
	counter("rt_sched_selects_total", "Comparator-tree selection beats.",
		func(r RouterSnapshot) int64 { return r.SchedSelects })
	counter("rt_slot_rollovers_total", "Bounded slot-clock wraps.",
		func(r RouterSnapshot) int64 { return r.SlotRollovers })
	counter("rt_deadline_misses_total", "Transmissions started past their local deadline.",
		func(r RouterSnapshot) int64 { return r.DeadlineMisses })
	counter("rt_be_flit_acks_total", "Best-effort flit credits returned upstream.",
		func(r RouterSnapshot) int64 { return r.BEFlitAcks })
	counter("rt_fault_corrupt_phits_total", "Phits garbled by the link-fault injector.",
		func(r RouterSnapshot) int64 { return r.FaultCorrupt })
	counter("rt_fault_lost_phits_total", "Phits erased by the link-fault injector.",
		func(r RouterSnapshot) int64 { return r.FaultLost })
	counter("rt_fault_be_nacks_total", "Corrupted best-effort flits nacked upstream.",
		func(r RouterSnapshot) int64 { return r.BEFlitNacks })
	counter("rt_fault_be_retransmits_total", "Best-effort flits resent after a nack.",
		func(r RouterSnapshot) int64 { return r.BERetransmits })
	counter("rt_fault_be_frame_aborts_total", "Best-effort frames abandoned after retry-budget exhaustion.",
		func(r RouterSnapshot) int64 { return r.BEFrameAborts })
	gauge("rt_mem_occupancy", "Occupied packet-memory slots.",
		func(r RouterSnapshot) int64 { return r.MemOccupancy })
	gauge("rt_mem_high_water", "Packet-memory occupancy high-water mark.",
		func(r RouterSnapshot) int64 { return r.MemHighWater })
	gauge("rt_sched_occupancy", "In-use scheduling leaves.",
		func(r RouterSnapshot) int64 { return r.SchedOccupancy })
	gauge("rt_sched_occ_peak", "Scheduling-leaf occupancy high-water mark.",
		func(r RouterSnapshot) int64 { return r.SchedOccPeak })

	p("# HELP rt_arb_wins_total Output-port arbitration wins by class (TC per packet, BE per flit).\n# TYPE rt_arb_wins_total counter\n")
	for _, rs := range snap.Routers {
		for _, pn := range sortedKeys(rs.ArbWins) {
			for _, cn := range sortedKeys(rs.ArbWins[pn]) {
				p("rt_arb_wins_total{router=%q,port=%q,class=%q} %d\n", rs.Router, pn, cn, rs.ArbWins[pn][cn])
			}
		}
	}
	p("# HELP rt_tc_dequeued_total Transmission starts per output port (memory path).\n# TYPE rt_tc_dequeued_total counter\n")
	for _, rs := range snap.Routers {
		for _, pn := range sortedKeys(rs.TCDequeued) {
			p("rt_tc_dequeued_total{router=%q,port=%q} %d\n", rs.Router, pn, rs.TCDequeued[pn])
		}
	}
	p("# HELP rt_be_stall_cycles_total Cycles a port idled on a credit-starved best-effort flit.\n# TYPE rt_be_stall_cycles_total counter\n")
	for _, rs := range snap.Routers {
		for _, pn := range sortedKeys(rs.BEStallCycles) {
			p("rt_be_stall_cycles_total{router=%q,port=%q} %d\n", rs.Router, pn, rs.BEStallCycles[pn])
		}
	}
	p("# HELP rt_drops_total Discarded packets by reason.\n# TYPE rt_drops_total counter\n")
	for _, rs := range snap.Routers {
		for _, dn := range sortedKeys(rs.Drops) {
			p("rt_drops_total{router=%q,reason=%q} %d\n", rs.Router, dn, rs.Drops[dn])
		}
	}

	if len(snap.Channels) > 0 {
		chCounter := func(metric, help string, get func(ChannelSnapshot) int64) {
			p("# HELP %s %s\n# TYPE %s counter\n", metric, help, metric)
			for _, cs := range snap.Channels {
				p("%s{channel=%q} %d\n", metric, cs.Name, get(cs))
			}
		}
		chCounter("rt_channel_delivered_total", "Time-constrained packets delivered on this channel.",
			func(c ChannelSnapshot) int64 { return c.Delivered })
		chCounter("rt_channel_deadline_miss_total", "Deliveries past the channel's end-to-end deadline.",
			func(c ChannelSnapshot) int64 { return c.Misses })
		chCounter("rt_channel_hop_miss_total", "Per-hop transmissions started past the local deadline d_j.",
			func(c ChannelSnapshot) int64 { return c.HopMisses })
		chCounter("rt_channel_early_tx_total", "Horizon-early transmissions on this channel's hops.",
			func(c ChannelSnapshot) int64 { return c.EarlyTx })
		hist := func(metric, help string, get func(ChannelSnapshot) HistogramSnapshot) {
			p("# HELP %s %s\n# TYPE %s summary\n", metric, help, metric)
			for _, cs := range snap.Channels {
				h := get(cs)
				p("%s{channel=%q,quantile=\"0.5\"} %d\n", metric, cs.Name, h.P50)
				p("%s{channel=%q,quantile=\"0.99\"} %d\n", metric, cs.Name, h.P99)
				p("%s_sum{channel=%q} %d\n", metric, cs.Name, h.Sum)
				p("%s_count{channel=%q} %d\n", metric, cs.Name, h.Count)
			}
		}
		hist("rt_channel_latency_cycles", "End-to-end delivery latency per channel in byte cycles.",
			func(c ChannelSnapshot) HistogramSnapshot { return c.Latency })
		hist("rt_channel_slack_slots", "End-to-end deadline slack at delivery per channel in slots (negative = miss).",
			func(c ChannelSnapshot) HistogramSnapshot { return c.Slack })
		hist("rt_channel_hop_slack_slots", "Per-hop slack against the local deadline d_j in slots.",
			func(c ChannelSnapshot) HistogramSnapshot { return c.HopSlack })
		gaugeCh := func(metric, help string, get func(ChannelSnapshot) int64) {
			p("# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
			for _, cs := range snap.Channels {
				p("%s{channel=%q} %d\n", metric, cs.Name, get(cs))
			}
		}
		gaugeCh("rt_channel_latency_worst_cycles", "Worst observed end-to-end latency per channel.",
			func(c ChannelSnapshot) int64 { return c.Latency.Max })
		gaugeCh("rt_channel_slack_worst_slots", "Smallest observed end-to-end slack per channel.",
			func(c ChannelSnapshot) int64 { return c.Slack.Min })
	}

	if len(snap.Blame) > 0 {
		p("# HELP rt_blame_cycles_total Stall cycles the victim lost to the blamed channel or subsystem cause.\n# TYPE rt_blame_cycles_total counter\n")
		for _, b := range snap.Blame {
			p("rt_blame_cycles_total{victim=%q,cause=%q,blamed=%q} %d\n",
				b.Victim, b.Cause, b.Blamed, b.Cycles)
		}
	}
	if fs := snap.Forensics; fs != nil {
		p("# HELP rt_forensics_tc_stall_cycles_total Attributed time-constrained stall cycles.\n# TYPE rt_forensics_tc_stall_cycles_total counter\nrt_forensics_tc_stall_cycles_total %d\n", fs.TCStallCycles)
		p("# HELP rt_forensics_unattributed_cycles_total Stalled cycles the classifier could not explain (must be zero).\n# TYPE rt_forensics_unattributed_cycles_total counter\nrt_forensics_unattributed_cycles_total %d\n", fs.Unattributed)
		p("# HELP rt_forensics_cause_cycles_total Stall cycles by attribution cause.\n# TYPE rt_forensics_cause_cycles_total counter\n")
		for _, c := range sortedKeys(fs.ByCause) {
			p("rt_forensics_cause_cycles_total{cause=%q} %d\n", c, fs.ByCause[c])
		}
		p("# HELP rt_forensics_triggers_total Flight-recorder trigger events.\n# TYPE rt_forensics_triggers_total counter\nrt_forensics_triggers_total %d\n", fs.Triggers)
	}
	if cs := snap.Capacity; cs != nil {
		p("# HELP rt_capacity_channels Admitted real-time channels backing the reservation ledger.\n# TYPE rt_capacity_channels gauge\nrt_capacity_channels %d\n", cs.Channels)
		p("# HELP rt_capacity_worst_utilization EDF utilization of the most loaded link.\n# TYPE rt_capacity_worst_utilization gauge\nrt_capacity_worst_utilization %g\n", cs.WorstUtilization)
		p("# HELP rt_capacity_min_headroom_slots Tightest EDF headroom across all reserved links.\n# TYPE rt_capacity_min_headroom_slots gauge\nrt_capacity_min_headroom_slots %d\n", cs.MinHeadroomSlots)
		linkGauge := func(metric, help string, emit func(LinkCapacity) string) {
			p("# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
			for _, lc := range cs.Links {
				p("%s{link=%q} %s\n", metric, lc.Link, emit(lc))
			}
		}
		linkGauge("rt_capacity_link_utilization", "EDF utilization reserved on the link.",
			func(l LinkCapacity) string { return fmt.Sprintf("%g", l.Utilization) })
		linkGauge("rt_capacity_link_channels", "Channels holding a reservation on the link.",
			func(l LinkCapacity) string { return fmt.Sprintf("%d", l.Channels) })
		linkGauge("rt_capacity_link_reserved_slots", "Slots per message reserved across the link's channels.",
			func(l LinkCapacity) string { return fmt.Sprintf("%d", l.ReservedSlots) })
		linkGauge("rt_capacity_link_headroom_slots", "Minimum EDF slack t-dbf(t) on the link.",
			func(l LinkCapacity) string { return fmt.Sprintf("%d", l.HeadroomSlots) })
		linkGauge("rt_capacity_link_worst_margin_slots", "Smallest admission-time margin among the link's channels.",
			func(l LinkCapacity) string { return fmt.Sprintf("%d", l.WorstMarginSlots) })
		nodeGauge := func(metric, help string, get func(NodeCapacity) int) {
			p("# HELP %s %s\n# TYPE %s gauge\n", metric, help, metric)
			for _, nc := range cs.Nodes {
				p("%s{node=%q} %d\n", metric, nc.Node, get(nc))
			}
		}
		nodeGauge("rt_capacity_node_buffers_used", "Packet-memory slots reserved at the node.",
			func(n NodeCapacity) int { return n.BuffersUsed })
		nodeGauge("rt_capacity_node_buffers_limit", "Packet-memory slots available at the node.",
			func(n NodeCapacity) int { return n.BuffersLimit })
		nodeGauge("rt_capacity_node_conns_used", "Connection identifiers held at the node.",
			func(n NodeCapacity) int { return n.ConnsUsed })
		nodeGauge("rt_capacity_node_conns_limit", "Connection-table size at the node.",
			func(n NodeCapacity) int { return n.ConnsLimit })
	}
	if as := snap.Admission; as != nil {
		admCounter := func(metric, help string, v int64) {
			p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", metric, help, metric, metric, v)
		}
		admCounter("rt_admission_admits_total", "Admission requests granted.", as.Admits)
		admCounter("rt_admission_rejects_total", "Admission requests refused.", as.Rejects)
		admCounter("rt_admission_teardowns_total", "Channels torn down.", as.Teardowns)
		admCounter("rt_admission_restores_total", "Channels restored after refused reroutes.", as.Restores)
		admCounter("rt_admission_reroutes_total", "Reroute attempts.", as.Reroutes)
		admCounter("rt_admission_batch_requests_total", "Requests processed through AdmitBatch.", as.BatchRequests)
		admCounter("rt_admission_batch_chunks_total", "Speculative evaluation chunks dispatched by AdmitBatch.", as.BatchChunks)
		admCounter("rt_admission_batch_replans_total", "Batched requests re-planned serially after a footprint conflict.", as.BatchReplans)
	}
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ServeHTTP implements http.Handler: Prometheus text by default, JSON
// with ?format=json (or a .json path suffix), for the -listen endpoint.
func (g *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.URL.Query().Get("format") == "json" || len(req.URL.Path) > 5 && req.URL.Path[len(req.URL.Path)-5:] == ".json" {
		w.Header().Set("Content-Type", "application/json")
		_ = g.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = g.WritePrometheus(w)
}
