package baseline

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
)

// VCRouter is the priority-virtual-channel wormhole architecture the
// paper's Related Work contrasts (references 3, 4, 17): both traffic
// classes are wormhole-switched and dimension-order routed, but the
// link carries two virtual channels with strict priority — VC0 for
// time-critical packets, VC1 for bulk — and flit-level preemption of
// the low-priority channel. There is no deadline hardware, no logical
// arrival times and no rate regulation: within a virtual channel,
// arbitration is round-robin and a packet holds its path head-to-tail.
//
// That is exactly the design whose limitation the paper argues: the
// priority channel protects the *class*, but inside VC0 a tight-
// deadline packet still queues head-of-line behind whatever bulky
// "urgent" traffic got there first. Experiment X2 measures the
// consequence against the deadline-driven router.
//
// Wire format: both classes use the best-effort header (offsets +
// length); the phit VC bit selects the channel (VCTime → VC0). The
// reverse acknowledgement's two credit bits serve VC0 (TCCredit) and
// VC1 (BECredit).
type VCRouter struct {
	name string
	in   [router.NumLinks]*router.InLink
	out  [router.NumLinks]*router.OutLink

	vcs [2]*vcPlane

	nowCycle int64

	Stats VCStats
}

// VCStats aggregates the model's counters per virtual channel.
type VCStats struct {
	Delivered [2]int64
	Bytes     [2][router.NumPorts]int64
	Misroutes int64
	Overruns  int64
}

// vcPlane is the per-virtual-channel wormhole machinery: one input
// engine per source and one output binding per port.
type vcPlane struct {
	r  *VCRouter
	id int // 0 = high priority, 1 = low

	inputs  [router.NumPorts]*vcInput
	outputs [router.NumPorts]*vcOutput

	delivered []router.DeliveredBE
}

type vcInput struct {
	plane *vcPlane
	id    int

	buf      []byte
	parsed   bool
	hdr      packet.BEHeader
	nextHdr  [packet.BEHeaderBytes]byte
	outPort  int
	fwdIdx   int
	bound    bool
	dropping bool
	consumed int

	injQ   [][]byte
	injPos int
}

type vcOutput struct {
	plane   *vcPlane
	port    int
	curIn   int
	rr      int
	credits int
	rxBuf   []byte
}

// VCFlitBuf is the per-input, per-VC flit buffer capacity.
const VCFlitBuf = 10

// NewVCRouter creates a two-VC priority wormhole router.
func NewVCRouter(name string) *VCRouter {
	r := &VCRouter{name: name}
	for v := 0; v < 2; v++ {
		p := &vcPlane{r: r, id: v}
		for i := 0; i < router.NumPorts; i++ {
			p.inputs[i] = &vcInput{plane: p, id: i}
			p.outputs[i] = &vcOutput{plane: p, port: i, curIn: -1, credits: VCFlitBuf}
		}
		r.vcs[v] = p
	}
	return r
}

// Name implements sim.Component.
func (r *VCRouter) Name() string { return r.name }

// ConnectIn attaches a link receive side to input port p.
func (r *VCRouter) ConnectIn(p int, l *router.InLink) { r.in[p] = l }

// ConnectOut attaches a link transmit side to output port p.
func (r *VCRouter) ConnectOut(p int, l *router.OutLink) { r.out[p] = l }

// Inject queues a packet on the given virtual channel (0 = priority).
// The frame is a best-effort-format packet (see packet.NewBE).
func (r *VCRouter) Inject(vc int, frame []byte) error {
	if vc < 0 || vc > 1 {
		return fmt.Errorf("baseline: virtual channel %d out of range", vc)
	}
	if len(frame) < packet.BEHeaderBytes {
		return fmt.Errorf("baseline: frame of %d bytes below header size", len(frame))
	}
	in := r.vcs[vc].inputs[router.PortLocal]
	in.injQ = append(in.injQ, frame)
	return nil
}

// Drain returns and clears deliveries on the given virtual channel.
func (r *VCRouter) Drain(vc int) []router.DeliveredBE {
	d := r.vcs[vc].delivered
	r.vcs[vc].delivered = nil
	return d
}

// Tick implements sim.Component.
func (r *VCRouter) Tick(now sim.Cycle) {
	r.nowCycle = int64(now)
	// Output arbitration: strict priority across VCs per physical port,
	// flit-level preemption of VC1 whenever VC0 can send.
	for p := 0; p < router.NumPorts; p++ {
		if p != router.PortLocal && r.out[p] == nil {
			for v := 0; v < 2; v++ {
				r.vcs[v].inputs[p].drainDropped()
			}
			continue
		}
		sent := false
		for v := 0; v < 2 && !sent; v++ {
			o := r.vcs[v].outputs[p]
			if o.canSend() {
				o.sendByte()
				sent = true
			}
		}
		for v := 0; v < 2; v++ {
			r.vcs[v].inputs[p].drainDropped()
		}
	}
	r.sampleInputs()
	r.driveAcks()
}

func (r *VCRouter) sampleInputs() {
	for p := 0; p < router.NumLinks; p++ {
		if r.in[p] != nil {
			ph := r.in[p].Phit(r.nowCycle)
			if ph.Valid {
				vc := 1
				if ph.VC == packet.VCTime {
					vc = 0
				}
				r.vcs[vc].inputs[p].accept(ph.Data)
			}
		}
		if r.out[p] != nil {
			ack := r.out[p].Ack(r.nowCycle)
			if ack.TCCredit {
				r.vcs[0].outputs[p].credit()
			}
			if ack.BECredit {
				r.vcs[1].outputs[p].credit()
			}
		}
	}
	for v := 0; v < 2; v++ {
		r.vcs[v].inputs[router.PortLocal].feedInjection()
		for i := 0; i < router.NumPorts; i++ {
			r.vcs[v].inputs[i].parse()
		}
	}
}

func (r *VCRouter) driveAcks() {
	for p := 0; p < router.NumLinks; p++ {
		if r.in[p] == nil {
			continue
		}
		var ack packet.Ack
		if u := r.vcs[0].inputs[p]; u.consumed > 0 {
			ack.TCCredit = true
			u.consumed--
		}
		if u := r.vcs[1].inputs[p]; u.consumed > 0 {
			ack.BECredit = true
			u.consumed--
		}
		if ack.TCCredit || ack.BECredit {
			r.in[p].DriveAck(r.nowCycle, ack)
		}
	}
}

func (u *vcInput) accept(b byte) {
	if len(u.buf) >= VCFlitBuf {
		u.plane.r.Stats.Overruns++
		return
	}
	u.buf = append(u.buf, b)
}

func (u *vcInput) feedInjection() {
	if len(u.injQ) == 0 || len(u.buf) >= VCFlitBuf {
		return
	}
	pkt := u.injQ[0]
	u.buf = append(u.buf, pkt[u.injPos])
	u.injPos++
	if u.injPos == len(pkt) {
		u.injQ = u.injQ[1:]
		u.injPos = 0
	}
}

func (u *vcInput) parse() {
	if u.parsed || len(u.buf) < packet.BEHeaderBytes {
		return
	}
	u.hdr = packet.DecodeBEHeader(u.buf[:packet.BEHeaderBytes])
	if u.hdr.Len < packet.BEHeaderBytes {
		u.hdr.Len = packet.BEHeaderBytes
	}
	next := u.hdr
	switch {
	case u.hdr.XOff > 0:
		u.outPort = router.PortXPlus
		next.XOff--
	case u.hdr.XOff < 0:
		u.outPort = router.PortXMinus
		next.XOff++
	case u.hdr.YOff > 0:
		u.outPort = router.PortYPlus
		next.YOff--
	case u.hdr.YOff < 0:
		u.outPort = router.PortYMinus
		next.YOff++
	default:
		u.outPort = router.PortLocal
	}
	packet.EncodeBEHeader(next, u.nextHdr[:])
	u.parsed = true
	u.fwdIdx = 0
	if u.outPort != router.PortLocal && u.plane.r.out[u.outPort] == nil {
		u.dropping = true
		u.plane.r.Stats.Misroutes++
	}
}

func (u *vcInput) hasByte() bool { return u.parsed && len(u.buf) > 0 }

func (u *vcInput) pop() (b byte, head, tail bool) {
	b = u.buf[0]
	if u.fwdIdx < packet.BEHeaderBytes {
		b = u.nextHdr[u.fwdIdx]
	}
	u.buf = u.buf[1:]
	u.consumed++
	head = u.fwdIdx == 0
	u.fwdIdx++
	tail = u.fwdIdx == int(u.hdr.Len)
	if tail {
		u.parsed = false
		u.bound = false
		u.dropping = false
	}
	return b, head, tail
}

func (u *vcInput) drainDropped() {
	if u.dropping && len(u.buf) > 0 {
		u.pop()
	}
}

func (o *vcOutput) credit() {
	if o.credits < VCFlitBuf {
		o.credits++
	}
}

func (o *vcOutput) bind() {
	if o.curIn >= 0 {
		return
	}
	n := router.NumPorts
	for i := 0; i < n; i++ {
		idx := (o.rr + i) % n
		u := o.plane.inputs[idx]
		if u.parsed && !u.bound && !u.dropping && u.outPort == o.port {
			u.bound = true
			o.curIn = idx
			o.rr = idx + 1
			return
		}
	}
}

func (o *vcOutput) canSend() bool {
	o.bind()
	if o.curIn < 0 {
		return false
	}
	if o.port != router.PortLocal && o.credits <= 0 {
		return false
	}
	return o.plane.inputs[o.curIn].hasByte()
}

func (o *vcOutput) sendByte() {
	u := o.plane.inputs[o.curIn]
	by, head, tail := u.pop()
	r := o.plane.r
	r.Stats.Bytes[o.plane.id][o.port]++
	if o.port == router.PortLocal {
		o.rxBuf = append(o.rxBuf, by)
		if tail {
			payload := make([]byte, 0, len(o.rxBuf))
			if len(o.rxBuf) > packet.BEHeaderBytes {
				payload = append(payload, o.rxBuf[packet.BEHeaderBytes:]...)
			}
			o.plane.delivered = append(o.plane.delivered, router.DeliveredBE{
				Payload: payload, Cycle: r.nowCycle,
			})
			r.Stats.Delivered[o.plane.id]++
			o.rxBuf = o.rxBuf[:0]
			o.curIn = -1
		}
		return
	}
	o.credits--
	vcBit := packet.VCBest
	if o.plane.id == 0 {
		vcBit = packet.VCTime
	}
	r.out[o.port].Drive(r.nowCycle, packet.Phit{Valid: true, VC: vcBit, Data: by, Head: head, Tail: tail})
	if tail {
		o.curIn = -1
	}
}
