package main

import "testing"

// TestRunnersSmoke executes every experiment runner with reduced cycle
// budgets, so CLI wiring cannot rot silently. Output goes to the test
// log; only errors fail.
func TestRunnersSmoke(t *testing.T) {
	cases := map[string]func() error{
		"e1":        runE1,
		"fig6":      runFig6,
		"chip":      runChip,
		"fig7":      func() error { return runFig7(4000, false) },
		"horizon":   func() error { return runHorizon(20000) },
		"compare":   func() error { return runCompare(20000) },
		"approx":    func() error { return runApprox(20000) },
		"vct":       func() error { return runVCT(20000) },
		"multicast": runMulticast,
		"admit":     runAdmit,
		"load":      func() error { return runLoad(15000) },
		"skew":      func() error { return runSkew(20000) },
		"failover":  runFailover,
		"ring":      func() error { return runRing(20000) },
		"sharing":   func() error { return runSharing(20000) },
	}
	for name, run := range cases {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			if err := run(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		})
	}
}
