package admission

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
)

// batchFamily generates the request families the admission campaign
// uses, scaled down for tests: uniform scatter, hotspot funnel into the
// mesh center, and transpose.
func batchFamily(name string, w, h, count int) []Request {
	n := w * h
	coord := func(i int) mesh.Coord { return mesh.Coord{X: i % w, Y: (i / w) % h} }
	reqs := make([]Request, 0, count)
	for i := 0; i < count; i++ {
		var src, dst mesh.Coord
		var spec rtc.Spec
		switch name {
		case "hotspot":
			src = coord((i*11 + 1) % n)
			dst = mesh.Coord{X: w / 2, Y: h / 2}
			spec = rtc.Spec{Imin: 24, Smax: 18, D: 96}
		case "transpose":
			src = coord(i % n)
			dst = mesh.Coord{X: src.Y % w, Y: src.X % h}
			spec = rtc.Spec{Imin: 16, Smax: 18, D: 64}
		default: // uniform
			src = coord((i*7 + 3) % n)
			dst = coord((i*13 + 5) % n)
			spec = rtc.Spec{Imin: 16, Smax: 18, D: 64}
		}
		if src == dst {
			continue
		}
		reqs = append(reqs, Request{Src: src, Dsts: []mesh.Coord{dst}, Spec: spec})
	}
	return reqs
}

// TestAdmitBatchIdentity is the PR's determinism contract: for each
// request family, the admitted set, the sealed capacity ledger, and the
// audit log must be byte-identical between the sequential Admit loop and
// AdmitBatch at workers 1, 2, and 4. Runs under -race in CI, so it also
// proves the speculative planners share no mutable state.
func TestAdmitBatchIdentity(t *testing.T) {
	defer func(n int) { batchChunkSize = n }(batchChunkSize)
	batchChunkSize = 32 // force many chunk boundaries and replans

	for _, family := range []string{"uniform", "hotspot", "transpose"} {
		reqs := batchFamily(family, 6, 6, 192)

		run := func(workers int) (*Controller, *obs.AuditLog, BatchResult) {
			n := mesh.MustNew(6, 6, router.DefaultConfig())
			c, err := New(n, DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			aud := obs.NewAuditLog()
			c.AttachAudit(aud)
			var res BatchResult
			if workers == 0 { // plain sequential Admit loop
				res = BatchResult{Channels: make([]*Channel, len(reqs)), Errs: make([]error, len(reqs))}
				for i, r := range reqs {
					ch, err := c.Admit(r.Src, r.Dsts, r.Spec)
					res.note(i, ch, err)
				}
			} else {
				res = c.AdmitBatch(reqs, workers)
			}
			if err := c.VerifyLedger(); err != nil {
				t.Fatalf("%s workers=%d: %v", family, workers, err)
			}
			return c, aud, res
		}

		refC, refAud, refRes := run(0)
		refSeal, err := json.Marshal(refC.Seal())
		if err != nil {
			t.Fatal(err)
		}
		if refRes.Admitted == 0 || refRes.Rejected == 0 {
			t.Fatalf("%s: degenerate family (admitted=%d rejected=%d); identity check needs both outcomes",
				family, refRes.Admitted, refRes.Rejected)
		}

		for _, workers := range []int{1, 2, 4} {
			c, aud, res := run(workers)
			if res.Admitted != refRes.Admitted || res.Rejected != refRes.Rejected {
				t.Fatalf("%s workers=%d: admitted/rejected %d/%d, sequential %d/%d",
					family, workers, res.Admitted, res.Rejected, refRes.Admitted, refRes.Rejected)
			}
			for i := range reqs {
				rch, ch := refRes.Channels[i], res.Channels[i]
				if (rch == nil) != (ch == nil) {
					t.Fatalf("%s workers=%d req %d: outcome differs from sequential", family, workers, i)
				}
				if rch == nil {
					if res.Errs[i].Error() != refRes.Errs[i].Error() {
						t.Fatalf("%s workers=%d req %d: rejection %q, sequential %q",
							family, workers, i, res.Errs[i], refRes.Errs[i])
					}
					continue
				}
				if ch.ID != rch.ID || ch.Margin != rch.Margin || ch.LocalD != rch.LocalD ||
					ch.SrcConn != rch.SrcConn || ch.Route() != rch.Route() {
					t.Fatalf("%s workers=%d req %d: channel %+v, sequential %+v",
						family, workers, i, ch, rch)
				}
			}
			seal, err := json.Marshal(c.Seal())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seal, refSeal) {
				t.Fatalf("%s workers=%d: sealed ledger differs from sequential", family, workers)
			}
			if aud.Len() != refAud.Len() || aud.DumpHash() != refAud.DumpHash() {
				t.Fatalf("%s workers=%d: audit log differs from sequential (%d/%d records, hash %x vs %x)",
					family, workers, aud.Len(), refAud.Len(), aud.DumpHash(), refAud.DumpHash())
			}
			st := c.Stats()
			if st.Admits != int64(refRes.Admitted) || st.Rejects != int64(refRes.Rejected) {
				t.Fatalf("%s workers=%d: stats %d/%d, want %d/%d",
					family, workers, st.Admits, st.Rejects, refRes.Admitted, refRes.Rejected)
			}
		}
	}
}

// TestAdmitBatchEmptyAndSingle covers the degenerate shapes: an empty
// batch and a batch smaller than the worker count.
func TestAdmitBatchEmptyAndSingle(t *testing.T) {
	n := mesh.MustNew(3, 3, router.DefaultConfig())
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res := c.AdmitBatch(nil, 4); res.Admitted != 0 || res.Rejected != 0 {
		t.Fatalf("empty batch reported %d/%d", res.Admitted, res.Rejected)
	}
	one := []Request{{Src: mesh.Coord{X: 0, Y: 0}, Dsts: []mesh.Coord{{X: 2, Y: 1}},
		Spec: rtc.Spec{Imin: 16, Smax: 18, D: 64}}}
	res := c.AdmitBatch(one, 8)
	if res.Admitted != 1 || res.Channels[0] == nil {
		t.Fatalf("single-request batch: %+v, err=%v", res, res.Errs[0])
	}
	if err := c.VerifyLedger(); err != nil {
		t.Fatal(err)
	}
}

// TestAdmitAllocs is the hot-path alloc gate: a steady-state
// admit/teardown cycle on a warm controller must stay under a fixed
// allocation ceiling. The ceiling has headroom over the measured value
// (currently ~12) but catches accidental per-check or per-point
// allocations, which would add hundreds.
func TestAdmitAllocs(t *testing.T) {
	n := mesh.MustNew(8, 8, router.DefaultConfig())
	c, err := New(n, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Background load so link caches and id maps are warm and non-empty.
	for _, r := range batchFamily("uniform", 8, 8, 48) {
		c.Admit(r.Src, r.Dsts, r.Spec)
	}
	src, dst := mesh.Coord{X: 1, Y: 2}, mesh.Coord{X: 6, Y: 5}
	spec := rtc.Spec{Imin: 32, Smax: 18, D: 96}
	dsts := []mesh.Coord{dst}
	if ch, err := c.Admit(src, dsts, spec); err != nil {
		t.Fatalf("probe admission rejected: %v", err)
	} else if err := c.Teardown(ch); err != nil {
		t.Fatal(err)
	}
	const ceiling = 24.0
	got := testing.AllocsPerRun(200, func() {
		ch, err := c.Admit(src, dsts, spec)
		if err != nil {
			t.Fatalf("admit: %v", err)
		}
		if err := c.Teardown(ch); err != nil {
			t.Fatalf("teardown: %v", err)
		}
	})
	if got > ceiling {
		t.Fatalf("admit+teardown allocates %.1f objects, ceiling %.0f", got, ceiling)
	}
}

// BenchmarkAdmit measures one warm-path admit+teardown cycle on a loaded
// 16x16 mesh.
func BenchmarkAdmit(b *testing.B) {
	n := mesh.MustNew(16, 16, router.DefaultConfig())
	c, err := New(n, DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range batchFamily("uniform", 16, 16, 512) {
		c.Admit(r.Src, r.Dsts, r.Spec)
	}
	src, dst := mesh.Coord{X: 2, Y: 3}, mesh.Coord{X: 13, Y: 11}
	spec := rtc.Spec{Imin: 48, Smax: 18, D: 128}
	dsts := []mesh.Coord{dst}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := c.Admit(src, dsts, spec)
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Teardown(ch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdmitBatch measures batch throughput end to end: a fresh
// controller per iteration admitting a 2048-request uniform family.
func BenchmarkAdmitBatch(b *testing.B) {
	reqs := batchFamily("uniform", 16, 16, 2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		n := mesh.MustNew(16, 16, router.DefaultConfig())
		c, err := New(n, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res := c.AdmitBatch(reqs, 4)
		if res.Admitted == 0 {
			b.Fatal("batch admitted nothing")
		}
	}
}
