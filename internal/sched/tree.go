package sched

import (
	"fmt"
	"math/bits"

	"repro/internal/timing"
)

// Tournament is a structural model of the hardware comparator tree of
// Figure 5. Where EDFTree scans leaves, Tournament materializes every
// pairwise comparator so that (a) equivalence with the linear scan can be
// property-tested and (b) the chip-cost questions of Section 5.1 — how
// many comparators, how many levels, what pipeline beat — can be answered
// quantitatively (cmd/rtchip, Table 4).
type Tournament struct {
	wheel  timing.Wheel
	leaves []Leaf
	levels int

	// CompareOps counts comparator evaluations across all Select calls,
	// the unit of the chip's scheduling-logic activity.
	CompareOps int64
	// Selects counts Select invocations (arbitration beats).
	Selects int64
}

// NewTournament returns a structural tree over the given number of leaf
// slots (rounded up internally to a power of two, as the hardware would).
func NewTournament(slots int, wheel timing.Wheel) *Tournament {
	if slots <= 0 {
		panic("sched: slots must be positive")
	}
	return &Tournament{
		wheel:  wheel,
		leaves: make([]Leaf, slots),
		levels: treeLevels(slots),
	}
}

func treeLevels(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Install places packet state in a leaf, as EDFTree.Install.
func (t *Tournament) Install(slot int, leaf Leaf) error {
	if slot < 0 || slot >= len(t.leaves) {
		return fmt.Errorf("sched: slot %d out of range [0,%d)", slot, len(t.leaves))
	}
	if t.leaves[slot].InUse {
		return fmt.Errorf("sched: slot %d already in use", slot)
	}
	if leaf.Mask == 0 {
		return fmt.Errorf("sched: installing leaf with empty port mask")
	}
	leaf.InUse = true
	t.leaves[slot] = leaf
	return nil
}

// Select runs the tournament reduction level by level, exactly as the
// pipelined hardware rows of comparators would, and applies the
// top-of-tree horizon check.
func (t *Tournament) Select(port int, now timing.Stamp, horizon uint32) Selection {
	t.Selects++
	type entry struct {
		slot int
		key  timing.Key
	}
	n := len(t.leaves)
	round := 1 << t.levels
	cur := make([]entry, round)
	inel := t.wheel.KeyIneligible()
	for i := 0; i < round; i++ {
		if i >= n || !t.leaves[i].InUse || !t.leaves[i].Mask.Has(port) {
			cur[i] = entry{slot: -1, key: inel}
			continue
		}
		lf := &t.leaves[i]
		k, _, _ := t.wheel.SortKey(lf.L, lf.Dl, now)
		cur[i] = entry{slot: i, key: k}
	}
	for len(cur) > 1 {
		next := make([]entry, len(cur)/2)
		for i := range next {
			a, b := cur[2*i], cur[2*i+1]
			t.CompareOps++
			// Unsigned compare; ties go to the lower index (a).
			if b.key < a.key {
				next[i] = b
			} else {
				next[i] = a
			}
		}
		cur = next
	}
	win := cur[0]
	if win.slot < 0 || win.key == inel {
		return Selection{Slot: -1, Class: ClassNone, Key: inel}
	}
	sel := Selection{Slot: win.slot, Key: win.key, Class: ClassOnTime}
	if t.wheel.IsEarlyKey(win.key) {
		if !t.wheel.WithinHorizon(win.key, horizon) {
			return Selection{Slot: -1, Class: ClassNone, Key: win.key}
		}
		sel.Class = ClassEarly
	}
	return sel
}

// ClearPort mirrors EDFTree.ClearPort.
func (t *Tournament) ClearPort(slot, port int) (bool, error) {
	if slot < 0 || slot >= len(t.leaves) {
		return false, fmt.Errorf("sched: slot %d out of range", slot)
	}
	lf := &t.leaves[slot]
	if !lf.InUse || !lf.Mask.Has(port) {
		return false, fmt.Errorf("sched: invalid clear of slot %d port %d", slot, port)
	}
	lf.Mask = lf.Mask.Clear(port)
	if lf.Mask == 0 {
		*lf = Leaf{}
		return true, nil
	}
	return false, nil
}

// Leaf implements Scheduler.
func (t *Tournament) Leaf(slot int) Leaf { return t.leaves[slot] }

// ResetTelemetry zeroes the running comparator and Select counters
// without disturbing installed leaves.
func (t *Tournament) ResetTelemetry() {
	t.CompareOps = 0
	t.Selects = 0
}

// SkipIdleSelects implements IdleSkipper: the tournament runs its full
// reduction even over an empty tree, so each skipped beat accounts one
// Select and 2^levels−1 comparator evaluations.
func (t *Tournament) SkipIdleSelects(n int64) {
	t.Selects += n
	t.CompareOps += n * int64(1<<t.levels-1)
}

// Occupancy implements Scheduler.
func (t *Tournament) Occupancy() int {
	n := 0
	for i := range t.leaves {
		if t.leaves[i].InUse {
			n++
		}
	}
	return n
}

// Slots implements Scheduler.
func (t *Tournament) Slots() int { return len(t.leaves) }

// Levels returns the number of comparator rows in the tree.
func (t *Tournament) Levels() int { return t.levels }

// Cost describes the hardware cost of a comparator tree configuration, in
// the terms of Table 4 and Section 5.1 of the paper.
type Cost struct {
	Leaves       int // packet leaf slots
	Comparators  int // two-input comparators in the reduction tree
	Levels       int // comparator rows (tree depth)
	KeyBits      int // sorting key width (clock bits + 1, Figure 4)
	Stages       int // pipeline stages the rows are folded into
	RowsPerStage int // comparator rows evaluated per pipeline beat
}

// CostModel computes the structural cost of a tree with the given leaves,
// clock width and pipeline depth. The paper's chip: 256 leaves, 8-bit
// clock (9-bit keys), 2 pipeline stages.
func CostModel(leaves int, clockBits uint, stages int) Cost {
	if leaves < 1 || stages < 1 {
		panic("sched: CostModel requires positive leaves and stages")
	}
	lv := treeLevels(leaves)
	rows := (lv + stages - 1) / stages
	if lv == 0 {
		rows = 0
	}
	return Cost{
		Leaves:       leaves,
		Comparators:  1<<lv - 1,
		Levels:       lv,
		KeyBits:      int(clockBits) + 1,
		Stages:       stages,
		RowsPerStage: rows,
	}
}

// SharedCost models the Section 5.1 cost-reduction alternative: combine
// several leaf units into one module with a small memory, sequencing
// each module's packets through a single comparator at the base of a
// smaller tree. Comparator count shrinks by the sharing factor; the
// selection must serialize over the module's packets, multiplying the
// scheduling time per beat.
type SharedCost struct {
	Cost
	LeavesPerModule int
	Modules         int
	// SerializeSlots is the sequential comparisons each module performs
	// per selection — the throughput cost of the sharing.
	SerializeSlots int
}

// CostModelShared computes the shared-leaf variant's cost.
func CostModelShared(leaves, perModule int, clockBits uint, stages int) SharedCost {
	if perModule < 1 {
		panic("sched: CostModelShared requires a positive sharing factor")
	}
	modules := (leaves + perModule - 1) / perModule
	base := CostModel(modules, clockBits, stages)
	base.Leaves = leaves
	return SharedCost{
		Cost:            base,
		LeavesPerModule: perModule,
		Modules:         modules,
		SerializeSlots:  perModule,
	}
}
