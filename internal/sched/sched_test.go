package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

var wheel8 = timing.MustWheel(8)

func TestPortMask(t *testing.T) {
	m := AllPortsMask(5)
	if m != 0x1f {
		t.Fatalf("AllPortsMask(5) = %#x, want 0x1f", m)
	}
	if m.Count() != 5 {
		t.Errorf("Count = %d, want 5", m.Count())
	}
	m = m.Clear(2)
	if m.Has(2) || !m.Has(0) || !m.Has(4) {
		t.Errorf("Clear(2) wrong: %#x", m)
	}
	if m.Count() != 4 {
		t.Errorf("Count after clear = %d, want 4", m.Count())
	}
	got := m.Ports(nil)
	want := []int{0, 1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Ports = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ports = %v, want %v", got, want)
		}
	}
	if p := PortMask(0).Ports(got[:0]); len(p) != 0 {
		t.Errorf("empty mask lists ports %v", p)
	}
}

func TestEDFInstallErrors(t *testing.T) {
	tr := NewEDFTree(4, wheel8)
	if err := tr.Install(4, Leaf{Mask: 1}); err == nil {
		t.Error("out-of-range slot: want error")
	}
	if err := tr.Install(-1, Leaf{Mask: 1}); err == nil {
		t.Error("negative slot: want error")
	}
	if err := tr.Install(0, Leaf{Mask: 0}); err == nil {
		t.Error("empty mask: want error")
	}
	if err := tr.Install(0, Leaf{Mask: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Install(0, Leaf{Mask: 1}); err == nil {
		t.Error("double install: want error")
	}
	if tr.Occupancy() != 1 {
		t.Errorf("Occupancy = %d, want 1", tr.Occupancy())
	}
}

// TestEDFServiceOrder exercises the Table 1 order within the scheduler:
// on-time packets by deadline, then early packets by logical arrival,
// with the horizon gating early service.
func TestEDFServiceOrder(t *testing.T) {
	tr := NewEDFTree(8, wheel8)
	now := wheel8.Wrap(100)
	// Slot 0: on-time, deadline t+30.
	must(t, tr.Install(0, Leaf{L: wheel8.Wrap(90), Dl: wheel8.Wrap(130), Mask: 1}))
	// Slot 1: on-time, deadline t+10 (most urgent).
	must(t, tr.Install(1, Leaf{L: wheel8.Wrap(95), Dl: wheel8.Wrap(110), Mask: 1}))
	// Slot 2: early by 5 slots.
	must(t, tr.Install(2, Leaf{L: wheel8.Wrap(105), Dl: wheel8.Wrap(140), Mask: 1}))

	sel := tr.Select(0, now, 0)
	if sel.Slot != 1 || sel.Class != ClassOnTime {
		t.Fatalf("Select = %+v, want slot 1 on-time", sel)
	}
	if _, err := tr.ClearPort(1, 0); err != nil {
		t.Fatal(err)
	}
	sel = tr.Select(0, now, 0)
	if sel.Slot != 0 || sel.Class != ClassOnTime {
		t.Fatalf("Select = %+v, want slot 0 on-time", sel)
	}
	if _, err := tr.ClearPort(0, 0); err != nil {
		t.Fatal(err)
	}
	// Only the early packet remains. With h=0 it must not be offered.
	sel = tr.Select(0, now, 0)
	if sel.Class != ClassNone {
		t.Fatalf("early packet offered with h=0: %+v", sel)
	}
	// With h=5 it is offered as early.
	sel = tr.Select(0, now, 5)
	if sel.Slot != 2 || sel.Class != ClassEarly {
		t.Fatalf("Select = %+v, want slot 2 early", sel)
	}
	// Advance the clock past its ℓ: it becomes on-time (Queue 3 → Queue 1
	// promotion falls out of key normalization).
	sel = tr.Select(0, wheel8.Wrap(105), 0)
	if sel.Slot != 2 || sel.Class != ClassOnTime {
		t.Fatalf("Select = %+v, want slot 2 promoted to on-time", sel)
	}
}

func TestEDFPerPortEligibility(t *testing.T) {
	tr := NewEDFTree(4, wheel8)
	now := wheel8.Wrap(50)
	// Multicast leaf owed to ports 0 and 2.
	must(t, tr.Install(0, Leaf{L: wheel8.Wrap(40), Dl: wheel8.Wrap(60), Mask: 0b101}))
	if sel := tr.Select(1, now, 0); sel.Class != ClassNone {
		t.Fatalf("port 1 offered a packet not routed to it: %+v", sel)
	}
	for _, port := range []int{0, 2} {
		if sel := tr.Select(port, now, 0); sel.Slot != 0 {
			t.Fatalf("port %d: Select = %+v, want slot 0", port, sel)
		}
	}
	empty, err := tr.ClearPort(0, 0)
	if err != nil || empty {
		t.Fatalf("first clear: empty=%v err=%v, want false,nil", empty, err)
	}
	empty, err = tr.ClearPort(0, 2)
	if err != nil || !empty {
		t.Fatalf("second clear: empty=%v err=%v, want true,nil", empty, err)
	}
	if tr.Occupancy() != 0 {
		t.Errorf("Occupancy = %d, want 0", tr.Occupancy())
	}
}

func TestEDFClearErrors(t *testing.T) {
	tr := NewEDFTree(4, wheel8)
	if _, err := tr.ClearPort(9, 0); err == nil {
		t.Error("out-of-range clear: want error")
	}
	if _, err := tr.ClearPort(0, 0); err == nil {
		t.Error("clear of free slot: want error")
	}
	must(t, tr.Install(0, Leaf{Mask: 0b10}))
	if _, err := tr.ClearPort(0, 0); err == nil {
		t.Error("clear of unset port bit: want error")
	}
}

func TestEDFTieBreaksLowestSlot(t *testing.T) {
	tr := NewEDFTree(8, wheel8)
	now := wheel8.Wrap(10)
	must(t, tr.Install(5, Leaf{L: wheel8.Wrap(5), Dl: wheel8.Wrap(30), Mask: 1}))
	must(t, tr.Install(2, Leaf{L: wheel8.Wrap(5), Dl: wheel8.Wrap(30), Mask: 1}))
	if sel := tr.Select(0, now, 0); sel.Slot != 2 {
		t.Fatalf("tie broke to slot %d, want 2", sel.Slot)
	}
}

// TestEDFRollover checks deadline ordering across the 8-bit clock wrap.
func TestEDFRollover(t *testing.T) {
	tr := NewEDFTree(4, wheel8)
	now := wheel8.Wrap(250)
	// Deadline at absolute 260 (wraps to 4) vs 270 (wraps to 14).
	must(t, tr.Install(0, Leaf{L: wheel8.Wrap(245), Dl: wheel8.Wrap(270), Mask: 1}))
	must(t, tr.Install(1, Leaf{L: wheel8.Wrap(248), Dl: wheel8.Wrap(260), Mask: 1}))
	if sel := tr.Select(0, now, 0); sel.Slot != 1 {
		t.Fatalf("rollover: selected slot %d, want 1 (deadline 260 < 270)", sel.Slot)
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO(8)
	now := wheel8.Wrap(0)
	// Install urgent-last; FIFO must ignore deadlines.
	must(t, f.Install(0, Leaf{L: 0, Dl: 100, Mask: 1}))
	must(t, f.Install(1, Leaf{L: 0, Dl: 5, Mask: 1}))
	sel := f.Select(0, now, 0)
	if sel.Slot != 0 {
		t.Fatalf("FIFO selected %d first, want 0", sel.Slot)
	}
	if sel.Class != ClassOnTime {
		t.Fatalf("FIFO class = %v, want on-time", sel.Class)
	}
	if _, err := f.ClearPort(0, 0); err != nil {
		t.Fatal(err)
	}
	if sel = f.Select(0, now, 0); sel.Slot != 1 {
		t.Fatalf("FIFO selected %d second, want 1", sel.Slot)
	}
}

func TestFIFOMulticastQueues(t *testing.T) {
	f := NewFIFO(8)
	must(t, f.Install(3, Leaf{Mask: 0b11}))
	for port := 0; port < 2; port++ {
		if sel := f.Select(port, 0, 0); sel.Slot != 3 {
			t.Fatalf("port %d: slot %d, want 3", port, sel.Slot)
		}
	}
	empty, err := f.ClearPort(3, 0)
	if err != nil || empty {
		t.Fatalf("clear port 0: %v %v", empty, err)
	}
	if sel := f.Select(0, 0, 0); sel.Class != ClassNone {
		t.Fatal("port 0 still offered cleared packet")
	}
	empty, err = f.ClearPort(3, 1)
	if err != nil || !empty {
		t.Fatalf("clear port 1: %v %v", empty, err)
	}
	if f.Occupancy() != 0 {
		t.Errorf("Occupancy = %d, want 0", f.Occupancy())
	}
}

func TestFIFOClearNonHeadFails(t *testing.T) {
	f := NewFIFO(8)
	must(t, f.Install(0, Leaf{Mask: 1}))
	must(t, f.Install(1, Leaf{Mask: 1}))
	if _, err := f.ClearPort(1, 0); err == nil {
		t.Error("clearing non-head slot: want error")
	}
}

func TestStaticPriorityOrder(t *testing.T) {
	s := NewStaticPriority(8)
	// Priority is Dl−L: connection delay reused as priority.
	must(t, s.Install(0, Leaf{L: 0, Dl: 9, Mask: 1})) // prio 9
	must(t, s.Install(1, Leaf{L: 0, Dl: 3, Mask: 1})) // prio 3
	must(t, s.Install(2, Leaf{L: 0, Dl: 3, Mask: 1})) // prio 3, later
	sel := s.Select(0, 0, 0)
	if sel.Slot != 1 {
		t.Fatalf("selected %d, want 1 (lowest prio value, earliest)", sel.Slot)
	}
	if _, err := s.ClearPort(1, 0); err != nil {
		t.Fatal(err)
	}
	if sel = s.Select(0, 0, 0); sel.Slot != 2 {
		t.Fatalf("selected %d, want 2 (FIFO within priority)", sel.Slot)
	}
	if _, err := s.ClearPort(2, 0); err != nil {
		t.Fatal(err)
	}
	if sel = s.Select(0, 0, 0); sel.Slot != 0 {
		t.Fatalf("selected %d, want 0", sel.Slot)
	}
}

func TestTournamentMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		tr := NewEDFTree(n, wheel8)
		tm := NewTournament(n, wheel8)
		base := rng.Int63n(100000)
		for slot := 0; slot < n; slot++ {
			if rng.Intn(3) == 0 {
				continue
			}
			off := int64(rng.Intn(100)) - 50
			d := int64(rng.Intn(60)) + 1
			lf := Leaf{
				L:    wheel8.Wrap(timing.Slot(base + off)),
				Dl:   wheel8.Wrap(timing.Slot(base + off + d)),
				Mask: PortMask(rng.Intn(31) + 1),
			}
			must(t, tr.Install(slot, lf))
			must(t, tm.Install(slot, lf))
		}
		now := wheel8.Wrap(timing.Slot(base))
		for port := 0; port < NumPorts; port++ {
			for _, h := range []uint32{0, 3, 10, 127} {
				a := tr.Select(port, now, h)
				b := tm.Select(port, now, h)
				if a.Slot != b.Slot || a.Class != b.Class {
					t.Fatalf("trial %d port %d h=%d: scan=%+v tournament=%+v",
						trial, port, h, a, b)
				}
			}
		}
	}
}

func TestTournamentCompareOps(t *testing.T) {
	tm := NewTournament(256, wheel8)
	must(t, tm.Install(0, Leaf{Mask: 1}))
	before := tm.CompareOps
	tm.Select(0, 0, 0)
	// 256 leaves → 255 comparators per full reduction.
	if got := tm.CompareOps - before; got != 255 {
		t.Errorf("CompareOps per Select = %d, want 255", got)
	}
	if tm.Levels() != 8 {
		t.Errorf("Levels = %d, want 8", tm.Levels())
	}
}

func TestCostModelPaperChip(t *testing.T) {
	// The paper's configuration: 256 packets, 8-bit clock (9-bit keys),
	// two-stage pipeline (Table 4a, Section 5.1).
	c := CostModel(256, 8, 2)
	if c.Comparators != 255 {
		t.Errorf("Comparators = %d, want 255", c.Comparators)
	}
	if c.Levels != 8 {
		t.Errorf("Levels = %d, want 8", c.Levels)
	}
	if c.KeyBits != 9 {
		t.Errorf("KeyBits = %d, want 9", c.KeyBits)
	}
	if c.RowsPerStage != 4 {
		t.Errorf("RowsPerStage = %d, want 4", c.RowsPerStage)
	}
}

func TestCostModelEdges(t *testing.T) {
	c := CostModel(1, 8, 2)
	if c.Levels != 0 || c.Comparators != 0 || c.RowsPerStage != 0 {
		t.Errorf("single-leaf cost: %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CostModel(0,...) did not panic")
		}
	}()
	CostModel(0, 8, 2)
}

func TestTreeLevels(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 255: 8, 256: 8, 257: 9}
	for n, want := range cases {
		if got := treeLevels(n); got != want {
			t.Errorf("treeLevels(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: for a random set of installed leaves, the EDF selection for a
// port is the leaf with minimal (class, key) among eligible leaves.
func TestEDFSelectIsArgminQuick(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		tr := NewEDFTree(n, wheel8)
		base := rng.Int63n(1 << 20)
		type ref struct {
			slot int
			key  timing.Key
		}
		var refs []ref
		now := wheel8.Wrap(timing.Slot(base))
		for slot := 0; slot < n; slot++ {
			if rng.Intn(2) == 0 {
				continue
			}
			off := int64(rng.Intn(80)) - 40
			d := int64(rng.Intn(40)) + 1
			lf := Leaf{
				L:    wheel8.Wrap(timing.Slot(base + off)),
				Dl:   wheel8.Wrap(timing.Slot(base + off + d)),
				Mask: 1,
			}
			if tr.Install(slot, lf) != nil {
				return false
			}
			k, _, _ := wheel8.SortKey(lf.L, lf.Dl, now)
			refs = append(refs, ref{slot, k})
		}
		sel := tr.Select(0, now, 127)
		if len(refs) == 0 {
			return sel.Class == ClassNone
		}
		best := refs[0]
		for _, r := range refs[1:] {
			if r.key < best.key {
				best = r
			}
		}
		return sel.Slot == best.slot
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassNone.String() != "none" || ClassOnTime.String() != "on-time" || ClassEarly.String() != "early" {
		t.Error("Class labels wrong")
	}
	if Class(7).String() != "Class(7)" {
		t.Error("unknown class label wrong")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestCostModelShared(t *testing.T) {
	// Section 5.1's alternative: 4 leaves per module over 256 packets →
	// 64 modules, 63 comparators, 4x serialization per selection.
	c := CostModelShared(256, 4, 8, 2)
	if c.Modules != 64 || c.Comparators != 63 {
		t.Errorf("shared cost: %+v", c)
	}
	if c.SerializeSlots != 4 {
		t.Errorf("SerializeSlots = %d, want 4", c.SerializeSlots)
	}
	if c.Leaves != 256 {
		t.Errorf("Leaves = %d, want 256 (capacity unchanged)", c.Leaves)
	}
	// Sharing factor 1 degenerates to the plain tree.
	p := CostModelShared(256, 1, 8, 2)
	if p.Comparators != 255 || p.SerializeSlots != 1 {
		t.Errorf("degenerate sharing: %+v", p)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero sharing factor did not panic")
		}
	}()
	CostModelShared(256, 0, 8, 2)
}
