// Package core is the top-level facade of the real-time router library:
// it assembles a mesh of router chips, the per-node protocol software
// (source regulators and delivery sinks), and the admission controller
// into one System that applications drive with a few calls:
//
//	sys, _ := core.NewMesh(4, 4, core.Options{})
//	ch, _ := sys.OpenChannel(src, []mesh.Coord{dst}, rtc.Spec{
//	    Imin: 8, Smax: 18, D: 64,
//	})
//	ch.Send([]byte("periodic command"))
//	sys.Run(10_000)
//
// Everything underneath is the cycle-accurate model: OpenChannel runs
// the admission tests and programs the chips through their control
// interfaces; Send hands the message to the source's rate regulator;
// delivery statistics come back through per-node sinks.
package core

import (
	"fmt"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
	"repro/internal/traffic"
)

// Options configures a System.
type Options struct {
	// Router overrides the chip configuration; zero value means the
	// paper's DefaultConfig.
	Router router.Config
	// Admission overrides the controller configuration; zero value
	// means admission.DefaultConfig.
	Admission admission.Config
	// admissionSet marks Admission as explicitly provided.
	admissionSet bool
	// Metrics attaches a telemetry registry: every router gets a
	// counter block named after its coordinate. Nil falls back to
	// DefaultMetrics; when that is nil too, the system runs without
	// telemetry (the hot paths pay only a nil check).
	Metrics *metrics.Registry
	// MetricsSampleEvery, when positive, registers a periodic sampler
	// snapshotting registry totals into System.Sampler.TS every N
	// cycles. Ignored without a registry.
	MetricsSampleEvery int64
	// Collector attaches a sharded lifecycle collector: every router
	// writes its events into a private per-node buffer, merged into one
	// deterministic timeline on demand (obs.Sharded). Nil falls back to
	// DefaultCollector; when that is nil too, lifecycle tracing is off.
	Collector *obs.Sharded
	// ChannelSLO attaches per-channel SLO accounting: latency and slack
	// histograms, miss and horizon-early counters for every channel
	// opened on the system (obs.SLO). Nil falls back to
	// DefaultChannelSLO. When a metrics registry is attached too, the
	// SLO snapshots ride its JSON/Prometheus/HTTP exports.
	ChannelSLO *obs.SLO
	// Forensics attaches the slack-attribution engine: every router
	// collects per-cycle blame counters, merged post-run into the blame
	// matrix and cause totals (obs.Forensics). Nil falls back to
	// DefaultForensics; when that is nil too, attribution is off and the
	// routers pay only a nil check per arbitration.
	Forensics *obs.Forensics
	// Recorder attaches the flight recorder: deadline misses, fault
	// drops and fault-attributed stalls trigger bounded per-node logs
	// with occupancy snapshots, dumpable post-run as the last K cycles
	// of the merged timeline (obs.Recorder). Nil falls back to
	// DefaultRecorder. A recorder without a Collector still counts and
	// logs triggers; only the timeline dump needs the collector.
	Recorder *obs.Recorder
	// Audit attaches an admission audit log: every Admit, Teardown and
	// Reroute decision the controller makes is recorded with its
	// contract, route, margin, and (on rejection) the typed explanation
	// (obs.AuditLog). Nil falls back to DefaultAudit; when that is nil
	// too, auditing is off.
	Audit *obs.AuditLog
	// Workers selects the kernel execution mode: 0 or 1 runs the
	// simulation sequentially (the default); n > 1 ticks the per-node
	// shards on n workers with bit-identical results; negative picks
	// GOMAXPROCS. Parallel systems should be Closed when done.
	//
	// Observability is parallel-safe under any worker count: each router
	// writes lifecycle events only into its own node's collector shard
	// during the compute phase, metrics and SLO accounting use
	// commutative atomics, and the collector merges shards into the
	// deterministic (cycle, node, seq) order at snapshot time — so
	// traces, counters, and histograms are identical across worker
	// counts. What remains unsafe is custom cross-node mutable state:
	// components touching more than one node must be registered through
	// Kernel.Register (see RegisterNode), which schedules them as
	// barriers, and a hand-installed router.OnLifecycle hook that writes
	// shared state must synchronize itself (prefer obs.Sharded).
	Workers int
	// Tile sets the spatial tile edge for the parallel execution mode:
	// node shards group into Tile×Tile blocks per kernel worker. 0 means
	// mesh.DefaultTileSize; 1 is per-node grouping. Results are
	// bit-identical for every tile size.
	Tile int
	// Epoch asks the parallel kernel to run workers for Epoch
	// consecutive cycles between barrier rendezvous, amortizing the
	// synchronization cost. 0 or 1 is the per-cycle default. The kernel
	// clamps the request to what the wiring makes legal — the minimum
	// cross-shard link latency — so results stay bit-identical at any
	// epoch; raising Router.LinkLatency is what buys longer epochs.
	Epoch int
}

// DefaultMetrics, when set, is attached by NewMesh to systems built
// without an explicit Options.Metrics — the hook the command-line
// tools use to observe experiments that construct Systems internally.
var DefaultMetrics *metrics.Registry

// DefaultCollector and DefaultChannelSLO are the same hook for the
// sharded lifecycle collector and the per-channel SLO tracker: set
// before building systems (rtbench's trace mode), and every System
// constructed without explicit options attaches to them. A collector
// shared across several systems keeps distinct shard indices per
// attached router.
var (
	DefaultCollector  *obs.Sharded
	DefaultChannelSLO *obs.SLO
	DefaultForensics  *obs.Forensics
	DefaultRecorder   *obs.Recorder
	DefaultAudit      *obs.AuditLog
)

// WithAdmission returns o with the admission configuration set.
func (o Options) WithAdmission(a admission.Config) Options {
	o.Admission = a
	o.admissionSet = true
	return o
}

// System is a running real-time network: mesh, per-node protocol
// software, and the admission controller.
type System struct {
	Net  *mesh.Network
	Adm  *admission.Controller
	cfg  router.Config
	pcrs map[mesh.Coord]*rtc.Pacer
	snks map[mesh.Coord]*traffic.Sink

	// Metrics is the attached telemetry registry, or nil.
	Metrics *metrics.Registry
	// Sampler is the periodic registry sampler, or nil; its TS field
	// holds the per-quantity time series after a run.
	Sampler *metrics.Sampler
	// Collector is the attached sharded lifecycle collector, or nil.
	Collector *obs.Sharded
	// SLO is the attached per-channel SLO tracker, or nil.
	SLO *obs.SLO
	// Forensics is the attached slack-attribution engine, or nil.
	Forensics *obs.Forensics
	// Recorder is the attached flight recorder, or nil.
	Recorder *obs.Recorder
	// Audit is the attached admission audit log, or nil.
	Audit *obs.AuditLog
}

// NewMesh builds a W×H system.
func NewMesh(w, h int, opts Options) (*System, error) {
	rcfg := opts.Router
	if rcfg.Slots == 0 { // zero value: use the paper's configuration
		rcfg = router.DefaultConfig()
	}
	acfg := opts.Admission
	if !opts.admissionSet && acfg == (admission.Config{}) {
		acfg = admission.DefaultConfig()
	}
	net, err := mesh.New(w, h, rcfg)
	if err != nil {
		return nil, err
	}
	sys := &System{
		Net:  net,
		cfg:  rcfg,
		pcrs: make(map[mesh.Coord]*rtc.Pacer),
		snks: make(map[mesh.Coord]*traffic.Sink),
	}
	// Pacers must tick before their routers so releases land the same
	// cycle; the mesh registered routers already, and the kernel runs
	// components in registration order, so pacer injections become
	// visible at the next cycle — one cycle of processor-interface
	// latency, which is fine. Sinks drain after the routers.
	reg := opts.Metrics
	if reg == nil {
		reg = DefaultMetrics
	}
	col := opts.Collector
	if col == nil {
		col = DefaultCollector
	}
	slo := opts.ChannelSLO
	if slo == nil {
		slo = DefaultChannelSLO
	}
	fns := opts.Forensics
	if fns == nil {
		fns = DefaultForensics
	}
	rec := opts.Recorder
	if rec == nil {
		rec = DefaultRecorder
	}
	for _, c := range net.Coords() {
		p, err := rtc.NewPacer(fmt.Sprintf("pacer%s", c), net.Router(c), acfg.SourceWindow)
		if err != nil {
			return nil, err
		}
		net.RegisterAt(c, p)
		sys.pcrs[c] = p
		s := traffic.NewSink(fmt.Sprintf("sink%s", c), net.Router(c))
		net.RegisterAt(c, s)
		sys.snks[c] = s
		if reg != nil {
			net.Router(c).AttachMetrics(reg.Router(c.String()))
		}
		// Shard indices follow Coords order (row-major), so merged
		// traces interleave nodes the same way in any execution mode.
		if col != nil {
			col.Attach(net.Router(c))
		}
		if slo != nil {
			slo.Attach(net.Router(c))
			name := c.String()
			s.OnTCLatency = func(conn uint8, latency int64) {
				slo.RecordLatency(name, conn, latency)
			}
		}
		// Forensics enables blame collection; the recorder chains after
		// everything else so triggers see the router's own counters only.
		if fns != nil {
			fns.Attach(net.Router(c))
		}
		if rec != nil {
			rec.Attach(net.Router(c))
		}
	}
	sys.Collector = col
	sys.SLO = slo
	sys.Forensics = fns
	sys.Recorder = rec
	if fns != nil && slo != nil {
		fns.UseSLO(slo)
	}
	if reg != nil {
		sys.Metrics = reg
		if slo != nil {
			reg.SetChannelSource(slo.Export)
		}
		if fns != nil {
			reg.SetBlameSource(fns.ExportBlame)
			fnsrc, recsrc := fns, rec
			reg.SetForensicsSource(func() *metrics.ForensicsSnapshot {
				fs := fnsrc.ExportStats()
				if fs != nil && recsrc != nil {
					fs.Triggers = recsrc.Count()
				}
				return fs
			})
		}
		if opts.MetricsSampleEvery > 0 {
			sys.Sampler = metrics.NewSampler("metrics-sampler", reg, opts.MetricsSampleEvery)
			net.Kernel.Register(sys.Sampler)
		}
	}
	adm, err := admission.New(net, acfg)
	if err != nil {
		return nil, err
	}
	sys.Adm = adm
	aud := opts.Audit
	if aud == nil {
		aud = DefaultAudit
	}
	if aud != nil {
		adm.AttachAudit(aud)
	}
	sys.Audit = aud
	if reg != nil {
		// The capacity ledger rides the same exports; Sealed returns nil
		// until the first Seal, so scrapes before any admission see no
		// capacity section rather than a half-built one. Decision counters
		// live in their own section because they move on rejections while
		// the sealed ledger must not.
		reg.SetCapacitySource(adm.Sealed)
		reg.SetAdmissionSource(adm.Stats)
	}
	if opts.Tile != 0 {
		net.SetTileSize(opts.Tile)
	}
	if opts.Workers != 0 && opts.Workers != 1 {
		net.SetWorkers(opts.Workers)
	}
	if opts.Epoch > 1 {
		net.Kernel.SetEpoch(int64(opts.Epoch))
	}
	return sys, nil
}

// MustNewMesh is NewMesh for known-good parameters.
func MustNewMesh(w, h int, opts Options) *System {
	s, err := NewMesh(w, h, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Channel is an open real-time channel bound to its source regulator.
type Channel struct {
	sys   *System
	adm   *admission.Channel
	paced *rtc.PacedChannel
	slo   *obs.ChannelStats
}

// sloHops converts an admission record's route into the SLO layer's
// router-name keyed hop and delivery endpoints.
func sloHops(ac *admission.Channel) (hops []obs.Hop, deliver []obs.Endpoint) {
	for _, h := range ac.HopIDs() {
		hops = append(hops, obs.Hop{Router: h.Node.String(), In: h.In, Out: h.Out})
	}
	for i, d := range ac.Dsts {
		deliver = append(deliver, obs.Endpoint{Router: d.String(), Conn: ac.DstConn[i]})
	}
	return hops, deliver
}

// sloInfo builds the SLO registration record for an admitted channel.
func sloInfo(ac *admission.Channel) obs.ChannelInfo {
	dst := ""
	for i, d := range ac.Dsts {
		if i > 0 {
			dst += "+"
		}
		dst += d.String()
	}
	hops, deliver := sloHops(ac)
	return obs.ChannelInfo{
		ID:         ac.ID,
		Name:       fmt.Sprintf("ch%d:%s->%s", ac.ID, ac.Src, dst),
		Src:        ac.Src.String(),
		Dst:        dst,
		BoundSlots: ac.Bound(),
		Hops:       hops,
		Deliver:    deliver,
	}
}

// OpenChannel admits and programs a real-time channel from src to the
// destinations (one for unicast, several for multicast).
func (s *System) OpenChannel(src mesh.Coord, dsts []mesh.Coord, spec rtc.Spec) (*Channel, error) {
	ac, err := s.Adm.Admit(src, dsts, spec)
	if err != nil {
		return nil, err
	}
	paced, err := s.pcrs[src].Channel(ac.SrcConn, spec, ac.SourceD())
	if err != nil {
		// Admission succeeded but the regulator rejected the spec: roll
		// back so resources are not leaked.
		_ = s.Adm.Teardown(ac)
		return nil, err
	}
	ch := &Channel{sys: s, adm: ac, paced: paced}
	if s.SLO != nil {
		ch.slo = s.SLO.Register(sloInfo(ac))
	}
	return ch, nil
}

// Send submits one message on the channel at the current time.
func (c *Channel) Send(payload []byte) error {
	nowSlot := timing.CyclesToSlot(c.sys.Net.Now(), packet.TCBytes)
	return c.paced.Submit(nowSlot, payload)
}

// Submit implements traffic.Sender against the channel's *current*
// regulator handle, so generators keep working across Reroute.
func (c *Channel) Submit(now timing.Slot, payload []byte) error {
	return c.paced.Submit(now, payload)
}

// Pending implements traffic.Sender.
func (c *Channel) Pending() int { return c.paced.Pending() }

// Paced exposes the source regulator handle (for traffic generators).
func (c *Channel) Paced() *rtc.PacedChannel { return c.paced }

// Admitted exposes the admission record (ids, per-hop delay).
func (c *Channel) Admitted() *admission.Channel { return c.adm }

// Spec returns the channel's traffic contract.
func (c *Channel) Spec() rtc.Spec { return c.adm.Spec }

// SLOStats exposes the channel's SLO accounting, or nil when the
// system runs without a ChannelSLO tracker.
func (c *Channel) SLOStats() *obs.ChannelStats { return c.slo }

// Close tears the channel down and releases its reservations; queued
// but uninjected messages are dropped.
func (c *Channel) Close() error {
	c.sys.pcrs[c.adm.Src].Remove(c.paced)
	if c.slo != nil {
		// Endpoints unbind so a later channel reusing the ids is not
		// misattributed; accumulated statistics stay exported.
		c.sys.SLO.Detach(c.slo)
	}
	return c.sys.Adm.Teardown(c.adm)
}

// FailLink severs a bidirectional mesh link and records the failure
// with the admission controller, so new channels route around it.
// Channels currently crossing the link keep flowing into the dead port
// (their packets drain and count as drops) until Reroute moves them.
func (s *System) FailLink(from mesh.Coord, port int) error {
	if err := s.Net.FailLink(from, port); err != nil {
		return err
	}
	return s.Adm.MarkFailed(from, port)
}

// RepairLink restores a previously failed link and clears the failure
// record with the admission controller. Channels that were rerouted
// around the outage keep their detour until Reroute is called again,
// which re-admits them on the primary path (failback).
func (s *System) RepairLink(from mesh.Coord, port int) error {
	if err := s.Net.RepairLink(from, port); err != nil {
		return err
	}
	return s.Adm.MarkRepaired(from, port)
}

// SealCapacity publishes the admission controller's current reservation
// ledger as an immutable capacity snapshot and returns it. Sealed
// snapshots ride the metrics exports (rt_capacity_*); call after any
// batch of control-plane changes so live scrapes see the new state.
func (s *System) SealCapacity() *metrics.CapacitySnapshot {
	return s.Adm.Seal()
}

// Reroute re-establishes the channel around failures and congestion:
// reservations are released and re-admitted (the disjoint YX order
// serves as fallback), and the source regulator is re-bound to the new
// connection id. After a repair the same call fails the channel back:
// admission tries the primary XY order first, so the channel returns to
// its original path. Messages already queued in the old regulator are
// dropped, as after any connection re-establishment. A failed reroute
// leaves the channel exactly as it was — reservations and source
// regulator intact — so traffic keeps flowing on the old route.
func (c *Channel) Reroute() error {
	nadm, err := c.sys.Adm.Reroute(c.adm)
	if err != nil {
		return err
	}
	paced, err := c.sys.pcrs[nadm.Src].Channel(nadm.SrcConn, nadm.Spec, nadm.SourceD())
	if err != nil {
		_ = c.sys.Adm.Teardown(nadm)
		return err
	}
	// Only now that the new admission and regulator both exist does the
	// old regulator binding go away; an error above leaves it untouched.
	c.sys.pcrs[c.adm.Src].Remove(c.paced)
	c.adm = nadm
	c.paced = paced
	if c.slo != nil {
		hops, deliver := sloHops(nadm)
		c.sys.SLO.Rebind(c.slo, hops, deliver)
	}
	return nil
}

// SendBestEffort injects one best-effort packet from src to dst.
func (s *System) SendBestEffort(src, dst mesh.Coord, payload []byte) error {
	r := s.Net.Router(src)
	if r == nil {
		return fmt.Errorf("core: source %s outside mesh", src)
	}
	if !s.Net.Contains(dst) {
		return fmt.Errorf("core: destination %s outside mesh", dst)
	}
	xo, yo := mesh.BEOffsets(src, dst)
	frame, err := packet.NewBE(xo, yo, payload)
	if err != nil {
		return err
	}
	r.InjectBE(frame)
	return nil
}

// RegisterNode registers per-node software (traffic generators,
// observers) into the kernel shard of the node at c, keeping the
// system parallelizable. Components that touch more than one node's
// state must use s.Net.Kernel.Register instead, which makes them
// scheduling barriers.
func (s *System) RegisterNode(c mesh.Coord, comp sim.Component) { s.Net.RegisterAt(c, comp) }

// Close releases the kernel's resident worker goroutines, if any. A
// closed system keeps working sequentially.
func (s *System) Close() { s.Net.Close() }

// Run advances the network by the given number of cycles.
func (s *System) Run(cycles int64) { s.Net.Run(cycles) }

// RunUntil steps until pred holds or the cycle budget runs out.
func (s *System) RunUntil(pred func() bool, budget int64) bool {
	return s.Net.Kernel.RunUntil(pred, budget)
}

// Now returns the current cycle.
func (s *System) Now() int64 { return s.Net.Now() }

// Sink returns the delivery sink of a node (latency statistics and
// delivery observers).
func (s *System) Sink(c mesh.Coord) *traffic.Sink { return s.snks[c] }

// Pacer returns the source regulator of a node.
func (s *System) Pacer(c mesh.Coord) *rtc.Pacer { return s.pcrs[c] }

// Router returns the chip at a node.
func (s *System) Router(c mesh.Coord) *router.Router { return s.Net.Router(c) }

// Summary aggregates network-wide counters.
type Summary struct {
	TCDelivered    int64
	TCMisses       int64
	TCDrops        int64
	TCCorrupt      int64 // checksum + framing drops at inputs (Integrity)
	BEDelivered    int64
	BENacks        int64 // corrupted best-effort flits nacked upstream
	BERetransmits  int64 // best-effort flits resent after a nack
	BEAborts       int64 // best-effort frames abandoned (retry budget or dead link)
	TCLatency      stats.Hist
	BELatency      stats.Hist
	SchedulerPeak  int
	CutThroughs    int64
	StageReplaced  int64
	BusUtilization float64 // granted chunks per cycle, network-wide mean
}

// ResetStats zeroes every router's hardware counters and every sink's
// latency statistics, the warmup idiom: run the network to steady
// state, reset, then measure.
func (s *System) ResetStats() {
	for _, c := range s.Net.Coords() {
		s.Net.Router(c).ResetStats()
		s.snks[c].Reset()
	}
	// The collector resets through each router's OnReset chain above;
	// the SLO tracker has no per-router hook and resets here.
	if s.SLO != nil {
		s.SLO.Reset()
	}
}

// Summarize collects a network-wide summary.
func (s *System) Summarize() Summary {
	var sum Summary
	cycles := s.Net.Now()
	var grants int64
	for _, c := range s.Net.Coords() {
		r := s.Net.Router(c)
		st := r.Stats
		sum.TCDelivered += st.TCDelivered
		sum.TCMisses += st.TCDeadlineMisses
		sum.TCDrops += st.TCDropsNoSlot + st.TCDropsNoRoute + st.TCDropsStaging + st.TCDeadPortDrops +
			st.TCCorruptDrops + st.TCFramingDrops
		sum.TCCorrupt += st.TCCorruptDrops + st.TCFramingDrops
		sum.BEDelivered += st.BEDelivered
		sum.BENacks += st.BEFlitNacks
		sum.BERetransmits += st.BEFlitRetransmits
		sum.BEAborts += st.BEFrameAborts + st.BETruncated
		sum.CutThroughs += st.TCCutThroughs
		sum.StageReplaced += st.TCStageReplaced
		grants += st.BusGrants
		if occ := r.Scheduler().Occupancy(); occ > sum.SchedulerPeak {
			sum.SchedulerPeak = occ
		}
		snk := s.snks[c]
		snk.TCLatency.CopyInto(&sum.TCLatency)
		snk.BELatency.CopyInto(&sum.BELatency)
	}
	if cycles > 0 && len(s.Net.Coords()) > 0 {
		sum.BusUtilization = float64(grants) / float64(cycles) / float64(len(s.Net.Coords()))
	}
	return sum
}
