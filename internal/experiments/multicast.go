package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// MulticastResult is the X4 study of the router's table-driven multicast
// (Section 3.3): one-to-k command distribution on a 4×4 mesh, checking
// that every branch receives every message inside the composed deadline
// and that the shared-leaf fan-out reclaims its memory.
type MulticastResult struct {
	Fanouts   []int
	MaxLat    []float64 // worst observed latency across branches, cycles
	Bound     []float64 // end-to-end budget in cycles
	Delivered []int64   // total deliveries (messages × branches)
	Expected  []int64
	Misses    int64
	SlotLeaks int
}

// RunMulticast sweeps the destination fan-out.
func RunMulticast(fanouts []int, messages int) (*MulticastResult, error) {
	if len(fanouts) == 0 || messages < 1 {
		return nil, fmt.Errorf("experiments: invalid multicast config")
	}
	// Destination sets by fan-out, all reachable from (0,0) on a 4×4
	// mesh.
	all := []mesh.Coord{
		{X: 3, Y: 0}, {X: 0, Y: 3}, {X: 3, Y: 3}, {X: 2, Y: 1},
		{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 2}, {X: 1, Y: 1},
	}
	res := &MulticastResult{}
	for _, k := range fanouts {
		if k < 1 || k > len(all) {
			return nil, fmt.Errorf("experiments: fan-out %d out of range [1,%d]", k, len(all))
		}
		sys, err := core.NewMesh(4, 4, core.Options{})
		if err != nil {
			return nil, err
		}
		src := mesh.Coord{X: 0, Y: 0}
		dsts := all[:k]
		spec := rtc.Spec{Imin: 16, Smax: packet.TCPayloadBytes, D: 98}
		ch, err := sys.OpenChannel(src, dsts, spec)
		if err != nil {
			return nil, err
		}
		var worst float64
		for _, d := range dsts {
			snk := sys.Sink(d)
			snk.OnTC = func(del router.DeliveredTC) {
				inj, _ := traffic.DecodeProbe(del.Payload[:])
				if inj > 0 && inj <= del.Cycle {
					if lat := float64(del.Cycle - inj); lat > worst {
						worst = lat
					}
				}
			}
		}
		for m := 0; m < messages; m++ {
			body := make([]byte, packet.TCPayloadBytes)
			traffic.EncodeProbe(body, sys.Now()+1, uint32(m))
			if err := ch.Send(body); err != nil {
				return nil, err
			}
			sys.Run(spec.Imin * packet.TCBytes)
		}
		sys.Run(spec.D * packet.TCBytes)
		sum := sys.Summarize()
		res.Fanouts = append(res.Fanouts, k)
		res.MaxLat = append(res.MaxLat, worst)
		res.Bound = append(res.Bound, missBound(spec.D))
		res.Delivered = append(res.Delivered, sum.TCDelivered)
		res.Expected = append(res.Expected, int64(messages*k))
		res.Misses += sum.TCMisses
		for _, c := range sys.Net.Coords() {
			r := sys.Router(c)
			if r.FreeSlots() != r.Config().Slots {
				res.SlotLeaks++
			}
		}
	}
	return res, nil
}

// Table renders the sweep.
func (r *MulticastResult) Table() *Table {
	t := &Table{
		Title:  "X4 — table-driven multicast on a 4x4 mesh (one-to-k command distribution)",
		Header: []string{"fan-out k", "delivered", "expected", "worst latency (cyc)", "budget (cyc)"},
	}
	for i, k := range r.Fanouts {
		t.AddRow(di(k), d(r.Delivered[i]), d(r.Expected[i]), f1(r.MaxLat[i]), f1(r.Bound[i]))
	}
	t.AddNote("one shared memory slot per router fans out to all branches; slot leaks: %d, misses: %d",
		r.SlotLeaks, r.Misses)
	return t
}
