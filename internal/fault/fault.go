// Package fault injects deterministic, seed-reproducible link faults
// into a mesh of real-time routers.
//
// The injector models transient wire errors — the kind the paper's
// router tolerates through reserved slack rather than retransmission
// for time-constrained traffic, and through link-level recovery for
// best-effort traffic. Two kinds are supported:
//
//   - Corrupt: a phit's data byte is garbled in place. The frame
//     checksum (time-constrained) or flit checksum (best-effort)
//     catches it at the next router.
//   - Lose: a phit vanishes from the wire. Time-constrained phits are
//     erased outright (the receiver's framing logic detects the gap);
//     best-effort phits are instead mangled beyond recognition, because
//     silently erasing one would shift the wormhole byte stream and
//     defeat flit-level detection.
//
// Faults arrive per directed link under a Gilbert-Elliott two-state
// process: a Good state that never errors and a Bad state that always
// does, with transition probabilities chosen so the steady-state error
// rate is Config.Rate and the mean error-burst length is Config.Burst
// phits. Burst ≤ 1 degenerates to independent (Bernoulli) errors.
//
// Determinism: each directed link owns a private PRNG seeded from
// (injector seed, receiving coordinate, receiving port), advanced once
// per valid phit sampled on that wire. Fault placement therefore
// depends only on the seed and the traffic itself — never on worker
// count or wall-clock — so faulted runs are bit-identical across
// kernel parallelism settings. The per-link state is touched only
// inside the receiving router's tick, which the parallel kernel already
// serializes per router, so no locking is needed.
//
// Detection requires router.Config.Integrity; without it, corrupted
// bytes pass silently and lost time-constrained phits desynchronize
// frame assembly. The scenario and experiment layers enable Integrity
// whenever they install an injector.
package fault

import (
	"fmt"
	"math/rand"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
)

// Kind selects what happens to a phit chosen by the error process.
type Kind int

const (
	// Corrupt garbles the phit's data byte in place.
	Corrupt Kind = iota
	// Lose removes the phit from the wire (time-constrained) or mangles
	// it beyond checksum recognition (best-effort).
	Lose
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Corrupt:
		return "corrupt"
	case Lose:
		return "lose"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes one fault process on a link.
type Config struct {
	Kind Kind
	// Rate is the steady-state per-phit fault probability, in (0, 1).
	Rate float64
	// Burst is the mean fault-burst length in phits. Values ≤ 1 give
	// independent per-phit faults.
	Burst float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Kind != Corrupt && c.Kind != Lose:
		return fmt.Errorf("fault: unknown kind %d", int(c.Kind))
	case c.Rate <= 0 || c.Rate >= 1:
		return fmt.Errorf("fault: rate %v outside (0,1)", c.Rate)
	case c.Burst < 0:
		return fmt.Errorf("fault: negative burst %v", c.Burst)
	}
	return nil
}

// Stats aggregates what the injector did across all links.
type Stats struct {
	CorruptedPhits int64
	LostPhits      int64
}

// linkState is the fault process of one directed link, owned by the
// receiving router's tick.
type linkState struct {
	cfg      Config
	rng      *rand.Rand
	bad      bool    // Gilbert-Elliott state
	pGB, pBG float64 // Good→Bad, Bad→Good transition probabilities
	stats    Stats
}

func newLinkState(cfg Config, seed int64) *linkState {
	ls := &linkState{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
	if cfg.Burst > 1 {
		ls.pBG = 1 / cfg.Burst
		ls.pGB = cfg.Rate * ls.pBG / (1 - cfg.Rate)
		if ls.pGB > 1 {
			ls.pGB = 1
		}
	}
	return ls
}

// step advances the error process by one phit and reports whether this
// phit is hit.
func (ls *linkState) step() bool {
	if ls.cfg.Burst <= 1 {
		return ls.rng.Float64() < ls.cfg.Rate
	}
	hit := ls.bad
	if ls.bad {
		if ls.rng.Float64() < ls.pBG {
			ls.bad = false
		}
	} else if ls.rng.Float64() < ls.pGB {
		ls.bad = true
	}
	return hit
}

// garble returns a guaranteed-nonzero XOR mask.
func (ls *linkState) garble() byte { return byte(1 + ls.rng.Intn(255)) }

// hitKind tells the hook which telemetry counter a fault touched.
type hitKind int

const (
	hitNone hitKind = iota
	hitCorrupt
	hitLost
)

// offer applies the fault process to one sampled phit, value in, value
// out so the hot sampling loop stays allocation-free. Returning
// ok=false erases the phit from the wire.
func (ls *linkState) offer(ph packet.Phit) (out packet.Phit, ok bool, hit hitKind) {
	if !ls.step() {
		return ph, true, hitNone
	}
	if ls.cfg.Kind == Lose {
		ls.stats.LostPhits++
		if ph.VC == packet.VCTime {
			return ph, false, hitLost
		}
		// Best-effort loss: mangle instead of erase, so the byte stream
		// keeps its cadence and the flit checksum rejects the wreck.
		ph.Data ^= ls.garble()
		ph.SideValid = false
		return ph, true, hitLost
	}
	ls.stats.CorruptedPhits++
	ph.Data ^= ls.garble()
	return ph, true, hitCorrupt
}

// Injector owns the fault processes of a mesh and installs them through
// each router's LinkFault hook.
type Injector struct {
	seed  int64
	nodes map[mesh.Coord]*[router.NumLinks]*linkState
	// retired accumulates the counters of cleared fault processes so
	// Stats stays monotonic across arm/clear cycles.
	retired Stats
}

// New creates an injector whose fault placement derives entirely from
// seed.
func New(seed int64) *Injector {
	return &Injector{seed: seed, nodes: make(map[mesh.Coord]*[router.NumLinks]*linkState)}
}

// splitmix is SplitMix64's output function, used to spread the
// (seed, coordinate, port) tuple into independent link seeds.
func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) linkSeed(rx mesh.Coord, rxPort int) int64 {
	h := splitmix(uint64(in.seed))
	h = splitmix(h ^ uint64(uint32(rx.X))<<32 ^ uint64(uint32(rx.Y)))
	h = splitmix(h ^ uint64(rxPort))
	return int64(h)
}

func reversePort(p int) int {
	switch p {
	case router.PortXPlus:
		return router.PortXMinus
	case router.PortXMinus:
		return router.PortXPlus
	case router.PortYPlus:
		return router.PortYMinus
	default:
		return router.PortYPlus
	}
}

// InjectLink arms the fault process on the bidirectional link leaving
// from through port (both directions, independent processes), matching
// the granularity of mesh.FailLink.
func (in *Injector) InjectLink(n *mesh.Network, from mesh.Coord, port int, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if port < 0 || port >= router.NumLinks {
		return fmt.Errorf("fault: port %d is not a link", port)
	}
	to := from.Add(port)
	if n.Router(from) == nil || n.Router(to) == nil {
		return fmt.Errorf("fault: link %s port %d has no neighbour", from, port)
	}
	// from→to traffic is sampled at to's reverse port; to→from at from's
	// forward port.
	in.arm(n, to, reversePort(port), cfg)
	in.arm(n, from, port, cfg)
	return nil
}

// InjectAll arms every wired link in the mesh with the same fault
// configuration (each direction still gets an independent process).
func (in *Injector) InjectAll(n *mesh.Network, cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	for _, c := range n.Coords() {
		for port := 0; port < router.NumLinks; port++ {
			if n.Contains(c.Add(port)) {
				in.arm(n, c, port, cfg)
			}
		}
	}
	return nil
}

// arm installs (or replaces) the fault process for the directed link
// arriving at rx on rxPort, hooking the router on first use.
func (in *Injector) arm(n *mesh.Network, rx mesh.Coord, rxPort int, cfg Config) {
	states := in.nodes[rx]
	if states == nil {
		states = new([router.NumLinks]*linkState)
		in.nodes[rx] = states
		r := n.Router(rx)
		r.LinkFault = func(port int, ph packet.Phit) (packet.Phit, bool) {
			ls := states[port]
			if ls == nil {
				return ph, true
			}
			out, ok, hit := ls.offer(ph)
			if hit != hitNone {
				if met := r.Metrics(); met != nil {
					if hit == hitLost {
						met.FaultLostPhits.Inc()
					} else {
						met.FaultCorruptPhits.Inc()
					}
				}
			}
			return out, ok
		}
	}
	states[rxPort] = newLinkState(cfg, in.linkSeed(rx, rxPort))
}

// ClearLink disarms the fault processes on both directions of the link
// leaving from through port. Clearing a link that was never armed is a
// no-op; accumulated counters survive into Stats.
func (in *Injector) ClearLink(from mesh.Coord, port int) {
	in.clear(from.Add(port), reversePort(port))
	in.clear(from, port)
}

func (in *Injector) clear(rx mesh.Coord, rxPort int) {
	states := in.nodes[rx]
	if states == nil || states[rxPort] == nil {
		return
	}
	in.retired.CorruptedPhits += states[rxPort].stats.CorruptedPhits
	in.retired.LostPhits += states[rxPort].stats.LostPhits
	states[rxPort] = nil
}

// Stats sums the per-link fault counters. Call it only while the
// kernel is stopped.
func (in *Injector) Stats() Stats {
	s := in.retired
	for _, states := range in.nodes {
		for _, ls := range states {
			if ls != nil {
				s.CorruptedPhits += ls.stats.CorruptedPhits
				s.LostPhits += ls.stats.LostPhits
			}
		}
	}
	return s
}
