package core

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// loadedRun is everything observable about one simulation run: the
// per-router hardware counters, every packet delivered at every node in
// delivery order, the telemetry registry totals, the merged lifecycle
// trace, the per-channel SLO snapshots, and the epoch length the kernel
// actually settled on.
type loadedRun struct {
	Stats      []router.Stats
	Deliveries [][]string
	Snapshot   metrics.Snapshot
	Trace      string
	Channels   []metrics.ChannelSnapshot
	Epoch      int64
}

// loadedOpts selects the execution mode for one runLoaded call. The
// zero value is the sequential per-cycle run on the paper's single-cycle
// wires.
type loadedOpts struct {
	workers   int
	tile      int
	epoch     int
	linkLat   int // router.Config.LinkLatency; 0 = the 1-cycle default
	forcePool bool
	cycles    int64
}

// runLoaded drives a loaded 8×8 mesh — unicast and multicast real-time
// channels crossing the network plus a seeded best-effort source on
// every node — under the given execution mode and records the complete
// observable outcome.
func runLoaded(t *testing.T, o loadedOpts) loadedRun {
	t.Helper()
	reg := metrics.NewRegistry()
	col := obs.NewSharded(4096)
	slo := obs.NewSLO()
	rcfg := router.DefaultConfig()
	rcfg.LinkLatency = o.linkLat
	sys, err := NewMesh(8, 8, Options{
		Router: rcfg, Workers: o.workers, Tile: o.tile, Epoch: o.epoch,
		Metrics: reg, Collector: col, ChannelSLO: slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sys.Net.Kernel.ForcePool(o.forcePool)

	spec := rtc.Spec{Imin: 8, Smax: 18, D: 120}
	routes := [][]mesh.Coord{
		{{X: 0, Y: 0}, {X: 7, Y: 7}},
		{{X: 7, Y: 0}, {X: 0, Y: 7}},
		{{X: 3, Y: 2}, {X: 3, Y: 6}},
		{{X: 6, Y: 5}, {X: 1, Y: 5}},
		{{X: 2, Y: 7}, {X: 5, Y: 0}},
		{{X: 4, Y: 4}, {X: 0, Y: 4}, {X: 4, Y: 0}}, // multicast fan-out
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], rt[1:], spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, 18)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	coords := sys.Net.Coords()
	for i, c := range coords {
		be, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, c,
			traffic.UniformDst(sys.Net, c), traffic.UniformSize(16, 120), 0.3, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(c, be)
	}

	// Per-node delivery logs: each sink appends only to its own slot, so
	// the recording itself is race-free under parallel execution.
	deliv := make([][]string, len(coords))
	for i, c := range coords {
		i, snk := i, sys.Sink(c)
		snk.OnTC = func(d router.DeliveredTC) {
			deliv[i] = append(deliv[i], fmt.Sprintf("tc c%d s%d @%d %x", d.Conn, d.Stamp, d.Cycle, d.Payload))
		}
		snk.OnBE = func(d router.DeliveredBE) {
			deliv[i] = append(deliv[i], fmt.Sprintf("be @%d %x", d.Cycle, d.Payload))
		}
	}

	sys.Run(o.cycles)

	var dump strings.Builder
	col.Dump(&dump)
	run := loadedRun{
		Deliveries: deliv,
		Snapshot:   reg.Snapshot(),
		Trace:      dump.String(),
		Channels:   slo.Export(),
		Epoch:      sys.Net.Kernel.EffectiveEpoch(),
	}
	for _, c := range coords {
		run.Stats = append(run.Stats, sys.Router(c).Stats)
	}
	return run
}

// compareLoaded fails the test unless got reproduces want in every
// observable dimension. label names the run under test in messages.
func compareLoaded(t *testing.T, want, got loadedRun, label string) {
	t.Helper()
	if !reflect.DeepEqual(want.Stats, got.Stats) {
		for i := range want.Stats {
			if want.Stats[i] != got.Stats[i] {
				t.Errorf("router %d: reference %+v\n%s %+v", i, want.Stats[i], label, got.Stats[i])
			}
		}
		t.Fatalf("router stats diverged (%s)", label)
	}
	for i := range want.Deliveries {
		s, p := want.Deliveries[i], got.Deliveries[i]
		if len(s) != len(p) {
			t.Fatalf("node %d: %d vs %d deliveries (%s)", i, len(s), len(p), label)
		}
		for j := range s {
			if s[j] != p[j] {
				t.Fatalf("node %d delivery %d: %q vs %q (%s)", i, j, s[j], p[j], label)
			}
		}
	}
	if !reflect.DeepEqual(want.Snapshot, got.Snapshot) {
		t.Fatalf("metrics snapshots diverged (%s)", label)
	}
	if want.Trace != got.Trace {
		t.Fatalf("merged lifecycle traces diverged (%s)", label)
	}
	if !reflect.DeepEqual(want.Channels, got.Channels) {
		t.Fatalf("per-channel SLO snapshots diverged (%s)", label)
	}
}

// checkLoadedVacuity guards against a vacuous pass: the workload must
// actually have exercised both traffic classes end to end, produced a
// non-empty merged trace, and recorded latency samples on every channel.
func checkLoadedVacuity(t *testing.T, run loadedRun) {
	t.Helper()
	var tc, be int64
	for _, st := range run.Stats {
		tc += st.TCDelivered
		be += st.BEDelivered
	}
	if tc == 0 || be == 0 {
		t.Fatalf("degenerate workload: tc=%d be=%d deliveries", tc, be)
	}
	if run.Trace == "" {
		t.Fatal("degenerate workload: empty merged trace")
	}
	if len(run.Channels) == 0 {
		t.Fatal("degenerate workload: no SLO channels registered")
	}
	for _, ch := range run.Channels {
		if ch.Delivered == 0 || ch.Latency.Count == 0 || ch.Slack.Count == 0 {
			t.Fatalf("channel %q recorded no SLO samples: %+v", ch.Name, ch)
		}
	}
}

// TestParallelEquivalence is the parallel kernel's contract: a loaded
// 8×8 mesh produces bit-identical router counters, delivered-packet
// sequences, and telemetry totals whether the kernel runs on one worker
// or several.
func TestParallelEquivalence(t *testing.T) {
	// Short mode trims the run but must stay long enough for the
	// vacuity guard below: the first time-constrained deliveries land
	// only after the channels' end-to-end pipelines fill (D=120 slots),
	// so anything much below ~3000 cycles sees zero TC traffic.
	cycles := int64(6000)
	if testing.Short() {
		cycles = 3000
	}
	seq := runLoaded(t, loadedOpts{workers: 1, cycles: cycles})
	par := runLoaded(t, loadedOpts{workers: 4, cycles: cycles})
	compareLoaded(t, seq, par, "parallel")
	checkLoadedVacuity(t, seq)

	// The tile size only regroups the plan; every choice must reproduce
	// the same run, through the real pooled rendezvous path.
	for _, tile := range []int{1, 2, 4} {
		tile := tile
		t.Run(fmt.Sprintf("tile%d", tile), func(t *testing.T) {
			tiled := runLoaded(t, loadedOpts{workers: 4, tile: tile, forcePool: true, cycles: cycles})
			compareLoaded(t, seq, tiled, fmt.Sprintf("tile%d", tile))
		})
	}
}

// TestEpochEquivalenceLoaded extends the parallel contract to the
// epoch-synchronized mode: with 4-cycle wires (the minimum cross-shard
// latency that legalizes epochs up to 4), the same loaded mesh must be
// byte-identical across epoch lengths 1, 2, and 4 at several worker
// counts — and the kernel must actually have run at the requested epoch,
// not silently clamped it away.
func TestEpochEquivalenceLoaded(t *testing.T) {
	const linkLat = 4
	cycles := int64(6000)
	if testing.Short() {
		cycles = 3000
	}
	// Longer wires change the behavior (arrivals shift), so the epoch
	// matrix needs its own sequential reference at the same latency.
	seq := runLoaded(t, loadedOpts{workers: 1, linkLat: linkLat, cycles: cycles})
	checkLoadedVacuity(t, seq)

	for _, workers := range []int{2, 4} {
		for _, epoch := range []int{1, 2, 4} {
			workers, epoch := workers, epoch
			t.Run(fmt.Sprintf("w%d-k%d", workers, epoch), func(t *testing.T) {
				run := runLoaded(t, loadedOpts{
					workers: workers, epoch: epoch, linkLat: linkLat,
					forcePool: true, cycles: cycles,
				})
				if epoch > 1 && run.Epoch != int64(epoch) {
					t.Fatalf("kernel clamped epoch to %d, want %d — the matrix leg is vacuous", run.Epoch, epoch)
				}
				compareLoaded(t, seq, run, fmt.Sprintf("w%d-k%d", workers, epoch))
			})
		}
	}
}

// TestEpochClampLoaded pins the legality clamp at the system level: on
// the paper's single-cycle wires a requested epoch of 4 must fall back
// to per-cycle execution (1-cycle cross-shard pipes cannot legally hide
// multi-cycle batches) and still reproduce the sequential run exactly.
func TestEpochClampLoaded(t *testing.T) {
	cycles := int64(3000)
	seq := runLoaded(t, loadedOpts{workers: 1, cycles: cycles})
	run := runLoaded(t, loadedOpts{workers: 4, epoch: 4, forcePool: true, cycles: cycles})
	if run.Epoch != 1 {
		t.Fatalf("effective epoch %d on 1-cycle wires, want clamp to 1", run.Epoch)
	}
	compareLoaded(t, seq, run, "clamped-epoch")
}

// TestParallelTracingRace is the observability side of the parallel
// contract, meant to run under the race detector: with lifecycle
// tracing, telemetry counters, and channel SLO histograms all attached,
// the kernel runs on every available core and the merged event stream
// still comes out byte-identical to the sequential run's. The sharded
// collector makes this safe — each router writes only its own node's
// buffer during the compute phase, the histograms are atomic, and the
// merge is deterministic in (cycle, node, seq).
func TestParallelTracingRace(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	cycles := int64(4000)
	if testing.Short() {
		cycles = 3000
	}
	// ForcePool makes the parallel run take the real worker-pool
	// rendezvous even on a single-CPU machine, so the race detector
	// always sees the cross-goroutine path.
	seq := runLoaded(t, loadedOpts{workers: 1, cycles: cycles})
	par := runLoaded(t, loadedOpts{workers: workers, forcePool: true, cycles: cycles})

	if seq.Trace == "" {
		t.Fatal("degenerate workload: empty merged trace")
	}
	if seq.Trace != par.Trace {
		t.Fatalf("merged traces diverged between 1 and %d workers", workers)
	}
	if !reflect.DeepEqual(seq.Channels, par.Channels) {
		t.Fatalf("SLO snapshots diverged between 1 and %d workers", workers)
	}
	if !reflect.DeepEqual(seq.Snapshot, par.Snapshot) {
		t.Fatalf("metrics snapshots diverged between 1 and %d workers", workers)
	}

	// The epoch path batches the compute phase differently (per-tile
	// inner loops, no per-cycle barrier), so it gets its own race leg
	// on 4-cycle wires where epoch 4 is legal.
	epoch := runLoaded(t, loadedOpts{workers: workers, epoch: 4, linkLat: 4, forcePool: true, cycles: cycles})
	seqLat := runLoaded(t, loadedOpts{workers: 1, linkLat: 4, cycles: cycles})
	if seqLat.Trace != epoch.Trace {
		t.Fatalf("merged traces diverged between sequential and epoch-4 runs")
	}
	if !reflect.DeepEqual(seqLat.Snapshot, epoch.Snapshot) {
		t.Fatalf("metrics snapshots diverged between sequential and epoch-4 runs")
	}
}
