package traffic

import (
	"bytes"
	"testing"

	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
)

func deliveredPkt(conn, stamp uint8, fill byte, cycle int64) router.DeliveredTC {
	d := router.DeliveredTC{Conn: conn, Stamp: stamp, Cycle: cycle}
	for i := range d.Payload {
		d.Payload[i] = fill
	}
	return d
}

func TestReassemblerSinglePacket(t *testing.T) {
	ra := NewReassembler()
	if err := ra.Expect(5, rtc.Spec{Imin: 8, Smax: 18, D: 40}); err != nil {
		t.Fatal(err)
	}
	m, done := ra.Push(deliveredPkt(5, 9, 0xAA, 100))
	if !done {
		t.Fatal("single-packet message not complete")
	}
	if m.Conn != 5 || m.Stamp != 9 || m.Cycle != 100 || len(m.Payload) != 18 {
		t.Errorf("message %+v", m)
	}
	if ra.Messages != 1 || ra.Pending() != 0 {
		t.Errorf("counts: %d pending %d", ra.Messages, ra.Pending())
	}
}

func TestReassemblerMultiPacket(t *testing.T) {
	ra := NewReassembler()
	spec := rtc.Spec{Imin: 8, Smax: 50, D: 40} // 3 packets
	if err := ra.Expect(7, spec); err != nil {
		t.Fatal(err)
	}
	var completed []Message
	ra.Complete = func(m Message) { completed = append(completed, m) }
	// Interleave two messages (stamps 10 and 20).
	if _, done := ra.Push(deliveredPkt(7, 10, 1, 100)); done {
		t.Fatal("premature completion")
	}
	if _, done := ra.Push(deliveredPkt(7, 20, 2, 110)); done {
		t.Fatal("premature completion")
	}
	if ra.Pending() != 2 {
		t.Fatalf("pending %d, want 2", ra.Pending())
	}
	ra.Push(deliveredPkt(7, 10, 1, 120))
	ra.Push(deliveredPkt(7, 20, 2, 130))
	m1, done := ra.Push(deliveredPkt(7, 10, 1, 140))
	if !done || m1.Stamp != 10 || m1.Cycle != 140 {
		t.Fatalf("message 1: %+v done=%v", m1, done)
	}
	if len(m1.Payload) != 54 || !bytes.Equal(m1.Payload, bytes.Repeat([]byte{1}, 54)) {
		t.Error("message 1 payload wrong")
	}
	m2, done := ra.Push(deliveredPkt(7, 20, 2, 150))
	if !done || m2.Stamp != 20 {
		t.Fatalf("message 2: %+v done=%v", m2, done)
	}
	if len(completed) != 2 {
		t.Errorf("Complete called %d times", len(completed))
	}
	if ra.Pending() != 0 {
		t.Error("partials left over")
	}
}

func TestReassemblerUnknownConnIgnored(t *testing.T) {
	ra := NewReassembler()
	if _, done := ra.Push(deliveredPkt(9, 0, 0, 1)); done {
		t.Error("unknown conn completed a message")
	}
	if ra.Messages != 0 {
		t.Error("unknown conn counted")
	}
}

func TestReassemblerFlush(t *testing.T) {
	ra := NewReassembler()
	if err := ra.Expect(1, rtc.Spec{Imin: 8, Smax: 36, D: 40}); err != nil {
		t.Fatal(err)
	}
	ra.Push(deliveredPkt(1, 3, 0, 10))
	if n := ra.Flush(); n != 1 {
		t.Errorf("Flush = %d, want 1", n)
	}
	if ra.Dropped != 1 || ra.Pending() != 0 {
		t.Errorf("dropped=%d pending=%d", ra.Dropped, ra.Pending())
	}
}

// TestReassemblerEndToEnd drives two-packet messages through a live
// router and reassembles at the sink.
func TestReassemblerEndToEnd(t *testing.T) {
	k := sim.NewKernel()
	r := router.MustNew("A", router.DefaultConfig())
	p, err := rtc.NewPacer("pacer", r, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec := rtc.Spec{Imin: 8, Smax: 36, D: 24}
	if err := r.SetConnection(1, 9, uint8(spec.D), 1<<router.PortLocal); err != nil {
		t.Fatal(err)
	}
	ch, err := p.Channel(1, spec, spec.D)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink("sink", r)
	ra := NewReassembler()
	if err := ra.Expect(9, spec); err != nil {
		t.Fatal(err)
	}
	var got []Message
	ra.Complete = func(m Message) { got = append(got, m) }
	AttachReassembler(sink, ra)
	k.Register(p)
	k.Register(r)
	k.Register(sink)

	for i := 0; i < 4; i++ {
		body := bytes.Repeat([]byte{byte(i + 1)}, 36)
		if err := ch.Submit(0, body); err != nil {
			t.Fatal(err)
		}
	}
	k.RunUntil(func() bool { return ra.Messages >= 4 }, 40000)
	if len(got) != 4 {
		t.Fatalf("reassembled %d/4 messages", len(got))
	}
	for i, m := range got {
		if !bytes.Equal(m.Payload, bytes.Repeat([]byte{byte(i + 1)}, 36)) {
			t.Errorf("message %d payload corrupted", i)
		}
	}
}
