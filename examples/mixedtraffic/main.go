// Mixedtraffic reproduces Figure 7 of the paper interactively: three
// backlogged real-time connections with reservations 1/4, 1/8 and 1/16
// of a link share it with backlogged best-effort traffic. The router
// serves each connection exactly at its reserved rate — packets become
// eligible only at their logical arrival times — and best-effort flits
// soak up every remaining cycle.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	cfg := experiments.DefaultFig7()
	cfg.Cycles = 12000
	res, err := experiments.RunFig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res.Table().Fprint(logWriter{})
	fmt.Println("cumulative service (bytes) against time (cycles):")
	fmt.Println(res.Chart())

	for i := range cfg.Imins {
		ratio := res.TCTotal[i] / res.Expected[i]
		if ratio < 0.9 || ratio > 1.1 {
			log.Fatalf("connection %d served at %.2f of its reservation", i+1, ratio)
		}
	}
	if res.Misses != 0 {
		log.Fatalf("%d deadline misses", res.Misses)
	}
	fmt.Println("ok: reservation-proportional service with zero misses, as in Figure 7")
}

// logWriter writes table output through fmt for consistency with the
// chart below it.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
