package obs

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/router"
)

// Recorder is the flight recorder: it watches each node's lifecycle
// stream for trouble — deadline misses, best-effort aborts, fault drops
// — and records a bounded per-node log of trigger descriptors, each
// with a queue/occupancy snapshot of the router at the moment of the
// trigger. After the run it can dump the last K cycles leading up to
// the final trigger from the merged timeline (Perfetto JSON or JSONL),
// giving a post-mortem view of exactly how the miss developed.
//
// Like the obs shards, each node's trigger log has a single writer (the
// owning router's tick) and is read only after the kernel barrier; the
// trigger count alone is atomic so a live metrics scrape can report it.
type Recorder struct {
	window  int64
	maxTrig int
	nodes   []*recNode
	count   atomic.Int64
	kinds   [numTrigKinds]atomic.Int64
}

// Trigger kinds.
const (
	trigHopMiss = iota
	trigDeadlineMiss
	trigFaultDrop
	trigFaultRetransmit
	numTrigKinds
)

var trigKindNames = [numTrigKinds]string{
	"hop_miss", "deadline_miss", "fault_drop", "fault_retransmit",
}

// Trigger describes one recorded trouble event and the router's state
// when it fired.
type Trigger struct {
	Cycle  int64  `json:"cycle"`
	Node   int    `json:"node"`
	Router string `json:"router"`
	// Kind is the trigger class: hop_miss (transmission started past the
	// local deadline), deadline_miss (delivery with negative end-to-end
	// slack), fault_drop (integrity or framing discard, truncated or
	// aborted best-effort frame), or fault_retransmit (a stall episode
	// attributed to fault recovery).
	Kind   string `json:"kind"`
	Conn   uint8  `json:"conn,omitempty"`
	Slack  int64  `json:"slack,omitempty"`
	Reason string `json:"reason,omitempty"`
	// Router occupancy at the trigger: free packet-memory slots,
	// scheduler leaves in use, and packets queued at the injection port.
	FreeSlots     int `json:"free_slots"`
	SchedOccupied int `json:"sched_occupied"`
	InjectBacklog int `json:"inject_backlog"`
}

// recNode is one node's bounded trigger log: newest-wins ring, single
// writer.
type recNode struct {
	r    *router.Router
	node int
	buf  []Trigger
	next int
}

func (n *recNode) record(t Trigger, capPer int) {
	if len(n.buf) < capPer {
		n.buf = append(n.buf, t)
		n.next = len(n.buf) % capPer
	} else {
		n.buf[n.next] = t
		n.next = (n.next + 1) % capPer
	}
}

func (n *recNode) triggers() []Trigger {
	out := make([]Trigger, 0, len(n.buf))
	out = append(out, n.buf[n.next:]...)
	out = append(out, n.buf[:n.next]...)
	return out
}

// DefaultRecorderWindow is the dump window in cycles when the caller
// passes a non-positive value; DefaultRecorderTriggers the per-node
// trigger-log depth.
const (
	DefaultRecorderWindow   = 4096
	DefaultRecorderTriggers = 64
)

// NewRecorder returns a recorder dumping the windowCycles cycles before
// each trigger and keeping the last maxTriggersPerNode trigger
// descriptors per node (defaults applied for non-positive values).
func NewRecorder(windowCycles int64, maxTriggersPerNode int) *Recorder {
	if windowCycles <= 0 {
		windowCycles = DefaultRecorderWindow
	}
	if maxTriggersPerNode <= 0 {
		maxTriggersPerNode = DefaultRecorderTriggers
	}
	return &Recorder{window: windowCycles, maxTrig: maxTriggersPerNode}
}

// Window returns the dump window in cycles.
func (rec *Recorder) Window() int64 { return rec.window }

// Attach chains trigger detection into r's lifecycle hook. Attach in
// node order, after any collector (hook chains run newest-first, and
// the recorder only reads the event plus the router's own counters, so
// relative order does not change what is recorded). Resetting the
// router clears the node's trigger log.
func (rec *Recorder) Attach(r *router.Router) {
	n := &recNode{r: r, node: len(rec.nodes)}
	rec.nodes = append(rec.nodes, n)
	prev := r.OnLifecycle
	r.OnLifecycle = func(ev router.LifecycleEvent) {
		if kind, ok := classify(ev); ok {
			t := Trigger{
				Cycle: ev.Cycle, Node: n.node, Router: ev.Router,
				Kind: trigKindNames[kind], Conn: ev.InConn, Slack: ev.Slack,
				FreeSlots:     r.FreeSlots(),
				SchedOccupied: r.Scheduler().Occupancy(),
				InjectBacklog: r.TCInjectBacklog(),
			}
			if ev.Kind == router.EvDrop {
				t.Reason = ev.Reason.String()
			}
			n.record(t, rec.maxTrig)
			rec.count.Add(1)
			rec.kinds[kind].Add(1)
		}
		if prev != nil {
			prev(ev)
		}
	}
	prevReset := r.OnReset
	r.OnReset = func() {
		n.buf = n.buf[:0]
		n.next = 0
		if prevReset != nil {
			prevReset()
		}
	}
}

// classify maps a lifecycle event to a trigger kind, or ok=false.
func classify(ev router.LifecycleEvent) (int, bool) {
	switch ev.Kind {
	case router.EvTransmit:
		if !ev.BE && ev.Missed {
			return trigHopMiss, true
		}
	case router.EvDeliver:
		if !ev.BE && ev.Slack < 0 {
			return trigDeadlineMiss, true
		}
	case router.EvDrop:
		switch ev.Reason {
		case metrics.DropTCCorrupt, metrics.DropTCFraming,
			metrics.DropBEAborted, metrics.DropBETruncated:
			return trigFaultDrop, true
		}
	case router.EvStall:
		if ev.Cause == router.CauseFaultRetransmit {
			return trigFaultRetransmit, true
		}
	}
	return 0, false
}

// Count returns how many triggers fired (including ones evicted from
// full per-node logs). Safe to read concurrently with the run.
func (rec *Recorder) Count() int64 { return rec.count.Load() }

// CountKind returns how many triggers of the named kind fired
// (hop_miss, deadline_miss, fault_drop, fault_retransmit), evicted ones
// included; unknown names return 0. The hop_miss count moves in
// lockstep with the hardware DeadlineMisses counter — the forensics
// experiment cross-checks them.
func (rec *Recorder) CountKind(kind string) int64 {
	for i, n := range trigKindNames {
		if n == kind {
			return rec.kinds[i].Load()
		}
	}
	return 0
}

// Triggers returns the retained trigger descriptors merged across
// nodes in (Cycle, Node) order — deterministic at any worker count.
func (rec *Recorder) Triggers() []Trigger {
	var out []Trigger
	for _, n := range rec.nodes {
		out = append(out, n.triggers()...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		return a.Node < b.Node
	})
	return out
}

// Last returns the latest retained trigger, or ok=false when none
// fired.
func (rec *Recorder) Last() (Trigger, bool) {
	ts := rec.Triggers()
	if len(ts) == 0 {
		return Trigger{}, false
	}
	return ts[len(ts)-1], true
}

// windowEvents filters the merged timeline to the recorder's window
// ending at the last trigger: cycles [last.Cycle-window, last.Cycle].
func (rec *Recorder) windowEvents(events []Event) ([]Event, Trigger, bool) {
	last, ok := rec.Last()
	if !ok {
		return nil, Trigger{}, false
	}
	lo := last.Cycle - rec.window
	var out []Event
	for _, e := range events {
		if e.Cycle >= lo && e.Cycle <= last.Cycle {
			out = append(out, e)
		}
	}
	return out, last, true
}

// DumpChrome writes the trigger window as Chrome trace-event JSON
// (Perfetto-loadable): the merged events of the last Window cycles up
// to the final trigger, plus one instant per retained trigger in the
// window carrying its occupancy snapshot. Returns false without
// writing when no trigger fired.
func (rec *Recorder) DumpChrome(w io.Writer, c *Sharded, slo *SLO) (bool, error) {
	events, _, ok := rec.windowEvents(c.Merged())
	if !ok {
		return false, nil
	}
	return true, WriteChromeEvents(w, c.NodeNames(), events, slo)
}

// DumpJSONL writes the trigger window as JSONL: first one line per
// retained trigger in the window (objects with "trigger" kind and the
// occupancy snapshot), then the merged events of the window. Returns
// false without writing when no trigger fired.
func (rec *Recorder) DumpJSONL(w io.Writer, c *Sharded) (bool, error) {
	events, last, ok := rec.windowEvents(c.Merged())
	if !ok {
		return false, nil
	}
	for _, t := range rec.Triggers() {
		if t.Cycle < last.Cycle-rec.window || t.Cycle > last.Cycle {
			continue
		}
		if _, err := fmt.Fprintf(w,
			`{"kind":"trigger","cycle":%d,"node":%d,"router":%q,"trigger":%q,"conn":%d,"slack":%d,"reason":%q,"free_slots":%d,"sched_occupied":%d,"inject_backlog":%d}`+"\n",
			t.Cycle, t.Node, t.Router, t.Kind, t.Conn, t.Slack, t.Reason,
			t.FreeSlots, t.SchedOccupied, t.InjectBacklog); err != nil {
			return true, err
		}
	}
	return true, WriteJSONLEvents(w, events)
}

// Summary writes a one-screen human-readable digest: trigger totals by
// kind and the retained trigger log in merged order.
func (rec *Recorder) Summary(w io.Writer) {
	ts := rec.Triggers()
	byKind := make(map[string]int)
	for _, t := range ts {
		byKind[t.Kind]++
	}
	fmt.Fprintf(w, "flight recorder: %d triggers (%d retained)\n", rec.Count(), len(ts))
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "    %-18s %6d\n", k, byKind[k])
	}
	for _, t := range ts {
		extra := ""
		if t.Reason != "" {
			extra = " reason=" + t.Reason
		}
		fmt.Fprintf(w, "%10d  %-8s %-16s conn=%d slack=%d free=%d sched=%d inj=%d%s\n",
			t.Cycle, t.Router, t.Kind, t.Conn, t.Slack,
			t.FreeSlots, t.SchedOccupied, t.InjectBacklog, extra)
	}
}
