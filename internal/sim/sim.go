// Package sim provides a two-phase synchronous simulation kernel.
//
// The real-time router is synchronous hardware: every flip-flop latches on
// the same clock edge. The kernel models this with a compute/commit split.
// On each cycle every registered Component observes the *current* values of
// all Regs (the wires latched at the previous edge) and writes *next*
// values; after all components have run, every Reg commits next→current.
// Because components only communicate through Regs, evaluation order never
// changes results across component boundaries.
//
// Two exceptions are deliberate and documented where used:
//
//   - Nodes (traffic sources/sinks) talk to their local router through
//     injection and delivery queues rather than cycle-latched wires; nodes
//     are registered before routers so a packet handed over in cycle c is
//     visible to the router in cycle c. This models the processor-network
//     interface, which the paper leaves outside the chip.
//   - A router's internal units run in a fixed order inside its single
//     Tick, modelling same-chip combinational paths.
package sim

import (
	"fmt"
	"runtime"
)

// Cycle is an absolute simulation cycle count. One cycle is one byte time
// on a network link (20 ns at the paper's 50 MHz).
type Cycle int64

// Component is a block of synchronous logic evaluated once per cycle.
type Component interface {
	// Name identifies the component in traces and error messages.
	Name() string
	// Tick performs the compute phase for the given cycle: read current
	// Reg values, update internal state, write next Reg values.
	Tick(now Cycle)
}

// Latchable is state that commits at the clock edge, after all components
// have ticked.
type Latchable interface {
	Commit()
}

// ResolveWorkers maps a worker-count setting to an effective count the
// way SetWorkers does: a non-positive count means one worker per
// available CPU. CLIs share this helper so "-workers=0" means the same
// thing everywhere.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Kernel drives a set of components cycle by cycle.
//
// By default every component ticks sequentially in registration order —
// the deliberately simple reference implementation that the parallel
// engine is differentially tested against. SetWorkers enables the
// parallel execution mode: components registered with RegisterShard may
// tick concurrently with components of other shards, while components
// registered with plain Register act as barriers (see parallel.go).
// Results are bit-identical across worker counts as long as components
// of different shards communicate only through Regs.
type Kernel struct {
	entries []entry
	latches []Latchable // every latch, in AddLatch order (the reference walk)
	now     Cycle

	// Typed commit banks for the parallel engine: Regs of the same value
	// type share a bank so the dirty-latch commit scan is a direct call
	// on a concrete type instead of an interface dispatch per latch.
	// Latchables that are not Regs stay on the loose list and commit
	// through the interface every cycle.
	banks   []latchBank
	bankIdx map[any]int
	loose   []Latchable

	// Inline-mode dirty list: when the parallel engine runs on the
	// calling goroutine (stepInline), every banked Reg carries a hook to
	// this list and enqueues itself on its clean→written transition, so
	// the commit phase touches only registers that can change — O(active
	// wires), not O(all latches). The hooks are single-threaded by
	// construction and therefore disabled in the pooled and sequential
	// modes (dirtyOn tracks whether they are attached).
	dirty   []dirtyLatch
	dirtyOn bool

	workers   int
	tiling    func(shard int) int // nil = one tile per shard
	forcePool bool
	pool      *workerPool
	plan      []planSeg
	spans     [][]latchSpan
	planDirty bool

	// Epoch synchronization and quiescence skipping (see epoch.go).
	// syncDirty marks the derived fields stale after any registration.
	pipes     []pipeEntry
	epochReq  int64 // requested epoch length (SetEpoch)
	effEpoch  int64 // legal epoch length, derived from wires/latches
	skipOK    bool  // every component is a Skipper and no latches exist
	skippers  []Skipper
	skipBlock int // index of the most recent skip-blocking component
	syncDirty bool
}

// entry is one registered component with its shard tag.
type entry struct {
	c     Component
	shard int // globalShard for barrier components
}

// globalShard marks a component registered without a shard: it may
// touch any state, so in parallel mode it runs alone between batches.
const globalShard = -1

// NewKernel returns an empty kernel at cycle 0.
func NewKernel() *Kernel {
	return &Kernel{workers: 1, epochReq: 1, effEpoch: 1, skipBlock: -1}
}

// Register adds a component. Components tick in registration order. In
// parallel mode an unsharded component is a barrier: every component
// registered before it finishes ticking first, and it ticks alone.
func (k *Kernel) Register(c Component) {
	if c == nil {
		panic("sim: Register(nil)")
	}
	k.entries = append(k.entries, entry{c: c, shard: globalShard})
	k.planDirty = true
	k.syncDirty = true
}

// RegisterShard adds a component to a shard. Components of the same
// shard always tick in registration order relative to each other;
// components of different shards may tick concurrently in parallel
// mode, so they must interact only through Regs (or not at all). The
// shard key is arbitrary; meshes use the router's row-major index and
// tag each router's node-side software (pacer, sink, traffic sources)
// with its router's shard.
func (k *Kernel) RegisterShard(shard int, c Component) {
	if c == nil {
		panic("sim: RegisterShard(nil)")
	}
	if shard < 0 {
		panic(fmt.Sprintf("sim: RegisterShard(%d): shard must be non-negative", shard))
	}
	k.entries = append(k.entries, entry{c: c, shard: shard})
	k.planDirty = true
	k.syncDirty = true
}

// SetTiling installs the shard→tile map used by the parallel engine to
// group shards into coarse, cache-local work units (mesh networks map
// row-major node shards to square spatial blocks). nil restores the
// default of one tile per shard. The map must be stable: the same shard
// must yield the same tile for the lifetime of the plan.
func (k *Kernel) SetTiling(tile func(shard int) int) {
	k.tiling = tile
	k.planDirty = true
}

// AddLatch adds latched state committed at the end of every cycle.
func (k *Kernel) AddLatch(l Latchable) {
	if l == nil {
		panic("sim: AddLatch(nil)")
	}
	k.latches = append(k.latches, l)
	if b, ok := l.(banked); ok {
		key := b.bankKey()
		i, ok := k.bankIdx[key]
		if !ok {
			if k.bankIdx == nil {
				k.bankIdx = make(map[any]int)
			}
			i = len(k.banks)
			k.bankIdx[key] = i
			k.banks = append(k.banks, b.newBank())
		}
		b.joinBank(k.banks[i])
	} else {
		k.loose = append(k.loose, l)
	}
	if k.dirtyOn {
		// The new latch has no hook yet; drop back to the hookless state
		// and let the next inline step re-attach everything.
		k.disableDirty()
	}
	k.planDirty = true
	k.syncDirty = true
}

// Now returns the current cycle (the cycle about to be executed by Step).
func (k *Kernel) Now() Cycle { return k.now }

// Step executes one full cycle: compute phase then commit phase.
func (k *Kernel) Step() {
	if k.workers > 1 {
		k.stepParallel()
		return
	}
	if k.dirtyOn {
		k.disableDirty()
	}
	for _, e := range k.entries {
		e.c.Tick(k.now)
	}
	for _, l := range k.latches {
		l.Commit()
	}
	k.now++
}

// Run executes n cycles. Between cycles it applies the two schedule
// optimizations that never change results: whole-system quiescence
// skips (when every component is a Skipper with no pending work) and,
// in parallel mode, epoch-length steps that amortize the worker
// rendezvous over EffectiveEpoch consecutive cycles.
func (k *Kernel) Run(n int64) {
	end := k.now + Cycle(n)
	for k.now < end {
		k.refreshSync()
		if k.trySkipTo(end) {
			continue
		}
		e := k.effEpoch
		if k.workers > 1 && e > 1 {
			if rem := int64(end - k.now); e > rem {
				e = rem
			}
		} else {
			e = 1
		}
		if e > 1 {
			k.stepEpoch(e)
		} else {
			k.Step()
		}
	}
}

// RunUntil steps the kernel until pred returns true or the budget of
// cycles is exhausted. It reports whether pred was satisfied.
func (k *Kernel) RunUntil(pred func() bool, budget int64) bool {
	for i := int64(0); i < budget; i++ {
		if pred() {
			return true
		}
		k.Step()
	}
	return pred()
}

// Components returns the number of registered components.
func (k *Kernel) Components() int { return len(k.entries) }

// String implements fmt.Stringer for debugging.
func (k *Kernel) String() string {
	return fmt.Sprintf("sim.Kernel{cycle=%d components=%d latches=%d workers=%d}",
		k.now, len(k.entries), len(k.latches), k.workers)
}

// Reg dirty states. The invariant behind the clean fast path: a clean
// register has cur == next (for a wire, both zero), so commit would be a
// no-op and the parallel engine's dirty scan can skip it.
const (
	regClean   uint8 = iota // no write since the last settled commit
	regWritten              // next was written this cycle
	regDrain                // wire carried a value last edge; must drain to zero
)

// Reg is a clock-latched register of any value type. Producers write the
// next value during the compute phase; consumers read the current value.
// If no producer writes during a cycle, the register drains to the zero
// value at the edge (wire semantics: a Phit is only on the wire for the
// cycle it was driven).
type Reg[T any] struct {
	cur, next T
	sticky    bool  // if true, hold value until overwritten (latch semantics)
	state     uint8 // regClean, regWritten, or regDrain

	// hook, when attached by the kernel's inline mode, is the dirty list
	// this register enqueues itself on when it leaves the clean state.
	hook *[]dirtyLatch
}

// NewReg returns a wire-semantics register (drains each cycle).
func NewReg[T any]() *Reg[T] { return &Reg[T]{} }

// NewSticky returns a latch-semantics register (holds last written value).
func NewSticky[T any]() *Reg[T] { return &Reg[T]{sticky: true} }

// Read returns the value latched at the previous clock edge.
func (r *Reg[T]) Read() T { return r.cur }

// Write drives the value to be latched at the next clock edge.
func (r *Reg[T]) Write(v T) {
	r.next = v
	if r.state == regClean && r.hook != nil {
		*r.hook = append(*r.hook, r)
	}
	r.state = regWritten
}

// Commit implements Latchable. An unwritten register whose previous
// commit already settled it is clean — cur equals next — and commits in
// one byte compare, which is what makes the dirty-latch scan cheap.
func (r *Reg[T]) Commit() {
	if r.state == regClean {
		return
	}
	r.cur = r.next
	if r.sticky {
		// cur == next holds from here until the next Write.
		r.state = regClean
		return
	}
	var zero T
	r.next = zero
	if r.state == regWritten {
		// The wire carried a value this edge; one more commit must drain
		// cur back to zero before the register settles clean.
		r.state = regDrain
	} else {
		r.state = regClean
	}
}

// dirtyLatch is a latch that supports the inline mode's dirty-list
// commit: commitKeep commits a known-dirty latch and reports whether it
// must stay on the list for the next edge (a wire that still has to
// drain).
type dirtyLatch interface {
	commitKeep() bool
}

// commitKeep commits a register known to be dirty. A freshly written
// wire drains at the next edge, so it stays enqueued; a sticky register
// or a draining wire settles clean and leaves the list.
func (r *Reg[T]) commitKeep() bool {
	r.cur = r.next
	if r.sticky {
		r.state = regClean
		return false
	}
	var zero T
	r.next = zero
	if r.state == regWritten {
		r.state = regDrain
		return true
	}
	r.state = regClean
	return false
}

// banked is implemented by latches that can join a typed commit bank.
type banked interface {
	bankKey() any
	newBank() latchBank
	joinBank(b latchBank)
}

// latchBank is a homogeneous slice of latches committed by direct
// (devirtualized) calls. attach/detach manage the inline mode's dirty
// hooks: attach points every member at the kernel's dirty list and
// seeds the list with the members that are already dirty.
type latchBank interface {
	size() int
	commitRange(lo, hi int)
	attach(hook *[]dirtyLatch, list []dirtyLatch) []dirtyLatch
	detach()
}

// regBank commits a contiguous range of same-typed Regs. The per-reg
// state check happens inside Reg.Commit, which inlines here.
type regBank[T any] struct{ regs []*Reg[T] }

func (b *regBank[T]) size() int { return len(b.regs) }

func (b *regBank[T]) commitRange(lo, hi int) {
	for _, r := range b.regs[lo:hi] {
		r.Commit()
	}
}

func (b *regBank[T]) attach(hook *[]dirtyLatch, list []dirtyLatch) []dirtyLatch {
	for _, r := range b.regs {
		r.hook = hook
		if r.state != regClean {
			list = append(list, r)
		}
	}
	return list
}

func (b *regBank[T]) detach() {
	for _, r := range b.regs {
		r.hook = nil
	}
}

func (r *Reg[T]) bankKey() any       { return (*regBank[T])(nil) }
func (r *Reg[T]) newBank() latchBank { return &regBank[T]{} }
func (r *Reg[T]) joinBank(b latchBank) {
	rb := b.(*regBank[T])
	rb.regs = append(rb.regs, r)
}
