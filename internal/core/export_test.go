package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// runFig6Mesh drives an 8×8 mesh with fig6-style channels (Imin=8,
// D=32, single-packet messages — the multi-wrap soak contract) under a
// sharded collector and SLO tracker, long enough to cross a slot-clock
// rollover, and returns both.
func runFig6Mesh(t *testing.T, workers int) (*obs.Sharded, *obs.SLO) {
	t.Helper()
	col := obs.NewSharded(obs.DefaultShardCap)
	slo := obs.NewSLO()
	sys, err := NewMesh(8, 8, Options{Workers: workers, Collector: col, ChannelSLO: slo})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	spec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: 32}
	routes := [][2]mesh.Coord{
		{{X: 0, Y: 0}, {X: 7, Y: 0}},
		{{X: 0, Y: 7}, {X: 7, Y: 7}},
		{{X: 3, Y: 1}, {X: 3, Y: 6}},
		{{X: 7, Y: 4}, {X: 0, Y: 4}},
	}
	for i, rt := range routes {
		ch, err := sys.OpenChannel(rt[0], []mesh.Coord{rt[1]}, spec)
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch.Paced(), spec, traffic.Periodic, packet.TCPayloadBytes)
		if err != nil {
			t.Fatal(err)
		}
		sys.RegisterNode(rt[0], app)
	}
	// One wrap of the 256-slot clock is 256×TCBytes cycles; run a bit
	// past it so stamps wrap inside the recorded window.
	sys.Run(256*packet.TCBytes + 2000)
	return col, slo
}

// TestChromeTraceStructure asserts the Perfetto export from an 8×8
// fig6-style run is structurally valid Chrome trace-event JSON: a
// traceEvents array with per-node/per-port metadata, well-formed phase
// and track fields on every event, duration slices for transmissions,
// and complete flow chains (s → t* → f) for monitored channels.
func TestChromeTraceStructure(t *testing.T) {
	col, slo := runFig6Mesh(t, 2)

	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col, slo); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			ID   int64          `json:"id"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	procs := map[int]bool{}
	threads := map[[2]int]bool{}
	var slices, instants, flowS, flowT, flowF int
	flowIDs := map[int64][3]int{} // id -> counts of s/t/f
	for i, e := range doc.TraceEvents {
		if e.Name == "" || e.Ph == "" {
			t.Fatalf("event %d missing name or ph: %+v", i, e)
		}
		switch e.Ph {
		case "M":
			switch e.Name {
			case "process_name":
				procs[e.Pid] = true
			case "thread_name":
				threads[[2]int{e.Pid, e.Tid}] = true
			default:
				t.Fatalf("event %d: unknown metadata %q", i, e.Name)
			}
			continue
		case "X":
			slices++
			if e.Name == "tc-tx" && e.Dur != packet.TCBytes {
				t.Fatalf("event %d: tc-tx dur = %d, want %d", i, e.Dur, packet.TCBytes)
			}
		case "i":
			instants++
		case "s", "t", "f":
			c := flowIDs[e.ID]
			switch e.Ph {
			case "s":
				flowS++
				c[0]++
			case "t":
				flowT++
				c[1]++
			case "f":
				flowF++
				c[2]++
			}
			flowIDs[e.ID] = c
		default:
			t.Fatalf("event %d: unknown phase %q", i, e.Ph)
		}
		if e.Pid < 1 || e.Pid > 64 {
			t.Fatalf("event %d: pid %d outside the 8x8 mesh", i, e.Pid)
		}
		if e.Tid < 1 || e.Tid > 6 {
			t.Fatalf("event %d: tid %d outside port/node tracks", i, e.Tid)
		}
		if e.Ts < 0 {
			t.Fatalf("event %d: negative ts %d", i, e.Ts)
		}
		if !procs[e.Pid] || !threads[[2]int{e.Pid, e.Tid}] {
			t.Fatalf("event %d: track (pid %d, tid %d) has no metadata", i, e.Pid, e.Tid)
		}
	}
	if len(procs) != 64 {
		t.Fatalf("%d process_name records, want 64", len(procs))
	}
	if slices == 0 || instants == 0 {
		t.Fatalf("degenerate trace: %d slices, %d instants", slices, instants)
	}
	if flowS == 0 || flowT == 0 || flowF == 0 {
		t.Fatalf("incomplete flows: s=%d t=%d f=%d", flowS, flowT, flowF)
	}
	// With unicast channels and no eviction (checked), every flow id
	// has at most one start and one finish, every finished flow has a
	// start, and only the handful of packets still in flight when the
	// run stopped may lack a finish.
	if col.Dropped() != 0 {
		t.Fatalf("collector evicted %d events; flow checks need the full run", col.Dropped())
	}
	var unfinished int
	for id, c := range flowIDs {
		if c[0] > 1 || c[2] > 1 {
			t.Fatalf("flow %d: %d starts, %d finishes", id, c[0], c[2])
		}
		if c[2] == 1 && c[0] != 1 {
			t.Fatalf("flow %d finished without a start (%d steps)", id, c[1])
		}
		if c[2] == 0 {
			unfinished++
		}
	}
	if unfinished > 4*len(flowIDs)/5 || unfinished > 64 {
		t.Fatalf("%d of %d flows unfinished — more than packets in flight can explain", unfinished, len(flowIDs))
	}
}

// TestJSONLExport asserts the JSONL sibling export: every line parses,
// cycles are sorted, and the line count matches the collector.
func TestJSONLExport(t *testing.T) {
	col, _ := runFig6Mesh(t, 1)

	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, col); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	last := int64(-1)
	for sc.Scan() {
		var e struct {
			Cycle  int64  `json:"cycle"`
			Router string `json:"router"`
			Kind   string `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if e.Router == "" || e.Kind == "" {
			t.Fatalf("line %d missing router or kind: %s", lines+1, sc.Text())
		}
		if e.Cycle < last {
			t.Fatalf("line %d: cycle %d after %d — timeline unsorted", lines+1, e.Cycle, last)
		}
		last = e.Cycle
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := len(col.Merged()); lines != want {
		t.Fatalf("%d JSONL lines, collector holds %d events", lines, want)
	}
}
