package admission

import (
	"sync"
	"sync/atomic"

	"repro/internal/mesh"
	"repro/internal/router"
	"repro/internal/rtc"
)

// Request is one channel-establishment request for AdmitBatch.
type Request struct {
	Src  mesh.Coord
	Dsts []mesh.Coord
	Spec rtc.Spec
}

// BatchResult reports a batch admission outcome per request, in request
// order: exactly one of Channels[i], Errs[i] is non-nil.
type BatchResult struct {
	Channels []*Channel
	Errs     []error
	Admitted int
	Rejected int
	// Replans counts requests whose speculative plan was invalidated by
	// an earlier commit in the same chunk and re-ran serially.
	Replans int
}

// batchChunkSize is how many requests AdmitBatch speculates on per
// round. Larger chunks amortize worker handoff; smaller chunks shrink
// the window in which commits invalidate speculative plans. A var so
// tests can force heavy conflict traffic.
var batchChunkSize = 1024

// AdmitBatch admits a slice of requests with the exact same outcomes,
// ledger state, decision counters, and audit trail as calling Admit on
// each in order — at any worker count. It works in chunks: workers plan
// requests speculatively (read-only, against the state as of the chunk
// start), then a serial pass finalizes them in request order. A
// speculative outcome is reused only when no earlier commit touched any
// node the request's planning could have consulted (its link, buffer,
// and identifier state are all node-keyed); otherwise the request is
// re-planned serially, which is always correct and merely slower.
//
// workers ≤ 1 (or Reference mode) runs the plain sequential loop.
func (c *Controller) AdmitBatch(reqs []Request, workers int) BatchResult {
	res := BatchResult{
		Channels: make([]*Channel, len(reqs)),
		Errs:     make([]error, len(reqs)),
	}
	c.stats.batchRequests.Add(int64(len(reqs)))
	if workers > len(reqs) {
		workers = len(reqs)
	}
	if workers <= 1 || c.cfg.Reference {
		for i := range reqs {
			r := &reqs[i]
			ch, err := c.admit(r.Src, r.Dsts, r.Spec)
			c.recordAdmit(r.Src, r.Dsts, r.Spec, ch, err)
			res.note(i, ch, err)
		}
		return res
	}

	words := (c.net.W*c.net.H + 63) / 64
	dirty := make([]uint64, words)
	specs := make([]specPlan, batchChunkSize)
	for base := 0; base < len(reqs); base += batchChunkSize {
		end := base + batchChunkSize
		if end > len(reqs) {
			end = len(reqs)
		}
		n := end - base
		c.stats.batchChunks.Add(1)

		// Speculation: workers race down the chunk planning read-only.
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var sc evalScratch
				for {
					i := int(cursor.Add(1)) - 1
					if i >= n {
						return
					}
					r := &reqs[base+i]
					sp := &specs[i]
					sp.fp = c.footprint(sp.fp[:0], r.Src, r.Dsts)
					sp.plan, sp.err = c.plan(r.Src, r.Dsts, r.Spec, &sc)
				}
			}()
		}
		wg.Wait()

		// Finalize: strict request order, so ids, channel numbers, audit
		// sequence, and every tie-break match the sequential loop.
		for i := 0; i < n; i++ {
			r := &reqs[base+i]
			sp := &specs[i]
			var ch *Channel
			var err error
			switch {
			case intersects(dirty, sp.fp):
				// An earlier commit touched this request's footprint; its
				// speculative answer may be stale either way. Re-run the
				// whole decision against current state.
				c.stats.batchReplans.Add(1)
				res.Replans++
				ch, err = c.admit(r.Src, r.Dsts, r.Spec)
			case sp.err != nil:
				err = sp.err
			default:
				ch, err = c.commitPlan(sp.plan)
			}
			if ch != nil {
				// Only successful commits mutate reservation state (a
				// failed commit unwinds verbatim), and they mutate only
				// nodes inside the request's own footprint.
				orBits(dirty, sp.fp, words)
			}
			c.recordAdmit(r.Src, r.Dsts, r.Spec, ch, err)
			res.note(base+i, ch, err)
		}
	}
	return res
}

func (r *BatchResult) note(i int, ch *Channel, err error) {
	r.Channels[i], r.Errs[i] = ch, err
	if err != nil {
		r.Rejected++
	} else {
		r.Admitted++
	}
}

// specPlan is one request's speculative outcome plus the node bitset its
// planning could have consulted.
type specPlan struct {
	plan *admitPlan
	err  error
	fp   []uint64
}

// footprint appends the node-index bitset covering every router whose
// state planning src→dsts may read or commit may write: the XY route
// tree, plus the YX path when the unicast fallback applies. Requests the
// validator rejects before touching the mesh get an empty (always-clean)
// footprint, which is correct because their outcome is state-independent.
func (c *Controller) footprint(fp []uint64, src mesh.Coord, dsts []mesh.Coord) []uint64 {
	words := (c.net.W*c.net.H + 63) / 64
	for len(fp) < words {
		fp = append(fp, 0)
	}
	if !c.net.Contains(src) {
		return fp
	}
	mark := func(co mesh.Coord) {
		idx := c.net.Shard(co)
		fp[idx>>6] |= 1 << (uint(idx) & 63)
	}
	walk := func(order routeOrder, dst mesh.Coord) {
		at := src
		mark(at)
		for _, p := range c.routeFor(src, dst, order) {
			if p != router.PortLocal {
				at = at.Add(p)
				mark(at)
			}
		}
	}
	for _, dst := range dsts {
		if !c.net.Contains(dst) {
			return fp
		}
		walk(xyOrder, dst)
	}
	if len(dsts) == 1 && src.X != dsts[0].X && src.Y != dsts[0].Y {
		walk(yxOrder, dsts[0])
	}
	return fp
}

func intersects(dirty, fp []uint64) bool {
	for i := range fp {
		if dirty[i]&fp[i] != 0 {
			return true
		}
	}
	return false
}

func orBits(dirty, fp []uint64, words int) {
	for i := 0; i < words; i++ {
		dirty[i] |= fp[i]
	}
}
