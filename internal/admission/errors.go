package admission

import (
	"errors"
	"fmt"
)

// Rejection is the typed explanation every admission refusal carries:
// which resource was the binding constraint, which admission test it
// failed, and by how much. Callers match with errors.As (or Explain)
// instead of parsing message text; the message text itself stays stable
// for humans and logs.
type Rejection interface {
	error
	// BindingResource names the resource that refused the channel: a
	// directed link ("(1,0)→+x", "(0,0)→inject"), a router node, or a
	// node's port partition.
	BindingResource() string
	// FailingTest names the admission test that failed: "utilization",
	// "busy_period", "link_failed", "buffers", or "conn_ids".
	FailingTest() string
	// FailMargin is the signed margin of the failure — how far past the
	// limit the request landed, in the test's own unit (utilization
	// fraction, demand slots, buffer slots). Always ≤ 0 on a rejection.
	FailMargin() float64
}

// Explain extracts the typed rejection from an admission error chain.
// The second return is false for errors that are not resource
// rejections (bad input, rollover violations, programming failures).
func Explain(err error) (Rejection, bool) {
	var r Rejection
	if errors.As(err, &r) {
		return r, true
	}
	return nil, false
}

// ErrLinkOverload reports a failed per-link schedulability test: the
// candidate task set on Link exceeds the EDF budget.
type ErrLinkOverload struct {
	// Link is the directed link that refused the channel.
	Link string
	// Test is the sub-test that failed: "utilization" (ΣC/T > 1),
	// "busy_period" (dbf(t) > t at some step point), or "link_failed"
	// (the link is administratively down).
	Test string
	// At is the failing step point t and Demand the dbf(t) there
	// (busy_period only).
	At, Demand int64
	// Util is the task-set utilization with the candidate included.
	Util float64
	// Margin is the signed failure margin: 1−Util for the utilization
	// test, t−dbf(t) in slots for the busy-period test.
	Margin float64

	msg string
}

func (e *ErrLinkOverload) Error() string {
	switch e.Test {
	case "utilization":
		return fmt.Sprintf("%s (utilization %.4g > 1, margin %+.4g)", e.msg, e.Util, e.Margin)
	case "busy_period":
		return fmt.Sprintf("%s (busy_period at t=%d: demand %d > %d, margin %+g)",
			e.msg, e.At, e.Demand, e.At, e.Margin)
	default:
		return fmt.Sprintf("%s (%s)", e.msg, e.Test)
	}
}

// BindingResource implements Rejection.
func (e *ErrLinkOverload) BindingResource() string { return e.Link }

// FailingTest implements Rejection.
func (e *ErrLinkOverload) FailingTest() string { return e.Test }

// FailMargin implements Rejection.
func (e *ErrLinkOverload) FailMargin() float64 { return e.Margin }

// ErrBufferExhausted reports a failed packet-memory reservation at one
// router: the channel's buffer bound does not fit the shared pool (Port
// empty) or a port's partition.
type ErrBufferExhausted struct {
	// Node is the router whose memory ran out.
	Node string
	// Port names the binding partition under Partitioned accounting;
	// empty under SharedPool.
	Port string
	// Used slots were already reserved, Need more were requested, Limit
	// is the pool or partition size.
	Used, Need, Limit int

	msg string
}

func (e *ErrBufferExhausted) Error() string { return e.msg }

// BindingResource implements Rejection.
func (e *ErrBufferExhausted) BindingResource() string {
	if e.Port == "" {
		return e.Node
	}
	return e.Node + "→" + e.Port
}

// FailingTest implements Rejection.
func (e *ErrBufferExhausted) FailingTest() string { return "buffers" }

// FailMargin implements Rejection: free slots minus needed slots,
// negative by the shortfall.
func (e *ErrBufferExhausted) FailMargin() float64 {
	return float64(e.Limit - e.Used - e.Need)
}

// ErrIDExhausted reports connection-identifier exhaustion during id
// assignment along the route tree.
type ErrIDExhausted struct {
	// Node is the router that had no free identifier.
	Node string
	// Common is true when the failure was finding one id free across
	// every child of Node (the multicast rewrite constraint), rather
	// than any free id at Node itself.
	Common bool

	msg string
}

func (e *ErrIDExhausted) Error() string { return e.msg }

// BindingResource implements Rejection.
func (e *ErrIDExhausted) BindingResource() string { return e.Node }

// FailingTest implements Rejection.
func (e *ErrIDExhausted) FailingTest() string { return "conn_ids" }

// FailMargin implements Rejection: one more identifier than the table
// holds was needed.
func (e *ErrIDExhausted) FailMargin() float64 { return -1 }

// overloadError builds the typed link rejection for one analysis
// report, keeping the legacy message verbatim as the prefix.
func overloadError(k linkKey, rep edfReport, msg string) *ErrLinkOverload {
	return &ErrLinkOverload{
		Link: k.String(), Test: rep.test, At: rep.at, Demand: rep.demand,
		Util: rep.util, Margin: rep.margin, msg: msg,
	}
}
