// Package scenario loads declarative workload descriptions for the
// rtsim tool: a JSON file names the mesh, the real-time channels with
// their traffic contracts and generation patterns, the best-effort
// background flows, and optional link failures on a timeline — the
// configuration-file front end a network-simulator release needs.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// Scenario is the top-level document.
type Scenario struct {
	// Mesh dimensions.
	Mesh struct {
		W, H int
	} `json:"mesh"`
	// Cycles to simulate.
	Cycles int64 `json:"cycles"`
	// Seed for best-effort randomness.
	Seed int64 `json:"seed"`

	// Router tweaks (zero values keep the paper defaults).
	Router struct {
		Scheduler   string `json:"scheduler"` // edf|fifo|static|approx
		ApproxShift uint   `json:"approxShift"`
		VCT         bool   `json:"vct"`
	} `json:"router"`

	// Admission configuration.
	Admission struct {
		Policy       string `json:"policy"` // partitioned|shared
		SourceWindow int64  `json:"sourceWindow"`
		Horizon      uint32 `json:"horizon"`
	} `json:"admission"`

	Channels   []Channel  `json:"channels"`
	BestEffort []BEFlow   `json:"bestEffort"`
	Failures   []LinkFail `json:"failures"`
}

// Channel describes one real-time channel and its generator.
type Channel struct {
	Src     [2]int   `json:"src"`
	Dsts    [][2]int `json:"dsts"`
	Imin    int64    `json:"imin"`
	Smax    int      `json:"smax"`
	Bmax    int      `json:"bmax"`
	D       int64    `json:"d"`
	Pattern string   `json:"pattern"` // periodic|bursty|backlogged
	Size    int      `json:"size"`    // message payload bytes (default Smax)
}

// BEFlow describes one best-effort source.
type BEFlow struct {
	Src     [2]int  `json:"src"`
	Dst     *[2]int `json:"dst"` // nil = uniform random destinations
	Rate    float64 `json:"rate"`
	SizeMin int     `json:"sizeMin"`
	SizeMax int     `json:"sizeMax"`
}

// LinkFail schedules a link fault episode on a timeline. Kind selects
// the episode:
//
//   - "fail" (or empty): the link is severed at At, permanently unless
//     RepairAt restores it. Channels crossing it are rerouted after the
//     failure and failed back after the repair.
//   - "flap": sugar for a fail that must carry a RepairAt.
//   - "corrupt", "lose": a transient fault process (rate, optional
//     burstiness) garbles or erases phits on the link from At until
//     RepairAt (or the end of the run). Requires link-level integrity,
//     which the runner enables automatically.
type LinkFail struct {
	At   int64  `json:"at"`
	From [2]int `json:"from"`
	Port string `json:"port"` // +x|-x|+y|-y
	Kind string `json:"kind"` // fail|flap|corrupt|lose ("" = fail)
	// RepairAt, when positive, ends the episode: the link is repaired
	// (fail/flap) or the fault process is disarmed (corrupt/lose).
	RepairAt int64 `json:"repair_at"`
	// Rate is the steady-state per-phit fault probability for
	// corrupt/lose, in (0,1).
	Rate float64 `json:"rate"`
	// Burst is the mean fault-burst length in phits; ≤ 1 means
	// independent per-phit faults.
	Burst float64 `json:"burst"`
}

// outage reports whether the episode severs the link (as opposed to
// arming a transient fault process on it).
func (f LinkFail) outage() bool { return f.Kind == "" || f.Kind == "fail" || f.Kind == "flap" }

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(raw)
}

// Parse decodes and validates scenario JSON.
func Parse(raw []byte) (*Scenario, error) {
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := sc.validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

func (sc *Scenario) validate() error {
	if sc.Mesh.W < 1 || sc.Mesh.H < 1 {
		return fmt.Errorf("scenario: mesh %dx%d invalid", sc.Mesh.W, sc.Mesh.H)
	}
	if sc.Cycles < 1 {
		return fmt.Errorf("scenario: cycles %d invalid", sc.Cycles)
	}
	switch sc.Router.Scheduler {
	case "", "edf", "fifo", "static", "approx":
	default:
		return fmt.Errorf("scenario: unknown scheduler %q", sc.Router.Scheduler)
	}
	switch sc.Admission.Policy {
	case "", "partitioned", "shared":
	default:
		return fmt.Errorf("scenario: unknown buffer policy %q", sc.Admission.Policy)
	}
	for i, ch := range sc.Channels {
		if len(ch.Dsts) == 0 {
			return fmt.Errorf("scenario: channel %d has no destinations", i)
		}
		switch ch.Pattern {
		case "", "periodic", "bursty", "backlogged":
		default:
			return fmt.Errorf("scenario: channel %d: unknown pattern %q", i, ch.Pattern)
		}
	}
	// Overlap detection: two outage episodes (or two fault processes) on
	// the same undirected link must not be active at once.
	type interval struct {
		idx      int
		from, to int64
	}
	spans := map[string][]interval{}
	for i, f := range sc.Failures {
		port, err := parsePort(f.Port)
		if err != nil {
			return fmt.Errorf("scenario: failure %d: %w", i, err)
		}
		if f.At < 0 || f.At >= sc.Cycles {
			return fmt.Errorf("scenario: failure %d at cycle %d outside the run", i, f.At)
		}
		from := coord(f.From)
		to := from.Add(port)
		if from.X < 0 || from.X >= sc.Mesh.W || from.Y < 0 || from.Y >= sc.Mesh.H {
			return fmt.Errorf("scenario: failure %d: node %s outside the %dx%d mesh", i, from, sc.Mesh.W, sc.Mesh.H)
		}
		if to.X < 0 || to.X >= sc.Mesh.W || to.Y < 0 || to.Y >= sc.Mesh.H {
			return fmt.Errorf("scenario: failure %d: link %s %s leaves the mesh", i, from, f.Port)
		}
		switch f.Kind {
		case "", "fail", "flap", "corrupt", "lose":
		default:
			return fmt.Errorf("scenario: failure %d: unknown kind %q", i, f.Kind)
		}
		if f.RepairAt != 0 && (f.RepairAt <= f.At || f.RepairAt > sc.Cycles) {
			return fmt.Errorf("scenario: failure %d: repair_at %d outside (at, cycles]", i, f.RepairAt)
		}
		if f.Kind == "flap" && f.RepairAt == 0 {
			return fmt.Errorf("scenario: failure %d: flap requires repair_at", i)
		}
		if f.outage() {
			if f.Rate != 0 || f.Burst != 0 {
				return fmt.Errorf("scenario: failure %d: rate/burst only apply to corrupt or lose", i)
			}
		} else if f.Rate <= 0 || f.Rate >= 1 {
			return fmt.Errorf("scenario: failure %d: %s rate %v outside (0,1)", i, f.Kind, f.Rate)
		}
		// Canonical undirected link name, keyed per episode category.
		lf, lp := from, port
		if port == router.PortXMinus || port == router.PortYMinus {
			lf, lp = to, map[int]int{router.PortXMinus: router.PortXPlus, router.PortYMinus: router.PortYPlus}[port]
		}
		key := fmt.Sprintf("%s#%d#%v", lf, lp, f.outage())
		end := f.RepairAt
		if end == 0 {
			end = sc.Cycles
		}
		for _, iv := range spans[key] {
			if f.At < iv.to && iv.from < end {
				return fmt.Errorf("scenario: failures %d and %d overlap on link %s %s", iv.idx, i, lf, f.Port)
			}
		}
		spans[key] = append(spans[key], interval{i, f.At, end})
	}
	return nil
}

func parsePort(s string) (int, error) {
	switch s {
	case "+x":
		return router.PortXPlus, nil
	case "-x":
		return router.PortXMinus, nil
	case "+y":
		return router.PortYPlus, nil
	case "-y":
		return router.PortYMinus, nil
	default:
		return 0, fmt.Errorf("unknown port %q", s)
	}
}

func coord(a [2]int) mesh.Coord { return mesh.Coord{X: a[0], Y: a[1]} }

// Result summarizes a scenario run.
type Result struct {
	Opened   int
	Rejected []string
	Rerouted int
	Summary  core.Summary
	Cycles   int64
	Failures int
	// Repairs counts episode endings played: link repairs and fault
	// processes disarmed.
	Repairs int
	// Faults reports what the fault injector did on the wire.
	Faults fault.Stats
}

// RunOpts carries harness-level knobs that are not part of the
// scenario document itself.
type RunOpts struct {
	// Metrics, when non-nil, attaches the telemetry registry to every
	// router in the built system.
	Metrics *metrics.Registry
	// SampleEvery, when positive, registers a periodic sampler
	// snapshotting the registry into System.Sampler.TS.
	SampleEvery int64
	// Collector, when non-nil, attaches the sharded lifecycle collector
	// to every router (parallel-safe tracing).
	Collector *obs.Sharded
	// ChannelSLO, when non-nil, attaches per-channel SLO accounting to
	// every channel the scenario opens.
	ChannelSLO *obs.SLO
	// Forensics, when non-nil, attaches the slack-attribution engine to
	// every router (blame matrix, cause totals).
	Forensics *obs.Forensics
	// Recorder, when non-nil, attaches the flight recorder (trigger
	// logs with occupancy snapshots, post-run window dumps).
	Recorder *obs.Recorder
	// Audit, when non-nil, receives one record per admission-plane
	// decision the scenario drives (channel opens, failure-driven
	// reroutes, failbacks).
	Audit *obs.AuditLog
	// Workers selects the kernel execution mode: 0 or 1 sequential,
	// n > 1 parallel over per-node shards (bit-identical results),
	// negative GOMAXPROCS. Parallel runs should Close the returned
	// System when done with it.
	Workers int
	// Epoch > 1 amortizes the parallel kernel's rendezvous over that
	// many cycles. Epoch legality requires every cross-shard wire to
	// carry at least that much latency, so the mesh links are deepened
	// to the epoch — a scenario run with Epoch n simulates a machine
	// with n-cycle links, identically at every worker count.
	Epoch int
}

// Run builds the system, opens every channel, attaches the generators,
// plays the failure timeline (rerouting affected channels), and returns
// the summary.
func (sc *Scenario) Run() (*Result, *core.System, error) {
	return sc.RunWith(RunOpts{})
}

// RunWith is Run with harness options (telemetry attachment). The
// scenario is re-validated first, so hand-built documents get the same
// checks as parsed ones.
func (sc *Scenario) RunWith(opts RunOpts) (*Result, *core.System, error) {
	if err := sc.validate(); err != nil {
		return nil, nil, err
	}
	rcfg := router.DefaultConfig()
	rcfg.VCT = sc.Router.VCT
	if opts.Epoch > 1 {
		rcfg.LinkLatency = opts.Epoch
	}
	for _, f := range sc.Failures {
		if !f.outage() {
			// Transient wire faults need link-level detection to matter.
			rcfg.Integrity = true
		}
	}
	switch sc.Router.Scheduler {
	case "fifo":
		rcfg.Scheduler = router.SchedFIFO
	case "static":
		rcfg.Scheduler = router.SchedStaticPriority
	case "approx":
		rcfg.Scheduler = router.SchedApproxEDF
		rcfg.ApproxShift = sc.Router.ApproxShift
	}
	acfg := admission.DefaultConfig()
	if sc.Admission.Policy == "shared" {
		acfg.Policy = admission.SharedPool
	}
	if sc.Admission.SourceWindow > 0 {
		acfg.SourceWindow = sc.Admission.SourceWindow
	}
	acfg.Horizon = sc.Admission.Horizon

	sys, err := core.NewMesh(sc.Mesh.W, sc.Mesh.H, core.Options{
		Router:             rcfg,
		Metrics:            opts.Metrics,
		MetricsSampleEvery: opts.SampleEvery,
		Collector:          opts.Collector,
		ChannelSLO:         opts.ChannelSLO,
		Forensics:          opts.Forensics,
		Recorder:           opts.Recorder,
		Audit:              opts.Audit,
		Workers:            opts.Workers,
		Epoch:              opts.Epoch,
	}.WithAdmission(acfg))
	if err != nil {
		return nil, nil, err
	}
	res := &Result{Cycles: sc.Cycles}

	type openChan struct {
		ch  *core.Channel
		def Channel
	}
	var opened []openChan
	for i, def := range sc.Channels {
		spec := rtc.Spec{Imin: def.Imin, Smax: def.Smax, Bmax: def.Bmax, D: def.D}
		dsts := make([]mesh.Coord, len(def.Dsts))
		for j, d := range def.Dsts {
			dsts[j] = coord(d)
		}
		ch, err := sys.OpenChannel(coord(def.Src), dsts, spec)
		if err != nil {
			res.Rejected = append(res.Rejected, fmt.Sprintf("channel %d: %v", i, err))
			continue
		}
		pattern := traffic.Periodic
		switch def.Pattern {
		case "bursty":
			pattern = traffic.Bursty
		case "backlogged":
			pattern = traffic.Backlogged
		}
		size := def.Size
		if size == 0 {
			size = def.Smax
		}
		// Pass the core.Channel facade, not the raw regulator handle, so
		// the generator keeps flowing after a failure-driven Reroute.
		app, err := traffic.NewTCApp(fmt.Sprintf("tc%d", i), ch, spec, pattern, size)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: channel %d: %w", i, err)
		}
		// The generator only touches its source node's regulator, so it
		// lives in that node's shard and stays off the parallel-mode
		// barrier path.
		sys.RegisterNode(coord(def.Src), app)
		opened = append(opened, openChan{ch, def})
		res.Opened++
	}
	// The admission phase is over: publish the reservation ledger so a
	// live scrape during the run sees the admitted state.
	sys.SealCapacity()
	for i, f := range sc.BestEffort {
		var dst traffic.DstPicker
		if f.Dst != nil {
			dst = traffic.FixedDst(coord(*f.Dst))
		} else {
			dst = traffic.UniformDst(sys.Net, coord(f.Src))
		}
		lo, hi := f.SizeMin, f.SizeMax
		if lo < 1 {
			lo = traffic.ProbeBytes
		}
		if hi < lo {
			hi = lo
		}
		app, err := traffic.NewBEApp(fmt.Sprintf("be%d", i), sys.Net, coord(f.Src),
			dst, traffic.UniformSize(lo, hi), f.Rate, sc.Seed+int64(i))
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: best-effort %d: %w", i, err)
		}
		sys.RegisterNode(coord(f.Src), app)
	}

	// The failure timeline: every episode contributes an onset event and,
	// with RepairAt set, an ending event. Deterministic order: by cycle,
	// then document order, endings before onsets at the same cycle (so a
	// flap interval ending at t frees the link for one starting at t).
	type event struct {
		at     int64
		repair bool
		idx    int
	}
	var events []event
	for i, f := range sc.Failures {
		events = append(events, event{f.At, false, i})
		if f.RepairAt > 0 {
			events = append(events, event{f.RepairAt, true, i})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.repair != b.repair {
			return a.repair
		}
		return a.idx < b.idx
	})
	var inj *fault.Injector
	// reroutedAt remembers which channels each outage displaced, so its
	// repair fails exactly those back.
	reroutedAt := make(map[int][]*core.Channel)
	at := int64(0)
	for _, ev := range events {
		sys.Run(ev.at - at)
		at = ev.at
		f := sc.Failures[ev.idx]
		port, err := parsePort(f.Port)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: failure at %d: %w", f.At, err)
		}
		from := coord(f.From)
		switch {
		case !f.outage() && !ev.repair:
			if inj == nil {
				inj = fault.New(sc.Seed)
			}
			kind := fault.Corrupt
			if f.Kind == "lose" {
				kind = fault.Lose
			}
			cfg := fault.Config{Kind: kind, Rate: f.Rate, Burst: f.Burst}
			if err := inj.InjectLink(sys.Net, from, port, cfg); err != nil {
				return nil, nil, fmt.Errorf("scenario: fault at %d: %w", f.At, err)
			}
			res.Failures++
		case !f.outage():
			inj.ClearLink(from, port)
			res.Repairs++
		case !ev.repair:
			if err := sys.FailLink(from, port); err != nil {
				return nil, nil, fmt.Errorf("scenario: failure at %d: %w", f.At, err)
			}
			res.Failures++
			// A severed link is dead in both directions: reroute channels
			// crossing it either way.
			rev := map[int]int{
				router.PortXPlus:  router.PortXMinus,
				router.PortXMinus: router.PortXPlus,
				router.PortYPlus:  router.PortYMinus,
				router.PortYMinus: router.PortYPlus,
			}[port]
			to := from.Add(port)
			for _, oc := range opened {
				if oc.ch.Admitted().Uses(from, port) || oc.ch.Admitted().Uses(to, rev) {
					if err := oc.ch.Reroute(); err == nil {
						res.Rerouted++
						reroutedAt[ev.idx] = append(reroutedAt[ev.idx], oc.ch)
					}
				}
			}
		default:
			if err := sys.RepairLink(from, port); err != nil {
				return nil, nil, fmt.Errorf("scenario: repair at %d: %w", ev.at, err)
			}
			res.Repairs++
			// Fail the displaced channels back: admission prefers the
			// primary XY order, so they return to the repaired path.
			for _, ch := range reroutedAt[ev.idx] {
				if err := ch.Reroute(); err == nil {
					res.Rerouted++
				}
			}
		}
		// Each event may have moved reservations; re-seal so the live
		// ledger tracks the outage/repair state.
		sys.SealCapacity()
	}
	sys.Run(sc.Cycles - at)
	res.Summary = sys.Summarize()
	if inj != nil {
		res.Faults = inj.Stats()
	}
	return res, sys, nil
}
