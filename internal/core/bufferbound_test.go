package core

import (
	"fmt"
	"testing"

	"repro/internal/admission"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// occupancyByConn samples, every cycle, how many scheduler leaves at
// one router belong to a given incoming connection id — the packets of
// that connection resident in the shared memory.
type occupancyByConn struct {
	sys  *System
	at   mesh.Coord
	conn uint8
	peak int
}

func (o *occupancyByConn) Name() string { return "occ-probe" }
func (o *occupancyByConn) Tick(sim.Cycle) {
	s := o.sys.Router(o.at).Scheduler()
	n := 0
	for slot := 0; slot < s.Slots(); slot++ {
		lf := s.Leaf(slot)
		if lf.InUse && lf.InConn == o.conn {
			n++
		}
	}
	if n > o.peak {
		o.peak = n
	}
}

// TestBufferBoundHolds validates the Section 2 buffer formula against
// the running hardware: for a backlogged connection, the packets of
// that connection resident at hop j never exceed
// ⌈(h(j−1)+d(j−1)+d(j))/Imin⌉ messages — the exact quantity the
// admission controller reserves. Swept over horizons and message sizes.
func TestBufferBoundHolds(t *testing.T) {
	cases := []struct {
		horizon uint32
		window  int64
		imin    int64
		smax    int
	}{
		{0, 0, 8, 18},
		{8, 8, 8, 18},
		{32, 16, 8, 18},
		{16, 8, 6, 36}, // two-packet messages
		{48, 24, 12, 54},
	}
	for i, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("case%d_h%d", i, tc.horizon), func(t *testing.T) {
			sys, err := NewMesh(3, 1, Options{}.WithAdmission(admission.Config{
				Policy:       admission.Partitioned,
				SourceWindow: tc.window,
				Horizon:      tc.horizon,
			}))
			if err != nil {
				t.Fatal(err)
			}
			src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 0}
			spec := rtc.Spec{Imin: tc.imin, Smax: tc.smax, D: 3 * (tc.imin + 10)}
			ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
			if err != nil {
				t.Fatal(err)
			}
			app, err := traffic.NewTCApp("tc", ch.Paced(), spec, traffic.Backlogged, tc.smax)
			if err != nil {
				t.Fatal(err)
			}
			sys.Net.Kernel.Register(app)

			// Probe the middle router: its upstream "window" is h+d of
			// hop 0.
			d := ch.Admitted().LocalD
			// The probe needs the incoming connection id at (1,0): walk
			// the table from the source entry.
			e0 := sys.Router(src).Connection(ch.Admitted().SrcConn)
			probe := &occupancyByConn{sys: sys, at: mesh.Coord{X: 1, Y: 0}, conn: e0.Out}
			sys.Net.Kernel.Register(probe)

			sys.Run(400 * packet.TCBytes)

			bound := rtc.BufferBound(int64(tc.horizon)+d, d, spec)
			if probe.peak == 0 {
				t.Fatal("probe saw no packets; wiring wrong")
			}
			if probe.peak > bound {
				t.Errorf("peak occupancy %d packets exceeds the §2 bound %d (h=%d d=%d Imin=%d msg=%d pkts)",
					probe.peak, bound, tc.horizon, d, tc.imin, spec.PacketsPerMessage())
			}
			if sum := sys.Summarize(); sum.TCMisses != 0 || sum.TCDrops != 0 {
				t.Errorf("misses=%d drops=%d", sum.TCMisses, sum.TCDrops)
			}
		})
	}
}
