package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/traffic"
)

// FaultsRow is one point of the X10 fault-rate sweep: a fresh 3×3 mesh
// with one time-constrained channel and one best-effort flow, every
// link running the given fault process.
type FaultsRow struct {
	Kind  string
	Rate  float64
	Burst float64

	TCSent      int64
	TCDelivered int64
	TCDropped   int64
	TCMisses    int64

	BESent      int64
	BEDelivered int64
	BENacks     int64
	BERetrans   int64
	BEAborts    int64

	// Injected faults on the wire (all links).
	Corrupted int64
	Lost      int64

	// TCStranded is the conservation residue for time-constrained
	// traffic: packets neither delivered nor counted dropped at exit.
	// Exactly zero except under phit loss, where at most one partial
	// assembly per input can be pending its framing verdict.
	TCStranded int64
}

// FaultsResult is the X10 study: the paper's two-class design under
// transient wire faults. Time-constrained traffic absorbs corruption as
// reserved slack (drops, never deadline misses); best-effort traffic
// recovers losslessly through flit-level nack/retransmission; and a
// link flap costs one reroute out plus one failback.
type FaultsResult struct {
	Rows []FaultsRow

	// Flap timeline measurements.
	FlapRerouted  bool  // channel left the failed link
	FlapFailback  bool  // channel returned to the primary path on repair
	TimeToRecover int64 // cycles from repair to the next delivery
}

const faultsSpecD = 80

// faultsRun drives one sweep point: msgs time-constrained messages and
// msgs/2 best-effort packets across a uniformly faulty 3×3 mesh, then a
// full drain. It enforces the conservation and zero-leak invariants.
func faultsRun(kind fault.Kind, rate, burst float64, msgs int, seed int64) (FaultsRow, error) {
	row := FaultsRow{Kind: kind.String(), Rate: rate, Burst: burst}
	if rate == 0 {
		row.Kind = "none"
	}
	cfg := router.DefaultConfig()
	cfg.Integrity = true
	sys, err := core.NewMesh(3, 3, core.Options{Router: cfg})
	if err != nil {
		return row, err
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	beSrc, beDst := mesh.Coord{X: 0, Y: 2}, mesh.Coord{X: 2, Y: 0}
	spec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: faultsSpecD}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		return row, err
	}
	var inj *fault.Injector
	if rate > 0 {
		inj = fault.New(seed)
		if err := inj.InjectAll(sys.Net, fault.Config{Kind: kind, Rate: rate, Burst: burst}); err != nil {
			return row, err
		}
	}
	seq := uint32(0)
	for i := 0; i < msgs; i++ {
		body := make([]byte, packet.TCPayloadBytes)
		traffic.EncodeProbe(body, sys.Now()+1, seq)
		seq++
		if err := ch.Send(body); err != nil {
			return row, err
		}
		row.TCSent++
		if i%2 == 0 {
			if err := sys.SendBestEffort(beSrc, beDst, make([]byte, 64)); err != nil {
				return row, err
			}
			row.BESent++
		}
		sys.Run(spec.Imin * packet.TCBytes)
	}
	// Drain: no new traffic; every in-flight packet ends in a bucket
	// (delivered, dropped, aborted) or — under phit loss only — strands
	// as one partial assembly awaiting a framing verdict.
	sys.Run(faultsSpecD*packet.TCBytes + 8000)

	if inj != nil {
		s := inj.Stats()
		row.Corrupted, row.Lost = s.CorruptedPhits, s.LostPhits
	}
	sum := sys.Summarize()
	row.TCDelivered = sys.Sink(dst).TCCount
	row.TCDropped = sum.TCDrops
	row.TCMisses = sum.TCMisses
	row.BEDelivered = sys.Sink(beDst).BECount
	row.BENacks = sum.BENacks
	row.BERetrans = sum.BERetransmits
	row.BEAborts = sum.BEAborts
	row.TCStranded = row.TCSent - row.TCDelivered - row.TCDropped

	// Conservation: injected = delivered + dropped (+ stranded partial
	// assemblies, possible only under loss).
	maxStranded := int64(0)
	if kind == fault.Lose && rate > 0 {
		maxStranded = 4 * 9 // one partial assembly per link input
	}
	if row.TCStranded < 0 || row.TCStranded > maxStranded {
		return row, fmt.Errorf("experiments: faults %s rate %v: TC conservation broken: sent %d, delivered %d, dropped %d",
			row.Kind, rate, row.TCSent, row.TCDelivered, row.TCDropped)
	}
	if got := row.BEDelivered + row.BEAborts; got != row.BESent {
		return row, fmt.Errorf("experiments: faults %s rate %v: BE conservation broken: sent %d, delivered %d, aborted %d",
			row.Kind, rate, row.BESent, row.BEDelivered, row.BEAborts)
	}
	// Corruption consumes slack, never the schedule: survivors meet
	// their deadlines.
	if row.TCMisses != 0 {
		return row, fmt.Errorf("experiments: faults %s rate %v: %d deadline misses (reserved slack must absorb loss)",
			row.Kind, rate, row.TCMisses)
	}
	for _, c := range sys.Net.Coords() {
		if free := sys.Router(c).FreeSlots(); free != cfg.Slots {
			return row, fmt.Errorf("experiments: faults %s rate %v: router %s leaked %d memory slots",
				row.Kind, rate, c, cfg.Slots-free)
		}
	}
	return row, nil
}

// faultsFlap plays fail → reroute → repair → failback on the channel's
// first-hop link and measures the recovery time after the repair.
func faultsFlap(res *FaultsResult, msgs int) error {
	sys, err := core.NewMesh(3, 3, core.Options{})
	if err != nil {
		return err
	}
	src, dst := mesh.Coord{X: 0, Y: 0}, mesh.Coord{X: 2, Y: 2}
	spec := rtc.Spec{Imin: 8, Smax: packet.TCPayloadBytes, D: faultsSpecD}
	ch, err := sys.OpenChannel(src, []mesh.Coord{dst}, spec)
	if err != nil {
		return err
	}
	seq := uint32(0)
	send := func(n int) error {
		for i := 0; i < n; i++ {
			body := make([]byte, packet.TCPayloadBytes)
			traffic.EncodeProbe(body, sys.Now()+1, seq)
			seq++
			if err := ch.Send(body); err != nil {
				return err
			}
			sys.Run(spec.Imin * packet.TCBytes)
		}
		sys.Run(spec.D * packet.TCBytes)
		return nil
	}
	if err := send(msgs); err != nil {
		return err
	}
	if err := sys.FailLink(src, router.PortXPlus); err != nil {
		return err
	}
	if err := ch.Reroute(); err != nil {
		return err
	}
	res.FlapRerouted = !ch.Admitted().Uses(src, router.PortXPlus)
	if err := send(msgs); err != nil {
		return err
	}
	if err := sys.RepairLink(src, router.PortXPlus); err != nil {
		return err
	}
	repairAt := sys.Now()
	if err := ch.Reroute(); err != nil {
		return err
	}
	res.FlapFailback = ch.Admitted().Uses(src, router.PortXPlus)
	before := sys.Sink(dst).TCCount
	body := make([]byte, packet.TCPayloadBytes)
	traffic.EncodeProbe(body, sys.Now()+1, seq)
	if err := ch.Send(body); err != nil {
		return err
	}
	if !sys.RunUntil(func() bool { return sys.Sink(dst).TCCount > before }, 4*spec.D*packet.TCBytes) {
		return fmt.Errorf("experiments: faults: no delivery after repair and failback")
	}
	res.TimeToRecover = sys.Now() - repairAt
	return nil
}

// RunFaults runs the X10 campaign: a fault-rate sweep (corruption,
// bursty corruption, loss) plus the flap/recovery timeline. The whole
// campaign derives from seed; msgs scales each sweep point.
func RunFaults(msgs int, seed int64) (*FaultsResult, error) {
	if msgs < 2 {
		return nil, fmt.Errorf("experiments: need at least two messages per sweep point")
	}
	res := &FaultsResult{}
	points := []struct {
		kind  fault.Kind
		rate  float64
		burst float64
	}{
		{fault.Corrupt, 0, 0}, // faultless baseline, integrity on
		{fault.Corrupt, 0.001, 0},
		{fault.Corrupt, 0.005, 0},
		{fault.Corrupt, 0.005, 8},
		{fault.Corrupt, 0.02, 0},
		{fault.Lose, 0.005, 0},
	}
	for _, p := range points {
		row, err := faultsRun(p.kind, p.rate, p.burst, msgs, seed)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	if err := faultsFlap(res, msgs/2); err != nil {
		return nil, err
	}
	return res, nil
}

// Table renders the campaign.
func (r *FaultsResult) Table() *Table {
	t := &Table{
		Title: "X10 — transient link faults: detection, retransmission, recovery (3x3 mesh, all links faulty)",
		Header: []string{"kind", "rate", "burst", "tc sent", "tc delv", "tc drop", "miss",
			"be sent", "be delv", "nacks", "rexmit", "aborts", "hit phits"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Kind, fmt.Sprintf("%g", row.Rate), fmt.Sprintf("%g", row.Burst),
			d(row.TCSent), d(row.TCDelivered), d(row.TCDropped), d(row.TCMisses),
			d(row.BESent), d(row.BEDelivered), d(row.BENacks), d(row.BERetrans), d(row.BEAborts),
			d(row.Corrupted+row.Lost))
	}
	t.AddNote("conservation held at every point: sent = delivered + dropped (+ pending framing verdicts under loss); no memory slot leaked")
	t.AddNote("corruption costs reserved slack, not deadlines: zero misses at every rate; best-effort recovers via nack/retransmit")
	if r.FlapRerouted && r.FlapFailback {
		t.AddNote("flap: rerouted off the dead link, failed back after repair; first delivery %d cycles after the repair", r.TimeToRecover)
	} else {
		t.AddNote("WARNING: flap recovery incomplete (rerouted=%v failback=%v)", r.FlapRerouted, r.FlapFailback)
	}
	return t
}
