package router

import (
	"repro/internal/metrics"
	"repro/internal/packet"
)

// beInput is the best-effort wormhole receive engine of one input source:
// a small flit buffer (10 bytes in the paper), header capture for
// dimension-ordered routing, and a single output binding held from header
// to tail (wormhole packets do not interleave within a virtual channel).
// Arriving best-effort flits are covered by the credits this router
// granted upstream; every flit consumed from the buffer returns one
// credit on the reverse acknowledgement wire.
type beInput struct {
	r  *Router
	id int // 0..3 mesh links, 4 injection

	// buf is the flit buffer (raw bytes as received, header included).
	// It is head-indexed: pop advances bufHead and push compacts the
	// consumed prefix when full, so the small backing array is reused
	// instead of regrown on every slide.
	buf     []byte
	bufHead int

	// current packet parse/forward state
	parsed   bool
	hdr      packet.BEHeader
	nextHdr  [packet.BEHeaderBytes]byte
	outPort  int
	fwdIdx   int // bytes of the current packet already forwarded
	bound    bool
	dropping bool // misrouted packet being consumed and discarded

	// readyAt gates the head flit: byte synchronization and chunk
	// accumulation for the internal bus cost BEHeadDelay cycles per hop.
	readyAt int64

	// consumed counts flits removed from the buffer this cycle; each one
	// returns a credit upstream (mesh links only).
	consumed int

	// injection source (id 4 only): queued packets stream into the flit
	// buffer at link rate. Head-indexed like buf; fully streamed frames
	// are recycled to the router's frame pool.
	injQ    [][]byte
	injHead int
	injPos  int
}

// occ is the number of unconsumed bytes in the flit buffer.
func (u *beInput) occ() int { return len(u.buf) - u.bufHead }

// push appends one byte, reclaiming consumed head space instead of
// growing the backing array.
func (u *beInput) push(b byte) {
	if len(u.buf) == cap(u.buf) && u.bufHead > 0 {
		n := copy(u.buf, u.buf[u.bufHead:])
		u.buf = u.buf[:n]
		u.bufHead = 0
	}
	u.buf = append(u.buf, b)
}

// inject queues one encoded frame behind the injection port.
func (u *beInput) inject(frame []byte) {
	if u.injHead > 0 && len(u.injQ) == cap(u.injQ) {
		n := copy(u.injQ, u.injQ[u.injHead:])
		for i := n; i < len(u.injQ); i++ {
			u.injQ[i] = nil
		}
		u.injQ = u.injQ[:n]
		u.injHead = 0
	}
	u.injQ = append(u.injQ, frame)
}

// acceptByte receives one best-effort flit from the wire.
func (u *beInput) acceptByte(b byte) {
	if u.occ() >= u.r.cfg.FlitBufBytes {
		// Credits make this unreachable from a correct upstream; count it
		// as a protocol violation rather than silently growing the buffer.
		u.r.Stats.BEBufferOverruns++
		u.r.dropBE(metrics.DropBEOverrun, u.id)
		return
	}
	u.push(b)
}

// feedInjection streams one byte of the oldest queued packet into the
// flit buffer, modelling the injection port crossing at link rate.
func (u *beInput) feedInjection() {
	if u.injHead == len(u.injQ) || u.occ() >= u.r.cfg.FlitBufBytes {
		return
	}
	pkt := u.injQ[u.injHead]
	u.push(pkt[u.injPos])
	u.injPos++
	if u.injPos == len(pkt) {
		u.r.recycleBEFrame(pkt)
		u.injQ[u.injHead] = nil
		u.injHead++
		u.injPos = 0
		if u.injHead == len(u.injQ) {
			u.injQ = u.injQ[:0]
			u.injHead = 0
		}
	}
}

// parse decodes the routing header once its four bytes are buffered and
// computes the output port and the rewritten next-hop header.
func (u *beInput) parse() {
	if u.parsed || u.occ() < packet.BEHeaderBytes {
		return
	}
	u.hdr = packet.DecodeBEHeader(u.buf[u.bufHead : u.bufHead+packet.BEHeaderBytes])
	if u.hdr.Len < packet.BEHeaderBytes {
		// Malformed length; consume just the header and move on.
		u.r.Stats.BEMalformed++
		u.hdr.Len = packet.BEHeaderBytes
	}
	next := u.hdr
	switch {
	case u.hdr.XOff > 0:
		u.outPort = PortXPlus
		next.XOff--
	case u.hdr.XOff < 0:
		u.outPort = PortXMinus
		next.XOff++
	case u.hdr.YOff > 0:
		u.outPort = PortYPlus
		next.YOff--
	case u.hdr.YOff < 0:
		u.outPort = PortYMinus
		next.YOff++
	default:
		u.outPort = PortLocal
	}
	packet.EncodeBEHeader(next, u.nextHdr[:])
	u.parsed = true
	u.fwdIdx = 0
	u.readyAt = u.r.nowCycle + int64(u.r.cfg.BEHeadDelay)
	if u.outPort != PortLocal && u.r.out[u.outPort] == nil {
		// No neighbour in that direction: a routing error (dimension
		// order keeps in-mesh destinations on existing links). Consume
		// and discard the packet.
		u.dropping = true
		u.r.Stats.BEMisroutes++
		u.r.dropBE(metrics.DropBEMisroute, u.outPort)
	}
}

// hasByte reports whether the engine can supply a byte to its output.
func (u *beInput) hasByte() bool {
	return u.parsed && u.occ() > 0 && u.r.nowCycle >= u.readyAt
}

// pop removes the next byte of the current packet, substituting the
// rewritten header for the first four bytes, and reports head/tail.
func (u *beInput) pop() (b byte, head, tail bool) {
	b = u.buf[u.bufHead]
	if u.fwdIdx < packet.BEHeaderBytes {
		b = u.nextHdr[u.fwdIdx]
	}
	u.bufHead++
	if u.bufHead == len(u.buf) {
		u.buf = u.buf[:0]
		u.bufHead = 0
	}
	u.consumed++
	head = u.fwdIdx == 0
	u.fwdIdx++
	tail = u.fwdIdx == int(u.hdr.Len)
	if tail {
		u.parsed = false
		u.bound = false
		u.dropping = false
	}
	return b, head, tail
}

// drainDropped consumes one byte per cycle of a misrouted packet.
func (u *beInput) drainDropped() {
	if !u.dropping || u.occ() == 0 {
		return
	}
	u.pop()
}

// truncate abandons a packet whose tail can never arrive (its upstream
// link failed mid-worm): the fragment is discarded and any output
// binding released so other traffic can use the port.
func (u *beInput) truncate() {
	if !u.parsed {
		u.buf = u.buf[:0]
		u.bufHead = 0
		return
	}
	for q := 0; q < NumPorts; q++ {
		if o := u.r.beOut[q]; o.curIn == u.id {
			o.curIn = -1
		}
	}
	u.buf = u.buf[:0]
	u.bufHead = 0
	u.parsed = false
	u.bound = false
	u.dropping = false
	u.r.Stats.BETruncated++
	u.r.dropBE(metrics.DropBETruncated, u.id)
}

// beOutput arbitrates the best-effort virtual channel of one output
// port: round-robin over the input engines, binding held for a whole
// packet, gated by downstream flit credits.
type beOutput struct {
	r    *Router
	port int

	curIn   int // bound input engine, or -1
	rr      int
	credits int // downstream flit-buffer credits (mesh links only)

	// wasStalled marks an ongoing credit stall so the trace records one
	// block event per episode rather than one per cycle.
	wasStalled bool

	// local reception assembly (PortLocal only)
	rxBuf []byte
}

// bind picks a waiting input if none is bound, scanning round-robin.
func (b *beOutput) bind() {
	if b.curIn >= 0 {
		return
	}
	n := len(b.r.beIn)
	for i := 0; i < n; i++ {
		idx := (b.rr + i) % n
		u := b.r.beIn[idx]
		if u.parsed && !u.bound && !u.dropping && u.outPort == b.port {
			u.bound = true
			b.curIn = idx
			b.rr = idx + 1
			return
		}
	}
}

// canSend reports whether a best-effort flit could go out this cycle.
func (b *beOutput) canSend() bool {
	b.bind()
	if b.curIn < 0 {
		return false
	}
	if b.port != PortLocal && b.credits <= 0 {
		return false
	}
	return b.r.beIn[b.curIn].hasByte()
}

// stalled reports whether a bound input has a flit ready but the port
// cannot send it for lack of downstream credits.
func (b *beOutput) stalled() bool {
	b.bind()
	return b.curIn >= 0 && b.port != PortLocal && b.credits <= 0 &&
		b.r.beIn[b.curIn].hasByte()
}

// sendByte forwards one flit from the bound input. The caller has
// checked canSend.
func (b *beOutput) sendByte() {
	u := b.r.beIn[b.curIn]
	by, head, tail := u.pop()
	b.r.Stats.BEBytes[b.port]++
	if b.r.met != nil {
		b.r.met.ArbWins[b.port][metrics.ArbBE].Inc()
	}
	if b.r.OnBETransmit != nil {
		b.r.OnBETransmit(b.port, b.r.nowCycle)
	}
	if b.port == PortLocal {
		b.rxBuf = append(b.rxBuf, by)
		if tail {
			b.deliverLocal()
			b.curIn = -1
		}
		return
	}
	b.credits--
	b.r.out[b.port].Drive(packet.Phit{
		Valid: true, VC: packet.VCBest, Data: by, Head: head, Tail: tail,
	})
	if tail {
		b.curIn = -1
		b.r.Stats.BEPacketsSent[b.port]++
	}
}

func (b *beOutput) deliverLocal() {
	payload := make([]byte, 0, len(b.rxBuf))
	if len(b.rxBuf) > packet.BEHeaderBytes {
		payload = append(payload, b.rxBuf[packet.BEHeaderBytes:]...)
	}
	b.r.beDelivered = append(b.r.beDelivered, DeliveredBE{
		Payload: payload,
		Cycle:   b.r.nowCycle,
	})
	b.r.Stats.BEDelivered++
	if b.r.met != nil {
		b.r.met.BEDelivered.Inc()
	}
	if b.r.OnLifecycle != nil {
		b.r.lifecycle(LifecycleEvent{Kind: EvDeliver, Port: -1, BE: true})
	}
	b.rxBuf = b.rxBuf[:0]
}
