package baseline

import (
	"testing"

	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/sim"
)

// vcRig wires two VC routers A→B on the x axis.
type vcRig struct {
	k    *sim.Kernel
	a, b *VCRouter
}

func newVCRig(t *testing.T) *vcRig {
	t.Helper()
	k := sim.NewKernel()
	a := NewVCRouter("A")
	b := NewVCRouter("B")
	k.Register(a)
	k.Register(b)
	ab := router.NewChannel(k)
	a.ConnectOut(router.PortXPlus, ab.Out())
	b.ConnectIn(router.PortXMinus, ab.In())
	ba := router.NewChannel(k)
	b.ConnectOut(router.PortXMinus, ba.Out())
	a.ConnectIn(router.PortXPlus, ba.In())
	return &vcRig{k: k, a: a, b: b}
}

func beFrame(t *testing.T, xo, yo, payload int) []byte {
	t.Helper()
	f, err := packet.NewBE(xo, yo, make([]byte, payload))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestVCRouterDelivery(t *testing.T) {
	rig := newVCRig(t)
	for vc := 0; vc < 2; vc++ {
		if err := rig.a.Inject(vc, beFrame(t, 1, 0, 20)); err != nil {
			t.Fatal(err)
		}
	}
	ok := rig.k.RunUntil(func() bool {
		return rig.b.Stats.Delivered[0] > 0 && rig.b.Stats.Delivered[1] > 0
	}, 10000)
	if !ok {
		t.Fatalf("deliveries missing: %+v", rig.b.Stats)
	}
	if len(rig.b.Drain(0)) != 1 || len(rig.b.Drain(1)) != 1 {
		t.Error("drain counts wrong")
	}
}

func TestVCRouterInjectValidation(t *testing.T) {
	r := NewVCRouter("x")
	if err := r.Inject(2, beFrame(t, 0, 0, 4)); err == nil {
		t.Error("bad VC accepted")
	}
	if err := r.Inject(0, []byte{1}); err == nil {
		t.Error("short frame accepted")
	}
}

// TestVCPriorityPreemption: a long VC1 worm occupies the link; a VC0
// packet must cut in at flit granularity rather than wait for the tail.
func TestVCPriorityPreemption(t *testing.T) {
	rig := newVCRig(t)
	if err := rig.a.Inject(1, beFrame(t, 1, 0, 4000)); err != nil {
		t.Fatal(err)
	}
	rig.k.Run(300) // worm underway
	if rig.a.Stats.Bytes[1][router.PortXPlus] == 0 {
		t.Fatal("low-priority worm never started")
	}
	if err := rig.a.Inject(0, beFrame(t, 1, 0, 30)); err != nil {
		t.Fatal(err)
	}
	start := int64(rig.k.Now())
	ok := rig.k.RunUntil(func() bool { return rig.b.Stats.Delivered[0] > 0 }, 2000)
	if !ok {
		t.Fatal("priority packet starved behind low-priority worm")
	}
	lat := rig.b.Drain(0)[0].Cycle - start
	if lat > 200 {
		t.Errorf("priority latency %d cycles; preemption not flit-level", lat)
	}
	if rig.b.Stats.Delivered[1] != 0 {
		t.Error("worm finished before the priority packet")
	}
}

// TestVCHeadOfLineBlocking pins the architectural limitation the paper
// argues (§6): within the priority channel there is no deadline order,
// so a tight packet waits head-of-line behind bulky traffic that shares
// VC0 — the real-time router's comparator tree exists to fix exactly
// this.
func TestVCHeadOfLineBlocking(t *testing.T) {
	rig := newVCRig(t)
	// Two bulky "urgent" messages first, then the tight packet, all on
	// VC0 from the same source.
	rig.a.Inject(0, beFrame(t, 1, 0, 400))
	rig.a.Inject(0, beFrame(t, 1, 0, 400))
	tight := beFrame(t, 1, 0, 16)
	rig.a.Inject(0, tight)
	ok := rig.k.RunUntil(func() bool { return rig.b.Stats.Delivered[0] >= 3 }, 20000)
	if !ok {
		t.Fatalf("deliveries incomplete: %+v", rig.b.Stats)
	}
	got := rig.b.Drain(0)
	if len(got[2].Payload) != 16 {
		t.Fatalf("tight packet not last: lengths %d,%d,%d",
			len(got[0].Payload), len(got[1].Payload), len(got[2].Payload))
	}
	// The tight packet waited for ~two 404-byte worms: over 800 cycles —
	// far beyond what a 4-slot deadline could absorb.
	if got[2].Cycle < 800 {
		t.Errorf("tight packet delivered at %d; expected head-of-line delay >800", got[2].Cycle)
	}
}

// TestVCFlowControlPerChannel: credits are tracked per VC; saturating
// VC1 must not consume VC0's credits.
func TestVCFlowControlPerChannel(t *testing.T) {
	rig := newVCRig(t)
	for i := 0; i < 6; i++ {
		rig.a.Inject(1, beFrame(t, 1, 0, 150))
	}
	for i := 0; i < 6; i++ {
		rig.a.Inject(0, beFrame(t, 1, 0, 150))
	}
	ok := rig.k.RunUntil(func() bool {
		return rig.b.Stats.Delivered[0] >= 6 && rig.b.Stats.Delivered[1] >= 6
	}, 100000)
	if !ok {
		t.Fatalf("stalled: %+v", rig.b.Stats)
	}
	if rig.b.Stats.Overruns != 0 {
		t.Errorf("flit buffer overruns: %d", rig.b.Stats.Overruns)
	}
	// All VC0 traffic finished no later than VC0-blocking would allow —
	// and strictly before the VC1 bulk, given strict priority.
	vc0 := rig.b.Drain(0)
	vc1 := rig.b.Drain(1)
	if vc0[len(vc0)-1].Cycle > vc1[len(vc1)-1].Cycle {
		t.Error("priority channel finished after the bulk channel")
	}
}

// TestVCMisrouteDrains: packets toward unwired links are consumed, not
// wedged.
func TestVCMisrouteDrains(t *testing.T) {
	k := sim.NewKernel()
	r := NewVCRouter("solo")
	k.Register(r)
	r.Inject(0, beFrame(t, 0, 2, 10))
	r.Inject(0, beFrame(t, 0, 0, 10))
	k.RunUntil(func() bool { return r.Stats.Delivered[0] > 0 }, 5000)
	if r.Stats.Misroutes != 1 {
		t.Errorf("Misroutes = %d, want 1", r.Stats.Misroutes)
	}
	if r.Stats.Delivered[0] != 1 {
		t.Error("later packet wedged behind misroute")
	}
}
