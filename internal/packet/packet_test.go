package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTCRoundTrip(t *testing.T) {
	p := TCPacket{Conn: 42, Stamp: 200}
	for i := range p.Payload {
		p.Payload[i] = byte(i * 3)
	}
	got := DecodeTC(EncodeTC(p))
	if got != p {
		t.Fatalf("round trip: got %+v, want %+v", got, p)
	}
}

func TestTCRoundTripQuick(t *testing.T) {
	prop := func(conn, stamp uint8, payload [TCPayloadBytes]byte) bool {
		p := TCPacket{Conn: conn, Stamp: stamp, Payload: payload}
		return DecodeTC(EncodeTC(p)) == p
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCLayout(t *testing.T) {
	p := TCPacket{Conn: 7, Stamp: 9}
	b := EncodeTC(p)
	if b[0] != 7 || b[1] != 9 {
		t.Errorf("header bytes = %d,%d, want 7,9 (Figure 3a layout)", b[0], b[1])
	}
	if len(b) != 20 {
		t.Errorf("TC packet is %d bytes, want 20", len(b))
	}
}

func TestBEHeaderRoundTrip(t *testing.T) {
	h := BEHeader{XOff: -3, YOff: 2, Len: 517}
	var buf [BEHeaderBytes]byte
	EncodeBEHeader(h, buf[:])
	if got := DecodeBEHeader(buf[:]); got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

func TestBEHeaderRoundTripQuick(t *testing.T) {
	prop := func(x, y int8, l uint16) bool {
		h := BEHeader{XOff: x, YOff: y, Len: l}
		var buf [BEHeaderBytes]byte
		EncodeBEHeader(h, buf[:])
		return DecodeBEHeader(buf[:]) == h
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBE(t *testing.T) {
	payload := []byte("hello mesh")
	b, err := NewBE(2, -1, payload)
	if err != nil {
		t.Fatal(err)
	}
	h := DecodeBEHeader(b)
	if h.XOff != 2 || h.YOff != -1 {
		t.Errorf("offsets = %d,%d, want 2,-1", h.XOff, h.YOff)
	}
	if int(h.Len) != len(b) {
		t.Errorf("length field %d != frame length %d", h.Len, len(b))
	}
	if !bytes.Equal(b[BEHeaderBytes:], payload) {
		t.Error("payload corrupted")
	}
}

func TestNewBEErrors(t *testing.T) {
	if _, err := NewBE(200, 0, nil); err == nil {
		t.Error("offset out of range: want error")
	}
	if _, err := NewBE(0, -200, nil); err == nil {
		t.Error("offset out of range: want error")
	}
	if _, err := NewBE(0, 0, make([]byte, BEMaxBytes)); err == nil {
		t.Error("oversized packet: want error")
	}
}

func TestFrame(t *testing.T) {
	data := []byte{1, 2, 3}
	ph := Frame(VCBest, data)
	if len(ph) != 3 {
		t.Fatalf("got %d phits, want 3", len(ph))
	}
	if !ph[0].Head || ph[0].Tail {
		t.Error("first phit: want Head, not Tail")
	}
	if ph[1].Head || ph[1].Tail {
		t.Error("middle phit: want neither marker")
	}
	if !ph[2].Tail || ph[2].Head {
		t.Error("last phit: want Tail, not Head")
	}
	for i, p := range ph {
		if !p.Valid || p.VC != VCBest || p.Data != data[i] {
			t.Errorf("phit %d = %+v", i, p)
		}
	}
}

func TestFrameSingleByte(t *testing.T) {
	ph := Frame(VCTime, []byte{9})
	if len(ph) != 1 || !ph[0].Head || !ph[0].Tail {
		t.Fatalf("single-byte frame: %+v", ph)
	}
}

func TestVCString(t *testing.T) {
	if VCTime.String() != "TC" || VCBest.String() != "BE" {
		t.Error("VC String() labels wrong")
	}
	if VC(9).String() != "VC(9)" {
		t.Errorf("unknown VC: %s", VC(9))
	}
}

func TestEncodeBEHeaderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short dst did not panic")
		}
	}()
	EncodeBEHeader(BEHeader{}, make([]byte, 2))
}

func TestDecodeBEHeaderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short src did not panic")
		}
	}()
	DecodeBEHeader(make([]byte, 3))
}
