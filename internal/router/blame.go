package router

import (
	"fmt"

	"repro/internal/sched"
	"repro/internal/timing"
)

// Slack attribution ("miss forensics"): when blame collection is
// enabled, the router tags every cycle a time-constrained packet spends
// not advancing with exactly one cause, at the decision point where the
// cycle is lost. The per-router bank of (victim, cause, blamed) counters
// is merged post-run into the blame matrix (obs.Forensics); stall
// episodes additionally surface as EvStall lifecycle events so the
// merged timeline can reconstruct per-packet slack waterfalls.
//
// The victim model is head-of-line: at most one time-constrained victim
// is charged per output port per cycle — the packet that would transmit
// next (staged packet, then a pending cut-through, then the candidate in
// fetch, then the earliest-deadline waiting leaf). A packet queued
// behind the head is charged once it becomes head-of-line itself, so
// totals stay conserved without quadratic accounting. Best-effort
// credit stalls are charged to a per-port best-effort pseudo-victim in
// exact lockstep with the BEStallCycles hardware counter.
//
// Collection is deterministic and inert: the bank is written only
// during the owning router's tick (single writer under the parallel
// kernel), reads no scheduler state through mutating interfaces
// (Select is never called; leaves are scanned via Leaf), and changes no
// simulation behavior — a run with blame enabled is cycle-identical to
// one without.

// StallCause classifies why a time-constrained packet failed to advance
// for one cycle.
type StallCause uint8

const (
	// CauseNone is the zero value; it never appears in the bank.
	CauseNone StallCause = iota
	// CauseArbLoss: another packet held the output wire (blamed carries
	// the winning connection id).
	CauseArbLoss
	// CauseBEContention: a best-effort flit took the cycle while the
	// victim was only horizon-early (Table 1 lets best-effort traffic
	// preempt early time-constrained packets).
	CauseBEContention
	// CauseMemBusWait: the packet was waiting on the shared memory bus —
	// its output-side fetch had not completed, or (input side) its
	// memory write was queued behind another transfer.
	CauseMemBusWait
	// CauseSchedWait: the packet was eligible but the shared comparator
	// tree had not yet selected it for the port (SchedPeriod /
	// LeafSharing serialization).
	CauseSchedWait
	// CauseHorizonHold: the packet was early and beyond the port's
	// horizon — ineligible by design.
	CauseHorizonHold
	// CausePacerHold: the source-side pacer held an eligible message at
	// the injection queue (blamed carries the released competitor, if
	// any).
	CausePacerHold
	// CauseCreditStarved: a best-effort flit was ready but the
	// downstream flit buffer owed no credit. Charged to the port's
	// best-effort pseudo-victim, in lockstep with BEStallCycles.
	CauseCreditStarved
	// CauseFaultRetransmit: a fault-recovery flit (retransmission or
	// abort) took the cycle while an early victim waited.
	CauseFaultRetransmit
	// CauseLinkBusy: the wire itself was the bottleneck — a cut-through
	// bubble (arrival stream behind the rewritten header), or a packet
	// queued behind the one streaming across the injection port.
	CauseLinkBusy
	// CauseUnattributed marks a stalled cycle the classifier could not
	// explain. The CI forensics gate fails when any appear: conservation
	// demands every non-advancing cycle carry a real cause.
	CauseUnattributed

	// NumStallCauses sizes per-cause arrays.
	NumStallCauses
)

func (c StallCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseArbLoss:
		return "arb_loss"
	case CauseBEContention:
		return "be_contention"
	case CauseMemBusWait:
		return "mem_bus_wait"
	case CauseSchedWait:
		return "sched_wait"
	case CauseHorizonHold:
		return "horizon_hold"
	case CausePacerHold:
		return "pacer_hold"
	case CauseCreditStarved:
		return "credit_starved"
	case CauseFaultRetransmit:
		return "fault_retransmit"
	case CauseLinkBusy:
		return "link_busy"
	case CauseUnattributed:
		return "unattributed"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// BlameKey identifies one cell of a router's blame bank. Victim and
// Blamed are connection ids as carried arriving at this router (the ids
// the SLO layer resolves to channels); Blamed is zero when the cycle
// went to a subsystem rather than a competing channel. Port is the
// output port, or -1 for non-port contexts (injection queue, pacer,
// input-side memory writes). BE marks the per-port best-effort
// pseudo-victim.
type BlameKey struct {
	Port   int8
	Victim uint8
	BE     bool
	Cause  StallCause
	Blamed uint8
}

// ForensicStats aggregates a router's attribution totals. The
// conservation invariant TCStallCycles == sum of ByCause over the
// time-constrained causes holds structurally: both are incremented by
// the same call.
type ForensicStats struct {
	// TCStallCycles counts time-constrained victim stall cycles (every
	// cause except credit_starved, which is best-effort).
	TCStallCycles int64
	ByCause       [NumStallCauses]int64
}

// blameEpisode tracks a run of consecutive identically-attributed stall
// cycles on one port, so the lifecycle stream carries one EvStall per
// episode instead of one per cycle.
type blameEpisode struct {
	active bool
	victim uint8
	cause  StallCause
	blamed uint8
	start  int64
	cycles int64
}

// blameBank is the per-router attribution state. Plain (non-atomic)
// stores: only the owning router's tick writes it, and the kernel's
// end-of-run barrier orders the writes before any merge — the same
// contract as the obs shards.
type blameBank struct {
	cells map[BlameKey]int64
	stats ForensicStats
	ep    [NumPorts]blameEpisode
}

// EnableBlame switches slack-attribution collection on. Idempotent;
// obs.Forensics calls it when attaching.
func (r *Router) EnableBlame() {
	if r.blame == nil {
		r.blame = &blameBank{cells: make(map[BlameKey]int64)}
	}
}

// BlameEnabled reports whether attribution is being collected.
func (r *Router) BlameEnabled() bool { return r.blame != nil }

// ForEachBlame visits every non-zero bank cell. Iteration order is
// unspecified (callers merge by summation and sort afterwards).
func (r *Router) ForEachBlame(f func(BlameKey, int64)) {
	if r.blame == nil {
		return
	}
	for k, v := range r.blame.cells {
		f(k, v)
	}
}

// BlameStats returns a copy of the router's attribution totals.
func (r *Router) BlameStats() ForensicStats {
	if r.blame == nil {
		return ForensicStats{}
	}
	return r.blame.stats
}

// FlushBlame closes any open stall episodes, emitting their EvStall
// events. Call after the run (the kernel barrier) and before reading
// the merged timeline; idempotent.
func (r *Router) FlushBlame() {
	if r.blame == nil {
		return
	}
	for p := 0; p < NumPorts; p++ {
		r.blameClose(p)
	}
}

// resetBlame clears the bank with the other warmup-reset state.
func (r *Router) resetBlame() {
	if r.blame == nil {
		return
	}
	r.blame.cells = make(map[BlameKey]int64)
	r.blame.stats = ForensicStats{}
	r.blame.ep = [NumPorts]blameEpisode{}
}

// BlamePacerHold records one pacer-held cycle for the victim connection
// (bank only; pacer holds happen before injection, outside any port's
// episode stream). The pacer ticks in the same node shard as the
// router, before it, so the plain store is safe under the parallel
// kernel.
func (r *Router) BlamePacerHold(victim, blamed uint8) {
	if r.blame == nil {
		return
	}
	r.blameNoteAt(-1, victim, false, CausePacerHold, blamed)
}

// blameNoteAt records one stall cycle into the bank. Ports outside
// [0,NumPorts) carry no episode stream (injection queue, pacer,
// input-side writes).
func (r *Router) blameNoteAt(port int, victim uint8, be bool, cause StallCause, blamed uint8) {
	bk := r.blame
	bk.cells[BlameKey{Port: int8(port), Victim: victim, BE: be, Cause: cause, Blamed: blamed}]++
	bk.stats.ByCause[cause]++
	if !be {
		bk.stats.TCStallCycles++
	}
}

// blameNoteTC records one time-constrained stall cycle on an output
// port and extends or opens its episode.
func (r *Router) blameNoteTC(p int, victim uint8, cause StallCause, blamed uint8) {
	r.blameNoteAt(p, victim, false, cause, blamed)
	ep := &r.blame.ep[p]
	if ep.active && ep.victim == victim && ep.cause == cause && ep.blamed == blamed {
		ep.cycles++
		return
	}
	r.blameClose(p)
	*ep = blameEpisode{
		active: true, victim: victim, cause: cause, blamed: blamed,
		start: r.nowCycle, cycles: 1,
	}
}

// blameNoteBE records one best-effort credit-starved cycle (bank only;
// the existing EvBlock event already marks best-effort stall episodes).
func (r *Router) blameNoteBE(p int) {
	r.blameNoteAt(p, 0, true, CauseCreditStarved, 0)
}

// blameClose ends the port's open episode, emitting one EvStall whose
// Cycle is the end-exclusive boundary: the episode covered cycles
// [Cycle-Wait, Cycle-1]. Victim rides InConn, the blamed connection
// OutConn, the episode length Wait.
func (r *Router) blameClose(p int) {
	ep := &r.blame.ep[p]
	if !ep.active {
		return
	}
	ep.active = false
	if r.OnLifecycle != nil {
		r.OnLifecycle(LifecycleEvent{
			Kind: EvStall, Cycle: ep.start + ep.cycles, Router: r.name,
			Port: p, InConn: ep.victim, OutConn: ep.blamed,
			Cause: ep.cause, Wait: ep.cycles,
		})
	}
}

// Scan outcomes for the waiting-leaf victim search.
const (
	scanNone   = iota // no leaf wants the port
	scanOnTime        // eligible, past its logical arrival time
	scanEarly         // eligible, early within the horizon
	scanBeyond        // early beyond the horizon (ineligible by design)
)

// blameScan finds the head-of-line waiting leaf for port p — the one
// the comparator tree would pick — without touching the scheduler's
// Select telemetry. O(slots), paid only on attributed port-cycles with
// no staged/fetching candidate.
func (r *Router) blameScan(p int, nowSlot timing.Stamp) (uint8, int) {
	if r.schedq.Occupancy() == 0 {
		return 0, scanNone
	}
	var (
		bestK timing.Key
		conn  uint8
		early bool
		found bool
	)
	n := r.schedq.Slots()
	for i := 0; i < n; i++ {
		lf := r.schedq.Leaf(i)
		if !lf.InUse || !lf.Mask.Has(p) {
			continue
		}
		k, e, _ := r.wheel.SortKey(lf.L, lf.Dl, nowSlot)
		if !found || k < bestK {
			bestK, conn, early, found = k, lf.InConn, e, true
		}
	}
	if !found {
		return 0, scanNone
	}
	if early {
		if !r.wheel.WithinHorizon(bestK, r.horizons[p]) {
			return conn, scanBeyond
		}
		return conn, scanEarly
	}
	return conn, scanOnTime
}

// blameArbWin attributes the cycle on a port whose wire a
// time-constrained packet is holding: the head-of-line waiter (staged
// prefetch first, then the earliest waiting leaf) lost the arbitration
// to the winner.
func (r *Router) blameArbWin(p int, nowSlot timing.Stamp, winner uint8) {
	o := r.tcOut[p]
	if o.staged {
		r.blameNoteTC(p, o.sLeaf.InConn, CauseArbLoss, winner)
		return
	}
	if conn, st := r.blameScan(p, nowSlot); st != scanNone {
		if st == scanBeyond {
			r.blameNoteTC(p, conn, CauseHorizonHold, 0)
		} else {
			r.blameNoteTC(p, conn, CauseArbLoss, winner)
		}
		return
	}
	r.blameClose(p)
}

// What, if anything, the best-effort side sent on the cycle being
// attributed.
const (
	beSentNone = iota
	beSentData
	beSentFault
)

// blameIdle attributes a port-cycle on which no time-constrained byte
// moved: either a best-effort flit took the wire (beSent says which
// kind) or the port idled. Exactly one cause is recorded when any
// time-constrained work is present; otherwise the open episode closes.
func (r *Router) blameIdle(p int, nowSlot timing.Stamp, beSent int) {
	o := r.tcOut[p]
	if o.staged {
		// arbitrate handles ClassOnTime before reaching any idle path,
		// and ClassEarly only loses the cycle to best-effort traffic; a
		// staged packet here is otherwise beyond the horizon.
		switch o.stagedClass(nowSlot) {
		case sched.ClassEarly:
			switch beSent {
			case beSentFault:
				r.blameNoteTC(p, o.sLeaf.InConn, CauseFaultRetransmit, 0)
			case beSentData:
				r.blameNoteTC(p, o.sLeaf.InConn, CauseBEContention, 0)
			default:
				r.blameNoteTC(p, o.sLeaf.InConn, CauseUnattributed, 0)
			}
		case sched.ClassNone:
			r.blameNoteTC(p, o.sLeaf.InConn, CauseHorizonHold, 0)
		default:
			r.blameNoteTC(p, o.sLeaf.InConn, CauseUnattributed, 0)
		}
		return
	}
	if o.cutIn != nil {
		// A pending cut-through (head byte not yet sent) held back like a
		// staged packet.
		switch o.cutClass {
		case sched.ClassEarly:
			switch beSent {
			case beSentFault:
				r.blameNoteTC(p, o.cutLeaf.InConn, CauseFaultRetransmit, 0)
			case beSentData:
				r.blameNoteTC(p, o.cutLeaf.InConn, CauseBEContention, 0)
			default:
				r.blameNoteTC(p, o.cutLeaf.InConn, CauseUnattributed, 0)
			}
		default:
			r.blameNoteTC(p, o.cutLeaf.InConn, CauseHorizonHold, 0)
		}
		return
	}
	if o.fetching || o.candValid {
		r.blameNoteTC(p, r.schedq.Leaf(o.cand.Slot).InConn, CauseMemBusWait, 0)
		return
	}
	conn, st := r.blameScan(p, nowSlot)
	switch st {
	case scanNone:
		r.blameClose(p)
	case scanBeyond:
		r.blameNoteTC(p, conn, CauseHorizonHold, 0)
	case scanOnTime:
		// Eligible but not yet staged: the shared comparator tree has not
		// delivered it to this port (had it been staged it would have
		// preempted any best-effort flit).
		r.blameNoteTC(p, conn, CauseSchedWait, 0)
	case scanEarly:
		// An early waiting leaf loses to best-effort traffic even when
		// staged, so a best-effort send is the binding constraint; with
		// the link free it is scheduling latency.
		switch beSent {
		case beSentFault:
			r.blameNoteTC(p, conn, CauseFaultRetransmit, 0)
		case beSentData:
			r.blameNoteTC(p, conn, CauseBEContention, 0)
		default:
			r.blameNoteTC(p, conn, CauseSchedWait, 0)
		}
	}
}
