// Package stats provides the measurement primitives the experiment
// harness uses: latency histograms with quantiles, time series for
// service curves (Figure 7), and windowed rate meters.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist accumulates latency (or any scalar) samples and reports summary
// statistics. Samples are retained, so quantiles are exact.
type Hist struct {
	samples []float64
	sorted  bool
	sum     float64
}

// Add records one sample. Growth is chunkier than append's doubling
// (4× steps from a 256-sample floor) so a simulation with thousands of
// live histograms crosses reallocation boundaries rarely — the
// steady-state allocation gate counts every one of those events.
func (h *Hist) Add(v float64) {
	if len(h.samples) == cap(h.samples) {
		next := 4 * cap(h.samples)
		if next < 256 {
			next = 256
		}
		grown := make([]float64, len(h.samples), next)
		copy(grown, h.samples)
		h.samples = grown
	}
	h.samples = append(h.samples, v)
	h.sorted = false
	h.sum += v
}

// AddInt records one integer sample.
func (h *Hist) AddInt(v int64) { h.Add(float64(v)) }

// N returns the number of samples.
func (h *Hist) N() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 for an empty histogram.
func (h *Hist) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 when empty.
func (h *Hist) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 when empty.
func (h *Hist) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) by nearest-rank, or 0
// when empty.
func (h *Hist) Quantile(q float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// StdDev returns the population standard deviation.
func (h *Hist) StdDev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Reset discards all samples.
func (h *Hist) Reset() {
	h.samples = h.samples[:0]
	h.sorted = false
	h.sum = 0
}

// CopyInto adds every sample of h into dst (histogram merge).
func (h *Hist) CopyInto(dst *Hist) {
	for _, v := range h.samples {
		dst.Add(v)
	}
}

func (h *Hist) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// String summarizes the distribution.
func (h *Hist) String() string {
	if h.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p99=%.0f max=%.0f",
		h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Series is a time series of (time, value) points, typically cumulative
// service bytes against cycles as in Figure 7.
type Series struct {
	Name string
	T    []int64
	V    []float64
}

// Append adds a point.
func (s *Series) Append(t int64, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// Last returns the final value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// At returns the value at the last point with time ≤ t (step
// interpolation), or 0 before the first point.
func (s *Series) At(t int64) float64 {
	idx := sort.Search(len(s.T), func(i int) bool { return s.T[i] > t })
	if idx == 0 {
		return 0
	}
	return s.V[idx-1]
}

// Insert adds a point keeping T sorted by time, so observers with
// skewed or buffered clocks (out-of-order timestamps) still produce a
// valid series for At and RenderASCII. In-order appends take the fast
// path.
func (s *Series) Insert(t int64, v float64) {
	if n := len(s.T); n == 0 || s.T[n-1] <= t {
		s.Append(t, v)
		return
	}
	idx := sort.Search(len(s.T), func(i int) bool { return s.T[i] > t })
	s.T = append(s.T, 0)
	s.V = append(s.V, 0)
	copy(s.T[idx+1:], s.T[idx:])
	copy(s.V[idx+1:], s.V[idx:])
	s.T[idx] = t
	s.V[idx] = v
}

// TimeSeries is a named collection of Series built up by periodic
// observation — the container the telemetry sampler snapshots the
// metrics registry into during a run. Observations may arrive with
// out-of-order timestamps; each series stays time-sorted.
type TimeSeries struct {
	m     map[string]*Series
	names []string
}

// NewTimeSeries returns an empty collection.
func NewTimeSeries() *TimeSeries {
	return &TimeSeries{m: make(map[string]*Series)}
}

// Observe records value v for the named series at time t, creating the
// series on first use.
func (ts *TimeSeries) Observe(name string, t int64, v float64) {
	s := ts.m[name]
	if s == nil {
		s = &Series{Name: name}
		ts.m[name] = s
		ts.names = append(ts.names, name)
	}
	s.Insert(t, v)
}

// Series returns the named series, or nil if never observed.
func (ts *TimeSeries) Series(name string) *Series { return ts.m[name] }

// Names returns the series names in first-observation order.
func (ts *TimeSeries) Names() []string {
	return append([]string(nil), ts.names...)
}

// Reset discards every series (warmup exclusion).
func (ts *TimeSeries) Reset() {
	ts.m = make(map[string]*Series)
	ts.names = nil
}

// Accumulator builds a cumulative series by counting increments and
// sampling on demand.
type Accumulator struct {
	Series
	total float64
}

// Inc adds to the running total without emitting a point.
func (a *Accumulator) Inc(v float64) { a.total += v }

// Sample emits the running total at time t.
func (a *Accumulator) Sample(t int64) { a.Append(t, a.total) }

// Total returns the running total.
func (a *Accumulator) Total() float64 { return a.total }

// RenderASCII plots one or more series as a compact ASCII chart, the
// closest a terminal gets to Figure 7. Values are normalized to the
// global maximum; each series gets one glyph.
func RenderASCII(width, height int, series ...*Series) string {
	if width < 8 || height < 2 || len(series) == 0 {
		return ""
	}
	var tMax int64
	var vMax float64
	for _, s := range series {
		if n := s.Len(); n > 0 {
			if s.T[n-1] > tMax {
				tMax = s.T[n-1]
			}
		}
		for _, v := range s.V {
			if v > vMax {
				vMax = v
			}
		}
	}
	if tMax == 0 || vMax == 0 {
		return "(no data)\n"
	}
	glyphs := "*o+x#@%&"
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for col := 0; col < width; col++ {
			t := int64(float64(tMax) * float64(col) / float64(width-1))
			v := s.At(t)
			row := height - 1 - int(v/vMax*float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = g
		}
	}
	var b strings.Builder
	for i, row := range grid {
		label := ""
		if i == 0 {
			label = fmt.Sprintf("%8.0f |", vMax)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.0f |", 0.0)
		} else {
			label = "         |"
		}
		b.WriteString(label)
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("          " + strings.Repeat("-", width) + "\n")
	b.WriteString(fmt.Sprintf("          0%*s%d cycles\n", width-len(fmt.Sprint(tMax))-1, "", tMax))
	for si, s := range series {
		b.WriteString(fmt.Sprintf("          %c %s\n", glyphs[si%len(glyphs)], s.Name))
	}
	return b.String()
}
