// Package traffic provides deterministic workload generators and
// measurement sinks for the experiment harness: periodic and backlogged
// real-time channel sources, rate-controlled best-effort sources with
// configurable destination and size distributions, and delivery sinks
// that recover end-to-end latency from probe payloads.
package traffic

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"repro/internal/mesh"
	"repro/internal/packet"
	"repro/internal/router"
	"repro/internal/rtc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/timing"
)

// Probe is the instrumentation header generators place at the front of
// payloads so sinks can measure end-to-end latency without any
// simulator back-channel: the bytes travel through the routers like any
// other data.
const ProbeBytes = 12

// EncodeProbe writes the injection cycle and sequence number into the
// first ProbeBytes of dst.
func EncodeProbe(dst []byte, cycle int64, seq uint32) {
	if len(dst) < ProbeBytes {
		panic("traffic: probe destination too short")
	}
	binary.BigEndian.PutUint64(dst[0:8], uint64(cycle))
	binary.BigEndian.PutUint32(dst[8:12], seq)
}

// DecodeProbe recovers the injection cycle and sequence number.
func DecodeProbe(src []byte) (cycle int64, seq uint32) {
	if len(src) < ProbeBytes {
		return 0, 0
	}
	return int64(binary.BigEndian.Uint64(src[0:8])), binary.BigEndian.Uint32(src[8:12])
}

// TCPattern selects how a time-constrained source generates messages.
type TCPattern int

const (
	// Periodic submits one message every Imin slots — the nominal
	// real-time workload.
	Periodic TCPattern = iota
	// Backlogged keeps the channel's queue non-empty, the "continual
	// backlog" condition of Figure 7; throughput is then set entirely by
	// the reservation.
	Backlogged
	// Bursty submits Bmax+1 messages at once every Bmax+1 periods,
	// exercising the burst allowance of the arrival model.
	Bursty
)

// Sender is where a generator submits messages: the raw source
// regulator handle (rtc.PacedChannel) or a facade that survives channel
// re-establishment (core.Channel).
type Sender interface {
	Submit(now timing.Slot, payload []byte) error
	Pending() int
}

// TCApp drives one real-time channel with a synthetic message pattern.
// It implements sim.Component and must tick before the routers.
type TCApp struct {
	name    string
	ch      Sender
	spec    rtc.Spec
	pattern TCPattern
	size    int
	seq     uint32
	body    []byte // scratch payload buffer, reused across messages

	nextSlot timing.Slot
	stopped  bool

	// Submitted counts messages handed to the regulator.
	Submitted int64
	// Errors counts submissions refused (e.g. the channel closed after a
	// failed re-establishment); the generator stops at the first one.
	Errors int64
}

// NewTCApp creates a generator for an admitted channel. size is the
// message payload length (capped at the spec's Smax, with room for the
// probe header).
func NewTCApp(name string, ch Sender, spec rtc.Spec, pattern TCPattern, size int) (*TCApp, error) {
	if size < ProbeBytes {
		size = ProbeBytes
	}
	if size > spec.Smax {
		return nil, fmt.Errorf("traffic: message size %d exceeds Smax %d", size, spec.Smax)
	}
	return &TCApp{name: name, ch: ch, spec: spec, pattern: pattern, size: size}, nil
}

// Name implements sim.Component.
func (a *TCApp) Name() string { return a.name }

// Tick implements sim.Component.
func (a *TCApp) Tick(now sim.Cycle) {
	if a.stopped {
		return
	}
	nowSlot := timing.CyclesToSlot(int64(now), packet.TCBytes)
	switch a.pattern {
	case Backlogged:
		// Keep a couple of messages queued beyond what the regulator can
		// release, so the source never idles.
		for a.ch.Pending() < 2 {
			a.submit(int64(now), nowSlot)
		}
	case Bursty:
		if nowSlot >= a.nextSlot {
			n := a.spec.Bmax + 1
			for i := 0; i < n; i++ {
				a.submit(int64(now), nowSlot)
			}
			a.nextSlot = nowSlot + timing.Slot(a.spec.Imin*int64(n))
		}
	default: // Periodic
		if nowSlot >= a.nextSlot {
			a.submit(int64(now), nowSlot)
			a.nextSlot = nowSlot + timing.Slot(a.spec.Imin)
		}
	}
}

// NextWork implements sim.Skipper: a stopped generator never works
// again; a backlogged one must tick every cycle to keep its queue
// topped up; periodic and bursty sources next act at the first cycle of
// their next submission slot. Idle cycles before that are pure, so Skip
// has nothing to replay.
func (a *TCApp) NextWork(now sim.Cycle) sim.Cycle {
	if a.stopped {
		return sim.Never
	}
	if a.pattern == Backlogged {
		return now
	}
	next := sim.Cycle(int64(a.nextSlot) * packet.TCBytes)
	if next <= now {
		return now
	}
	return next
}

// Skip implements sim.Skipper; idle generator cycles have no effects.
func (a *TCApp) Skip(now, target sim.Cycle) {}

func (a *TCApp) submit(cycle int64, nowSlot timing.Slot) {
	// Submit copies the payload into the channel's pooled packet arrays,
	// so a single scratch buffer serves every message.
	if cap(a.body) < a.size {
		a.body = make([]byte, a.size)
	}
	body := a.body[:a.size]
	clear(body[ProbeBytes:]) // zero padding, as a fresh buffer would carry
	EncodeProbe(body, cycle, a.seq)
	a.seq++
	if err := a.ch.Submit(nowSlot, body); err != nil {
		// Sizes are validated at construction, so a refusal means the
		// channel died underneath us (teardown or a failed reroute):
		// stop generating rather than wedge the simulation.
		a.Errors++
		a.stopped = true
		return
	}
	a.Submitted++
}

// DstPicker selects a destination for each best-effort packet.
type DstPicker func(rng *rand.Rand) mesh.Coord

// UniformDst picks uniformly over the mesh, excluding the source.
func UniformDst(net *mesh.Network, src mesh.Coord) DstPicker {
	coords := make([]mesh.Coord, 0, len(net.Coords())-1)
	for _, c := range net.Coords() {
		if c != src {
			coords = append(coords, c)
		}
	}
	return func(rng *rand.Rand) mesh.Coord {
		if len(coords) == 0 {
			return src
		}
		return coords[rng.Intn(len(coords))]
	}
}

// FixedDst always picks dst.
func FixedDst(dst mesh.Coord) DstPicker {
	return func(*rand.Rand) mesh.Coord { return dst }
}

// HotspotDst picks hot with probability p, else uniformly.
func HotspotDst(net *mesh.Network, src, hot mesh.Coord, p float64) DstPicker {
	uni := UniformDst(net, src)
	return func(rng *rand.Rand) mesh.Coord {
		if rng.Float64() < p {
			return hot
		}
		return uni(rng)
	}
}

// SizePicker selects a payload size for each best-effort packet.
type SizePicker func(rng *rand.Rand) int

// FixedSize always returns n.
func FixedSize(n int) SizePicker { return func(*rand.Rand) int { return n } }

// UniformSize returns sizes uniformly in [lo, hi]. A degenerate or
// inverted range (hi <= lo) clamps to a fixed size of lo rather than
// panicking inside rng.Intn, so callers need not pre-validate.
func UniformSize(lo, hi int) SizePicker {
	if hi <= lo {
		return FixedSize(lo)
	}
	return func(rng *rand.Rand) int { return lo + rng.Intn(hi-lo+1) }
}

// BEApp injects best-effort packets at a target byte rate using a token
// bucket: Rate is in bytes per cycle (1.0 saturates a link). It
// implements sim.Component.
type BEApp struct {
	name string
	r    *router.Router
	src  mesh.Coord
	dst  DstPicker
	size SizePicker
	rate float64
	rng  *rand.Rand

	tokens  float64
	limit   float64 // idle-bucket cap, 4·rate·TCBytes (precomputed)
	pending int     // size of the packet awaiting tokens
	pdst    mesh.Coord
	seq     uint32
	body    []byte // scratch payload buffer, reused across packets

	// Injected counts packets queued at the router.
	Injected int64
	// InjectedBytes counts total frame bytes queued.
	InjectedBytes int64
}

// beMaxBacklog bounds how many frames a source keeps queued behind the
// injection port. Small enough that circulation stays within the
// router's frame pool, large enough to keep the port busy through
// short arbitration stalls.
const beMaxBacklog = 4

// NewBEApp creates a best-effort source at src on the given network.
func NewBEApp(name string, net *mesh.Network, src mesh.Coord, dst DstPicker, size SizePicker, rate float64, seed int64) (*BEApp, error) {
	r := net.Router(src)
	if r == nil {
		return nil, fmt.Errorf("traffic: source %s outside mesh", src)
	}
	if rate <= 0 {
		return nil, fmt.Errorf("traffic: rate %v must be positive", rate)
	}
	return &BEApp{
		name: name, r: r, src: src, dst: dst, size: size, rate: rate,
		limit: 4 * rate * float64(packet.TCBytes),
		rng:   rand.New(rand.NewSource(seed)),
	}, nil
}

// Name implements sim.Component.
func (a *BEApp) Name() string { return a.name }

// Tick implements sim.Component.
func (a *BEApp) Tick(now sim.Cycle) {
	a.tokens += a.rate
	// Cap the idle bucket so quiet periods don't bank unbounded bursts;
	// once a packet is chosen the bucket must be allowed to reach its
	// frame length.
	if a.pending == 0 && a.tokens > a.limit {
		a.tokens = a.limit
	}
	if a.pending == 0 {
		a.pending = a.size(a.rng)
		if a.pending < ProbeBytes {
			a.pending = ProbeBytes
		}
		a.pdst = a.dst(a.rng)
	}
	frameLen := a.pending + packet.BEHeaderBytes
	if a.tokens < float64(frameLen) {
		return
	}
	// Closed-loop injection: when the router's injection port is backed
	// up, hold the frame instead of queueing unboundedly behind it. The
	// bucket is clamped to exactly the frame cost so the stall does not
	// bank a burst, and the bounded backlog keeps the router's recycled
	// frame pool warm — a saturated source stops allocating rather than
	// growing an infinite queue.
	if a.r.BEInjectBacklog() >= beMaxBacklog {
		if a.tokens > float64(frameLen) {
			a.tokens = float64(frameLen)
		}
		return
	}
	a.tokens -= float64(frameLen)
	if cap(a.body) < a.pending {
		a.body = make([]byte, a.pending)
	}
	body := a.body[:a.pending]
	clear(body[ProbeBytes:]) // zero padding, as a fresh buffer would carry
	EncodeProbe(body, int64(now), a.seq)
	a.seq++
	xo, yo := mesh.BEOffsets(a.src, a.pdst)
	// Build the frame in a buffer recycled from the injection port, so a
	// steady-state source stops allocating once the pool warms up.
	frame, err := packet.AppendBE(a.r.BEFrameBuf(), xo, yo, body)
	if err != nil {
		panic("traffic: " + err.Error())
	}
	a.r.InjectBE(frame)
	a.Injected++
	a.InjectedBytes += int64(len(frame))
	a.pending = 0
}

// NextWork implements sim.Skipper: the token bucket accrues every
// cycle, so the source next acts when the bucket could cover the
// pending frame. The estimate deliberately undershoots by two cycles to
// absorb floating-point accumulation error — an underestimate only
// shortens a skip, never changes behaviour. With no frame pending the
// very next tick picks one, so the source is immediate work.
func (a *BEApp) NextWork(now sim.Cycle) sim.Cycle {
	if a.pending == 0 {
		return now
	}
	need := float64(a.pending+packet.BEHeaderBytes) - a.tokens
	if need <= 0 {
		return now
	}
	wait := int64(need/a.rate) - 2
	if wait <= 0 {
		return now
	}
	return now + sim.Cycle(wait)
}

// Skip implements sim.Skipper: replay the skipped cycles' token
// accrual one step at a time — floating-point addition is not
// associative, so a closed-form n·rate would diverge from the ticked
// run. The idle-bucket cap never engages here (it applies only with no
// frame pending, when NextWork forbids skipping), and NextWork's
// undershoot guarantees the bucket stays short of the frame throughout
// the span.
func (a *BEApp) Skip(now, target sim.Cycle) {
	for c := now; c < target; c++ {
		a.tokens += a.rate
	}
}

// Sink drains a router's delivery queues every cycle and accumulates
// latency statistics from probe payloads. It implements sim.Component
// and should be registered after the router it serves.
type Sink struct {
	name string
	r    *router.Router

	TCLatency stats.Hist // cycles, injection to delivery
	BELatency stats.Hist
	TCCount   int64
	BECount   int64

	// OnTC, if set, observes every time-constrained delivery.
	OnTC func(router.DeliveredTC)
	// OnBE, if set, observes every best-effort delivery.
	OnBE func(router.DeliveredBE)
	// OnTCLatency, if set, observes the probe-measured end-to-end
	// latency (byte cycles) of every time-constrained delivery whose
	// payload carries a valid probe, keyed by the delivery connection
	// id. A separate hook from OnTC so SLO accounting composes with a
	// user-installed delivery observer.
	OnTCLatency func(conn uint8, latency int64)
}

// NewSink creates a delivery sink for one router.
func NewSink(name string, r *router.Router) *Sink {
	return &Sink{name: name, r: r}
}

// Name implements sim.Component.
func (s *Sink) Name() string { return s.name }

// Reset discards accumulated statistics (for post-warmup measurement).
func (s *Sink) Reset() {
	s.TCLatency.Reset()
	s.BELatency.Reset()
	s.TCCount = 0
	s.BECount = 0
}

// NextWork implements sim.Skipper: with nothing delivered the drain is
// a no-op, and during a skipped span the (also idle) router cannot
// deliver anything new.
func (s *Sink) NextWork(now sim.Cycle) sim.Cycle {
	if s.r.HasDeliveries() {
		return now
	}
	return sim.Never
}

// Skip implements sim.Skipper; idle sink cycles have no effects.
func (s *Sink) Skip(now, target sim.Cycle) {}

// Tick implements sim.Component.
func (s *Sink) Tick(now sim.Cycle) {
	// Idle-cycle fast path: the double-buffered drains are cheap, but on
	// large meshes most sinks see nothing most cycles, and the pre-check
	// is one pointer's worth of work.
	if !s.r.HasDeliveries() {
		return
	}
	for _, d := range s.r.DrainTC() {
		s.TCCount++
		inj, _ := DecodeProbe(d.Payload[:])
		if inj > 0 && inj <= d.Cycle {
			s.TCLatency.AddInt(d.Cycle - inj)
			if s.OnTCLatency != nil {
				s.OnTCLatency(d.Conn, d.Cycle-inj)
			}
		}
		if s.OnTC != nil {
			s.OnTC(d)
		}
	}
	for _, d := range s.r.DrainBE() {
		s.BECount++
		inj, _ := DecodeProbe(d.Payload)
		if inj > 0 && inj <= d.Cycle {
			s.BELatency.AddInt(d.Cycle - inj)
		}
		if s.OnBE != nil {
			s.OnBE(d)
		}
	}
}

// Compile-time checks: every generator and sink supports the kernel's
// quiescence fast-forward.
var (
	_ sim.Skipper = (*TCApp)(nil)
	_ sim.Skipper = (*BEApp)(nil)
	_ sim.Skipper = (*Sink)(nil)
)
