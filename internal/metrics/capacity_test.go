package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func sampleCapacity() *CapacitySnapshot {
	return &CapacitySnapshot{
		Channels: 2,
		Links: []LinkCapacity{
			{Link: "(0,0)→inject", NodeX: 0, NodeY: 0, Port: "inject",
				Channels: 2, Utilization: 0.375, ReservedSlots: 2,
				HeadroomSlots: 3, WorstMarginSlots: 3},
			{Link: "(0,0)→+x", NodeX: 0, NodeY: 0, Port: "+x",
				Channels: 2, Utilization: 0.375, ReservedSlots: 2,
				HeadroomSlots: 3, WorstMarginSlots: 3},
		},
		Nodes: []NodeCapacity{
			{Node: "(0,0)", BuffersUsed: 6, BuffersLimit: 256,
				PortBuffers: map[string]int{"+x": 6}, ConnsUsed: 2, ConnsLimit: 256},
		},
		WorstLink: "(0,0)→inject", WorstUtilization: 0.375, MinHeadroomSlots: 3,
	}
}

func TestCapacityJSONExport(t *testing.T) {
	reg := NewRegistry()
	reg.SetCapacitySource(sampleCapacity)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if snap.Capacity == nil {
		t.Fatal("capacity section missing from JSON export")
	}
	if snap.Capacity.Channels != 2 || len(snap.Capacity.Links) != 2 {
		t.Errorf("decoded capacity %+v", snap.Capacity)
	}
	if snap.Capacity.Links[0].Port != "inject" || snap.Capacity.Links[0].Utilization != 0.375 {
		t.Errorf("decoded link %+v", snap.Capacity.Links[0])
	}
	if snap.Capacity.Nodes[0].PortBuffers["+x"] != 6 {
		t.Errorf("decoded node %+v", snap.Capacity.Nodes[0])
	}
}

func TestCapacityJSONOmittedWithoutSource(t *testing.T) {
	reg := NewRegistry()
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"capacity"`) {
		t.Error("capacity section present with no source attached")
	}
}

func TestCapacityPrometheusExport(t *testing.T) {
	reg := NewRegistry()
	reg.SetCapacitySource(sampleCapacity)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"rt_capacity_channels 2",
		"rt_capacity_worst_utilization 0.375",
		"rt_capacity_min_headroom_slots 3",
		`rt_capacity_link_utilization{link="(0,0)→inject"} 0.375`,
		`rt_capacity_link_channels{link="(0,0)→+x"} 2`,
		`rt_capacity_link_headroom_slots{link="(0,0)→+x"} 3`,
		`rt_capacity_node_buffers_used{node="(0,0)"} 6`,
		`rt_capacity_node_conns_limit{node="(0,0)"} 256`,
		"# TYPE rt_capacity_link_utilization gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}
